package repro_test

import (
	"fmt"

	repro "repro"
)

// Compare two controllers on a small capped chip.
func ExampleRunAll() {
	opts := repro.DefaultOptions()
	opts.Cores = 4
	opts.BudgetW = 12
	opts.WarmupS = 0.02
	opts.MeasureS = 0.05

	results, err := repro.RunAll(opts, []string{"pid", "static"})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Println(r.Summary.Controller)
	}
	// Output:
	// pid
	// static
}

// Build a custom-tuned OD-RL controller through the config surface.
func ExampleNewODRL() {
	cfg := repro.DefaultODRLConfig()
	cfg.Lambda = 8 // compliance-first
	c, err := repro.NewODRL(16, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Name())
	// Output: od-rl
}

// The island-aware variant controls one agent per voltage-frequency
// island; pair it with matching Options.IslandW/IslandH.
func ExampleNewIslandODRL() {
	c, err := repro.NewIslandODRL(4, 4, 2, 2, repro.DefaultODRLConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Name())
	// Output: od-rl-island
}

// Inspect the benchmark suite the evaluation runs on.
func ExampleWorkloadNames() {
	names := repro.WorkloadNames()
	fmt.Println(len(names), names[0])
	// Output: 10 blackscholes
}

// Schedule a mid-run cap drop (datacentre brownout response).
func ExampleOptions_budgetSchedule() {
	opts := repro.DefaultOptions()
	opts.Cores = 4
	opts.BudgetW = 15
	opts.BudgetSchedule = []repro.BudgetStep{{AtS: 0.03, BudgetW: 8}}
	opts.WarmupS = 0.01
	opts.MeasureS = 0.05

	c, err := repro.NewController("greedy", repro.DefaultEnv(opts.Cores))
	if err != nil {
		panic(err)
	}
	res, err := repro.Run(opts, c)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Summary.Controller, res.Summary.DurS > 0)
	// Output: greedy true
}
