package power

import "math"

// LUT holds per-level precomputed leakage factors for a discrete VF
// table. Levels are the only voltages the chip ever runs at, so the
// math.Pow in LeakageW — constant per level — has no business executing
// per core per epoch.
//
// Bit-exactness contract: LeakageWAt(l, t) returns the exact float64
// LeakageW(voltagesV[l], t) returns, for every level and temperature.
// That holds because LeakageW computes
//
//	v * ((LeakI0A * Pow(v/Vref, exp)) * Exp(coeff*(t-Tref)))
//
// left-associated, so caching the parenthesised Pow prefix per level and
// replaying the remaining two multiplies in the same order reproduces the
// identical rounding sequence. The golden-file regression tests depend on
// this: any reassociation here would diverge every RL trajectory.
type LUT struct {
	p Params
	// voltsV[l] is the supply voltage of level l (copied from the VF
	// table slab).
	voltsV []float64
	// leakBase[l] = LeakI0A * Pow(voltsV[l]/VrefV, LeakVoltageExp): the
	// temperature-independent prefix of the leakage current.
	leakBase []float64
}

// NewLUT precomputes leakage factors for the given per-level voltages
// (typically vf.Table.VoltagesV). The slice is copied.
func NewLUT(p Params, voltagesV []float64) *LUT {
	l := &LUT{
		p:        p,
		voltsV:   append([]float64(nil), voltagesV...),
		leakBase: make([]float64, len(voltagesV)),
	}
	for i, v := range voltagesV {
		if v <= 0 {
			continue // LeakageW returns 0 for v <= 0; keep base at 0
		}
		l.leakBase[i] = p.LeakI0A * math.Pow(v/p.VrefV, p.LeakVoltageExp)
	}
	return l
}

// Levels returns the number of precomputed levels.
func (l *LUT) Levels() int { return len(l.voltsV) }

// LeakageWAt returns leakage power at level and temperature, bit-equal to
// Params.LeakageW at that level's voltage. One Exp and two multiplies —
// the Pow is amortised into construction.
func (l *LUT) LeakageWAt(level int, tempK float64) float64 {
	v := l.voltsV[level]
	if v <= 0 {
		return 0
	}
	i := l.leakBase[level] * math.Exp(l.p.LeakTempCoeffPerK*(tempK-l.p.TrefK))
	return v * i
}

// FixedTempLeakageW returns a per-level leakage table at one fixed
// temperature, bit-equal to Params.LeakageW per level. Chips without a
// thermal model run every core at the ambient temperature forever, which
// reduces per-core leakage to a single indexed load.
func (l *LUT) FixedTempLeakageW(tempK float64) []float64 {
	out := make([]float64, len(l.voltsV))
	exp := math.Exp(l.p.LeakTempCoeffPerK * (tempK - l.p.TrefK))
	for lev, v := range l.voltsV {
		if v <= 0 {
			continue
		}
		out[lev] = v * (l.leakBase[lev] * exp)
	}
	return out
}
