package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Default()
	mutations := []func(*Params){
		func(p *Params) { p.CeffF = 0 },
		func(p *Params) { p.CeffF = -1 },
		func(p *Params) { p.LeakI0A = -1 },
		func(p *Params) { p.VrefV = 0 },
		func(p *Params) { p.TrefK = -5 },
		func(p *Params) { p.LeakTempCoeffPerK = -0.1 },
		func(p *Params) { p.LeakVoltageExp = -1 },
		func(p *Params) { p.UncoreW = -1 },
	}
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestDynamicScalesQuadraticallyWithVoltage(t *testing.T) {
	p := Default()
	w1 := p.DynamicW(0.6, 2e9, 1)
	w2 := p.DynamicW(1.2, 2e9, 1)
	if ratio := w2 / w1; math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("doubling voltage scaled dynamic power by %v, want 4", ratio)
	}
}

func TestDynamicScalesLinearlyWithFrequency(t *testing.T) {
	p := Default()
	w1 := p.DynamicW(1.0, 1e9, 1)
	w2 := p.DynamicW(1.0, 3e9, 1)
	if ratio := w2 / w1; math.Abs(ratio-3) > 1e-9 {
		t.Fatalf("3x frequency scaled dynamic power by %v, want 3", ratio)
	}
}

func TestActivityClamped(t *testing.T) {
	p := Default()
	if w := p.DynamicW(1.0, 1e9, -0.5); w != 0 {
		t.Fatalf("negative activity gave %v, want 0", w)
	}
	full := p.DynamicW(1.0, 1e9, 1)
	if w := p.DynamicW(1.0, 1e9, 2.5); w != full {
		t.Fatalf("activity > 1 gave %v, want %v", w, full)
	}
}

func TestLeakageTemperatureDoubling(t *testing.T) {
	p := Default()
	w1 := p.LeakageW(1.0, 330)
	w2 := p.LeakageW(1.0, 330+math.Ln2/p.LeakTempCoeffPerK)
	if ratio := w2 / w1; math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("temperature rise of ln2/coeff scaled leakage by %v, want 2", ratio)
	}
}

func TestLeakageZeroAtZeroVoltage(t *testing.T) {
	p := Default()
	if w := p.LeakageW(0, 350); w != 0 {
		t.Fatalf("leakage at 0 V = %v, want 0", w)
	}
	if w := p.LeakageW(-1, 350); w != 0 {
		t.Fatalf("leakage at negative V = %v, want 0", w)
	}
}

func TestCoreWIsSum(t *testing.T) {
	p := Default()
	d := p.DynamicW(1.0, 2e9, 0.7)
	l := p.LeakageW(1.0, 340)
	if got := p.CoreW(1.0, 2e9, 0.7, 340); math.Abs(got-(d+l)) > 1e-12 {
		t.Fatalf("CoreW = %v, want %v", got, d+l)
	}
}

func TestChipWIncludesUncore(t *testing.T) {
	p := Default()
	cores := []float64{1, 2, 3}
	if got := p.ChipW(cores); math.Abs(got-(6+p.UncoreW)) > 1e-12 {
		t.Fatalf("ChipW = %v, want %v", got, 6+p.UncoreW)
	}
	if got := p.ChipW(nil); got != p.UncoreW {
		t.Fatalf("ChipW(nil) = %v, want uncore floor %v", got, p.UncoreW)
	}
}

func TestDefaultMagnitudes(t *testing.T) {
	// Sanity-check the calibration targets stated in the package comment.
	p := Default()
	top := p.CoreW(1.15, 3.6e9, 1.0, 330)
	if top < 2.5 || top > 4.5 {
		t.Fatalf("top-level active core power = %v W, want 2.5-4.5 W", top)
	}
	bottom := p.CoreW(0.46, 1.0e9, 0.1, 310)
	if bottom < 0.01 || bottom > 0.5 {
		t.Fatalf("bottom-level quiet core power = %v W, want 0.01-0.5 W", bottom)
	}
}

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.Add(100, 90, 1.0) // 10 W over budget for 1 s
	m.Add(80, 90, 2.0)  // under budget
	if got := m.EnergyJ(); math.Abs(got-260) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want 260", got)
	}
	if got := m.OverBudgetJ(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("OverBudgetJ = %v, want 10", got)
	}
	if got := m.OverBudgetTimeS(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("OverBudgetTimeS = %v, want 1", got)
	}
	if got := m.PeakW(); got != 100 {
		t.Fatalf("PeakW = %v, want 100", got)
	}
	if got := m.MeanW(); math.Abs(got-260.0/3.0) > 1e-9 {
		t.Fatalf("MeanW = %v, want %v", got, 260.0/3.0)
	}
	if got := m.Samples(); got != 2 {
		t.Fatalf("Samples = %d, want 2", got)
	}
}

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.MeanW() != 0 || m.EnergyJ() != 0 || m.PeakW() != 0 {
		t.Fatal("zero-value meter not zeroed")
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Add(50, 40, 1)
	m.Reset()
	if m.EnergyJ() != 0 || m.TimeS() != 0 || m.Samples() != 0 {
		t.Fatal("Reset did not clear meter")
	}
}

func TestMeterPanicsOnNegativeInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	var m Meter
	m.Add(10, 10, -1)
}

// Property: total power is monotone in voltage, frequency, activity and
// temperature for physically meaningful inputs.
func TestQuickCorePowerMonotone(t *testing.T) {
	p := Default()
	f := func(v1, v2, fr1, fr2 uint16) bool {
		va := 0.4 + float64(v1%100)/125.0 // 0.4 .. 1.19
		vb := 0.4 + float64(v2%100)/125.0
		fa := 1e9 + float64(fr1%3000)*1e6
		fb := 1e9 + float64(fr2%3000)*1e6
		if va > vb {
			va, vb = vb, va
		}
		if fa > fb {
			fa, fb = fb, fa
		}
		lo := p.CoreW(va, fa, 0.5, 330)
		hi := p.CoreW(vb, fb, 0.5, 330)
		return lo <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: meter energy equals the sum of w*dt over all samples.
func TestQuickMeterEnergyConservation(t *testing.T) {
	f := func(samples []uint16) bool {
		var m Meter
		want := 0.0
		for _, s := range samples {
			w := float64(s % 200)
			dt := float64(s%7) * 0.001
			m.Add(w, 100, dt)
			want += w * dt
		}
		return math.Abs(m.EnergyJ()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: over-budget energy never exceeds total energy and is
// non-negative.
func TestQuickOverBudgetBounded(t *testing.T) {
	f := func(samples []uint16, budgetRaw uint8) bool {
		budget := float64(budgetRaw)
		var m Meter
		for _, s := range samples {
			m.Add(float64(s%300), budget, 0.01)
		}
		return m.OverBudgetJ() >= 0 && m.OverBudgetJ() <= m.EnergyJ()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
