// Package power implements the per-core and chip-level power model:
// switching (dynamic) power αC·V²·f plus temperature-dependent leakage.
//
// The model plays the role McPAT plays for the paper's simulator: it maps
// the architectural state the simulator produces (voltage, frequency,
// activity, temperature) to watts, which is the only power-side interface a
// DVFS controller observes. Constants default to a 22 nm-class many-core
// where a core spans roughly 0.13 W (idle, slowest level) to 3.5 W (fully
// active, fastest level).
package power

import (
	"fmt"
	"math"
)

// Params are the technology constants of the power model.
type Params struct {
	// CeffF is the effective switched capacitance of one core in farads;
	// dynamic power is Activity*CeffF*V²*f.
	CeffF float64
	// LeakI0A is the leakage current of one core at VrefV and TrefK.
	LeakI0A float64
	// VrefV and TrefK anchor the leakage model.
	VrefV float64
	TrefK float64
	// LeakTempCoeffPerK is the exponential temperature coefficient of
	// leakage current: I = I0 * exp(coeff*(T-Tref)). A value of 0.02/K
	// doubles leakage roughly every 35 K, typical of scaled CMOS.
	LeakTempCoeffPerK float64
	// LeakVoltageExp models the super-linear voltage dependence of leakage
	// current (DIBL): I ∝ (V/Vref)^exp.
	LeakVoltageExp float64
	// UncoreW is constant per-chip power (NoC idle, memory controllers,
	// clock distribution) charged on top of core power.
	UncoreW float64
}

// Default returns constants for the default 22 nm-class platform.
func Default() Params {
	return Params{
		CeffF:             0.63e-9,
		LeakI0A:           0.40,
		VrefV:             1.15,
		TrefK:             330,
		LeakTempCoeffPerK: 0.02,
		LeakVoltageExp:    1.5,
		UncoreW:           4.0,
	}
}

// Validate reports the first invalid constant.
func (p Params) Validate() error {
	switch {
	case p.CeffF <= 0:
		return fmt.Errorf("power: CeffF must be positive, got %g", p.CeffF)
	case p.LeakI0A < 0:
		return fmt.Errorf("power: LeakI0A must be non-negative, got %g", p.LeakI0A)
	case p.VrefV <= 0:
		return fmt.Errorf("power: VrefV must be positive, got %g", p.VrefV)
	case p.TrefK <= 0:
		return fmt.Errorf("power: TrefK must be positive, got %g", p.TrefK)
	case p.LeakTempCoeffPerK < 0:
		return fmt.Errorf("power: LeakTempCoeffPerK must be non-negative, got %g", p.LeakTempCoeffPerK)
	case p.LeakVoltageExp < 0:
		return fmt.Errorf("power: LeakVoltageExp must be non-negative, got %g", p.LeakVoltageExp)
	case p.UncoreW < 0:
		return fmt.Errorf("power: UncoreW must be non-negative, got %g", p.UncoreW)
	}
	return nil
}

// DynamicW returns switching power in watts for one core at voltage v,
// frequency fHz and activity factor in [0,1].
func (p Params) DynamicW(v, fHz, activity float64) float64 {
	if activity < 0 {
		activity = 0
	} else if activity > 1 {
		activity = 1
	}
	return activity * p.CeffF * v * v * fHz
}

// LeakageW returns leakage power in watts for one core at voltage v and
// temperature tempK.
func (p Params) LeakageW(v, tempK float64) float64 {
	if v <= 0 {
		return 0
	}
	i := p.LeakI0A * math.Pow(v/p.VrefV, p.LeakVoltageExp) *
		math.Exp(p.LeakTempCoeffPerK*(tempK-p.TrefK))
	return v * i
}

// CoreW returns total power of one core.
func (p Params) CoreW(v, fHz, activity, tempK float64) float64 {
	return p.DynamicW(v, fHz, activity) + p.LeakageW(v, tempK)
}

// ChipW sums per-core powers and adds the uncore floor.
func (p Params) ChipW(coreW []float64) float64 {
	total := p.UncoreW
	for _, w := range coreW {
		total += w
	}
	return total
}

// Meter accumulates energy and tracks running power statistics across
// simulation epochs. The zero value is ready to use.
type Meter struct {
	energyJ     float64
	overJ       float64 // energy consumed above the budget in force
	timeS       float64
	peakW       float64
	overTimeS   float64
	sampleCount int
}

// Add records dt seconds at power w watts against budget budgetW. Negative
// dt is rejected with a panic since it indicates a simulator bug.
func (m *Meter) Add(w, budgetW, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("power: negative interval %g", dt))
	}
	m.energyJ += w * dt
	m.timeS += dt
	if w > m.peakW {
		m.peakW = w
	}
	if w > budgetW {
		m.overJ += (w - budgetW) * dt
		m.overTimeS += dt
	}
	m.sampleCount++
}

// EnergyJ returns total accumulated energy in joules.
func (m *Meter) EnergyJ() float64 { return m.energyJ }

// OverBudgetJ returns energy accumulated above the budget (the overshoot
// integral, in joules — numerically identical to W·s over budget).
func (m *Meter) OverBudgetJ() float64 { return m.overJ }

// OverBudgetTimeS returns how long the chip spent above budget.
func (m *Meter) OverBudgetTimeS() float64 { return m.overTimeS }

// TimeS returns total accumulated time in seconds.
func (m *Meter) TimeS() float64 { return m.timeS }

// PeakW returns the maximum instantaneous power observed.
func (m *Meter) PeakW() float64 { return m.peakW }

// MeanW returns average power, or 0 before any time has accumulated.
func (m *Meter) MeanW() float64 {
	if m.timeS == 0 {
		return 0
	}
	return m.energyJ / m.timeS
}

// Samples returns how many intervals have been recorded.
func (m *Meter) Samples() int { return m.sampleCount }

// Reset clears the meter.
func (m *Meter) Reset() { *m = Meter{} }
