package power

import (
	"math"
	"testing"
)

// leakTestVoltages mirrors the default 8-level VF table's spread plus
// degenerate values.
var leakTestVoltages = []float64{0.55, 0.62, 0.71, 0.80, 0.89, 0.97, 1.06, 1.15}

// TestLUTLeakageBitEqual pins the contract the epoch kernel relies on:
// the LUT path and Params.LeakageW must agree to the last bit at every
// level across a wide temperature range — not approximately, exactly,
// because the golden-file tests compare RL trajectories byte-for-byte.
func TestLUTLeakageBitEqual(t *testing.T) {
	for _, p := range []Params{Default(), {
		CeffF: 1e-9, LeakI0A: 0.7, VrefV: 1.0, TrefK: 300,
		LeakTempCoeffPerK: 0.035, LeakVoltageExp: 2.1, UncoreW: 1,
	}} {
		lut := NewLUT(p, leakTestVoltages)
		for lev, v := range leakTestVoltages {
			for tempK := 250.0; tempK <= 420.0; tempK += 0.37 {
				want := p.LeakageW(v, tempK)
				got := lut.LeakageWAt(lev, tempK)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("level %d temp %.2f: LUT %x != LeakageW %x", lev, tempK, got, want)
				}
			}
		}
	}
}

// TestLUTFixedTempBitEqual: the thermal-off fast path must also be exact.
func TestLUTFixedTempBitEqual(t *testing.T) {
	p := Default()
	lut := NewLUT(p, leakTestVoltages)
	for _, tempK := range []float64{300, 318, 345.25, 400} {
		table := lut.FixedTempLeakageW(tempK)
		for lev, v := range leakTestVoltages {
			want := p.LeakageW(v, tempK)
			if math.Float64bits(table[lev]) != math.Float64bits(want) {
				t.Fatalf("level %d temp %g: fixed table %x != LeakageW %x", lev, tempK, table[lev], want)
			}
		}
	}
}

// TestLUTNonPositiveVoltage: degenerate voltages behave like LeakageW
// (zero), never NaN.
func TestLUTNonPositiveVoltage(t *testing.T) {
	p := Default()
	lut := NewLUT(p, []float64{0, -1, 1.0})
	if got := lut.LeakageWAt(0, 330); got != 0 {
		t.Fatalf("v=0 leakage = %g, want 0", got)
	}
	if got := lut.LeakageWAt(1, 330); got != 0 {
		t.Fatalf("v=-1 leakage = %g, want 0", got)
	}
	if got := lut.FixedTempLeakageW(330)[1]; got != 0 {
		t.Fatalf("v=-1 fixed leakage = %g, want 0", got)
	}
	if lut.Levels() != 3 {
		t.Fatalf("Levels() = %d, want 3", lut.Levels())
	}
}
