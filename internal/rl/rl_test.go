package rl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func baseConfig() Config {
	return Config{
		States:       4,
		Actions:      2,
		Alpha:        0.2,
		Gamma:        0.9,
		Algorithm:    QLearning,
		Policy:       EpsilonGreedy,
		EpsilonStart: 1.0,
		EpsilonEnd:   0.01,
		EpsilonDecay: 0.999,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.States = 0 },
		func(c *Config) { c.Actions = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.Gamma = 1.0 },
		func(c *Config) { c.Gamma = -0.1 },
		func(c *Config) { c.EpsilonStart = 1.2 },
		func(c *Config) { c.EpsilonEnd = 2.0 },
		func(c *Config) { c.EpsilonDecay = 0 },
		func(c *Config) { c.Algorithm = Algorithm(9) },
		func(c *Config) { c.Policy = PolicyKind(9) },
	}
	for i, mutate := range mutations {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if QLearning.String() != "q-learning" || SARSA.String() != "sarsa" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(7).String() == "" {
		t.Fatal("unknown algorithm must still stringify")
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable(3, 2, 0.5)
	if tbl.States() != 3 || tbl.Actions() != 2 {
		t.Fatal("dimensions wrong")
	}
	if tbl.Get(1, 1) != 0.5 {
		t.Fatal("optimistic init missing")
	}
	tbl.Set(2, 0, 3.0)
	if tbl.Get(2, 0) != 3.0 {
		t.Fatal("Set/Get roundtrip failed")
	}
	act, val := tbl.Best(2)
	if act != 0 || val != 3.0 {
		t.Fatalf("Best = (%d, %v), want (0, 3.0)", act, val)
	}
	// Tie-break toward the lowest index.
	tbl.Set(0, 0, 1)
	tbl.Set(0, 1, 1)
	if act, _ := tbl.Best(0); act != 0 {
		t.Fatal("tie must break to action 0")
	}
}

func TestEpsilonSchedule(t *testing.T) {
	cfg := baseConfig()
	a, err := NewAgent(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Epsilon(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("initial epsilon = %v, want 1.0", got)
	}
	a.Begin(0)
	for i := 0; i < 10000; i++ {
		a.Step(0, 0)
	}
	if got := a.Epsilon(); got > 0.02 {
		t.Fatalf("epsilon after 10k steps = %v, want near end value 0.01", got)
	}
	if a.Steps() != 10000 {
		t.Fatalf("Steps = %d, want 10000", a.Steps())
	}
}

func TestStepBeforeBeginPanics(t *testing.T) {
	a, _ := NewAgent(baseConfig(), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Step(1, 0)
}

func TestStatePanicsOutOfRange(t *testing.T) {
	a, _ := NewAgent(baseConfig(), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Begin(99)
}

func TestNilRNGRejected(t *testing.T) {
	if _, err := NewAgent(baseConfig(), nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

// twoArmedBandit: single state, action 1 pays 1.0, action 0 pays 0.1.
// Any sane learner must converge to action 1 greedily.
func TestBanditConvergence(t *testing.T) {
	for _, alg := range []Algorithm{QLearning, SARSA} {
		for _, pol := range []PolicyKind{EpsilonGreedy, Softmax} {
			cfg := baseConfig()
			cfg.States = 1
			cfg.Actions = 2
			cfg.Algorithm = alg
			cfg.Policy = pol
			cfg.EpsilonDecay = 0.995
			a, err := NewAgent(cfg, rng.New(5))
			if err != nil {
				t.Fatal(err)
			}
			act := a.Begin(0)
			for i := 0; i < 5000; i++ {
				reward := 0.1
				if act == 1 {
					reward = 1.0
				}
				act = a.Step(reward, 0)
			}
			if a.Greedy(0) != 1 {
				t.Errorf("%v/%v: greedy action = %d, want 1", alg, pol, a.Greedy(0))
			}
		}
	}
}

// chainMDP tests multi-step credit assignment: states 0..3, action 1 moves
// right, action 0 moves left (clamped); reward 1 only when entering state 3,
// else 0. Optimal policy is always-right from every state.
func TestChainMDPCreditAssignment(t *testing.T) {
	cfg := baseConfig()
	cfg.States = 4
	cfg.Actions = 2
	cfg.Alpha = 0.3
	cfg.EpsilonDecay = 0.9995
	a, err := NewAgent(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	s := 0
	act := a.Begin(s)
	for i := 0; i < 30000; i++ {
		next := s
		if act == 1 {
			next++
		} else {
			next--
		}
		if next < 0 {
			next = 0
		}
		reward := 0.0
		if next == 3 {
			reward = 1.0
			// episode restarts
			a.Step(reward, 0)
			s = 0
			act = a.Greedy(0)
			if a.Epsilon() > 0.05 {
				act = a.Begin(0)
			} else {
				act = a.Begin(0)
			}
			continue
		}
		act = a.Step(reward, next)
		s = next
	}
	for st := 0; st < 3; st++ {
		if a.Greedy(st) != 1 {
			t.Fatalf("state %d: greedy action = %d, want 1 (right)", st, a.Greedy(st))
		}
	}
}

// Q-learning must learn the off-policy optimum even under heavy exploration.
// In the continuing teleport formulation, the reward of 1 recurs every three
// right-moves, so Q*(0,right) = γ²·(1 + γ³ + γ⁶ + …) = γ²/(1−γ³).
func TestQLearningValueMagnitude(t *testing.T) {
	cfg := baseConfig()
	cfg.States = 4
	cfg.Actions = 2
	cfg.Alpha = 0.1
	cfg.Gamma = 0.9
	cfg.EpsilonStart = 1.0
	cfg.EpsilonEnd = 1.0 // pure exploration; Q-learning is off-policy
	cfg.EpsilonDecay = 1.0
	a, _ := NewAgent(cfg, rng.New(13))
	s := 0
	act := a.Begin(s)
	for i := 0; i < 200000; i++ {
		next := s
		if act == 1 {
			next++
		} else {
			next--
		}
		if next < 0 {
			next = 0
		}
		reward := 0.0
		if next == 3 {
			reward = 1.0
			next = 0 // teleport home, continuing episode
		}
		act = a.Step(reward, next)
		s = next
	}
	g := cfg.Gamma
	want := g * g / (1 - g*g*g)
	got := a.Table().Get(0, 1)
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("Q(0,right) = %v, want ~%v", got, want)
	}
}

func TestSARSAIsOnPolicy(t *testing.T) {
	// Under permanent full exploration SARSA's values reflect the random
	// policy, which in the chain yields strictly lower Q(0,right) than the
	// off-policy optimum Q-learning finds.
	run := func(alg Algorithm) float64 {
		cfg := baseConfig()
		cfg.States = 4
		cfg.Actions = 2
		cfg.Alpha = 0.1
		cfg.Gamma = 0.9
		cfg.Algorithm = alg
		cfg.EpsilonStart = 1.0
		cfg.EpsilonEnd = 1.0
		cfg.EpsilonDecay = 1.0
		a, _ := NewAgent(cfg, rng.New(17))
		s := 0
		act := a.Begin(s)
		for i := 0; i < 200000; i++ {
			next := s
			if act == 1 {
				next++
			} else {
				next--
			}
			if next < 0 {
				next = 0
			}
			reward := 0.0
			if next == 3 {
				reward = 1.0
				next = 0
			}
			act = a.Step(reward, next)
			s = next
		}
		return a.Table().Get(0, 1)
	}
	q := run(QLearning)
	sarsa := run(SARSA)
	if sarsa >= q {
		t.Fatalf("SARSA value %v should be below Q-learning %v under exploration", sarsa, q)
	}
}

func TestDeterministicLearning(t *testing.T) {
	run := func() float64 {
		a, _ := NewAgent(baseConfig(), rng.New(23))
		act := a.Begin(0)
		for i := 0; i < 1000; i++ {
			r := float64(act)
			act = a.Step(r, (i+act)%4)
		}
		sum := 0.0
		for s := 0; s < 4; s++ {
			for ac := 0; ac < 2; ac++ {
				sum += a.Table().Get(s, ac)
			}
		}
		return sum
	}
	if run() != run() {
		t.Fatal("same-seed agents learned different tables")
	}
}

// Property: Q-values stay bounded by Rmax/(1−γ) for bounded rewards.
func TestQuickQValueBounds(t *testing.T) {
	f := func(seed uint64, rewards []uint8) bool {
		cfg := baseConfig()
		cfg.InitialQ = 0
		a, _ := NewAgent(cfg, rng.New(seed))
		act := a.Begin(0)
		_ = act
		bound := 1.0/(1-cfg.Gamma) + 1e-9
		for i, rw := range rewards {
			r := float64(rw%100) / 100.0 // rewards in [0,1)
			a.Step(r, i%cfg.States)
		}
		for s := 0; s < cfg.States; s++ {
			for ac := 0; ac < cfg.Actions; ac++ {
				v := a.Table().Get(s, ac)
				if v < -bound || v > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAgentStep(b *testing.B) {
	cfg := baseConfig()
	cfg.States = 128
	cfg.Actions = 8
	a, _ := NewAgent(cfg, rng.New(1))
	a.Begin(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(0.5, i%128)
	}
}
