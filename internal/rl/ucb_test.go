package rl

import (
	"testing"

	"repro/internal/rng"
)

func ucbConfig() Config {
	c := baseConfig()
	c.Policy = UCB
	c.UCBc = 1.0
	return c
}

func TestUCBConfigValidation(t *testing.T) {
	c := ucbConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.UCBc = 0
	if err := c.Validate(); err == nil {
		t.Fatal("UCB with zero constant must be rejected")
	}
	c.UCBc = -1
	if err := c.Validate(); err == nil {
		t.Fatal("UCB with negative constant must be rejected")
	}
}

func TestUCBTriesEveryActionFirst(t *testing.T) {
	cfg := ucbConfig()
	cfg.States = 1
	cfg.Actions = 5
	a, err := NewAgent(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	act := a.Begin(0)
	seen[act] = true
	for i := 0; i < 4; i++ {
		act = a.Step(0, 0)
		seen[act] = true
	}
	if len(seen) != 5 {
		t.Fatalf("first 5 picks covered %d distinct actions, want all 5", len(seen))
	}
	for act := 0; act < 5; act++ {
		if a.Visits(0, act) != 1 {
			t.Fatalf("action %d visited %v times after the sweep", act, a.Visits(0, act))
		}
	}
}

func TestUCBSolvesBandit(t *testing.T) {
	cfg := ucbConfig()
	cfg.States = 1
	cfg.Actions = 4
	a, err := NewAgent(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	act := a.Begin(0)
	for i := 0; i < 4000; i++ {
		reward := 0.1
		if act == 2 {
			reward = 1.0
		}
		act = a.Step(reward, 0)
	}
	if a.Greedy(0) != 2 {
		t.Fatalf("UCB greedy action = %d, want 2", a.Greedy(0))
	}
	// The best arm must dominate visit counts.
	if a.Visits(0, 2) < 2000 {
		t.Fatalf("best arm visited only %v of 4000 steps", a.Visits(0, 2))
	}
}

func TestUCBSolvesChain(t *testing.T) {
	cfg := ucbConfig()
	cfg.Alpha = 0.2
	a, err := NewAgent(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s := 0
	act := a.Begin(s)
	for i := 0; i < 30000; i++ {
		next := s
		if act == 1 {
			next++
		} else {
			next--
		}
		if next < 0 {
			next = 0
		}
		reward := 0.0
		if next == 3 {
			reward = 1.0
			next = 0
		}
		act = a.Step(reward, next)
		s = next
	}
	for st := 0; st < 3; st++ {
		if a.Greedy(st) != 1 {
			t.Fatalf("UCB chain: state %d greedy = %d, want 1", st, a.Greedy(st))
		}
	}
}

func TestVisitsZeroForNonUCB(t *testing.T) {
	a, _ := NewAgent(baseConfig(), rng.New(1))
	a.Begin(0)
	a.Step(1, 0)
	if a.Visits(0, 0) != 0 {
		t.Fatal("non-UCB agent reported visit counts")
	}
}
