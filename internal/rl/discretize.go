package rl

import "fmt"

// Discretizer maps a continuous value onto one of k uniform buckets over
// [lo, hi]; values outside the range clamp to the end buckets. It turns
// telemetry (power headroom, memory-boundedness, ...) into table indices.
type Discretizer struct {
	lo, hi float64
	k      int
}

// NewDiscretizer builds a k-bucket discretizer over [lo, hi].
func NewDiscretizer(lo, hi float64, k int) (Discretizer, error) {
	if k <= 0 {
		return Discretizer{}, fmt.Errorf("rl: bucket count must be positive, got %d", k)
	}
	if hi <= lo {
		return Discretizer{}, fmt.Errorf("rl: invalid range [%g, %g]", lo, hi)
	}
	return Discretizer{lo: lo, hi: hi, k: k}, nil
}

// MustDiscretizer is NewDiscretizer for static parameters.
func MustDiscretizer(lo, hi float64, k int) Discretizer {
	d, err := NewDiscretizer(lo, hi, k)
	if err != nil {
		panic(err)
	}
	return d
}

// Buckets returns the bucket count.
func (d Discretizer) Buckets() int { return d.k }

// Bucket returns the bucket index for v, clamped into [0, k).
func (d Discretizer) Bucket(v float64) int {
	if v <= d.lo {
		return 0
	}
	if v >= d.hi {
		return d.k - 1
	}
	b := int(float64(d.k) * (v - d.lo) / (d.hi - d.lo))
	if b >= d.k {
		b = d.k - 1
	}
	return b
}

// Codec flattens a multi-dimensional discrete state into a single table
// index, row-major with the first dimension varying slowest.
type Codec struct {
	dims []int
	size int
}

// NewCodec builds a codec over the given dimension sizes.
func NewCodec(dims ...int) (Codec, error) {
	if len(dims) == 0 {
		return Codec{}, fmt.Errorf("rl: codec needs at least one dimension")
	}
	size := 1
	for i, d := range dims {
		if d <= 0 {
			return Codec{}, fmt.Errorf("rl: codec dimension %d has size %d", i, d)
		}
		size *= d
	}
	out := Codec{dims: make([]int, len(dims)), size: size}
	copy(out.dims, dims)
	return out, nil
}

// MustCodec is NewCodec for static parameters.
func MustCodec(dims ...int) Codec {
	c, err := NewCodec(dims...)
	if err != nil {
		panic(err)
	}
	return c
}

// States returns the total flattened state count.
func (c Codec) States() int { return c.size }

// Encode flattens per-dimension indices into one state index. It panics on
// dimension mismatch or out-of-range indices.
func (c Codec) Encode(idx ...int) int {
	if len(idx) != len(c.dims) {
		panic(fmt.Sprintf("rl: codec got %d indices for %d dims", len(idx), len(c.dims)))
	}
	s := 0
	for i, v := range idx {
		if v < 0 || v >= c.dims[i] {
			panic(fmt.Sprintf("rl: codec index %d out of range [0,%d) in dim %d", v, c.dims[i], i))
		}
		s = s*c.dims[i] + v
	}
	return s
}

// Decode inverts Encode, filling a fresh slice of per-dimension indices.
func (c Codec) Decode(state int) []int {
	if state < 0 || state >= c.size {
		panic(fmt.Sprintf("rl: state %d out of range [0,%d)", state, c.size))
	}
	out := make([]int, len(c.dims))
	for i := len(c.dims) - 1; i >= 0; i-- {
		out[i] = state % c.dims[i]
		state /= c.dims[i]
	}
	return out
}
