package rl

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file holds the optional learning extensions: Watkins Q(λ)
// eligibility traces, double Q-learning, and Q-table persistence for
// warm-starting controllers across runs.

// DoubleQLearning is the double-estimator variant of Q-learning: two
// tables cross-evaluate each other's greedy action, removing the
// max-operator's positive bias in noisy environments (van Hasselt 2010).
// Declared here with the other Algorithm values' semantics.
const DoubleQLearning Algorithm = 2

// tracesEnabled reports whether the agent runs Watkins Q(λ).
func (c Config) tracesEnabled() bool { return c.TraceLambda > 0 }

// validateExtensions is called from Config.Validate.
func (c Config) validateExtensions() error {
	if c.TraceLambda < 0 || c.TraceLambda >= 1 {
		return fmt.Errorf("rl: TraceLambda must be in [0,1), got %g", c.TraceLambda)
	}
	if c.Algorithm == DoubleQLearning && c.tracesEnabled() {
		return fmt.Errorf("rl: eligibility traces are not supported with double Q-learning")
	}
	return nil
}

// stepDouble performs one double Q-learning update. The two estimators are
// a.table and a.table2; a fair coin picks which one is updated, using the
// other's value of the first's greedy action as the bootstrap.
func (a *Agent) stepDouble(reward float64, next int) {
	upd, other := a.table, a.table2
	if a.r.Float64() < 0.5 {
		upd, other = a.table2, a.table
	}
	greedy, _ := upd.Best(next)
	target := reward + a.cfg.Gamma*other.Get(next, greedy)
	old := upd.Get(a.lastState, a.lastAct)
	upd.setRaw(a.lastState, a.lastAct, old+a.cfg.Alpha*(target-old))
	a.noteTD(target - old)
	// The selection value is the estimator mean, so the cache refresh reads
	// the combined value of the updated pair.
	a.noteUpdate(a.lastState, a.lastAct, a.combinedQ(a.lastState, a.lastAct))
}

// combinedQ returns the action-value used for double-Q action selection:
// the mean of both estimators.
func (a *Agent) combinedQ(s, act int) float64 {
	return (a.table.Get(s, act) + a.table2.Get(s, act)) / 2
}

// bestCombined is Best over the averaged estimators, walking both rows
// directly rather than re-deriving the row base per cell; the per-cell
// value is the same (q1+q2)/2 combinedQ computes, ties still breaking
// toward the lowest action index.
func (a *Agent) bestCombined(s int) (int, float64) {
	base := s * a.cfg.Actions
	q1 := a.table.q[base : base+a.cfg.Actions]
	q2 := a.table2.q[base : base+a.cfg.Actions]
	act, val := 0, (q1[0]+q2[0])/2
	for i := 1; i < len(q1); i++ {
		if v := (q1[i] + q2[i]) / 2; v > val {
			act, val = i, v
		}
	}
	return act, val
}

// stepTraces performs one Watkins Q(λ) update: the TD error is broadcast
// along the eligibility trail, which is cut whenever the agent explores
// (the trail then no longer predicts the greedy return).
func (a *Agent) stepTraces(reward float64, next, nextAct int) {
	greedyNext, bootstrap := a.table.Best(next)
	delta := reward + a.cfg.Gamma*bootstrap - a.table.Get(a.lastState, a.lastAct)
	a.noteTD(delta)

	// Replacing traces: the revisited pair snaps back to full credit.
	a.trace[a.lastState*a.cfg.Actions+a.lastAct] = 1

	decay := a.cfg.Gamma * a.cfg.TraceLambda
	cut := nextAct != greedyNext // Watkins: exploration severs the trail
	for i, e := range a.trace {
		if e == 0 {
			continue
		}
		a.table.q[i] += a.cfg.Alpha * delta * e
		if cut {
			a.trace[i] = 0
			continue
		}
		e *= decay
		if e < 1e-8 {
			e = 0
		}
		a.trace[i] = e
	}
}

// tableState is the serialised form of a Table.
type tableState struct {
	States  int       `json:"states"`
	Actions int       `json:"actions"`
	Q       []float64 `json:"q"`
}

// MarshalJSON implements json.Marshaler so tables embed naturally in
// larger policy files.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableState{States: t.states, Actions: t.actions, Q: t.q})
}

// UnmarshalJSON implements json.Unmarshaler with the same consistency
// checks as LoadTable.
func (t *Table) UnmarshalJSON(data []byte) error {
	var s tableState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("rl: decoding table: %w", err)
	}
	if s.States <= 0 || s.Actions <= 0 || len(s.Q) != s.States*s.Actions {
		return fmt.Errorf("rl: inconsistent table (%d states x %d actions, %d values)",
			s.States, s.Actions, len(s.Q))
	}
	t.states, t.actions, t.q = s.States, s.Actions, s.Q
	t.dirty = true
	return nil
}

// Save serialises the table as JSON.
func (t *Table) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(tableState{States: t.states, Actions: t.actions, Q: t.q})
}

// LoadTable deserialises a table saved with Save.
func LoadTable(r io.Reader) (*Table, error) {
	var s tableState
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("rl: decoding table: %w", err)
	}
	if s.States <= 0 || s.Actions <= 0 || len(s.Q) != s.States*s.Actions {
		return nil, fmt.Errorf("rl: inconsistent table (%d states x %d actions, %d values)",
			s.States, s.Actions, len(s.Q))
	}
	return &Table{states: s.States, actions: s.Actions, q: s.Q}, nil
}

// CopyFrom replaces this table's values with src's; dimensions must match.
func (t *Table) CopyFrom(src *Table) error {
	if src.states != t.states || src.actions != t.actions {
		return fmt.Errorf("rl: table shape mismatch: %dx%d vs %dx%d",
			src.states, src.actions, t.states, t.actions)
	}
	copy(t.q, src.q)
	t.dirty = true
	return nil
}
