package rl

import (
	"testing"
	"testing/quick"
)

func TestDiscretizerBasics(t *testing.T) {
	d, err := NewDiscretizer(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.1, 0}, {0.26, 1}, {0.51, 2}, {0.76, 3}, {1.0, 3}, {5, 3},
	}
	for _, c := range cases {
		if got := d.Bucket(c.v); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if d.Buckets() != 4 {
		t.Fatal("Buckets() wrong")
	}
}

func TestDiscretizerValidation(t *testing.T) {
	if _, err := NewDiscretizer(0, 1, 0); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	if _, err := NewDiscretizer(1, 1, 3); err == nil {
		t.Fatal("expected error for empty range")
	}
	if _, err := NewDiscretizer(2, 1, 3); err == nil {
		t.Fatal("expected error for inverted range")
	}
}

func TestMustDiscretizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDiscretizer(0, 0, 1)
}

func TestCodecRoundTrip(t *testing.T) {
	c, err := NewCodec(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.States() != 60 {
		t.Fatalf("States = %d, want 60", c.States())
	}
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				s := c.Encode(i, j, k)
				if s < 0 || s >= 60 {
					t.Fatalf("Encode(%d,%d,%d) = %d out of range", i, j, k, s)
				}
				if seen[s] {
					t.Fatalf("Encode collision at %d", s)
				}
				seen[s] = true
				d := c.Decode(s)
				if d[0] != i || d[1] != j || d[2] != k {
					t.Fatalf("Decode(%d) = %v, want [%d %d %d]", s, d, i, j, k)
				}
			}
		}
	}
}

func TestCodecValidation(t *testing.T) {
	if _, err := NewCodec(); err == nil {
		t.Fatal("expected error for no dims")
	}
	if _, err := NewCodec(3, 0); err == nil {
		t.Fatal("expected error for zero dim")
	}
}

func TestCodecPanics(t *testing.T) {
	c := MustCodec(2, 2)
	for _, fn := range []func(){
		func() { c.Encode(1) },
		func() { c.Encode(2, 0) },
		func() { c.Encode(-1, 0) },
		func() { c.Decode(4) },
		func() { c.Decode(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: bucket indices are monotone in the input value.
func TestQuickDiscretizerMonotone(t *testing.T) {
	d := MustDiscretizer(-10, 10, 16)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return d.Bucket(a) <= d.Bucket(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode∘Decode is the identity over the whole state space for
// arbitrary codec shapes.
func TestQuickCodecBijective(t *testing.T) {
	f := func(d1, d2, d3 uint8) bool {
		c, err := NewCodec(int(d1%5)+1, int(d2%5)+1, int(d3%5)+1)
		if err != nil {
			return false
		}
		for s := 0; s < c.States(); s++ {
			if got := c.Encode(c.Decode(s)...); got != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
