package rl

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestEpsilonCacheBitEqual drives two identically-seeded agents — one
// attached to a properly warmed shared cache, one without — and requires
// identical epsilon values and identical action streams at every step.
func TestEpsilonCacheBitEqual(t *testing.T) {
	cfg := Config{
		States: 12, Actions: 4,
		Alpha: 0.2, Gamma: 0.9,
		EpsilonStart: 0.5, EpsilonEnd: 0.02, EpsilonDecay: 0.999,
	}
	cached, err := NewAgent(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewAgent(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ec := NewEpsilonCache(cfg.EpsilonStart, cfg.EpsilonEnd, cfg.EpsilonDecay)
	if !cached.AttachEpsilonCache(ec) {
		t.Fatal("matching cache refused")
	}

	ec.WarmAt(0)
	if a, b := cached.Begin(0), plain.Begin(0); a != b {
		t.Fatalf("Begin diverged: %d vs %d", a, b)
	}
	st := rng.New(5)
	for step := 0; step < 400; step++ {
		ec.WarmAt(step) // the lockstep count selectAction sees this step
		s := st.Intn(cfg.States)
		r := st.Float64()
		if ce, pe := cached.Epsilon(), plain.Epsilon(); ce != pe ||
			math.Float64bits(ce) != math.Float64bits(pe) {
			t.Fatalf("step %d: epsilon diverged: %v vs %v", step, ce, pe)
		}
		if a, b := cached.Step(r, s), plain.Step(r, s); a != b {
			t.Fatalf("step %d: action diverged: %d vs %d", step, a, b)
		}
	}
}

// TestEpsilonCacheMissComputesInline: an agent that fell out of lockstep
// (cache warmed for a different step count) must compute its own epsilon,
// bit-equal to the schedule, and must not write to the shared cache.
func TestEpsilonCacheMissComputesInline(t *testing.T) {
	cfg := Config{
		States: 4, Actions: 3,
		Alpha: 0.2, Gamma: 0.9,
		EpsilonStart: 0.5, EpsilonEnd: 0.02, EpsilonDecay: 0.999,
	}
	a, err := NewAgent(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ec := NewEpsilonCache(cfg.EpsilonStart, cfg.EpsilonEnd, cfg.EpsilonDecay)
	a.AttachEpsilonCache(ec)
	ec.WarmAt(1000) // agent is at step 0: guaranteed miss
	want := cfg.EpsilonEnd + (cfg.EpsilonStart-cfg.EpsilonEnd)*math.Pow(cfg.EpsilonDecay, 0)
	if got := a.Epsilon(); got != want {
		t.Fatalf("miss path: got %v want %v", got, want)
	}
	if ec.step != 1000 {
		t.Fatalf("miss path wrote to the shared cache: step %d", ec.step)
	}
}

// TestEpsilonCacheRejectsMismatch: attaching a cache for a different
// schedule must be refused, leaving the agent computing inline.
func TestEpsilonCacheRejectsMismatch(t *testing.T) {
	cfg := Config{
		States: 4, Actions: 3,
		Alpha: 0.2, Gamma: 0.9,
		EpsilonStart: 0.5, EpsilonEnd: 0.02, EpsilonDecay: 0.999,
	}
	a, err := NewAgent(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.AttachEpsilonCache(NewEpsilonCache(0.9, 0.02, 0.999)) {
		t.Fatal("mismatched cache accepted")
	}
	if a.epsCache != nil {
		t.Fatal("agent attached to mismatched cache")
	}
}
