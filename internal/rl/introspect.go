package rl

import "fmt"

// This file holds the learning-introspection hooks: a per-step Probe the
// observability layer (internal/obs/learn) reads after every update, plus
// the incrementally-maintained greedy-action cache that keeps the probes
// O(1) per step. The probes are pure observation — they never draw from the
// agent's RNG or change update order, so decision streams are bit-identical
// with introspection on or off. With it off, the cost is a handful of
// untaken branches per step.

// Probe is the snapshot of one learning step, refreshed by every Step call
// once EnableIntrospection has been called.
type Probe struct {
	// TDError is the raw temporal-difference error δ of the step's update
	// (before the learning-rate scaling). For Watkins Q(λ) it is the single
	// broadcast δ; for double Q-learning, the δ of whichever estimator was
	// updated.
	TDError float64
	// QSpread is max−min over the action values of the most recently
	// updated state — collapses toward the action gap as the policy
	// sharpens. Computed lazily by LastProbe (one row scan per read, not
	// per step).
	QSpread float64
	// GreedyChanged reports whether the update flipped the greedy action of
	// the updated state, the per-step form of policy churn.
	GreedyChanged bool
	// ActedGreedy reports whether the action the step returned is the
	// greedy action of the state it was chosen in.
	ActedGreedy bool
}

// EnableIntrospection turns on per-step probes, visit tracking and the
// greedy-action cache. Idempotent; there is deliberately no way to turn it
// off, so observers never race a disable.
func (a *Agent) EnableIntrospection() {
	if a.visited == nil {
		a.visited = make([]bool, a.cfg.States)
		if a.started {
			a.visited[a.lastState] = true
			a.visitedCount = 1
		}
	}
	// Eligibility traces update many state-action pairs per step, which
	// would invalidate the whole cache every step; that variant keeps the
	// scan-based probe path instead.
	if !a.introspect && !a.cfg.tracesEnabled() {
		a.buildGreedyCache()
	}
	a.introspect = true
}

// LastProbe returns the probe of the most recent Step, computing QSpread on
// demand. Zero before the first probed step or when introspection is off.
func (a *Agent) LastProbe() Probe {
	p := a.probe
	if a.introspect && a.lastUpd >= 0 {
		p.QSpread = a.spreadAt(a.lastUpd)
	}
	return p
}

// VisitedStates counts distinct states the agent has occupied since
// introspection was enabled — the numerator of visit-count coverage.
func (a *Agent) VisitedStates() int { return a.visitedCount }

// TakeFlips returns the number of greedy-policy flips recorded since the
// previous call and resets the counter — the exact any-flip signal a
// strided learning-telemetry emitter needs between emits.
func (a *Agent) TakeFlips() int {
	f := a.flips
	a.flips = 0
	return f
}

// noteTD records the step's TD error when introspection is on. Each update
// branch calls it with its own δ.
func (a *Agent) noteTD(delta float64) {
	if a.introspect {
		a.probe.TDError = delta
	}
}

// buildGreedyCache (re)computes the greedy action and value of every state
// under the selection values. Called once at EnableIntrospection and again
// whenever a table was mutated behind the agent's back (Set/CopyFrom mark
// the table dirty).
func (a *Agent) buildGreedyCache() {
	if a.greedyAct == nil {
		a.greedyAct = make([]int32, a.cfg.States)
		a.greedyVal = make([]float64, a.cfg.States)
	}
	for s := 0; s < a.cfg.States; s++ {
		act, val := a.bestWithValue(s)
		a.greedyAct[s], a.greedyVal[s] = int32(act), val
	}
	a.table.dirty = false
	if a.table2 != nil {
		a.table2.dirty = false
	}
	a.cacheOK = true
}

// guardCache rebuilds the greedy cache after an external table mutation.
// One branch on the hot path; rebuilds are rare (warm-start loads, tests).
func (a *Agent) guardCache() {
	if a.cacheOK && (a.table.dirty || (a.table2 != nil && a.table2.dirty)) {
		a.buildGreedyCache()
	}
}

// bestWithValue is Best under the selection values (combined estimators for
// double Q-learning).
func (a *Agent) bestWithValue(s int) (int, float64) {
	if a.table2 != nil {
		return a.bestCombined(s)
	}
	return a.table.Best(s)
}

// noteUpdate maintains the greedy cache after the step's single-entry
// update changed (s, act)'s selection value to v, and records policy churn.
// The incremental cases reproduce Table.Best's lowest-index tie-breaking
// exactly; only a fallen cached maximum forces a row rescan.
func (a *Agent) noteUpdate(s, act int, v float64) {
	if !a.cacheOK {
		return
	}
	flipped := false
	cur := int(a.greedyAct[s])
	switch {
	case act == cur:
		if v >= a.greedyVal[s] {
			// The maximum rose (or held): no lower-index action can have
			// caught up, so the greedy action is unchanged.
			a.greedyVal[s] = v
		} else {
			na, nv := a.bestWithValue(s)
			a.greedyAct[s], a.greedyVal[s] = int32(na), nv
			flipped = na != cur
		}
	case v > a.greedyVal[s], v == a.greedyVal[s] && act < cur:
		a.greedyAct[s], a.greedyVal[s] = int32(act), v
		flipped = true
	}
	if a.introspect {
		a.probe.GreedyChanged = flipped
	}
	if flipped {
		a.flips++
	}
}

// finishProbe fills the remaining probe fields after the update. Called
// from Step only when introspection is on, with lastState/lastAct still
// pointing at the updated pair. With the cache active GreedyChanged was
// already recorded by noteUpdate and ActedGreedy is a single lookup; the
// traces variant falls back to row scans.
func (a *Agent) finishProbe(prevBest, next, nextAct int) {
	if a.cacheOK {
		a.probe.ActedGreedy = nextAct == int(a.greedyAct[next])
	} else {
		a.probe.GreedyChanged = a.bestAction(a.lastState) != prevBest
		if a.probe.GreedyChanged {
			a.flips++
		}
		a.probe.ActedGreedy = nextAct == a.bestAction(next)
	}
	a.lastUpd = a.lastState
	a.markVisited(next)
}

// markVisited records occupancy of state s.
func (a *Agent) markVisited(s int) {
	if a.visited != nil && !a.visited[s] {
		a.visited[s] = true
		a.visitedCount++
	}
}

// spreadAt is max−min over the selection values of state s.
func (a *Agent) spreadAt(s int) float64 {
	lo := a.valueOf(s, 0)
	hi := lo
	for i := 1; i < a.cfg.Actions; i++ {
		v := a.valueOf(s, i)
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	return hi - lo
}

// CopyTo copies the table's values into dst, which must have exactly
// states×actions capacity — the zero-allocation export the policy-snapshot
// layer builds on.
func (t *Table) CopyTo(dst []float64) error {
	if len(dst) != len(t.q) {
		return fmt.Errorf("rl: CopyTo dst has %d values, table has %d", len(dst), len(t.q))
	}
	copy(dst, t.q)
	return nil
}
