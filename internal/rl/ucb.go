package rl

import "math"

// UCB is an exploration policy based on upper confidence bounds (UCB1):
// the agent picks argmax_a Q(s,a) + c·sqrt(ln N(s) / n(s,a)), preferring
// actions whose value estimate is still uncertain. Unlike ε-greedy it
// explores systematically rather than uniformly, and it needs no decay
// schedule — the bonus vanishes as visit counts grow. The ε schedule
// fields are ignored; Config.UCBc sets the exploration constant.
const UCB PolicyKind = 2

// ucbState holds per-(state,action) visit counts; allocated lazily only
// for UCB agents.
type ucbState struct {
	visits      []float64 // n(s,a)
	stateVisits []float64 // N(s)
}

// selectUCB picks the UCB1 action at state s and records the visit.
func (a *Agent) selectUCB(s int) int {
	u := a.ucb
	base := s * a.cfg.Actions
	// Untried actions first, in index order (deterministic).
	for act := 0; act < a.cfg.Actions; act++ {
		if u.visits[base+act] == 0 {
			u.visits[base+act]++
			u.stateVisits[s]++
			return act
		}
	}
	logN := math.Log(u.stateVisits[s])
	bestAct, bestVal := 0, math.Inf(-1)
	for act := 0; act < a.cfg.Actions; act++ {
		v := a.valueOf(s, act) + a.cfg.UCBc*math.Sqrt(logN/u.visits[base+act])
		if v > bestVal {
			bestAct, bestVal = act, v
		}
	}
	u.visits[base+bestAct]++
	u.stateVisits[s]++
	return bestAct
}

// Visits returns n(s,a) for inspection; zero for non-UCB agents.
func (a *Agent) Visits(s, act int) float64 {
	if a.ucb == nil {
		return 0
	}
	return a.ucb.visits[s*a.cfg.Actions+act]
}
