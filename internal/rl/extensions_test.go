package rl

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestExtensionConfigValidation(t *testing.T) {
	c := baseConfig()
	c.TraceLambda = 1.0
	if err := c.Validate(); err == nil {
		t.Fatal("TraceLambda = 1 must be rejected")
	}
	c = baseConfig()
	c.TraceLambda = -0.5
	if err := c.Validate(); err == nil {
		t.Fatal("negative TraceLambda must be rejected")
	}
	c = baseConfig()
	c.Algorithm = DoubleQLearning
	c.TraceLambda = 0.5
	if err := c.Validate(); err == nil {
		t.Fatal("double-Q + traces must be rejected")
	}
	c = baseConfig()
	c.Algorithm = DoubleQLearning
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if DoubleQLearning.String() != "double-q-learning" {
		t.Fatal("name wrong")
	}
}

// The chain MDP from rl_test.go, reused: both extensions must still find
// the always-right policy.
func runChain(t *testing.T, cfg Config, steps int) *Agent {
	t.Helper()
	a, err := NewAgent(cfg, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	s := 0
	act := a.Begin(s)
	for i := 0; i < steps; i++ {
		next := s
		if act == 1 {
			next++
		} else {
			next--
		}
		if next < 0 {
			next = 0
		}
		reward := 0.0
		if next == 3 {
			reward = 1.0
			next = 0
		}
		act = a.Step(reward, next)
		s = next
	}
	return a
}

func TestTracesSolveChain(t *testing.T) {
	cfg := baseConfig()
	cfg.TraceLambda = 0.8
	cfg.Alpha = 0.2
	cfg.EpsilonDecay = 0.9995
	a := runChain(t, cfg, 30000)
	for st := 0; st < 3; st++ {
		if a.Greedy(st) != 1 {
			t.Fatalf("Q(λ): state %d greedy action = %d, want 1", st, a.Greedy(st))
		}
	}
}

func TestTracesLearnFasterOnDelayedReward(t *testing.T) {
	// With the same small step budget, Q(λ) should have propagated more
	// value back to the start state than one-step Q-learning.
	base := baseConfig()
	base.Alpha = 0.2
	base.EpsilonStart = 1.0
	base.EpsilonEnd = 1.0
	base.EpsilonDecay = 1.0
	withTraces := base
	withTraces.TraceLambda = 0.9

	q0 := runChain(t, base, 3000).Table().Get(0, 1)
	qTr := runChain(t, withTraces, 3000).Table().Get(0, 1)
	if qTr <= q0 {
		t.Fatalf("traces did not accelerate propagation: Q(λ)=%v vs Q=%v", qTr, q0)
	}
}

func TestDoubleQSolvesChain(t *testing.T) {
	cfg := baseConfig()
	cfg.Algorithm = DoubleQLearning
	cfg.Alpha = 0.2
	cfg.EpsilonDecay = 0.9995
	a := runChain(t, cfg, 40000)
	for st := 0; st < 3; st++ {
		if a.Greedy(st) != 1 {
			t.Fatalf("double-Q: state %d greedy action = %d, want 1", st, a.Greedy(st))
		}
	}
}

// Double Q-learning's signature property: under noisy rewards its value
// estimates are less over-optimistic than single Q-learning's max-operator.
func TestDoubleQLessBiasedUnderNoise(t *testing.T) {
	estimate := func(alg Algorithm) float64 {
		cfg := baseConfig()
		cfg.States = 1
		cfg.Actions = 8
		cfg.Algorithm = alg
		cfg.Alpha = 0.1
		cfg.Gamma = 0.0 // bandit: value = expected reward
		cfg.EpsilonStart = 1.0
		cfg.EpsilonEnd = 1.0
		cfg.EpsilonDecay = 1.0
		a, err := NewAgent(cfg, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		noise := rng.New(37)
		a.Begin(0)
		for i := 0; i < 50000; i++ {
			// All arms pay zero-mean noise: the true max value is 0.
			a.Step(noise.NormFloat64(), 0)
		}
		best := math.Inf(-1)
		for act := 0; act < 8; act++ {
			v := a.valueOf(0, act)
			if v > best {
				best = v
			}
		}
		return best
	}
	single := estimate(QLearning)
	double := estimate(DoubleQLearning)
	if double >= single {
		t.Fatalf("double-Q max estimate %v not below single-Q %v", double, single)
	}
}

func TestTableSaveLoadRoundTrip(t *testing.T) {
	tbl := NewTable(3, 2, 0)
	tbl.Set(1, 1, 4.25)
	tbl.Set(2, 0, -1.5)
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.States() != 3 || back.Actions() != 2 {
		t.Fatal("dimensions lost")
	}
	if back.Get(1, 1) != 4.25 || back.Get(2, 0) != -1.5 {
		t.Fatal("values lost")
	}
}

func TestLoadTableRejectsGarbage(t *testing.T) {
	if _, err := LoadTable(bytes.NewBufferString("{")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadTable(bytes.NewBufferString(`{"states":2,"actions":2,"q":[1]}`)); err == nil {
		t.Fatal("expected consistency error")
	}
	if _, err := LoadTable(bytes.NewBufferString(`{"states":0,"actions":2,"q":[]}`)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewTable(2, 2, 1.5)
	dst := NewTable(2, 2, 0)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if dst.Get(1, 1) != 1.5 {
		t.Fatal("copy failed")
	}
	other := NewTable(3, 2, 0)
	if err := dst.CopyFrom(other); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestWarmStartViaCopy(t *testing.T) {
	// A trained table copied into a fresh agent makes it act greedily
	// correct from step one.
	cfg := baseConfig()
	cfg.EpsilonStart = 0
	cfg.EpsilonEnd = 0
	trained := runChain(t, baseConfig(), 30000)
	fresh, err := NewAgent(cfg, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Table().CopyFrom(trained.Table()); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 3; st++ {
		if fresh.Greedy(st) != trained.Greedy(st) {
			t.Fatal("warm-started agent disagrees with its source policy")
		}
	}
}
