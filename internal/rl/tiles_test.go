package rl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func testCoder(t *testing.T) *TileCoder {
	t.Helper()
	tc, err := NewTileCoder([]float64{0, 0}, []float64{1, 1}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestNewTileCoderValidation(t *testing.T) {
	cases := []struct {
		lows, highs []float64
		tiles, til  int
	}{
		{nil, nil, 8, 4},
		{[]float64{0}, []float64{0, 1}, 8, 4},
		{[]float64{0}, []float64{0}, 8, 4},
		{[]float64{1}, []float64{0}, 8, 4},
		{[]float64{0}, []float64{1}, 0, 4},
		{[]float64{0}, []float64{1}, 8, 0},
	}
	for i, c := range cases {
		if _, err := NewTileCoder(c.lows, c.highs, c.tiles, c.til); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestActiveTilesShape(t *testing.T) {
	tc := testCoder(t)
	tiles := tc.ActiveTiles([]float64{0.5, 0.5}, nil)
	if len(tiles) != 4 {
		t.Fatalf("got %d active tiles, want 4 (one per tiling)", len(tiles))
	}
	seen := map[int]bool{}
	for _, f := range tiles {
		if f < 0 || f >= tc.Features() {
			t.Fatalf("feature %d out of range [0,%d)", f, tc.Features())
		}
		if seen[f] {
			t.Fatal("duplicate active feature")
		}
		seen[f] = true
	}
}

func TestActiveTilesClampOutOfRange(t *testing.T) {
	tc := testCoder(t)
	lo := tc.ActiveTiles([]float64{-5, -5}, nil)
	lo2 := tc.ActiveTiles([]float64{0, 0}, nil)
	for i := range lo {
		if lo[i] != lo2[i] {
			t.Fatal("below-range state did not clamp to the low corner")
		}
	}
}

func TestActiveTilesLocality(t *testing.T) {
	// Nearby states share most tiles; distant states share none.
	tc := testCoder(t)
	a := append([]int(nil), tc.ActiveTiles([]float64{0.50, 0.50}, nil)...)
	b := append([]int(nil), tc.ActiveTiles([]float64{0.52, 0.52}, nil)...)
	c := append([]int(nil), tc.ActiveTiles([]float64{0.95, 0.05}, nil)...)
	shared := func(x, y []int) int {
		set := map[int]bool{}
		for _, v := range x {
			set[v] = true
		}
		n := 0
		for _, v := range y {
			if set[v] {
				n++
			}
		}
		return n
	}
	if shared(a, b) < 3 {
		t.Fatalf("nearby states share only %d/4 tiles", shared(a, b))
	}
	if shared(a, c) != 0 {
		t.Fatalf("distant states share %d tiles, want 0", shared(a, c))
	}
}

func TestActiveTilesPanicsOnWrongDims(t *testing.T) {
	tc := testCoder(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tc.ActiveTiles([]float64{0.5}, nil)
}

func TestNewLinearAgentValidation(t *testing.T) {
	tc := testCoder(t)
	good := LinearConfig{Actions: 3, Alpha: 0.1, Gamma: 0.9, EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999}
	if _, err := NewLinearAgent(tc, good, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	bad := []LinearConfig{
		{Actions: 0, Alpha: 0.1, Gamma: 0.9, EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999},
		{Actions: 3, Alpha: 0, Gamma: 0.9, EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999},
		{Actions: 3, Alpha: 0.1, Gamma: 1.0, EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999},
		{Actions: 3, Alpha: 0.1, Gamma: 0.9, Lambda: 1.0, EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999},
		{Actions: 3, Alpha: 0.1, Gamma: 0.9, EpsilonStart: 2, EpsilonEnd: 0.01, EpsilonDecay: 0.999},
	}
	for i, cfg := range bad {
		if _, err := NewLinearAgent(tc, cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewLinearAgent(nil, good, rng.New(1)); err == nil {
		t.Fatal("expected error for nil coder")
	}
	if _, err := NewLinearAgent(tc, good, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

// Continuous bandit: reward peaks when the action matches which half of
// the state space x lives in. The linear agent must learn the mapping.
func TestLinearAgentLearnsStateDependentPolicy(t *testing.T) {
	tc, err := NewTileCoder([]float64{0}, []float64{1}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinearConfig{
		Actions: 2, Alpha: 0.2, Gamma: 0.0,
		EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999,
	}
	a, err := NewLinearAgent(tc, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	x := []float64{r.Float64()}
	act := a.Begin(x)
	for i := 0; i < 20000; i++ {
		want := 0
		if x[0] > 0.5 {
			want = 1
		}
		reward := 0.0
		if act == want {
			reward = 1.0
		}
		x = []float64{r.Float64()}
		act = a.Step(reward, x)
	}
	// Policy check across the state space.
	for _, v := range []float64{0.1, 0.3, 0.7, 0.9} {
		want := 0
		if v > 0.5 {
			want = 1
		}
		if got := a.Greedy([]float64{v}); got != want {
			t.Fatalf("state %v: greedy action %d, want %d", v, got, want)
		}
	}
}

// With eligibility traces the agent must still solve a delayed-reward
// chain over continuous states.
func TestLinearAgentTracesChain(t *testing.T) {
	tc, err := NewTileCoder([]float64{0}, []float64{1}, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinearConfig{
		Actions: 2, Alpha: 0.1, Gamma: 0.9, Lambda: 0.8,
		EpsilonStart: 0.5, EpsilonEnd: 0.02, EpsilonDecay: 0.9995,
	}
	a, err := NewLinearAgent(tc, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// State is position in [0,1]; action 1 moves +0.25, action 0 moves
	// −0.25 (clamped); reward 1 on reaching the right end, then teleport.
	pos := 0.0
	act := a.Begin([]float64{pos})
	for i := 0; i < 40000; i++ {
		if act == 1 {
			pos += 0.25
		} else {
			pos -= 0.25
		}
		if pos < 0 {
			pos = 0
		}
		reward := 0.0
		if pos >= 0.99 {
			reward = 1
			pos = 0
		}
		act = a.Step(reward, []float64{pos})
	}
	for _, v := range []float64{0.0, 0.25, 0.5, 0.75} {
		if a.Greedy([]float64{v}) != 1 {
			t.Fatalf("state %v: greedy action %d, want 1 (right)", v, a.Greedy([]float64{v}))
		}
	}
}

func TestLinearAgentStepBeforeBeginPanics(t *testing.T) {
	tc := testCoder(t)
	a, _ := NewLinearAgent(tc, LinearConfig{
		Actions: 2, Alpha: 0.1, Gamma: 0.9,
		EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999,
	}, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Step(1, []float64{0.5, 0.5})
}

// Property: Q starts at zero everywhere and active tile sets are stable
// (same state → same tiles).
func TestQuickTileCoderDeterministic(t *testing.T) {
	tc := testCoder(t)
	f := func(xr, yr uint16) bool {
		x := []float64{float64(xr) / 65535, float64(yr) / 65535}
		a := append([]int(nil), tc.ActiveTiles(x, nil)...)
		b := tc.ActiveTiles(x, nil)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearAgentQInitiallyZero(t *testing.T) {
	tc := testCoder(t)
	a, _ := NewLinearAgent(tc, LinearConfig{
		Actions: 2, Alpha: 0.1, Gamma: 0.9,
		EpsilonStart: 0.5, EpsilonEnd: 0.01, EpsilonDecay: 0.999,
	}, rng.New(1))
	if v := a.Q([]float64{0.3, 0.7}, 1); math.Abs(v) > 1e-12 {
		t.Fatalf("fresh Q = %v, want 0", v)
	}
}

// Property: weights stay finite under arbitrary bounded-reward streams —
// the alpha/tilings normalisation must keep linear SARSA stable.
func TestQuickLinearAgentStaysFinite(t *testing.T) {
	tc, err := NewTileCoder([]float64{0}, []float64{1}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, rewards []int8) bool {
		a, err := NewLinearAgent(tc, LinearConfig{
			Actions: 3, Alpha: 0.5, Gamma: 0.9, Lambda: 0.7,
			EpsilonStart: 0.3, EpsilonEnd: 0.05, EpsilonDecay: 0.999,
		}, rng.New(seed))
		if err != nil {
			return false
		}
		r := rng.New(seed + 1)
		a.Begin([]float64{r.Float64()})
		for _, rw := range rewards {
			a.Step(float64(rw)/128, []float64{r.Float64()})
		}
		for _, v := range []float64{0, 0.5, 1} {
			for act := 0; act < 3; act++ {
				q := a.Q([]float64{v}, act)
				if math.IsNaN(q) || math.IsInf(q, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
