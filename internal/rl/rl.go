// Package rl provides the tabular reinforcement-learning machinery the
// OD-RL controller builds on: Q-tables, Q-learning and SARSA updates,
// ε-greedy and softmax action selection with decay schedules, and helpers
// for discretising continuous telemetry into table states.
//
// Everything is deliberately table-based. The paper's per-core agents must
// run every millisecond on hundreds of cores; a handful of multiplies per
// decision is the entire point of the approach, and the F5 scalability
// experiment measures exactly that.
package rl

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Algorithm selects the temporal-difference target.
type Algorithm int

// Supported TD algorithms.
const (
	// QLearning bootstraps from the greedy next action (off-policy).
	QLearning Algorithm = iota
	// SARSA bootstraps from the action actually taken (on-policy).
	SARSA
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case QLearning:
		return "q-learning"
	case SARSA:
		return "sarsa"
	case DoubleQLearning:
		return "double-q-learning"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// PolicyKind selects the exploration policy.
type PolicyKind int

// Supported exploration policies.
const (
	// EpsilonGreedy explores uniformly with probability ε.
	EpsilonGreedy PolicyKind = iota
	// Softmax samples actions with probability ∝ exp(Q/τ).
	Softmax
)

// Config parameterises an Agent.
type Config struct {
	States  int
	Actions int
	// Alpha is the learning rate in (0, 1].
	Alpha float64
	// Gamma is the discount factor in [0, 1).
	Gamma float64
	// Algorithm chooses the TD target.
	Algorithm Algorithm
	// Policy chooses the exploration mechanism.
	Policy PolicyKind
	// EpsilonStart/EpsilonEnd/EpsilonDecay give the exploration schedule
	// ε(t) = end + (start − end)·decay^t for EpsilonGreedy, and the same
	// schedule for temperature when Policy is Softmax.
	EpsilonStart float64
	EpsilonEnd   float64
	EpsilonDecay float64
	// InitialQ optimistically initialises the table to encourage early
	// exploration of untried actions.
	InitialQ float64
	// TraceLambda, when positive, enables Watkins Q(λ) eligibility traces
	// with the given decay (only with the QLearning algorithm).
	TraceLambda float64
	// UCBc is the UCB1 exploration constant; only used when Policy is UCB,
	// where it must be positive.
	UCBc float64
}

// Validate reports the first invalid hyper-parameter.
func (c Config) Validate() error {
	switch {
	case c.States <= 0:
		return fmt.Errorf("rl: States must be positive, got %d", c.States)
	case c.Actions <= 0:
		return fmt.Errorf("rl: Actions must be positive, got %d", c.Actions)
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("rl: Alpha must be in (0,1], got %g", c.Alpha)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("rl: Gamma must be in [0,1), got %g", c.Gamma)
	case c.EpsilonStart < 0 || c.EpsilonStart > 1:
		return fmt.Errorf("rl: EpsilonStart must be in [0,1], got %g", c.EpsilonStart)
	case c.EpsilonEnd < 0 || c.EpsilonEnd > c.EpsilonStart:
		return fmt.Errorf("rl: EpsilonEnd must be in [0, EpsilonStart], got %g", c.EpsilonEnd)
	case c.EpsilonDecay <= 0 || c.EpsilonDecay > 1:
		return fmt.Errorf("rl: EpsilonDecay must be in (0,1], got %g", c.EpsilonDecay)
	case c.Algorithm != QLearning && c.Algorithm != SARSA && c.Algorithm != DoubleQLearning:
		return fmt.Errorf("rl: unknown algorithm %d", c.Algorithm)
	case c.Policy != EpsilonGreedy && c.Policy != Softmax && c.Policy != UCB:
		return fmt.Errorf("rl: unknown policy %d", c.Policy)
	case c.Policy == UCB && c.UCBc <= 0:
		return fmt.Errorf("rl: UCB policy needs positive UCBc, got %g", c.UCBc)
	}
	return c.validateExtensions()
}

// Table is a dense state×action value table.
type Table struct {
	states, actions int
	q               []float64
	// dirty marks mutations made outside the agent's own update paths
	// (Set, CopyFrom, UnmarshalJSON); the owning agent's greedy cache
	// rebuilds before its next read.
	dirty bool
}

// NewTable allocates a table initialised to initialQ.
func NewTable(states, actions int, initialQ float64) *Table {
	t := &Table{states: states, actions: actions, q: make([]float64, states*actions)}
	if initialQ != 0 {
		for i := range t.q {
			t.q[i] = initialQ
		}
	}
	return t
}

// Get returns Q(s, a).
func (t *Table) Get(s, a int) float64 { return t.q[s*t.actions+a] }

// Set assigns Q(s, a).
func (t *Table) Set(s, a int, v float64) {
	t.q[s*t.actions+a] = v
	t.dirty = true
}

// setRaw assigns Q(s, a) from the agent's own update paths, which maintain
// the greedy cache incrementally and so skip the dirty mark.
func (t *Table) setRaw(s, a int, v float64) { t.q[s*t.actions+a] = v }

// Best returns the greedy action and its value for state s; ties break
// toward the lowest action index so results are deterministic.
func (t *Table) Best(s int) (action int, value float64) {
	base := s * t.actions
	action, value = 0, t.q[base]
	for a := 1; a < t.actions; a++ {
		if v := t.q[base+a]; v > value {
			action, value = a, v
		}
	}
	return action, value
}

// States and Actions return the table dimensions.
func (t *Table) States() int  { return t.states }
func (t *Table) Actions() int { return t.actions }

// Agent is one tabular TD learner. Use Begin once, then alternate
// environment steps with Step.
type Agent struct {
	cfg    Config
	table  *Table
	table2 *Table    // second estimator, double Q-learning only
	trace  []float64 // eligibility traces, Q(λ) only
	ucb    *ucbState // visit counts, UCB policy only
	r      *rng.RNG

	steps     int
	lastState int
	lastAct   int
	started   bool

	// scratch for softmax
	probs []float64

	// shared exploration-schedule memo; nil means compute per call.
	epsCache *EpsilonCache

	// introspection (see introspect.go); off by default and free when off.
	introspect   bool
	probe        Probe
	visited      []bool
	visitedCount int

	// Greedy-action cache under the selection values, maintained
	// incrementally by noteUpdate; active only with introspection on and
	// eligibility traces off (traces rewrite too many entries per step).
	cacheOK   bool
	greedyAct []int32
	greedyVal []float64
	flips     int // greedy flips since TakeFlips
	lastUpd   int // most recently updated state, -1 before the first probed step
}

// NewAgent creates an agent. The RNG drives exploration.
func NewAgent(cfg Config, r *rng.RNG) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("rl: nil rng")
	}
	a := &Agent{
		cfg:     cfg,
		table:   NewTable(cfg.States, cfg.Actions, cfg.InitialQ),
		r:       r,
		probs:   make([]float64, cfg.Actions),
		lastUpd: -1,
	}
	if cfg.Algorithm == DoubleQLearning {
		a.table2 = NewTable(cfg.States, cfg.Actions, cfg.InitialQ)
	}
	if cfg.tracesEnabled() {
		a.trace = make([]float64, cfg.States*cfg.Actions)
	}
	if cfg.Policy == UCB {
		a.ucb = &ucbState{
			visits:      make([]float64, cfg.States*cfg.Actions),
			stateVisits: make([]float64, cfg.States),
		}
	}
	return a, nil
}

// Table exposes the agent's Q-table (for inspection and for the OD-RL
// global layer, which reads Q-values as marginal-utility estimates).
func (a *Agent) Table() *Table { return a.table }

// EpsilonCache memoises one point of the exploration schedule
// ε(t) = end + (start−end)·decay^t for a fleet of agents that march in
// lockstep (the OD-RL local phase: every live agent takes exactly one
// step per control epoch). The owner warms it once per epoch with the
// fleet's common step count; each agent's Epsilon then skips its
// math.Pow. The cached value is computed by the identical expression
// Epsilon uses, so a hit is bit-equal to the inline computation.
//
// Agents only read the cache (a hit requires an exact step match; a miss
// computes inline without writing), so a warmed cache is safe to share
// across the sharded decide loop — and an agent that fell out of
// lockstep (e.g. behind a telemetry watchdog) simply misses and pays the
// Pow itself.
type EpsilonCache struct {
	start, end, decay float64
	step              int
	val               float64
	ok                bool
}

// NewEpsilonCache creates a cold cache for the given schedule.
func NewEpsilonCache(start, end, decay float64) *EpsilonCache {
	return &EpsilonCache{start: start, end: end, decay: decay}
}

// WarmAt computes and stores ε at the given step count. Call from a
// single goroutine, before any concurrent readers.
func (ec *EpsilonCache) WarmAt(steps int) {
	ec.val = ec.end + (ec.start-ec.end)*math.Pow(ec.decay, float64(steps))
	ec.step = steps
	ec.ok = true
}

// AttachEpsilonCache connects the agent to a shared schedule cache. It
// reports false (and leaves the agent detached) if the cache's schedule
// differs from the agent's — a mismatched cache would serve wrong values.
func (a *Agent) AttachEpsilonCache(ec *EpsilonCache) bool {
	c := a.cfg
	if ec == nil || ec.start != c.EpsilonStart || ec.end != c.EpsilonEnd || ec.decay != c.EpsilonDecay {
		return false
	}
	a.epsCache = ec
	return true
}

// Epsilon returns the current exploration parameter.
func (a *Agent) Epsilon() float64 {
	if ec := a.epsCache; ec != nil && ec.ok && ec.step == a.steps {
		return ec.val
	}
	c := a.cfg
	return c.EpsilonEnd + (c.EpsilonStart-c.EpsilonEnd)*math.Pow(c.EpsilonDecay, float64(a.steps))
}

// Steps returns the number of learning steps taken so far.
func (a *Agent) Steps() int { return a.steps }

// valueOf returns the action value used for selection: the mean of both
// estimators under double Q-learning, the single table otherwise.
func (a *Agent) valueOf(s, act int) float64 {
	if a.table2 != nil {
		return a.combinedQ(s, act)
	}
	return a.table.Get(s, act)
}

// bestAction is the greedy action under the selection value. With the
// introspection cache active it is a single lookup; the cache is maintained
// to agree with a full scan exactly, ties included.
func (a *Agent) bestAction(s int) int {
	if a.cacheOK {
		return int(a.greedyAct[s])
	}
	if a.table2 != nil {
		act, _ := a.bestCombined(s)
		return act
	}
	act, _ := a.table.Best(s)
	return act
}

// selectAction applies the configured exploration policy at state s.
func (a *Agent) selectAction(s int) int {
	eps := a.Epsilon()
	switch a.cfg.Policy {
	case UCB:
		return a.selectUCB(s)
	case Softmax:
		// Temperature follows the ε schedule, floored to stay numeric.
		tau := eps
		if tau < 1e-3 {
			tau = 1e-3
		}
		// Walk the state's row(s) directly: valueOf per cell redoes the
		// s*actions index math every call. The selection values are the
		// same expressions ((q1+q2)/2 under double-Q), so the sampled
		// distribution is bit-identical.
		base := s * a.cfg.Actions
		row := a.table.q[base : base+a.cfg.Actions]
		var row2 []float64
		if a.table2 != nil {
			row2 = a.table2.q[base : base+a.cfg.Actions]
		}
		value := func(i int) float64 {
			if row2 != nil {
				return (row[i] + row2[i]) / 2
			}
			return row[i]
		}
		maxQ := value(0)
		for i := 1; i < a.cfg.Actions; i++ {
			if v := value(i); v > maxQ {
				maxQ = v
			}
		}
		sum := 0.0
		for i := 0; i < a.cfg.Actions; i++ {
			p := math.Exp((value(i) - maxQ) / tau)
			a.probs[i] = p
			sum += p
		}
		x := a.r.Float64() * sum
		for i, p := range a.probs {
			x -= p
			if x < 0 {
				return i
			}
		}
		return a.cfg.Actions - 1
	default: // EpsilonGreedy
		if a.r.Float64() < eps {
			return a.r.Intn(a.cfg.Actions)
		}
		return a.bestAction(s)
	}
}

// Begin starts (or restarts) an episode at state s and returns the first
// action. No learning happens.
func (a *Agent) Begin(s int) int {
	a.checkState(s)
	a.guardCache()
	act := a.selectAction(s)
	a.lastState, a.lastAct = s, act
	a.started = true
	a.markVisited(s)
	return act
}

// Step records reward for the previous action, observes the next state,
// learns, and returns the next action. It panics if Begin was never called:
// that is a controller wiring bug.
func (a *Agent) Step(reward float64, next int) int {
	if !a.started {
		panic("rl: Step before Begin")
	}
	a.checkState(next)
	a.guardCache()
	nextAct := a.selectAction(next)

	// prevBest is captured before the update so the scan-based probe path
	// can report greedy churn; with the cache active, noteUpdate records
	// churn during the update instead.
	var prevBest int
	if a.introspect && !a.cacheOK {
		prevBest = a.bestAction(a.lastState)
	}

	switch {
	case a.cfg.Algorithm == DoubleQLearning:
		a.stepDouble(reward, next)
	case a.cfg.tracesEnabled():
		a.stepTraces(reward, next, nextAct)
	case a.cfg.Algorithm == SARSA:
		bootstrap := a.table.Get(next, nextAct)
		old := a.table.Get(a.lastState, a.lastAct)
		delta := reward + a.cfg.Gamma*bootstrap - old
		nv := old + a.cfg.Alpha*delta
		a.table.setRaw(a.lastState, a.lastAct, nv)
		a.noteTD(delta)
		a.noteUpdate(a.lastState, a.lastAct, nv)
	default: // QLearning
		var bootstrap float64
		if a.cacheOK {
			// The cached greedy value equals Best(next)'s value exactly.
			bootstrap = a.greedyVal[next]
		} else {
			_, bootstrap = a.table.Best(next)
		}
		old := a.table.Get(a.lastState, a.lastAct)
		delta := reward + a.cfg.Gamma*bootstrap - old
		nv := old + a.cfg.Alpha*delta
		a.table.setRaw(a.lastState, a.lastAct, nv)
		a.noteTD(delta)
		a.noteUpdate(a.lastState, a.lastAct, nv)
	}

	if a.introspect {
		a.finishProbe(prevBest, next, nextAct)
	}

	a.lastState, a.lastAct = next, nextAct
	a.steps++
	return nextAct
}

// Greedy returns the greedy action at state s without exploring or learning.
func (a *Agent) Greedy(s int) int {
	a.checkState(s)
	a.guardCache()
	return a.bestAction(s)
}

func (a *Agent) checkState(s int) {
	if s < 0 || s >= a.cfg.States {
		panic(fmt.Sprintf("rl: state %d out of range [0,%d)", s, a.cfg.States))
	}
}
