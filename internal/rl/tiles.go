package rl

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// TileCoder maps a continuous d-dimensional state onto sparse binary
// features using T offset tilings — the classic coarse coding of Sutton &
// Barto. Compared to a single-grid discretiser, overlapping offset tilings
// generalise between neighbouring states while still resolving fine
// distinctions, removing the hard bucket cliffs of a table.
type TileCoder struct {
	lows, highs []float64
	tilesPerDim int
	tilings     int
	offsets     [][]float64 // [tiling][dim] fractional offsets in tile units
	perTiling   int         // tiles per tiling
}

// NewTileCoder builds a coder over the given per-dimension ranges with
// tilesPerDim tiles per dimension and the given number of offset tilings.
func NewTileCoder(lows, highs []float64, tilesPerDim, tilings int) (*TileCoder, error) {
	if len(lows) == 0 || len(lows) != len(highs) {
		return nil, fmt.Errorf("rl: tile coder needs matching bounds, got %d/%d", len(lows), len(highs))
	}
	for i := range lows {
		if highs[i] <= lows[i] {
			return nil, fmt.Errorf("rl: tile coder dimension %d has empty range [%g, %g]", i, lows[i], highs[i])
		}
	}
	if tilesPerDim < 1 || tilings < 1 {
		return nil, fmt.Errorf("rl: tile coder needs positive tiles (%d) and tilings (%d)", tilesPerDim, tilings)
	}
	tc := &TileCoder{
		lows:        append([]float64(nil), lows...),
		highs:       append([]float64(nil), highs...),
		tilesPerDim: tilesPerDim,
		tilings:     tilings,
		perTiling:   int(math.Pow(float64(tilesPerDim+1), float64(len(lows)))),
	}
	// Deterministic asymmetric offsets: tiling t is shifted by t·(2i+1)/T
	// tile-fractions in dimension i (the standard displacement vector).
	for t := 0; t < tilings; t++ {
		off := make([]float64, len(lows))
		for i := range off {
			off[i] = math.Mod(float64(t)*float64(2*i+1)/float64(tilings), 1.0)
		}
		tc.offsets = append(tc.offsets, off)
	}
	return tc, nil
}

// Features returns the number of binary features (one active per tiling).
func (tc *TileCoder) Features() int { return tc.tilings * tc.perTiling }

// ActiveTiles writes the indices of the active features for state x into
// dst (len(dst) must be Tilings()) and returns dst. Values outside the
// configured ranges clamp.
func (tc *TileCoder) ActiveTiles(x []float64, dst []int) []int {
	if len(x) != len(tc.lows) {
		panic(fmt.Sprintf("rl: tile coder got %d dims, want %d", len(x), len(tc.lows)))
	}
	if len(dst) != tc.tilings {
		dst = make([]int, tc.tilings)
	}
	for t := 0; t < tc.tilings; t++ {
		idx := 0
		for i := range x {
			v := (x[i] - tc.lows[i]) / (tc.highs[i] - tc.lows[i]) // [0,1]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			tile := int(v*float64(tc.tilesPerDim) + tc.offsets[t][i])
			if tile > tc.tilesPerDim {
				tile = tc.tilesPerDim
			}
			idx = idx*(tc.tilesPerDim+1) + tile
		}
		dst[t] = t*tc.perTiling + idx
	}
	return dst
}

// Tilings returns the number of tilings (= active features per state).
func (tc *TileCoder) Tilings() int { return tc.tilings }

// LinearAgent is a SARSA(λ)-style learner with linear function
// approximation over tile-coded continuous states: Q(x, a) = Σ w[a][f] for
// active features f. It is the function-approximation counterpart of
// Agent and follows the same Begin/Step protocol, with continuous state
// vectors instead of table indices.
type LinearAgent struct {
	coder                      *TileCoder
	actions                    int
	alpha                      float64 // per-active-feature step size (already divided by tilings)
	gamma                      float64
	lambda                     float64 // eligibility decay; 0 = one-step
	epsStart, epsEnd, epsDecay float64

	weights [][]float64 // [action][feature]
	elig    [][]float64
	r       *rng.RNG

	steps     int
	lastTiles []int
	lastAct   int
	started   bool
	scratch   []int
}

// LinearConfig parameterises a LinearAgent.
type LinearConfig struct {
	Actions int
	// Alpha is the overall learning rate; it is divided by the number of
	// tilings internally so generalisation does not inflate updates.
	Alpha  float64
	Gamma  float64
	Lambda float64
	// Epsilon schedule as in Config.
	EpsilonStart float64
	EpsilonEnd   float64
	EpsilonDecay float64
}

// NewLinearAgent creates a linear agent over the given coder.
func NewLinearAgent(coder *TileCoder, cfg LinearConfig, r *rng.RNG) (*LinearAgent, error) {
	if coder == nil {
		return nil, fmt.Errorf("rl: nil tile coder")
	}
	if cfg.Actions <= 0 {
		return nil, fmt.Errorf("rl: Actions must be positive, got %d", cfg.Actions)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("rl: Alpha must be in (0,1], got %g", cfg.Alpha)
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("rl: Gamma must be in [0,1), got %g", cfg.Gamma)
	}
	if cfg.Lambda < 0 || cfg.Lambda >= 1 {
		return nil, fmt.Errorf("rl: Lambda must be in [0,1), got %g", cfg.Lambda)
	}
	if cfg.EpsilonStart < 0 || cfg.EpsilonStart > 1 || cfg.EpsilonEnd < 0 ||
		cfg.EpsilonEnd > cfg.EpsilonStart || cfg.EpsilonDecay <= 0 || cfg.EpsilonDecay > 1 {
		return nil, fmt.Errorf("rl: invalid epsilon schedule (%g, %g, %g)",
			cfg.EpsilonStart, cfg.EpsilonEnd, cfg.EpsilonDecay)
	}
	if r == nil {
		return nil, fmt.Errorf("rl: nil rng")
	}
	a := &LinearAgent{
		coder:    coder,
		actions:  cfg.Actions,
		alpha:    cfg.Alpha / float64(coder.Tilings()),
		gamma:    cfg.Gamma,
		lambda:   cfg.Lambda,
		epsStart: cfg.EpsilonStart,
		epsEnd:   cfg.EpsilonEnd,
		epsDecay: cfg.EpsilonDecay,
		r:        r,
		scratch:  make([]int, coder.Tilings()),
	}
	a.weights = make([][]float64, cfg.Actions)
	for i := range a.weights {
		a.weights[i] = make([]float64, coder.Features())
	}
	if cfg.Lambda > 0 {
		a.elig = make([][]float64, cfg.Actions)
		for i := range a.elig {
			a.elig[i] = make([]float64, coder.Features())
		}
	}
	return a, nil
}

// Q returns the approximate action value at continuous state x.
func (a *LinearAgent) Q(x []float64, act int) float64 {
	tiles := a.coder.ActiveTiles(x, a.scratch)
	return a.qTiles(tiles, act)
}

func (a *LinearAgent) qTiles(tiles []int, act int) float64 {
	sum := 0.0
	for _, f := range tiles {
		sum += a.weights[act][f]
	}
	return sum
}

// Epsilon returns the current exploration rate.
func (a *LinearAgent) Epsilon() float64 {
	return a.epsEnd + (a.epsStart-a.epsEnd)*math.Pow(a.epsDecay, float64(a.steps))
}

func (a *LinearAgent) selectAction(tiles []int) int {
	if a.r.Float64() < a.Epsilon() {
		return a.r.Intn(a.actions)
	}
	best, bestV := 0, a.qTiles(tiles, 0)
	for act := 1; act < a.actions; act++ {
		if v := a.qTiles(tiles, act); v > bestV {
			best, bestV = act, v
		}
	}
	return best
}

// Begin starts an episode at state x and returns the first action.
func (a *LinearAgent) Begin(x []float64) int {
	tiles := append([]int(nil), a.coder.ActiveTiles(x, a.scratch)...)
	act := a.selectAction(tiles)
	a.lastTiles, a.lastAct = tiles, act
	a.started = true
	return act
}

// Step learns from the reward and returns the next action (SARSA target;
// on-policy is the stable choice under function approximation).
func (a *LinearAgent) Step(reward float64, x []float64) int {
	if !a.started {
		panic("rl: Step before Begin")
	}
	tiles := append([]int(nil), a.coder.ActiveTiles(x, a.scratch)...)
	nextAct := a.selectAction(tiles)

	delta := reward + a.gamma*a.qTiles(tiles, nextAct) - a.qTiles(a.lastTiles, a.lastAct)
	if a.elig == nil {
		for _, f := range a.lastTiles {
			a.weights[a.lastAct][f] += a.alpha * delta
		}
	} else {
		for _, f := range a.lastTiles {
			a.elig[a.lastAct][f] = 1 // replacing traces
		}
		decay := a.gamma * a.lambda
		for act := range a.elig {
			for f, e := range a.elig[act] {
				if e == 0 {
					continue
				}
				a.weights[act][f] += a.alpha * delta * e
				e *= decay
				if e < 1e-8 {
					e = 0
				}
				a.elig[act][f] = e
			}
		}
	}

	a.lastTiles, a.lastAct = tiles, nextAct
	a.steps++
	return nextAct
}

// Greedy returns the greedy action at x without exploring or learning.
func (a *LinearAgent) Greedy(x []float64) int {
	tiles := a.coder.ActiveTiles(x, a.scratch)
	best, bestV := 0, a.qTiles(tiles, 0)
	for act := 1; act < a.actions; act++ {
		if v := a.qTiles(tiles, act); v > bestV {
			best, bestV = act, v
		}
	}
	return best
}
