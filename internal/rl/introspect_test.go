package rl

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func introCfg(alg Algorithm, lambda float64) Config {
	return Config{
		States: 6, Actions: 3,
		Alpha: 0.5, Gamma: 0.9,
		Algorithm:    alg,
		EpsilonStart: 0.3, EpsilonEnd: 0.05, EpsilonDecay: 0.99,
		InitialQ:    1.0,
		TraceLambda: lambda,
	}
}

// drive runs a fixed deterministic episode and returns the action stream.
func driveAgent(t *testing.T, a *Agent, steps int) []int {
	t.Helper()
	acts := []int{a.Begin(0)}
	for i := 0; i < steps; i++ {
		s := (i*3 + 1) % 6
		r := math.Sin(float64(i)) // varied, deterministic rewards
		acts = append(acts, a.Step(r, s))
	}
	return acts
}

// TestIntrospectionIsReadOnly is the bit-identity contract: the same seeded
// agent must choose identical actions and learn identical tables with
// introspection on or off, for every algorithm variant.
func TestIntrospectionIsReadOnly(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"q-learning", introCfg(QLearning, 0)},
		{"sarsa", introCfg(SARSA, 0)},
		{"double-q", introCfg(DoubleQLearning, 0)},
		{"q-lambda", introCfg(QLearning, 0.7)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := NewAgent(tc.cfg, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			probed, err := NewAgent(tc.cfg, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			probed.EnableIntrospection()
			probed.EnableIntrospection() // idempotent
			a1 := driveAgent(t, plain, 200)
			a2 := driveAgent(t, probed, 200)
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("action stream diverges at step %d: %d vs %d", i, a1[i], a2[i])
				}
			}
			for s := 0; s < tc.cfg.States; s++ {
				for act := 0; act < tc.cfg.Actions; act++ {
					if plain.table.Get(s, act) != probed.table.Get(s, act) {
						t.Fatalf("Q(%d,%d) diverges", s, act)
					}
				}
			}
		})
	}
}

// TestProbeTDError checks the probe's δ against the hand-computed
// Q-learning TD error of a single step.
func TestProbeTDError(t *testing.T) {
	cfg := introCfg(QLearning, 0)
	cfg.EpsilonStart, cfg.EpsilonEnd = 0, 0 // fully greedy: deterministic
	a, err := NewAgent(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a.EnableIntrospection()
	a.Begin(0)
	lastAct := a.lastAct
	old := a.table.Get(0, lastAct)
	_, bootstrap := a.table.Best(2)
	reward := 0.25
	want := reward + cfg.Gamma*bootstrap - old
	a.Step(reward, 2)
	p := a.LastProbe()
	if p.TDError != want {
		t.Fatalf("TDError = %g, want %g", p.TDError, want)
	}
	if !p.ActedGreedy {
		t.Fatal("greedy agent's probe says it explored")
	}
	if p.QSpread < 0 {
		t.Fatalf("negative QSpread %g", p.QSpread)
	}
	if got := a.VisitedStates(); got != 2 {
		t.Fatalf("VisitedStates = %d, want 2", got)
	}
}

// TestProbeGreedyChanged forces a large negative reward so the update flips
// the updated state's greedy action.
func TestProbeGreedyChanged(t *testing.T) {
	cfg := introCfg(QLearning, 0)
	cfg.EpsilonStart, cfg.EpsilonEnd = 0, 0
	cfg.Alpha = 1.0
	a, err := NewAgent(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a.EnableIntrospection()
	a.Begin(0)
	// With InitialQ uniform the greedy action is index 0 (ties break low);
	// a catastrophic reward pushes Q(0, act) far below the others.
	a.Step(-100, 1)
	if !a.LastProbe().GreedyChanged {
		t.Fatal("catastrophic update did not register as greedy churn")
	}
	// A neutral follow-up in another state should not.
	a.Step(0.9+cfg.Gamma*1.0-1.0, 2) // δ = 0.9+γ·1−1 ≈ 0.8 on a fresh pair
	if a.LastProbe().TDError == 0 {
		t.Fatal("probe not refreshed on second step")
	}
}

// TestEnableIntrospectionMidRun enables probes after learning has begun:
// the current state must count as visited.
func TestEnableIntrospectionMidRun(t *testing.T) {
	a, err := NewAgent(introCfg(QLearning, 0), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a.Begin(4)
	a.EnableIntrospection()
	if got := a.VisitedStates(); got != 1 {
		t.Fatalf("VisitedStates after mid-run enable = %d, want 1", got)
	}
	if p := a.LastProbe(); p != (Probe{}) {
		t.Fatalf("probe should be zero before the first probed step, got %+v", p)
	}
}

// TestTableCopyTo round-trips the table and rejects bad sizes.
func TestTableCopyTo(t *testing.T) {
	tbl := NewTable(3, 2, 1.5)
	tbl.Set(2, 1, -4)
	dst := make([]float64, 6)
	if err := tbl.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1.5 || dst[2*2+1] != -4 {
		t.Fatalf("copied values wrong: %v", dst)
	}
	if err := tbl.CopyTo(make([]float64, 5)); err == nil {
		t.Fatal("short dst accepted")
	}
}
