package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, Default()); err == nil {
		t.Fatal("expected error for zero width")
	}
	if _, err := New(4, -1, Default()); err == nil {
		t.Fatal("expected error for negative height")
	}
	bad := Default()
	bad.NodeCapJPerK = 0
	if _, err := New(4, 4, bad); err == nil {
		t.Fatal("expected error for zero heat capacity")
	}
}

func TestInitialAtAmbient(t *testing.T) {
	m, err := New(4, 4, Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Nodes(); i++ {
		if m.Temp(i) != Default().AmbientK {
			t.Fatalf("node %d starts at %v, want ambient", i, m.Temp(i))
		}
	}
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	m, _ := New(4, 4, Default())
	p := make([]float64, m.Nodes())
	m.Step(p, 10)
	for i := 0; i < m.Nodes(); i++ {
		if math.Abs(m.Temp(i)-Default().AmbientK) > 1e-9 {
			t.Fatalf("node %d drifted to %v with zero power", i, m.Temp(i))
		}
	}
}

func TestSingleNodeSteadyStateAnalytic(t *testing.T) {
	// For a 1x1 grid there is no lateral path, so T = Tamb + P/Gv.
	p := Default()
	m, _ := New(1, 1, p)
	ss := m.SteadyState([]float64{2.0})
	want := p.AmbientK + 2.0/p.VerticalGWPerK
	if math.Abs(ss[0]-want) > 1e-6 {
		t.Fatalf("steady state = %v, want %v", ss[0], want)
	}
}

func TestEulerConvergesToSteadyState(t *testing.T) {
	m, _ := New(4, 4, Default())
	powers := make([]float64, m.Nodes())
	for i := range powers {
		powers[i] = float64(i%5) * 0.8
	}
	ss := m.SteadyState(powers)
	// Integrate long enough (many time constants) and compare.
	for i := 0; i < 100; i++ {
		m.Step(powers, 0.1)
	}
	for i := 0; i < m.Nodes(); i++ {
		if math.Abs(m.Temp(i)-ss[i]) > 0.01 {
			t.Fatalf("node %d: Euler %v vs steady state %v", i, m.Temp(i), ss[i])
		}
	}
}

func TestUniformPowerUniformTemp(t *testing.T) {
	m, _ := New(5, 5, Default())
	powers := make([]float64, m.Nodes())
	for i := range powers {
		powers[i] = 1.5
	}
	ss := m.SteadyState(powers)
	for i := 1; i < len(ss); i++ {
		if math.Abs(ss[i]-ss[0]) > 1e-6 {
			t.Fatalf("uniform power gave non-uniform steady state: %v vs %v", ss[i], ss[0])
		}
	}
	// And it should match the no-lateral analytic solution since no heat
	// flows laterally when everything is at the same temperature.
	want := Default().AmbientK + 1.5/Default().VerticalGWPerK
	if math.Abs(ss[0]-want) > 1e-6 {
		t.Fatalf("uniform steady state = %v, want %v", ss[0], want)
	}
}

func TestHotspotSpreadsToNeighbors(t *testing.T) {
	m, _ := New(3, 3, Default())
	powers := make([]float64, 9)
	powers[4] = 3.0 // centre node only
	ss := m.SteadyState(powers)
	if ss[4] <= ss[1] {
		t.Fatal("centre not hottest")
	}
	// Edge-adjacent neighbours must be warmer than corners.
	if ss[1] <= ss[0] {
		t.Fatalf("neighbour %v not warmer than corner %v", ss[1], ss[0])
	}
	// Everything above ambient.
	for i, v := range ss {
		if v < Default().AmbientK-1e-9 {
			t.Fatalf("node %d below ambient: %v", i, v)
		}
	}
}

func TestStepStableWithLargeDt(t *testing.T) {
	m, _ := New(4, 4, Default())
	powers := make([]float64, m.Nodes())
	for i := range powers {
		powers[i] = 3.5
	}
	m.Step(powers, 5.0) // far beyond the naive stability limit
	for i := 0; i < m.Nodes(); i++ {
		v := m.Temp(i)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("node %d diverged: %v", i, v)
		}
	}
}

func TestStepPanicsOnWrongLength(t *testing.T) {
	m, _ := New(2, 2, Default())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length power vector did not panic")
		}
	}()
	m.Step([]float64{1, 2}, 0.001)
}

func TestStepPanicsOnNegativeDt(t *testing.T) {
	m, _ := New(2, 2, Default())
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	m.Step(make([]float64, 4), -0.1)
}

func TestResetRestoresAmbient(t *testing.T) {
	m, _ := New(2, 2, Default())
	powers := []float64{3, 3, 3, 3}
	m.Step(powers, 1)
	if m.MaxTemp() <= Default().AmbientK {
		t.Fatal("temperatures did not rise under power")
	}
	m.Reset()
	if m.MaxTemp() != Default().AmbientK {
		t.Fatal("Reset did not restore ambient")
	}
}

func TestTempsCopy(t *testing.T) {
	m, _ := New(2, 2, Default())
	ts := m.Temps(nil)
	ts[0] = 999
	if m.Temp(0) == 999 {
		t.Fatal("Temps returned aliased storage")
	}
	dst := make([]float64, 4)
	got := m.Temps(dst)
	if &got[0] != &dst[0] {
		t.Fatal("Temps did not reuse correctly-sized destination")
	}
}

func TestMeanTemp(t *testing.T) {
	m, _ := New(2, 1, Default())
	// Manually step one node hot.
	m.Step([]float64{4, 0}, 2)
	mean := m.MeanTemp()
	if mean <= Default().AmbientK || mean >= m.MaxTemp() {
		t.Fatalf("mean %v not between ambient and max %v", mean, m.MaxTemp())
	}
}

// Property: temperatures stay within [ambient, ambient + maxP/Gv] for any
// non-negative power assignment — the hottest node can never exceed the
// temperature it would reach with no lateral help.
func TestQuickTemperatureBounds(t *testing.T) {
	params := Default()
	f := func(raw []uint8, steps uint8) bool {
		m, err := New(3, 3, params)
		if err != nil {
			return false
		}
		powers := make([]float64, 9)
		maxP := 0.0
		for i := range powers {
			if len(raw) > 0 {
				powers[i] = float64(raw[i%len(raw)]%40) / 10.0
			}
			if powers[i] > maxP {
				maxP = powers[i]
			}
		}
		n := int(steps%20) + 1
		for s := 0; s < n; s++ {
			m.Step(powers, 0.05)
		}
		upper := params.AmbientK + maxP/params.VerticalGWPerK + 1e-6
		for i := 0; i < 9; i++ {
			v := m.Temp(i)
			if v < params.AmbientK-1e-6 || v > upper {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: steady state is independent of integration path (Step then
// SteadyState equals SteadyState from reset).
func TestQuickSteadyStateIsStateless(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		m, _ := New(2, 2, Default())
		powers := []float64{float64(a % 30), float64(b % 30), float64(c % 30), float64(d % 30)}
		for i := range powers {
			powers[i] /= 10
		}
		ss1 := m.SteadyState(powers)
		m.Step(powers, 0.3) // perturb state
		ss2 := m.SteadyState(powers)
		for i := range ss1 {
			if math.Abs(ss1[i]-ss2[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStep64Cores(b *testing.B) {
	m, _ := New(8, 8, Default())
	powers := make([]float64, 64)
	for i := range powers {
		powers[i] = 2.0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(powers, 0.001)
	}
}
