// Package thermal implements a lumped RC thermal network for a many-core
// floorplan, playing the role HotSpot plays in the paper's toolchain.
//
// The chip is a W×H grid of thermal nodes, one per core. Each node exchanges
// heat vertically with the ambient (through the package and heat sink,
// conductance Gv) and laterally with its four grid neighbours (silicon
// spreading, conductance Gl):
//
//	C dT_i/dt = P_i − Gv·(T_i − T_amb) − Σ_j Gl·(T_i − T_j)
//
// Integration is forward Euler with automatic sub-stepping below the
// stability limit, so callers may use arbitrary control-epoch lengths.
// The model feeds the leakage–temperature loop in the power model and the
// TDP-validation experiment (F10).
package thermal

import (
	"fmt"
	"math"
)

// Params are the RC constants of the network.
type Params struct {
	AmbientK       float64 // effective local ambient (package/heatsink) temperature
	VerticalGWPerK float64 // node→ambient conductance (W/K)
	LateralGWPerK  float64 // node→neighbour conductance (W/K)
	NodeCapJPerK   float64 // node heat capacity (J/K)
}

// Default returns constants giving core-level thermal time constants of a
// few tens of milliseconds and ~40 K rise for a fully active 3.5 W core,
// consistent with published many-core thermal studies.
func Default() Params {
	return Params{
		AmbientK:       318, // 45 °C board-level ambient
		VerticalGWPerK: 0.10,
		LateralGWPerK:  0.50,
		NodeCapJPerK:   0.05,
	}
}

// Validate reports the first invalid constant.
func (p Params) Validate() error {
	switch {
	case p.AmbientK <= 0:
		return fmt.Errorf("thermal: AmbientK must be positive, got %g", p.AmbientK)
	case p.VerticalGWPerK <= 0:
		return fmt.Errorf("thermal: VerticalGWPerK must be positive, got %g", p.VerticalGWPerK)
	case p.LateralGWPerK < 0:
		return fmt.Errorf("thermal: LateralGWPerK must be non-negative, got %g", p.LateralGWPerK)
	case p.NodeCapJPerK <= 0:
		return fmt.Errorf("thermal: NodeCapJPerK must be positive, got %g", p.NodeCapJPerK)
	}
	return nil
}

// Model is the thermal state of one chip. Create with New.
type Model struct {
	w, h   int
	params Params
	temps  []float64
	// scratch avoids per-step allocation.
	scratch []float64
}

// New creates a W×H network with all nodes at ambient.
func New(w, h int, params Params) (*Model, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("thermal: invalid grid %dx%d", w, h)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		w:       w,
		h:       h,
		params:  params,
		temps:   make([]float64, w*h),
		scratch: make([]float64, w*h),
	}
	m.Reset()
	return m, nil
}

// Nodes returns the number of thermal nodes (w*h).
func (m *Model) Nodes() int { return m.w * m.h }

// Reset returns every node to ambient.
func (m *Model) Reset() {
	for i := range m.temps {
		m.temps[i] = m.params.AmbientK
	}
}

// Temp returns the temperature of node i in kelvin.
func (m *Model) Temp(i int) float64 { return m.temps[i] }

// Temps copies all node temperatures into dst if it has the right length,
// otherwise allocates. It returns the slice used.
func (m *Model) Temps(dst []float64) []float64 {
	if len(dst) != len(m.temps) {
		dst = make([]float64, len(m.temps))
	}
	copy(dst, m.temps)
	return dst
}

// TempsView returns the model's internal temperature slab without
// copying. The slice is read-only for the caller and is invalidated by
// the next Step (forward Euler swaps its working buffers), so callers
// must re-fetch the view after every Step rather than hold one. The epoch
// kernel uses this to make the model's slab its per-core temperature
// slab directly, eliminating the per-epoch Temps copy.
func (m *Model) TempsView() []float64 { return m.temps }

// MaxTemp returns the hottest node temperature.
func (m *Model) MaxTemp() float64 {
	max := m.temps[0]
	for _, t := range m.temps[1:] {
		if t > max {
			max = t
		}
	}
	return max
}

// MeanTemp returns the average node temperature.
func (m *Model) MeanTemp() float64 {
	sum := 0.0
	for _, t := range m.temps {
		sum += t
	}
	return sum / float64(len(m.temps))
}

// neighborSum accumulates Σ_j (T_i − T_j) over grid neighbours of node i.
func (m *Model) neighborDiff(i int) float64 {
	x, y := i%m.w, i/m.w
	ti := m.temps[i]
	d := 0.0
	if x > 0 {
		d += ti - m.temps[i-1]
	}
	if x < m.w-1 {
		d += ti - m.temps[i+1]
	}
	if y > 0 {
		d += ti - m.temps[i-m.w]
	}
	if y < m.h-1 {
		d += ti - m.temps[i+m.w]
	}
	return d
}

// maxStableDt returns the largest forward-Euler step that keeps the scheme
// stable: dt < C / (Gv + 4·Gl). We use half the limit for accuracy.
func (m *Model) maxStableDt() float64 {
	g := m.params.VerticalGWPerK + 4*m.params.LateralGWPerK
	return 0.5 * m.params.NodeCapJPerK / g
}

// Step advances the network by dt seconds with the given per-node power
// (watts). len(powerW) must equal Nodes(). dt must be non-negative.
func (m *Model) Step(powerW []float64, dt float64) {
	if len(powerW) != len(m.temps) {
		panic(fmt.Sprintf("thermal: power vector has %d entries, want %d", len(powerW), len(m.temps)))
	}
	if dt < 0 {
		panic(fmt.Sprintf("thermal: negative dt %g", dt))
	}
	maxDt := m.maxStableDt()
	for dt > 0 {
		step := dt
		if step > maxDt {
			step = maxDt
		}
		m.eulerStep(powerW, step)
		dt -= step
	}
}

func (m *Model) eulerStep(powerW []float64, dt float64) {
	p := m.params
	for i := range m.temps {
		flow := powerW[i] -
			p.VerticalGWPerK*(m.temps[i]-p.AmbientK) -
			p.LateralGWPerK*m.neighborDiff(i)
		m.scratch[i] = m.temps[i] + dt*flow/p.NodeCapJPerK
	}
	m.temps, m.scratch = m.scratch, m.temps
}

// SteadyState returns the equilibrium temperatures for constant per-node
// power, solved by Gauss–Seidel iteration. The model's state is not
// modified.
func (m *Model) SteadyState(powerW []float64) []float64 {
	if len(powerW) != len(m.temps) {
		panic(fmt.Sprintf("thermal: power vector has %d entries, want %d", len(powerW), len(m.temps)))
	}
	p := m.params
	t := make([]float64, len(m.temps))
	for i := range t {
		t[i] = p.AmbientK
	}
	for iter := 0; iter < 10000; iter++ {
		maxDelta := 0.0
		for i := range t {
			x, y := i%m.w, i/m.w
			gSum := p.VerticalGWPerK
			tSum := p.VerticalGWPerK * p.AmbientK
			add := func(j int) {
				gSum += p.LateralGWPerK
				tSum += p.LateralGWPerK * t[j]
			}
			if x > 0 {
				add(i - 1)
			}
			if x < m.w-1 {
				add(i + 1)
			}
			if y > 0 {
				add(i - m.w)
			}
			if y < m.h-1 {
				add(i + m.w)
			}
			next := (powerW[i] + tSum) / gSum
			if d := math.Abs(next - t[i]); d > maxDelta {
				maxDelta = d
			}
			t[i] = next
		}
		if maxDelta < 1e-9 {
			break
		}
	}
	return t
}
