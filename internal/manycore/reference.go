package manycore

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/workload"
)

// This file preserves the pre-optimization epoch kernel, verbatim. It
// exists for two reasons:
//
//  1. Oracle: TestReferenceKernelBitEqual steps identically-built chips
//     through both kernels and requires every telemetry field, energy and
//     instruction count to match to the last bit — the strongest possible
//     statement that the struct-of-arrays kernel is a pure optimization.
//  2. Baseline: the BENCH_step.json throughput gate measures the ≥5×
//     claim against this kernel live on the current host, rather than
//     against a number recorded on some other machine.
//
// A chip must be driven by exactly one kernel per run for its memo state
// to be meaningful; ReferenceStepInto therefore poisons the fast kernel's
// phase memo, which StepInto rebuilds from scratch on its next call.

// ReferenceStepInto advances the chip exactly like StepInto but through
// the retained pre-optimization kernel: per-core vf.Point calls, math.Pow
// leakage, per-epoch Phase() sampling, inline sensor-noise draws on the
// sequential path and fork/join dispatch on the parallel one. Results are
// bit-identical to StepInto by construction of the fast kernel (not the
// other way around) — the regression tests enforce it.
func (c *Chip) ReferenceStepInto(dt float64, tel *Telemetry) {
	if dt <= 0 {
		panic(fmt.Sprintf("manycore: non-positive epoch %g", dt))
	}
	c.memoPoisoned = true
	c.resolveIslands()
	n := c.NumCores()
	cores := tel.Cores
	if cap(cores) < n {
		cores = make([]CoreTelemetry, n)
	}
	*tel = Telemetry{EpochS: dt, Cores: cores[:n]}

	if workers := c.stepWorkers(); workers > 1 {
		if c.cfg.SensorNoise != 0 {
			if c.noiseBuf == nil {
				c.noiseBuf = make([]float64, 3*n)
			}
			for i := range c.noiseBuf {
				c.noiseBuf[i] = c.noise.NormFloat64()
			}
			par.ForEachChunk(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c.referenceStepCore(i, dt, tel, c.noiseBuf[3*i:3*i+3])
				}
			})
		} else {
			par.ForEachChunk(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c.referenceStepCore(i, dt, tel, nil)
				}
			})
		}
	} else {
		for i := 0; i < n; i++ {
			c.referenceStepCore(i, dt, tel, nil)
		}
	}

	for i := 0; i < n; i++ {
		c.instrByCore[i] += c.instrDelta[i]
		c.instrTotal += c.instrDelta[i]
	}

	truePower := c.cfg.Power.ChipW(c.corePowerW)
	c.energyJ += truePower * dt
	c.timeS += dt

	if c.therm != nil {
		c.therm.Step(c.corePowerW, dt)
		c.temps = c.therm.Temps(c.temps)
	}

	tel.TimeS = c.timeS
	tel.TruePowerW = truePower
	tel.ChipPowerW = c.observed(truePower)
	if c.telFilter != nil {
		c.telFilter.FilterTelemetry(tel)
	}
}

// referenceStepCore is the pre-optimization per-core epoch body: it walks
// pointer-rich structs behind interfaces (vf.Point copy, Phase() call,
// transcendental leakage) every epoch. noise, when non-nil, holds the
// core's three pre-drawn standard-normal sensor variates in draw order
// (IPS, power, memory-boundedness); nil draws them inline from the shared
// chip stream, which is only legal on the sequential path.
func (c *Chip) referenceStepCore(i int, dt float64, tel *Telemetry, noise []float64) {
	observe := func(k int, v float64) float64 {
		if c.cfg.SensorNoise == 0 {
			return v
		}
		var z float64
		if noise != nil {
			z = noise[k]
		} else {
			z = c.noise.NormFloat64()
		}
		o := v * (1 + c.cfg.SensorNoise*z)
		if o < 0 {
			o = 0
		}
		return o
	}

	if c.dead != nil && c.dead[i] {
		// Powered-off core: retires nothing, burns nothing, workload
		// frozen. The three observe calls still run (on zero, which they
		// return unchanged) so the sensor-noise stream advances exactly as
		// for a live core — dead cores must not shift the draws of their
		// neighbours, or sequential and parallel stepping would diverge.
		observe(0, 0)
		observe(1, 0)
		observe(2, 0)
		c.corePowerW[i] = 0
		c.instrDelta[i] = 0
		tel.Cores[i] = CoreTelemetry{Dead: true}
		return
	}

	ph := c.sources[i].Phase()
	op := c.cfg.VF.Point(c.levels[i])
	temp := c.temps[i]

	stall := 0.0
	if c.transitioned[i] {
		stall = c.cfg.TransitionPenaltyS
		if stall > dt {
			stall = dt
		}
		c.transitioned[i] = false
	}
	active := dt - stall

	// Process variation scales this core's achievable frequency
	// (critical-path spread) and its two power components.
	leakMult, dynMult, freqMult := 1.0, 1.0, 1.0
	if v := c.cfg.Variation; v != nil {
		leakMult, dynMult, freqMult = v.LeakMult[i], v.DynMult[i], v.FreqMult[i]
	}
	// Heterogeneous chips compose core-type multipliers on top:
	// a big core retires more per cycle and burns more per switch.
	if len(c.cfg.CoreTypes) > 0 {
		ct := c.cfg.CoreTypes[c.cfg.TypeOf[i]]
		ph.BaseCPI /= ct.IPCMult
		dynMult *= ct.CeffMult
		leakMult *= ct.LeakMult
	}
	freq := op.FreqHz * freqMult

	ips := ph.IPSAt(freq)
	instr := ips * active

	// Power: full during the active window, leakage-only during the
	// stall (clocks gated while the PLL relocks).
	pDyn := c.cfg.Power.DynamicW(op.VoltageV, freq, ph.Activity) * dynMult
	pLeak := c.cfg.Power.LeakageW(op.VoltageV, temp) * leakMult
	pActive := pDyn + pLeak
	pStall := pLeak
	avgP := (pActive*active + pStall*stall) / dt
	c.corePowerW[i] = avgP

	// Work-coupled sources (barrier apps) progress by retired
	// instructions, so a throttled core genuinely takes longer to
	// reach its barrier.
	var changed bool
	if ws, ok := c.sources[i].(workload.WorkSource); ok {
		changed = ws.AdvanceWork(dt, instr) > 0
	} else {
		changed = c.sources[i].Advance(dt) > 0
	}

	c.instrDelta[i] = instr

	tel.Cores[i] = CoreTelemetry{
		Level:          c.levels[i],
		FreqHz:         freq,
		VoltageV:       op.VoltageV,
		IPS:            observe(0, instr/dt),
		PowerW:         observe(1, avgP),
		TempK:          temp,
		MemBoundedness: clamp01(observe(2, ph.MemBoundednessAt(freq))),
		Instructions:   instr,
		PhaseChanged:   changed,
	}
}
