package manycore

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/variation"
	"repro/internal/workload"
)

// Property: for arbitrary level sequences, the chip's cumulative energy
// equals the sum of per-epoch power×dt, and every telemetry field stays
// physical (non-negative, in range).
func TestQuickChipInvariants(t *testing.T) {
	f := func(seed uint64, levelsRaw []uint8) bool {
		cfg := testConfig(3, 3)
		cfg.ThermalEnabled = true
		cfg.SensorNoise = 0.05
		sources := make([]workload.Source, 9)
		base := rng.New(seed)
		for i := range sources {
			p, err := workload.NewProcess(workload.MustPreset("ferret"), base.Split())
			if err != nil {
				return false
			}
			sources[i] = p
		}
		chip, err := New(cfg, sources, base.Split())
		if err != nil {
			return false
		}
		var energy float64
		steps := len(levelsRaw)
		if steps > 50 {
			steps = 50
		}
		for s := 0; s < steps; s++ {
			for i := 0; i < 9; i++ {
				chip.SetLevel(i, int(levelsRaw[(s+i)%len(levelsRaw)])%cfg.VF.Levels())
			}
			tel := chip.Step(1e-3)
			energy += tel.TruePowerW * 1e-3
			if tel.TruePowerW <= 0 || math.IsNaN(tel.TruePowerW) {
				return false
			}
			for _, ct := range tel.Cores {
				if ct.Level < 0 || ct.Level >= cfg.VF.Levels() {
					return false
				}
				if ct.IPS < 0 || ct.PowerW < 0 || ct.Instructions < 0 {
					return false
				}
				if ct.MemBoundedness < 0 || ct.MemBoundedness > 1 {
					return false
				}
				if ct.TempK < cfg.Thermal.AmbientK-1e-9 {
					return false
				}
			}
		}
		return math.Abs(chip.EnergyJ()-energy) < 1e-9*math.Max(1, energy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: instructions retired are monotone non-decreasing over time and
// the per-core totals always sum to the chip total.
func TestQuickInstructionAccounting(t *testing.T) {
	f := func(seed uint64, nSteps uint8) bool {
		cfg := testConfig(2, 2)
		sources := make([]workload.Source, 4)
		base := rng.New(seed)
		for i := range sources {
			p, err := workload.NewProcess(workload.MustPreset("vips"), base.Split())
			if err != nil {
				return false
			}
			sources[i] = p
		}
		chip, err := New(cfg, sources, base.Split())
		if err != nil {
			return false
		}
		prev := 0.0
		for s := 0; s < int(nSteps%40)+1; s++ {
			chip.Step(1e-3)
			total := chip.Instructions()
			if total < prev {
				return false
			}
			prev = total
			sum := 0.0
			for i := 0; i < 4; i++ {
				sum += chip.CoreInstructions(i)
			}
			if math.Abs(sum-total) > 1e-6*math.Max(1, total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: island resolution is idempotent — once an epoch has run, a
// second epoch with unchanged requests must charge no further transitions
// (observable as equal instruction counts in back-to-back epochs under a
// steady phase).
func TestQuickIslandResolutionStable(t *testing.T) {
	f := func(reqRaw []uint8) bool {
		if len(reqRaw) == 0 {
			return true
		}
		cfg := testConfig(4, 4)
		cfg.IslandW, cfg.IslandH = 2, 2
		cfg.TransitionPenaltyS = 100e-6
		sources := make([]workload.Source, 16)
		for i := range sources {
			sources[i] = steadySource{workload.Phase{
				Class: workload.Compute, BaseCPI: 0.8, MemLatencyNs: 80, Activity: 1,
			}}
		}
		chip, err := New(cfg, sources, rng.New(1))
		if err != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			chip.SetLevel(i, int(reqRaw[i%len(reqRaw)])%cfg.VF.Levels())
		}
		chip.Step(1e-3) // transitions happen here
		a := chip.Step(1e-3).Cores
		b := chip.Step(1e-3).Cores
		for i := range a {
			if a[i].Instructions != b[i].Instructions {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Variation must shift power but never break accounting: two chips that
// differ only in their variation map retire identical instructions when
// FreqSigma is zero, and the leakier die burns more energy at idle levels.
func TestVariationEnergyOrdering(t *testing.T) {
	mkChip := func(leakMult float64) *Chip {
		cfg := testConfig(2, 2)
		m := variation.Uniform(2, 2)
		for i := range m.LeakMult {
			m.LeakMult[i] = leakMult
		}
		cfg.Variation = m
		sources := make([]workload.Source, 4)
		for i := range sources {
			sources[i] = computeSource()
		}
		chip, err := New(cfg, sources, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return chip
	}
	nominal := mkChip(1.0)
	leaky := mkChip(1.5)
	for s := 0; s < 20; s++ {
		nominal.Step(1e-3)
		leaky.Step(1e-3)
	}
	if leaky.EnergyJ() <= nominal.EnergyJ() {
		t.Fatalf("leaky die energy %v not above nominal %v", leaky.EnergyJ(), nominal.EnergyJ())
	}
	if leaky.Instructions() != nominal.Instructions() {
		t.Fatal("leakage variation must not change instruction counts")
	}
}

// Frequency variation must shift performance: a slow die retires fewer
// instructions at the same level.
func TestFrequencyVariationShiftsPerformance(t *testing.T) {
	mkChip := func(freqMult float64) *Chip {
		cfg := testConfig(2, 2)
		m := variation.Uniform(2, 2)
		for i := range m.FreqMult {
			m.FreqMult[i] = freqMult
		}
		cfg.Variation = m
		sources := make([]workload.Source, 4)
		for i := range sources {
			sources[i] = computeSource()
		}
		chip, err := New(cfg, sources, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return chip
	}
	fast := mkChip(1.05)
	slow := mkChip(0.95)
	for s := 0; s < 10; s++ {
		fast.Step(1e-3)
		slow.Step(1e-3)
	}
	if slow.Instructions() >= fast.Instructions() {
		t.Fatalf("slow die retired %v, fast die %v", slow.Instructions(), fast.Instructions())
	}
}
