package manycore

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

// steadySource is a Source pinned to one phase forever.
type steadySource struct{ ph workload.Phase }

func (s steadySource) Phase() workload.Phase { return s.ph }
func (s steadySource) Advance(float64) int   { return 0 }
func (s steadySource) PhaseIndex() int       { return 0 }

func computeSource() workload.Source {
	return steadySource{workload.Phase{
		Class: workload.Compute, BaseCPI: 0.8, MPKI: 0, MemLatencyNs: 80, Activity: 1.0,
	}}
}

func memorySource() workload.Source {
	return steadySource{workload.Phase{
		Class: workload.Memory, BaseCPI: 1.0, MPKI: 20, MemLatencyNs: 80, Activity: 0.4,
	}}
}

func testConfig(w, h int) Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.SensorNoise = 0
	cfg.ThermalEnabled = false
	return cfg
}

func newTestChip(t *testing.T, cfg Config, src func() workload.Source) *Chip {
	t.Helper()
	sources := make([]workload.Source, cfg.Width*cfg.Height)
	for i := range sources {
		sources[i] = src()
	}
	c, err := New(cfg, sources, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(2, 2)
	if _, err := New(cfg, make([]workload.Source, 3), rng.New(1)); err == nil {
		t.Fatal("expected error for wrong source count")
	}
	if _, err := New(cfg, make([]workload.Source, 4), rng.New(1)); err == nil {
		t.Fatal("expected error for nil sources")
	}
	srcs := []workload.Source{computeSource(), computeSource(), computeSource(), computeSource()}
	if _, err := New(cfg, srcs, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	bad := cfg
	bad.Width = 0
	if _, err := New(bad, srcs, rng.New(1)); err == nil {
		t.Fatal("expected error for zero width")
	}
	bad = cfg
	bad.InitialLevel = 99
	if _, err := New(bad, srcs, rng.New(1)); err == nil {
		t.Fatal("expected error for bad initial level")
	}
	bad = cfg
	bad.VF = nil
	if _, err := New(bad, srcs, rng.New(1)); err == nil {
		t.Fatal("expected error for nil VF table")
	}
}

func TestInstructionAccountingComputeBound(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.InitialLevel = cfg.VF.Levels() - 1
	chip := newTestChip(t, cfg, computeSource)
	tel := chip.Step(0.001)
	// Compute-bound: IPS = f / 0.8 exactly, no stalls, no noise.
	f := cfg.VF.Max().FreqHz
	wantIPS := f / 0.8
	for i, ct := range tel.Cores {
		if math.Abs(ct.IPS-wantIPS)/wantIPS > 1e-9 {
			t.Fatalf("core %d IPS = %v, want %v", i, ct.IPS, wantIPS)
		}
	}
	wantInstr := wantIPS * 0.001 * 4
	if math.Abs(chip.Instructions()-wantInstr)/wantInstr > 1e-9 {
		t.Fatalf("total instructions = %v, want %v", chip.Instructions(), wantInstr)
	}
}

func TestFrequencyScalingShape(t *testing.T) {
	// Compute-bound IPS scales ~linearly with f; memory-bound much less.
	cfg := testConfig(1, 1)
	lowCfg := cfg
	lowCfg.InitialLevel = 0
	highCfg := cfg
	highCfg.InitialLevel = cfg.VF.Levels() - 1

	run := func(cfg Config, src func() workload.Source) float64 {
		chip := newTestChip(t, cfg, src)
		return chip.Step(0.001).Cores[0].IPS
	}
	fRatio := cfg.VF.Max().FreqHz / cfg.VF.Min().FreqHz

	compRatio := run(highCfg, computeSource) / run(lowCfg, computeSource)
	if math.Abs(compRatio-fRatio) > 1e-6 {
		t.Fatalf("compute-bound speedup %v, want %v", compRatio, fRatio)
	}
	memRatio := run(highCfg, memorySource) / run(lowCfg, memorySource)
	if memRatio >= 0.7*fRatio {
		t.Fatalf("memory-bound speedup %v should be well below %v", memRatio, fRatio)
	}
	if memRatio <= 1 {
		t.Fatal("memory-bound workload must still speed up with frequency")
	}
}

func TestPowerIncreasesWithLevel(t *testing.T) {
	cfg := testConfig(2, 2)
	var prev float64
	for lvl := 0; lvl < cfg.VF.Levels(); lvl++ {
		c := cfg
		c.InitialLevel = lvl
		chip := newTestChip(t, c, computeSource)
		tel := chip.Step(0.001)
		if lvl > 0 && tel.TruePowerW <= prev {
			t.Fatalf("power at level %d (%v W) not above level %d (%v W)",
				lvl, tel.TruePowerW, lvl-1, prev)
		}
		prev = tel.TruePowerW
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := testConfig(2, 2)
	chip := newTestChip(t, cfg, computeSource)
	var sum float64
	for i := 0; i < 10; i++ {
		tel := chip.Step(0.001)
		sum += tel.TruePowerW * 0.001
	}
	if math.Abs(chip.EnergyJ()-sum) > 1e-12 {
		t.Fatalf("EnergyJ = %v, want %v", chip.EnergyJ(), sum)
	}
	if math.Abs(chip.TimeS()-0.010) > 1e-12 {
		t.Fatalf("TimeS = %v, want 0.010", chip.TimeS())
	}
}

func TestTransitionPenalty(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.TransitionPenaltyS = 100e-6
	chip := newTestChip(t, cfg, computeSource)
	base := chip.Step(0.001).Cores[0].Instructions

	chip.SetLevel(0, 0) // same level: no transition
	same := chip.Step(0.001).Cores[0].Instructions
	if math.Abs(same-base) > 1e-9 {
		t.Fatal("same-level SetLevel must not charge a stall")
	}

	chip.SetLevel(0, 1)
	chip.SetLevel(0, 0) // request undone before the epoch boundary: no actuation
	undone := chip.Step(0.001).Cores[0].Instructions
	if math.Abs(undone-base) > 1e-9 {
		t.Fatal("an undone request must not charge a stall")
	}

	chip.SetLevel(0, 1) // actual transition at the next boundary
	chip.Step(0.001)    // epoch at level 1 with the stall
	chip.SetLevel(0, 0) // transition back
	stalled := chip.Step(0.001).Cores[0].Instructions
	want := base * (0.001 - 100e-6) / 0.001
	if math.Abs(stalled-want)/want > 1e-9 {
		t.Fatalf("stalled epoch retired %v instructions, want %v", stalled, want)
	}

	// Next epoch is clean again.
	clean := chip.Step(0.001).Cores[0].Instructions
	if math.Abs(clean-base) > 1e-9 {
		t.Fatal("stall leaked into the following epoch")
	}
}

func TestIslandMaxRequestWins(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.IslandW, cfg.IslandH = 2, 2
	chip := newTestChip(t, cfg, computeSource)
	// Within the top-left 2x2 island (cores 0,1,4,5), one core asks for
	// level 5; the whole island must run at 5.
	chip.SetLevel(0, 5)
	chip.SetLevel(1, 2)
	tel := chip.Step(0.001)
	for _, i := range []int{0, 1, 4, 5} {
		if tel.Cores[i].Level != 5 {
			t.Fatalf("island core %d at level %d, want 5", i, tel.Cores[i].Level)
		}
	}
	// Cores outside the island stay at the initial level.
	if tel.Cores[2].Level != cfg.InitialLevel {
		t.Fatalf("non-island core moved to %d", tel.Cores[2].Level)
	}
}

func TestIslandValidation(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.IslandW, cfg.IslandH = 3, 2 // 3 does not divide 4
	sources := make([]workload.Source, 16)
	for i := range sources {
		sources[i] = computeSource()
	}
	if _, err := New(cfg, sources, rng.New(1)); err == nil {
		t.Fatal("expected error for non-tiling island")
	}
	cfg.IslandW, cfg.IslandH = -1, 1
	if _, err := New(cfg, sources, rng.New(1)); err == nil {
		t.Fatal("expected error for negative island dims")
	}
}

func TestChipWideIslandUniform(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.IslandW, cfg.IslandH = 4, 4
	chip := newTestChip(t, cfg, computeSource)
	for i := 0; i < 16; i++ {
		chip.SetLevel(i, i%3) // scattered requests; max is 2
	}
	tel := chip.Step(0.001)
	for i, ct := range tel.Cores {
		if ct.Level != 2 {
			t.Fatalf("core %d at level %d, want chip-wide max 2", i, ct.Level)
		}
	}
}

func TestSetLevelPanicsOutOfRange(t *testing.T) {
	chip := newTestChip(t, testConfig(1, 1), computeSource)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	chip.SetLevel(0, 99)
}

func TestStepPanicsOnNonPositiveDt(t *testing.T) {
	chip := newTestChip(t, testConfig(1, 1), computeSource)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	chip.Step(0)
}

func TestThermalLoopHeatsAndRaisesLeakage(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.ThermalEnabled = true
	cfg.InitialLevel = cfg.VF.Levels() - 1
	chip := newTestChip(t, cfg, computeSource)
	first := chip.Step(0.001)
	for i := 0; i < 2000; i++ {
		chip.Step(0.001)
	}
	last := chip.Step(0.001)
	if chip.MaxTempK() <= cfg.Thermal.AmbientK+5 {
		t.Fatalf("max temp %v barely above ambient after 2 s at full power", chip.MaxTempK())
	}
	if last.TruePowerW <= first.TruePowerW {
		t.Fatalf("leakage-temperature loop missing: power %v -> %v", first.TruePowerW, last.TruePowerW)
	}
	if last.Cores[0].TempK <= first.Cores[0].TempK {
		t.Fatal("core telemetry temperature did not rise")
	}
}

func TestThermalDisabledHoldsAmbient(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.InitialLevel = cfg.VF.Levels() - 1
	chip := newTestChip(t, cfg, computeSource)
	for i := 0; i < 100; i++ {
		chip.Step(0.001)
	}
	if chip.MaxTempK() != cfg.Thermal.AmbientK {
		t.Fatal("disabled thermal loop must hold ambient")
	}
}

func TestSensorNoiseObservedOnly(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.SensorNoise = 0.1
	chip := newTestChip(t, cfg, computeSource)
	sawDiff := false
	var trueEnergy float64
	for i := 0; i < 50; i++ {
		tel := chip.Step(0.001)
		trueEnergy += tel.TruePowerW * 0.001
		if math.Abs(tel.ChipPowerW-tel.TruePowerW) > 1e-9 {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("sensor noise never perturbed observed power")
	}
	if math.Abs(chip.EnergyJ()-trueEnergy) > 1e-9 {
		t.Fatal("energy accounting must use true power, not observed")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() *Chip {
		cfg := testConfig(4, 4)
		cfg.SensorNoise = 0.05
		cfg.ThermalEnabled = true
		sources := make([]workload.Source, 16)
		base := rng.New(99)
		for i := range sources {
			p, err := workload.NewProcess(workload.MustPreset("bodytrack"), base.Split())
			if err != nil {
				t.Fatal(err)
			}
			sources[i] = p
		}
		c, err := New(cfg, sources, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		ta := a.Step(0.001)
		tb := b.Step(0.001)
		if ta.TruePowerW != tb.TruePowerW || ta.ChipPowerW != tb.ChipPowerW {
			t.Fatalf("same-seed chips diverged at epoch %d", i)
		}
	}
	if a.Instructions() != b.Instructions() {
		t.Fatal("instruction totals diverged")
	}
}

func TestMemBoundednessTelemetry(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.InitialLevel = cfg.VF.Levels() - 1
	memChip := newTestChip(t, cfg, memorySource)
	compChip := newTestChip(t, cfg, computeSource)
	mb := memChip.Step(0.001).Cores[0].MemBoundedness
	cb := compChip.Step(0.001).Cores[0].MemBoundedness
	if mb <= 0.5 {
		t.Fatalf("memory-bound telemetry = %v, want > 0.5", mb)
	}
	if cb != 0 {
		t.Fatalf("compute-bound telemetry = %v, want 0", cb)
	}
}

func TestPhaseChangedFlag(t *testing.T) {
	spec := workload.Spec{
		Name: "flip",
		Phases: []workload.PhaseSpec{
			{Phase: workload.Phase{BaseCPI: 1, Activity: 0.5, MemLatencyNs: 80}, MeanDurS: 0.0015, DurJitter: 0},
			{Phase: workload.Phase{BaseCPI: 2, Activity: 0.5, MemLatencyNs: 80}, MeanDurS: 0.0015, DurJitter: 0},
		},
		Transitions: [][]float64{{0, 1}, {1, 0}},
	}
	p, err := workload.NewProcess(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1, 1)
	chip, err := New(cfg, []workload.Source{p}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Phase flips at t=1.5ms: first epoch no change, second epoch change.
	if chip.Step(0.001).Cores[0].PhaseChanged {
		t.Fatal("no phase change expected in first 1 ms")
	}
	if !chip.Step(0.001).Cores[0].PhaseChanged {
		t.Fatal("phase change expected in second 1 ms")
	}
}

func TestCoreInstructionsPerCore(t *testing.T) {
	cfg := testConfig(2, 1)
	sources := []workload.Source{computeSource(), memorySource()}
	chip, err := New(cfg, sources, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	chip.Step(0.001)
	if chip.CoreInstructions(0) <= chip.CoreInstructions(1) {
		t.Fatal("compute-bound core should retire more than memory-bound at equal f")
	}
	total := chip.CoreInstructions(0) + chip.CoreInstructions(1)
	if math.Abs(total-chip.Instructions()) > 1e-9 {
		t.Fatal("per-core totals do not sum to chip total")
	}
}

func BenchmarkStep64(b *testing.B) {
	cfg := testConfig(8, 8)
	cfg.ThermalEnabled = true
	sources := make([]workload.Source, 64)
	base := rng.New(1)
	for i := range sources {
		p, _ := workload.NewProcess(workload.MustPreset("ferret"), base.Split())
		sources[i] = p
	}
	chip, _ := New(cfg, sources, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Step(0.001)
	}
}

func TestCoreTypeValidate(t *testing.T) {
	for _, ct := range BigLittleTypes() {
		if err := ct.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := []CoreType{
		{Name: "", IPCMult: 1, CeffMult: 1, LeakMult: 1},
		{Name: "x", IPCMult: 0, CeffMult: 1, LeakMult: 1},
		{Name: "x", IPCMult: 1, CeffMult: 0, LeakMult: 1},
		{Name: "x", IPCMult: 1, CeffMult: 1, LeakMult: -1},
	}
	for i, ct := range bad {
		if err := ct.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHeterogeneousConfigValidation(t *testing.T) {
	cfg := testConfig(2, 2)
	sources := make([]workload.Source, 4)
	for i := range sources {
		sources[i] = computeSource()
	}
	// TypeOf without CoreTypes.
	cfg.TypeOf = []int{0, 0, 0, 0}
	if _, err := New(cfg, sources, rng.New(1)); err == nil {
		t.Fatal("expected error for TypeOf without CoreTypes")
	}
	// Wrong TypeOf length.
	cfg.CoreTypes = BigLittleTypes()
	cfg.TypeOf = []int{0, 1}
	if _, err := New(cfg, sources, rng.New(1)); err == nil {
		t.Fatal("expected error for short TypeOf")
	}
	// Out-of-range type index.
	cfg.TypeOf = []int{0, 1, 2, 0}
	if _, err := New(cfg, sources, rng.New(1)); err == nil {
		t.Fatal("expected error for bad type index")
	}
	// Invalid type itself.
	cfg.TypeOf = []int{0, 1, 0, 1}
	cfg.CoreTypes = []CoreType{{Name: "", IPCMult: 1, CeffMult: 1, LeakMult: 1}, BigLittleTypes()[1]}
	if _, err := New(cfg, sources, rng.New(1)); err == nil {
		t.Fatal("expected error for invalid core type")
	}
}

func TestHeterogeneousBigOutperformsLittle(t *testing.T) {
	cfg := testConfig(2, 1)
	cfg.CoreTypes = BigLittleTypes()
	cfg.TypeOf = []int{0, 1} // core 0 big, core 1 little
	sources := []workload.Source{computeSource(), computeSource()}
	chip, err := New(cfg, sources, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tel := chip.Step(0.001)
	if tel.Cores[0].Instructions <= tel.Cores[1].Instructions {
		t.Fatalf("big core retired %v, little %v — big must win",
			tel.Cores[0].Instructions, tel.Cores[1].Instructions)
	}
	if tel.Cores[0].PowerW <= tel.Cores[1].PowerW {
		t.Fatalf("big core power %v not above little %v",
			tel.Cores[0].PowerW, tel.Cores[1].PowerW)
	}
	// IPC ratio at equal frequency equals the IPCMult ratio for pure
	// compute phases.
	ratio := tel.Cores[0].Instructions / tel.Cores[1].Instructions
	want := BigLittleTypes()[0].IPCMult / BigLittleTypes()[1].IPCMult
	if math.Abs(ratio-want)/want > 1e-9 {
		t.Fatalf("IPC ratio = %v, want %v", ratio, want)
	}
}

func TestChipConfigAndLevelAccessors(t *testing.T) {
	cfg := testConfig(2, 2)
	chip := newTestChip(t, cfg, computeSource)
	if got := chip.Config().Width; got != 2 {
		t.Fatalf("Config().Width = %d", got)
	}
	chip.SetLevel(1, 3)
	chip.Step(0.001)
	if chip.Level(1) != 3 {
		t.Fatalf("Level(1) = %d, want 3", chip.Level(1))
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.25) != 0.25 {
		t.Fatal("clamp01 wrong")
	}
}
