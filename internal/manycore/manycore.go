// Package manycore is the epoch-driven many-core performance simulator that
// replaces the paper's architectural simulator.
//
// Each core runs one workload.Source and sits at one VF operating point.
// Per control epoch (typically 1 ms) the simulator computes instructions
// retired from the phase's CPI(f) model, power from the power model (with
// the thermal model closing the leakage–temperature loop), and produces the
// telemetry a DVFS controller would read from performance counters and
// power sensors — optionally corrupted with multiplicative Gaussian sensor
// noise. DVFS transitions charge a PLL-relock stall during which the core
// retires nothing and burns leakage only.
//
// The simulator is intentionally analytic rather than cycle-accurate: every
// controller in this repository observes only per-epoch aggregates, so an
// analytic model that reproduces the aggregate surface (sub-linear
// frequency scaling, activity-dependent power, thermal inertia) exercises
// the identical control problem at a fraction of the cost.
package manycore

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/thermal"
	"repro/internal/variation"
	"repro/internal/vf"
	"repro/internal/workload"
)

// parallelMinCores is the core count below which Step always runs
// sequentially: the per-core epoch body costs a few hundred nanoseconds,
// so goroutine dispatch only pays for itself on large chips.
const parallelMinCores = 128

// Config describes one chip.
type Config struct {
	// Width and Height give the core grid; core count is Width*Height.
	Width, Height int
	// VF is the table of operating points shared by all cores.
	VF *vf.Table
	// Power holds the technology power constants.
	Power power.Params
	// Thermal holds the RC network constants; only used when ThermalEnabled.
	Thermal thermal.Params
	// ThermalEnabled closes the leakage–temperature loop. When false, all
	// cores are held at Thermal.AmbientK.
	ThermalEnabled bool
	// SensorNoise is the relative standard deviation of multiplicative
	// Gaussian noise applied to IPS/power/mem-boundedness telemetry.
	// Zero disables noise. True (noise-free) power is still reported
	// separately for energy accounting.
	SensorNoise float64
	// TransitionPenaltyS is the stall charged to a core on a VF change
	// (PLL relock + voltage ramp), typically ~10 µs.
	TransitionPenaltyS float64
	// InitialLevel is the VF level all cores start at.
	InitialLevel int
	// Variation optionally applies per-core process-variation multipliers
	// to leakage and dynamic power; its grid must match Width×Height.
	// Controllers are never told about it — they only see its effect in
	// the power telemetry, exactly as on real silicon.
	Variation *variation.Map
	// IslandW and IslandH group cores into rectangular voltage-frequency
	// islands (VFIs) sharing one operating point. Zero means 1 (per-core
	// DVFS). Each island runs at the highest level requested by any of its
	// cores — the standard "max request wins" policy of shared voltage
	// domains. Island dimensions must divide the grid dimensions.
	IslandW, IslandH int
	// CoreTypes and TypeOf describe a heterogeneous (big.LITTLE-style)
	// chip: TypeOf[i] indexes into CoreTypes for core i. Empty CoreTypes
	// means a homogeneous chip. Controllers are not told core types — as
	// with variation, telemetry is their only window.
	CoreTypes []CoreType
	TypeOf    []int
	// Workers bounds the goroutines sharding Step's per-core loop:
	// 0 uses one worker per CPU, 1 forces sequential stepping. Parallel
	// stepping is bit-identical to sequential (sensor-noise draws are
	// pre-split in core order before dispatch) and only engages for chips
	// of at least parallelMinCores whose workload sources are independent
	// (no shared-state WorkSource lanes).
	Workers int
}

// CoreType is one microarchitecture in a heterogeneous chip. Multipliers
// are relative to the nominal core the power/CPI models describe.
type CoreType struct {
	Name string
	// IPCMult scales pipeline throughput: effective base CPI is
	// BaseCPI / IPCMult. A big out-of-order core has IPCMult > 1.
	IPCMult float64
	// CeffMult scales switched capacitance (dynamic power).
	CeffMult float64
	// LeakMult scales leakage current (bigger cores leak more).
	LeakMult float64
}

// Validate reports the first invalid field.
func (ct CoreType) Validate() error {
	switch {
	case ct.Name == "":
		return fmt.Errorf("manycore: core type with empty name")
	case ct.IPCMult <= 0:
		return fmt.Errorf("manycore: core type %q has non-positive IPCMult %g", ct.Name, ct.IPCMult)
	case ct.CeffMult <= 0:
		return fmt.Errorf("manycore: core type %q has non-positive CeffMult %g", ct.Name, ct.CeffMult)
	case ct.LeakMult <= 0:
		return fmt.Errorf("manycore: core type %q has non-positive LeakMult %g", ct.Name, ct.LeakMult)
	}
	return nil
}

// BigLittleTypes returns the standard heterogeneous pair used by the F17
// experiment: a wide out-of-order core and an efficient in-order one.
func BigLittleTypes() []CoreType {
	return []CoreType{
		{Name: "big", IPCMult: 1.4, CeffMult: 1.7, LeakMult: 1.6},
		{Name: "little", IPCMult: 0.7, CeffMult: 0.45, LeakMult: 0.4},
	}
}

// DefaultConfig returns a 64-core (8×8) chip with the default technology
// models, thermal loop on, 2% sensor noise and a 10 µs transition stall.
func DefaultConfig() Config {
	return Config{
		Width:              8,
		Height:             8,
		VF:                 vf.Default(),
		Power:              power.Default(),
		Thermal:            thermal.Default(),
		ThermalEnabled:     true,
		SensorNoise:        0.02,
		TransitionPenaltyS: 10e-6,
		InitialLevel:       0,
	}
}

// Validate reports the first invalid configuration field.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("manycore: invalid grid %dx%d", c.Width, c.Height)
	case c.VF == nil:
		return fmt.Errorf("manycore: nil VF table")
	case c.SensorNoise < 0:
		return fmt.Errorf("manycore: negative sensor noise %g", c.SensorNoise)
	case c.TransitionPenaltyS < 0:
		return fmt.Errorf("manycore: negative transition penalty %g", c.TransitionPenaltyS)
	case c.InitialLevel < 0 || c.InitialLevel >= c.VF.Levels():
		return fmt.Errorf("manycore: initial level %d out of range", c.InitialLevel)
	case c.Workers < 0:
		return fmt.Errorf("manycore: negative worker count %d", c.Workers)
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.ThermalEnabled {
		if err := c.Thermal.Validate(); err != nil {
			return err
		}
	}
	if c.Variation != nil {
		if err := c.Variation.Validate(); err != nil {
			return err
		}
		if c.Variation.W != c.Width || c.Variation.H != c.Height {
			return fmt.Errorf("manycore: variation map is %dx%d, chip is %dx%d",
				c.Variation.W, c.Variation.H, c.Width, c.Height)
		}
	}
	iw, ih := c.islandDims()
	if iw < 1 || ih < 1 {
		return fmt.Errorf("manycore: invalid island dims %dx%d", iw, ih)
	}
	if c.Width%iw != 0 || c.Height%ih != 0 {
		return fmt.Errorf("manycore: island %dx%d does not tile grid %dx%d",
			iw, ih, c.Width, c.Height)
	}
	if len(c.CoreTypes) > 0 {
		for _, ct := range c.CoreTypes {
			if err := ct.Validate(); err != nil {
				return err
			}
		}
		if len(c.TypeOf) != c.Width*c.Height {
			return fmt.Errorf("manycore: TypeOf has %d entries for %d cores",
				len(c.TypeOf), c.Width*c.Height)
		}
		for i, ty := range c.TypeOf {
			if ty < 0 || ty >= len(c.CoreTypes) {
				return fmt.Errorf("manycore: core %d has type %d of %d", i, ty, len(c.CoreTypes))
			}
		}
	} else if len(c.TypeOf) != 0 {
		return fmt.Errorf("manycore: TypeOf set without CoreTypes")
	}
	return nil
}

// islandDims returns the island tile size with zeros defaulted to 1.
func (c Config) islandDims() (int, int) {
	iw, ih := c.IslandW, c.IslandH
	if iw == 0 {
		iw = 1
	}
	if ih == 0 {
		ih = 1
	}
	return iw, ih
}

// CoreTelemetry is what the control plane observes about one core after an
// epoch. IPS, PowerW and MemBoundedness carry sensor noise when configured;
// Instructions is the true retired count (used only for metrics, never by
// controllers).
type CoreTelemetry struct {
	Level          int
	FreqHz         float64
	VoltageV       float64
	IPS            float64
	PowerW         float64
	TempK          float64
	MemBoundedness float64
	Instructions   float64
	PhaseChanged   bool
	// Dead marks a core that has failed permanently (see Chip.FailCore).
	// It is the machine-check signal a real chip raises on core failure:
	// controllers may use it to reclaim the core's budget share, and a dead
	// core's other fields are all zero.
	Dead bool
}

// TelemetryFilter rewrites the telemetry controllers observe, at the
// sensor-read boundary: Chip.Step invokes it once per epoch, after the
// per-core loop, on the telemetry it is about to return. Implementations
// must only modify observed fields (per-core readings and ChipPowerW),
// never TruePowerW or Instructions, and must be cheap — they run on the
// sequential path of every epoch. Package fault provides the standard
// implementation.
type TelemetryFilter interface {
	FilterTelemetry(tel *Telemetry)
}

// ActuationFilter intercepts VF level requests at the SetLevel boundary:
// it receives the validated requested level and the core's current
// effective level, and returns the level actually latched. Returned levels
// are clamped to the table range. Package fault provides the standard
// implementation (dropped or clamped actuations).
type ActuationFilter interface {
	FilterLevel(core, requested, current int) int
}

// Telemetry is the chip-level epoch report.
type Telemetry struct {
	// TimeS is cumulative simulated time at the end of the epoch.
	TimeS float64
	// EpochS is the epoch length.
	EpochS float64
	// ChipPowerW is the observed (noisy) total chip power.
	ChipPowerW float64
	// TruePowerW is the exact total chip power, for energy accounting.
	TruePowerW float64
	// Cores holds per-core observations.
	Cores []CoreTelemetry
}

// Chip is one simulated many-core processor.
type Chip struct {
	cfg          Config
	sources      []workload.Source
	requested    []int // per-core level requests from the controller
	levels       []int // effective levels after island resolution
	transitioned []bool
	therm        *thermal.Model
	noise        *rng.RNG

	timeS       float64
	energyJ     float64
	instrTotal  float64
	instrByCore []float64

	// fault-injection hooks; nil (the default) costs one branch per epoch
	// (telFilter) or per SetLevel (actFilter). dead is allocated lazily by
	// the first FailCore.
	telFilter TelemetryFilter
	actFilter ActuationFilter
	dead      []bool

	// indepSources records that no source shares state with another (no
	// WorkSource lanes), which is what licenses parallel stepping.
	indepSources bool

	// scratch buffers reused across epochs
	corePowerW []float64
	temps      []float64
	instrDelta []float64
	noiseBuf   []float64 // pre-drawn sensor noise for the whole epoch

	// Struct-of-arrays kernel state, built once in New. Levels are
	// discrete, so everything level-indexed is precomputed: freqsHz and
	// voltsV alias the VF table's slabs, lut holds the leakage Pow prefix
	// per level, and fixedLeakW is the full per-level leakage when the
	// thermal loop is off (temperature then never leaves ambient).
	nLevels   int
	freqsHz   []float64
	voltsV    []float64
	lut       *power.LUT
	fixedLeak []float64
	// Per-core multiplier slabs fold process variation and core-type
	// heterogeneity into one multiply each, combined in the reference
	// kernel's order (variation first, then core type) so the products
	// round identically. ipcMult is the per-core IPCMult divisor for
	// BaseCPI; hetero gates the division so homogeneous chips skip it
	// entirely, as the reference kernel does.
	freqMultC []float64
	dynMultC  []float64
	leakMultC []float64
	ipcMult   []float64
	hetero    bool
	uniform   bool
	// workSrcs caches the WorkSource type assertion per core at install
	// time; nil means a plain Source. Shared-state lanes are stepped
	// fresh every epoch (their phase can flip when another lane advances)
	// while plain sources qualify for the phase memo below.
	workSrcs []workload.WorkSource
	// procSrcs caches the dominant concrete source type per core, again
	// at install time, so the epoch kernel calls Advance directly rather
	// than through the interface table; nil falls back to the interface
	// call. Same method, same arithmetic — devirtualization only.
	procSrcs []*workload.Process
	// Phase memo: memoIPS/memoDyn/memoMemB[i*nLevels+l] cache the three
	// phase×level-derived quantities, valid while memoVer[i*nLevels+l]
	// equals phaseVer[i]. phaseVer starts at 1 (memoVer at 0, so every
	// slot starts invalid) and increments when core i's source reports a
	// phase change. phCache/phVer additionally cache the scaled (and
	// heterogeneity-adjusted) Phase value itself per core, so a memo miss
	// for a new level re-derives only the level-dependent physics, not
	// the interface call and scale multiplies. Cached values are produced
	// by the exact instruction sequence the reference kernel runs, so a
	// hit replays identical bits. ReferenceStepInto advances sources
	// without maintaining phaseVer and therefore sets memoPoisoned;
	// StepInto then rebuilds.
	phaseVer     []uint32
	memoVer      []uint32
	memoIPS      []float64
	memoDyn      []float64
	memoMemB     []float64
	phCache      []workload.Phase
	phVer        []uint32
	memoPoisoned bool
	// islandsTrivial marks 1×1 islands (per-core DVFS), enabling the
	// branch-light request-latch loop in resolveIslands.
	islandsTrivial bool

	// pool holds the persistent shard workers for parallel stepping,
	// created on first use and released by Close (or a finalizer).
	pool    *par.Pool
	stepFn  func(lo, hi int)
	stepDt  float64
	stepTel *Telemetry
}

// New builds a chip running the given per-core workload sources. The number
// of sources must equal Width*Height. The RNG seeds the sensor-noise stream.
func New(cfg Config, sources []workload.Source, r *rng.RNG) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Width * cfg.Height
	if len(sources) != n {
		return nil, fmt.Errorf("manycore: %d sources for %d cores", len(sources), n)
	}
	for i, s := range sources {
		if s == nil {
			return nil, fmt.Errorf("manycore: nil source for core %d", i)
		}
	}
	if r == nil {
		return nil, fmt.Errorf("manycore: nil rng")
	}
	nl := cfg.VF.Levels()
	c := &Chip{
		cfg:          cfg,
		sources:      sources,
		requested:    make([]int, n),
		levels:       make([]int, n),
		transitioned: make([]bool, n),
		noise:        r,
		instrByCore:  make([]float64, n),
		corePowerW:   make([]float64, n),
		temps:        make([]float64, n),
		instrDelta:   make([]float64, n),
		indepSources: true,
		nLevels:      nl,
		freqsHz:      cfg.VF.FreqsHz(),
		voltsV:       cfg.VF.VoltagesV(),
		lut:          power.NewLUT(cfg.Power, cfg.VF.VoltagesV()),
		freqMultC:    make([]float64, n),
		dynMultC:     make([]float64, n),
		leakMultC:    make([]float64, n),
		workSrcs:     make([]workload.WorkSource, n),
		procSrcs:     make([]*workload.Process, n),
		phaseVer:     make([]uint32, n),
		memoVer:      make([]uint32, n*nl),
		memoIPS:      make([]float64, n*nl),
		memoDyn:      make([]float64, n*nl),
		memoMemB:     make([]float64, n*nl),
		phCache:      make([]workload.Phase, n),
		phVer:        make([]uint32, n),
	}
	if !cfg.ThermalEnabled {
		c.fixedLeak = c.lut.FixedTempLeakageW(cfg.Thermal.AmbientK)
	}
	iw, ih := cfg.islandDims()
	c.islandsTrivial = iw == 1 && ih == 1
	for i, s := range sources {
		// WorkSource lanes (barrier apps, job systems) share application
		// state across cores, so advancing them concurrently would race
		// and reorder barrier releases; such chips always step
		// sequentially. This assertion is the only shared-state signal, so
		// any wrapper delegating to a WorkSource must itself implement
		// WorkSource (see the invariant on workload.Source) or it would
		// wrongly pass this check and race under parallel stepping. The
		// result is cached per core: the kernel consults it every epoch
		// (both for work-coupled advancement and to gate the phase memo)
		// and has no business re-asserting an interface there.
		if ws, shared := s.(workload.WorkSource); shared {
			c.indepSources = false
			c.workSrcs[i] = ws
		} else if p, ok := s.(*workload.Process); ok {
			c.procSrcs[i] = p
		}
	}
	c.hetero = len(cfg.CoreTypes) > 0
	if c.hetero {
		c.ipcMult = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		leakMult, dynMult, freqMult := 1.0, 1.0, 1.0
		if v := cfg.Variation; v != nil {
			leakMult, dynMult, freqMult = v.LeakMult[i], v.DynMult[i], v.FreqMult[i]
		}
		if c.hetero {
			ct := cfg.CoreTypes[cfg.TypeOf[i]]
			c.ipcMult[i] = ct.IPCMult
			dynMult *= ct.CeffMult
			leakMult *= ct.LeakMult
		}
		c.freqMultC[i] = freqMult
		c.dynMultC[i] = dynMult
		c.leakMultC[i] = leakMult
	}
	// uniform means every per-core multiplier is exactly 1.0, so the
	// kernel may skip the multiplies outright: x*1.0 is the IEEE-754
	// identity, bit for bit, and skipping the loads drops three slab
	// streams from the hot loop. Detected by scanning rather than from
	// config flags so any future multiplier source stays covered.
	c.uniform = true
	for i := 0; i < n; i++ {
		if c.freqMultC[i] != 1 || c.dynMultC[i] != 1 || c.leakMultC[i] != 1 {
			c.uniform = false
			break
		}
	}
	for i := range c.phaseVer {
		c.phaseVer[i] = 1
	}
	for i := range c.levels {
		c.levels[i] = cfg.InitialLevel
		c.requested[i] = cfg.InitialLevel
	}
	if cfg.ThermalEnabled {
		var err error
		c.therm, err = thermal.New(cfg.Width, cfg.Height, cfg.Thermal)
		if err != nil {
			return nil, err
		}
	}
	for i := range c.temps {
		c.temps[i] = cfg.Thermal.AmbientK
	}
	return c, nil
}

// NumCores returns the core count.
func (c *Chip) NumCores() int { return len(c.levels) }

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Level returns core i's current effective VF level (after island
// resolution).
func (c *Chip) Level(core int) int { return c.levels[core] }

// SetLevel requests the given VF level for core i. The request takes
// effect at the next epoch boundary; when cores share a voltage-frequency
// island, the island runs at the highest level requested by any member.
// Out-of-range levels panic: emitting them is a controller bug that must
// not be silently absorbed. Requests for dead cores are ignored, and an
// installed ActuationFilter may rewrite the request (fault injection).
func (c *Chip) SetLevel(core, level int) {
	if level < 0 || level >= c.cfg.VF.Levels() {
		panic(fmt.Sprintf("manycore: level %d out of range [0,%d)", level, c.cfg.VF.Levels()))
	}
	if c.dead != nil && c.dead[core] {
		return
	}
	if c.actFilter != nil {
		level = c.actFilter.FilterLevel(core, level, c.levels[core])
		if level < 0 {
			level = 0
		} else if max := c.cfg.VF.Levels() - 1; level > max {
			level = max
		}
	}
	c.requested[core] = level
}

// SetTelemetryFilter installs (or, with nil, removes) the sensor-read
// fault hook applied to every Step's telemetry.
func (c *Chip) SetTelemetryFilter(f TelemetryFilter) { c.telFilter = f }

// SetActuationFilter installs (or, with nil, removes) the SetLevel fault
// hook.
func (c *Chip) SetActuationFilter(f ActuationFilter) { c.actFilter = f }

// FailCore powers core i off permanently: it retires nothing, burns
// nothing, reports all-zero telemetry with the Dead flag set, and ignores
// further level requests. Failing an already-dead core is a no-op.
func (c *Chip) FailCore(core int) {
	if c.dead == nil {
		c.dead = make([]bool, c.NumCores())
	}
	c.dead[core] = true
	c.requested[core] = 0
	c.levels[core] = 0
	c.transitioned[core] = false
}

// CoreDead reports whether core i has been powered off via FailCore.
func (c *Chip) CoreDead(core int) bool { return c.dead != nil && c.dead[core] }

// resolveIslands applies the pending requests: each island takes the max
// requested level of its cores; a core whose effective level changes is
// charged a transition stall for the coming epoch. Per-core DVFS (1×1
// islands, the common case) latches requests directly: the max over a
// single core is the request itself, since levels are non-negative.
//
//odrl:hotpath
func (c *Chip) resolveIslands() {
	if c.islandsTrivial {
		for i, r := range c.requested {
			if c.levels[i] != r {
				c.levels[i] = r
				c.transitioned[i] = true
			}
		}
		return
	}
	iw, ih := c.cfg.islandDims()
	for y0 := 0; y0 < c.cfg.Height; y0 += ih {
		for x0 := 0; x0 < c.cfg.Width; x0 += iw {
			max := 0
			for dy := 0; dy < ih; dy++ {
				for dx := 0; dx < iw; dx++ {
					if r := c.requested[(y0+dy)*c.cfg.Width+x0+dx]; r > max {
						max = r
					}
				}
			}
			for dy := 0; dy < ih; dy++ {
				for dx := 0; dx < iw; dx++ {
					i := (y0+dy)*c.cfg.Width + x0 + dx
					if c.levels[i] != max {
						c.levels[i] = max
						c.transitioned[i] = true
					}
				}
			}
		}
	}
}

// TimeS returns cumulative simulated seconds.
func (c *Chip) TimeS() float64 { return c.timeS }

// EnergyJ returns cumulative true chip energy in joules.
func (c *Chip) EnergyJ() float64 { return c.energyJ }

// Instructions returns cumulative instructions retired across all cores.
func (c *Chip) Instructions() float64 { return c.instrTotal }

// CoreInstructions returns cumulative instructions retired by one core.
func (c *Chip) CoreInstructions(core int) float64 { return c.instrByCore[core] }

// MaxTempK returns the hottest core temperature (ambient when the thermal
// loop is disabled).
func (c *Chip) MaxTempK() float64 {
	if c.therm == nil {
		return c.cfg.Thermal.AmbientK
	}
	return c.therm.MaxTemp()
}

// observed applies multiplicative sensor noise to a true value.
//
//odrl:hotpath
func (c *Chip) observed(v float64) float64 {
	if c.cfg.SensorNoise == 0 {
		return v
	}
	o := v * (1 + c.cfg.SensorNoise*c.noise.NormFloat64())
	if o < 0 {
		o = 0
	}
	return o
}

// stepWorkers returns the goroutine count for this chip's per-core epoch
// loop: 1 (sequential) unless the chip is large enough to amortise
// dispatch and every source is independent.
//
//odrl:hotpath
func (c *Chip) stepWorkers() int {
	if !c.indepSources || c.NumCores() < parallelMinCores || c.cfg.Workers == 1 {
		return 1
	}
	return par.Workers(c.cfg.Workers, c.NumCores())
}

// scaledPhase returns core i's current phase with scale and core-type CPI
// adjustment applied, through a per-core cache refreshed only when the
// source reported a phase change. Phase is a pure function of the
// source's discrete state between changes (the Source invariant), so the
// cached value is the identical bits a fresh call would produce.
//
//odrl:hotpath
func (c *Chip) scaledPhase(i int) workload.Phase {
	if c.phVer[i] != c.phaseVer[i] {
		var ph workload.Phase
		if p := c.procSrcs[i]; p != nil {
			ph = p.ScaledPhase()
		} else {
			ph = c.sources[i].Phase()
		}
		if c.hetero {
			ph.BaseCPI /= c.ipcMult[i]
		}
		c.phCache[i] = ph
		c.phVer[i] = c.phaseVer[i]
	}
	return c.phCache[i]
}

// phasePhysics derives the three phase×level quantities by running the
// exact instruction sequence the reference kernel runs per epoch: IPSAt,
// DynamicW×dynMult, MemBoundednessAt. Keeping the operation order
// identical is what makes a later memo hit bit-equal to recomputing —
// reassociating any of these products would silently fork every RL
// trajectory from the goldens.
//
//odrl:hotpath
func (c *Chip) phasePhysics(ph workload.Phase, i, lvl int) (ips, pDyn, memB float64) {
	if c.uniform {
		freq := c.freqsHz[lvl]
		ips = ph.IPSAt(freq)
		pDyn = c.cfg.Power.DynamicW(c.voltsV[lvl], freq, ph.Activity)
		memB = ph.MemBoundednessAt(freq)
		return ips, pDyn, memB
	}
	freq := c.freqsHz[lvl] * c.freqMultC[i]
	ips = ph.IPSAt(freq)
	pDyn = c.cfg.Power.DynamicW(c.voltsV[lvl], freq, ph.Activity) * c.dynMultC[i]
	memB = ph.MemBoundednessAt(freq)
	return ips, pDyn, memB
}

// stepRange advances cores [lo, hi) by dt, writing only index-owned
// state: telemetry slots, power/instruction scratch entries and each
// core's own workload source. Sensor variates were pre-drawn into
// noiseBuf (3 per core in core order) by StepInto, so the kernel never
// touches the RNG; dead cores' variates stay unused but allocated, which
// keeps the stream aligned with fault-free runs. The slab locals exist to
// hoist field loads and nil checks out of the per-core loop.
//
// With fuse set (sequential path only), the instruction and chip-power
// reductions run inside the loop and the true chip power is returned:
// the accumulation order — instrTotal ascending by core, UncoreW then
// cores ascending for power — is exactly the order the separate
// post-passes use, so fusing changes no rounding. The sharded path must
// not fuse (per-chunk partial sums would reassociate the adds) and
// passes fuse=false, ignoring the return value.
//
//odrl:hotpath
func (c *Chip) stepRange(lo, hi int, dt float64, tel *Telemetry, fuse bool) float64 {
	var (
		levels    = c.levels
		temps     = c.temps
		trans     = c.transitioned
		corePW    = c.corePowerW
		delta     = c.instrDelta
		cores     = tel.Cores
		freqs     = c.freqsHz
		volts     = c.voltsV
		fMult     = c.freqMultC
		leakMult  = c.leakMultC
		fixedLeak = c.fixedLeak
		memoVer   = c.memoVer
		memoIPS   = c.memoIPS
		memoDyn   = c.memoDyn
		memoMemB  = c.memoMemB
		phaseVer  = c.phaseVer
		workSrcs  = c.workSrcs
		procSrcs  = c.procSrcs
		sources   = c.sources
		dead      = c.dead
		nl        = c.nLevels
		penalty   = c.cfg.TransitionPenaltyS
		sn        = c.cfg.SensorNoise
		noiseBuf  = c.noiseBuf
		lut       = c.lut
	)
	noiseOn := sn != 0
	uniform := c.uniform
	instrByCore := c.instrByCore
	instrTotal, truePower := 0.0, 0.0
	if fuse {
		instrTotal = c.instrTotal
		truePower = c.cfg.Power.UncoreW
	}
	if lo < hi {
		// Anchor the per-core slabs' bounds checks once per range:
		// proving hi-1 indexes in range lets the compiler drop the
		// per-iteration checks inside the loop below.
		last := hi - 1
		_ = levels[last]
		_ = temps[last]
		_ = trans[last]
		_ = corePW[last]
		_ = delta[last]
		_ = cores[last]
		_ = fMult[last]
		_ = leakMult[last]
		_ = phaseVer[last]
		_ = workSrcs[last]
		_ = procSrcs[last]
		_ = sources[last]
		_ = instrByCore[last]
	}
	for i := lo; i < hi; i++ {
		if dead != nil && dead[i] {
			corePW[i] = 0
			delta[i] = 0
			cores[i] = CoreTelemetry{Dead: true}
			if fuse {
				instrByCore[i] += 0
				instrTotal += 0
				truePower += 0
			}
			continue
		}

		lvl := levels[i]
		temp := temps[i]

		stall := 0.0
		if trans[i] {
			stall = penalty
			if stall > dt {
				stall = dt
			}
			trans[i] = false
		}
		active := dt - stall

		var ips, pDyn, memB float64
		ws := workSrcs[i]
		if ws == nil {
			m := i*nl + lvl
			if memoVer[m] == phaseVer[i] {
				ips, pDyn, memB = memoIPS[m], memoDyn[m], memoMemB[m]
			} else {
				ips, pDyn, memB = c.phasePhysics(c.scaledPhase(i), i, lvl)
				memoIPS[m], memoDyn[m], memoMemB[m] = ips, pDyn, memB
				memoVer[m] = phaseVer[i]
			}
		} else {
			// Shared-state lane: its phase may have flipped when
			// another lane released a barrier or dispatched a job, with
			// no change signal from this lane's own Advance — never
			// memoise, sample fresh.
			ph := sources[i].Phase()
			if c.hetero {
				ph.BaseCPI /= c.ipcMult[i]
			}
			ips, pDyn, memB = c.phasePhysics(ph, i, lvl)
		}
		var freq float64
		if uniform {
			freq = freqs[lvl]
		} else {
			freq = freqs[lvl] * fMult[i]
		}
		instr := ips * active

		// Power: full during the active window, leakage-only during the
		// stall (clocks gated while the PLL relocks). Leakage is the
		// per-level Pow prefix times the temperature correction — or a
		// single indexed load when the thermal loop is off and
		// temperature is pinned at ambient.
		var pLeak float64
		if fixedLeak != nil {
			pLeak = fixedLeak[lvl]
		} else {
			pLeak = lut.LeakageWAt(lvl, temp)
		}
		if !uniform {
			pLeak *= leakMult[i]
		}
		pActive := pDyn + pLeak
		avgP := (pActive*active + pLeak*stall) / dt
		corePW[i] = avgP

		// Work-coupled sources (barrier apps) progress by retired
		// instructions, so a throttled core genuinely takes longer to
		// reach its barrier.
		var changed bool
		if ws != nil {
			changed = ws.AdvanceWork(dt, instr) > 0
		} else {
			if p := procSrcs[i]; p != nil {
				changed = p.Advance(dt) > 0
			} else {
				changed = sources[i].Advance(dt) > 0
			}
			if changed {
				phaseVer[i]++
			}
		}

		delta[i] = instr
		if fuse {
			instrByCore[i] += instr
			instrTotal += instr
			truePower += avgP
		}

		obsIPS, obsP, obsMemB := instr/dt, avgP, memB
		if noiseOn {
			z := noiseBuf[3*i : 3*i+3 : 3*i+3]
			if obsIPS = obsIPS * (1 + sn*z[0]); obsIPS < 0 {
				obsIPS = 0
			}
			if obsP = obsP * (1 + sn*z[1]); obsP < 0 {
				obsP = 0
			}
			if obsMemB = obsMemB * (1 + sn*z[2]); obsMemB < 0 {
				obsMemB = 0
			}
		}

		cores[i] = CoreTelemetry{
			Level:          lvl,
			FreqHz:         freq,
			VoltageV:       volts[lvl],
			IPS:            obsIPS,
			PowerW:         obsP,
			TempK:          temp,
			MemBoundedness: clamp01(obsMemB),
			Instructions:   instr,
			PhaseChanged:   changed,
		}
	}
	if fuse {
		c.instrTotal = instrTotal
	}
	return truePower
}

// Step advances the chip by dt seconds and returns the epoch telemetry.
// Phase parameters are sampled at the start of the epoch, matching the
// granularity at which real performance counters are read.
//
// On large chips with independent sources the per-core loop is sharded
// across Config.Workers goroutines. The result is bit-identical to
// sequential stepping: sensor-noise variates are pre-drawn from the chip
// stream in core order before dispatch, every worker writes only
// index-addressed slots, and the instruction totals are reduced in index
// order afterwards — the same floating-point operations in the same order.
//
// Step allocates fresh telemetry each call, so the result stays valid
// indefinitely; steady-state loops should use StepInto to amortise the
// allocation away.
func (c *Chip) Step(dt float64) Telemetry {
	var tel Telemetry
	c.StepInto(dt, &tel)
	return tel
}

// StepInto advances the chip exactly like Step but writes the telemetry
// into *tel, reusing tel.Cores when its capacity allows. Every core slot
// and chip-level field is overwritten in full, so passing the same
// Telemetry each epoch steps the chip without allocating — at 64 cores the
// fresh slice is ~5 KB/epoch, which otherwise dominates the harness's GC
// load. The caller must not retain tel.Cores across calls.
//
// This is the struct-of-arrays kernel: all sensor-noise variates for the
// epoch are pre-drawn into one buffer (3 per core in core order, the
// identical stream the inline draws consumed), per-core physics reads
// level-indexed lookup tables and the phase memo instead of re-deriving
// transcendentals, and parallel dispatch goes to the chip's persistent
// shard workers. Results are bit-identical to ReferenceStepInto for every
// worker count — the regression tests compare the two field by field.
//
//odrl:hotpath
func (c *Chip) StepInto(dt float64, tel *Telemetry) {
	if dt <= 0 {
		panic(fmt.Sprintf("manycore: non-positive epoch %g", dt))
	}
	if c.memoPoisoned {
		c.resetMemo()
	}
	c.resolveIslands()
	n := c.NumCores()
	cores := tel.Cores
	if cap(cores) < n {
		cores = make([]CoreTelemetry, n)
	}
	*tel = Telemetry{EpochS: dt, Cores: cores[:n]}

	noiseOn := c.cfg.SensorNoise != 0
	if noiseOn {
		if c.noiseBuf == nil {
			c.noiseBuf = make([]float64, 3*n)
		}
		for i := range c.noiseBuf {
			c.noiseBuf[i] = c.noise.NormFloat64()
		}
	}

	var truePower float64
	if workers := c.stepWorkers(); workers > 1 {
		if c.pool == nil {
			c.pool = par.NewPool(workers)
			// One closure for the life of the chip: per-epoch inputs
			// travel through stepDt/stepTel so the hot loop allocates
			// nothing, not even a closure header.
			c.stepFn = func(lo, hi int) {
				c.stepRange(lo, hi, c.stepDt, c.stepTel, false)
			}
		}
		c.stepDt, c.stepTel = dt, tel
		c.pool.ForEachChunk(n, c.stepFn)
		c.stepTel = nil
		// Index-order reductions: per-core instruction totals and the
		// chip power sum accumulate in ascending core order, so the
		// floating-point rounding sequence is independent of the worker
		// count. ChipW's summation order (uncore floor first, then cores
		// ascending) is replicated inline to fuse the two passes. The
		// sequential path below fuses this same reduction, in the same
		// order, into the kernel loop itself.
		instrTotal := c.instrTotal
		truePower = c.cfg.Power.UncoreW
		for i := 0; i < n; i++ {
			d := c.instrDelta[i]
			c.instrByCore[i] += d
			instrTotal += d
			truePower += c.corePowerW[i]
		}
		c.instrTotal = instrTotal
	} else {
		truePower = c.stepRange(0, n, dt, tel, true)
	}

	c.energyJ += truePower * dt
	c.timeS += dt

	if c.therm != nil {
		c.therm.Step(c.corePowerW, dt)
		// Adopt the model's slab as the chip's temperature slab: same
		// values the old per-epoch copy produced, without the copy. The
		// view is re-fetched every epoch because Euler sub-steps swap the
		// model's working buffers.
		c.temps = c.therm.TempsView()
	}

	tel.TimeS = c.timeS
	tel.TruePowerW = truePower
	tel.ChipPowerW = c.observed(truePower)
	// The sensor-read fault hook runs last, on the sequential path, so the
	// faults it injects are independent of the worker count above.
	if c.telFilter != nil {
		c.telFilter.FilterTelemetry(tel)
	}
}

// resetMemo invalidates every phase-memo slot; called when the reference
// kernel advanced sources without maintaining phase versions.
func (c *Chip) resetMemo() {
	for i := range c.memoVer {
		c.memoVer[i] = 0
	}
	for i := range c.phVer {
		c.phVer[i] = 0
	}
	for i := range c.phaseVer {
		c.phaseVer[i] = 1
	}
	c.memoPoisoned = false
}

// Close releases the chip's persistent shard workers. It is safe to call
// on any chip (including ones that never stepped in parallel) and more
// than once; a closed chip keeps working, stepping sequentially. Chips
// that are simply dropped are cleaned up by a pool finalizer, but
// long-lived processes that churn through many chips should Close them
// promptly.
func (c *Chip) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
