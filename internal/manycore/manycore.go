// Package manycore is the epoch-driven many-core performance simulator that
// replaces the paper's architectural simulator.
//
// Each core runs one workload.Source and sits at one VF operating point.
// Per control epoch (typically 1 ms) the simulator computes instructions
// retired from the phase's CPI(f) model, power from the power model (with
// the thermal model closing the leakage–temperature loop), and produces the
// telemetry a DVFS controller would read from performance counters and
// power sensors — optionally corrupted with multiplicative Gaussian sensor
// noise. DVFS transitions charge a PLL-relock stall during which the core
// retires nothing and burns leakage only.
//
// The simulator is intentionally analytic rather than cycle-accurate: every
// controller in this repository observes only per-epoch aggregates, so an
// analytic model that reproduces the aggregate surface (sub-linear
// frequency scaling, activity-dependent power, thermal inertia) exercises
// the identical control problem at a fraction of the cost.
package manycore

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/thermal"
	"repro/internal/variation"
	"repro/internal/vf"
	"repro/internal/workload"
)

// parallelMinCores is the core count below which Step always runs
// sequentially: the per-core epoch body costs a few hundred nanoseconds,
// so goroutine dispatch only pays for itself on large chips.
const parallelMinCores = 128

// Config describes one chip.
type Config struct {
	// Width and Height give the core grid; core count is Width*Height.
	Width, Height int
	// VF is the table of operating points shared by all cores.
	VF *vf.Table
	// Power holds the technology power constants.
	Power power.Params
	// Thermal holds the RC network constants; only used when ThermalEnabled.
	Thermal thermal.Params
	// ThermalEnabled closes the leakage–temperature loop. When false, all
	// cores are held at Thermal.AmbientK.
	ThermalEnabled bool
	// SensorNoise is the relative standard deviation of multiplicative
	// Gaussian noise applied to IPS/power/mem-boundedness telemetry.
	// Zero disables noise. True (noise-free) power is still reported
	// separately for energy accounting.
	SensorNoise float64
	// TransitionPenaltyS is the stall charged to a core on a VF change
	// (PLL relock + voltage ramp), typically ~10 µs.
	TransitionPenaltyS float64
	// InitialLevel is the VF level all cores start at.
	InitialLevel int
	// Variation optionally applies per-core process-variation multipliers
	// to leakage and dynamic power; its grid must match Width×Height.
	// Controllers are never told about it — they only see its effect in
	// the power telemetry, exactly as on real silicon.
	Variation *variation.Map
	// IslandW and IslandH group cores into rectangular voltage-frequency
	// islands (VFIs) sharing one operating point. Zero means 1 (per-core
	// DVFS). Each island runs at the highest level requested by any of its
	// cores — the standard "max request wins" policy of shared voltage
	// domains. Island dimensions must divide the grid dimensions.
	IslandW, IslandH int
	// CoreTypes and TypeOf describe a heterogeneous (big.LITTLE-style)
	// chip: TypeOf[i] indexes into CoreTypes for core i. Empty CoreTypes
	// means a homogeneous chip. Controllers are not told core types — as
	// with variation, telemetry is their only window.
	CoreTypes []CoreType
	TypeOf    []int
	// Workers bounds the goroutines sharding Step's per-core loop:
	// 0 uses one worker per CPU, 1 forces sequential stepping. Parallel
	// stepping is bit-identical to sequential (sensor-noise draws are
	// pre-split in core order before dispatch) and only engages for chips
	// of at least parallelMinCores whose workload sources are independent
	// (no shared-state WorkSource lanes).
	Workers int
}

// CoreType is one microarchitecture in a heterogeneous chip. Multipliers
// are relative to the nominal core the power/CPI models describe.
type CoreType struct {
	Name string
	// IPCMult scales pipeline throughput: effective base CPI is
	// BaseCPI / IPCMult. A big out-of-order core has IPCMult > 1.
	IPCMult float64
	// CeffMult scales switched capacitance (dynamic power).
	CeffMult float64
	// LeakMult scales leakage current (bigger cores leak more).
	LeakMult float64
}

// Validate reports the first invalid field.
func (ct CoreType) Validate() error {
	switch {
	case ct.Name == "":
		return fmt.Errorf("manycore: core type with empty name")
	case ct.IPCMult <= 0:
		return fmt.Errorf("manycore: core type %q has non-positive IPCMult %g", ct.Name, ct.IPCMult)
	case ct.CeffMult <= 0:
		return fmt.Errorf("manycore: core type %q has non-positive CeffMult %g", ct.Name, ct.CeffMult)
	case ct.LeakMult <= 0:
		return fmt.Errorf("manycore: core type %q has non-positive LeakMult %g", ct.Name, ct.LeakMult)
	}
	return nil
}

// BigLittleTypes returns the standard heterogeneous pair used by the F17
// experiment: a wide out-of-order core and an efficient in-order one.
func BigLittleTypes() []CoreType {
	return []CoreType{
		{Name: "big", IPCMult: 1.4, CeffMult: 1.7, LeakMult: 1.6},
		{Name: "little", IPCMult: 0.7, CeffMult: 0.45, LeakMult: 0.4},
	}
}

// DefaultConfig returns a 64-core (8×8) chip with the default technology
// models, thermal loop on, 2% sensor noise and a 10 µs transition stall.
func DefaultConfig() Config {
	return Config{
		Width:              8,
		Height:             8,
		VF:                 vf.Default(),
		Power:              power.Default(),
		Thermal:            thermal.Default(),
		ThermalEnabled:     true,
		SensorNoise:        0.02,
		TransitionPenaltyS: 10e-6,
		InitialLevel:       0,
	}
}

// Validate reports the first invalid configuration field.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("manycore: invalid grid %dx%d", c.Width, c.Height)
	case c.VF == nil:
		return fmt.Errorf("manycore: nil VF table")
	case c.SensorNoise < 0:
		return fmt.Errorf("manycore: negative sensor noise %g", c.SensorNoise)
	case c.TransitionPenaltyS < 0:
		return fmt.Errorf("manycore: negative transition penalty %g", c.TransitionPenaltyS)
	case c.InitialLevel < 0 || c.InitialLevel >= c.VF.Levels():
		return fmt.Errorf("manycore: initial level %d out of range", c.InitialLevel)
	case c.Workers < 0:
		return fmt.Errorf("manycore: negative worker count %d", c.Workers)
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.ThermalEnabled {
		if err := c.Thermal.Validate(); err != nil {
			return err
		}
	}
	if c.Variation != nil {
		if err := c.Variation.Validate(); err != nil {
			return err
		}
		if c.Variation.W != c.Width || c.Variation.H != c.Height {
			return fmt.Errorf("manycore: variation map is %dx%d, chip is %dx%d",
				c.Variation.W, c.Variation.H, c.Width, c.Height)
		}
	}
	iw, ih := c.islandDims()
	if iw < 1 || ih < 1 {
		return fmt.Errorf("manycore: invalid island dims %dx%d", iw, ih)
	}
	if c.Width%iw != 0 || c.Height%ih != 0 {
		return fmt.Errorf("manycore: island %dx%d does not tile grid %dx%d",
			iw, ih, c.Width, c.Height)
	}
	if len(c.CoreTypes) > 0 {
		for _, ct := range c.CoreTypes {
			if err := ct.Validate(); err != nil {
				return err
			}
		}
		if len(c.TypeOf) != c.Width*c.Height {
			return fmt.Errorf("manycore: TypeOf has %d entries for %d cores",
				len(c.TypeOf), c.Width*c.Height)
		}
		for i, ty := range c.TypeOf {
			if ty < 0 || ty >= len(c.CoreTypes) {
				return fmt.Errorf("manycore: core %d has type %d of %d", i, ty, len(c.CoreTypes))
			}
		}
	} else if len(c.TypeOf) != 0 {
		return fmt.Errorf("manycore: TypeOf set without CoreTypes")
	}
	return nil
}

// islandDims returns the island tile size with zeros defaulted to 1.
func (c Config) islandDims() (int, int) {
	iw, ih := c.IslandW, c.IslandH
	if iw == 0 {
		iw = 1
	}
	if ih == 0 {
		ih = 1
	}
	return iw, ih
}

// CoreTelemetry is what the control plane observes about one core after an
// epoch. IPS, PowerW and MemBoundedness carry sensor noise when configured;
// Instructions is the true retired count (used only for metrics, never by
// controllers).
type CoreTelemetry struct {
	Level          int
	FreqHz         float64
	VoltageV       float64
	IPS            float64
	PowerW         float64
	TempK          float64
	MemBoundedness float64
	Instructions   float64
	PhaseChanged   bool
	// Dead marks a core that has failed permanently (see Chip.FailCore).
	// It is the machine-check signal a real chip raises on core failure:
	// controllers may use it to reclaim the core's budget share, and a dead
	// core's other fields are all zero.
	Dead bool
}

// TelemetryFilter rewrites the telemetry controllers observe, at the
// sensor-read boundary: Chip.Step invokes it once per epoch, after the
// per-core loop, on the telemetry it is about to return. Implementations
// must only modify observed fields (per-core readings and ChipPowerW),
// never TruePowerW or Instructions, and must be cheap — they run on the
// sequential path of every epoch. Package fault provides the standard
// implementation.
type TelemetryFilter interface {
	FilterTelemetry(tel *Telemetry)
}

// ActuationFilter intercepts VF level requests at the SetLevel boundary:
// it receives the validated requested level and the core's current
// effective level, and returns the level actually latched. Returned levels
// are clamped to the table range. Package fault provides the standard
// implementation (dropped or clamped actuations).
type ActuationFilter interface {
	FilterLevel(core, requested, current int) int
}

// Telemetry is the chip-level epoch report.
type Telemetry struct {
	// TimeS is cumulative simulated time at the end of the epoch.
	TimeS float64
	// EpochS is the epoch length.
	EpochS float64
	// ChipPowerW is the observed (noisy) total chip power.
	ChipPowerW float64
	// TruePowerW is the exact total chip power, for energy accounting.
	TruePowerW float64
	// Cores holds per-core observations.
	Cores []CoreTelemetry
}

// Chip is one simulated many-core processor.
type Chip struct {
	cfg          Config
	sources      []workload.Source
	requested    []int // per-core level requests from the controller
	levels       []int // effective levels after island resolution
	transitioned []bool
	therm        *thermal.Model
	noise        *rng.RNG

	timeS       float64
	energyJ     float64
	instrTotal  float64
	instrByCore []float64

	// fault-injection hooks; nil (the default) costs one branch per epoch
	// (telFilter) or per SetLevel (actFilter). dead is allocated lazily by
	// the first FailCore.
	telFilter TelemetryFilter
	actFilter ActuationFilter
	dead      []bool

	// indepSources records that no source shares state with another (no
	// WorkSource lanes), which is what licenses parallel stepping.
	indepSources bool

	// scratch buffers reused across epochs
	corePowerW []float64
	temps      []float64
	instrDelta []float64
	noiseBuf   []float64 // pre-drawn sensor noise, parallel path only
}

// New builds a chip running the given per-core workload sources. The number
// of sources must equal Width*Height. The RNG seeds the sensor-noise stream.
func New(cfg Config, sources []workload.Source, r *rng.RNG) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Width * cfg.Height
	if len(sources) != n {
		return nil, fmt.Errorf("manycore: %d sources for %d cores", len(sources), n)
	}
	for i, s := range sources {
		if s == nil {
			return nil, fmt.Errorf("manycore: nil source for core %d", i)
		}
	}
	if r == nil {
		return nil, fmt.Errorf("manycore: nil rng")
	}
	c := &Chip{
		cfg:          cfg,
		sources:      sources,
		requested:    make([]int, n),
		levels:       make([]int, n),
		transitioned: make([]bool, n),
		noise:        r,
		instrByCore:  make([]float64, n),
		corePowerW:   make([]float64, n),
		temps:        make([]float64, n),
		instrDelta:   make([]float64, n),
		indepSources: true,
	}
	for _, s := range sources {
		// WorkSource lanes (barrier apps, job systems) share application
		// state across cores, so advancing them concurrently would race
		// and reorder barrier releases; such chips always step
		// sequentially. This assertion is the only shared-state signal, so
		// any wrapper delegating to a WorkSource must itself implement
		// WorkSource (see the invariant on workload.Source) or it would
		// wrongly pass this check and race under parallel stepping.
		if _, shared := s.(workload.WorkSource); shared {
			c.indepSources = false
			break
		}
	}
	for i := range c.levels {
		c.levels[i] = cfg.InitialLevel
		c.requested[i] = cfg.InitialLevel
	}
	if cfg.ThermalEnabled {
		var err error
		c.therm, err = thermal.New(cfg.Width, cfg.Height, cfg.Thermal)
		if err != nil {
			return nil, err
		}
	}
	for i := range c.temps {
		c.temps[i] = cfg.Thermal.AmbientK
	}
	return c, nil
}

// NumCores returns the core count.
func (c *Chip) NumCores() int { return len(c.levels) }

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Level returns core i's current effective VF level (after island
// resolution).
func (c *Chip) Level(core int) int { return c.levels[core] }

// SetLevel requests the given VF level for core i. The request takes
// effect at the next epoch boundary; when cores share a voltage-frequency
// island, the island runs at the highest level requested by any member.
// Out-of-range levels panic: emitting them is a controller bug that must
// not be silently absorbed. Requests for dead cores are ignored, and an
// installed ActuationFilter may rewrite the request (fault injection).
func (c *Chip) SetLevel(core, level int) {
	if level < 0 || level >= c.cfg.VF.Levels() {
		panic(fmt.Sprintf("manycore: level %d out of range [0,%d)", level, c.cfg.VF.Levels()))
	}
	if c.dead != nil && c.dead[core] {
		return
	}
	if c.actFilter != nil {
		level = c.actFilter.FilterLevel(core, level, c.levels[core])
		if level < 0 {
			level = 0
		} else if max := c.cfg.VF.Levels() - 1; level > max {
			level = max
		}
	}
	c.requested[core] = level
}

// SetTelemetryFilter installs (or, with nil, removes) the sensor-read
// fault hook applied to every Step's telemetry.
func (c *Chip) SetTelemetryFilter(f TelemetryFilter) { c.telFilter = f }

// SetActuationFilter installs (or, with nil, removes) the SetLevel fault
// hook.
func (c *Chip) SetActuationFilter(f ActuationFilter) { c.actFilter = f }

// FailCore powers core i off permanently: it retires nothing, burns
// nothing, reports all-zero telemetry with the Dead flag set, and ignores
// further level requests. Failing an already-dead core is a no-op.
func (c *Chip) FailCore(core int) {
	if c.dead == nil {
		c.dead = make([]bool, c.NumCores())
	}
	c.dead[core] = true
	c.requested[core] = 0
	c.levels[core] = 0
	c.transitioned[core] = false
}

// CoreDead reports whether core i has been powered off via FailCore.
func (c *Chip) CoreDead(core int) bool { return c.dead != nil && c.dead[core] }

// resolveIslands applies the pending requests: each island takes the max
// requested level of its cores; a core whose effective level changes is
// charged a transition stall for the coming epoch.
func (c *Chip) resolveIslands() {
	iw, ih := c.cfg.islandDims()
	for y0 := 0; y0 < c.cfg.Height; y0 += ih {
		for x0 := 0; x0 < c.cfg.Width; x0 += iw {
			max := 0
			for dy := 0; dy < ih; dy++ {
				for dx := 0; dx < iw; dx++ {
					if r := c.requested[(y0+dy)*c.cfg.Width+x0+dx]; r > max {
						max = r
					}
				}
			}
			for dy := 0; dy < ih; dy++ {
				for dx := 0; dx < iw; dx++ {
					i := (y0+dy)*c.cfg.Width + x0 + dx
					if c.levels[i] != max {
						c.levels[i] = max
						c.transitioned[i] = true
					}
				}
			}
		}
	}
}

// TimeS returns cumulative simulated seconds.
func (c *Chip) TimeS() float64 { return c.timeS }

// EnergyJ returns cumulative true chip energy in joules.
func (c *Chip) EnergyJ() float64 { return c.energyJ }

// Instructions returns cumulative instructions retired across all cores.
func (c *Chip) Instructions() float64 { return c.instrTotal }

// CoreInstructions returns cumulative instructions retired by one core.
func (c *Chip) CoreInstructions(core int) float64 { return c.instrByCore[core] }

// MaxTempK returns the hottest core temperature (ambient when the thermal
// loop is disabled).
func (c *Chip) MaxTempK() float64 {
	if c.therm == nil {
		return c.cfg.Thermal.AmbientK
	}
	return c.therm.MaxTemp()
}

// observed applies multiplicative sensor noise to a true value.
func (c *Chip) observed(v float64) float64 {
	if c.cfg.SensorNoise == 0 {
		return v
	}
	o := v * (1 + c.cfg.SensorNoise*c.noise.NormFloat64())
	if o < 0 {
		o = 0
	}
	return o
}

// stepWorkers returns the goroutine count for this chip's per-core epoch
// loop: 1 (sequential) unless the chip is large enough to amortise
// dispatch and every source is independent.
func (c *Chip) stepWorkers() int {
	if !c.indepSources || c.NumCores() < parallelMinCores || c.cfg.Workers == 1 {
		return 1
	}
	return par.Workers(c.cfg.Workers, c.NumCores())
}

// stepCore advances core i by dt and writes only index-i state: its
// telemetry slot, power/instruction scratch entries and its own workload
// source. noise, when non-nil, holds the core's three pre-drawn
// standard-normal sensor variates in draw order (IPS, power,
// memory-boundedness); nil draws them inline from the shared chip stream,
// which is only legal on the sequential path.
func (c *Chip) stepCore(i int, dt float64, tel *Telemetry, noise []float64) {
	observe := func(k int, v float64) float64 {
		if c.cfg.SensorNoise == 0 {
			return v
		}
		var z float64
		if noise != nil {
			z = noise[k]
		} else {
			z = c.noise.NormFloat64()
		}
		o := v * (1 + c.cfg.SensorNoise*z)
		if o < 0 {
			o = 0
		}
		return o
	}

	if c.dead != nil && c.dead[i] {
		// Powered-off core: retires nothing, burns nothing, workload
		// frozen. The three observe calls still run (on zero, which they
		// return unchanged) so the sensor-noise stream advances exactly as
		// for a live core — dead cores must not shift the draws of their
		// neighbours, or sequential and parallel stepping would diverge.
		observe(0, 0)
		observe(1, 0)
		observe(2, 0)
		c.corePowerW[i] = 0
		c.instrDelta[i] = 0
		tel.Cores[i] = CoreTelemetry{Dead: true}
		return
	}

	ph := c.sources[i].Phase()
	op := c.cfg.VF.Point(c.levels[i])
	temp := c.temps[i]

	stall := 0.0
	if c.transitioned[i] {
		stall = c.cfg.TransitionPenaltyS
		if stall > dt {
			stall = dt
		}
		c.transitioned[i] = false
	}
	active := dt - stall

	// Process variation scales this core's achievable frequency
	// (critical-path spread) and its two power components.
	leakMult, dynMult, freqMult := 1.0, 1.0, 1.0
	if v := c.cfg.Variation; v != nil {
		leakMult, dynMult, freqMult = v.LeakMult[i], v.DynMult[i], v.FreqMult[i]
	}
	// Heterogeneous chips compose core-type multipliers on top:
	// a big core retires more per cycle and burns more per switch.
	if len(c.cfg.CoreTypes) > 0 {
		ct := c.cfg.CoreTypes[c.cfg.TypeOf[i]]
		ph.BaseCPI /= ct.IPCMult
		dynMult *= ct.CeffMult
		leakMult *= ct.LeakMult
	}
	freq := op.FreqHz * freqMult

	ips := ph.IPSAt(freq)
	instr := ips * active

	// Power: full during the active window, leakage-only during the
	// stall (clocks gated while the PLL relocks).
	pDyn := c.cfg.Power.DynamicW(op.VoltageV, freq, ph.Activity) * dynMult
	pLeak := c.cfg.Power.LeakageW(op.VoltageV, temp) * leakMult
	pActive := pDyn + pLeak
	pStall := pLeak
	avgP := (pActive*active + pStall*stall) / dt
	c.corePowerW[i] = avgP

	// Work-coupled sources (barrier apps) progress by retired
	// instructions, so a throttled core genuinely takes longer to
	// reach its barrier.
	var changed bool
	if ws, ok := c.sources[i].(workload.WorkSource); ok {
		changed = ws.AdvanceWork(dt, instr) > 0
	} else {
		changed = c.sources[i].Advance(dt) > 0
	}

	c.instrDelta[i] = instr

	tel.Cores[i] = CoreTelemetry{
		Level:          c.levels[i],
		FreqHz:         freq,
		VoltageV:       op.VoltageV,
		IPS:            observe(0, instr/dt),
		PowerW:         observe(1, avgP),
		TempK:          temp,
		MemBoundedness: clamp01(observe(2, ph.MemBoundednessAt(freq))),
		Instructions:   instr,
		PhaseChanged:   changed,
	}
}

// Step advances the chip by dt seconds and returns the epoch telemetry.
// Phase parameters are sampled at the start of the epoch, matching the
// granularity at which real performance counters are read.
//
// On large chips with independent sources the per-core loop is sharded
// across Config.Workers goroutines. The result is bit-identical to
// sequential stepping: sensor-noise variates are pre-drawn from the chip
// stream in core order before dispatch, every worker writes only
// index-addressed slots, and the instruction totals are reduced in index
// order afterwards — the same floating-point operations in the same order.
//
// Step allocates fresh telemetry each call, so the result stays valid
// indefinitely; steady-state loops should use StepInto to amortise the
// allocation away.
func (c *Chip) Step(dt float64) Telemetry {
	var tel Telemetry
	c.StepInto(dt, &tel)
	return tel
}

// StepInto advances the chip exactly like Step but writes the telemetry
// into *tel, reusing tel.Cores when its capacity allows. Every core slot
// and chip-level field is overwritten in full, so passing the same
// Telemetry each epoch steps the chip without allocating — at 64 cores the
// fresh slice is ~5 KB/epoch, which otherwise dominates the harness's GC
// load. The caller must not retain tel.Cores across calls.
func (c *Chip) StepInto(dt float64, tel *Telemetry) {
	if dt <= 0 {
		panic(fmt.Sprintf("manycore: non-positive epoch %g", dt))
	}
	c.resolveIslands()
	n := c.NumCores()
	cores := tel.Cores
	if cap(cores) < n {
		cores = make([]CoreTelemetry, n)
	}
	*tel = Telemetry{EpochS: dt, Cores: cores[:n]}

	if workers := c.stepWorkers(); workers > 1 {
		if c.cfg.SensorNoise != 0 {
			if c.noiseBuf == nil {
				c.noiseBuf = make([]float64, 3*n)
			}
			for i := range c.noiseBuf {
				c.noiseBuf[i] = c.noise.NormFloat64()
			}
			par.ForEachChunk(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c.stepCore(i, dt, tel, c.noiseBuf[3*i:3*i+3])
				}
			})
		} else {
			par.ForEachChunk(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c.stepCore(i, dt, tel, nil)
				}
			})
		}
	} else {
		for i := 0; i < n; i++ {
			c.stepCore(i, dt, tel, nil)
		}
	}

	for i := 0; i < n; i++ {
		c.instrByCore[i] += c.instrDelta[i]
		c.instrTotal += c.instrDelta[i]
	}

	truePower := c.cfg.Power.ChipW(c.corePowerW)
	c.energyJ += truePower * dt
	c.timeS += dt

	if c.therm != nil {
		c.therm.Step(c.corePowerW, dt)
		c.therm.Temps(c.temps)
	}

	tel.TimeS = c.timeS
	tel.TruePowerW = truePower
	tel.ChipPowerW = c.observed(truePower)
	// The sensor-read fault hook runs last, on the sequential path, so the
	// faults it injects are independent of the worker count above.
	if c.telFilter != nil {
		c.telFilter.FilterTelemetry(tel)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
