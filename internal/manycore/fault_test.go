package manycore

import (
	"testing"
)

// telFilterFunc adapts a func to TelemetryFilter.
type telFilterFunc func(*Telemetry)

func (f telFilterFunc) FilterTelemetry(tel *Telemetry) { f(tel) }

// actFilterFunc adapts a func to ActuationFilter.
type actFilterFunc func(core, requested, current int) int

func (f actFilterFunc) FilterLevel(core, requested, current int) int {
	return f(core, requested, current)
}

func TestFailCoreGoesDark(t *testing.T) {
	chip := newTestChip(t, testConfig(2, 2), computeSource)
	for i := 0; i < 4; i++ {
		chip.SetLevel(i, 2)
	}
	chip.Step(1e-3)

	chip.FailCore(1)
	if !chip.CoreDead(1) {
		t.Fatal("CoreDead(1) false after FailCore")
	}
	if chip.CoreDead(0) {
		t.Fatal("CoreDead(0) true for a live core")
	}
	if chip.Level(1) != 0 {
		t.Fatalf("dead core level = %d, want 0", chip.Level(1))
	}

	before := chip.Instructions()
	tel := chip.Step(1e-3)
	ct := tel.Cores[1]
	if !ct.Dead {
		t.Fatal("telemetry does not report core 1 dead")
	}
	if ct.PowerW != 0 || ct.IPS != 0 || ct.Instructions != 0 {
		t.Fatalf("dead core still active: %+v", ct)
	}
	if live := tel.Cores[0]; live.Dead || live.Instructions == 0 {
		t.Fatalf("live core corrupted by neighbour's death: %+v", live)
	}
	if chip.Instructions() <= before {
		t.Fatal("chip-wide instruction counter stopped")
	}

	// Actuation on a dead core is silently ignored.
	chip.SetLevel(1, 3)
	if chip.Level(1) != 0 {
		t.Fatalf("dead core accepted SetLevel: level %d", chip.Level(1))
	}
	// FailCore is idempotent.
	chip.FailCore(1)
	if !chip.CoreDead(1) {
		t.Fatal("second FailCore cleared the dead flag")
	}
}

func TestDeadCoreNoisePadKeepsDeterminism(t *testing.T) {
	// The dead-core path must consume the same number of noise draws as a
	// live core, so sequential and sharded stepping stay bit-identical
	// with a mid-run death.
	run := func(workers int) float64 {
		cfg := testConfig(4, 4)
		cfg.SensorNoise = 0.05
		cfg.Workers = workers
		chip := newTestChip(t, cfg, computeSource)
		sum := 0.0
		for e := 0; e < 20; e++ {
			if e == 5 {
				chip.FailCore(3)
				chip.FailCore(11)
			}
			tel := chip.Step(1e-3)
			for _, ct := range tel.Cores {
				sum += ct.PowerW + ct.IPS
			}
			sum += tel.ChipPowerW
		}
		return sum
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("dead-core run diverged across worker counts: %v vs %v", a, b)
	}
}

func TestTelemetryFilterApplied(t *testing.T) {
	chip := newTestChip(t, testConfig(2, 2), computeSource)
	chip.SetTelemetryFilter(telFilterFunc(func(tel *Telemetry) {
		for i := range tel.Cores {
			tel.Cores[i].IPS = -1
		}
		tel.ChipPowerW = 123
	}))
	tel := chip.Step(1e-3)
	if tel.ChipPowerW != 123 {
		t.Fatalf("chip meter not filtered: %g", tel.ChipPowerW)
	}
	for i, ct := range tel.Cores {
		if ct.IPS != -1 {
			t.Fatalf("core %d telemetry not filtered: IPS %g", i, ct.IPS)
		}
	}
	if tel.TruePowerW == 123 {
		t.Fatal("filter reached the true (physics) power")
	}
}

func TestActuationFilterAppliedAndClamped(t *testing.T) {
	chip := newTestChip(t, testConfig(2, 2), computeSource)
	chip.SetActuationFilter(actFilterFunc(func(core, requested, current int) int {
		if core == 0 {
			return current // drop
		}
		return 999 // out of range: chip must clamp, not panic
	}))
	chip.SetLevel(0, 3)
	chip.SetLevel(1, 2)
	chip.Step(1e-3) // requests latch at the epoch boundary
	if chip.Level(0) != 0 {
		t.Fatalf("dropped actuation still landed: level %d", chip.Level(0))
	}
	if got, top := chip.Level(1), chip.Config().VF.Levels()-1; got != top {
		t.Fatalf("filter result not clamped to top level: got %d want %d", got, top)
	}
}
