package manycore

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/variation"
	"repro/internal/workload"
)

// buildHeteroChip builds a chip exercising every physics feature the
// kernels touch: sensor noise, process variation, big.LITTLE core types,
// 2×2 voltage islands, and (optionally) the thermal loop.
func buildHeteroChip(t testing.TB, w, h, workers int, thermal bool) *Chip {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Workers = workers
	cfg.ThermalEnabled = thermal
	cfg.IslandW, cfg.IslandH = 2, 2
	cfg.CoreTypes = BigLittleTypes()
	cfg.TypeOf = make([]int, w*h)
	for i := range cfg.TypeOf {
		cfg.TypeOf[i] = i % 2
	}
	vmap, err := variation.Generate(w, h, variation.Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Variation = vmap

	base := rng.New(99)
	sources := make([]workload.Source, w*h)
	names := workload.PresetNames()
	for i := range sources {
		p, err := workload.NewProcess(workload.MustPreset(names[i%len(names)]), base.Split())
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = p
	}
	chip, err := New(cfg, sources, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// stepKernels drives two identically-built chips — one through the
// struct-of-arrays kernel, one through the retained reference kernel —
// and requires every telemetry field, energy and instruction count to
// match exactly, under level churn and mid-run core death.
func stepKernels(t *testing.T, fast, ref *Chip, epochs int) {
	t.Helper()
	n := fast.NumCores()
	levels := fast.Config().VF.Levels()
	var ftel, rtel Telemetry
	for e := 0; e < epochs; e++ {
		fast.StepInto(1e-3, &ftel)
		ref.ReferenceStepInto(1e-3, &rtel)
		if ftel.TimeS != rtel.TimeS || ftel.ChipPowerW != rtel.ChipPowerW || ftel.TruePowerW != rtel.TruePowerW {
			t.Fatalf("epoch %d: chip telemetry diverged: fast {t=%v p=%v tp=%v} ref {t=%v p=%v tp=%v}",
				e, ftel.TimeS, ftel.ChipPowerW, ftel.TruePowerW, rtel.TimeS, rtel.ChipPowerW, rtel.TruePowerW)
		}
		for i := 0; i < n; i++ {
			if ftel.Cores[i] != rtel.Cores[i] {
				t.Fatalf("epoch %d core %d:\nfast %+v\nref  %+v", e, i, ftel.Cores[i], rtel.Cores[i])
			}
		}
		// Level churn exercises transition stalls and every memo level.
		for i := 0; i < n; i++ {
			lvl := (e*3 + i) % levels
			fast.SetLevel(i, lvl)
			ref.SetLevel(i, lvl)
		}
		// Kill a couple of cores mid-run: dead cores must keep the
		// noise streams aligned in both kernels.
		if e == epochs/2 {
			fast.FailCore(3)
			ref.FailCore(3)
			fast.FailCore(n - 1)
			ref.FailCore(n - 1)
		}
	}
	if fast.EnergyJ() != ref.EnergyJ() {
		t.Fatalf("energy diverged: fast %v ref %v", fast.EnergyJ(), ref.EnergyJ())
	}
	if fast.Instructions() != ref.Instructions() {
		t.Fatalf("instructions diverged: fast %v ref %v", fast.Instructions(), ref.Instructions())
	}
	for i := 0; i < n; i++ {
		if fast.CoreInstructions(i) != ref.CoreInstructions(i) {
			t.Fatalf("core %d instructions diverged", i)
		}
	}
}

// TestReferenceKernelBitEqual is the oracle for the SoA kernel rewrite:
// with the thermal loop on and off, sequentially and sharded, the fast
// kernel must reproduce the pre-optimization kernel bit for bit.
func TestReferenceKernelBitEqual(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		thermal bool
	}{
		{"thermal-j1", 1, true},
		{"thermal-j4", 4, true},
		{"fixedtemp-j1", 1, false},
		{"fixedtemp-j4", 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast := buildHeteroChip(t, 16, 16, tc.workers, tc.thermal)
			ref := buildHeteroChip(t, 16, 16, tc.workers, tc.thermal)
			defer fast.Close()
			defer ref.Close()
			stepKernels(t, fast, ref, 80)
		})
	}
}

// TestReferenceKernelBitEqualHomogeneous covers the no-variation,
// no-hetero, no-island fast paths (the default platform shape) plus the
// noise-free configuration, where the kernels must also agree.
func TestReferenceKernelBitEqualHomogeneous(t *testing.T) {
	for _, noise := range []float64{0, 0.02} {
		cfgMod := func(workers int) *Chip {
			cfg := DefaultConfig()
			cfg.Width, cfg.Height = 16, 16
			cfg.Workers = workers
			cfg.SensorNoise = noise
			base := rng.New(41)
			sources := make([]workload.Source, 256)
			names := workload.PresetNames()
			for i := range sources {
				p, err := workload.NewProcess(workload.MustPreset(names[i%len(names)]), base.Split())
				if err != nil {
					t.Fatal(err)
				}
				sources[i] = p
			}
			chip, err := New(cfg, sources, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			return chip
		}
		fast, ref := cfgMod(4), cfgMod(4)
		defer fast.Close()
		defer ref.Close()
		stepKernels(t, fast, ref, 60)
	}
}

// TestReferenceKernelBitEqualBarrier covers shared-state WorkSource lanes,
// where the phase memo must stay disabled: a lane's phase flips when
// another lane releases the barrier.
func TestReferenceKernelBitEqualBarrier(t *testing.T) {
	build := func() *Chip {
		const w, h = 8, 8
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = w, h
		work := workload.Phase{
			Class: workload.Compute, BaseCPI: 0.85, MPKI: 2.0,
			MemLatencyNs: 75, Activity: 0.9,
		}
		app, err := workload.NewBarrierApp(w*h, work, 30e6, 0.2, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		sources := make([]workload.Source, w*h)
		for i := range sources {
			sources[i] = app.Lane(i)
		}
		chip, err := New(cfg, sources, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		return chip
	}
	fast, ref := build(), build()
	defer fast.Close()
	defer ref.Close()
	stepKernels(t, fast, ref, 120)
}

// TestKernelSwitchRebuildsMemo: a chip driven through the reference kernel
// mid-run must not serve stale memo entries when the fast kernel resumes —
// ReferenceStepInto advances phases without maintaining versions, so it
// poisons the memo.
func TestKernelSwitchRebuildsMemo(t *testing.T) {
	mixed := buildHeteroChip(t, 8, 8, 1, true)
	pure := buildHeteroChip(t, 8, 8, 1, true)
	defer mixed.Close()
	defer pure.Close()
	var mtel, ptel Telemetry
	for e := 0; e < 90; e++ {
		// Both kernels are bit-equal, so alternating them on one chip
		// must match a pure fast-kernel chip exactly.
		if e%3 == 2 {
			mixed.ReferenceStepInto(1e-3, &mtel)
		} else {
			mixed.StepInto(1e-3, &mtel)
		}
		pure.StepInto(1e-3, &ptel)
		for i := range ptel.Cores {
			if mtel.Cores[i] != ptel.Cores[i] {
				t.Fatalf("epoch %d core %d: mixed-kernel chip diverged:\nmixed %+v\npure  %+v", e, i, mtel.Cores[i], ptel.Cores[i])
			}
		}
	}
}
