package manycore

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/variation"
	"repro/internal/workload"
)

// buildChip constructs a w×h chip with per-core Markov sources, sensor
// noise and process variation — every feature the sharded step touches.
func buildChip(t testing.TB, w, h, workers int) *Chip {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Workers = workers
	vmap, err := variation.Generate(w, h, variation.Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Variation = vmap

	n := w * h
	base := rng.New(99)
	sources := make([]workload.Source, n)
	names := workload.PresetNames()
	for i := range sources {
		p, err := workload.NewProcess(workload.MustPreset(names[i%len(names)]), base.Split())
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = p
	}
	chip, err := New(cfg, sources, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// TestStepParallelDeterminism is the Chip.Step half of the determinism
// regression: a 256-core chip stepped with Workers=1 must produce telemetry
// bit-identical to Workers=8, epoch by epoch, including under mid-run level
// changes (transition stalls) and with sensor noise active.
func TestStepParallelDeterminism(t *testing.T) {
	const w, h, epochs = 16, 16, 60
	seq := buildChip(t, w, h, 1)
	parl := buildChip(t, w, h, 8)
	if seq.stepWorkers() != 1 {
		t.Fatalf("sequential chip reports %d workers", seq.stepWorkers())
	}
	if parl.stepWorkers() < 2 {
		t.Fatalf("parallel chip did not engage sharding (workers=%d)", parl.stepWorkers())
	}

	n := w * h
	for e := 0; e < epochs; e++ {
		a := seq.Step(1e-3)
		b := parl.Step(1e-3)
		if a.TimeS != b.TimeS || a.ChipPowerW != b.ChipPowerW || a.TruePowerW != b.TruePowerW {
			t.Fatalf("epoch %d: chip telemetry diverged: %+v vs %+v", e,
				Telemetry{TimeS: a.TimeS, ChipPowerW: a.ChipPowerW, TruePowerW: a.TruePowerW},
				Telemetry{TimeS: b.TimeS, ChipPowerW: b.ChipPowerW, TruePowerW: b.TruePowerW})
		}
		for i := 0; i < n; i++ {
			if a.Cores[i] != b.Cores[i] {
				t.Fatalf("epoch %d core %d: %+v vs %+v", e, i, a.Cores[i], b.Cores[i])
			}
		}
		// Exercise transitions: walk every core's level deterministically.
		for i := 0; i < n; i++ {
			seq.SetLevel(i, (e+i)%seq.Config().VF.Levels())
			parl.SetLevel(i, (e+i)%parl.Config().VF.Levels())
		}
	}
	if seq.EnergyJ() != parl.EnergyJ() {
		t.Fatalf("energy diverged: %v vs %v", seq.EnergyJ(), parl.EnergyJ())
	}
	if seq.Instructions() != parl.Instructions() {
		t.Fatalf("instructions diverged: %v vs %v", seq.Instructions(), parl.Instructions())
	}
	for i := 0; i < n; i++ {
		if seq.CoreInstructions(i) != parl.CoreInstructions(i) {
			t.Fatalf("core %d instructions diverged", i)
		}
	}
}

// TestStepSmallChipStaysSequential pins the threshold: a 64-core chip never
// pays goroutine dispatch regardless of the Workers knob.
func TestStepSmallChipStaysSequential(t *testing.T) {
	chip := buildChip(t, 8, 8, 16)
	if got := chip.stepWorkers(); got != 1 {
		t.Fatalf("64-core chip reports %d step workers, want 1", got)
	}
}

// TestStepSharedSourcesStaySequential pins the safety rule: barrier-app
// lanes share application state, so the chip must refuse to shard even
// above the size threshold.
func TestStepSharedSourcesStaySequential(t *testing.T) {
	const w, h = 16, 16
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Workers = 8
	work := workload.Phase{
		Class: workload.Compute, BaseCPI: 0.85, MPKI: 2.0,
		MemLatencyNs: 75, Activity: 0.9,
	}
	app, err := workload.NewBarrierApp(w*h, work, 30e6, 0.2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]workload.Source, w*h)
	for i := range sources {
		sources[i] = app.Lane(i)
	}
	chip, err := New(cfg, sources, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if got := chip.stepWorkers(); got != 1 {
		t.Fatalf("barrier-app chip reports %d step workers, want 1", got)
	}
	chip.Step(1e-3) // and stepping still works
}

func TestConfigRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for negative Workers")
	}
}
