package core

import (
	"testing"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/vf"
)

func newIslandController(t *testing.T, chipW, chipH, iw, ih int) *IslandController {
	t.Helper()
	ic, err := NewIslands(chipW, chipH, iw, ih, vf.Default(), power.Default(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestNewIslandsValidation(t *testing.T) {
	cases := []struct{ cw, ch, iw, ih int }{
		{0, 4, 2, 2},
		{4, 0, 2, 2},
		{4, 4, 0, 2},
		{4, 4, 3, 2}, // 3 does not divide 4
		{4, 4, 2, 3},
	}
	for i, c := range cases {
		if _, err := NewIslands(c.cw, c.ch, c.iw, c.ih, vf.Default(), power.Default(), Config{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestIslandCountAndName(t *testing.T) {
	ic := newIslandController(t, 4, 4, 2, 2)
	if ic.Islands() != 4 {
		t.Fatalf("Islands = %d, want 4", ic.Islands())
	}
	if ic.Name() != "od-rl-island" {
		t.Fatalf("Name = %q", ic.Name())
	}
	if len(ic.Budgets()) != 4 {
		t.Fatalf("Budgets has %d entries, want per-island", len(ic.Budgets()))
	}
}

func TestIslandDecideUniformWithinIsland(t *testing.T) {
	ic := newIslandController(t, 4, 4, 2, 2)
	tel := fakeTel(16, 3, 1.0, 0.3)
	out := make([]int, 16)
	for e := 0; e < 30; e++ {
		ic.Decide(tel, 40, out)
		// Cores of one island must always share one level.
		for _, members := range ic.islands {
			for _, i := range members[1:] {
				if out[i] != out[members[0]] {
					t.Fatalf("epoch %d: island members disagree: %v", e, out)
				}
			}
		}
	}
}

func TestIslandDecidePanicsOnMismatch(t *testing.T) {
	ic := newIslandController(t, 4, 4, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ic.Decide(fakeTel(8, 0, 1, 0), 40, make([]int, 8))
}

func TestIslandAggregation(t *testing.T) {
	ic := newIslandController(t, 2, 2, 2, 1) // two 2x1 islands
	tel := fakeTel(4, 2, 1.0, 0.0)
	// Island 0 = cores {0,1}; make them distinguishable.
	tel.Cores[0].IPS = 1e9
	tel.Cores[0].MemBoundedness = 0.0
	tel.Cores[1].IPS = 3e9
	tel.Cores[1].MemBoundedness = 1.0
	tel.Cores[1].TempK = 360
	tel.Cores[1].Level = 5
	out := make([]int, 4)
	ic.Decide(tel, 30, out)

	agg := ic.aggTel.Cores[0]
	if agg.IPS != 4e9 {
		t.Fatalf("island IPS = %v, want sum 4e9", agg.IPS)
	}
	if agg.PowerW != 2.0 {
		t.Fatalf("island power = %v, want 2.0", agg.PowerW)
	}
	// IPS-weighted memory-boundedness: (0*1 + 1*3)/4 = 0.75.
	if agg.MemBoundedness != 0.75 {
		t.Fatalf("island mem-boundedness = %v, want 0.75", agg.MemBoundedness)
	}
	if agg.TempK != 360 {
		t.Fatalf("island temp = %v, want max 360", agg.TempK)
	}
	if agg.Level != 5 {
		t.Fatalf("island level = %v, want max 5", agg.Level)
	}
}

func TestIslandCommCost(t *testing.T) {
	mesh, err := noc.New(4, 4, noc.Default())
	if err != nil {
		t.Fatal(err)
	}
	ic := newIslandController(t, 4, 4, 2, 2)
	cost := ic.CommPerEpoch(mesh)
	if cost.LatencyS <= 0 || cost.EnergyJ <= 0 {
		t.Fatal("island controller comm cost must be positive (realloc traffic)")
	}
}

// The headline property: on shared islands, island-aware OD-RL must not
// exhibit the exploration-pinning overshoot that per-core agents do.
func TestIslandAwareBeatsPerCoreOnSharedIslands(t *testing.T) {
	// Build a tiny closed loop: the fake telemetry responds to the max
	// level requested in each island, mimicking the chip's resolution.
	tbl := vf.Default()
	pp := power.Default()
	const chipW, chipH = 4, 4
	const budget = 30.0

	powerAt := func(l int) float64 {
		op := tbl.Point(l)
		return pp.CoreW(op.VoltageV, op.FreqHz, 0.8, 330)
	}
	runLoop := func(decide func(*manycore.Telemetry, []int)) float64 {
		levels := make([]int, 16)
		out := make([]int, 16)
		overJ := 0.0
		for e := 0; e < 4000; e++ {
			tel := &manycore.Telemetry{EpochS: 1e-3, Cores: make([]manycore.CoreTelemetry, 16)}
			total := pp.UncoreW
			for i := range tel.Cores {
				op := tbl.Point(levels[i])
				pw := powerAt(levels[i])
				tel.Cores[i] = manycore.CoreTelemetry{
					Level: levels[i], FreqHz: op.FreqHz, VoltageV: op.VoltageV,
					IPS: op.FreqHz / 1.0, PowerW: pw, MemBoundedness: 0.2, TempK: 330,
				}
				total += pw
			}
			tel.TruePowerW, tel.ChipPowerW = total, total
			decide(tel, out)
			// Chip-wide island: max request wins everywhere.
			max := 0
			for _, l := range out {
				if l > max {
					max = l
				}
			}
			for i := range levels {
				levels[i] = max
			}
			if e >= 2000 && total > budget {
				overJ += (total - budget) * 1e-3
			}
		}
		return overJ
	}

	perCore, err := New(16, tbl, pp, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	overPerCore := runLoop(func(tel *manycore.Telemetry, out []int) {
		perCore.Decide(tel, budget, out)
	})

	island, err := NewIslands(chipW, chipH, chipW, chipH, tbl, pp, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	overIsland := runLoop(func(tel *manycore.Telemetry, out []int) {
		island.Decide(tel, budget, out)
	})

	if overIsland >= overPerCore {
		t.Fatalf("island-aware overshoot %v J not below per-core %v J on a shared island",
			overIsland, overPerCore)
	}
}
