package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rl"
)

// policyFile is the serialised form of a learned OD-RL policy: every
// per-core agent's Q-table plus the shape information needed to refuse a
// mismatched restore. Warm-starting from a saved policy lets a production
// deployment skip the cold-start exploration window (see the F6
// convergence experiment).
type policyFile struct {
	Version int         `json:"version"`
	Cores   int         `json:"cores"`
	States  int         `json:"states"`
	Actions int         `json:"actions"`
	Tables  []*rl.Table `json:"tables"`
}

const policyVersion = 1

// SavePolicy serialises the controller's learned per-core Q-tables. It is
// tabular-only; function-approximation controllers are rejected.
func (c *Controller) SavePolicy(w io.Writer) error {
	if c.linAgents != nil {
		return fmt.Errorf("core: policy persistence is tabular-only")
	}
	pf := policyFile{
		Version: policyVersion,
		Cores:   len(c.agents),
		States:  c.codec.States(),
		Actions: c.table.Levels(),
		Tables:  make([]*rl.Table, len(c.agents)),
	}
	for i, a := range c.agents {
		pf.Tables[i] = a.Table()
	}
	return json.NewEncoder(w).Encode(pf)
}

// LoadPolicy warm-starts the controller from a policy saved by SavePolicy.
// The policy must match this controller's core count and state/action
// shape exactly; refusing near-misses is deliberate, as a policy learned
// for a different discretisation is silently wrong.
func (c *Controller) LoadPolicy(r io.Reader) error {
	if c.linAgents != nil {
		return fmt.Errorf("core: policy persistence is tabular-only")
	}
	var pf policyFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return fmt.Errorf("core: decoding policy: %w", err)
	}
	if pf.Version != policyVersion {
		return fmt.Errorf("core: policy version %d, want %d", pf.Version, policyVersion)
	}
	if pf.Cores != len(c.agents) {
		return fmt.Errorf("core: policy for %d cores, controller has %d", pf.Cores, len(c.agents))
	}
	if pf.States != c.codec.States() || pf.Actions != c.table.Levels() {
		return fmt.Errorf("core: policy shape %dx%d, controller is %dx%d",
			pf.States, pf.Actions, c.codec.States(), c.table.Levels())
	}
	if len(pf.Tables) != pf.Cores {
		return fmt.Errorf("core: policy has %d tables for %d cores", len(pf.Tables), pf.Cores)
	}
	for i, tbl := range pf.Tables {
		if tbl == nil {
			return fmt.Errorf("core: policy table %d missing", i)
		}
		if err := c.agents[i].Table().CopyFrom(tbl); err != nil {
			return fmt.Errorf("core: policy table %d: %w", i, err)
		}
	}
	return nil
}
