package core

import (
	"math"
	"testing"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/vf"
)

func newController(t *testing.T, cores int, cfg Config) *Controller {
	t.Helper()
	c, err := New(cores, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeTel builds a telemetry frame where every core sits at the given level
// drawing pw watts with the given memory-boundedness.
func fakeTel(cores, level int, pw, mb float64) *manycore.Telemetry {
	tbl := vf.Default()
	op := tbl.Point(level)
	tel := &manycore.Telemetry{
		EpochS: 1e-3,
		Cores:  make([]manycore.CoreTelemetry, cores),
	}
	total := power.Default().UncoreW
	for i := range tel.Cores {
		tel.Cores[i] = manycore.CoreTelemetry{
			Level:          level,
			FreqHz:         op.FreqHz,
			VoltageV:       op.VoltageV,
			IPS:            op.FreqHz / 1.0,
			PowerW:         pw,
			MemBoundedness: mb,
			TempK:          330,
		}
		total += pw
	}
	tel.ChipPowerW = total
	tel.TruePowerW = total
	return tel
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, vf.Default(), power.Default(), Config{}); err == nil {
		t.Fatal("expected error for zero cores")
	}
	if _, err := New(4, nil, power.Default(), Config{}); err == nil {
		t.Fatal("expected error for nil table")
	}
	bad := power.Default()
	bad.CeffF = 0
	if _, err := New(4, vf.Default(), bad, Config{}); err == nil {
		t.Fatal("expected error for bad power params")
	}
	if _, err := New(4, vf.Default(), power.Default(), Config{Lambda: -1}); err == nil {
		t.Fatal("expected error for negative lambda")
	}
	if _, err := New(4, vf.Default(), power.Default(), Config{FineEpochsPerRealloc: -2}); err == nil {
		t.Fatal("expected error for negative cadence")
	}
	if _, err := New(4, vf.Default(), power.Default(), Config{ReallocMargin: 1.5}); err == nil {
		t.Fatal("expected error for margin >= 1")
	}
	if _, err := New(4, vf.Default(), power.Default(), Config{HarvestFraction: 2}); err == nil {
		t.Fatal("expected error for harvest fraction > 1")
	}
}

func TestName(t *testing.T) {
	if got := newController(t, 4, Config{}).Name(); got != "od-rl" {
		t.Fatalf("Name = %q", got)
	}
	if got := newController(t, 4, Config{DisableRealloc: true}).Name(); got != "od-rl-norealloc" {
		t.Fatalf("ablation Name = %q", got)
	}
}

func TestDecideFillsValidLevels(t *testing.T) {
	c := newController(t, 16, Config{})
	out := make([]int, 16)
	tel := fakeTel(16, 3, 1.0, 0.3)
	for e := 0; e < 50; e++ {
		c.Decide(tel, 60, out)
		for i, l := range out {
			if l < 0 || l >= vf.Default().Levels() {
				t.Fatalf("epoch %d core %d: level %d out of range", e, i, l)
			}
		}
	}
}

func TestDecidePanicsOnSizeMismatch(t *testing.T) {
	c := newController(t, 4, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Decide(fakeTel(4, 0, 1, 0), 60, make([]int, 3))
}

func TestInitialBudgetsEqualSplit(t *testing.T) {
	c := newController(t, 8, Config{DisableRealloc: true})
	out := make([]int, 8)
	c.Decide(fakeTel(8, 0, 0.5, 0.2), 60, out)
	budgets := c.Budgets()
	want := (60 - power.Default().UncoreW) / 8
	for i, b := range budgets {
		if math.Abs(b-want) > 1e-9 {
			t.Fatalf("core %d budget = %v, want %v", i, b, want)
		}
	}
}

func TestBudgetInvariantAfterRealloc(t *testing.T) {
	cfg := Config{FineEpochsPerRealloc: 5}
	c := newController(t, 8, cfg)
	out := make([]int, 8)
	// Uneven consumption: four cores draw heavily, four barely.
	tel := fakeTel(8, 3, 0.2, 0.1)
	for i := 4; i < 8; i++ {
		tel.Cores[i].PowerW = 6.0
	}
	const chipBudget = 40.0
	for e := 0; e < 50; e++ {
		c.Decide(tel, chipBudget, out)
	}
	budgets := c.Budgets()
	sum := 0.0
	for _, b := range budgets {
		sum += b
	}
	want := chipBudget - power.Default().UncoreW
	if math.Abs(sum-want)/want > 1e-9 {
		t.Fatalf("budget sum = %v, want %v", sum, want)
	}
}

func TestReallocMovesBudgetTowardConstrainedComputeCores(t *testing.T) {
	cfg := Config{FineEpochsPerRealloc: 2}
	c := newController(t, 4, cfg)
	out := make([]int, 4)
	tel := fakeTel(4, 3, 0.3, 0.1) // cores 0,1: light draw
	// Core 2: constrained and compute-bound. Core 3: constrained but
	// memory-bound.
	tel.Cores[2].PowerW = 12.0
	tel.Cores[2].MemBoundedness = 0.05
	tel.Cores[3].PowerW = 12.0
	tel.Cores[3].MemBoundedness = 0.9
	// Two decides trigger exactly one reallocation pass; with static
	// consumption further passes converge both constrained cores to the
	// same fixed point, so inspect the transient grant.
	c.Decide(tel, 40, out)
	c.Decide(tel, 40, out)
	b := c.Budgets()
	if b[2] <= b[0] {
		t.Fatalf("constrained core budget %v should exceed idle core %v", b[2], b[0])
	}
	if b[2] <= b[3] {
		t.Fatalf("compute-bound core budget %v should exceed memory-bound %v", b[2], b[3])
	}
}

func TestDisableReallocFreezesBudgets(t *testing.T) {
	c := newController(t, 4, Config{DisableRealloc: true, FineEpochsPerRealloc: 2})
	out := make([]int, 4)
	tel := fakeTel(4, 3, 0.2, 0.1)
	tel.Cores[0].PowerW = 10
	for e := 0; e < 20; e++ {
		c.Decide(tel, 40, out)
	}
	b := c.Budgets()
	for i := 1; i < 4; i++ {
		if math.Abs(b[i]-b[0]) > 1e-9 {
			t.Fatal("budgets moved despite DisableRealloc")
		}
	}
}

func TestBudgetRescaleOnCapChange(t *testing.T) {
	c := newController(t, 4, Config{DisableRealloc: true})
	out := make([]int, 4)
	tel := fakeTel(4, 3, 1.0, 0.3)
	c.Decide(tel, 44, out)
	before := c.Budgets()
	c.Decide(tel, 24, out) // cap drops 44→24 W
	after := c.Budgets()
	wantScale := (24 - power.Default().UncoreW) / (44 - power.Default().UncoreW)
	for i := range after {
		if math.Abs(after[i]-before[i]*wantScale) > 1e-9 {
			t.Fatalf("core %d: budget %v, want %v", i, after[i], before[i]*wantScale)
		}
	}
}

func TestRewardShape(t *testing.T) {
	c := newController(t, 1, Config{Lambda: 4})
	ct := &manycore.CoreTelemetry{IPS: c.maxIPS / 2, PowerW: 1.0}
	// Under budget: pure performance term.
	if got := c.rewardOf(ct, 2.0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("under-budget reward = %v, want 0.5", got)
	}
	// 50% overshoot: penalty of λ·0.5 applies.
	ct.PowerW = 3.0
	want := 0.5 - 4*0.5
	if got := c.rewardOf(ct, 2.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("overshoot reward = %v, want %v", got, want)
	}
	// Zero budget: no overshoot term (avoid division by zero).
	if got := c.rewardOf(ct, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("zero-budget reward = %v, want 0.5", got)
	}
}

func TestCommPerEpochAmortized(t *testing.T) {
	mesh, err := noc.New(8, 8, noc.Default())
	if err != nil {
		t.Fatal(err)
	}
	c := newController(t, 64, Config{FineEpochsPerRealloc: 10})
	full := mesh.GatherCost(mesh.Center())
	got := c.CommPerEpoch(mesh)
	if got.LatencyS >= full.LatencyS {
		t.Fatal("OD-RL per-epoch comm must be amortised below a full gather")
	}
	if got.EnergyJ <= 0 {
		t.Fatal("realloc traffic must cost something")
	}
	ablated := newController(t, 64, Config{DisableRealloc: true})
	if ab := ablated.CommPerEpoch(mesh); ab.LatencyS != 0 || ab.EnergyJ != 0 {
		t.Fatal("no-realloc ablation must have zero comm")
	}
}

func TestDeterministicDecisions(t *testing.T) {
	run := func() []int {
		c := newController(t, 8, Config{Seed: 42})
		out := make([]int, 8)
		tel := fakeTel(8, 2, 1.2, 0.4)
		for e := 0; e < 100; e++ {
			c.Decide(tel, 50, out)
		}
		return append([]int(nil), out...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed controllers diverged")
		}
	}
}

func TestLearnsToAvoidOvershootInStaticEnvironment(t *testing.T) {
	// Closed-form toy environment: power at level l is known; per-core
	// budget permits exactly level 4. A trained agent should settle at or
	// below the budget-feasible level most of the time.
	tbl := vf.Default()
	pp := power.Default()
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.EpsilonDecay = 0.999
	c, err := New(1, tbl, pp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const mb = 0.0
	level := 3
	powerAt := func(l int) float64 {
		op := tbl.Point(l)
		return pp.CoreW(op.VoltageV, op.FreqHz, 0.9, 330)
	}
	// Chip budget so that the per-core share sits between level 4 and 5.
	share := (powerAt(4) + powerAt(5)) / 2
	chipBudget := share + pp.UncoreW

	out := make([]int, 1)
	overshootLate := 0
	for e := 0; e < 8000; e++ {
		op := tbl.Point(level)
		tel := &manycore.Telemetry{
			EpochS: 1e-3,
			Cores: []manycore.CoreTelemetry{{
				Level:          level,
				FreqHz:         op.FreqHz,
				VoltageV:       op.VoltageV,
				IPS:            op.FreqHz / 1.0,
				PowerW:         powerAt(level),
				MemBoundedness: mb,
				TempK:          330,
			}},
		}
		tel.TruePowerW = powerAt(level) + pp.UncoreW
		tel.ChipPowerW = tel.TruePowerW
		c.Decide(tel, chipBudget, out)
		level = out[0]
		if e >= 7000 && powerAt(level) > share {
			overshootLate++
		}
	}
	if overshootLate > 150 { // 15% of the last 1000 epochs
		t.Fatalf("trained agent overshot its share in %d/1000 late epochs", overshootLate)
	}
}

func TestThermalPenaltyShapesReward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalLambda = 2
	c, err := New(1, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cool := &manycore.CoreTelemetry{IPS: 1e9, PowerW: 0.5, TempK: 340}
	hot := &manycore.CoreTelemetry{IPS: 1e9, PowerW: 0.5, TempK: 370}
	if c.rewardOf(hot, 2) >= c.rewardOf(cool, 2) {
		t.Fatal("hot core not penalised")
	}
	// Exactly at the reference there is no penalty.
	at := &manycore.CoreTelemetry{IPS: 1e9, PowerW: 0.5, TempK: 350}
	if c.rewardOf(at, 2) != c.rewardOf(cool, 2) {
		t.Fatal("penalty applied at or below the reference temperature")
	}
	// Disabled by default.
	cOff, _ := New(1, vf.Default(), power.Default(), DefaultConfig())
	if cOff.rewardOf(hot, 2) != cOff.rewardOf(cool, 2) {
		t.Fatal("thermal penalty active without ThermalLambda")
	}
}

func TestReallocEMASmoothsPowerView(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReallocEMA = 0.1
	c := newController(t, 2, cfg)
	out := make([]int, 2)
	// First decide seeds the EMA with the sample itself.
	telA := fakeTel(2, 3, 4.0, 0.2)
	c.Decide(telA, 20, out)
	if got := c.reallocPower(telA, 0); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("EMA seed = %v, want 4.0", got)
	}
	// A power spike moves the smoothed view by only alpha of the jump.
	telB := fakeTel(2, 3, 14.0, 0.2)
	c.Decide(telB, 20, out)
	want := 0.1*14.0 + 0.9*4.0
	if got := c.reallocPower(telB, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("smoothed power = %v, want %v", got, want)
	}
	// Without the option, the view is the raw sample.
	plain := newController(t, 2, DefaultConfig())
	plain.Decide(telB, 20, out)
	if got := plain.reallocPower(telB, 0); got != 14.0 {
		t.Fatalf("raw power view = %v, want 14.0", got)
	}
}

func TestFunctionApproxMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FunctionApprox = true
	c := newController(t, 8, cfg)
	if c.Name() != "od-rl-fa" {
		t.Fatalf("Name = %q", c.Name())
	}
	out := make([]int, 8)
	tel := fakeTel(8, 2, 1.0, 0.3)
	for e := 0; e < 100; e++ {
		c.Decide(tel, 40, out)
		for _, l := range out {
			if l < 0 || l >= vf.Default().Levels() {
				t.Fatalf("FA mode emitted invalid level %d", l)
			}
		}
	}
	// Persistence is tabular-only.
	if err := c.SavePolicy(&discard{}); err == nil {
		t.Fatal("SavePolicy must fail in FA mode")
	}
	if err := c.LoadPolicy(nil); err == nil {
		t.Fatal("LoadPolicy must fail in FA mode")
	}
}

// discard is an io.Writer that drops everything.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestFunctionApproxLearnsToAvoidOvershoot(t *testing.T) {
	// Same closed-form toy environment as the tabular test: the FA agent
	// must also settle at or below the budget-feasible level.
	tbl := vf.Default()
	pp := power.Default()
	cfg := DefaultConfig()
	cfg.FunctionApprox = true
	cfg.Seed = 3
	cfg.EpsilonDecay = 0.999
	c, err := New(1, tbl, pp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	level := 3
	powerAt := func(l int) float64 {
		op := tbl.Point(l)
		return pp.CoreW(op.VoltageV, op.FreqHz, 0.9, 330)
	}
	share := (powerAt(4) + powerAt(5)) / 2
	chipBudget := share + pp.UncoreW
	out := make([]int, 1)
	overshootLate := 0
	for e := 0; e < 8000; e++ {
		op := tbl.Point(level)
		tel := &manycore.Telemetry{
			EpochS: 1e-3,
			Cores: []manycore.CoreTelemetry{{
				Level: level, FreqHz: op.FreqHz, VoltageV: op.VoltageV,
				IPS: op.FreqHz / 1.0, PowerW: powerAt(level), TempK: 330,
			}},
		}
		tel.TruePowerW = powerAt(level) + pp.UncoreW
		tel.ChipPowerW = tel.TruePowerW
		c.Decide(tel, chipBudget, out)
		level = out[0]
		if e >= 7000 && powerAt(level) > share {
			overshootLate++
		}
	}
	if overshootLate > 200 {
		t.Fatalf("FA agent overshot its share in %d/1000 late epochs", overshootLate)
	}
}

func TestPhaseTimesProfile(t *testing.T) {
	c := newController(t, 16, Config{FineEpochsPerRealloc: 5})
	tel := fakeTel(16, 2, 2.0, 0.3)
	out := make([]int, 16)
	const epochs = 20
	for e := 0; e < epochs; e++ {
		c.Decide(tel, 90, out)
	}

	byName := map[string]obs.PhaseTime{}
	for _, pt := range c.PhaseTimes() {
		byName[pt.Name] = pt
	}
	local, ok := byName[obs.PhaseLocal]
	if !ok || local.Count != epochs {
		t.Errorf("local phase = %+v, want count %d", local, epochs)
	}
	global := byName[obs.PhaseGlobal]
	if want := int64(epochs / 5); global.Count != want {
		t.Errorf("global phase count = %d, want %d (cadence 5 over %d epochs)", global.Count, want, epochs)
	}
	if local.Total <= 0 {
		t.Errorf("local phase total = %v, want > 0", local.Total)
	}

	// Communication accounting is timed under the comm phase.
	mesh, err := noc.New(4, 4, noc.Default())
	if err != nil {
		t.Fatal(err)
	}
	c.CommPerEpoch(mesh)
	for _, pt := range c.PhaseTimes() {
		if pt.Name == obs.PhaseComm && pt.Count != 1 {
			t.Errorf("comm phase count = %d, want 1", pt.Count)
		}
	}

	c.ResetPhaseTimes()
	for _, pt := range c.PhaseTimes() {
		if pt.Count != 0 || pt.Total != 0 {
			t.Errorf("after reset, phase %s = %+v", pt.Name, pt)
		}
	}
}
