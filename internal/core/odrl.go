// Package core implements OD-RL, the paper's contribution: On-line
// Distributed Reinforcement Learning DVFS control for power-limited
// many-core systems (Chen & Marculescu, DATE 2015).
//
// The controller is two-level:
//
//   - Fine grain (every control epoch, per core): a tabular RL agent picks
//     the core's VF level. Its state is ⟨power-headroom bucket,
//     memory-boundedness bucket, current level⟩; its reward is normalised
//     throughput minus λ times the core's relative budget overshoot. The
//     agent is model-free: it never predicts power, it learns which levels
//     keep this core fast *and* inside its budget share across the phases
//     it actually experiences.
//
//   - Coarse grain (every K epochs): a global O(n) budget-reallocation pass
//     harvests slack from cores that are not using their share and
//     redistributes it to power-constrained cores, weighted by how
//     compute-bound (and hence frequency-responsive) each one is. This is
//     the only step that needs global communication, which is what makes
//     the scheme two orders of magnitude cheaper than centralized
//     optimisation at hundreds of cores.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/rl"
	"repro/internal/rng"
	"repro/internal/vf"
)

// parallelMinCores is the domain count below which the local phase always
// runs sequentially: one tabular agent update is a few table lookups, so
// goroutine dispatch only pays for itself on large chips.
const parallelMinCores = 128

// Span indices into the controller's phase timer; the names are the
// canonical obs phase constants so harness code can match on them.
const (
	spanLocal = iota
	spanGlobal
	spanComm
)

// Config holds OD-RL hyper-parameters. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	// Lambda weights the overshoot penalty in the reward. Larger values
	// trade throughput for tighter budget compliance (ablated in F9).
	Lambda float64
	// FineEpochsPerRealloc is K, the global reallocation cadence.
	FineEpochsPerRealloc int
	// ReallocMargin is the per-core slack fraction protected from
	// harvesting, so a core keeps breathing room above its current draw.
	ReallocMargin float64
	// HarvestFraction is how much of the unprotected slack each pass
	// moves; below 1.0 it damps oscillation.
	HarvestFraction float64
	// BudgetFloorFrac floors every core's share at this fraction of the
	// equal split. Without a floor, reallocation harvests an idle core's
	// share down to its draw, after which any level increase overshoots
	// and is penalised — the agent can never climb back up.
	BudgetFloorFrac float64
	// HeadroomBuckets and MemBuckets size the state discretisation.
	HeadroomBuckets int
	MemBuckets      int
	// Alpha, Gamma and the epsilon schedule configure the per-core agents.
	Alpha        float64
	Gamma        float64
	EpsilonStart float64
	EpsilonEnd   float64
	EpsilonDecay float64
	// Algorithm selects Q-learning (default), SARSA or double Q-learning.
	Algorithm rl.Algorithm
	// TraceLambda, when positive, enables Watkins Q(λ) eligibility traces
	// in every per-core agent (QLearning only).
	TraceLambda float64
	// ThermalLambda, when positive, adds a thermal term to the reward:
	// −ThermalLambda·(T−ThermalRefK)/50 for cores above ThermalRefK. It
	// teaches hot cores to back off even when their power share permits
	// more — a thermal-aware extension beyond the paper.
	ThermalLambda float64
	// ThermalRefK is the temperature at which the penalty starts;
	// defaults to 350 K when ThermalLambda is set.
	ThermalRefK float64
	// DisableRealloc turns the coarse-grain layer off (ablation F9).
	DisableRealloc bool
	// ReallocEMA, when positive, makes the reallocation pass act on an
	// exponentially smoothed view of per-core power (new = α·sample +
	// (1−α)·old with α = ReallocEMA) instead of the last epoch's sample.
	// Fast work/wait oscillation (the F14 barrier workload) otherwise
	// makes budgets chase a regime that has already flipped.
	ReallocEMA float64
	// Workers bounds the goroutines sharding the fine-grain local phase
	// across per-core agents: 0 uses one worker per CPU, 1 forces
	// sequential updates. Each agent owns its state and exploration
	// stream, so parallel updates are bit-identical to sequential; the
	// global reallocation pass always stays sequential, mirroring the
	// paper's local/global split. Sharding engages only for chips of at
	// least 128 control domains.
	Workers int
	// WatchdogEpochs, when positive, arms a per-core telemetry watchdog:
	// after this many consecutive epochs of an exactly repeated (IPS,
	// power) reading — the signature of a stuck sensor or telemetry
	// blackout, which live noisy telemetry never produces — the core falls
	// back to the lowest-power level and its agent stops learning until
	// fresh data arrives. Zero (the default) disables the watchdog and
	// leaves the decision stream byte-identical to prior releases; the
	// harness arms it automatically when a fault plan is active.
	WatchdogEpochs int
	// FunctionApprox replaces the tabular per-core agents with tile-coded
	// linear SARSA(λ) over the continuous state ⟨headroom,
	// memory-boundedness, level⟩ — no discretisation cliffs, smooth
	// generalisation between neighbouring states. Policy persistence
	// (SavePolicy/LoadPolicy) is tabular-only.
	FunctionApprox bool
	// Seed drives exploration.
	Seed uint64
}

// DefaultConfig returns the hyper-parameters used throughout the
// evaluation.
func DefaultConfig() Config {
	return Config{
		Lambda:               4.0,
		FineEpochsPerRealloc: 10,
		ReallocMargin:        0.10,
		HarvestFraction:      0.30,
		BudgetFloorFrac:      0.50,
		HeadroomBuckets:      5,
		MemBuckets:           4,
		Alpha:                0.15,
		Gamma:                0.80,
		EpsilonStart:         0.50,
		EpsilonEnd:           0.02,
		EpsilonDecay:         0.9995,
		Algorithm:            rl.QLearning,
		Seed:                 1,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Lambda == 0 {
		c.Lambda = d.Lambda
	}
	if c.FineEpochsPerRealloc == 0 {
		c.FineEpochsPerRealloc = d.FineEpochsPerRealloc
	}
	if c.ReallocMargin == 0 {
		c.ReallocMargin = d.ReallocMargin
	}
	if c.HarvestFraction == 0 {
		c.HarvestFraction = d.HarvestFraction
	}
	if c.BudgetFloorFrac == 0 {
		c.BudgetFloorFrac = d.BudgetFloorFrac
	}
	if c.HeadroomBuckets == 0 {
		c.HeadroomBuckets = d.HeadroomBuckets
	}
	if c.MemBuckets == 0 {
		c.MemBuckets = d.MemBuckets
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.Gamma == 0 {
		c.Gamma = d.Gamma
	}
	if c.EpsilonStart == 0 {
		c.EpsilonStart = d.EpsilonStart
	}
	if c.EpsilonEnd == 0 {
		c.EpsilonEnd = d.EpsilonEnd
	}
	if c.EpsilonDecay == 0 {
		c.EpsilonDecay = d.EpsilonDecay
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.ThermalLambda > 0 && c.ThermalRefK == 0 {
		c.ThermalRefK = 350
	}
	return c
}

// Controller is the OD-RL power manager for one chip.
type Controller struct {
	cfg       Config
	table     *vf.Table
	pwr       power.Params
	agents    []*rl.Agent       // tabular mode
	linAgents []*rl.LinearAgent // function-approximation mode
	codec     rl.Codec
	headD     rl.Discretizer
	memD      rl.Discretizer
	xScratch  []float64 // continuous-state buffer, FA mode

	budgets    []float64 // per-core power budget shares (W)
	hwFloor    float64   // absolute minimum useful share (bottom level draw)
	minBudget  float64   // active floor for any core's share
	lastBudget float64   // chip budget seen on the previous Decide
	maxIPS     float64   // normalisation constant for the reward
	emaPower   []float64 // smoothed per-core power, ReallocEMA only
	epoch      int
	started    bool

	// dead marks cores the telemetry reports as failed; their budget share
	// is reclaimed by the survivors and they leave the control domain.
	dead  []bool
	alive int

	// Watchdog state, allocated only when WatchdogEpochs > 0. decideCore
	// touches only core-i slots, so the sharded local phase stays race-free.
	wdLastIPS    []float64
	wdLastPowerW []float64
	wdStale      []int

	// phases profiles the two control layers separately (claim C4: the
	// fine-grain layer is O(1) per core, only reallocation is global).
	phases *obs.SpanTimer

	// Learning introspection (see learn.go): sink and reusable sample
	// buffer, attached via ctrl.LearnStreamer; nil when off. learnEvery is
	// the sink's requested emit stride in epochs; learnPend counts epochs
	// since the last emit.
	learnSink  obs.LearnSink
	learnBuf   []obs.LearnCoreSample
	learnEvery int
	learnPend  int

	// epsCache memoises the shared exploration schedule: every live agent
	// sits at the same step count, so Decide warms the cache once per
	// epoch (one math.Pow) and the sharded decide loop reads it.
	epsCache *rl.EpsilonCache

	// Persistent local-phase workers: the pool parks between epochs and
	// the dispatch closure is built once, reading the per-epoch inputs
	// through decTel/decOut, so steady-state Decide allocates nothing.
	pool     *par.Pool
	decideFn func(lo, hi int)
	decTel   *manycore.Telemetry
	decOut   []int

	// reallocW is reallocate's grant-weight scratch. Dead indices are
	// never read (every pass skips them) and live indices are overwritten
	// each call, so reuse is bit-exact.
	reallocW []float64
}

// Close releases the controller's persistent worker pool, if any. Safe to
// call more than once; a closed controller keeps working sequentially.
func (c *Controller) Close() error {
	if c.pool != nil {
		c.pool.Close()
	}
	return nil
}

// New creates an OD-RL controller for a chip with the given core count,
// VF table and power constants.
func New(cores int, table *vf.Table, pwr power.Params, cfg Config) (*Controller, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("core: invalid core count %d", cores)
	}
	if table == nil {
		return nil, fmt.Errorf("core: nil VF table")
	}
	if err := pwr.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("core: negative Lambda %g", cfg.Lambda)
	}
	if cfg.FineEpochsPerRealloc < 1 {
		return nil, fmt.Errorf("core: FineEpochsPerRealloc must be >= 1, got %d", cfg.FineEpochsPerRealloc)
	}
	if cfg.ReallocMargin < 0 || cfg.ReallocMargin >= 1 {
		return nil, fmt.Errorf("core: ReallocMargin must be in [0,1), got %g", cfg.ReallocMargin)
	}
	if cfg.HarvestFraction <= 0 || cfg.HarvestFraction > 1 {
		return nil, fmt.Errorf("core: HarvestFraction must be in (0,1], got %g", cfg.HarvestFraction)
	}
	if cfg.BudgetFloorFrac < 0 || cfg.BudgetFloorFrac >= 1 {
		return nil, fmt.Errorf("core: BudgetFloorFrac must be in [0,1), got %g", cfg.BudgetFloorFrac)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.WatchdogEpochs < 0 {
		return nil, fmt.Errorf("core: negative WatchdogEpochs %d", cfg.WatchdogEpochs)
	}

	codec := rl.MustCodec(cfg.HeadroomBuckets, cfg.MemBuckets, table.Levels())
	rlCfg := rl.Config{
		States:       codec.States(),
		Actions:      table.Levels(),
		Alpha:        cfg.Alpha,
		Gamma:        cfg.Gamma,
		Algorithm:    cfg.Algorithm,
		Policy:       rl.EpsilonGreedy,
		EpsilonStart: cfg.EpsilonStart,
		EpsilonEnd:   cfg.EpsilonEnd,
		EpsilonDecay: cfg.EpsilonDecay,
		TraceLambda:  cfg.TraceLambda,
		// Optimistic initialisation: the best sustained reward is roughly
		// perf_max/(1−γ); starting near it makes every agent try each
		// action in the states it actually visits before settling.
		InitialQ: 2.0,
	}
	base := rng.New(cfg.Seed)
	var agents []*rl.Agent
	var linAgents []*rl.LinearAgent
	if cfg.FunctionApprox {
		// Continuous state: headroom in [-0.5, 0.5], memory-boundedness in
		// [0, 1], level normalised to [0, 1]; 8 tiles per dim, 4 tilings.
		coder, err := rl.NewTileCoder(
			[]float64{-0.5, 0, 0},
			[]float64{0.5, 1, 1},
			8, 4)
		if err != nil {
			return nil, err
		}
		linCfg := rl.LinearConfig{
			Actions:      table.Levels(),
			Alpha:        cfg.Alpha,
			Gamma:        cfg.Gamma,
			Lambda:       cfg.TraceLambda,
			EpsilonStart: cfg.EpsilonStart,
			EpsilonEnd:   cfg.EpsilonEnd,
			EpsilonDecay: cfg.EpsilonDecay,
		}
		linAgents = make([]*rl.LinearAgent, cores)
		for i := range linAgents {
			a, err := rl.NewLinearAgent(coder, linCfg, base.Split())
			if err != nil {
				return nil, err
			}
			linAgents[i] = a
		}
	} else {
		agents = make([]*rl.Agent, cores)
		for i := range agents {
			a, err := rl.NewAgent(rlCfg, base.Split())
			if err != nil {
				return nil, err
			}
			agents[i] = a
		}
	}
	var epsCache *rl.EpsilonCache
	if agents != nil {
		epsCache = rl.NewEpsilonCache(rlCfg.EpsilonStart, rlCfg.EpsilonEnd, rlCfg.EpsilonDecay)
		for _, a := range agents {
			a.AttachEpsilonCache(epsCache)
		}
	}

	minOp := table.Min()
	c := &Controller{
		cfg:       cfg,
		table:     table,
		pwr:       pwr,
		agents:    agents,
		linAgents: linAgents,
		codec:     codec,
		headD:     rl.MustDiscretizer(-0.5, 0.5, cfg.HeadroomBuckets),
		memD:      rl.MustDiscretizer(0, 1, cfg.MemBuckets),
		// A core's share can never usefully drop below its draw at the
		// bottom level with modest activity; initBudgets raises this to a
		// fraction of the equal split once the budget is known.
		hwFloor: pwr.CoreW(minOp.VoltageV, minOp.FreqHz, 0.2, 330),
		budgets: make([]float64, cores),
		// Reward normalisation: the fastest plausible core, ~2 IPC at fmax.
		maxIPS:   2 * table.Max().FreqHz,
		phases:   obs.NewSpanTimer(obs.PhaseLocal, obs.PhaseGlobal, obs.PhaseComm),
		dead:     make([]bool, cores),
		alive:    cores,
		epsCache: epsCache,
		reallocW: make([]float64, cores),
	}
	if cfg.WatchdogEpochs > 0 {
		c.wdLastIPS = make([]float64, cores)
		c.wdLastPowerW = make([]float64, cores)
		c.wdStale = make([]int, cores)
	}
	return c, nil
}

// Name implements ctrl.Controller.
func (c *Controller) Name() string {
	switch {
	case c.cfg.DisableRealloc:
		return "od-rl-norealloc"
	case c.cfg.FunctionApprox:
		return "od-rl-fa"
	default:
		return "od-rl"
	}
}

// Budgets returns a copy of the current per-core budget shares, exposed for
// experiments that inspect the reallocation layer.
func (c *Controller) Budgets() []float64 {
	out := make([]float64, len(c.budgets))
	copy(out, c.budgets)
	return out
}

// initBudgets splits the core-level budget equally and sets the share
// floor: the larger of the hardware floor and BudgetFloorFrac of the equal
// split (never above the split itself, so the floors always fit the total).
func (c *Controller) initBudgets(chipBudgetW float64) {
	total := c.coreBudgetTotal(chipBudgetW)
	share := total / float64(c.alive)
	for i := range c.budgets {
		c.budgets[i] = share
	}
	c.setFloor(total)
	c.lastBudget = chipBudgetW
}

// setFloor recomputes the per-core share floor for the current alive
// population and core-level budget total.
func (c *Controller) setFloor(total float64) {
	n := c.alive
	if n <= 0 {
		n = len(c.budgets)
	}
	share := total / float64(n)
	c.minBudget = c.cfg.BudgetFloorFrac * share
	if c.minBudget < c.hwFloor {
		c.minBudget = c.hwFloor
	}
	if c.minBudget > share {
		c.minBudget = share
	}
}

// retireCore permanently removes a failed core from the control domain:
// its remaining budget share is split across the survivors and the share
// floor is recomputed for the smaller population.
func (c *Controller) retireCore(i int) {
	c.dead[i] = true
	c.alive--
	freed := c.budgets[i]
	c.budgets[i] = 0
	if c.alive <= 0 {
		return
	}
	c.setFloor(c.coreBudgetTotal(c.lastBudget))
	add := freed / float64(c.alive)
	for j := range c.budgets {
		if !c.dead[j] {
			c.budgets[j] += add
		}
	}
}

// finiteOr returns x, or fallback when x is NaN or infinite — telemetry
// corrupted by sensor faults must never reach the Q-tables or the budget
// arithmetic.
func finiteOr(x, fallback float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fallback
	}
	return x
}

// coreBudgetTotal is the chip budget minus the uncore floor, never below a
// tiny positive amount so ratios stay finite even for absurd budgets.
func (c *Controller) coreBudgetTotal(chipBudgetW float64) float64 {
	t := chipBudgetW - c.pwr.UncoreW
	min := c.hwFloor * float64(len(c.budgets)) * 0.1
	if t < min {
		t = min
	}
	return t
}

// numCores returns the number of control domains.
func (c *Controller) numCores() int {
	if c.linAgents != nil {
		return len(c.linAgents)
	}
	return len(c.agents)
}

// Decide implements ctrl.Controller.
//
//odrl:hotpath
func (c *Controller) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	n := c.numCores()
	if len(tel.Cores) != n || len(out) != n {
		panic(fmt.Sprintf("core: telemetry for %d cores, out %d, controller has %d",
			len(tel.Cores), len(out), n))
	}
	if !c.started {
		c.initBudgets(budgetW)
	} else if budgetW != c.lastBudget {
		// Budget moved (e.g. a datacentre cap event): rescale every share
		// and recompute the floor for the new total.
		scale := c.coreBudgetTotal(budgetW) / c.coreBudgetTotal(c.lastBudget)
		c.setFloor(c.coreBudgetTotal(budgetW))
		for i := range c.budgets {
			if c.dead[i] {
				continue // a dead core's share stays reclaimed
			}
			c.budgets[i] *= scale
			if c.budgets[i] < c.minBudget {
				c.budgets[i] = c.minBudget
			}
		}
		c.lastBudget = budgetW
	}
	for i := range tel.Cores {
		if tel.Cores[i].Dead && !c.dead[i] {
			c.retireCore(i)
		}
	}

	// Fine-grain local phase: every agent update touches only its own
	// Q-table/weights, exploration stream and out[i] slot, so the loop
	// shards across workers with bit-identical results (claim C4: this
	// layer is embarrassingly parallel; only reallocation is global). The
	// phase span records the wall-clock of the whole sharded section.
	localStart := time.Now() //odrl:allow wallclock phase-span telemetry probe; never feeds control decisions
	// Warm the shared ε memo with the lockstep step count before any
	// worker reads it: live agents sit at epoch−1 steps (Begin consumes
	// the first epoch without learning). Agents behind a watchdog hold
	// miss the cache and compute inline, so the warm value only has to
	// match the lockstep majority.
	if c.epsCache != nil {
		s := c.epoch - 1
		if s < 0 {
			s = 0
		}
		c.epsCache.WarmAt(s)
	}
	if workers := c.localWorkers(n); workers > 1 {
		if c.pool == nil {
			c.pool = par.NewPool(workers)
			// One closure for the controller's lifetime; per-epoch inputs
			// travel through decTel/decOut so dispatch allocates nothing.
			c.decideFn = func(lo, hi int) {
				var x []float64
				if c.linAgents != nil {
					x = make([]float64, 3) // per-chunk FA state scratch
				}
				tel, out := c.decTel, c.decOut
				for i := lo; i < hi; i++ {
					out[i] = c.decideCore(i, tel, x)
				}
			}
		}
		c.decTel, c.decOut = tel, out
		c.pool.ForEachChunk(n, c.decideFn)
		c.decTel, c.decOut = nil, nil
	} else {
		if c.linAgents != nil && c.xScratch == nil {
			c.xScratch = make([]float64, 3)
		}
		for i := 0; i < n; i++ {
			out[i] = c.decideCore(i, tel, c.xScratch)
		}
	}
	c.phases.ObserveSince(spanLocal, localStart)
	c.started = true
	c.epoch++

	if a := c.cfg.ReallocEMA; a > 0 {
		if c.emaPower == nil {
			c.emaPower = make([]float64, n)
			for i := range c.emaPower {
				c.emaPower[i] = tel.Cores[i].PowerW
			}
		} else {
			for i := range c.emaPower {
				c.emaPower[i] = a*tel.Cores[i].PowerW + (1-a)*c.emaPower[i]
			}
		}
	}

	if !c.cfg.DisableRealloc && c.epoch%c.cfg.FineEpochsPerRealloc == 0 {
		globalStart := time.Now() //odrl:allow wallclock phase-span telemetry probe; never feeds control decisions
		c.reallocate(tel, budgetW)
		c.phases.ObserveSince(spanGlobal, globalStart)
	}

	if c.learnSink != nil {
		c.learnPend++
		if c.learnPend >= c.learnEvery {
			c.emitLearn(c.learnPend)
			c.learnPend = 0
		}
	}
}

// PhaseTimes implements ctrl.PhaseProfiler.
func (c *Controller) PhaseTimes() []obs.PhaseTime { return c.phases.Snapshot() }

// ResetPhaseTimes implements ctrl.PhaseProfiler.
func (c *Controller) ResetPhaseTimes() { c.phases.Reset() }

// SetSpanSink implements ctrl.SpanStreamer: phase spans stream to s as
// they complete (nil detaches).
func (c *Controller) SetSpanSink(s obs.SpanSink) { c.phases.SetSink(s) }

// reallocPower returns the power view the reallocation pass acts on.
func (c *Controller) reallocPower(tel *manycore.Telemetry, i int) float64 {
	if c.emaPower != nil {
		return c.emaPower[i]
	}
	return tel.Cores[i].PowerW
}

// localWorkers returns the goroutine count for the fine-grain phase.
func (c *Controller) localWorkers(n int) int {
	if n < parallelMinCores || c.cfg.Workers == 1 {
		return 1
	}
	return par.Workers(c.cfg.Workers, n)
}

// decideCore runs one core's fine-grain agent update and returns its next
// level. x is the FA-mode continuous-state scratch buffer (one per calling
// goroutine; unused in tabular mode). It touches only core-i state, which
// is what licenses sharding the caller's loop.
//
//odrl:hotpath
func (c *Controller) decideCore(i int, tel *manycore.Telemetry, x []float64) int {
	ct := &tel.Cores[i]
	if c.dead[i] {
		// A failed core is out of the control domain: hold the bottom
		// level and leave its agent untouched.
		return 0
	}
	if c.wdStale != nil && c.watchdogStale(i, ct) {
		// Telemetry for this core is provably stale; acting on it would
		// teach the agent from a phase that may be long gone. Fall back to
		// the lowest-power level until fresh readings return.
		return 0
	}
	if c.linAgents != nil {
		s := c.contStateOf(ct, c.budgets[i], x)
		if !c.started {
			return c.linAgents[i].Begin(s)
		}
		return c.linAgents[i].Step(c.rewardOf(ct, c.budgets[i]), s)
	}
	state := c.stateOf(ct, c.budgets[i])
	if !c.started {
		return c.agents[i].Begin(state)
	}
	return c.agents[i].Step(c.rewardOf(ct, c.budgets[i]), state)
}

// watchdogStale advances core i's watchdog and reports whether it has
// tripped. The trigger is an exactly repeated (IPS, power) pair for
// WatchdogEpochs consecutive epochs: live telemetry carries continuous
// sensor noise, so exact repeats only happen when the sensor path serves
// stale data (stuck sensor or blackout). Only core-i slots are touched,
// keeping the sharded local phase race-free.
//
//odrl:hotpath
func (c *Controller) watchdogStale(i int, ct *manycore.CoreTelemetry) bool {
	if c.started && ct.IPS == c.wdLastIPS[i] && ct.PowerW == c.wdLastPowerW[i] {
		c.wdStale[i]++
	} else {
		c.wdStale[i] = 0
	}
	c.wdLastIPS[i], c.wdLastPowerW[i] = ct.IPS, ct.PowerW
	return c.wdStale[i] >= c.cfg.WatchdogEpochs
}

// contStateOf builds the continuous state vector for FA mode into x (len
// 3); LinearAgent copies what it needs.
//
//odrl:hotpath
func (c *Controller) contStateOf(ct *manycore.CoreTelemetry, budget float64, x []float64) []float64 {
	headroom := 0.0
	if budget > 0 {
		headroom = finiteOr((budget-ct.PowerW)/budget, 0)
	}
	levels := float64(c.table.Levels() - 1)
	x[0] = headroom
	x[1] = finiteOr(ct.MemBoundedness, 0)
	x[2] = float64(ct.Level) / levels
	return x
}

// stateOf discretises one core's observation.
//
//odrl:hotpath
func (c *Controller) stateOf(ct *manycore.CoreTelemetry, budget float64) int {
	headroom := 0.0
	if budget > 0 {
		headroom = finiteOr((budget-ct.PowerW)/budget, 0)
	}
	return c.codec.Encode(
		c.headD.Bucket(headroom),
		c.memD.Bucket(finiteOr(ct.MemBoundedness, 0)),
		ct.Level,
	)
}

// rewardOf scores the epoch that just finished for one core.
//
//odrl:hotpath
func (c *Controller) rewardOf(ct *manycore.CoreTelemetry, budget float64) float64 {
	perf := finiteOr(ct.IPS/c.maxIPS, 0)
	overshoot := 0.0
	if budget > 0 && ct.PowerW > budget {
		overshoot = finiteOr((ct.PowerW-budget)/budget, 0)
	}
	r := perf - c.cfg.Lambda*overshoot
	if c.cfg.ThermalLambda > 0 && ct.TempK > c.cfg.ThermalRefK {
		r -= c.cfg.ThermalLambda * (ct.TempK - c.cfg.ThermalRefK) / 50
	}
	return r
}

// reallocate is the coarse-grain O(n) budget redistribution pass. Dead
// cores are outside the budget domain: they are skipped in every pass and
// the share floor and totals are computed over the surviving population.
//
//odrl:hotpath
func (c *Controller) reallocate(tel *manycore.Telemetry, budgetW float64) {
	n := len(c.budgets)
	alive := float64(c.alive)
	if c.alive <= 0 {
		return
	}
	total := c.coreBudgetTotal(budgetW)

	// Pass 1: harvest unprotected slack from under-consuming cores. A
	// non-finite power reading is treated as the core using its full
	// share — stale garbage must not look like harvestable slack.
	pool := 0.0
	for i := 0; i < n; i++ {
		if c.dead[i] {
			continue
		}
		used := finiteOr(c.reallocPower(tel, i), c.budgets[i])
		margin := c.cfg.ReallocMargin * c.budgets[i]
		slack := c.budgets[i] - used - margin
		if slack > 0 {
			h := c.cfg.HarvestFraction * slack
			if c.budgets[i]-h < c.minBudget {
				h = c.budgets[i] - c.minBudget
			}
			if h > 0 {
				c.budgets[i] -= h
				pool += h
			}
		}
	}
	if pool <= 0 {
		return
	}

	// Pass 2: grant the pool with weights favouring power-constrained,
	// compute-bound cores — a memory-bound core gains little from more
	// frequency, so its claim on the pool is weak. Unconstrained cores
	// keep a small weight so the distribution stays smooth rather than
	// oscillating between harvest and grant.
	weightSum := 0.0
	weights := c.reallocW
	for i := 0; i < n; i++ {
		if c.dead[i] {
			continue
		}
		used := finiteOr(c.reallocPower(tel, i), c.budgets[i])
		margin := c.cfg.ReallocMargin * c.budgets[i]
		w := 0.05
		if used >= c.budgets[i]-margin {
			w = (1 - finiteOr(tel.Cores[i].MemBoundedness, 0)) + 0.1
		}
		weights[i] = w
		weightSum += w
	}
	for i := 0; i < n; i++ {
		if c.dead[i] {
			continue
		}
		c.budgets[i] += pool * weights[i] / weightSum
	}

	// Pass 3: restore the invariant Σ budgets = total exactly while
	// respecting the per-core floor: the excess above the floor is scaled
	// proportionally so harvest arithmetic can never drift the aggregate
	// cap or starve a core below the floor.
	floorTotal := c.minBudget * alive
	if total <= floorTotal {
		share := total / alive
		for i := range c.budgets {
			if c.dead[i] {
				continue
			}
			c.budgets[i] = share
		}
		return
	}
	excessTotal := 0.0
	for i, b := range c.budgets {
		if c.dead[i] {
			continue
		}
		e := b - c.minBudget
		if e > 0 {
			excessTotal += e
		}
	}
	target := total - floorTotal
	if excessTotal <= 0 {
		share := target / alive
		for i := range c.budgets {
			if c.dead[i] {
				continue
			}
			c.budgets[i] = c.minBudget + share
		}
		return
	}
	scale := target / excessTotal
	for i := range c.budgets {
		if c.dead[i] {
			continue
		}
		e := c.budgets[i] - c.minBudget
		if e < 0 {
			e = 0
		}
		c.budgets[i] = c.minBudget + e*scale
	}
}

// CommPerEpoch implements ctrl.Controller: fine-grain decisions are purely
// local; only the reallocation pass (every K epochs) gathers telemetry and
// scatters budgets, so its cost is amortised by K.
func (c *Controller) CommPerEpoch(m *noc.Mesh) noc.Cost {
	commStart := time.Now() //odrl:allow wallclock phase-span telemetry probe; never feeds control decisions
	defer func() { c.phases.ObserveSince(spanComm, commStart) }()
	if c.cfg.DisableRealloc {
		return noc.Cost{}
	}
	g := m.GatherCost(m.Center())
	s := m.ScatterCost(m.Center())
	k := float64(c.cfg.FineEpochsPerRealloc)
	return noc.Cost{
		LatencyS: (g.LatencyS + s.LatencyS) / k,
		EnergyJ:  (g.EnergyJ + s.EnergyJ) / k,
	}
}
