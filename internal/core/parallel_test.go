package core

import (
	"testing"

	"repro/internal/manycore"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/vf"
)

// synthTel fabricates one epoch of telemetry for n cores, varied by epoch
// so agents visit many states.
func synthTel(n int, epoch int, r *rng.RNG) *manycore.Telemetry {
	table := vf.Default()
	pp := power.Default()
	tel := &manycore.Telemetry{EpochS: 1e-3, Cores: make([]manycore.CoreTelemetry, n)}
	total := pp.UncoreW
	for i := range tel.Cores {
		lvl := (i + epoch) % table.Levels()
		op := table.Point(lvl)
		mb := r.Float64()
		pw := pp.CoreW(op.VoltageV, op.FreqHz, 0.3+0.6*r.Float64(), 330)
		tel.Cores[i] = manycore.CoreTelemetry{
			Level: lvl, FreqHz: op.FreqHz, VoltageV: op.VoltageV,
			IPS: op.FreqHz / (0.8 + 2*mb), PowerW: pw,
			MemBoundedness: mb, TempK: 330,
		}
		total += pw
	}
	tel.TruePowerW, tel.ChipPowerW = total, total
	return tel
}

// decideSequence drives a fresh controller for several epochs and returns
// every decision it made.
func decideSequence(t *testing.T, cfg Config, n, epochs int) [][]int {
	t.Helper()
	c, err := New(n, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Telemetry is regenerated identically for both controllers: one RNG
	// per sequence, same seed.
	r := rng.New(123)
	budget := 1.2*float64(n) + power.Default().UncoreW
	var all [][]int
	for e := 0; e < epochs; e++ {
		tel := synthTel(n, e, r)
		out := make([]int, n)
		c.Decide(tel, budget, out)
		all = append(all, out)
	}
	return all
}

// TestDecideParallelDeterminism pins the OD-RL local phase's determinism:
// with 256 control domains the sharded agent loop must emit exactly the
// decisions the sequential loop does, in tabular and FA mode.
func TestDecideParallelDeterminism(t *testing.T) {
	const n, epochs = 256, 40
	for _, fa := range []bool{false, true} {
		seqCfg := DefaultConfig()
		seqCfg.Workers = 1
		seqCfg.FunctionApprox = fa
		parCfg := DefaultConfig()
		parCfg.Workers = 8
		parCfg.FunctionApprox = fa
		if fa {
			seqCfg.TraceLambda = 0.7
			parCfg.TraceLambda = 0.7
		}

		seq := decideSequence(t, seqCfg, n, epochs)
		parl := decideSequence(t, parCfg, n, epochs)
		for e := range seq {
			for i := range seq[e] {
				if seq[e][i] != parl[e][i] {
					t.Fatalf("fa=%v epoch %d core %d: sequential chose %d, parallel %d",
						fa, e, i, seq[e][i], parl[e][i])
				}
			}
		}
	}
}

func TestConfigRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -2
	if _, err := New(64, vf.Default(), power.Default(), cfg); err == nil {
		t.Fatal("expected error for negative Workers")
	}
}

func TestLocalWorkersThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	c, err := New(64, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.localWorkers(64); got != 1 {
		t.Fatalf("64 domains report %d local workers, want 1", got)
	}
	c2, err := New(256, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.localWorkers(256); got < 2 {
		t.Fatalf("256 domains report %d local workers, want >= 2", got)
	}
}
