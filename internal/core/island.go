package core

import (
	"fmt"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/vf"
)

// IslandController is the island-aware OD-RL variant: one RL agent per
// voltage-frequency island instead of one per core.
//
// Running per-core agents on shared islands composes badly: the island
// actuates at the max requested level, so with k cores exploring
// independently the island is pinned high whenever any one of them
// explores upward (experiment F13 quantifies the resulting overshoot).
// Aggregating each island into a single agent restores coordinated
// exploration at exactly the hardware's actuation granularity.
//
// The implementation wraps the per-core Controller: island telemetry is
// aggregated into one pseudo-core per island, the inner controller decides
// per island, and decisions fan back out to member cores.
type IslandController struct {
	inner                          *Controller
	chipW, chipH, islandW, islandH int
	islands                        [][]int // member core indices per island

	aggTel   manycore.Telemetry
	innerOut []int
}

// NewIslands builds an island-aware OD-RL controller for a chipW×chipH
// grid tiled by islandW×islandH islands.
func NewIslands(chipW, chipH, islandW, islandH int, table *vf.Table, pwr power.Params, cfg Config) (*IslandController, error) {
	if chipW <= 0 || chipH <= 0 {
		return nil, fmt.Errorf("core: invalid chip grid %dx%d", chipW, chipH)
	}
	if islandW <= 0 || islandH <= 0 {
		return nil, fmt.Errorf("core: invalid island %dx%d", islandW, islandH)
	}
	if chipW%islandW != 0 || chipH%islandH != 0 {
		return nil, fmt.Errorf("core: island %dx%d does not tile chip %dx%d",
			islandW, islandH, chipW, chipH)
	}
	perIsland := islandW * islandH
	nIslands := (chipW / islandW) * (chipH / islandH)

	inner, err := New(nIslands, table, pwr, cfg)
	if err != nil {
		return nil, err
	}
	// The inner controller's reward normalisation and budget floor are
	// per-core quantities; an island aggregates k cores.
	inner.maxIPS *= float64(perIsland)
	inner.hwFloor *= float64(perIsland)

	ic := &IslandController{
		inner:    inner,
		chipW:    chipW,
		chipH:    chipH,
		islandW:  islandW,
		islandH:  islandH,
		innerOut: make([]int, nIslands),
	}
	ic.aggTel.Cores = make([]manycore.CoreTelemetry, nIslands)
	for y0 := 0; y0 < chipH; y0 += islandH {
		for x0 := 0; x0 < chipW; x0 += islandW {
			members := make([]int, 0, perIsland)
			for dy := 0; dy < islandH; dy++ {
				for dx := 0; dx < islandW; dx++ {
					members = append(members, (y0+dy)*chipW+x0+dx)
				}
			}
			ic.islands = append(ic.islands, members)
		}
	}
	return ic, nil
}

// Name implements ctrl.Controller.
func (ic *IslandController) Name() string { return "od-rl-island" }

// Islands returns the number of control domains.
func (ic *IslandController) Islands() int { return len(ic.islands) }

// Decide implements ctrl.Controller: aggregate per island, decide, fan out.
func (ic *IslandController) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	n := ic.chipW * ic.chipH
	if len(tel.Cores) != n || len(out) != n {
		panic(fmt.Sprintf("core: telemetry for %d cores, out %d, controller expects %d",
			len(tel.Cores), len(out), n))
	}
	ic.aggTel.TimeS = tel.TimeS
	ic.aggTel.EpochS = tel.EpochS
	ic.aggTel.ChipPowerW = tel.ChipPowerW
	ic.aggTel.TruePowerW = tel.TruePowerW

	for k, members := range ic.islands {
		var ips, pw, mbWeighted, maxTemp float64
		level := 0
		for _, i := range members {
			ct := &tel.Cores[i]
			ips += ct.IPS
			pw += ct.PowerW
			mbWeighted += ct.MemBoundedness * ct.IPS
			if ct.TempK > maxTemp {
				maxTemp = ct.TempK
			}
			if ct.Level > level {
				level = ct.Level
			}
		}
		mb := 0.0
		if ips > 0 {
			mb = mbWeighted / ips
		}
		first := &tel.Cores[members[0]]
		ic.aggTel.Cores[k] = manycore.CoreTelemetry{
			Level:          level,
			FreqHz:         first.FreqHz,
			VoltageV:       first.VoltageV,
			IPS:            ips,
			PowerW:         pw,
			TempK:          maxTemp,
			MemBoundedness: mb,
		}
	}

	ic.inner.Decide(&ic.aggTel, budgetW, ic.innerOut)

	for k, members := range ic.islands {
		for _, i := range members {
			out[i] = ic.innerOut[k]
		}
	}
}

// CommPerEpoch implements ctrl.Controller. The island layer's reallocation
// gathers one message per island rather than per core; delegating to the
// inner controller on the full mesh over-charges slightly, which is the
// conservative direction.
func (ic *IslandController) CommPerEpoch(m *noc.Mesh) noc.Cost {
	return ic.inner.CommPerEpoch(m)
}

// Budgets exposes the per-island budget shares.
func (ic *IslandController) Budgets() []float64 { return ic.inner.Budgets() }
