package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// learnCapture records every batch handed to ObserveLearnEpoch, copying the
// samples (the LearnSink contract forbids retaining the buffer).
type learnCapture struct {
	every   int
	batches [][]obs.LearnCoreSample
}

func (lc *learnCapture) ObserveLearnEpoch(samples []obs.LearnCoreSample) {
	cp := make([]obs.LearnCoreSample, len(samples))
	copy(cp, samples)
	lc.batches = append(lc.batches, cp)
}

func (lc *learnCapture) LearnEmitEvery() int { return lc.every }

func TestSetLearnSinkStreamsSamples(t *testing.T) {
	const cores = 4
	c := newController(t, cores, Config{})
	tel := fakeTel(cores, 3, 1.0, 0.2)
	out := make([]int, cores)

	// Strided sink: 3 epochs at stride 2 must deliver exactly one batch
	// covering a 2-epoch window, with the third epoch left pending.
	sink := &learnCapture{every: 2}
	c.SetLearnSink(sink)
	for i := 0; i < 3; i++ {
		c.Decide(tel, 40, out)
	}
	if len(sink.batches) != 1 {
		t.Fatalf("stride-2 sink got %d batches after 3 epochs, want 1", len(sink.batches))
	}
	b := sink.batches[0]
	if len(b) != cores {
		t.Fatalf("batch has %d samples, want %d", len(b), cores)
	}
	for i, s := range b {
		if s.Dead {
			t.Fatalf("core %d reported dead on a healthy chip", i)
		}
		if s.Epochs != 2 {
			t.Fatalf("core %d window covers %d epochs, want 2", i, s.Epochs)
		}
		if s.States <= 0 || s.VisitedStates <= 0 || s.VisitedStates > s.States {
			t.Fatalf("core %d visit coverage %d/%d out of range", i, s.VisitedStates, s.States)
		}
		if s.Epsilon <= 0 || s.Epsilon > 1 {
			t.Fatalf("core %d epsilon %g out of range", i, s.Epsilon)
		}
	}

	// Detaching must flush the pending single-epoch window.
	c.SetLearnSink(nil)
	if len(sink.batches) != 2 {
		t.Fatalf("detach flushed to %d batches, want 2", len(sink.batches))
	}
	if got := sink.batches[1][0].Epochs; got != 1 {
		t.Fatalf("flushed window covers %d epochs, want 1", got)
	}

	// A sink reporting a zero stride streams one batch per epoch.
	plain := &learnCapture{}
	c.SetLearnSink(plain)
	c.Decide(tel, 40, out)
	c.Decide(tel, 40, out)
	if len(plain.batches) != 2 {
		t.Fatalf("per-epoch sink got %d batches after 2 epochs, want 2", len(plain.batches))
	}
}

func TestPolicySnapshotterRoundTrip(t *testing.T) {
	const cores = 3
	c := newController(t, cores, Config{})
	tel := fakeTel(cores, 3, 1.0, 0.2)
	out := make([]int, cores)
	for i := 0; i < 10; i++ {
		c.Decide(tel, 40, out)
	}

	nc, states, actions := c.PolicyShape()
	if nc != cores || states <= 0 || actions <= 0 {
		t.Fatalf("PolicyShape = (%d,%d,%d), want %d cores and positive dims", nc, states, actions, cores)
	}
	dst := make([]float64, nc*states*actions)
	if err := c.CopyPolicy(dst); err != nil {
		t.Fatal(err)
	}
	var nonzero bool
	for _, v := range dst {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("policy tensor is all zeros after 10 learning epochs")
	}

	if err := c.CopyPolicy(make([]float64, 1)); err == nil || !strings.Contains(err.Error(), "dst has") {
		t.Fatalf("short dst error = %v, want size mismatch", err)
	}
}

func TestLearnFunctionApproxNoTabularPolicy(t *testing.T) {
	c := newController(t, 4, Config{FunctionApprox: true})
	// No tabular agents: attaching a sink is a no-op and the policy
	// exporter reports an empty shape.
	c.SetLearnSink(&learnCapture{})
	if nc, _, _ := c.PolicyShape(); nc != 0 {
		t.Fatalf("FA mode PolicyShape cores = %d, want 0", nc)
	}
	if err := c.CopyPolicy(nil); err == nil {
		t.Fatal("FA mode CopyPolicy must refuse")
	}
}
