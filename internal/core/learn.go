package core

import (
	"fmt"

	"repro/internal/obs"
)

// This file implements the learning-introspection side of the controller:
// ctrl.LearnStreamer (per-agent sample streaming into an obs.LearnSink) and
// ctrl.PolicySnapshotter (dense policy export for content-addressed
// snapshots). Both are pure reads over agent state — attaching a sink
// enables the agents' probes, which never draw RNG or reorder updates, so
// the decision stream stays bit-identical (proven by the byte-identical
// golden tests in internal/experiments).

// SetLearnSink implements ctrl.LearnStreamer. Attaching a sink enables
// per-step introspection on every tabular agent; nil detaches the sink
// after flushing any partial emit window, so strided sinks still see every
// epoch (the probes stay on — they are observation-only and cannot be
// raced off). Sinks that implement obs.LearnStrider receive one batched
// sample set per stride instead of one per epoch. The
// function-approximation mode has no tabular probes, so attaching there is
// a no-op and the controller streams nothing.
func (c *Controller) SetLearnSink(s obs.LearnSink) {
	if c.agents == nil {
		return
	}
	if s == nil {
		if c.learnSink != nil && c.learnPend > 0 {
			c.emitLearn(c.learnPend)
			c.learnPend = 0
		}
		c.learnSink = nil
		return
	}
	for _, a := range c.agents {
		a.EnableIntrospection()
	}
	if c.learnBuf == nil {
		c.learnBuf = make([]obs.LearnCoreSample, len(c.agents))
	}
	c.learnEvery = 1
	if st, ok := s.(obs.LearnStrider); ok {
		if n := st.LearnEmitEvery(); n > 0 {
			c.learnEvery = n
		}
	}
	c.learnPend = 0
	c.learnSink = s
}

// emitLearn fills the sample buffer from the agents' probes and hands it to
// the sink; epochs is the number of control epochs the window covers.
// Called at the end of Decide, after the local phase has updated every live
// agent; the buffer is reused each emit (the LearnSink contract forbids
// retaining it).
//
//odrl:hotpath
func (c *Controller) emitLearn(epochs int) {
	states := c.codec.States()
	for i, a := range c.agents {
		s := &c.learnBuf[i]
		if c.dead[i] {
			*s = obs.LearnCoreSample{Dead: true}
			continue
		}
		p := a.LastProbe()
		s.TDError = p.TDError
		s.Epsilon = a.Epsilon()
		s.QSpread = p.QSpread
		s.GreedyChanged = a.TakeFlips() > 0
		s.ActedGreedy = p.ActedGreedy
		s.VisitedStates = a.VisitedStates()
		s.States = states
		s.Epochs = epochs
		s.Dead = false
	}
	c.learnSink.ObserveLearnEpoch(c.learnBuf)
}

// PolicyShape implements ctrl.PolicySnapshotter. FA mode has no dense
// policy tensor and reports zero cores.
func (c *Controller) PolicyShape() (cores, states, actions int) {
	if c.agents == nil {
		return 0, 0, 0
	}
	return len(c.agents), c.codec.States(), c.table.Levels()
}

// CopyPolicy implements ctrl.PolicySnapshotter: per-agent Q-tables
// concatenated core-major (for double Q-learning, the first estimator —
// matching what SavePolicy persists).
func (c *Controller) CopyPolicy(dst []float64) error {
	cores, states, actions := c.PolicyShape()
	if cores == 0 {
		return fmt.Errorf("core: %s has no exportable tabular policy", c.Name())
	}
	per := states * actions
	if len(dst) != cores*per {
		return fmt.Errorf("core: CopyPolicy dst has %d values, policy has %d", len(dst), cores*per)
	}
	for i, a := range c.agents {
		if err := a.Table().CopyTo(dst[i*per : (i+1)*per]); err != nil {
			return err
		}
	}
	return nil
}
