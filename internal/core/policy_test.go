package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/vf"
)

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	src := newController(t, 4, Config{Seed: 5})
	out := make([]int, 4)
	tel := fakeTel(4, 2, 1.0, 0.3)
	for e := 0; e < 200; e++ {
		src.Decide(tel, 30, out)
	}

	var buf bytes.Buffer
	if err := src.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newController(t, 4, Config{Seed: 99})
	if err := dst.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	// The restored tables must match the source exactly.
	for i := range src.agents {
		st, dt := src.agents[i].Table(), dst.agents[i].Table()
		for s := 0; s < st.States(); s++ {
			for a := 0; a < st.Actions(); a++ {
				if st.Get(s, a) != dt.Get(s, a) {
					t.Fatalf("agent %d Q(%d,%d) differs after restore", i, s, a)
				}
			}
		}
	}
}

func TestLoadPolicyRejectsMismatches(t *testing.T) {
	src := newController(t, 4, Config{})
	var buf bytes.Buffer
	if err := src.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	// Wrong core count.
	dst := newController(t, 8, Config{})
	if err := dst.LoadPolicy(strings.NewReader(saved)); err == nil {
		t.Fatal("expected core-count mismatch error")
	}

	// Wrong state shape (different bucket counts).
	dst2 := newController(t, 4, Config{HeadroomBuckets: 3})
	if err := dst2.LoadPolicy(strings.NewReader(saved)); err == nil {
		t.Fatal("expected shape mismatch error")
	}

	// Garbage input.
	dst3 := newController(t, 4, Config{})
	if err := dst3.LoadPolicy(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected decode error")
	}

	// Wrong version.
	bad := strings.Replace(saved, `"version":1`, `"version":9`, 1)
	if err := dst3.LoadPolicy(strings.NewReader(bad)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestWarmStartedControllerActsLikeSource(t *testing.T) {
	cfgTrained := DefaultConfig()
	cfgTrained.Seed = 7
	src := newController(t, 2, cfgTrained)
	out := make([]int, 2)
	tel := fakeTel(2, 2, 1.0, 0.2)
	for e := 0; e < 500; e++ {
		src.Decide(tel, 15, out)
	}
	var buf bytes.Buffer
	if err := src.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh controller with exploration disabled must act greedily per
	// the restored policy immediately.
	cfg := DefaultConfig()
	cfg.EpsilonStart = 1e-9
	cfg.EpsilonEnd = 1e-10
	warm, err := New(2, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	warmOut := make([]int, 2)
	warm.Decide(tel, 15, warmOut)
	for i := range warmOut {
		state := warm.stateOf(&tel.Cores[i], warm.Budgets()[i])
		if warmOut[i] != warm.agents[i].Greedy(state) {
			t.Fatalf("warm-started agent %d did not act greedily on its restored policy", i)
		}
	}
}

func TestODRLWithTraceLambda(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceLambda = 0.8
	c, err := New(4, vf.Default(), power.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 4)
	tel := fakeTel(4, 2, 1.0, 0.3)
	for e := 0; e < 100; e++ {
		c.Decide(tel, 30, out)
		for _, l := range out {
			if l < 0 || l >= vf.Default().Levels() {
				t.Fatalf("invalid level %d", l)
			}
		}
	}
}
