package obs

// This file defines the learning-introspection event vocabulary: the
// per-core sample stream a learning controller pushes into a LearnSink
// every epoch, and the aggregated JSONL events (learn, converged) the trace
// layer emits. The collector that turns samples into events lives in
// internal/obs/learn; the types sit here so the controller contract
// (internal/ctrl) and the tracer share them without importing the
// collector.

// LearnCoreSample is one core's learning state over an emit window of one
// or more control epochs, filled by the controller from its agent's
// introspection probe. The slice handed to a LearnSink is reused between
// emits and must not be retained.
type LearnCoreSample struct {
	// TDError is the raw temporal-difference error δ of the window's latest
	// update.
	TDError float64
	// Epsilon is the agent's current exploration parameter.
	Epsilon float64
	// QSpread is max−min over the most recently updated state's action
	// values.
	QSpread float64
	// GreedyChanged reports whether any update in the window flipped an
	// updated state's greedy action. The flip count is exact — the agent
	// tracks it per step even when the controller emits on a stride.
	GreedyChanged bool
	// ActedGreedy reports whether the latest action was the greedy one.
	ActedGreedy bool
	// VisitedStates and States give the agent's visit-count coverage.
	VisitedStates int
	States        int
	// Epochs is the number of control epochs this sample covers; zero is
	// read as one so per-epoch producers need not set it.
	Epochs int
	// Dead marks a core outside the control domain; its other fields are
	// zero and it is excluded from aggregates.
	Dead bool
}

// LearnSink consumes the per-core learning sample stream. ObserveLearnEpoch
// is called from the harness's sequential loop (the controller's Decide) —
// once per control epoch, or once per EmitEvery epochs when the sink asks
// for a stride — so implementations see samples in epoch order on one
// goroutine; they still guard shared state against concurrent HTTP readers.
type LearnSink interface {
	ObserveLearnEpoch(samples []LearnCoreSample)
}

// LearnStrider is optionally implemented by LearnSinks that want samples on
// a stride rather than every control epoch: the controller then batches
// LearnEmitEvery epochs per ObserveLearnEpoch call (flushing any partial
// window when the sink detaches), which keeps introspection overhead off
// the per-epoch hot path. Flip counts stay exact across the window.
type LearnStrider interface {
	LearnEmitEvery() int
}

// LearnEvent is one sampled epoch's chip-level learning telemetry. Epoch
// counts from zero at the start of the measurement window, like EpochEvent.
type LearnEvent struct {
	Epoch int     `json:"epoch"`
	TimeS float64 `json:"time_s"`
	// TDErrEMA is the smoothed mean |δ| across live agents; TDErrP99 the
	// streaming 99th percentile of per-step |δ|.
	TDErrEMA float64 `json:"td_ema"`
	TDErrP99 float64 `json:"td_p99"`
	// Epsilon is the mean exploration parameter across live agents.
	Epsilon float64 `json:"epsilon"`
	// Churn is the smoothed fraction of agents whose greedy action flipped
	// this epoch; GreedyFrac the smoothed fraction that acted greedily.
	Churn      float64 `json:"churn"`
	GreedyFrac float64 `json:"greedy_frac"`
	// Coverage is mean visited-states/states; QSpread the smoothed mean
	// action-value spread of updated states.
	Coverage float64 `json:"coverage"`
	QSpread  float64 `json:"q_spread"`
	// ConvergedFrac is the fraction of live agents the online detector has
	// declared converged.
	ConvergedFrac float64 `json:"converged_frac"`
	// IslandTDEMA is the per-island smoothed |δ|, present only on epochs
	// sampled with full detail (the EpochDetailSampler contract).
	IslandTDEMA []float64 `json:"island_td_ema,omitempty"`
}

// ConvergedEvent marks one agent crossing the convergence detector's
// criterion (greedy policy stable for K epochs and TD-error EMA below
// threshold). Epoch counts from zero at the start of the measurement window
// and is negative for convergence during warmup; EpochsToConverge counts
// learning epochs from the controller's first decision, the
// epochs-to-convergence metric of the transfer-learning literature.
type ConvergedEvent struct {
	Epoch int     `json:"epoch"`
	TimeS float64 `json:"time_s"`
	Core  int     `json:"core"`
	// EpochsToConverge is the agent's learning-epoch count at the moment the
	// detector fired.
	EpochsToConverge int `json:"epochs_to_converge"`
	// TDErrEMA and Epsilon record the agent's state at convergence.
	TDErrEMA float64 `json:"td_ema"`
	Epsilon  float64 `json:"epsilon"`
}

// LearnObserver is optionally implemented by RunObservers that want the
// learning stream: aggregated learn events on the run's sampled epochs, and
// converged events delivered unconditionally (they are rare, like faults).
type LearnObserver interface {
	ObserveLearn(ev *LearnEvent)
	ObserveConverged(ev *ConvergedEvent)
}
