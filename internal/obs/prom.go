package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PromName converts a dotted metric name ("obs.trace.decide_ns") to
// Prometheus exposition form ("obs_trace_decide_ns"): every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_'
// prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value per the exposition format (Inf/NaN have
// dedicated spellings; everything else is shortest-round-trip).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket series with le labels plus
// _sum and _count. Metric families are sorted by name so output is stable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Exposition buckets are cumulative; the registry's are per-bucket.
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
