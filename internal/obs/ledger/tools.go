package ledger

// RegisteredTools is the closed set of CLI commands that append run
// records. Every cmd/ binary except odrl-obs (the observatory reads the
// ledger; it does not write run records about itself) must be listed
// here, and the contract test in this package walks cmd/ to prove the
// registry and the tree never drift apart.
func RegisteredTools() []string {
	return []string{
		"odrl",
		"odrl-bench",
		"odrl-inspect",
		"odrl-run",
		"odrl-sweep",
		"odrl-trace",
		"odrl-verify",
		"odrl-vet",
	}
}

// IsRegisteredTool reports whether name is a ledger-writing CLI.
func IsRegisteredTool(name string) bool {
	for _, t := range RegisteredTools() {
		if t == name {
			return true
		}
	}
	return false
}
