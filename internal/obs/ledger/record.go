// Package ledger is the persistent cross-run observability layer: an
// append-only, content-addressed registry of CLI runs. Every command
// appends one structured run record — identity, provenance (scenario spec
// hash, engine version, host stamp), wall/CPU cost, end-of-run metric
// summaries, alert/fault counts and artifact pointers — to a JSONL ledger
// file, plus a per-run artifact directory for post-mortem bundles and
// benchmark reports. The observatory CLI (cmd/odrl-obs) queries it to
// list, diff, trend and regression-gate runs long after the processes
// that produced them have exited.
//
// Ledger timestamps are telemetry about the host, never inputs to
// simulation: the package is deliberately outside the deterministic path
// (odrl-vet audits its wall-clock reads instead of banning them).
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Schema is the run-record schema version. Bump it when a field changes
// meaning; decoders accept any version they can validate, and odrl-obs
// reports records whose schema it does not know rather than mis-reading
// them.
const Schema = 1

// ScenarioRef links a record to the declarative scenario engine: the spec
// content hash is the cross-run join key (identical hash ⇒ identical
// deterministic table), and CacheHit records that the engine served the
// table from its content-addressed cache instead of simulating.
type ScenarioRef struct {
	// Experiment is the canned experiment ID (T1, F1…) when the spec came
	// from the built-in set; empty for novel specs.
	Experiment string `json:"experiment,omitempty"`
	// SpecHash is the scenario spec's content address.
	SpecHash string `json:"spec_hash"`
	// EngineVersion stamps the engine that interpreted the spec.
	EngineVersion string `json:"engine_version,omitempty"`
	// CacheHit is true when the result came from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// RunSummary is the end-of-run metric summary of one simulation run
// observed by the flight recorder. Metrics derived from the deterministic
// epoch stream (bips, over_j, …) are identical across re-runs of the same
// spec; wall-clock metrics (decide_*) are host telemetry and are judged
// for regressions only when explicitly requested.
type RunSummary struct {
	Controller string  `json:"controller,omitempty"`
	Workload   string  `json:"workload,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Cores      int     `json:"cores,omitempty"`
	BudgetW    float64 `json:"budget_w,omitempty"`
	// Epochs is the observed measurement-epoch count.
	Epochs int `json:"epochs"`
	// Alerts and Faults count fired run-health alerts and injected faults.
	Alerts int `json:"alerts,omitempty"`
	Faults int `json:"faults,omitempty"`
	// Metrics is the open metric bag (see MetricDirections for the keys
	// the regression gate judges).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies the run within its record for cross-record matching.
func (s RunSummary) Key() string {
	return fmt.Sprintf("%s|%s|%d|%d", s.Controller, s.Workload, s.Seed, s.Cores)
}

// BenchPoint is one benchmark-gate number (BENCH_*.json flattened), so the
// perf trajectory is queryable across the ledger without re-parsing report
// files.
type BenchPoint struct {
	// Kind is the gate family: "par", "monitor", "learn", "step", "flight".
	Kind string `json:"kind"`
	// Case is the report's case name, Metric the field within it.
	Case   string  `json:"case"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// Artifact points at one file recorded under the run's artifact directory.
type Artifact struct {
	// Name is the path relative to the run's artifact directory.
	Name string `json:"name"`
	// Bytes and SHA256 pin the content so a later reader can detect rot.
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Record is one CLI run: the ledger's unit of appending. All fields are
// written once at commit; the Hash field is the record's content address
// (SHA-256 over the canonical JSON with Hash itself blanked), so any
// reader can verify a line has not been altered since it was appended.
type Record struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// Tool is the command that ran (a RegisteredTools entry); Args are its
	// raw command-line arguments.
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	// Start is the run's wall-clock start (RFC3339Nano, UTC); WallS and
	// CPUS its elapsed wall and process-CPU seconds. Telemetry only.
	Start string  `json:"start"`
	WallS float64 `json:"wall_s"`
	CPUS  float64 `json:"cpu_s,omitempty"`
	// Host stamps the machine; wall-clock numbers are only comparable
	// across records sharing the stamp.
	Host obsHost `json:"host"`
	// Scenarios, Runs and Bench are the run's provenance and results.
	Scenarios []ScenarioRef `json:"scenarios,omitempty"`
	Runs      []RunSummary  `json:"runs,omitempty"`
	Bench     []BenchPoint  `json:"bench,omitempty"`
	// Alerts and Faults aggregate across Runs (kept denormalised so
	// filtering does not need to walk summaries).
	Alerts int `json:"alerts,omitempty"`
	Faults int `json:"faults,omitempty"`
	// Artifacts lists files under the run's artifact directory
	// (<ledger>/runs/<id>/).
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// Status is "ok" or "failed"; Error carries the failure message.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Hash is the record's content address.
	Hash string `json:"hash"`
}

// obsHost aliases the shared host stamp (the same obs.Host every
// BENCH_*.json report embeds) so host comparisons across ledger records
// and benchmark reports are type-identical.
type obsHost = obs.Host

// StatusOK and StatusFailed are the only valid Status values.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Validate reports the first structural defect that would make the record
// unusable to the observatory.
func (r Record) Validate() error {
	switch {
	case r.Schema <= 0:
		return fmt.Errorf("ledger: record %q: missing schema", r.ID)
	case r.ID == "":
		return fmt.Errorf("ledger: record without id")
	case r.Tool == "":
		return fmt.Errorf("ledger: record %q: missing tool", r.ID)
	case r.Start == "":
		return fmt.Errorf("ledger: record %q: missing start time", r.ID)
	case r.WallS < 0:
		return fmt.Errorf("ledger: record %q: negative wall time %g", r.ID, r.WallS)
	case r.Status != StatusOK && r.Status != StatusFailed:
		return fmt.Errorf("ledger: record %q: invalid status %q", r.ID, r.Status)
	case r.Status == StatusFailed && r.Error == "":
		return fmt.Errorf("ledger: record %q: failed without error", r.ID)
	}
	for i, s := range r.Runs {
		if s.Epochs < 0 {
			return fmt.Errorf("ledger: record %q: run %d: negative epoch count", r.ID, i)
		}
	}
	for i, a := range r.Artifacts {
		if a.Name == "" {
			return fmt.Errorf("ledger: record %q: artifact %d without name", r.ID, i)
		}
	}
	return nil
}

// canonicalize round-trips the record through JSON so string fields are
// valid UTF-8. Marshal escapes an invalid byte as � but re-marshals
// the decoded replacement rune as raw bytes — without this pass, a record
// written with a non-UTF-8 arg would fail its own hash check on read
// (found by FuzzRunRecord).
func canonicalize(r Record) (Record, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return Record{}, fmt.Errorf("ledger: canonicalizing record: %w", err)
	}
	var c Record
	if err := json.Unmarshal(b, &c); err != nil {
		return Record{}, fmt.Errorf("ledger: canonicalizing record: %w", err)
	}
	return c, nil
}

// ContentHash computes the record's content address: SHA-256 over the
// canonical JSON encoding with the Hash field blanked. encoding/json
// sorts map keys, so the encoding — and therefore the address — is a pure
// function of the record's content.
func (r Record) ContentHash() (string, error) {
	c, err := canonicalize(r)
	if err != nil {
		return "", err
	}
	c.Hash = ""
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("ledger: hashing record: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// VerifyHash recomputes the content address and reports a mismatch — the
// ledger-integrity check odrl-obs runs before trusting a line.
func (r Record) VerifyHash() error {
	want, err := r.ContentHash()
	if err != nil {
		return err
	}
	if r.Hash != want {
		return fmt.Errorf("ledger: record %q: content hash mismatch (stored %s, computed %s)", r.ID, r.Hash, want)
	}
	return nil
}

// MarshalLine encodes the record as one ledger line (no trailing newline),
// filling Hash first. The canonical form is what gets written, so the
// stored bytes are exactly what a reader will re-derive the hash from.
func (r Record) MarshalLine() ([]byte, error) {
	c, err := canonicalize(r)
	if err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	h, err := c.ContentHash()
	if err != nil {
		return nil, err
	}
	c.Hash = h
	return json.Marshal(c)
}

// DecodeRecord parses one ledger line. Unknown fields are rejected so a
// schema drift surfaces as a decode error instead of silent data loss.
func DecodeRecord(line []byte) (Record, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var r Record
	if err := dec.Decode(&r); err != nil {
		return Record{}, fmt.Errorf("ledger: decoding record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// SortedMetricNames returns the union of metric keys across the record's
// run summaries, sorted — the stable iteration order every renderer uses.
func (r Record) SortedMetricNames() []string {
	seen := map[string]bool{}
	for _, s := range r.Runs {
		for k := range s.Metrics {
			seen[k] = true
		}
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
