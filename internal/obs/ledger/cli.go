package ledger

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// CLI is one command's ledger session: it owns the run record being
// accumulated, the flight recorder whose bundles land in the run's
// artifact directory, and the final append. Every cmd/ binary builds one
// at startup (StartCLI) and finishes it on every exit path (Finish).
//
// A nil *CLI is valid and inert — the -no-ledger path costs a handful of
// nil checks, mirroring the monitor/learn CLI glue idiom.
type CLI struct {
	led   *Ledger
	rec   *flight.Recorder
	start time.Time

	mu       sync.Mutex
	record   Record
	finished bool
}

// StartCLI opens the ledger for one command run and returns the session,
// or nil when disabled. dir is the resolved ledger directory (see
// ResolveDir); disabled is the -no-ledger flag. Ledger problems are
// reported to stderr and disable the session rather than failing the run:
// bookkeeping must never take down the work it documents.
func StartCLI(tool string, args []string, dir string, disabled bool) *CLI {
	if disabled || dir == "" {
		return nil
	}
	led, err := Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: ledger disabled: %v\n", err)
		return nil
	}
	//odrl:allow wallclock the run record's start/wall/CPU stamps are host telemetry, never simulation inputs
	start := time.Now()
	c := &CLI{
		led:   led,
		start: start,
		record: Record{
			Schema: Schema,
			ID:     NewID(start),
			Tool:   tool,
			Args:   append([]string(nil), args...),
			Start:  start.UTC().Format(time.RFC3339Nano),
			Host:   obs.HostInfo(),
			Status: StatusOK,
		},
	}
	c.rec = flight.New(flight.Options{
		OnDump:   c.onDump,
		OnRunEnd: c.onRunEnd,
	})
	notifySigquit(c)
	return c
}

// Recorder returns the session's flight recorder (nil-safe).
func (c *CLI) Recorder() *flight.Recorder {
	if c == nil {
		return nil
	}
	return c.rec
}

// WrapObserver chains the flight recorder in front of next, so every run
// the command starts is post-mortem-dumpable. Nil-safe: with no session,
// next passes through untouched.
func (c *CLI) WrapObserver(next obs.Observer) obs.Observer {
	if c == nil {
		return next
	}
	return c.rec.Wrap(next)
}

// SpanSink returns the recorder's timeline for the harness's span tee
// (nil-safe, typed nil-free).
func (c *CLI) SpanSink() obs.SpanSink {
	if c == nil {
		return nil
	}
	return c.rec.Timeline()
}

// RunID returns the session's run ID ("" when disabled).
func (c *CLI) RunID() string {
	if c == nil {
		return ""
	}
	return c.record.ID
}

// Dir returns the ledger directory ("" when disabled).
func (c *CLI) Dir() string {
	if c == nil {
		return ""
	}
	return c.led.Dir()
}

// RecordScenario links the run record to a scenario spec: the hash is the
// cross-run join key; cacheHit notes the engine served the cached table.
func (c *CLI) RecordScenario(experiment, specHash, engineVersion string, cacheHit bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record.Scenarios = append(c.record.Scenarios, ScenarioRef{
		Experiment:    experiment,
		SpecHash:      specHash,
		EngineVersion: engineVersion,
		CacheHit:      cacheHit,
	})
}

// AddBenchPoint records one benchmark-gate number, making BENCH_*.json
// content queryable across the ledger.
func (c *CLI) AddBenchPoint(kind, caseName, metric string, value float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record.Bench = append(c.record.Bench, BenchPoint{Kind: kind, Case: caseName, Metric: metric, Value: value})
}

// AddArtifact stores data under the run's artifact directory and records
// the pointer. Errors are reported to stderr, never fatal.
func (c *CLI) AddArtifact(name string, data []byte) {
	if c == nil {
		return
	}
	art, err := c.led.WriteArtifact(c.record.ID, name, data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: ledger artifact %s: %v\n", name, err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record.Artifacts = append(c.record.Artifacts, art)
}

// onRunEnd folds one finished run's flight summary into the record.
func (c *CLI) onRunEnd(_ int, s flight.Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record.Runs = append(c.record.Runs, RunSummary{
		Controller: s.Meta.Controller,
		Workload:   s.Meta.Workload,
		Seed:       s.Meta.Seed,
		Cores:      s.Meta.Cores,
		BudgetW:    s.Meta.BudgetW,
		Epochs:     s.Epochs,
		Alerts:     s.Alerts,
		Faults:     s.Faults,
		Metrics:    s.Metrics,
	})
	c.record.Alerts += s.Alerts
	c.record.Faults += s.Faults
}

// onDump lands a flight post-mortem bundle in the run's artifact
// directory, named by run sequence so concurrent runs never collide.
func (c *CLI) onDump(runSeq int, _ obs.RunMeta, trigger string, files []flight.BundleFile) {
	for _, f := range files {
		c.AddArtifact(fmt.Sprintf("run%03d/%s", runSeq, f.Name), f.Data)
	}
	fmt.Fprintf(os.Stderr, "flight: %s post-mortem for run %d -> %s\n",
		trigger, runSeq, c.led.runArtifactHint(c.record.ID, runSeq))
}

// runArtifactHint renders the human-facing bundle location for stderr.
func (l *Ledger) runArtifactHint(id string, runSeq int) string {
	return fmt.Sprintf("%s/%s/%s/run%03d/flight/", l.dir, RunsDirName, id, runSeq)
}

// Finish closes the session: on failure it dumps post-mortem bundles for
// every retained run, then stamps wall/CPU time and appends the record.
// Idempotent — mains defer it and also call it on early-exit paths.
func (c *CLI) Finish(runErr error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	c.finished = true
	c.mu.Unlock()

	if runErr != nil {
		c.rec.DumpAll("failed")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	//odrl:allow wallclock elapsed wall/CPU stamps are run-record telemetry, not simulation inputs
	c.record.WallS = time.Since(c.start).Seconds()
	c.record.CPUS = obs.CPUSeconds()
	if runErr != nil {
		c.record.Status = StatusFailed
		c.record.Error = runErr.Error()
	}
	if err := c.led.Append(c.record); err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
	}
}
