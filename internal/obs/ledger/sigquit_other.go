//go:build !unix

package ledger

// notifySigquit is a no-op off Unix (no SIGQUIT to catch).
func notifySigquit(*CLI) {}
