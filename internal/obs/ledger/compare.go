package ledger

import (
	"fmt"
	"sort"
	"strings"
)

// Metric directions for regression judgement. HigherBetter regresses when
// the candidate drops, LowerBetter when it rises; Informational metrics
// are reported but never flagged.
const (
	HigherBetter  = +1
	LowerBetter   = -1
	Informational = 0
)

// metricClass describes one judged metric: its direction and whether it
// is derived from wall-clock time (host-dependent, judged only on
// explicit request — identical-spec re-runs may jitter on these, and the
// observatory's default must be "identical spec ⇒ zero regressions").
type metricClass struct {
	direction int
	wallClock bool
}

// metricClasses is the judged-metric registry. Metrics not listed are
// treated as informational, so an experimental metric never gates CI by
// accident.
var metricClasses = map[string]metricClass{
	"bips":           {HigherBetter, false},
	"bips_per_w":     {HigherBetter, false},
	"over_j":         {LowerBetter, false},
	"over_time_frac": {LowerBetter, false},
	"mean_w":         {Informational, false},
	"peak_w":         {Informational, false},
	"max_temp_k":     {Informational, false},
	"decide_p50_ns":  {LowerBetter, true},
	"decide_p99_ns":  {LowerBetter, true},
}

// MetricDirection returns the judgement direction for a metric name.
func MetricDirection(name string) int { return metricClasses[name].direction }

// MetricIsWallClock reports whether the metric is host-dependent.
func MetricIsWallClock(name string) bool { return metricClasses[name].wallClock }

// Delta is one metric comparison between a baseline and candidate run.
type Delta struct {
	// RunKey identifies the matched run pair (RunSummary.Key()).
	RunKey string
	Metric string
	Base   float64
	Cand   float64
	// RelChange is (cand-base)/|base|; 0 when base is 0.
	RelChange float64
	// Judged is true when the metric has a direction and was eligible
	// (wall-clock metrics only when requested); Regressed flags a judged
	// change beyond the threshold in the bad direction.
	Judged    bool
	Regressed bool
}

// String renders the delta for terminal output.
func (d Delta) String() string {
	mark := " "
	if d.Regressed {
		mark = "!"
	}
	return fmt.Sprintf("%s %-16s %-28s %12.6g -> %12.6g  (%+.2f%%)",
		mark, d.Metric, d.RunKey, d.Base, d.Cand, d.RelChange*100)
}

// CompareOptions tunes Compare.
type CompareOptions struct {
	// Threshold is the relative change beyond which a judged metric
	// regresses (e.g. 0.05 = 5%).
	Threshold float64
	// WallClock includes host-dependent metrics (decide_*) in judgement.
	// Off by default: deterministic metrics are bit-identical across
	// identical-spec runs, wall-clock ones are not.
	WallClock bool
}

// Compare diffs the run summaries of two records, matching runs by
// (controller, workload, seed, cores) key, and judges each shared metric.
// Runs present on only one side are reported via the second return value.
func Compare(base, cand Record, opts CompareOptions) ([]Delta, []string) {
	baseRuns := map[string]RunSummary{}
	for _, s := range base.Runs {
		baseRuns[s.Key()] = s
	}
	var deltas []Delta
	var notes []string
	seen := map[string]bool{}
	for _, cs := range cand.Runs {
		key := cs.Key()
		seen[key] = true
		bs, ok := baseRuns[key]
		if !ok {
			notes = append(notes, fmt.Sprintf("run %s only in candidate %s", key, cand.ID))
			continue
		}
		deltas = append(deltas, compareRun(key, bs, cs, opts)...)
	}
	for key := range baseRuns {
		if !seen[key] {
			notes = append(notes, fmt.Sprintf("run %s only in baseline %s", key, base.ID))
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].RunKey != deltas[j].RunKey {
			return deltas[i].RunKey < deltas[j].RunKey
		}
		return deltas[i].Metric < deltas[j].Metric
	})
	sort.Strings(notes)
	return deltas, notes
}

func compareRun(key string, bs, cs RunSummary, opts CompareOptions) []Delta {
	names := map[string]bool{}
	for k := range bs.Metrics {
		names[k] = true
	}
	for k := range cs.Metrics {
		names[k] = true
	}
	var out []Delta
	for name := range names {
		bv, bok := bs.Metrics[name]
		cv, cok := cs.Metrics[name]
		if !bok || !cok {
			continue
		}
		d := Delta{RunKey: key, Metric: name, Base: bv, Cand: cv}
		if bv != 0 {
			d.RelChange = (cv - bv) / abs(bv)
		} else if cv != 0 {
			d.RelChange = 1
		}
		cls := metricClasses[name]
		if cls.direction != Informational && (!cls.wallClock || opts.WallClock) {
			d.Judged = true
			switch cls.direction {
			case HigherBetter:
				d.Regressed = d.RelChange < -opts.Threshold
			case LowerBetter:
				d.Regressed = d.RelChange > opts.Threshold
			}
		}
		out = append(out, d)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Regressions filters the regressed deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// JudgedMetricNames lists the judged (non-informational) metrics, for
// help text and docs.
func JudgedMetricNames() string {
	var names []string
	for k, c := range metricClasses {
		if c.direction != Informational {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
