//go:build unix

package ledger

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// notifySigquit arms the operator post-mortem trigger: SIGQUIT makes the
// session's flight recorder dump bundles for every retained run into the
// ledger, and the process keeps running — the operator asked for evidence,
// not an exit. (Go's default SIGQUIT stack dump is replaced for this
// process; SIGABRT still produces one.)
func notifySigquit(c *CLI) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			fmt.Fprintln(os.Stderr, "ledger: SIGQUIT received, dumping flight bundles")
			c.rec.DumpAll("sigquit")
		}
	}()
}
