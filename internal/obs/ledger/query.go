package ledger

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Filter selects records; zero fields match everything. String fields
// match exactly except SpecHash, which matches any record whose scenario
// list contains a hash with the given prefix (so operators can paste the
// short form odrl-run prints).
type Filter struct {
	Tool       string
	SpecHash   string
	Experiment string
	Status     string
}

// Match reports whether the record passes the filter.
func (f Filter) Match(r Record) bool {
	if f.Tool != "" && r.Tool != f.Tool {
		return false
	}
	if f.Status != "" && r.Status != f.Status {
		return false
	}
	if f.SpecHash != "" && !hasSpecHash(r, f.SpecHash) {
		return false
	}
	if f.Experiment != "" && !hasExperiment(r, f.Experiment) {
		return false
	}
	return true
}

func hasSpecHash(r Record, prefix string) bool {
	for _, s := range r.Scenarios {
		if strings.HasPrefix(s.SpecHash, prefix) {
			return true
		}
	}
	return false
}

func hasExperiment(r Record, exp string) bool {
	for _, s := range r.Scenarios {
		if s.Experiment == exp {
			return true
		}
	}
	return false
}

// Read loads and verifies every record in the ledger, in append order.
// Lines that fail to decode or whose content hash does not match are
// returned as errors alongside the good records, so one corrupt line
// never hides the rest of the history.
func Read(dir string) ([]Record, []error) {
	f, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, []error{fmt.Errorf("ledger: opening %s: %w", dir, err)}
	}
	defer f.Close()

	var recs []Record
	var errs []error
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		r, err := DecodeRecord(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			continue
		}
		if err := r.VerifyHash(); err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("ledger: scanning %s: %w", dir, err))
	}
	return recs, errs
}

// Select returns the records matching the filter, in append order.
func Select(recs []Record, f Filter) []Record {
	var out []Record
	for _, r := range recs {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

// Latest returns the last appended record matching the filter, or false.
func Latest(recs []Record, f Filter) (Record, bool) {
	for i := len(recs) - 1; i >= 0; i-- {
		if f.Match(recs[i]) {
			return recs[i], true
		}
	}
	return Record{}, false
}

// ByID finds a record by full ID or unique prefix. An ambiguous prefix is
// an error: guessing between runs would silently compare the wrong pair.
func ByID(recs []Record, id string) (Record, error) {
	var found []Record
	for _, r := range recs {
		if r.ID == id {
			return r, nil
		}
		if strings.HasPrefix(r.ID, id) {
			found = append(found, r)
		}
	}
	switch len(found) {
	case 0:
		return Record{}, fmt.Errorf("ledger: no record with id %q", id)
	case 1:
		return found[0], nil
	default:
		ids := make([]string, len(found))
		for i, r := range found {
			ids[i] = r.ID
		}
		sort.Strings(ids)
		return Record{}, fmt.Errorf("ledger: id prefix %q is ambiguous: %s", id, strings.Join(ids, ", "))
	}
}

// baselineFileName stores the pinned regression baseline inside the
// ledger directory.
const baselineFileName = "baseline.json"

// Baseline pins one record as the regression reference for odrl-obs
// -check. PinnedAt is informational.
type Baseline struct {
	ID       string `json:"id"`
	PinnedAt string `json:"pinned_at,omitempty"`
}

// WriteBaseline pins a record ID as the ledger's regression baseline.
func WriteBaseline(dir string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("ledger: encoding baseline: %w", err)
	}
	path := filepath.Join(dir, baselineFileName)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("ledger: writing baseline: %w", err)
	}
	return nil
}

// ReadBaseline loads the pinned baseline; ok is false when none is set.
func ReadBaseline(dir string) (Baseline, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, baselineFileName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Baseline{}, false, nil
		}
		return Baseline{}, false, fmt.Errorf("ledger: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, false, fmt.Errorf("ledger: decoding baseline: %w", err)
	}
	if b.ID == "" {
		return Baseline{}, false, fmt.Errorf("ledger: baseline file has no id")
	}
	return b, true, nil
}
