package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCLIContract is the ledger contract: every registered CLI run path —
// success and failure — emits exactly one valid, decodable, hash-verified
// run record through the shared glue.
func TestCLIContract(t *testing.T) {
	for _, tool := range RegisteredTools() {
		for _, fail := range []bool{false, true} {
			name := tool
			if fail {
				name += "/failed"
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				c := StartCLI(tool, []string{"-quick"}, dir, false)
				if c == nil {
					t.Fatal("session disabled unexpectedly")
				}
				// Drive one observed run through the glue's flight recorder,
				// the way sim.Run does.
				ro := c.WrapObserver(nil).BeginRun(obs.RunMeta{
					Controller: "od-rl", Workload: "mixed", Cores: 64, BudgetW: 90, EpochS: 1e-3, Seed: 7,
				})
				for e := 0; e < 10; e++ {
					ro.ShouldSample(e)
					ro.ObserveEpoch(&obs.EpochEvent{Epoch: e, PowerW: 88, BudgetW: 90, IPS: 40e9, DecideNs: 1500})
				}
				ro.End()
				var runErr error
				if fail {
					runErr = errors.New("synthetic failure")
				}
				c.Finish(runErr)
				c.Finish(runErr) // idempotent: the deferred + explicit call pattern

				recs, errs := Read(dir)
				if len(errs) > 0 {
					t.Fatalf("invalid records: %v", errs)
				}
				if len(recs) != 1 {
					t.Fatalf("got %d records, want exactly 1", len(recs))
				}
				r := recs[0]
				if r.Tool != tool {
					t.Fatalf("tool %q, want %q", r.Tool, tool)
				}
				if len(r.Runs) != 1 || r.Runs[0].Epochs != 10 || r.Runs[0].Metrics["bips"] != 40 {
					t.Fatalf("run summary: %+v", r.Runs)
				}
				if r.WallS < 0 || r.Start == "" || r.Host.GoVersion == "" {
					t.Fatalf("stamps: %+v", r)
				}
				wantStatus, wantDump := StatusOK, false
				if fail {
					wantStatus, wantDump = StatusFailed, true
				}
				if r.Status != wantStatus {
					t.Fatalf("status %q, want %q", r.Status, wantStatus)
				}
				// A failed run must leave a post-mortem bundle in the run dir.
				gotDump := false
				for _, a := range r.Artifacts {
					if strings.Contains(a.Name, "flight/failed/epochs.jsonl") {
						gotDump = true
						path := filepath.Join(dir, RunsDirName, r.ID, filepath.FromSlash(a.Name))
						if _, err := os.Stat(path); err != nil {
							t.Fatalf("artifact pointer dangles: %v", err)
						}
					}
				}
				if gotDump != wantDump {
					t.Fatalf("failure dump present=%v, want %v (artifacts: %+v)", gotDump, wantDump, r.Artifacts)
				}
			})
		}
	}
}

// TestToolRegistryMatchesCmdTree pins the registry to the cmd/ tree:
// every binary except odrl-obs writes run records, and a new cmd must
// either register or be exempted here explicitly.
func TestToolRegistryMatchesCmdTree(t *testing.T) {
	entries, err := os.ReadDir("../../../cmd")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, tool := range RegisteredTools() {
		want[tool] = true
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		seen[name] = true
		if name == "odrl-obs" {
			// The observatory reads the ledger; it records no runs about
			// itself (watching the watcher adds a record per query).
			if IsRegisteredTool(name) {
				t.Fatalf("odrl-obs must not be a ledger-writing tool")
			}
			continue
		}
		if !IsRegisteredTool(name) {
			t.Errorf("cmd/%s is not in ledger.RegisteredTools(): register it (or exempt it here with a reason)", name)
		}
	}
	for tool := range want {
		if !seen[tool] {
			t.Errorf("registered tool %q has no cmd/%s directory", tool, tool)
		}
	}
}

func TestStartCLIDisabled(t *testing.T) {
	if c := StartCLI("odrl", nil, t.TempDir(), true); c != nil {
		t.Fatal("-no-ledger must disable the session")
	}
	var c *CLI
	// The nil session must be inert across the whole surface.
	if c.WrapObserver(nil) != nil || c.SpanSink() != nil || c.RunID() != "" || c.Dir() != "" {
		t.Fatal("nil CLI not inert")
	}
	c.RecordScenario("T1", "hash", "v1", false)
	c.AddBenchPoint("flight", "case", "overhead_frac", 0.01)
	c.AddArtifact("x", nil)
	c.Finish(nil)
}

func TestResolveDir(t *testing.T) {
	t.Setenv(EnvDir, "")
	if got := ResolveDir("explicit"); got != "explicit" {
		t.Fatal(got)
	}
	if got := ResolveDir(""); got != DefaultDir {
		t.Fatal(got)
	}
	t.Setenv(EnvDir, "/tmp/env-ledger")
	if got := ResolveDir(""); got != "/tmp/env-ledger" {
		t.Fatal(got)
	}
	if got := ResolveDir("explicit"); got != "explicit" {
		t.Fatal(got)
	}
}

func TestCLIScenarioAndBench(t *testing.T) {
	dir := t.TempDir()
	c := StartCLI("odrl-bench", []string{"-experiment", "T1"}, dir, false)
	c.RecordScenario("T1", "cafe0123", "odrl-scenario-v1", true)
	c.AddBenchPoint("flight", "od-rl/64c", "overhead_frac", 0.012)
	c.AddArtifact("BENCH_flight.json", []byte(`{"ok":true}`))
	c.Finish(nil)

	recs, errs := Read(dir)
	if len(errs) > 0 || len(recs) != 1 {
		t.Fatalf("recs=%d errs=%v", len(recs), errs)
	}
	r := recs[0]
	if len(r.Scenarios) != 1 || !r.Scenarios[0].CacheHit || r.Scenarios[0].SpecHash != "cafe0123" {
		t.Fatalf("scenarios: %+v", r.Scenarios)
	}
	if len(r.Bench) != 1 || r.Bench[0].Metric != "overhead_frac" {
		t.Fatalf("bench: %+v", r.Bench)
	}
	if len(r.Artifacts) != 1 || r.Artifacts[0].Name != "BENCH_flight.json" {
		t.Fatalf("artifacts: %+v", r.Artifacts)
	}
}
