package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"
)

func testRecord(id, tool string) Record {
	return Record{
		Schema: Schema,
		ID:     id,
		Tool:   tool,
		Start:  "2026-01-02T03:04:05Z",
		WallS:  1.25,
		Host:   obsHost{HostCPUs: 4, GOMAXPROCS: 4, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"},
		Scenarios: []ScenarioRef{
			{Experiment: "T1", SpecHash: "abc123def456", EngineVersion: "odrl-scenario-v1"},
		},
		Runs: []RunSummary{{
			Controller: "od-rl",
			Workload:   "mixed",
			Seed:       7,
			Cores:      64,
			BudgetW:    90,
			Epochs:     500,
			Metrics:    map[string]float64{"bips": 42.5, "over_j": 1.5, "decide_p99_ns": 8000},
		}},
		Status: StatusOK,
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord("20260102T030405-aaaaaaaaaa", "odrl-run")
	if err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	recs, errs := Read(dir)
	if len(errs) > 0 {
		t.Fatalf("read errors: %v", errs)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	got := recs[0]
	if got.ID != want.ID || got.Tool != want.Tool || got.Runs[0].Metrics["bips"] != 42.5 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Hash == "" {
		t.Fatal("appended record has no content hash")
	}
	if err := got.VerifyHash(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord("20260102T030405-bbbbbbbbbb", "odrl")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "42.5", "99.9", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(l.Path(), []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, errs := Read(dir)
	if len(recs) != 0 {
		t.Fatalf("tampered record accepted: %+v", recs)
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "hash mismatch") {
		t.Fatalf("want one hash-mismatch error, got %v", errs)
	}
}

// TestLedgerConcurrentWriters is the race hammer CI runs with -race: many
// goroutines append to one ledger file through separate handles and every
// line must come out whole and verifiable.
func TestLedgerConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const writers = 16
	const perWriter = 25
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l, err := Open(dir)
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < perWriter; i++ {
				r := testRecord(fmt.Sprintf("20260102T030405-w%02di%03d", w, i), "odrl-sweep")
				if err := l.Append(r); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	recs, errs := Read(dir)
	if len(errs) > 0 {
		t.Fatalf("interleaved/corrupt lines after concurrent append: %v", errs)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(recs), writers*perWriter)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate record id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestFilterAndLatest(t *testing.T) {
	a := testRecord("20260102T030405-aaaaaaaaaa", "odrl-run")
	b := testRecord("20260102T030406-bbbbbbbbbb", "odrl-bench")
	b.Scenarios[0].Experiment = "F18"
	b.Scenarios[0].SpecHash = "feedbeef0123"
	c := testRecord("20260102T030407-cccccccccc", "odrl-run")
	c.Status = StatusFailed
	c.Error = "boom"
	recs := []Record{a, b, c}

	if got := Select(recs, Filter{Tool: "odrl-run"}); len(got) != 2 {
		t.Fatalf("tool filter: got %d, want 2", len(got))
	}
	if got := Select(recs, Filter{Experiment: "F18"}); len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("experiment filter: %+v", got)
	}
	if got := Select(recs, Filter{SpecHash: "feedbeef"}); len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("spec-hash prefix filter: %+v", got)
	}
	if got := Select(recs, Filter{Status: StatusFailed}); len(got) != 1 || got[0].ID != c.ID {
		t.Fatalf("status filter: %+v", got)
	}
	last, ok := Latest(recs, Filter{Tool: "odrl-run", Status: StatusOK})
	if !ok || last.ID != a.ID {
		t.Fatalf("latest: got %v %v", last.ID, ok)
	}
}

func TestByIDPrefix(t *testing.T) {
	recs := []Record{
		testRecord("20260102T030405-aaaaaaaaaa", "odrl"),
		testRecord("20260102T030406-bbbbbbbbbb", "odrl"),
	}
	if r, err := ByID(recs, "20260102T030405"); err != nil || r.ID != recs[0].ID {
		t.Fatalf("unique prefix: %v %v", r.ID, err)
	}
	if _, err := ByID(recs, "20260102T03040"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous prefix not rejected: %v", err)
	}
	if _, err := ByID(recs, "nope"); err == nil {
		t.Fatal("unknown id not rejected")
	}
}

func TestBaselinePin(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadBaseline(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	want := Baseline{ID: "20260102T030405-aaaaaaaaaa", PinnedAt: "2026-01-03T00:00:00Z"}
	if err := WriteBaseline(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadBaseline(dir)
	if err != nil || !ok || got.ID != want.ID {
		t.Fatalf("baseline round-trip: %+v ok=%v err=%v", got, ok, err)
	}
}

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	art, err := l.WriteArtifact("run1", "flight/epochs.jsonl", []byte("line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if art.Bytes != 5 || art.SHA256 == "" {
		t.Fatalf("artifact stamp: %+v", art)
	}
	data, err := os.ReadFile(filepath.Join(dir, RunsDirName, "run1", "flight", "epochs.jsonl"))
	if err != nil || string(data) != "line\n" {
		t.Fatalf("artifact content: %q %v", data, err)
	}
}

func TestNewIDSortableAndUnique(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID(t0)
		if !strings.HasPrefix(id, "20260102T030405-") {
			t.Fatalf("id %q lacks sortable timestamp prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	later := NewID(t0.Add(2 * time.Second))
	if !(NewID(t0) < later) {
		t.Fatal("ids not chronologically sortable")
	}
}

func TestValidateRejectsDefects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"no schema", func(r *Record) { r.Schema = 0 }},
		{"no id", func(r *Record) { r.ID = "" }},
		{"no tool", func(r *Record) { r.Tool = "" }},
		{"no start", func(r *Record) { r.Start = "" }},
		{"negative wall", func(r *Record) { r.WallS = -1 }},
		{"bad status", func(r *Record) { r.Status = "maybe" }},
		{"failed without error", func(r *Record) { r.Status = StatusFailed; r.Error = "" }},
		{"negative epochs", func(r *Record) { r.Runs[0].Epochs = -1 }},
		{"unnamed artifact", func(r *Record) { r.Artifacts = []Artifact{{}} }},
	}
	for _, tc := range cases {
		r := testRecord("20260102T030405-aaaaaaaaaa", "odrl")
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: defect not rejected", tc.name)
		}
	}
}

func TestCompare(t *testing.T) {
	base := testRecord("20260102T030405-aaaaaaaaaa", "odrl-run")
	cand := testRecord("20260102T030406-bbbbbbbbbb", "odrl-run")

	t.Run("identical runs: zero regressions", func(t *testing.T) {
		deltas, notes := Compare(base, cand, CompareOptions{Threshold: 0.05})
		if len(notes) != 0 {
			t.Fatalf("unexpected notes: %v", notes)
		}
		if regs := Regressions(deltas); len(regs) != 0 {
			t.Fatalf("identical runs regressed: %v", regs)
		}
	})

	t.Run("seeded bips slowdown regresses", func(t *testing.T) {
		slow := cand
		slow.Runs = []RunSummary{cand.Runs[0]}
		slow.Runs[0].Metrics = map[string]float64{"bips": 42.5 * 0.8, "over_j": 1.5}
		deltas, _ := Compare(base, slow, CompareOptions{Threshold: 0.05})
		regs := Regressions(deltas)
		if len(regs) != 1 || regs[0].Metric != "bips" {
			t.Fatalf("want one bips regression, got %v", regs)
		}
	})

	t.Run("wall-clock metrics excluded by default", func(t *testing.T) {
		slow := cand
		slow.Runs = []RunSummary{cand.Runs[0]}
		slow.Runs[0].Metrics = map[string]float64{"bips": 42.5, "decide_p99_ns": 80000}
		deltas, _ := Compare(base, slow, CompareOptions{Threshold: 0.05})
		if regs := Regressions(deltas); len(regs) != 0 {
			t.Fatalf("wall-clock metric judged without opt-in: %v", regs)
		}
		deltas, _ = Compare(base, slow, CompareOptions{Threshold: 0.05, WallClock: true})
		regs := Regressions(deltas)
		if len(regs) != 1 || regs[0].Metric != "decide_p99_ns" {
			t.Fatalf("wall-clock opt-in: want decide_p99_ns regression, got %v", regs)
		}
	})

	t.Run("lower-better metric regresses upward", func(t *testing.T) {
		worse := cand
		worse.Runs = []RunSummary{cand.Runs[0]}
		worse.Runs[0].Metrics = map[string]float64{"over_j": 3.0}
		deltas, _ := Compare(base, worse, CompareOptions{Threshold: 0.05})
		regs := Regressions(deltas)
		if len(regs) != 1 || regs[0].Metric != "over_j" {
			t.Fatalf("want over_j regression, got %v", regs)
		}
	})

	t.Run("unmatched runs noted", func(t *testing.T) {
		extra := cand
		extra.Runs = append([]RunSummary{}, cand.Runs...)
		other := cand.Runs[0]
		other.Controller = "greedy"
		extra.Runs = append(extra.Runs, other)
		_, notes := Compare(base, extra, CompareOptions{Threshold: 0.05})
		if len(notes) != 1 || !strings.Contains(notes[0], "only in candidate") {
			t.Fatalf("notes: %v", notes)
		}
	})
}

// FuzzRunRecord round-trips arbitrary records through MarshalLine /
// DecodeRecord: anything the writer accepts, the reader must reproduce
// exactly (wired into make fuzz-smoke).
func FuzzRunRecord(f *testing.F) {
	f.Add("odrl-run", "T1", "abc123", 1.5, uint64(7), 500, 42.5, true)
	f.Add("odrl-bench", "", "", 0.0, uint64(0), 0, -1.0, false)
	f.Add("odrl", "F18", strings.Repeat("f", 64), 1e9, ^uint64(0), 1<<30, 1e300, true)
	f.Fuzz(func(t *testing.T, tool, exp, hash string, wallS float64, seed uint64, epochs int, bips float64, ok bool) {
		r := Record{
			Schema: Schema,
			ID:     "20260102T030405-fuzzfuzzfu",
			Tool:   tool,
			Start:  "2026-01-02T03:04:05Z",
			WallS:  wallS,
			Host:   obsHost{HostCPUs: 1, GOMAXPROCS: 1, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"},
			Runs:   []RunSummary{{Controller: "od-rl", Seed: seed, Epochs: epochs, Metrics: map[string]float64{"bips": bips}}},
			Status: StatusOK,
		}
		if exp != "" || hash != "" {
			r.Scenarios = []ScenarioRef{{Experiment: exp, SpecHash: hash}}
		}
		if !ok {
			r.Status = StatusFailed
			r.Error = "fuzz failure"
		}
		line, err := r.MarshalLine()
		if err != nil {
			// The writer rejected the record (invalid tool/wall/epochs);
			// that is a valid outcome, not a round-trip.
			return
		}
		got, err := DecodeRecord(line)
		if err != nil {
			t.Fatalf("writer accepted but reader rejected: %v\nline: %s", err, line)
		}
		if err := got.VerifyHash(); err != nil {
			t.Fatalf("round-trip hash: %v", err)
		}
		// String fields with invalid UTF-8 are canonicalized to U+FFFD on
		// write, so only compare them verbatim when the input was valid.
		if utf8.ValidString(tool) && got.Tool != tool {
			t.Fatalf("tool round-trip mismatch: %q != %q", got.Tool, tool)
		}
		if got.WallS != wallS || got.Runs[0].Seed != seed || got.Runs[0].Epochs != epochs {
			t.Fatalf("round-trip mismatch: %+v", got)
		}
		b, bok := got.Runs[0].Metrics["bips"]
		if !bok || b != bips {
			t.Fatalf("metric round-trip: got %v (ok=%v), want %v", b, bok, bips)
		}
	})
}
