package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// FileName is the ledger's JSONL file inside the ledger directory;
// RunsDirName holds the per-run artifact directories.
const (
	FileName    = "ledger.jsonl"
	RunsDirName = "runs"
)

// EnvDir is the environment variable naming the ledger directory when no
// -ledger flag is given; DefaultDir is the fallback when neither is set.
const (
	EnvDir     = "ODRL_LEDGER"
	DefaultDir = ".odrl/ledger"
)

// ResolveDir picks the ledger directory: explicit flag value, then
// $ODRL_LEDGER, then DefaultDir. An empty return means the flag was empty
// and so were the fallbacks (callers treat that as disabled).
func ResolveDir(flagDir string) string {
	if flagDir != "" {
		return flagDir
	}
	if env := os.Getenv(EnvDir); env != "" {
		return env
	}
	return DefaultDir
}

// Ledger is one ledger directory opened for appending and querying.
// Appends are a single O_APPEND write per record, so concurrent writers —
// parallel CI jobs, a sweep fan-out — interleave whole lines without
// locking (POSIX guarantees atomicity for single writes well above our
// record sizes; the race-ledger hammer in CI exercises this).
type Ledger struct {
	dir string
}

// Open ensures the ledger directory exists and returns a handle.
func Open(dir string) (*Ledger, error) {
	if dir == "" {
		return nil, fmt.Errorf("ledger: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, RunsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("ledger: creating %s: %w", dir, err)
	}
	return &Ledger{dir: dir}, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Path returns the JSONL file path.
func (l *Ledger) Path() string { return filepath.Join(l.dir, FileName) }

// RunDir returns the artifact directory for a run ID, creating it.
func (l *Ledger) RunDir(id string) (string, error) {
	d := filepath.Join(l.dir, RunsDirName, id)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return "", fmt.Errorf("ledger: creating run dir: %w", err)
	}
	return d, nil
}

// Append validates, content-addresses and appends one record as a single
// JSONL line. It is safe to call from multiple processes on the same
// ledger file.
func (l *Ledger) Append(r Record) error {
	line, err := r.MarshalLine()
	if err != nil {
		return err
	}
	f, err := os.OpenFile(l.Path(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: opening %s: %w", l.Path(), err)
	}
	defer f.Close()
	// One Write call for the whole line+newline keeps the append atomic.
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("ledger: appending record %s: %w", r.ID, err)
	}
	return nil
}

// WriteArtifact stores bytes under the run's artifact directory and
// returns the Artifact pointer (name, size, content hash) to embed in the
// record. Name may contain subdirectories.
func (l *Ledger) WriteArtifact(runID, name string, data []byte) (Artifact, error) {
	dir, err := l.RunDir(runID)
	if err != nil {
		return Artifact{}, err
	}
	path := filepath.Join(dir, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return Artifact{}, fmt.Errorf("ledger: artifact dir for %s: %w", name, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return Artifact{}, fmt.Errorf("ledger: writing artifact %s: %w", name, err)
	}
	sum := sha256.Sum256(data)
	return Artifact{Name: name, Bytes: int64(len(data)), SHA256: hex.EncodeToString(sum[:])}, nil
}

// idSeq disambiguates IDs minted within one process in the same
// nanosecond (e.g. a test loop).
var idSeq atomic.Uint64

// NewID mints a sortable, collision-resistant run ID: a UTC timestamp
// prefix (so `sort` on IDs is chronological) plus a short hash of
// host/pid/time/sequence.
func NewID(start time.Time) string {
	host, _ := os.Hostname()
	seq := idSeq.Add(1)
	raw := fmt.Sprintf("%s|%d|%d|%d", host, os.Getpid(), start.UnixNano(), seq)
	sum := sha256.Sum256([]byte(raw))
	return start.UTC().Format("20060102T150405") + "-" + hex.EncodeToString(sum[:])[:10]
}
