package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers get-or-create and recording from many
// goroutines; run under -race it proves the registry's hot paths are safe.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", g)).Add(2)
				r.Gauge("gauge").Set(float64(i))
				h, err := r.Histogram("hist", []float64{10, 100, 1000})
				if err != nil {
					t.Error(err)
					return
				}
				h.Observe(float64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["shared"]; got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := s.Counters[fmt.Sprintf("own.%d", g)]; got != 2*perG {
			t.Errorf("own.%d = %d, want %d", g, got, 2*perG)
		}
	}
	h := s.Histograms["hist"]
	if h.Count != goroutines*perG {
		t.Errorf("hist count = %d, want %d", h.Count, goroutines*perG)
	}
	// Sum of 16 × (0+1+…+999) accumulated via CAS must be exact: every
	// addend is an integer small enough for float64.
	want := float64(goroutines) * float64(perG-1) * float64(perG) / 2
	if h.Sum != want {
		t.Errorf("hist sum = %g, want %g", h.Sum, want)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5 (negative deltas ignored)", got)
	}
}

// TestHistogramBounds pins the bucket semantics: bucket i is
// upper-inclusive at Bounds[i]; values above the last bound land in the
// overflow bucket.
func TestHistogramBounds(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0},
		{0, 0},
		{1, 0},    // exactly on the first bound: inclusive
		{1.001, 1},
		{10, 1},   // exactly on a middle bound
		{10.5, 2},
		{100, 2},  // exactly on the last bound
		{100.1, 3}, // overflow
		{1e12, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("v=%g", tc.v), func(t *testing.T) {
			h, err := NewHistogram(bounds)
			if err != nil {
				t.Fatal(err)
			}
			h.Observe(tc.v)
			s := h.snapshot()
			for i, n := range s.Counts {
				want := int64(0)
				if i == tc.bucket {
					want = 1
				}
				if n != want {
					t.Errorf("bucket %d count = %d, want %d", i, n, want)
				}
			}
			if s.Count != 1 || s.Sum != tc.v {
				t.Errorf("count=%d sum=%g, want 1, %g", s.Count, s.Sum, tc.v)
			}
		})
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
	if _, err := (&Registry{hists: map[string]*Histogram{}}).Histogram("h", []float64{2, 1}); err == nil {
		t.Error("registry accepted decreasing bounds")
	}
}

func TestHistogramSnapshotMean(t *testing.T) {
	h, err := NewHistogram([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if m := h.snapshot().Mean(); m != 0 {
		t.Errorf("empty mean = %g, want 0", m)
	}
	h.Observe(2)
	h.Observe(4)
	if m := h.snapshot().Mean(); m != 3 {
		t.Errorf("mean = %g, want 3", m)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	if v := g.Value(); v != 0 {
		t.Errorf("unset gauge = %g, want 0", v)
	}
	g.Set(-3.5)
	if v := r.Snapshot().Gauges["g"]; v != -3.5 {
		t.Errorf("gauge = %g, want -3.5", v)
	}
	if r.Gauge("g") != g {
		t.Error("gauge handle not stable across lookups")
	}
}
