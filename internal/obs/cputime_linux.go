//go:build linux

package obs

import (
	"syscall"
	"time"
)

// CPUSeconds returns the process's cumulative user+system CPU time. On a
// shared or single-CPU host, wall clock moves with scheduler preemption,
// steal time and frequency drift by more than the few-percent overheads
// the bench gates measure; CPU time counts only work actually executed, so
// paired off/on ratios over it are far more stable. The run ledger stamps
// both, for the same reason.
func CPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return (time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())).Seconds()
}
