package obs

import (
	"testing"
	"time"
)

func TestSpanTimer(t *testing.T) {
	st := NewSpanTimer(PhaseLocal, PhaseGlobal, PhaseComm)
	st.Observe(0, 10*time.Millisecond)
	st.Observe(0, 5*time.Millisecond)
	st.Observe(1, 2*time.Millisecond)

	if got := st.Total(0); got != 15*time.Millisecond {
		t.Errorf("local total = %v, want 15ms", got)
	}
	snap := st.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d phases, want 3", len(snap))
	}
	if snap[0].Name != PhaseLocal || snap[0].Count != 2 || snap[0].Total != 15*time.Millisecond {
		t.Errorf("local = %+v", snap[0])
	}
	if snap[0].Mean() != 7500*time.Microsecond {
		t.Errorf("local mean = %v, want 7.5ms", snap[0].Mean())
	}
	if snap[1].Name != PhaseGlobal || snap[1].Count != 1 {
		t.Errorf("global = %+v", snap[1])
	}
	if snap[2].Name != PhaseComm || snap[2].Count != 0 || snap[2].Mean() != 0 {
		t.Errorf("comm = %+v", snap[2])
	}

	st.Reset()
	for _, p := range st.Snapshot() {
		if p.Total != 0 || p.Count != 0 {
			t.Errorf("after reset, %s = %+v", p.Name, p)
		}
	}
}
