package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestTracerRoundTrip emits a run through the tracer and parses it back,
// proving the JSONL schema survives a write→read cycle unchanged.
func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	tr := NewTracer(NewWriterSink(&buf), TracerOptions{Every: 1, Registry: reg})

	meta := RunMeta{
		Controller: "od-rl", Workload: "mix", Cores: 16,
		BudgetW: 90, EpochS: 1e-3, Seed: 7,
	}
	run := tr.BeginRun(meta)
	events := []EpochEvent{
		{Epoch: 0, TimeS: 0.001, PowerW: 20.5, BudgetW: 90, MaxTempK: 320.25,
			IslandPowerW: []float64{10.25, 10.25}, LevelHist: []int{8, 8}, DecideNs: 1234},
		{Epoch: 1, TimeS: 0.002, PowerW: 95.0, BudgetW: 90, OvershootW: 5.0,
			MaxTempK: 331, IslandPowerW: []float64{50, 45}, LevelHist: []int{0, 16}, DecideNs: 987},
	}
	for i := range events {
		if !run.ShouldSample(events[i].Epoch) {
			t.Fatalf("stride-1 tracer refused epoch %d", events[i].Epoch)
		}
		run.ObserveEpoch(&events[i])
	}
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (run_start + 2 epochs + run_end)", len(recs))
	}
	if recs[0].Type != "run_start" || recs[0].Meta != meta {
		t.Errorf("run_start = %+v, want meta %+v", recs[0], meta)
	}
	for i, want := range events {
		got := recs[1+i]
		if got.Type != "epoch" || got.Run != recs[0].Run {
			t.Errorf("record %d: type=%q run=%d", i, got.Type, got.Run)
		}
		if !reflect.DeepEqual(got.Event, want) {
			t.Errorf("epoch %d round trip:\n got %+v\nwant %+v", i, got.Event, want)
		}
	}
	end := recs[3]
	if end.Type != "run_end" || end.Epochs != 2 || end.Sampled != 2 {
		t.Errorf("run_end = %+v, want epochs=2 sampled=2", end)
	}

	s := reg.Snapshot()
	if s.Counters["obs.trace.runs"] != 1 || s.Counters["obs.trace.samples"] != 2 {
		t.Errorf("registry counters = %v", s.Counters)
	}
	if h := s.Histograms["obs.trace.decide_ns"]; h.Count != 2 || h.Sum != 1234+987 {
		t.Errorf("decide histogram = %+v", h)
	}
}

// TestTracerDecimation checks the stride gate: only epochs divisible by
// Every sample.
func TestTracerDecimation(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewWriterSink(&buf), TracerOptions{Every: 7})
	run := tr.BeginRun(RunMeta{Controller: "x"})
	sampled := 0
	for e := 0; e < 100; e++ {
		if run.ShouldSample(e) {
			if e%7 != 0 {
				t.Errorf("sampled off-stride epoch %d", e)
			}
			run.ObserveEpoch(&EpochEvent{Epoch: e})
			sampled++
		}
	}
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if want := 15; sampled != want { // ceil(100/7)
		t.Errorf("sampled %d epochs, want %d", sampled, want)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Sampled != sampled {
		t.Errorf("run_end sampled = %d, want %d", last.Sampled, sampled)
	}
}

// TestTracerConcurrentRuns interleaves two runs; every line must still be
// valid JSON attributable to its run.
func TestTracerConcurrentRuns(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewWriterSink(&buf), TracerOptions{})
	a := tr.BeginRun(RunMeta{Controller: "a"})
	b := tr.BeginRun(RunMeta{Controller: "b"})
	a.ObserveEpoch(&EpochEvent{Epoch: 0, PowerW: 1})
	b.ObserveEpoch(&EpochEvent{Epoch: 0, PowerW: 2})
	a.End()
	b.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byRun := map[int64]int{}
	for _, r := range recs {
		byRun[r.Run]++
	}
	if len(byRun) != 2 || byRun[1] != 3 || byRun[2] != 3 {
		t.Errorf("records per run = %v, want 3 each for runs 1 and 2", byRun)
	}
}

func TestNopObserver(t *testing.T) {
	run := Nop().BeginRun(RunMeta{})
	for e := 0; e < 10; e++ {
		if run.ShouldSample(e) {
			t.Fatalf("nop observer sampled epoch %d", e)
		}
	}
	run.End()
}

func TestReadRecordsRejectsGarbage(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadRecords(strings.NewReader(`{"type":"mystery","run":1}` + "\n")); err == nil {
		t.Error("unknown record type accepted")
	}
}

func TestLogEvent(t *testing.T) {
	var buf bytes.Buffer
	if err := LogEvent(&buf, "run-config", "seed", uint64(42), "cores", 64, "budget_w", 90.5); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if m["event"] != "run-config" {
		t.Errorf("event = %v", m["event"])
	}
	if v, ok := m["seed"].(float64); !ok || v != 42 {
		t.Errorf("seed = %v", m["seed"])
	}
	if v := m["budget_w"].(float64); math.Abs(v-90.5) > 0 {
		t.Errorf("budget_w = %v", v)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("log line missing trailing newline")
	}

	buf.Reset()
	if err := LogEvent(&buf, "odd", "only-key"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "!BADKEY") {
		t.Errorf("odd kv not flagged: %s", buf.String())
	}
}
