// Package obs is the zero-dependency observability layer for the
// simulation harness: a metrics registry with atomic hot-path recording, a
// structured JSONL epoch tracer with pluggable sinks and decimation,
// span-style phase timers for controller profiling, and an HTTP debug
// endpoint (registry snapshot + pprof) for long runs.
//
// Everything here is designed so that the disabled path costs nothing: a
// nil Observer in sim.Options is a single branch per epoch, and the no-op
// tracer's sampling gate is a handful of instructions (see BenchmarkObs*).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last set value (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i holds values
// v <= Bounds[i] (with earlier bounds excluded); one overflow bucket holds
// everything above the last bound. Recording is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bucket bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d", i)
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: upper-inclusive
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the q·Count-th observation, assuming values
// spread uniformly inside each bucket. The first bucket interpolates from
// zero (bounds here are non-negative measurements: latencies, watts). A
// rank landing in the overflow bucket returns the last finite bound — the
// histogram cannot resolve beyond it, so the estimate saturates rather
// than invent mass at +Inf. Empty histograms return 0; q outside [0,1] is
// clamped.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var seen float64
	for i, c := range s.Counts {
		if c <= 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(s.Bounds) {
				// Overflow bucket: unbounded above, saturate at the last
				// finite bound.
				return s.Bounds[len(s.Bounds)-1]
			}
			hi := s.Bounds[i]
			if math.IsInf(hi, 1) {
				// An explicit +Inf bound behaves like the overflow bucket.
				if i == 0 {
					return 0
				}
				return s.Bounds[i-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - seen) / float64(c)
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.n.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry names and owns a process's metrics. Metric handles are
// get-or-create and stable, so hot paths fetch them once and record through
// atomics without touching the registry lock again.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later calls return the existing histogram regardless of
// bounds, so callers agree on shape by construction order.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h, nil
	}
	nh, err := NewHistogram(bounds)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = nh
		r.hists[name] = h
	}
	return h, nil
}

// Snapshot is a point-in-time copy of every metric, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}
