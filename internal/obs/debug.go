package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer exposes a registry snapshot, Prometheus metrics and pprof
// over HTTP for live inspection of long runs.
type DebugServer struct {
	srv *http.Server
	mux *http.ServeMux
	lis net.Listener
}

// StartDebug listens on addr (e.g. "localhost:6060") and serves:
//
//	/debug/obs     — JSON registry snapshot (expvar-style)
//	/metrics       — the registry in Prometheus text exposition format
//	/debug/pprof/  — the standard runtime profiles
//
// The server runs on its own mux so importing this package never pollutes
// http.DefaultServeMux. Requests are served until Close; further surfaces
// (the monitor's /debug/live and /debug/timeline) attach via Handle.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: nil registry")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot()) //nolint:errcheck // best-effort debug output
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg.Snapshot()) //nolint:errcheck // best-effort debug output
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	d := &DebugServer{srv: srv, mux: mux, lis: lis}
	go srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return d, nil
}

// Handle registers an additional handler on the server's mux, so layers
// above obs (the run monitor) can add read surfaces without owning the
// server. ServeMux registration is safe while serving; registering the
// same pattern twice panics, as with any mux.
func (d *DebugServer) Handle(pattern string, h http.Handler) {
	d.mux.Handle(pattern, h)
}

// Addr returns the bound address, useful when addr requested port 0.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
