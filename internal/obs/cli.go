package obs

import (
	"fmt"
	"io"
	"os"
)

// CLI owns the observability resources a command wires up from its flags:
// an optional JSONL tracer and an optional HTTP debug endpoint, sharing
// one metrics registry.
type CLI struct {
	Registry *Registry
	// Tracer is nil unless a trace file or debug address was requested
	// (with only a debug address, events go to a discard sink and the
	// registry still fills for /debug/obs).
	Tracer *Tracer
	// Debug is nil unless a debug address was requested.
	Debug *DebugServer
}

// StartCLI builds the standard command wiring: traceFile "" disables
// tracing and "-" streams to stdout; traceEvery is the decimation stride;
// debugAddr "" disables the debug endpoint.
func StartCLI(traceFile string, traceEvery int, debugAddr string) (*CLI, error) {
	c := &CLI{Registry: NewRegistry()}
	if traceFile != "" {
		var w io.Writer
		if traceFile == "-" {
			// Hide stdout's Closer so Close never shuts the process stream.
			w = struct{ io.Writer }{os.Stdout}
		} else {
			f, err := os.Create(traceFile)
			if err != nil {
				return nil, fmt.Errorf("obs: trace file: %w", err)
			}
			w = f
		}
		c.Tracer = NewTracer(NewWriterSink(w), TracerOptions{Every: traceEvery, Registry: c.Registry})
	} else if debugAddr != "" {
		// Debug endpoint without a trace file: feed the tracer to a discard
		// sink so /debug/obs still shows live counters and the decide-latency
		// histogram instead of an empty registry.
		c.Tracer = NewTracer(NewWriterSink(io.Discard), TracerOptions{Every: traceEvery, Registry: c.Registry})
	}
	if debugAddr != "" {
		d, err := StartDebug(debugAddr, c.Registry)
		if err != nil {
			c.Close() //nolint:errcheck // already failing
			return nil, err
		}
		c.Debug = d
	}
	return c, nil
}

// Observer returns the tracer as an Observer, or nil when tracing is off,
// so callers can assign it straight to a harness hook point.
func (c *CLI) Observer() Observer {
	if c.Tracer == nil {
		return nil
	}
	return c.Tracer
}

// WriteDecideQuantiles renders the decide-latency distribution collected
// by the tracer's obs.trace.decide_ns histogram — p50/p95/p99 via
// HistogramSnapshot.Quantile, a strictly more honest companion to the
// mean-based phase-breakdown table (tail latency is what the real-time
// feasibility claim is about). Writes nothing when no samples were traced.
func (c *CLI) WriteDecideQuantiles(w io.Writer) error {
	if c.Registry == nil {
		return nil
	}
	h, ok := c.Registry.Snapshot().Histograms["obs.trace.decide_ns"]
	if !ok || h.Count == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w, "\ndecide latency (us): p50 %.1f  p95 %.1f  p99 %.1f  mean %.1f  (n=%d)\n",
		h.Quantile(0.50)/1e3, h.Quantile(0.95)/1e3, h.Quantile(0.99)/1e3, h.Mean()/1e3, h.Count)
	return err
}

// Close flushes the tracer and stops the debug server.
func (c *CLI) Close() error {
	var first error
	if c.Tracer != nil {
		if err := c.Tracer.Close(); err != nil {
			first = err
		}
	}
	if c.Debug != nil {
		if err := c.Debug.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
