package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestAlertRoundTrip: alerts emitted into the JSONL stream decode back with
// their rule identity and condition intact.
func TestAlertRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewWriterSink(&buf), TracerOptions{})
	run := tr.BeginRun(RunMeta{Controller: "od-rl"})
	ao, ok := run.(AlertObserver)
	if !ok {
		t.Fatal("runTracer does not implement AlertObserver")
	}
	ao.ObserveAlert(&AlertEvent{
		Epoch: 120, TimeS: 0.12, Rule: "sustained-overshoot",
		Metric: "overshoot_w", Op: ">", Threshold: 1.1, Value: 3.4, ForEpochs: 25,
	})
	run.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var alert *Record
	for i := range recs {
		if recs[i].Type == "alert" {
			alert = &recs[i]
		}
	}
	if alert == nil {
		t.Fatalf("no alert record in stream:\n%s", buf.String())
	}
	a := alert.Alert
	if a.Rule != "sustained-overshoot" || a.Metric != "overshoot_w" || a.Op != ">" ||
		a.Threshold != 1.1 || a.Value != 3.4 || a.ForEpochs != 25 || a.Epoch != 120 {
		t.Fatalf("alert did not round-trip: %+v", a)
	}
}
