package obs

import (
	"sync/atomic"
	"time"
)

// Canonical controller phase names; sim maps these onto metrics.Summary
// phase-time fields.
const (
	PhaseLocal  = "local"  // per-core (distributed) learning updates
	PhaseGlobal = "global" // global budget reallocation
	PhaseComm   = "comm"   // communication accounting
)

// PhaseTime is one phase's accumulated wall-clock profile.
type PhaseTime struct {
	Name  string        `json:"name"`
	Total time.Duration `json:"total_ns"`
	Count int64         `json:"count"`
}

// Mean returns the average span duration (0 when empty).
func (p PhaseTime) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// SpanTimer accumulates wall-clock time into named phases. Recording is a
// pair of atomic adds, cheap enough to stay enabled on controller hot
// paths; reads (Snapshot) and Reset may race with writers and see a
// slightly torn but individually consistent view, which is fine for
// profiling.
type SpanTimer struct {
	names []string
	ns    []atomic.Int64
	n     []atomic.Int64
}

// NewSpanTimer builds a timer over a fixed set of phase names; phases are
// addressed by their index in this list.
func NewSpanTimer(names ...string) *SpanTimer {
	return &SpanTimer{
		names: append([]string(nil), names...),
		ns:    make([]atomic.Int64, len(names)),
		n:     make([]atomic.Int64, len(names)),
	}
}

// Observe adds one span of duration d to phase i.
func (t *SpanTimer) Observe(i int, d time.Duration) {
	t.ns[i].Add(int64(d))
	t.n[i].Add(1)
}

// Total returns phase i's accumulated duration.
func (t *SpanTimer) Total(i int) time.Duration {
	return time.Duration(t.ns[i].Load())
}

// Snapshot copies every phase's accumulated profile, in construction order.
func (t *SpanTimer) Snapshot() []PhaseTime {
	out := make([]PhaseTime, len(t.names))
	for i, name := range t.names {
		out[i] = PhaseTime{
			Name:  name,
			Total: time.Duration(t.ns[i].Load()),
			Count: t.n[i].Load(),
		}
	}
	return out
}

// Reset zeroes all phases, e.g. at the warmup/measurement boundary so
// phase totals cover the same window as the run's controller-time metric.
func (t *SpanTimer) Reset() {
	for i := range t.ns {
		t.ns[i].Store(0)
		t.n[i].Store(0)
	}
}
