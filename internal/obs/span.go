package obs

import (
	"sync/atomic"
	"time"
)

// Canonical controller phase names; sim maps these onto metrics.Summary
// phase-time fields.
const (
	PhaseLocal  = "local"  // per-core (distributed) learning updates
	PhaseGlobal = "global" // global budget reallocation
	PhaseComm   = "comm"   // communication accounting
)

// PhaseTime is one phase's accumulated wall-clock profile.
type PhaseTime struct {
	Name  string        `json:"name"`
	Total time.Duration `json:"total_ns"`
	Count int64         `json:"count"`
}

// Mean returns the average span duration (0 when empty).
func (p PhaseTime) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// SpanSink receives individual phase spans as they complete, for timeline
// views (e.g. the monitor's Perfetto export). RecordSpan is called from
// controller hot paths and must be cheap and concurrency-safe.
type SpanSink interface {
	RecordSpan(name string, startNs, durNs int64)
}

// TeeSpans fans one span stream out to two sinks — the harness uses it to
// feed both the monitor's Perfetto timeline and the flight recorder's
// post-mortem ring from a single controller sink slot. Nil arguments
// collapse: with one sink it is returned directly (no wrapper cost), with
// none the result is nil.
func TeeSpans(a, b SpanSink) SpanSink {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return teeSpanSink{a: a, b: b}
}

type teeSpanSink struct{ a, b SpanSink }

func (t teeSpanSink) RecordSpan(name string, startNs, durNs int64) {
	t.a.RecordSpan(name, startNs, durNs)
	t.b.RecordSpan(name, startNs, durNs)
}

// SpanTimer accumulates wall-clock time into named phases. Recording is a
// pair of atomic adds, cheap enough to stay enabled on controller hot
// paths; reads (Snapshot) and Reset may race with writers and see a
// slightly torn but individually consistent view, which is fine for
// profiling. An optional SpanSink additionally streams each individual
// span; with no sink attached the extra cost is one atomic pointer load.
type SpanTimer struct {
	names []string
	ns    []atomic.Int64
	n     []atomic.Int64
	sink  atomic.Pointer[spanSinkBox]
}

// spanSinkBox wraps the interface so the atomic pointer has a concrete
// element type.
type spanSinkBox struct{ s SpanSink }

// NewSpanTimer builds a timer over a fixed set of phase names; phases are
// addressed by their index in this list.
func NewSpanTimer(names ...string) *SpanTimer {
	return &SpanTimer{
		names: append([]string(nil), names...),
		ns:    make([]atomic.Int64, len(names)),
		n:     make([]atomic.Int64, len(names)),
	}
}

// Observe adds one span of duration d to phase i. The span is assumed to
// have just ended, so a streaming sink sees start = now − d.
func (t *SpanTimer) Observe(i int, d time.Duration) {
	t.ns[i].Add(int64(d))
	t.n[i].Add(1)
	if box := t.sink.Load(); box != nil {
		now := time.Now().UnixNano()
		box.s.RecordSpan(t.names[i], now-int64(d), int64(d))
	}
}

// ObserveSince ends a span that began at start: it measures the duration
// itself and, when streaming, derives the sink timestamp from start instead
// of reading the clock again. Controller hot paths that already hold the
// start time should prefer this over Observe(i, time.Since(start)) — it
// costs exactly one clock read whether or not a sink is attached.
func (t *SpanTimer) ObserveSince(i int, start time.Time) {
	d := time.Since(start)
	t.ns[i].Add(int64(d))
	t.n[i].Add(1)
	if box := t.sink.Load(); box != nil {
		box.s.RecordSpan(t.names[i], start.UnixNano(), int64(d))
	}
}

// SetSink attaches (or, with nil, detaches) a streaming span sink. Safe to
// call while writers are recording.
func (t *SpanTimer) SetSink(s SpanSink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&spanSinkBox{s: s})
}

// Total returns phase i's accumulated duration.
func (t *SpanTimer) Total(i int) time.Duration {
	return time.Duration(t.ns[i].Load())
}

// Snapshot copies every phase's accumulated profile, in construction order.
func (t *SpanTimer) Snapshot() []PhaseTime {
	out := make([]PhaseTime, len(t.names))
	for i, name := range t.names {
		out[i] = PhaseTime{
			Name:  name,
			Total: time.Duration(t.ns[i].Load()),
			Count: t.n[i].Load(),
		}
	}
	return out
}

// Reset zeroes all phases, e.g. at the warmup/measurement boundary so
// phase totals cover the same window as the run's controller-time metric.
func (t *SpanTimer) Reset() {
	for i := range t.ns {
		t.ns[i].Store(0)
		t.n[i].Store(0)
	}
}
