package flight

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// stubRun records what a downstream observer saw.
type stubRun struct {
	stride  int
	epochs  []int
	details []int
	alerts  int
	faults  int
	ended   bool
}

func (s *stubRun) ShouldSample(epoch int) bool { return epoch%s.stride == 0 }
func (s *stubRun) ObserveEpoch(ev *obs.EpochEvent) {
	s.epochs = append(s.epochs, ev.Epoch)
	if ev.IslandPowerW != nil {
		s.details = append(s.details, ev.Epoch)
	}
}
func (s *stubRun) ObserveAlert(*obs.AlertEvent) { s.alerts++ }
func (s *stubRun) ObserveFault(*obs.FaultEvent) { s.faults++ }
func (s *stubRun) End()                         { s.ended = true }

type stubObserver struct{ run *stubRun }

func (s stubObserver) BeginRun(obs.RunMeta) obs.RunObserver { return s.run }

func feedEpochs(ro obs.RunObserver, n int) {
	ds, _ := ro.(obs.EpochDetailSampler)
	for e := 0; e < n; e++ {
		if !ro.ShouldSample(e) {
			continue
		}
		ev := obs.EpochEvent{
			Epoch:      e,
			TimeS:      float64(e) * 0.001,
			PowerW:     90 + float64(e%10),
			BudgetW:    95,
			OvershootW: float64(e%10) - 5, // positive on e%10 in 6..9
			MaxTempK:   330 + float64(e%7),
			DecideNs:   int64(1000 + e),
			IPS:        50e9,
		}
		if ev.OvershootW < 0 {
			ev.OvershootW = 0
		}
		if ds == nil || ds.WantsEpochDetail(e) {
			ev.IslandPowerW = []float64{ev.PowerW}
		}
		ro.ObserveEpoch(&ev)
	}
}

func TestRingKeepsLatestWindow(t *testing.T) {
	rec := New(Options{RingCap: 64})
	ro := rec.BeginRun(obs.RunMeta{Controller: "od-rl", EpochS: 0.001})
	feedEpochs(ro, 300)

	f := ro.(*flightRun)
	f.mu.Lock()
	frames := f.framesLocked()
	epochs := f.epochs
	f.mu.Unlock()
	if epochs != 300 {
		t.Fatalf("epochs observed: %d", epochs)
	}
	if len(frames) != 64 {
		t.Fatalf("retained %d frames, want 64", len(frames))
	}
	for i, fr := range frames {
		if want := 300 - 64 + i; fr.Epoch != want {
			t.Fatalf("frame %d: epoch %d, want %d (ring should keep the latest window in order)", i, fr.Epoch, want)
		}
	}
}

func TestAlertTriggersDumpOnce(t *testing.T) {
	type dumpRec struct {
		seq     int
		trigger string
		files   []BundleFile
	}
	var dumps []dumpRec
	rec := New(Options{RingCap: 64, OnDump: func(seq int, _ obs.RunMeta, trigger string, files []BundleFile) {
		dumps = append(dumps, dumpRec{seq, trigger, files})
	}})
	rec.Timeline().RecordSpan("local", 1000, 500)
	rec.Timeline().RecordSpan("global", 1600, 300)

	ro := rec.BeginRun(obs.RunMeta{Controller: "od-rl", BudgetW: 95, EpochS: 0.001})
	feedEpochs(ro, 200)
	alert := &obs.AlertEvent{Epoch: 199, Rule: "power-overshoot", Metric: "overshoot_w", Op: ">", Threshold: 0, Value: 4}
	ro.(obs.AlertObserver).ObserveAlert(alert)
	ro.(obs.AlertObserver).ObserveAlert(alert) // second alert must not re-dump
	ro.End()

	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.trigger != "alert" {
		t.Fatalf("trigger %q", d.trigger)
	}
	byName := map[string][]byte{}
	for _, f := range d.files {
		if !strings.HasPrefix(f.Name, "flight/alert/") {
			t.Fatalf("bundle file %q lacks trigger prefix", f.Name)
		}
		byName[strings.TrimPrefix(f.Name, "flight/alert/")] = f.Data
	}

	events, err := ReadEpochsJSONL(byName["epochs.jsonl"])
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 64 {
		t.Fatalf("bundle holds %d epochs, want >= 64", len(events))
	}
	if last := events[len(events)-1].Epoch; last != 199 {
		t.Fatalf("last retained epoch %d, want 199", last)
	}

	n, err := ValidateTraceJSON(byName["spans.json"])
	if err != nil {
		t.Fatalf("spans.json not loadable Perfetto: %v", err)
	}
	if n == 0 {
		t.Fatal("spans.json has no trace events")
	}

	ctxData := byName["context.json"]
	for _, want := range []string{`"trigger": "alert"`, `"power-overshoot"`, `"decide_p99_ns"`} {
		if !strings.Contains(string(ctxData), want) {
			t.Fatalf("context.json missing %s:\n%s", want, ctxData)
		}
	}
}

func TestDumpAllSigquitOncePerTrigger(t *testing.T) {
	var mu sync.Mutex
	triggers := map[string]int{}
	rec := New(Options{OnDump: func(_ int, _ obs.RunMeta, trigger string, _ []BundleFile) {
		mu.Lock()
		triggers[trigger]++
		mu.Unlock()
	}})
	ro := rec.BeginRun(obs.RunMeta{Controller: "greedy", EpochS: 0.001})
	feedEpochs(ro, 100)
	ro.End()

	rec.DumpAll("sigquit")
	rec.DumpAll("sigquit") // idempotent per trigger
	rec.DumpAll("failed")  // distinct trigger dumps again
	if triggers["sigquit"] != 1 || triggers["failed"] != 1 {
		t.Fatalf("dump counts: %v", triggers)
	}
}

func TestChainForwardsOnDownstreamStride(t *testing.T) {
	next := &stubRun{stride: 4}
	rec := New(Options{})
	ro := rec.Wrap(stubObserver{run: next}).BeginRun(obs.RunMeta{EpochS: 0.001})
	feedEpochs(ro, 100)
	alert := &obs.AlertEvent{Epoch: 50, Rule: "r"}
	ro.(obs.AlertObserver).ObserveAlert(alert)
	ro.(obs.FaultObserver).ObserveFault(&obs.FaultEvent{Epoch: 51})
	ro.End()

	if len(next.epochs) != 25 {
		t.Fatalf("downstream saw %d epochs, want 25 (its own stride)", len(next.epochs))
	}
	for _, e := range next.epochs {
		if e%4 != 0 {
			t.Fatalf("downstream saw off-stride epoch %d", e)
		}
	}
	// Detail (island slices) must be built only on the downstream stride:
	// feedEpochs consults WantsEpochDetail like the harness does.
	if len(next.details) != len(next.epochs) {
		t.Fatalf("downstream missing detail on its own epochs: %d of %d", len(next.details), len(next.epochs))
	}
	f := ro.(*flightRun)
	f.mu.Lock()
	recorded := f.epochs
	f.mu.Unlock()
	if recorded != 100 {
		t.Fatalf("recorder saw %d epochs, want every one", recorded)
	}
	if next.alerts != 1 || next.faults != 1 || !next.ended {
		t.Fatalf("events not forwarded: %+v", next)
	}
}

func TestSummaryMetrics(t *testing.T) {
	var got Summary
	rec := New(Options{OnRunEnd: func(_ int, s Summary) { got = s }})
	ro := rec.BeginRun(obs.RunMeta{Controller: "od-rl", Workload: "mixed", EpochS: 0.001})
	feedEpochs(ro, 100)
	ro.End()

	if got.Epochs != 100 {
		t.Fatalf("summary epochs %d", got.Epochs)
	}
	m := got.Metrics
	if m["bips"] != 50 {
		t.Fatalf("bips %g, want 50", m["bips"])
	}
	// feedEpochs overshoots on e%10 in 6..9 with 1..4 W for 1 ms epochs:
	// 10 cycles x (1+2+3+4) W x 0.001 s = 0.1 J, 40% of epochs over.
	if diff := m["over_j"] - 0.1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("over_j %g, want 0.1", m["over_j"])
	}
	if m["over_time_frac"] != 0.4 {
		t.Fatalf("over_time_frac %g, want 0.4", m["over_time_frac"])
	}
	if m["peak_w"] != 99 || m["max_temp_k"] != 336 {
		t.Fatalf("peak_w %g max_temp_k %g", m["peak_w"], m["max_temp_k"])
	}
	if m["decide_p50_ns"] <= 0 || m["decide_p99_ns"] < m["decide_p50_ns"] {
		t.Fatalf("decide quantiles: p50 %g p99 %g", m["decide_p50_ns"], m["decide_p99_ns"])
	}
}

// TestDumpAllRacesEpochLoop is the -race guard for the SIGQUIT path: a
// dump from another goroutine must interleave safely with a run that is
// still observing epochs.
func TestDumpAllRacesEpochLoop(t *testing.T) {
	var mu sync.Mutex
	dumps := 0
	rec := New(Options{RingCap: 64, OnDump: func(_ int, _ obs.RunMeta, _ string, files []BundleFile) {
		mu.Lock()
		dumps++
		mu.Unlock()
		for _, f := range files {
			if f.Name == "flight/race/epochs.jsonl" {
				if _, err := ReadEpochsJSONL(f.Data); err != nil {
					t.Errorf("torn bundle: %v", err)
				}
			}
		}
	}})
	ro := rec.BeginRun(obs.RunMeta{EpochS: 0.001})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		feedEpochs(ro, 5000)
		ro.End()
	}()
	rec.DumpAll("race")
	wg.Wait()
	rec.DumpAll("late")
	mu.Lock()
	defer mu.Unlock()
	if dumps == 0 {
		t.Fatal("no dumps")
	}
}

func TestKeepRunsEvictsOnlyFinished(t *testing.T) {
	rec := New(Options{KeepRuns: 2})
	live := rec.BeginRun(obs.RunMeta{Controller: "live"})
	feedEpochs(live, 10)
	for i := 0; i < 5; i++ {
		ro := rec.BeginRun(obs.RunMeta{Controller: "done"})
		feedEpochs(ro, 10)
		ro.End()
	}
	rec.mu.Lock()
	var controllers []string
	for _, f := range rec.runs {
		controllers = append(controllers, f.meta.Controller)
	}
	rec.mu.Unlock()
	if len(controllers) > 3 {
		t.Fatalf("retained %d runs with KeepRuns=2 (+1 live): %v", len(controllers), controllers)
	}
	found := false
	for _, c := range controllers {
		if c == "live" {
			found = true
		}
	}
	if !found {
		t.Fatalf("live run evicted: %v", controllers)
	}
}
