package flight

import (
	"bytes"
	"encoding/json"

	"repro/internal/obs"
	"repro/internal/obs/monitor"
)

// bundleContext is the post-mortem's context.json: why the bundle exists
// and the quantile snapshot at dump time.
type bundleContext struct {
	Trigger string      `json:"trigger"`
	RunSeq  int         `json:"run_seq"`
	Meta    obs.RunMeta `json:"meta"`
	// Epochs is the run's total observed epoch count at dump time;
	// RetainedEpochs how many the ring held (the JSONL's line count).
	Epochs         int `json:"epochs"`
	RetainedEpochs int `json:"retained_epochs"`
	// Alerts/Faults are the retained recent events (counts may exceed
	// their lengths; AlertCount/FaultCount stay exact).
	AlertCount int                `json:"alert_count"`
	Alerts     []obs.AlertEvent   `json:"alerts,omitempty"`
	FaultCount int                `json:"fault_count"`
	Faults     []obs.FaultEvent   `json:"faults,omitempty"`
	Quantiles  map[string]float64 `json:"quantiles,omitempty"`
}

// dump builds and delivers the run's post-mortem bundle for a trigger.
// Each (run, trigger) pair dumps at most once: the interesting window is
// the one before the first firing, and repeat alerts would only overwrite
// it with later context.
func (f *flightRun) dump(trigger string) {
	cb := f.rec.opt.OnDump
	if cb == nil {
		return
	}
	f.mu.Lock()
	if f.dumped[trigger] || f.epochs == 0 {
		f.mu.Unlock()
		return
	}
	f.dumped[trigger] = true
	files, err := f.bundleLocked(trigger)
	f.mu.Unlock()
	if err != nil {
		// A bundle that fails to encode is dropped, never fatal: the
		// flight recorder must not take down the run it is documenting.
		return
	}
	cb(f.seq, f.meta, trigger, files)
}

// bundleLocked renders the bundle files from the current ring state.
func (f *flightRun) bundleLocked(trigger string) ([]BundleFile, error) {
	frames := f.framesLocked()

	var epochsBuf bytes.Buffer
	enc := json.NewEncoder(&epochsBuf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			return nil, err
		}
	}

	ctx := bundleContext{
		Trigger:        trigger,
		RunSeq:         f.seq,
		Meta:           f.meta,
		Epochs:         f.epochs,
		RetainedEpochs: len(frames),
		AlertCount:     f.alertN,
		Alerts:         f.alerts,
		FaultCount:     f.faultN,
		Faults:         f.faults,
	}
	if f.decide.Count() > 0 {
		ctx.Quantiles = map[string]float64{
			"decide_p50_ns": f.decide.Quantile(0.5),
			"decide_p95_ns": f.decide.Quantile(0.95),
			"decide_p99_ns": f.decide.Quantile(0.99),
			"decide_max_ns": f.decide.Max(),
		}
	}
	ctxData, err := json.MarshalIndent(ctx, "", "  ")
	if err != nil {
		return nil, err
	}

	var spansBuf bytes.Buffer
	if err := f.rec.timeline.WriteTraceJSON(&spansBuf); err != nil {
		return nil, err
	}

	prefix := "flight/" + trigger + "/"
	return []BundleFile{
		{Name: prefix + "epochs.jsonl", Data: epochsBuf.Bytes()},
		{Name: prefix + "context.json", Data: append(ctxData, '\n')},
		{Name: prefix + "spans.json", Data: spansBuf.Bytes()},
	}, nil
}

// framesLocked copies the retained frames in chronological order.
func (f *flightRun) framesLocked() []frame {
	out := make([]frame, 0, len(f.ring))
	out = append(out, f.ring[f.nextIdx:]...)
	out = append(out, f.ring[:f.nextIdx]...)
	return out
}

// ReadEpochsJSONL decodes a bundle's epochs.jsonl back into frames — the
// loader tests and odrl-obs use it to validate dumps.
func ReadEpochsJSONL(data []byte) ([]obs.EpochEvent, error) {
	var out []obs.EpochEvent
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev obs.EpochEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// ValidateTraceJSON checks that data parses as the Chrome/Perfetto
// trace-event format the monitor's timeline emits (displayTimeUnit +
// traceEvents array), returning the event count.
func ValidateTraceJSON(data []byte) (int, error) {
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return 0, err
	}
	return len(tf.TraceEvents), nil
}

// interface conformance pins: the chain link must satisfy every optional
// observer refinement the harness probes for.
var (
	_ obs.Observer           = (*Recorder)(nil)
	_ obs.RunObserver        = (*flightRun)(nil)
	_ obs.EpochDetailSampler = (*flightRun)(nil)
	_ obs.AlertObserver      = (*flightRun)(nil)
	_ obs.FaultObserver      = (*flightRun)(nil)
	_ obs.LearnObserver      = (*flightRun)(nil)
	_ obs.SpanSink           = (*monitor.Timeline)(nil)
)
