// Package flight is the always-on flight recorder: a bounded ring of
// recent epoch events, phase spans and quantile snapshots that costs
// almost nothing while a run is healthy and dumps a post-mortem bundle
// (last-N epochs JSONL + Perfetto slice + alert context) the moment an
// alert fires, a run fails, or the operator sends SIGQUIT. The bundle
// lands in the run's ledger artifact directory, so the epochs leading up
// to an incident survive process exit.
//
// The recorder is an obs.Observer chain link, slotted between the monitor
// and the JSONL tracer: it sees every epoch (the ring must hold the
// moments before an alert, and alerts can fire on any epoch) but keeps
// only scalar fields, so the harness's expensive island/histogram
// aggregation still runs only on the tracer's sampling stride.
package flight

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/monitor"
)

// DefaultRingCap is the default retained-epoch window. The acceptance bar
// for post-mortems is "last ≥64 epochs"; 256 gives headroom at ~20 KB per
// run.
const DefaultRingCap = 256

// MinRingCap is the floor: a post-mortem with fewer epochs of context
// than an alert rule's hold window is useless.
const MinRingCap = 64

// defaultKeepRuns bounds how many finished runs stay dumpable (for
// process-failure and SIGQUIT dumps after the run ended).
const defaultKeepRuns = 16

// BundleFile is one file of a post-mortem bundle, named relative to the
// run's artifact directory.
type BundleFile struct {
	Name string
	Data []byte
}

// Summary is one run's end-of-run rollup, delivered to OnRunEnd — the
// ledger glue turns it into the run record's metric summary. Metric keys
// follow the ledger's judged-metric registry (bips, over_j, …).
type Summary struct {
	Meta   obs.RunMeta
	Epochs int
	Alerts int
	Faults int
	// Metrics: bips, mean_w, peak_w, over_j, over_time_frac, max_temp_k
	// are derived from the deterministic epoch stream; decide_p50_ns and
	// decide_p99_ns are wall-clock host telemetry.
	Metrics map[string]float64
}

// Options configures a Recorder.
type Options struct {
	// RingCap bounds the retained epoch window per run (default
	// DefaultRingCap, floor MinRingCap).
	RingCap int
	// TimelineCap bounds the retained phase spans (default
	// monitor.DefaultTimelineCap).
	TimelineCap int
	// KeepRuns bounds how many runs stay dumpable after they end.
	KeepRuns int
	// OnDump receives each post-mortem bundle. runSeq is the recorder's
	// run sequence number (unique within the process), trigger is
	// "alert", "failed" or "sigquit". Nil disables dumping (the ring
	// still records, for tests and future triggers).
	OnDump func(runSeq int, meta obs.RunMeta, trigger string, files []BundleFile)
	// OnRunEnd receives each run's summary at End. Nil is allowed.
	OnRunEnd func(runSeq int, s Summary)
}

// Recorder is the flight-recorder observer. One recorder watches every
// run of a process; wrap it around the downstream observer (commonly the
// JSONL tracer) with Wrap, or use it alone as an obs.Observer.
type Recorder struct {
	opt      Options
	timeline *monitor.Timeline

	mu   sync.Mutex
	seq  int
	runs []*flightRun // retained for DumpAll; bounded by KeepRuns
}

// New builds a recorder.
func New(opt Options) *Recorder {
	if opt.RingCap <= 0 {
		opt.RingCap = DefaultRingCap
	}
	if opt.RingCap < MinRingCap {
		opt.RingCap = MinRingCap
	}
	if opt.TimelineCap <= 0 {
		opt.TimelineCap = monitor.DefaultTimelineCap
	}
	if opt.KeepRuns <= 0 {
		opt.KeepRuns = defaultKeepRuns
	}
	return &Recorder{opt: opt, timeline: monitor.NewTimeline(opt.TimelineCap)}
}

// Timeline returns the recorder's span ring; the harness tees controller
// phase spans into it alongside the monitor's timeline, and dumps export
// it as the bundle's Perfetto slice.
func (r *Recorder) Timeline() *monitor.Timeline { return r.timeline }

// Wrap chains the recorder in front of next. next may be nil.
func (r *Recorder) Wrap(next obs.Observer) obs.Observer {
	return chainObserver{r: r, next: next}
}

// BeginRun implements obs.Observer (a bare recorder with no downstream).
func (r *Recorder) BeginRun(meta obs.RunMeta) obs.RunObserver {
	return r.beginRun(meta, nil)
}

type chainObserver struct {
	r    *Recorder
	next obs.Observer
}

func (c chainObserver) BeginRun(meta obs.RunMeta) obs.RunObserver {
	var next obs.RunObserver
	if c.next != nil {
		next = c.next.BeginRun(meta)
	}
	return c.r.beginRun(meta, next)
}

func (r *Recorder) beginRun(meta obs.RunMeta, next obs.RunObserver) *flightRun {
	f := &flightRun{
		rec:    r,
		next:   next,
		meta:   meta,
		ring:   make([]frame, 0, r.opt.RingCap),
		decide: monitor.NewSketch(),
		dumped: map[string]bool{},
	}
	r.mu.Lock()
	r.seq++
	f.seq = r.seq
	r.runs = append(r.runs, f)
	// Evict the oldest *finished* runs beyond the keep window; live runs
	// are never dropped (they must stay dumpable on failure).
	if len(r.runs) > r.opt.KeepRuns {
		kept := r.runs[:0]
		excess := len(r.runs) - r.opt.KeepRuns
		for _, fr := range r.runs {
			if excess > 0 && fr != f && fr.ended() {
				excess--
				continue
			}
			kept = append(kept, fr)
		}
		r.runs = kept
	}
	r.mu.Unlock()
	return f
}

// DumpAll dumps a post-mortem bundle for every retained run that has not
// already dumped for this trigger. Safe to call from a signal handler
// goroutine while runs are observing epochs.
func (r *Recorder) DumpAll(trigger string) {
	r.mu.Lock()
	runs := append([]*flightRun(nil), r.runs...)
	r.mu.Unlock()
	for _, f := range runs {
		f.dump(trigger)
	}
}

// frame is one retained epoch: the scalar slice of obs.EpochEvent.
type frame struct {
	Epoch      int     `json:"epoch"`
	TimeS      float64 `json:"time_s"`
	PowerW     float64 `json:"power_w"`
	BudgetW    float64 `json:"budget_w"`
	OvershootW float64 `json:"overshoot_w"`
	MaxTempK   float64 `json:"max_temp_k"`
	DecideNs   int64   `json:"decide_ns"`
	IPS        float64 `json:"ips,omitempty"`

	LearnTDEMA         float64 `json:"learn_td_ema,omitempty"`
	LearnChurn         float64 `json:"learn_churn,omitempty"`
	LearnConvergedFrac float64 `json:"learn_converged_frac,omitempty"`
	LearnEpsilon       float64 `json:"learn_epsilon,omitempty"`
}

// maxKeptEvents bounds the alert/fault context lists in a bundle.
const maxKeptEvents = 32

// flightRun records one run. The mutex exists for dump concurrency (a
// SIGQUIT DumpAll races the epoch loop); on the steady path it is
// uncontended, so the per-epoch cost stays a lock/unlock pair plus a ring
// store.
type flightRun struct {
	rec  *Recorder
	next obs.RunObserver
	seq  int
	meta obs.RunMeta

	mu      sync.Mutex
	ring    []frame // grows to cap, then wraps via nextIdx
	nextIdx int
	epochs  int
	alerts  []obs.AlertEvent
	alertN  int
	faults  []obs.FaultEvent
	faultN  int
	decide  *monitor.Sketch
	dumped  map[string]bool
	done    bool

	// Deterministic accumulators for the end-of-run summary.
	sumIPS     float64
	sumPowerW  float64
	peakW      float64
	maxTempK   float64
	overJ      float64
	overEpochs int

	nextWants bool
}

func (f *flightRun) ended() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// ShouldSample implements obs.RunObserver: the recorder samples every
// epoch (the ring must hold the run's most recent window regardless of
// the tracer's stride).
func (f *flightRun) ShouldSample(epoch int) bool {
	f.nextWants = f.next != nil && f.next.ShouldSample(epoch)
	return true
}

// WantsEpochDetail implements obs.EpochDetailSampler: the ring keeps only
// scalars, so expensive island/histogram aggregation is needed just when
// the downstream observer samples this epoch (and itself wants detail).
func (f *flightRun) WantsEpochDetail(epoch int) bool {
	if !f.nextWants {
		return false
	}
	if ds, ok := f.next.(obs.EpochDetailSampler); ok {
		return ds.WantsEpochDetail(epoch)
	}
	return true
}

// ObserveEpoch implements obs.RunObserver. Allocation-free on the steady
// path: the ring is preallocated and the sketch is bucketed.
//
//odrl:hotpath
func (f *flightRun) ObserveEpoch(ev *obs.EpochEvent) {
	f.mu.Lock()
	fr := frame{
		Epoch:      ev.Epoch,
		TimeS:      ev.TimeS,
		PowerW:     ev.PowerW,
		BudgetW:    ev.BudgetW,
		OvershootW: ev.OvershootW,
		MaxTempK:   ev.MaxTempK,
		DecideNs:   ev.DecideNs,
		IPS:        ev.IPS,

		LearnTDEMA:         ev.LearnTDEMA,
		LearnChurn:         ev.LearnChurn,
		LearnConvergedFrac: ev.LearnConvergedFrac,
		LearnEpsilon:       ev.LearnEpsilon,
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, fr)
	} else {
		f.ring[f.nextIdx] = fr
		f.nextIdx = (f.nextIdx + 1) % len(f.ring)
	}
	f.epochs++
	f.decide.Observe(float64(ev.DecideNs))

	f.sumIPS += ev.IPS
	f.sumPowerW += ev.PowerW
	if ev.PowerW > f.peakW {
		f.peakW = ev.PowerW
	}
	if ev.MaxTempK > f.maxTempK {
		f.maxTempK = ev.MaxTempK
	}
	if ev.OvershootW > 0 {
		f.overJ += ev.OvershootW * f.meta.EpochS
		f.overEpochs++
	}
	f.mu.Unlock()

	if f.nextWants {
		f.next.ObserveEpoch(ev)
	}
}

// ObserveAlert implements obs.AlertObserver: the first alert of a run
// triggers its post-mortem dump (later alerts only extend the context
// list — the interesting window is the one before the first firing).
func (f *flightRun) ObserveAlert(ev *obs.AlertEvent) {
	f.mu.Lock()
	f.alertN++
	if len(f.alerts) < maxKeptEvents {
		f.alerts = append(f.alerts, *ev)
	}
	f.mu.Unlock()
	f.dump("alert")
	if ao, ok := f.next.(obs.AlertObserver); ok {
		ao.ObserveAlert(ev)
	}
}

// ObserveFault implements obs.FaultObserver.
func (f *flightRun) ObserveFault(ev *obs.FaultEvent) {
	f.mu.Lock()
	f.faultN++
	if len(f.faults) < maxKeptEvents {
		f.faults = append(f.faults, *ev)
	}
	f.mu.Unlock()
	if fo, ok := f.next.(obs.FaultObserver); ok {
		fo.ObserveFault(ev)
	}
}

// ObserveLearn implements obs.LearnObserver by forwarding on the
// downstream stride (the learn scalars the ring keeps arrive via the
// epoch event's Learn* fields).
func (f *flightRun) ObserveLearn(ev *obs.LearnEvent) {
	if !f.nextWants {
		return
	}
	if lo, ok := f.next.(obs.LearnObserver); ok {
		lo.ObserveLearn(ev)
	}
}

// ObserveConverged implements obs.LearnObserver (rare events, forwarded
// unconditionally like faults).
func (f *flightRun) ObserveConverged(ev *obs.ConvergedEvent) {
	if lo, ok := f.next.(obs.LearnObserver); ok {
		lo.ObserveConverged(ev)
	}
}

// End implements obs.RunObserver: rolls up the summary and delivers it.
func (f *flightRun) End() {
	f.mu.Lock()
	f.done = true
	s := f.summaryLocked()
	f.mu.Unlock()
	if cb := f.rec.opt.OnRunEnd; cb != nil {
		cb(f.seq, s)
	}
	if f.next != nil {
		f.next.End()
	}
}

func (f *flightRun) summaryLocked() Summary {
	s := Summary{
		Meta:   f.meta,
		Epochs: f.epochs,
		Alerts: f.alertN,
		Faults: f.faultN,
	}
	if f.epochs == 0 {
		return s
	}
	n := float64(f.epochs)
	s.Metrics = map[string]float64{
		"bips":           f.sumIPS / n / 1e9,
		"mean_w":         f.sumPowerW / n,
		"peak_w":         f.peakW,
		"max_temp_k":     f.maxTempK,
		"over_j":         f.overJ,
		"over_time_frac": float64(f.overEpochs) / n,
		"decide_p50_ns":  f.decide.Quantile(0.5),
		"decide_p99_ns":  f.decide.Quantile(0.99),
	}
	return s
}
