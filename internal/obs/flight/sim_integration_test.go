package flight_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/sim"
)

// TestFaultyRunTriggersAlertDump is the acceptance end-to-end: an
// F18-style faulty run (the canonical fault plan with its dead-core axis
// pushed until throughput collapses) must fire a deterministic run-health
// alert, and the alert must leave a post-mortem bundle holding the last
// >= 64 epochs plus loadable Perfetto spans.
func TestFaultyRunTriggersAlertDump(t *testing.T) {
	var dumps []struct {
		trigger string
		files   []flight.BundleFile
	}
	rec := flight.New(flight.Options{
		OnDump: func(_ int, _ obs.RunMeta, trigger string, files []flight.BundleFile) {
			dumps = append(dumps, struct {
				trigger string
				files   []flight.BundleFile
			}{trigger, files})
		},
	})

	opts := sim.DefaultOptions()
	opts.WarmupS = 0.2
	opts.MeasureS = 2
	// The canonical F18 plan at full intensity, with the dead-core axis
	// raised so the bips-collapse invariant (throughput below half its
	// running peak for 20 epochs) is guaranteed to trip inside the window.
	plan := fault.Scaled(1.0)
	plan.DeadCoreFrac = 0.8
	opts.FaultPlan = &plan
	mon := monitor.New(monitor.Options{
		Rules: monitor.DeterministicDefaultRules(opts.BudgetW, opts.EpochS),
	})
	opts.Monitor = mon
	opts.Observer = rec            // chain: monitor -> flight
	opts.SpanSink = rec.Timeline() // teed with the monitor timeline by sim

	env, err := sim.EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sim.NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(opts, c); err != nil {
		t.Fatal(err)
	}

	if mon.AlertsFired() == 0 {
		t.Fatal("faulty run fired no alerts; the dump path was never exercised")
	}
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want exactly 1 (first alert only)", len(dumps))
	}
	d := dumps[0]
	if d.trigger != "alert" {
		t.Fatalf("dump trigger %q, want alert", d.trigger)
	}
	byName := map[string][]byte{}
	for _, f := range d.files {
		byName[strings.TrimPrefix(f.Name, "flight/alert/")] = f.Data
	}
	events, err := flight.ReadEpochsJSONL(byName["epochs.jsonl"])
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 64 {
		t.Fatalf("bundle holds %d epochs, want >= 64", len(events))
	}
	// The retained window must end at the alert epoch: the whole point is
	// the moments leading up to the incident.
	for i := 1; i < len(events); i++ {
		if events[i].Epoch != events[i-1].Epoch+1 {
			t.Fatalf("retained epochs not contiguous at %d: %d -> %d", i, events[i-1].Epoch, events[i].Epoch)
		}
	}
	n, err := flight.ValidateTraceJSON(byName["spans.json"])
	if err != nil {
		t.Fatalf("spans.json is not loadable Perfetto trace JSON: %v", err)
	}
	if n == 0 {
		t.Fatal("spans.json holds no spans; the od-rl controller streams phase spans and the harness should have teed them into the recorder")
	}
	if !strings.Contains(string(byName["context.json"]), `"trigger": "alert"`) {
		t.Fatalf("context.json: %s", byName["context.json"])
	}
}
