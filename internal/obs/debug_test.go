package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestStartDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("epochs").Add(42)
	reg.Gauge("power_w").Set(88.5)

	d, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr() + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/obs status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["epochs"] != 42 || snap.Gauges["power_w"] != 88.5 {
		t.Errorf("snapshot = %+v", snap)
	}

	resp, err = http.Get("http://" + d.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestStartDebugNilRegistry(t *testing.T) {
	if _, err := StartDebug("127.0.0.1:0", nil); err == nil {
		t.Error("nil registry accepted")
	}
}
