//go:build !linux

package obs

// CPUSeconds is unavailable off Linux; callers fall back to wall-clock
// ratios (noisier, same contract).
func CPUSeconds() float64 { return 0 }
