package obs

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on zero-value snapshot = %g, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h, err := NewHistogram([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	s := h.snapshot()
	// All mass in [0,10]: the quantile interpolates linearly across it.
	if got := s.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50 = %g, want 5", got)
	}
	if got := s.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p100 = %g, want 10", got)
	}
	if got := s.Quantile(-1); got < 0 || got > 10 {
		t.Fatalf("clamped q<0 out of bucket range: %g", got)
	}
}

func TestQuantileOverflowAndInfBucket(t *testing.T) {
	// Observations beyond the last bound land in the overflow bucket; the
	// estimate saturates at the last finite bound instead of inventing
	// values past what the histogram can resolve.
	h, err := NewHistogram([]float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1e6)
	}
	if got := h.snapshot().Quantile(0.99); got != 10 {
		t.Fatalf("overflow p99 = %g, want saturation at 10", got)
	}

	// An explicit +Inf last bound behaves the same way.
	hInf, err := NewHistogram([]float64{1, 10, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		hInf.Observe(1e6)
	}
	if got := hInf.snapshot().Quantile(0.99); got != 10 {
		t.Fatalf("+Inf-bucket p99 = %g, want saturation at 10", got)
	}
	// Degenerate single +Inf bucket: nothing resolvable, estimate is 0.
	hOnly, err := NewHistogram([]float64{math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	hOnly.Observe(42)
	if got := hOnly.snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("single +Inf bucket p50 = %g, want 0", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h, err := NewHistogram([]float64{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i * 3)) // 0..297, ~uniform over the three buckets
	}
	s := h.snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 150, 10},
		{0.95, 285, 10},
		{0.99, 297, 10},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
	// Monotonic in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotonic at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}
