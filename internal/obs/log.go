package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// LogEvent writes one structured JSONL record {"event": name, key: value,
// …} to w, for run-configuration lines that make logs self-describing and
// runs reproducible from stderr alone. kv is alternating key, value pairs;
// a trailing odd key is recorded under "!BADKEY".
func LogEvent(w io.Writer, event string, kv ...any) error {
	m := make(map[string]any, 1+len(kv)/2)
	m["event"] = event
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		m[key] = kv[i+1]
	}
	if len(kv)%2 != 0 {
		m["!BADKEY"] = kv[len(kv)-1]
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
