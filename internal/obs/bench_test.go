package obs

import (
	"testing"
)

// sinkRun mirrors the harness's per-epoch observer gate so the benchmarks
// measure exactly what sim.Run pays.
var benchSampled int

// BenchmarkObsDisabledHotPath is the satellite-task guarantee: with
// tracing disabled (the Nop observer — same gate shape as a decimated
// miss), the per-epoch cost of the observability hook must stay below
// 5 ns. CI runs this with -benchtime=1x as a compile-and-run check; run
// it normally to see the real figure.
func BenchmarkObsDisabledHotPath(b *testing.B) {
	run := Nop().BeginRun(RunMeta{})
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if run.ShouldSample(i) {
			n++
		}
	}
	benchSampled = n
}

// BenchmarkObsDecimatedMiss measures a real tracer's off-stride epochs —
// the common case on a decimated long run.
func BenchmarkObsDecimatedMiss(b *testing.B) {
	tr := NewTracer(NewWriterSink(discard{}), TracerOptions{Every: 1 << 30})
	run := tr.BeginRun(RunMeta{})
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if run.ShouldSample(i + 1) { // never hits epoch 0's on-stride slot
			n++
		}
	}
	benchSampled = n
}

// BenchmarkObsCounterInc measures the registry's hot recording path.
func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsHistogramObserve measures lock-free bucket recording.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h, err := NewHistogram([]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000000))
	}
}

// BenchmarkObsTracerSampled measures the full emit path (marshal + sink)
// for one sampled epoch, the upper bound a traced run pays per sample.
func BenchmarkObsTracerSampled(b *testing.B) {
	tr := NewTracer(NewWriterSink(discard{}), TracerOptions{})
	run := tr.BeginRun(RunMeta{Controller: "bench"})
	ev := EpochEvent{
		Epoch: 1, TimeS: 0.001, PowerW: 88, BudgetW: 90, MaxTempK: 330,
		IslandPowerW: []float64{22, 22, 22, 22},
		LevelHist:    []int{8, 8, 8, 8, 8, 8, 8, 8},
		DecideNs:     12345,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.ObserveEpoch(&ev)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
