package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// RunMeta identifies one simulation run in the trace stream.
type RunMeta struct {
	Controller string  `json:"controller,omitempty"`
	Workload   string  `json:"workload,omitempty"`
	Cores      int     `json:"cores,omitempty"`
	BudgetW    float64 `json:"budget_w,omitempty"`
	EpochS     float64 `json:"epoch_s,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
}

// EpochEvent is one sampled measurement epoch. Epoch counts from zero at
// the start of the measurement window. PowerW is the exact (noise-free)
// chip power, so integrating PowerW·EpochS over an undecimated trace
// reproduces the run's measured energy.
type EpochEvent struct {
	Epoch      int     `json:"epoch"`
	TimeS      float64 `json:"time_s"`
	PowerW     float64 `json:"power_w"`
	BudgetW    float64 `json:"budget_w"`
	OvershootW float64 `json:"overshoot_w"`
	MaxTempK   float64 `json:"max_temp_k"`
	// IslandPowerW sums observed per-core power by voltage-frequency
	// island (one entry for the whole chip when per-core DVFS is active).
	IslandPowerW []float64 `json:"island_power_w,omitempty"`
	// LevelHist counts cores per VF level at the start of the epoch.
	LevelHist []int `json:"level_hist,omitempty"`
	// DecideNs is the wall-clock controller decision latency this epoch.
	DecideNs int64 `json:"decide_ns"`
	// IPS is the chip-wide observed instruction throughput (sum of per-core
	// sensor readings), the per-epoch form of the BIPS the tables report.
	IPS float64 `json:"ips,omitempty"`
	// Learn* mirror the learning-introspection layer's headline metrics into
	// the epoch stream (so the monitor's frame store and alert rules see
	// them). All omitempty: traces recorded without -learn are byte-identical
	// to traces from builds that predate these fields.
	LearnTDEMA         float64 `json:"learn_td_ema,omitempty"`
	LearnChurn         float64 `json:"learn_churn,omitempty"`
	LearnConvergedFrac float64 `json:"learn_converged_frac,omitempty"`
	LearnEpsilon       float64 `json:"learn_epsilon,omitempty"`
}

// FaultEvent is one discrete injected fault (core death, telemetry
// blackout, budget-drop transient) reported by the fault-injection layer.
// Epoch counts from zero at the start of the measurement window and is
// negative for faults injected during warmup.
type FaultEvent struct {
	Epoch int     `json:"epoch"`
	TimeS float64 `json:"time_s"`
	// Kind names the fault class (see package fault's Kind* constants).
	Kind string `json:"kind"`
	// Core is the affected core, -1 for chip-wide faults.
	Core int `json:"core"`
	// UntilS is when the fault window ends; permanent faults omit it.
	UntilS float64 `json:"until_s,omitempty"`
}

// FaultObserver is optionally implemented by RunObservers that want the
// discrete fault events of a run alongside its epoch stream. Fault events
// are rare, so they are delivered unconditionally (no ShouldSample gate).
type FaultObserver interface {
	ObserveFault(ev *FaultEvent)
}

// AlertEvent is one fired run-health alert: a declarative rule (see
// internal/obs/monitor) whose condition held for its full ForEpochs
// window. Epoch counts from zero at the start of the measurement window.
type AlertEvent struct {
	Epoch int     `json:"epoch"`
	TimeS float64 `json:"time_s"`
	// Rule is the fired rule's name, Metric/Op/Threshold its condition.
	Rule      string  `json:"rule"`
	Metric    string  `json:"metric"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// Value is the metric value at the epoch the alert fired.
	Value float64 `json:"value"`
	// ForEpochs is how many consecutive epochs the condition held before
	// firing.
	ForEpochs int `json:"for_epochs"`
}

// AlertObserver is optionally implemented by RunObservers that want fired
// alerts in the run's stream. Like faults, alerts are rare and delivered
// unconditionally.
type AlertObserver interface {
	ObserveAlert(ev *AlertEvent)
}

// Record is one decoded JSONL trace line. Type selects which of the other
// fields are meaningful.
type Record struct {
	Type string `json:"type"` // "run_start" | "epoch" | "fault" | "alert" | "learn" | "converged" | "run_end"
	Run  int64  `json:"run"`
	// Meta is valid for run_start records.
	Meta RunMeta `json:"-"`
	// Event is valid for epoch records.
	Event EpochEvent `json:"-"`
	// Fault is valid for fault records.
	Fault FaultEvent `json:"-"`
	// Alert is valid for alert records.
	Alert AlertEvent `json:"-"`
	// Learn is valid for learn records.
	Learn LearnEvent `json:"-"`
	// Conv is valid for converged records.
	Conv ConvergedEvent `json:"-"`
	// Epochs and Sampled are valid for run_end records.
	Epochs  int `json:"epochs,omitempty"`
	Sampled int `json:"sampled,omitempty"`
}

// wire shapes for emission: embedding inlines the payload fields so each
// line is one flat JSON object.
type runStartRec struct {
	Type string `json:"type"`
	Run  int64  `json:"run"`
	RunMeta
}

type epochRec struct {
	Type string `json:"type"`
	Run  int64  `json:"run"`
	EpochEvent
}

type faultRec struct {
	Type string `json:"type"`
	Run  int64  `json:"run"`
	FaultEvent
}

type alertRec struct {
	Type string `json:"type"`
	Run  int64  `json:"run"`
	AlertEvent
}

type learnRec struct {
	Type string `json:"type"`
	Run  int64  `json:"run"`
	LearnEvent
}

type convergedRec struct {
	Type string `json:"type"`
	Run  int64  `json:"run"`
	ConvergedEvent
}

type runEndRec struct {
	Type    string `json:"type"`
	Run     int64  `json:"run"`
	Epochs  int    `json:"epochs"`
	Sampled int    `json:"sampled"`
}

// Sink consumes encoded trace lines. Emit receives one JSON object without
// a trailing newline and must not retain the slice. Implementations are
// called under the tracer's lock, so they need not be concurrency-safe.
type Sink interface {
	Emit(line []byte) error
	Close() error
}

// WriterSink buffers lines to an io.Writer, closing it on Close when it is
// also an io.Closer.
type WriterSink struct {
	w  io.Writer
	bw *bufio.Writer
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: w, bw: bufio.NewWriterSize(w, 1<<16)}
}

// Emit implements Sink.
func (s *WriterSink) Emit(line []byte) error {
	if _, err := s.bw.Write(line); err != nil {
		return err
	}
	return s.bw.WriteByte('\n')
}

// Close implements Sink.
func (s *WriterSink) Close() error {
	err := s.bw.Flush()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Observer receives structured events from simulation runs. BeginRun is
// called once per run and returns a handle scoped to that run, so one
// Observer may watch many (possibly concurrent) runs.
type Observer interface {
	BeginRun(meta RunMeta) RunObserver
}

// RunObserver consumes one run's epoch stream. The harness calls
// ShouldSample first and skips event assembly entirely when it returns
// false, keeping the disabled path free. ObserveEpoch must not retain the
// event or its slices. End marks the run finished.
type RunObserver interface {
	ShouldSample(epoch int) bool
	ObserveEpoch(ev *EpochEvent)
	End()
}

// EpochDetailSampler is an optional RunObserver refinement for observers
// that sample every epoch but only need the expensive aggregate fields
// (IslandPowerW, LevelHist) on some of them. When a RunObserver implements
// it, the harness calls WantsEpochDetail after a true ShouldSample (same
// epoch, same goroutine) and on false delivers the event with those slices
// nil; the scalar fields are always populated. Observers that don't
// implement it get full detail on every sampled epoch.
type EpochDetailSampler interface {
	WantsEpochDetail(epoch int) bool
}

// Nop returns an Observer whose runs sample nothing — the reference
// "disabled" observer whose per-epoch cost is a single predictable branch.
func Nop() Observer { return nopObserver{} }

type nopObserver struct{}

func (nopObserver) BeginRun(RunMeta) RunObserver { return nopRun{} }

type nopRun struct{}

func (nopRun) ShouldSample(int) bool    { return false }
func (nopRun) ObserveEpoch(*EpochEvent) {}
func (nopRun) End()                     {}

// TracerOptions tunes a Tracer.
type TracerOptions struct {
	// Every is the decimation stride: epochs 0, Every, 2·Every, … are
	// sampled. Values below 1 default to 1 (sample every epoch).
	Every int
	// Registry, when set, receives aggregate tracer metrics: run and
	// sample counters plus a decision-latency histogram.
	Registry *Registry
}

// Tracer is an Observer that emits JSONL records to a Sink. It is safe for
// concurrent runs; lines from interleaved runs are distinguished by run ID.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	every int
	runs  atomic.Int64

	runCtr     *Counter
	sampleCtr  *Counter
	decideHist *Histogram
}

// NewTracer builds a tracer over the sink.
func NewTracer(sink Sink, opt TracerOptions) *Tracer {
	if opt.Every < 1 {
		opt.Every = 1
	}
	t := &Tracer{sink: sink, every: opt.Every}
	if r := opt.Registry; r != nil {
		t.runCtr = r.Counter("obs.trace.runs")
		t.sampleCtr = r.Counter("obs.trace.samples")
		// Decision latency from sub-microsecond per-core loops up to
		// multi-millisecond centralised sweeps.
		t.decideHist, _ = r.Histogram("obs.trace.decide_ns", []float64{
			1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
		})
	}
	return t
}

// BeginRun implements Observer.
func (t *Tracer) BeginRun(meta RunMeta) RunObserver {
	id := t.runs.Add(1)
	if t.runCtr != nil {
		t.runCtr.Inc()
	}
	t.emit(runStartRec{Type: "run_start", Run: id, RunMeta: meta})
	return &runTracer{t: t, id: id}
}

// Close flushes and closes the sink.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink.Close()
}

func (t *Tracer) emit(rec any) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink.Emit(b) //nolint:errcheck // tracing is best-effort; sinks surface errors on Close
}

// runTracer tracks one run's stream. The counters are atomic so a single
// run's observer tolerates concurrent emitters (e.g. a sharded stepping
// loop reporting from worker goroutines), matching the Tracer's own
// concurrency guarantee.
type runTracer struct {
	t       *Tracer
	id      int64
	epochs  atomic.Int64
	sampled atomic.Int64
}

// ShouldSample implements RunObserver.
func (r *runTracer) ShouldSample(epoch int) bool {
	return epoch%r.t.every == 0
}

// ObserveEpoch implements RunObserver.
func (r *runTracer) ObserveEpoch(ev *EpochEvent) {
	last := int64(ev.Epoch + 1)
	for {
		seen := r.epochs.Load()
		if last <= seen || r.epochs.CompareAndSwap(seen, last) {
			break
		}
	}
	r.sampled.Add(1)
	if r.t.sampleCtr != nil {
		r.t.sampleCtr.Inc()
	}
	if r.t.decideHist != nil {
		r.t.decideHist.Observe(float64(ev.DecideNs))
	}
	r.t.emit(epochRec{Type: "epoch", Run: r.id, EpochEvent: *ev})
}

// ObserveFault implements FaultObserver.
func (r *runTracer) ObserveFault(ev *FaultEvent) {
	r.t.emit(faultRec{Type: "fault", Run: r.id, FaultEvent: *ev})
}

// ObserveAlert implements AlertObserver.
func (r *runTracer) ObserveAlert(ev *AlertEvent) {
	r.t.emit(alertRec{Type: "alert", Run: r.id, AlertEvent: *ev})
}

// ObserveLearn implements LearnObserver. Learn events follow the epoch
// stream's sampling, so no extra gate is needed here.
func (r *runTracer) ObserveLearn(ev *LearnEvent) {
	r.t.emit(learnRec{Type: "learn", Run: r.id, LearnEvent: *ev})
}

// ObserveConverged implements LearnObserver.
func (r *runTracer) ObserveConverged(ev *ConvergedEvent) {
	r.t.emit(convergedRec{Type: "converged", Run: r.id, ConvergedEvent: *ev})
}

// End implements RunObserver.
func (r *runTracer) End() {
	r.t.emit(runEndRec{
		Type: "run_end", Run: r.id,
		Epochs: int(r.epochs.Load()), Sampled: int(r.sampled.Load()),
	})
}

// ReadRecords parses a JSONL trace stream back into records, the inverse
// of what Tracer emits.
func ReadRecords(rd io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
			Run  int64  `json:"run"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		rec := Record{Type: probe.Type, Run: probe.Run}
		switch probe.Type {
		case "run_start":
			if err := json.Unmarshal(raw, &rec.Meta); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
		case "epoch":
			if err := json.Unmarshal(raw, &rec.Event); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
		case "fault":
			if err := json.Unmarshal(raw, &rec.Fault); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
		case "alert":
			if err := json.Unmarshal(raw, &rec.Alert); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
		case "learn":
			if err := json.Unmarshal(raw, &rec.Learn); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
		case "converged":
			if err := json.Unmarshal(raw, &rec.Conv); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
		case "run_end":
			var end runEndRec
			if err := json.Unmarshal(raw, &end); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
			rec.Epochs, rec.Sampled = end.Epochs, end.Sampled
		default:
			return nil, fmt.Errorf("obs: trace line %d: unknown record type %q", line, probe.Type)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
