package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentEmitters hammers get-or-create and recording from
// many goroutines; run under -race this is the registry's concurrency gate.
func TestRegistryConcurrentEmitters(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		iters      = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shared names contend on get-or-create; per-goroutine names
				// exercise concurrent map growth.
				r.Counter("shared.ops").Inc()
				r.Counter(fmt.Sprintf("own.%d", g)).Add(2)
				r.Gauge("shared.gauge").Set(float64(i))
				h, err := r.Histogram("shared.hist", []float64{1, 10, 100})
				if err != nil {
					t.Error(err)
					return
				}
				h.Observe(float64(i % 128))
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["shared.ops"]; got != goroutines*iters {
		t.Fatalf("shared.ops = %d, want %d", got, goroutines*iters)
	}
	for g := 0; g < goroutines; g++ {
		if got := s.Counters[fmt.Sprintf("own.%d", g)]; got != 2*iters {
			t.Fatalf("own.%d = %d, want %d", g, got, 2*iters)
		}
	}
	h := s.Histograms["shared.hist"]
	if h.Count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*iters)
	}
	var bucketTotal int64
	for _, c := range h.Counts {
		bucketTotal += c
	}
	if bucketTotal != h.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count)
	}
}

// TestTracerParallelEmitters hammers one Tracer with concurrent runs, each
// emitting epochs from its own goroutine, plus concurrent emitters within a
// single run. The JSONL stream must stay parseable with exact per-run
// accounting.
func TestTracerParallelEmitters(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	tr := NewTracer(NewWriterSink(&buf), TracerOptions{Registry: reg})

	const (
		runs      = 8
		epochs    = 200
		observers = 4 // concurrent emitters sharing one run's observer
	)
	var wg sync.WaitGroup
	for rr := 0; rr < runs; rr++ {
		rr := rr
		wg.Add(1)
		go func() {
			defer wg.Done()
			ro := tr.BeginRun(RunMeta{Controller: "od-rl", Cores: 64, Seed: uint64(rr)})
			var ewg sync.WaitGroup
			for o := 0; o < observers; o++ {
				o := o
				ewg.Add(1)
				go func() {
					defer ewg.Done()
					for e := o; e < epochs; e += observers {
						if !ro.ShouldSample(e) {
							continue
						}
						ro.ObserveEpoch(&EpochEvent{Epoch: e, PowerW: 50, BudgetW: 55, DecideNs: 100})
					}
				}()
			}
			ewg.Wait()
			ro.End()
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("trace stream corrupted by concurrency: %v", err)
	}
	starts, ends := 0, 0
	sampledByRun := map[int64]int{}
	for _, rec := range recs {
		switch rec.Type {
		case "run_start":
			starts++
		case "epoch":
			sampledByRun[rec.Run]++
		case "run_end":
			ends++
			if rec.Epochs != epochs {
				t.Fatalf("run %d reports %d epochs, want %d", rec.Run, rec.Epochs, epochs)
			}
			if rec.Sampled != epochs {
				t.Fatalf("run %d reports %d sampled, want %d", rec.Run, rec.Sampled, epochs)
			}
			if got := sampledByRun[rec.Run]; got != epochs {
				t.Fatalf("run %d has %d epoch lines, want %d", rec.Run, got, epochs)
			}
		}
	}
	if starts != runs || ends != runs {
		t.Fatalf("got %d starts / %d ends, want %d each", starts, ends, runs)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["obs.trace.runs"]; got != runs {
		t.Fatalf("obs.trace.runs = %d, want %d", got, runs)
	}
	if got := snap.Counters["obs.trace.samples"]; got != runs*epochs {
		t.Fatalf("obs.trace.samples = %d, want %d", got, runs*epochs)
	}
}
