package obs

import "runtime"

// Host stamps the machine an artifact (benchmark report, ledger run
// record) was produced on. Every BENCH_*.json emitter and every ledger
// record embeds it, so a checked-in report or a queried run is never read
// without the context that bounds it: wall-clock numbers are only
// comparable across records sharing the same stamp.
type Host struct {
	// HostCPUs is runtime.NumCPU(); parallel speedup is bounded by it.
	HostCPUs   int `json:"host_cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion, OS and Arch identify the toolchain and platform the
	// timings were taken under.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Note is a human-readable caveat about this host, e.g. that a
	// single-CPU machine caps every parallel speedup at ~1x.
	Note string `json:"note,omitempty"`
}

// HostInfo snapshots the current host. It is the one shared stamp helper:
// per-CLI copies drift (and then two reports disagree about what
// "this host" means), so every emitter calls this instead.
func HostInfo() Host {
	h := Host{
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if h.HostCPUs == 1 {
		h.Note = "single-CPU host: parallel speedups are ~1x by construction; overhead medians remain valid (paired off/on reps, CPU-time ratios)"
	}
	return h
}
