package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRecords: the JSONL trace reader must never panic, and every
// stream it accepts must decode to records with known types.
func FuzzReadRecords(f *testing.F) {
	// Seed corpus: a real emitted stream (run_start, epochs, a fault,
	// run_end), then malformed variants.
	var emitted bytes.Buffer
	tr := NewTracer(NewWriterSink(&emitted), TracerOptions{Every: 1})
	run := tr.BeginRun(RunMeta{Controller: "od-rl", Cores: 4, BudgetW: 40})
	run.ObserveEpoch(&EpochEvent{Epoch: 0, PowerW: 10, BudgetW: 40, DecideNs: 100})
	if fo, ok := run.(FaultObserver); ok {
		fo.ObserveFault(&FaultEvent{Epoch: 0, Kind: "core_dead", Core: 2})
	}
	if ao, ok := run.(AlertObserver); ok {
		ao.ObserveAlert(&AlertEvent{Epoch: 3, Rule: "sustained-overshoot", Metric: "overshoot_w", Op: ">", Threshold: 1, Value: 2, ForEpochs: 2})
	}
	run.End()
	if err := tr.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(emitted.String())
	f.Add(`{"type":"run_start","run":1}`)
	f.Add(`{"type":"fault","run":1,"kind":"blackout","core":-1}`)
	f.Add(`{"type":"alert","run":1,"rule":"nan-telemetry","op":"nonfinite"}`)
	f.Add(`{"type":"mystery","run":1}`)
	f.Add(`{"type":"epoch","run":"not-a-number"}`)
	f.Add(`{}` + "\n" + `{"type":"run_end","run":1}`)
	f.Add("not json\n")

	valid := map[string]bool{"run_start": true, "epoch": true, "fault": true, "alert": true, "run_end": true}
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadRecords(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range recs {
			if !valid[r.Type] {
				t.Fatalf("record %d: accepted unknown type %q", i, r.Type)
			}
		}
	})
}
