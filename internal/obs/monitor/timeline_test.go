package monitor

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTimelineRingOverwrite(t *testing.T) {
	tl := NewTimeline(16)
	for i := 0; i < 40; i++ {
		tl.RecordSpan("local", int64(i*100), 50)
	}
	if tl.Total() != 40 {
		t.Fatalf("Total = %d, want 40", tl.Total())
	}
	spans := tl.spans()
	if len(spans) != 16 {
		t.Fatalf("retained %d spans, want 16", len(spans))
	}
	// The ring keeps the most recent window, in chronological order.
	for i, sp := range spans {
		if want := int64((24 + i) * 100); sp.StartNs != want {
			t.Fatalf("spans[%d].StartNs = %d, want %d", i, sp.StartNs, want)
		}
	}
}

// TestWriteTraceJSONSchema checks the export against the trace-event JSON
// schema Perfetto and chrome://tracing load: a traceEvents array whose "X"
// entries carry name/ph/ts/dur/pid/tid with microsecond timestamps, plus
// one "M" thread_name metadata record per track.
func TestWriteTraceJSONSchema(t *testing.T) {
	tl := NewTimeline(64)
	tl.RecordSpan("local", 1_000_000, 2_000)  // 1ms in, 2µs long
	tl.RecordSpan("global", 1_500_000, 4_000) // 1.5ms in, 4µs long
	tl.RecordSpan("local", 2_000_000, 2_500)

	var buf bytes.Buffer
	if err := tl.WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var meta, complete int
	tracks := map[string]int{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Fatalf("bad metadata event %+v", ev)
			}
			tracks[ev.Args["name"].(string)] = ev.Tid
		case "X":
			complete++
			if ev.Dur <= 0 || ev.Ts < 0 || ev.Pid == 0 || ev.Tid == 0 {
				t.Fatalf("bad complete event %+v", ev)
			}
			if tid, ok := tracks[ev.Name]; !ok || tid != ev.Tid {
				t.Fatalf("event %q on tid %d, track table %v", ev.Name, ev.Tid, tracks)
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 3 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 3", meta, complete)
	}
	// Timestamps rebased to the first span and converted ns → µs.
	first := f.TraceEvents[1] // events follow their track's metadata record
	if first.Ph != "X" || first.Ts != 0 || first.Dur != 2 {
		t.Fatalf("first complete event = %+v, want ts 0 dur 2", first)
	}
}

func TestWriteTraceJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTimeline(16).WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if evs, ok := f["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty timeline exported %v", f["traceEvents"])
	}
}
