package monitor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// recObserver records what reaches the downstream observer, sampling every
// stride-th epoch like the JSONL tracer does.
type recObserver struct {
	stride  int
	epochs  []int
	alerts  []obs.AlertEvent
	faults  int
	ended   bool
	sampled int
}

func (r *recObserver) BeginRun(obs.RunMeta) obs.RunObserver { return (*recRun)(r) }

type recRun recObserver

func (r *recRun) ShouldSample(epoch int) bool { return epoch%r.stride == 0 }
func (r *recRun) ObserveEpoch(ev *obs.EpochEvent) {
	r.epochs = append(r.epochs, ev.Epoch)
	r.sampled++
}
func (r *recRun) ObserveAlert(ev *obs.AlertEvent) { r.alerts = append(r.alerts, *ev) }
func (r *recRun) ObserveFault(*obs.FaultEvent)    { r.faults++ }
func (r *recRun) End()                            { r.ended = true }

func feedEpochs(ro obs.RunObserver, n int, fill func(e int, ev *obs.EpochEvent)) {
	for e := 0; e < n; e++ {
		if !ro.ShouldSample(e) {
			continue
		}
		ev := obs.EpochEvent{
			Epoch: e, TimeS: float64(e) * 1e-3,
			PowerW: 80, BudgetW: 90, IPS: 1e9, MaxTempK: 330, DecideNs: 5000,
		}
		if fill != nil {
			fill(e, &ev)
		}
		ro.ObserveEpoch(&ev)
	}
	ro.End()
}

var testMeta = obs.RunMeta{Controller: "odrl", Workload: "mix", Cores: 64, BudgetW: 90, EpochS: 1e-3, Seed: 1}

func TestWrapSeesEveryEpochAndHonoursNextStride(t *testing.T) {
	rec := &recObserver{stride: 4}
	m := New(Options{})
	ro := m.Wrap(rec).BeginRun(testMeta)
	feedEpochs(ro, 100, nil)

	runs := m.Runs()
	if len(runs) != 1 || runs[0].Epochs != 100 || !runs[0].Done {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Store.Snapshot()[0].Epochs != 100 {
		t.Fatalf("store saw %d epochs, want all 100", runs[0].Store.Snapshot()[0].Epochs)
	}
	if rec.sampled != 25 {
		t.Fatalf("downstream saw %d epochs, want 25 (its own stride)", rec.sampled)
	}
	for _, e := range rec.epochs {
		if e%4 != 0 {
			t.Fatalf("downstream received off-stride epoch %d", e)
		}
	}
	if !rec.ended {
		t.Fatal("End not forwarded")
	}
}

func TestDefaultRulesFireOnSustainedOvershoot(t *testing.T) {
	rec := &recObserver{stride: 1}
	m := New(Options{})
	ro := m.Wrap(rec).BeginRun(testMeta)
	// 30 epochs at 5% over budget: sustained-overshoot (>2% for 20) fires.
	feedEpochs(ro, 30, func(e int, ev *obs.EpochEvent) {
		ev.PowerW = 94.5
		ev.OvershootW = 4.5
	})

	h := m.Runs()[0]
	if h.AlertCount < 1 {
		t.Fatal("sustained overshoot fired no alert")
	}
	if h.Alerts[0].Rule != "sustained-overshoot" {
		t.Fatalf("first alert = %+v", h.Alerts[0])
	}
	if len(rec.alerts) != h.AlertCount {
		t.Fatalf("downstream got %d alerts, monitor fired %d", len(rec.alerts), h.AlertCount)
	}
	if m.AlertsFired() != h.AlertCount {
		t.Fatalf("AlertsFired = %d, want %d", m.AlertsFired(), h.AlertCount)
	}

	var buf bytes.Buffer
	if err := m.WriteAlertSummary(&buf); err != nil {
		t.Fatalf("WriteAlertSummary: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "sustained-overshoot") || !strings.Contains(out, "odrl") {
		t.Fatalf("summary missing alert row:\n%s", out)
	}
}

func TestNanTelemetryRuleFiresImmediately(t *testing.T) {
	m := New(Options{})
	ro := m.BeginRun(testMeta)
	feedEpochs(ro, 3, func(e int, ev *obs.EpochEvent) {
		if e == 1 {
			ev.PowerW = nan()
		}
	})
	h := m.Runs()[0]
	if h.AlertCount != 1 || h.Alerts[0].Rule != "nan-telemetry" || h.Alerts[0].Epoch != 1 {
		t.Fatalf("alerts = %+v", h.Alerts)
	}
}

func nan() float64 { var z float64; return z / z }

func TestCustomRulesReplaceDefaults(t *testing.T) {
	m := New(Options{Rules: []Rule{
		{Name: "cold-chip", Metric: MetricMaxTempK, Op: OpLT, Threshold: 1000, ForEpochs: 1},
	}})
	ro := m.BeginRun(testMeta)
	feedEpochs(ro, 25, func(e int, ev *obs.EpochEvent) { ev.OvershootW = 50 }) // would trip defaults
	h := m.Runs()[0]
	if h.AlertCount != 1 || h.Alerts[0].Rule != "cold-chip" {
		t.Fatalf("alerts = %+v (custom rules should replace defaults)", h.Alerts)
	}
}

func TestRegistryAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(Options{Registry: reg})
	ro := m.BeginRun(testMeta)
	ro.(obs.FaultObserver).ObserveFault(&obs.FaultEvent{Epoch: 0, Kind: "core_dead"})
	feedEpochs(ro, 10, nil)

	snap := reg.Snapshot()
	want := map[string]int64{"monitor.epochs": 10, "monitor.runs": 1, "monitor.faults_seen": 1}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("counter %s = %d, want %d", name, got, v)
		}
	}
	if got := snap.Gauges["monitor.power_w"]; got != 80 {
		t.Errorf("gauge monitor.power_w = %g, want 80", got)
	}
	if m.Runs()[0].Faults != 1 {
		t.Errorf("run faults = %d, want 1", m.Runs()[0].Faults)
	}
}

func TestWriteAlertSummaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(Options{}).WriteAlertSummary(&buf); err != nil {
		t.Fatalf("WriteAlertSummary: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("summary with no runs wrote %q", buf.String())
	}
}
