package monitor

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// DefaultTimelineCap bounds the retained span count: 8192 spans × ~40 B is
// a few hundred KB however long the run.
const DefaultTimelineCap = 8192

// Span is one recorded controller phase interval.
type Span struct {
	Name    string
	StartNs int64
	DurNs   int64
}

// Timeline is a bounded ring of controller phase spans, fed through
// obs.SpanSink from any controller implementing ctrl.SpanStreamer, and
// exported as Chrome/Perfetto trace-event JSON. When full it overwrites
// the oldest spans, so the export always shows the most recent window.
type Timeline struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total int64
}

// NewTimeline builds a timeline retaining up to capacity spans (min 16).
func NewTimeline(capacity int) *Timeline {
	if capacity < 16 {
		capacity = 16
	}
	return &Timeline{ring: make([]Span, 0, capacity)}
}

// RecordSpan implements obs.SpanSink.
func (t *Timeline) RecordSpan(name string, startNs, durNs int64) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, Span{Name: name, StartNs: startNs, DurNs: durNs})
	} else {
		t.ring[t.next] = Span{Name: name, StartNs: startNs, DurNs: durNs}
		t.next = (t.next + 1) % len(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans were ever recorded (retained or evicted).
func (t *Timeline) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// spans copies the retained spans in chronological order.
func (t *Timeline) spans() []Span {
	t.mu.Lock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	t.mu.Unlock()
	// Spans from concurrent controllers may interleave out of order in the
	// ring; the trace viewer wants monotonic timestamps per track.
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// traceEvent is one Chrome trace-event object ("X" complete events for
// spans, "M" metadata for track names). Timestamps and durations are
// microseconds, per the format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace-event JSON object format Perfetto and
// chrome://tracing load directly.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceJSON exports the retained spans as trace-event JSON: one track
// (tid) per phase name, timestamps rebased to the first span so the trace
// opens at t=0.
func (t *Timeline) WriteTraceJSON(w io.Writer) error {
	spans := t.spans()
	var t0 int64
	if len(spans) > 0 {
		t0 = spans[0].StartNs
	}
	tids := map[string]int{}
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		tid, ok := tids[sp.Name]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Name] = tid
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": sp.Name},
			})
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: sp.Name, Cat: "ctrl", Ph: "X",
			Ts:  float64(sp.StartNs-t0) / 1e3,
			Dur: float64(sp.DurNs) / 1e3,
			Pid: 1, Tid: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
