package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/obs"
)

// Derived rule metrics, available to rules on top of the raw store metrics
// (series.go): the overshoot as a fraction of the in-force budget (raw and
// EWMA-smoothed — an oscillating controller alternates over/under every
// epoch, so only the smoothed form can "hold" for consecutive epochs), the
// smoothed chip throughput relative to its running peak (collapse
// detection that survives workload phase noise), and the streaming p99 of
// decide latency.
const (
	MetricOvershootFrac = "overshoot_frac"
	MetricOvershootEMA  = "overshoot_frac_ema"
	MetricIPSVsPeak     = "ips_vs_peak"
	MetricDecideP99Ns   = "decide_p99_ns"
)

// learn.* rule metrics mirror the learning-introspection layer's headline
// metrics (see obs.EpochEvent's Learn* fields). They are zero unless the
// run has the learn layer attached, so learn rules are strictly opt-in:
// DefaultRules never references them.
const (
	MetricLearnTDEMA         = "learn.td_ema"
	MetricLearnChurn         = "learn.churn"
	MetricLearnConvergedFrac = "learn.converged_frac"
	MetricLearnEpsilon       = "learn.epsilon"
)

// ruleMetricIndex maps every rule-addressable metric to its slot in the
// per-epoch frame.
var ruleMetricIndex = func() map[string]int {
	m := make(map[string]int, nFrameMetrics)
	for i, name := range storeMetrics {
		m[name] = i
	}
	m[MetricOvershootFrac] = len(storeMetrics)
	m[MetricOvershootEMA] = len(storeMetrics) + 1
	m[MetricIPSVsPeak] = len(storeMetrics) + 2
	m[MetricDecideP99Ns] = len(storeMetrics) + 3
	m[MetricLearnTDEMA] = len(storeMetrics) + 4
	m[MetricLearnChurn] = len(storeMetrics) + 5
	m[MetricLearnConvergedFrac] = len(storeMetrics) + 6
	m[MetricLearnEpsilon] = len(storeMetrics) + 7
	return m
}()

// nFrameMetrics is the per-epoch frame width: raw store metrics plus the
// derived and learn.* ones.
const nFrameMetrics = len(storeMetrics) + 8

// Comparison operators a Rule may use. OpNonfinite ignores Threshold and
// holds when the metric is NaN or ±Inf — the telemetry-poisoning
// invariant.
const (
	OpGT        = ">"
	OpGE        = ">="
	OpLT        = "<"
	OpLE        = "<="
	OpNonfinite = "nonfinite"
)

// Rule is one declarative run-health invariant: fire an alert when Metric
// Op Threshold holds for ForEpochs consecutive epochs. After firing, the
// rule re-arms only once its condition breaks, so a sustained violation
// yields one alert per episode, not one per epoch.
type Rule struct {
	// Name identifies the rule in alerts and the summary table.
	Name string `json:"name"`
	// Metric is a store metric (power_w, budget_w, ips, overshoot_w,
	// decide_ns, faults, max_temp_k) or a derived one (overshoot_frac,
	// ips_vs_peak, decide_p99_ns).
	Metric string `json:"metric"`
	// Op is one of > >= < <= nonfinite.
	Op string `json:"op"`
	// Threshold is the comparison bound (ignored by nonfinite).
	Threshold float64 `json:"threshold,omitempty"`
	// ForEpochs is how many consecutive epochs the condition must hold
	// before the alert fires; 0 and 1 both mean "fire immediately".
	ForEpochs int `json:"for_epochs,omitempty"`
}

// Validate reports the first problem with the rule.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("monitor: rule with empty name")
	}
	if _, ok := ruleMetricIndex[r.Metric]; !ok {
		return fmt.Errorf("monitor: rule %q: unknown metric %q", r.Name, r.Metric)
	}
	switch r.Op {
	case OpGT, OpGE, OpLT, OpLE:
		if math.IsNaN(r.Threshold) {
			return fmt.Errorf("monitor: rule %q: NaN threshold", r.Name)
		}
	case OpNonfinite:
	default:
		return fmt.Errorf("monitor: rule %q: unknown op %q", r.Name, r.Op)
	}
	if r.ForEpochs < 0 {
		return fmt.Errorf("monitor: rule %q: negative for_epochs %d", r.Name, r.ForEpochs)
	}
	return nil
}

// LoadRules decodes a JSON array of rules, strictly: unknown fields are
// errors (a typoed "treshold" must not silently disable an invariant), and
// every rule is validated.
func LoadRules(r io.Reader) ([]Rule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rules []Rule
	if err := dec.Decode(&rules); err != nil {
		return nil, fmt.Errorf("monitor: decoding rules: %w", err)
	}
	// A second JSON value after the array is malformed input, not padding.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("monitor: trailing data after rules array")
	}
	for _, rule := range rules {
		if err := rule.Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// DefaultRules derives the paper-claim invariant set for a run with the
// given budget and epoch length:
//
//   - sustained-overshoot: smoothed chip overshoot above 2% of the budget
//     for 20 consecutive epochs. Claim C1 is that OD-RL all but eliminates
//     overshoot; transient spikes on workload phase changes are expected,
//     a sustained violation is a controller failure. The EWMA form also
//     catches oscillating controllers that alternate over/under budget
//     every epoch and would never trip a raw consecutive-epoch test.
//   - decide-latency-p99: streaming p99 of the per-epoch decision latency
//     exceeds the epoch's wall-clock budget (claim C4's real-time
//     feasibility bound) for 50 epochs.
//   - bips-collapse: smoothed chip throughput falls below half its running
//     peak for 20 epochs — the graceful-degradation invariant after core
//     death or telemetry blackout (F18).
//   - nan-telemetry: non-finite chip power or throughput, immediately.
func DefaultRules(budgetW, epochS float64) []Rule {
	decideBudgetNs := epochS * 1e9
	if !(decideBudgetNs > 0) {
		decideBudgetNs = 1e6
	}
	_ = budgetW // the overshoot invariant is relative, so the budget only documents intent
	return []Rule{
		{Name: "sustained-overshoot", Metric: MetricOvershootEMA, Op: OpGT, Threshold: 0.02, ForEpochs: 20},
		{Name: "decide-latency-p99", Metric: MetricDecideP99Ns, Op: OpGT, Threshold: decideBudgetNs, ForEpochs: 50},
		{Name: "bips-collapse", Metric: MetricIPSVsPeak, Op: OpLT, Threshold: 0.5, ForEpochs: 20},
		{Name: "nan-telemetry", Metric: MetricPowerW, Op: OpNonfinite, ForEpochs: 1},
		{Name: "nan-throughput", Metric: MetricIPS, Op: OpNonfinite, ForEpochs: 1},
	}
}

// wallClockMetrics are the rule metrics measured in host wall-clock time.
// Rules over them are inherently nondeterministic (a loaded machine can
// trip them); DeterministicDefaultRules excludes them for consumers that
// fold alert counts into reproducible tables.
var wallClockMetrics = map[string]bool{
	MetricDecideNs:    true,
	MetricDecideP99Ns: true,
}

// DeterministicDefaultRules is DefaultRules minus the wall-clock-latency
// invariants: every remaining rule is a pure function of the simulated
// epoch stream, so fired-alert counts are reproducible run to run.
func DeterministicDefaultRules(budgetW, epochS float64) []Rule {
	all := DefaultRules(budgetW, epochS)
	rules := all[:0]
	for _, r := range all {
		if !wallClockMetrics[r.Metric] {
			rules = append(rules, r)
		}
	}
	return rules
}

// engine evaluates a rule set against per-epoch metric frames.
type engine struct {
	rules  []Rule
	metric []int // compiled Metric -> frame index
	need   []int // consecutive epochs required (normalised ForEpochs)
	run    []int // consecutive epochs the condition has held
	fired  []int // alerts fired per rule
}

// newEngine compiles a validated rule set.
func newEngine(rules []Rule) (*engine, error) {
	e := &engine{
		rules:  rules,
		metric: make([]int, len(rules)),
		need:   make([]int, len(rules)),
		run:    make([]int, len(rules)),
		fired:  make([]int, len(rules)),
	}
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		e.metric[i] = ruleMetricIndex[r.Metric]
		e.need[i] = r.ForEpochs
		if e.need[i] < 1 {
			e.need[i] = 1
		}
	}
	return e, nil
}

// eval checks every rule against the epoch's frame, invoking emit for each
// alert that fires. Allocation-free unless an alert fires.
func (e *engine) eval(frame *[nFrameMetrics]float64, epoch int, timeS float64, emit func(*obs.AlertEvent)) {
	for i := range e.rules {
		v := frame[e.metric[i]]
		var hold bool
		switch e.rules[i].Op {
		case OpGT:
			hold = v > e.rules[i].Threshold
		case OpGE:
			hold = v >= e.rules[i].Threshold
		case OpLT:
			hold = v < e.rules[i].Threshold
		case OpLE:
			hold = v <= e.rules[i].Threshold
		case OpNonfinite:
			hold = math.IsNaN(v) || math.IsInf(v, 0)
		}
		if !hold {
			e.run[i] = 0
			continue
		}
		e.run[i]++
		if e.run[i] == e.need[i] { // fires exactly once per episode
			e.fired[i]++
			ev := obs.AlertEvent{
				Epoch:     epoch,
				TimeS:     timeS,
				Rule:      e.rules[i].Name,
				Metric:    e.rules[i].Metric,
				Op:        e.rules[i].Op,
				Threshold: e.rules[i].Threshold,
				Value:     v,
				ForEpochs: e.need[i],
			}
			emit(&ev)
		}
	}
}
