package monitor

import (
	"testing"

	"repro/internal/obs"
)

// BenchmarkObserveEpoch measures the monitor's full per-epoch path — frame
// fill, two sketch observations, store append, rule evaluation, idle live
// hub — which is the cost `make bench-monitor` bounds at <3% of the epoch
// loop. Must stay allocation-free.
func BenchmarkObserveEpoch(b *testing.B) {
	m := New(Options{})
	ro := m.Wrap(nil).BeginRun(testMeta)
	ev := obs.EpochEvent{Epoch: 1, TimeS: 0.001, PowerW: 80, BudgetW: 90, IPS: 5e10, OvershootW: 0, DecideNs: 12345, MaxTempK: 330}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Epoch = i
		ro.ShouldSample(i)
		ro.ObserveEpoch(&ev)
	}
}
