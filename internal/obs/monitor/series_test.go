package monitor

import (
	"sync"
	"testing"
)

func TestSeriesNoDecimationBelowCap(t *testing.T) {
	s := NewSeries("x", 16)
	for i := 0; i < 16; i++ {
		s.Append(float64(i))
	}
	snap := s.snapshot()
	if snap.Stride != 1 || len(snap.Values) != 16 || snap.Epochs != 16 {
		t.Fatalf("snapshot = stride %d, %d vals, %d epochs; want 1, 16, 16",
			snap.Stride, len(snap.Values), snap.Epochs)
	}
	for i, v := range snap.Values {
		if v != float64(i) {
			t.Fatalf("Values[%d] = %g, want %g", i, v, float64(i))
		}
	}
}

func TestSeriesDecimation(t *testing.T) {
	const capacity = 16
	s := NewSeries("x", capacity)
	const epochs = 1000
	for i := 0; i < epochs; i++ {
		s.Append(float64(i))
	}
	snap := s.snapshot()
	if len(snap.Values) > capacity {
		t.Fatalf("series grew past cap: %d > %d", len(snap.Values), capacity)
	}
	if snap.Epochs != epochs {
		t.Fatalf("Epochs = %d, want %d", snap.Epochs, epochs)
	}
	// Stride must be a power of two and every retained point a genuine
	// observation from its claimed epoch (value == epoch index here).
	if snap.Stride&(snap.Stride-1) != 0 {
		t.Fatalf("stride %d not a power of two", snap.Stride)
	}
	for i, v := range snap.Values {
		if want := float64(i * snap.Stride); v != want {
			t.Fatalf("Values[%d] = %g, want epoch value %g (stride %d)", i, v, want, snap.Stride)
		}
	}
	// Retained points must span most of the run, not just its start.
	last := (len(snap.Values) - 1) * snap.Stride
	if last < epochs/2 {
		t.Fatalf("last retained epoch %d does not cover the run (%d epochs)", last, epochs)
	}
}

func TestStoreAppendSnapshotGet(t *testing.T) {
	st := NewStore(8)
	var vals [len(storeMetrics)]float64
	for e := 0; e < 5; e++ {
		for i := range vals {
			vals[i] = float64(100*i + e)
		}
		st.Append(&vals)
	}
	snaps := st.Snapshot()
	if len(snaps) != len(storeMetrics) {
		t.Fatalf("got %d series, want %d", len(snaps), len(storeMetrics))
	}
	for i, snap := range snaps {
		if snap.Name != storeMetrics[i] {
			t.Fatalf("series %d named %q, want %q", i, snap.Name, storeMetrics[i])
		}
		if len(snap.Values) != 5 || snap.Values[4] != float64(100*i+4) {
			t.Fatalf("series %q = %v", snap.Name, snap.Values)
		}
	}
	got, err := st.Get(MetricIPS)
	if err != nil {
		t.Fatalf("Get(ips): %v", err)
	}
	if got.Values[0] != 200 {
		t.Fatalf("ips[0] = %g, want 200", got.Values[0])
	}
	if _, err := st.Get("no-such-series"); err == nil {
		t.Fatal("Get(unknown) succeeded")
	}
}

// TestStoreConcurrentReadWrite hammers one store from a writer and several
// snapshot readers; run with -race this is the monitor-store race check
// wired into make ci.
func TestStoreConcurrentReadWrite(t *testing.T) {
	st := NewStore(32)
	const epochs = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, snap := range st.Snapshot() {
					_ = snap.Values
				}
				_, _ = st.Get(MetricPowerW)
			}
		}()
	}
	var vals [len(storeMetrics)]float64
	for e := 0; e < epochs; e++ {
		for i := range vals {
			vals[i] = float64(e)
		}
		st.Append(&vals)
	}
	close(stop)
	wg.Wait()
	if got := st.Snapshot()[0].Epochs; got != epochs {
		t.Fatalf("writer recorded %d epochs, want %d", got, epochs)
	}
}
