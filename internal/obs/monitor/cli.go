package monitor

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// CLI owns the run-health resources a command wires up from its flags: the
// monitor itself, plus an optional Perfetto trace file written on Close.
type CLI struct {
	Monitor *Monitor

	perfettoPath string
}

// StartCLI builds the standard command wiring for the -monitor,
// -alert-rules and -perfetto flags. Monitoring is enabled when any of them
// is set; otherwise StartCLI returns nil and the run carries zero
// monitoring cost. rulesPath "" derives DefaultRules from each run's own
// budget and epoch length. When ocli carries a debug server, the live
// surfaces are attached to it: /debug/live (SSE), /debug/timeline
// (Perfetto JSON) and /debug/health (JSON health snapshot); /metrics is
// served by the debug server itself.
func StartCLI(ocli *obs.CLI, monitorOn bool, rulesPath, perfettoPath string) (*CLI, error) {
	if !monitorOn && rulesPath == "" && perfettoPath == "" {
		return nil, nil
	}
	var rules []Rule
	if rulesPath != "" {
		f, err := os.Open(rulesPath)
		if err != nil {
			return nil, fmt.Errorf("monitor: rules file: %w", err)
		}
		rules, err = LoadRules(f)
		f.Close() //nolint:errcheck // read-only
		if err != nil {
			return nil, err
		}
	}
	var reg *obs.Registry
	if ocli != nil {
		reg = ocli.Registry
	}
	m := New(Options{Rules: rules, Registry: reg})
	if ocli != nil && ocli.Debug != nil {
		ocli.Debug.Handle("/debug/live", m.LiveHandler())
		ocli.Debug.Handle("/debug/timeline", m.TimelineHandler())
		ocli.Debug.Handle("/debug/health", m.HealthHandler())
	}
	return &CLI{Monitor: m, perfettoPath: perfettoPath}, nil
}

// Close writes the Perfetto trace file when one was requested and renders
// the run-health summary to w (commonly stderr, keeping stdout tables
// clean). Nil-safe so callers can defer it unconditionally.
func (c *CLI) Close(w io.Writer) error {
	if c == nil {
		return nil
	}
	var first error
	if c.perfettoPath != "" {
		f, err := os.Create(c.perfettoPath)
		if err == nil {
			err = c.Monitor.Timeline().WriteTraceJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			first = fmt.Errorf("monitor: perfetto trace: %w", err)
		}
	}
	if w != nil {
		if err := c.Monitor.WriteAlertSummary(w); err != nil && first == nil {
			first = err
		}
	}
	return first
}
