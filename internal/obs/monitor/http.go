package monitor

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// subBuffer is each SSE subscriber's frame buffer. A subscriber that falls
// more than subBuffer frames behind starts losing frames (newest-wins
// drop), which is the price of never letting a slow client block the
// simulation loop.
const subBuffer = 64

// liveHub fans epoch and alert frames out to SSE subscribers. The
// simulation-side publish path is strictly non-blocking: with no
// subscribers it is one atomic load, and a full subscriber channel drops
// the frame for that subscriber only.
type liveHub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
	n    atomic.Int32
}

func newLiveHub() *liveHub {
	return &liveHub{subs: make(map[chan []byte]struct{})}
}

func (h *liveHub) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	h.n.Add(1)
	return ch
}

func (h *liveHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
	h.n.Add(-1)
}

// liveEpoch is one SSE epoch frame: the run identity plus the epoch event,
// flattened.
type liveEpoch struct {
	Type       string `json:"type"`
	Run        int    `json:"run"`
	Controller string `json:"controller,omitempty"`
	obs.EpochEvent
}

// liveAlert is one SSE alert frame.
type liveAlert struct {
	Type       string `json:"type"`
	Run        int    `json:"run"`
	Controller string `json:"controller,omitempty"`
	obs.AlertEvent
}

func (h *liveHub) publish(runID int, controller string, ev *obs.EpochEvent) {
	if h.n.Load() == 0 {
		return
	}
	b, err := json.Marshal(liveEpoch{Type: "epoch", Run: runID, Controller: controller, EpochEvent: *ev})
	if err != nil {
		return
	}
	h.broadcast(b)
}

func (h *liveHub) publishAlert(runID int, controller string, ev *obs.AlertEvent) {
	if h.n.Load() == 0 {
		return
	}
	b, err := json.Marshal(liveAlert{Type: "alert", Run: runID, Controller: controller, AlertEvent: *ev})
	if err != nil {
		return
	}
	h.broadcast(b)
}

func (h *liveHub) broadcast(b []byte) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- b:
		default: // slow client: drop this frame for it, never block
		}
	}
	h.mu.Unlock()
}

// LiveHandler returns the /debug/live surface: a Server-Sent Events stream
// of per-epoch snapshots and fired alerts across all active runs
// (`data: {json}` events, one per sampled epoch). Slow or disconnected
// clients lose frames rather than slowing the run.
func (m *Monitor) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		ch := m.live.subscribe()
		defer m.live.unsubscribe(ch)
		for {
			select {
			case <-r.Context().Done():
				return
			case b := <-ch:
				if _, err := w.Write([]byte("data: ")); err != nil {
					return
				}
				if _, err := w.Write(b); err != nil {
					return
				}
				if _, err := w.Write([]byte("\n\n")); err != nil {
					return
				}
				fl.Flush()
			}
		}
	})
}

// TimelineHandler returns the /debug/timeline surface: the controller
// phase spans as Chrome/Perfetto trace-event JSON, loadable directly in
// ui.perfetto.dev or chrome://tracing.
func (m *Monitor) TimelineHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m.timeline.WriteTraceJSON(w) //nolint:errcheck // best-effort debug output
	})
}

// HealthHandler returns the /debug/health surface: a JSON snapshot of
// every run's health record and bounded time series.
func (m *Monitor) HealthHandler() http.Handler {
	type runJSON struct {
		ID         int              `json:"id"`
		Controller string           `json:"controller"`
		Workload   string           `json:"workload,omitempty"`
		Epochs     int              `json:"epochs"`
		Faults     int              `json:"faults"`
		AlertCount int              `json:"alert_count"`
		Alerts     []obs.AlertEvent `json:"alerts,omitempty"`
		Done       bool             `json:"done"`
		Series     []SeriesSnapshot `json:"series"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		runs := m.Runs()
		out := make([]runJSON, len(runs))
		for i, h := range runs {
			out[i] = runJSON{
				ID: h.ID, Controller: h.Meta.Controller, Workload: h.Meta.Workload,
				Epochs: h.Epochs, Faults: h.Faults, AlertCount: h.AlertCount,
				Alerts: h.Alerts, Done: h.Done, Series: h.Store.Snapshot(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck // best-effort debug output
	})
}
