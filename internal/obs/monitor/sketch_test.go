package monitor

import (
	"math"
	"math/rand"
	"testing"
)

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatalf("empty sketch not all-zero: q50=%g max=%g", s.Quantile(0.5), s.Max())
	}
}

func TestSketchRelativeError(t *testing.T) {
	// Uniform values 1..10000: every quantile estimate must be within the
	// sketch's documented ~9% relative error plus the rank granularity.
	s := NewSketch()
	for i := 1; i <= 10000; i++ {
		s.Observe(float64(i))
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
		got := s.Quantile(q)
		want := q * 10000
		if rel := math.Abs(got-want) / want; rel > 0.12 {
			t.Fatalf("Quantile(%g) = %g, want ~%g (rel err %.3f)", q, got, want, rel)
		}
	}
	if s.Max() != 10000 || s.Min() != 1 {
		t.Fatalf("min/max = %g/%g, want 1/10000", s.Min(), s.Max())
	}
}

func TestSketchClampedToObservedRange(t *testing.T) {
	s := NewSketch()
	s.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%g) = %g, want exactly 42", q, got)
		}
	}
}

func TestSketchZeroAndNaN(t *testing.T) {
	s := NewSketch()
	s.Observe(0)
	s.Observe(-5)
	s.Observe(math.NaN())
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	// All three land in the zero bucket; the median is the floor clamped to
	// the observed range.
	if got := s.Quantile(0.5); got > sketchMinV {
		t.Fatalf("Quantile(0.5) = %g, want <= %g", got, sketchMinV)
	}
	if !math.IsNaN(s.Sum()) {
		t.Fatal("NaN observation did not poison Sum — poisoning must stay visible")
	}
}

func TestSketchQuantileMonotone(t *testing.T) {
	s := NewSketch()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		s.Observe(math.Exp(r.NormFloat64() * 3))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g", q, got, prev)
		}
		prev = got
	}
}
