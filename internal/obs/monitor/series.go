// Package monitor is the streaming run-health layer on top of package obs:
// bounded per-metric time series, O(1) quantile sketches, a declarative
// alert-rules engine evaluating paper-claim invariants online, live HTTP
// read surfaces (/metrics, /debug/live SSE, /debug/timeline Perfetto), and
// an end-of-run alert summary. It observes simulation runs through the
// standard obs.Observer chain and never influences them: simulation output
// is bit-identical with monitoring on or off.
package monitor

import (
	"fmt"
	"sync"
)

// DefaultSeriesCap is the per-series point budget: 512 float64 points per
// metric keeps a whole run's view under ~30 KB however long it runs.
const DefaultSeriesCap = 512

// Series is a fixed-capacity epoch time series. Points are recorded every
// stride-th epoch; when the buffer fills, it decimates 2×: every other
// stored point is dropped and the stride doubles, so arbitrarily long runs
// fit in bounded memory while the retained points remain genuine
// observations at known epochs (point i sits at epoch i·stride).
type Series struct {
	name   string
	vals   []float64
	stride int // always a power of two, so the Append test is a mask
	seen   int // epochs offered so far (== next epoch index)
}

// NewSeries builds a series with the given point capacity (minimum 2).
func NewSeries(name string, capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{name: name, vals: make([]float64, 0, capacity), stride: 1}
}

// Append offers the value observed at the next epoch. Only every stride-th
// epoch is stored; the rest cost one branch.
func (s *Series) Append(v float64) {
	if s.seen&(s.stride-1) == 0 {
		if len(s.vals) == cap(s.vals) {
			half := (len(s.vals) + 1) / 2
			for i := 0; i < half; i++ {
				s.vals[i] = s.vals[2*i]
			}
			s.vals = s.vals[:half]
			s.stride *= 2
		}
		s.vals = append(s.vals, v)
	}
	s.seen++
}

// SeriesSnapshot is a copied view of one series.
type SeriesSnapshot struct {
	Name string `json:"name"`
	// Stride is the epoch spacing between points: Values[i] was observed
	// at epoch i*Stride.
	Stride int       `json:"stride"`
	Epochs int       `json:"epochs"`
	Values []float64 `json:"values"`
}

// Snapshot copies the series' current view. The caller must hold whatever
// lock guards Append (Store's methods do this internally; external users of
// Series bring their own).
func (s *Series) Snapshot() SeriesSnapshot { return s.snapshot() }

func (s *Series) snapshot() SeriesSnapshot {
	return SeriesSnapshot{
		Name:   s.name,
		Stride: s.stride,
		Epochs: s.seen,
		Values: append([]float64(nil), s.vals...),
	}
}

// Canonical store metric names, in storage order. These are also the
// metric vocabulary of the alert-rules engine (which adds derived metrics
// on top; see rules.go).
const (
	MetricPowerW     = "power_w"
	MetricBudgetW    = "budget_w"
	MetricIPS        = "ips"
	MetricOvershootW = "overshoot_w"
	MetricDecideNs   = "decide_ns"
	MetricFaults     = "faults"
	MetricMaxTempK   = "max_temp_k"
)

// storeMetrics is the fixed per-epoch metric set every run records (an
// array so len(storeMetrics) is a compile-time constant for frame sizing).
var storeMetrics = [...]string{
	MetricPowerW, MetricBudgetW, MetricIPS, MetricOvershootW,
	MetricDecideNs, MetricFaults, MetricMaxTempK,
}

// Store holds one run's bounded time series, one per epoch metric. Writes
// come from the simulation loop and reads from HTTP handlers, so access is
// mutex-guarded; the per-epoch cost is one uncontended lock plus seven
// branchy appends.
type Store struct {
	mu     sync.Mutex
	series []*Series
}

// NewStore builds a store with the canonical metric set.
func NewStore(capacity int) *Store {
	st := &Store{series: make([]*Series, len(storeMetrics))}
	for i, name := range storeMetrics {
		st.series[i] = NewSeries(name, capacity)
	}
	return st
}

// Append records one epoch's values, in storeMetrics order.
func (st *Store) Append(vals *[len(storeMetrics)]float64) {
	st.mu.Lock()
	for i, s := range st.series {
		s.Append(vals[i])
	}
	st.mu.Unlock()
}

// Snapshot copies every series.
func (st *Store) Snapshot() []SeriesSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SeriesSnapshot, len(st.series))
	for i, s := range st.series {
		out[i] = s.snapshot()
	}
	return out
}

// Get returns the named series' snapshot.
func (st *Store) Get(name string) (SeriesSnapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.series {
		if s.name == name {
			return s.snapshot(), nil
		}
	}
	return SeriesSnapshot{}, fmt.Errorf("monitor: unknown series %q", name)
}
