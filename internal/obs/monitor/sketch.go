package monitor

import "math"

// Sketch is a streaming quantile estimator over non-negative measurements
// (latencies in ns, overshoot in W): a fixed array of geometric buckets
// (ratio sketchGamma between bucket edges, ~9% relative error) plus exact
// min/max/count/sum. Observe is O(1) — one log, one bucket increment —
// and Quantile walks the fixed bucket array, so per-observation cost never
// grows with the stream. The zero value is NOT ready; use NewSketch.
type Sketch struct {
	counts []int64
	zero   int64 // observations <= sketchMinV (incl. exact zeros)
	count  int64
	min    float64
	max    float64
	sum    float64
}

const (
	// sketchMinV..sketchMaxV is the resolvable range; values at or below
	// the floor land in the zero bucket, values above the ceiling clamp to
	// the last bucket. The defaults cover sub-nanosecond latencies up to
	// ~1e12 (kiloseconds in ns).
	sketchMinV = 1e-6
	sketchMaxV = 1e12
	// sketchGamma is the bucket-edge ratio: relative quantile error is
	// about (gamma-1)/2.
	sketchGamma = 1.2
)

var (
	sketchLnGamma = math.Log(sketchGamma)
	sketchBuckets = int(math.Ceil(math.Log(sketchMaxV/sketchMinV)/sketchLnGamma)) + 1
)

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{counts: make([]int64, sketchBuckets), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value. Negative and NaN values are counted in the
// zero bucket (count and sum still advance, so NaN poisoning stays visible
// through Sum). O(1).
func (s *Sketch) Observe(v float64) {
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if !(v > sketchMinV) { // negated: catches v <= minV and NaN
		s.zero++
		return
	}
	i := int(math.Log(v/sketchMinV) / sketchLnGamma)
	if i >= len(s.counts) {
		i = len(s.counts) - 1
	}
	s.counts[i]++
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the running sum.
func (s *Sketch) Sum() float64 { return s.sum }

// Max returns the largest observed value (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Min returns the smallest observed value (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Mean returns the average observed value (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Quantile estimates the q-quantile (q clamped to [0,1]); the estimate is
// the geometric midpoint of the bucket holding the target rank, clamped to
// the exact observed [min, max].
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.count)
	if rank < 1 {
		rank = 1
	}
	est := s.max
	if seen := float64(s.zero); seen >= rank {
		est = sketchMinV
	} else {
		cum := float64(s.zero)
		for i, c := range s.counts {
			if c == 0 {
				continue
			}
			cum += float64(c)
			if cum >= rank {
				est = sketchMinV * math.Exp((float64(i)+0.5)*sketchLnGamma)
				break
			}
		}
	}
	if est > s.max {
		est = s.max
	}
	if est < s.min {
		est = s.min
	}
	return est
}
