package monitor

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestLoadRules(t *testing.T) {
	rules, err := LoadRules(strings.NewReader(`[
		{"name": "hot", "metric": "max_temp_k", "op": ">", "threshold": 360, "for_epochs": 5},
		{"name": "nan", "metric": "power_w", "op": "nonfinite"}
	]`))
	if err != nil {
		t.Fatalf("LoadRules: %v", err)
	}
	if len(rules) != 2 || rules[0].Name != "hot" || rules[1].Op != OpNonfinite {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestLoadRulesRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `[{"name": "a", "metric": "ips", "op": ">", "treshold": 1}]`,
		"unknown metric": `[{"name": "a", "metric": "wattage", "op": ">"}]`,
		"unknown op":     `[{"name": "a", "metric": "ips", "op": "~="}]`,
		"empty name":     `[{"metric": "ips", "op": ">"}]`,
		"negative for":   `[{"name": "a", "metric": "ips", "op": ">", "for_epochs": -1}]`,
		"trailing data":  `[] {"x": 1}`,
		"not an array":   `{"name": "a"}`,
	}
	for label, in := range cases {
		if _, err := LoadRules(strings.NewReader(in)); err == nil {
			t.Errorf("%s: LoadRules accepted %q", label, in)
		}
	}
}

func TestDefaultRulesValidate(t *testing.T) {
	for _, r := range DefaultRules(90, 1e-3) {
		if err := r.Validate(); err != nil {
			t.Errorf("default rule %q invalid: %v", r.Name, err)
		}
	}
	// A zero epoch length must still produce a usable latency bound.
	for _, r := range DefaultRules(0, 0) {
		if err := r.Validate(); err != nil {
			t.Errorf("degenerate default rule %q invalid: %v", r.Name, err)
		}
	}
}

func TestDeterministicDefaultRulesExcludeWallClock(t *testing.T) {
	det := DeterministicDefaultRules(90, 1e-3)
	if len(det) == 0 {
		t.Fatal("no deterministic rules")
	}
	for _, r := range det {
		if wallClockMetrics[r.Metric] {
			t.Errorf("rule %q uses wall-clock metric %q", r.Name, r.Metric)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("rule %q invalid: %v", r.Name, err)
		}
	}
	if len(det) >= len(DefaultRules(90, 1e-3)) {
		t.Fatal("deterministic set did not drop the decide-latency rule")
	}
}

// evalSeq runs the engine over a metric sequence for one metric, returning
// the epochs at which alerts fired.
func evalSeq(t *testing.T, rule Rule, metricIdx int, seq []float64) []int {
	t.Helper()
	eng, err := newEngine([]Rule{rule})
	if err != nil {
		t.Fatalf("newEngine: %v", err)
	}
	var fired []int
	var frame [nFrameMetrics]float64
	for e, v := range seq {
		frame[metricIdx] = v
		eng.eval(&frame, e, float64(e), func(ev *obs.AlertEvent) {
			fired = append(fired, ev.Epoch)
		})
	}
	return fired
}

func TestEngineConsecutiveEpochsAndRearm(t *testing.T) {
	rule := Rule{Name: "hot", Metric: MetricMaxTempK, Op: OpGT, Threshold: 10, ForEpochs: 3}
	idx := ruleMetricIndex[MetricMaxTempK]

	// Holds 2, breaks, holds 3 → fires once at the third consecutive epoch.
	fired := evalSeq(t, rule, idx, []float64{11, 11, 0, 11, 11, 11, 11, 11})
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("fired at %v, want [5]", fired)
	}

	// Fire, break, hold again → re-arms and fires a second time.
	fired = evalSeq(t, rule, idx, []float64{11, 11, 11, 0, 11, 11, 11})
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 6 {
		t.Fatalf("fired at %v, want [2 6]", fired)
	}

	// Sustained violation fires exactly once, not once per epoch.
	fired = evalSeq(t, rule, idx, []float64{11, 11, 11, 11, 11, 11, 11, 11, 11})
	if len(fired) != 1 {
		t.Fatalf("sustained violation fired %d times, want 1", len(fired))
	}
}

func TestEngineOps(t *testing.T) {
	idx := ruleMetricIndex[MetricIPS]
	cases := []struct {
		op    string
		thr   float64
		v     float64
		fires bool
	}{
		{OpGT, 5, 6, true}, {OpGT, 5, 5, false},
		{OpGE, 5, 5, true}, {OpGE, 5, 4, false},
		{OpLT, 5, 4, true}, {OpLT, 5, 5, false},
		{OpLE, 5, 5, true}, {OpLE, 5, 6, false},
		{OpNonfinite, 0, math.NaN(), true},
		{OpNonfinite, 0, math.Inf(1), true},
		{OpNonfinite, 0, 1e300, false},
	}
	for _, c := range cases {
		rule := Rule{Name: "r", Metric: MetricIPS, Op: c.op, Threshold: c.thr, ForEpochs: 1}
		fired := evalSeq(t, rule, idx, []float64{c.v})
		if (len(fired) > 0) != c.fires {
			t.Errorf("%g %s %g: fired=%v, want %v", c.v, c.op, c.thr, len(fired) > 0, c.fires)
		}
	}
}

func TestEngineRejectsInvalidRules(t *testing.T) {
	if _, err := newEngine([]Rule{{Name: "bad", Metric: "nope", Op: OpGT}}); err == nil {
		t.Fatal("newEngine accepted an unknown metric")
	}
}
