package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSSEStreamDeliversFrames subscribes a live SSE client, publishes
// epochs and an alert, and checks the wire format (`data: {json}\n\n`).
func TestSSEStreamDeliversFrames(t *testing.T) {
	m := New(Options{})
	srv := httptest.NewServer(m.LiveHandler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("GET", srv.URL, nil).WithContext(ctx)
	req.RequestURI = ""
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("GET /debug/live: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Wait for the subscription to register before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for m.live.n.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	ev := obs.EpochEvent{Epoch: 7, PowerW: 85, BudgetW: 90, IPS: 2e9}
	m.live.publish(3, "odrl", &ev)
	al := obs.AlertEvent{Epoch: 7, Rule: "sustained-overshoot", Metric: MetricOvershootFrac}
	m.live.publishAlert(3, "odrl", &al)

	sc := bufio.NewScanner(resp.Body)
	var frames []string
	for sc.Scan() && len(frames) < 2 {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			frames = append(frames, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(frames) != 2 {
		t.Fatalf("read %d frames, want 2 (scan err %v)", len(frames), sc.Err())
	}
	var epoch struct {
		Type       string  `json:"type"`
		Run        int     `json:"run"`
		Controller string  `json:"controller"`
		Epoch      int     `json:"epoch"`
		PowerW     float64 `json:"power_w"`
	}
	if err := json.Unmarshal([]byte(frames[0]), &epoch); err != nil {
		t.Fatalf("epoch frame not JSON: %v\n%s", err, frames[0])
	}
	if epoch.Type != "epoch" || epoch.Run != 3 || epoch.Controller != "odrl" || epoch.Epoch != 7 || epoch.PowerW != 85 {
		t.Fatalf("epoch frame = %+v", epoch)
	}
	var alert struct {
		Type string `json:"type"`
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal([]byte(frames[1]), &alert); err != nil {
		t.Fatalf("alert frame not JSON: %v", err)
	}
	if alert.Type != "alert" || alert.Rule != "sustained-overshoot" {
		t.Fatalf("alert frame = %+v", alert)
	}
}

// TestSlowSubscriberNeverBlocksPublish fills a subscriber's buffer far past
// capacity without draining it; publish must stay non-blocking (frames are
// dropped for that subscriber instead).
func TestSlowSubscriberNeverBlocksPublish(t *testing.T) {
	m := New(Options{})
	ch := m.live.subscribe() // never drained: simulates a stalled client
	defer m.live.unsubscribe(ch)

	done := make(chan struct{})
	go func() {
		defer close(done)
		ev := obs.EpochEvent{Epoch: 1, PowerW: 80}
		for i := 0; i < 10*subBuffer; i++ {
			m.live.publish(1, "odrl", &ev)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if len(ch) != subBuffer {
		t.Fatalf("subscriber buffer holds %d frames, want full %d", len(ch), subBuffer)
	}
}

// TestPublishWithoutSubscribersIsFree checks the no-subscriber gate: no
// frames are marshalled or delivered when nobody listens.
func TestPublishWithoutSubscribersIsFree(t *testing.T) {
	m := New(Options{})
	ev := obs.EpochEvent{Epoch: 1}
	allocs := testing.AllocsPerRun(100, func() {
		m.live.publish(1, "odrl", &ev)
	})
	if allocs != 0 {
		t.Fatalf("publish with no subscribers allocates %.1f/op, want 0", allocs)
	}
}

func TestTimelineHandler(t *testing.T) {
	m := New(Options{})
	m.Timeline().RecordSpan("local", 100, 50)
	rec := httptest.NewRecorder()
	m.TimelineHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("status %d content-type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &f); err != nil {
		t.Fatalf("timeline not JSON: %v", err)
	}
	if len(f.TraceEvents) != 2 { // metadata + one span
		t.Fatalf("traceEvents = %v", f.TraceEvents)
	}
}

func TestHealthHandler(t *testing.T) {
	m := New(Options{})
	ro := m.BeginRun(testMeta)
	feedEpochs(ro, 5, nil)
	rec := httptest.NewRecorder()
	m.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	var runs []struct {
		ID         int              `json:"id"`
		Controller string           `json:"controller"`
		Epochs     int              `json:"epochs"`
		Done       bool             `json:"done"`
		Series     []SeriesSnapshot `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &runs); err != nil {
		t.Fatalf("health not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(runs) != 1 || runs[0].Epochs != 5 || !runs[0].Done || len(runs[0].Series) != len(storeMetrics) {
		t.Fatalf("health = %+v", runs)
	}
}
