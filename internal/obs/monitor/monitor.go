package monitor

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/obs"
)

// maxKeptAlerts bounds the per-run alert list the summary retains; the
// fired counters stay exact beyond it.
const maxKeptAlerts = 64

// ipsEMAAlpha smooths the per-epoch chip throughput before the
// collapse-detection metrics (ips_vs_peak): ~20-epoch memory, so workload
// phase flickers don't read as collapses.
const ipsEMAAlpha = 0.05

// overshootEMAAlpha smooths the overshoot fraction (~10-epoch memory):
// long enough to bridge an oscillating controller's under-budget epochs,
// short enough that a genuine violation registers within the rule's
// consecutive-epoch window.
const overshootEMAAlpha = 0.1

// p99RefreshEpochs is how often the decide_p99_ns derived metric (and its
// exported gauge) is recomputed from the sketch; quantile queries walk the
// bucket array, so refreshing on a stride keeps the per-epoch cost O(1).
const p99RefreshEpochs = 16

// Options configures a Monitor.
type Options struct {
	// Rules is the alert rule set evaluated for every run. Empty installs
	// DefaultRules derived from each run's own budget and epoch length.
	Rules []Rule
	// SeriesCap bounds each time series' point count (default
	// DefaultSeriesCap).
	SeriesCap int
	// TimelineCap bounds the retained phase spans (default
	// DefaultTimelineCap).
	TimelineCap int
	// Registry, when set, receives monitor aggregates: alert/fault/epoch
	// counters and live gauges for the last observed epoch, so /metrics
	// exports them.
	Registry *obs.Registry
}

// Monitor is the run-health layer: an obs.Observer that feeds every run's
// epoch stream into bounded time series, quantile sketches and the alert
// engine, keeps a span timeline for Perfetto export, and serves live HTTP
// views. It is safe for concurrent runs and never mutates what it
// observes, so simulation results are bit-identical with or without it.
type Monitor struct {
	opt      Options
	timeline *Timeline
	live     *liveHub

	mu   sync.Mutex
	runs []*RunHealth // completed and active runs, in BeginRun order

	// Registry handles (nil when no registry is attached).
	alertCtr   *obs.Counter
	faultCtr   *obs.Counter
	epochCtr   *obs.Counter
	runCtr     *obs.Counter
	powerG     *obs.Gauge
	budgetG    *obs.Gauge
	overshootG *obs.Gauge
	ipsG       *obs.Gauge
	decideP99G *obs.Gauge
}

// New builds a monitor.
func New(opt Options) *Monitor {
	if opt.SeriesCap <= 0 {
		opt.SeriesCap = DefaultSeriesCap
	}
	if opt.TimelineCap <= 0 {
		opt.TimelineCap = DefaultTimelineCap
	}
	m := &Monitor{
		opt:      opt,
		timeline: NewTimeline(opt.TimelineCap),
		live:     newLiveHub(),
	}
	if r := opt.Registry; r != nil {
		m.alertCtr = r.Counter("monitor.alerts_fired")
		m.faultCtr = r.Counter("monitor.faults_seen")
		m.epochCtr = r.Counter("monitor.epochs")
		m.runCtr = r.Counter("monitor.runs")
		m.powerG = r.Gauge("monitor.power_w")
		m.budgetG = r.Gauge("monitor.budget_w")
		m.overshootG = r.Gauge("monitor.overshoot_w")
		m.ipsG = r.Gauge("monitor.ips")
		m.decideP99G = r.Gauge("monitor.decide_p99_ns")
	}
	return m
}

// Timeline returns the monitor's phase-span timeline (the obs.SpanSink the
// harness attaches to span-streaming controllers).
func (m *Monitor) Timeline() *Timeline { return m.timeline }

// RunHealth is one run's health record.
type RunHealth struct {
	ID   int
	Meta obs.RunMeta
	// Epochs and Faults count observed measurement epochs and injected
	// faults; AlertCount counts fired alerts (Alerts keeps the first
	// maxKeptAlerts of them).
	Epochs     int
	Faults     int
	AlertCount int
	Alerts     []obs.AlertEvent
	// Decide and Overshoot are the run's streaming sketches (decide
	// latency in ns, per-epoch overshoot in W).
	Decide    *Sketch
	Overshoot *Sketch
	// Store holds the run's bounded time series.
	Store *Store
	// Done marks the run ended.
	Done bool
}

// Wrap chains the monitor in front of next (commonly the JSONL tracer):
// the returned Observer feeds the monitor every epoch and still honours
// next's own sampling stride. next may be nil.
func (m *Monitor) Wrap(next obs.Observer) obs.Observer {
	return chainObserver{m: m, next: next}
}

// BeginRun implements obs.Observer (a bare monitor with no chained
// tracer).
func (m *Monitor) BeginRun(meta obs.RunMeta) obs.RunObserver {
	return m.beginRun(meta, nil)
}

func (m *Monitor) beginRun(meta obs.RunMeta, next obs.RunObserver) obs.RunObserver {
	rules := m.opt.Rules
	if len(rules) == 0 {
		rules = DefaultRules(meta.BudgetW, meta.EpochS)
	}
	eng, err := newEngine(rules)
	if err != nil {
		// Rules were validated at load time; an invalid set here is a
		// programming error — fall back to the derived defaults rather
		// than silently un-monitoring the run.
		eng, _ = newEngine(DefaultRules(meta.BudgetW, meta.EpochS))
	}
	h := &RunHealth{
		Meta:      meta,
		Decide:    NewSketch(),
		Overshoot: NewSketch(),
		Store:     NewStore(m.opt.SeriesCap),
	}
	m.mu.Lock()
	h.ID = len(m.runs) + 1
	m.runs = append(m.runs, h)
	m.mu.Unlock()
	if m.runCtr != nil {
		m.runCtr.Inc()
	}
	return &monitorRun{m: m, h: h, next: next, eng: eng}
}

// Runs snapshots the per-run health records (shallow copies: sketches and
// stores are shared, so callers must treat them as read-only once the run
// is done).
func (m *Monitor) Runs() []RunHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunHealth, len(m.runs))
	for i, h := range m.runs {
		out[i] = *h
	}
	return out
}

// AlertsFired returns the total alert count across all runs.
func (m *Monitor) AlertsFired() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, h := range m.runs {
		n += h.AlertCount
	}
	return n
}

// WriteAlertSummary renders the end-of-run health table: one row per run
// with decide-latency and overshoot quantiles and the fired-alert count,
// then one row per fired alert. Writes nothing when no runs were observed.
func (m *Monitor) WriteAlertSummary(w io.Writer) error {
	runs := m.Runs()
	if len(runs) == 0 {
		return nil
	}
	rows := [][]string{{
		"run", "controller", "epochs", "faults", "alerts",
		"decide p50(us)", "p95(us)", "p99(us)", "max(us)", "overshoot p99(W)",
	}}
	for _, h := range runs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", h.ID),
			h.Meta.Controller,
			fmt.Sprintf("%d", h.Epochs),
			fmt.Sprintf("%d", h.Faults),
			fmt.Sprintf("%d", h.AlertCount),
			fmt.Sprintf("%.1f", h.Decide.Quantile(0.5)/1e3),
			fmt.Sprintf("%.1f", h.Decide.Quantile(0.95)/1e3),
			fmt.Sprintf("%.1f", h.Decide.Quantile(0.99)/1e3),
			fmt.Sprintf("%.1f", h.Decide.Max()/1e3),
			fmt.Sprintf("%.3f", h.Overshoot.Quantile(0.99)),
		})
	}
	if _, err := fmt.Fprintln(w, "\nrun-health summary:"); err != nil {
		return err
	}
	if err := writeAligned(w, rows); err != nil {
		return err
	}
	fired := false
	for _, h := range runs {
		for _, a := range h.Alerts {
			if !fired {
				if _, err := fmt.Fprintln(w, "\nfired alerts:"); err != nil {
					return err
				}
				fired = true
			}
			if _, err := fmt.Fprintf(w, "  run %d (%s) epoch %d t=%.3fs: %s — %s %s %g (value %.4g, held %d epochs)\n",
				h.ID, h.Meta.Controller, a.Epoch, a.TimeS, a.Rule, a.Metric, a.Op, a.Threshold, a.Value, a.ForEpochs); err != nil {
				return err
			}
		}
		if h.AlertCount > len(h.Alerts) {
			if _, err := fmt.Fprintf(w, "  run %d: … %d more alerts not retained\n", h.ID, h.AlertCount-len(h.Alerts)); err != nil {
				return err
			}
		}
	}
	if !fired {
		if _, err := fmt.Fprintln(w, "no alerts fired"); err != nil {
			return err
		}
	}
	return nil
}

// writeAligned pads each column to its widest cell (the sim table idiom,
// duplicated here so obs/monitor does not depend on internal/sim).
func writeAligned(w io.Writer, rows [][]string) error {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// chainObserver is the Wrap product: monitor plus downstream observer.
type chainObserver struct {
	m    *Monitor
	next obs.Observer
}

func (c chainObserver) BeginRun(meta obs.RunMeta) obs.RunObserver {
	var next obs.RunObserver
	if c.next != nil {
		next = c.next.BeginRun(meta)
	}
	return c.m.beginRun(meta, next)
}

// monitorRun consumes one run's stream. It relies on the documented
// RunObserver protocol — ShouldSample(e) immediately precedes any
// ObserveEpoch for epoch e on the same goroutine — to route events to the
// downstream observer only on its own sampling stride while the monitor
// itself sees every epoch.
type monitorRun struct {
	m    *Monitor
	h    *RunHealth
	next obs.RunObserver
	eng  *engine

	nextWants    bool
	frame        [nFrameMetrics]float64
	faults       int
	emaIPS       float64
	peakIPS      float64
	emaOvershoot float64
	p99Ns        float64
	epochs       int
}

// ShouldSample implements obs.RunObserver: the monitor samples every
// epoch.
func (r *monitorRun) ShouldSample(epoch int) bool {
	r.nextWants = r.next != nil && r.next.ShouldSample(epoch)
	return true
}

// WantsEpochDetail implements obs.EpochDetailSampler: the monitor itself
// only reads scalar fields, so island/histogram aggregation is needed just
// on the downstream observer's own sampled epochs — and when the
// downstream is itself a detail sampler (the flight recorder samples every
// epoch but only keeps scalars), its refinement propagates up the chain.
func (r *monitorRun) WantsEpochDetail(epoch int) bool {
	if !r.nextWants {
		return false
	}
	if ds, ok := r.next.(obs.EpochDetailSampler); ok {
		return ds.WantsEpochDetail(epoch)
	}
	return true
}

// ObserveEpoch implements obs.RunObserver. Allocation-free on the steady
// path: series, sketches and the metric frame are all preallocated.
//
//odrl:hotpath
func (r *monitorRun) ObserveEpoch(ev *obs.EpochEvent) {
	r.epochs++

	// Raw frame slots, in storeMetrics order.
	r.frame[0] = ev.PowerW
	r.frame[1] = ev.BudgetW
	r.frame[2] = ev.IPS
	r.frame[3] = ev.OvershootW
	r.frame[4] = float64(ev.DecideNs)
	r.frame[5] = float64(r.faults)
	r.frame[6] = ev.MaxTempK

	r.h.Decide.Observe(float64(ev.DecideNs))
	r.h.Overshoot.Observe(ev.OvershootW)

	// Derived slots.
	overshootFrac := 0.0
	if ev.BudgetW > 0 {
		overshootFrac = ev.OvershootW / ev.BudgetW
	}
	if r.epochs == 1 {
		r.emaIPS = ev.IPS
		r.emaOvershoot = overshootFrac
	} else {
		r.emaIPS = ipsEMAAlpha*ev.IPS + (1-ipsEMAAlpha)*r.emaIPS
		r.emaOvershoot = overshootEMAAlpha*overshootFrac + (1-overshootEMAAlpha)*r.emaOvershoot
	}
	if r.emaIPS > r.peakIPS {
		r.peakIPS = r.emaIPS
	}
	ipsVsPeak := 1.0
	if r.peakIPS > 0 {
		ipsVsPeak = r.emaIPS / r.peakIPS
	}
	if r.epochs%p99RefreshEpochs == 1 {
		r.p99Ns = r.h.Decide.Quantile(0.99)
		if g := r.m.decideP99G; g != nil {
			g.Set(r.p99Ns)
		}
	}
	r.frame[len(storeMetrics)] = overshootFrac
	r.frame[len(storeMetrics)+1] = r.emaOvershoot
	r.frame[len(storeMetrics)+2] = ipsVsPeak
	r.frame[len(storeMetrics)+3] = r.p99Ns
	// learn.* slots: zero unless the run carries learning introspection
	// (the event fields are filled by obs/learn), so learn rules never fire
	// on unintrospected runs.
	r.frame[len(storeMetrics)+4] = ev.LearnTDEMA
	r.frame[len(storeMetrics)+5] = ev.LearnChurn
	r.frame[len(storeMetrics)+6] = ev.LearnConvergedFrac
	r.frame[len(storeMetrics)+7] = ev.LearnEpsilon

	r.h.Store.Append((*[len(storeMetrics)]float64)(r.frame[:len(storeMetrics)]))
	r.eng.eval(&r.frame, ev.Epoch, ev.TimeS, r.fire)

	if m := r.m; m.epochCtr != nil {
		m.epochCtr.Inc()
		m.powerG.Set(ev.PowerW)
		m.budgetG.Set(ev.BudgetW)
		m.overshootG.Set(ev.OvershootW)
		m.ipsG.Set(ev.IPS)
	}
	r.m.live.publish(r.h.ID, r.h.Meta.Controller, ev)

	if r.nextWants {
		r.next.ObserveEpoch(ev)
	}
}

// fire records one fired alert and forwards it into the JSONL stream.
// RunHealth scalar fields are guarded by the monitor lock so Runs() stays
// race-free against active runs; firing is rare, so the lock never sits on
// the steady per-epoch path.
func (r *monitorRun) fire(ev *obs.AlertEvent) {
	r.m.mu.Lock()
	r.h.AlertCount++
	if len(r.h.Alerts) < maxKeptAlerts {
		r.h.Alerts = append(r.h.Alerts, *ev)
	}
	r.m.mu.Unlock()
	if r.m.alertCtr != nil {
		r.m.alertCtr.Inc()
	}
	if ao, ok := r.next.(obs.AlertObserver); ok {
		ao.ObserveAlert(ev)
	}
	r.m.live.publishAlert(r.h.ID, r.h.Meta.Controller, ev)
}

// ObserveFault implements obs.FaultObserver.
func (r *monitorRun) ObserveFault(ev *obs.FaultEvent) {
	r.faults++
	r.m.mu.Lock()
	r.h.Faults++
	r.m.mu.Unlock()
	if r.m.faultCtr != nil {
		r.m.faultCtr.Inc()
	}
	if fo, ok := r.next.(obs.FaultObserver); ok {
		fo.ObserveFault(ev)
	}
}

// ObserveLearn implements obs.LearnObserver by forwarding to the chained
// observer on its own sampling stride (learn events arrive on the monitor's
// every-epoch stride and immediately follow ObserveEpoch for the same
// epoch, so nextWants is current). The monitor's own view of the learn
// metrics comes through the epoch event's Learn* fields.
func (r *monitorRun) ObserveLearn(ev *obs.LearnEvent) {
	if !r.nextWants {
		return
	}
	if lo, ok := r.next.(obs.LearnObserver); ok {
		lo.ObserveLearn(ev)
	}
}

// ObserveConverged implements obs.LearnObserver (forwarded like faults).
func (r *monitorRun) ObserveConverged(ev *obs.ConvergedEvent) {
	if lo, ok := r.next.(obs.LearnObserver); ok {
		lo.ObserveConverged(ev)
	}
}

// End implements obs.RunObserver.
func (r *monitorRun) End() {
	r.m.mu.Lock()
	r.h.Epochs = r.epochs
	r.h.Done = true
	r.m.mu.Unlock()
	if r.next != nil {
		r.next.End()
	}
}
