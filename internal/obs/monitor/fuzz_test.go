package monitor

import (
	"bytes"
	"testing"
)

// FuzzRulesJSON drives the strict alert-rules decoder with arbitrary
// bytes: it must never panic, and anything it accepts must survive
// engine compilation (the Validate contract) and re-loading.
func FuzzRulesJSON(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"name":"hot","metric":"max_temp_k","op":">","threshold":360,"for_epochs":5}]`))
	f.Add([]byte(`[{"name":"nan","metric":"power_w","op":"nonfinite"}]`))
	f.Add([]byte(`[{"name":"a","metric":"ips","op":"<","threshold":-1}]`))
	f.Add([]byte(`[{"name":"a","metric":"ips","op":">","treshold":1}]`))
	f.Add([]byte(`[] trailing`))
	f.Add([]byte(`{"not":"an array"}`))
	f.Add([]byte(`[{"name":"a","metric":"ips","op":">","threshold":1e999}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rules, err := LoadRules(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted rule sets must be fully usable.
		if _, err := newEngine(rules); err != nil {
			t.Fatalf("LoadRules accepted rules the engine rejects: %v", err)
		}
		for _, r := range rules {
			if err := r.Validate(); err != nil {
				t.Fatalf("LoadRules returned invalid rule %+v: %v", r, err)
			}
		}
	})
}
