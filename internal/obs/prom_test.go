package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"obs.trace.decide_ns": "obs_trace_decide_ns",
		"run-health/alerts":   "run_health_alerts",
		"9lives":              "_9lives",
		"ok_name:sub":         "ok_name:sub",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// checkExposition is a minimal validity parser for the text exposition
// format: every non-comment line must be `name[{labels}] value` with a
// parseable value, and every sample must be preceded by a TYPE line for
// its family.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: unparseable value %q: %v", ln+1, val, err)
			}
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, name)
			}
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam, ok := strings.CutSuffix(name, suffix); ok && typed[fam] {
				family = fam
				break
			}
		}
		if !typed[family] {
			t.Fatalf("line %d: sample %q has no preceding TYPE line", ln+1, name)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs.trace.runs").Add(3)
	r.Gauge("monitor.power_w").Set(88.5)
	h, err := r.Histogram("obs.trace.decide_ns", []float64{1e3, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(500)
	h.Observe(2000)
	h.Observe(5e7) // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	checkExposition(t, body)

	for _, want := range []string{
		"# TYPE obs_trace_runs counter\nobs_trace_runs 3\n",
		"monitor_power_w 88.5",
		`obs_trace_decide_ns_bucket{le="1000"} 1`,
		`obs_trace_decide_ns_bucket{le="1e+06"} 2`,
		`obs_trace_decide_ns_bucket{le="+Inf"} 3`,
		"obs_trace_decide_ns_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
