package learn

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// CLI owns the learning-introspection resources a command wires up from its
// flags (-learn, -snapshot-every, -artifacts).
type CLI struct {
	Layer *Layer
}

// StartCLI builds the standard command wiring. Introspection is enabled
// when -learn is set or an artifact directory is given; otherwise StartCLI
// returns nil and runs carry zero introspection cost. When ocli carries a
// debug server, /debug/learn serves live JSON summaries (with learning
// curves) of every run.
func StartCLI(ocli *obs.CLI, enabled bool, snapshotEvery int, artifactDir string) (*CLI, error) {
	if !enabled && artifactDir == "" {
		if snapshotEvery > 0 {
			return nil, fmt.Errorf("learn: -snapshot-every needs -artifacts (snapshots are files)")
		}
		return nil, nil
	}
	if snapshotEvery < 0 {
		return nil, fmt.Errorf("learn: negative snapshot cadence %d", snapshotEvery)
	}
	if snapshotEvery > 0 && artifactDir == "" {
		return nil, fmt.Errorf("learn: -snapshot-every needs -artifacts (snapshots are files)")
	}
	var reg *obs.Registry
	if ocli != nil {
		reg = ocli.Registry
	}
	l := New(Options{
		SnapshotEvery: snapshotEvery,
		ArtifactDir:   artifactDir,
		Registry:      reg,
	})
	if ocli != nil && ocli.Debug != nil {
		ocli.Debug.Handle("/debug/learn", DebugHandler(l))
	}
	return &CLI{Layer: l}, nil
}

// ResolveTrace decides where a command's JSONL trace goes. Without an
// artifact directory the explicit -trace-events flags pass through
// untouched. With one, the directory is created and the trace is recorded
// inside it at every epoch — the complete-run layout cmd/odrl-inspect
// consumes — and an explicit -trace-events is rejected rather than
// silently splitting the record across two destinations.
func ResolveTrace(traceEvents string, traceEvery int, artifactDir string) (string, int, error) {
	if artifactDir == "" {
		return traceEvents, traceEvery, nil
	}
	if traceEvents != "" {
		return "", 0, fmt.Errorf("learn: -artifacts records its own trace (%s); drop -trace-events",
			filepath.Join(artifactDir, "trace.jsonl"))
	}
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		return "", 0, fmt.Errorf("learn: artifacts: %w", err)
	}
	return filepath.Join(artifactDir, "trace.jsonl"), 1, nil
}

// DebugHandler serves the layer's run summaries as JSON.
func DebugHandler(l *Layer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		runs := l.Runs()
		out := make([]Summary, len(runs))
		for i, r := range runs {
			out[i] = r.Summarize(true)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck // best-effort HTTP response
			Runs []Summary `json:"runs"`
		}{Runs: out})
	})
}

// Close renders the end-of-run convergence summary to w (commonly stderr,
// keeping stdout tables clean) and surfaces any artifact-writing error.
// Nil-safe so callers can defer it unconditionally.
func (c *CLI) Close(w io.Writer) error {
	if c == nil {
		return nil
	}
	var first error
	for _, r := range c.Layer.Runs() {
		s := r.Summarize(false)
		if s.Epochs == 0 {
			continue
		}
		if w != nil {
			fmt.Fprintf(w, "learn: run %d (%s): %d/%d agents converged", //nolint:errcheck // best-effort summary
				s.Run, s.Meta.Controller, s.Converged, s.LiveAgents)
			if s.Converged > 0 {
				fmt.Fprintf(w, " (median %d epochs)", s.EpochsToConvergeP50) //nolint:errcheck // best-effort summary
			}
			fmt.Fprintf(w, ", td_ema %.4f, churn %.4f, coverage %.2f\n", //nolint:errcheck // best-effort summary
				s.TDErrEMA, s.Churn, s.Coverage)
		}
		if err := r.Err(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
