package learn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Policy snapshots are content-addressed binary blobs: a fixed header, then
// either the full policy tensor or a delta against the parent snapshot
// (changed cells only), whichever is smaller. The blob's SHA-256 names the
// file, so identical policies dedupe naturally and a JSON sidecar per
// snapshot carries the run context for post-hoc tools (odrl-inspect).
//
// Layout (all little-endian):
//
//	magic   [8]byte  "ODRLSNAP"
//	version uint16   (1)
//	flags   uint16   (bit 0: delta-encoded; other bits must be zero)
//	epoch   int64    learning epoch the snapshot was taken at
//	cores   uint32
//	states  uint32
//	actions uint32
//	parent  [32]byte SHA-256 of the parent blob (zero for full snapshots)
//	payload full:  cores·states·actions × float64
//	        delta: count uint32, then count × (index uint32, value float64)

const (
	snapMagic   = "ODRLSNAP"
	snapVersion = 1

	snapFlagDelta = 1 << 0

	snapHeaderLen = 8 + 2 + 2 + 8 + 4 + 4 + 4 + 32

	// Decoder bounds: a snapshot describes per-core tabular policies, so the
	// dimensions are small by construction. The caps keep hostile inputs
	// (fuzzing, corrupted files) from forcing large allocations.
	snapMaxCores   = 1 << 16
	snapMaxStates  = 1 << 16
	snapMaxActions = 1 << 10
	snapMaxValues  = 1 << 26 // 512 MiB of float64 — far above any real chip
)

// Snapshot is one decoded policy snapshot.
type Snapshot struct {
	Epoch                  int64
	Cores, States, Actions int
	// Delta marks delta encoding; then Indices/Values hold the changed
	// cells and Parent the parent blob's hash. Full snapshots fill Q.
	Delta   bool
	Parent  [32]byte
	Q       []float64
	Indices []uint32
	Values  []float64
}

// total returns the policy tensor's cell count.
func (s *Snapshot) total() int { return s.Cores * s.States * s.Actions }

// Encode serialises the snapshot to its canonical byte form (the form
// DecodeSnapshot parses and whose SHA-256 names the file).
func (s *Snapshot) Encode() []byte {
	n := snapHeaderLen
	if s.Delta {
		n += 4 + len(s.Indices)*12
	} else {
		n += len(s.Q) * 8
	}
	b := make([]byte, n)
	copy(b, snapMagic)
	binary.LittleEndian.PutUint16(b[8:], snapVersion)
	var flags uint16
	if s.Delta {
		flags |= snapFlagDelta
	}
	binary.LittleEndian.PutUint16(b[10:], flags)
	binary.LittleEndian.PutUint64(b[12:], uint64(s.Epoch))
	binary.LittleEndian.PutUint32(b[20:], uint32(s.Cores))
	binary.LittleEndian.PutUint32(b[24:], uint32(s.States))
	binary.LittleEndian.PutUint32(b[28:], uint32(s.Actions))
	copy(b[32:], s.Parent[:])
	p := snapHeaderLen
	if s.Delta {
		binary.LittleEndian.PutUint32(b[p:], uint32(len(s.Indices)))
		p += 4
		for i, idx := range s.Indices {
			binary.LittleEndian.PutUint32(b[p:], idx)
			binary.LittleEndian.PutUint64(b[p+4:], math.Float64bits(s.Values[i]))
			p += 12
		}
	} else {
		for _, v := range s.Q {
			binary.LittleEndian.PutUint64(b[p:], math.Float64bits(v))
			p += 8
		}
	}
	return b
}

// DecodeSnapshot parses a snapshot blob. It is strict — unknown versions or
// flag bits, inconsistent dimensions, out-of-range delta indices and
// trailing bytes are all errors — so round-tripping Encode∘DecodeSnapshot
// is the identity on accepted inputs (fuzzed by FuzzSnapshotRoundTrip).
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < snapHeaderLen {
		return nil, fmt.Errorf("learn: snapshot too short (%d bytes)", len(b))
	}
	if string(b[:8]) != snapMagic {
		return nil, fmt.Errorf("learn: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint16(b[8:]); v != snapVersion {
		return nil, fmt.Errorf("learn: unsupported snapshot version %d", v)
	}
	flags := binary.LittleEndian.Uint16(b[10:])
	if flags&^snapFlagDelta != 0 {
		return nil, fmt.Errorf("learn: unknown snapshot flags %#x", flags)
	}
	s := &Snapshot{
		Epoch:   int64(binary.LittleEndian.Uint64(b[12:])),
		Cores:   int(binary.LittleEndian.Uint32(b[20:])),
		States:  int(binary.LittleEndian.Uint32(b[24:])),
		Actions: int(binary.LittleEndian.Uint32(b[28:])),
		Delta:   flags&snapFlagDelta != 0,
	}
	copy(s.Parent[:], b[32:64])
	if s.Cores <= 0 || s.Cores > snapMaxCores ||
		s.States <= 0 || s.States > snapMaxStates ||
		s.Actions <= 0 || s.Actions > snapMaxActions {
		return nil, fmt.Errorf("learn: implausible snapshot shape %dx%dx%d", s.Cores, s.States, s.Actions)
	}
	total := s.total()
	if total > snapMaxValues {
		return nil, fmt.Errorf("learn: snapshot tensor too large (%d cells)", total)
	}
	body := b[snapHeaderLen:]
	if s.Delta {
		if len(body) < 4 {
			return nil, fmt.Errorf("learn: truncated delta header")
		}
		count := int(binary.LittleEndian.Uint32(body))
		if count > total {
			return nil, fmt.Errorf("learn: delta count %d exceeds tensor size %d", count, total)
		}
		if len(body) != 4+count*12 {
			return nil, fmt.Errorf("learn: delta payload is %d bytes, want %d", len(body), 4+count*12)
		}
		if s.Parent == ([32]byte{}) {
			return nil, fmt.Errorf("learn: delta snapshot without parent hash")
		}
		s.Indices = make([]uint32, count)
		s.Values = make([]float64, count)
		p := 4
		for i := 0; i < count; i++ {
			idx := binary.LittleEndian.Uint32(body[p:])
			if int(idx) >= total {
				return nil, fmt.Errorf("learn: delta index %d out of range [0,%d)", idx, total)
			}
			if i > 0 && idx <= s.Indices[i-1] {
				return nil, fmt.Errorf("learn: delta indices not strictly increasing at entry %d", i)
			}
			s.Indices[i] = idx
			s.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[p+4:]))
			p += 12
		}
	} else {
		if s.Parent != ([32]byte{}) {
			return nil, fmt.Errorf("learn: full snapshot carries a parent hash")
		}
		if len(body) != total*8 {
			return nil, fmt.Errorf("learn: full payload is %d bytes, want %d", len(body), total*8)
		}
		s.Q = make([]float64, total)
		for i := range s.Q {
			s.Q[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
	}
	return s, nil
}

// sidecar is the JSON companion written next to each snapshot blob.
type sidecar struct {
	Epoch      int     `json:"epoch"`
	TimeS      float64 `json:"time_s"`
	Controller string  `json:"controller,omitempty"`
	Workload   string  `json:"workload,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Cores      int     `json:"cores"`
	States     int     `json:"states"`
	Actions    int     `json:"actions"`
	Encoding   string  `json:"encoding"` // "full" | "delta"
	Changed    int     `json:"changed"`  // delta cells (== cells for full)
	Parent     string  `json:"parent,omitempty"`
	SHA256     string  `json:"sha256"`
	File       string  `json:"file"`
}

// snapshotter owns one run's artifact directory and delta chain.
type snapshotter struct {
	root  string
	every int
	meta  obs.RunMeta

	mu       sync.Mutex
	dir      string // created lazily on first write
	seq      int    // write sequence, prefixed to filenames for chain order
	prev     []float64
	cur      []float64
	prevHash [32]byte
	hasPrev  bool
	firstErr error
}

func newSnapshotter(root string, every int, meta obs.RunMeta) *snapshotter {
	return &snapshotter{root: root, every: every, meta: meta}
}

func (sn *snapshotter) err() error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.firstErr
}

func (sn *snapshotter) fail(err error) {
	if sn.firstErr == nil {
		sn.firstErr = err
	}
}

// write exports the policy and persists one snapshot; errors are sticky and
// later writes become no-ops once one fails.
func (sn *snapshotter) write(runID int64, epoch int, timeS float64, src PolicySource) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.firstErr != nil {
		return
	}
	cores, states, actions := src.PolicyShape()
	if cores == 0 {
		// No exportable tabular policy (e.g. function approximation): not an
		// error, simply nothing to snapshot.
		return
	}
	total := cores * states * actions
	if sn.cur == nil {
		sn.cur = make([]float64, total)
	} else if len(sn.cur) != total {
		sn.fail(fmt.Errorf("learn: policy shape changed mid-run (%d -> %d cells)", len(sn.cur), total))
		return
	}
	if err := src.CopyPolicy(sn.cur); err != nil {
		sn.fail(err)
		return
	}
	if sn.dir == "" {
		dir := filepath.Join(sn.root, fmt.Sprintf("run-%d-%s", runID, sanitize(sn.meta.Controller)))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			sn.fail(fmt.Errorf("learn: artifact dir: %w", err))
			return
		}
		sn.dir = dir
	}

	s := &Snapshot{Epoch: int64(epoch), Cores: cores, States: states, Actions: actions}
	changed := total
	if sn.hasPrev {
		var idx []uint32
		var vals []float64
		for i, v := range sn.cur {
			if v != sn.prev[i] {
				idx = append(idx, uint32(i))
				vals = append(vals, v)
			}
		}
		changed = len(idx)
		if changed == 0 {
			// Policy is bit-identical to the last snapshot: content
			// addressing makes a new blob pure redundancy, so skip it.
			return
		}
		// Delta pays off only when smaller than the full tensor.
		if 4+changed*12 < total*8 {
			s.Delta, s.Parent, s.Indices, s.Values = true, sn.prevHash, idx, vals
		}
	}
	if !s.Delta {
		s.Q = sn.cur
	}
	blob := s.Encode()
	hash := sha256.Sum256(blob)
	hexHash := hex.EncodeToString(hash[:])
	// The sequence prefix makes lexical filename order equal write order,
	// which is what the delta chain needs (epochs alone could collide).
	name := fmt.Sprintf("snap-%06d-e%08d-%s.qsnap", sn.seq, epoch, hexHash[:12])
	sn.seq++
	if err := os.WriteFile(filepath.Join(sn.dir, name), blob, 0o644); err != nil {
		sn.fail(fmt.Errorf("learn: snapshot: %w", err))
		return
	}
	side := sidecar{
		Epoch: epoch, TimeS: timeS,
		Controller: sn.meta.Controller, Workload: sn.meta.Workload, Seed: sn.meta.Seed,
		Cores: cores, States: states, Actions: actions,
		Encoding: "full", Changed: changed, SHA256: hexHash, File: name,
	}
	if s.Delta {
		side.Encoding = "delta"
		side.Parent = hex.EncodeToString(s.Parent[:])
	}
	sj, _ := json.MarshalIndent(side, "", "  ") //nolint:errcheck // plain struct cannot fail
	if err := os.WriteFile(filepath.Join(sn.dir, name+".json"), append(sj, '\n'), 0o644); err != nil {
		sn.fail(fmt.Errorf("learn: snapshot sidecar: %w", err))
		return
	}
	if sn.prev == nil {
		sn.prev = make([]float64, total)
	}
	sn.prev, sn.cur = sn.cur, sn.prev
	sn.prevHash, sn.hasPrev = hash, true
}

// close releases the delta-chain buffers.
func (sn *snapshotter) close() {
	sn.mu.Lock()
	sn.prev, sn.cur = nil, nil
	sn.mu.Unlock()
}

// sanitize keeps run-directory names filesystem-safe.
func sanitize(s string) string {
	if s == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, s)
}

// LoadedSnap is one snapshot reconstructed to its full policy tensor.
type LoadedSnap struct {
	Epoch                  int64
	Cores, States, Actions int
	Hash                   string
	Q                      []float64
}

// LoadSnapshots reads every *.qsnap in dir, verifies the delta chain
// (parent hashes and shapes) and reconstructs each snapshot's full policy,
// returned in epoch order.
func LoadSnapshots(dir string) ([]LoadedSnap, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.qsnap"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // snap-<zero-padded seq>-… sorts in write order
	var out []LoadedSnap
	var prevQ []float64
	var prevHash [32]byte
	havePrev := false
	for _, name := range names {
		blob, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		s, err := DecodeSnapshot(blob)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(name), err)
		}
		ls := LoadedSnap{
			Epoch: s.Epoch, Cores: s.Cores, States: s.States, Actions: s.Actions,
			Hash: hex.EncodeToString(func() []byte { h := sha256.Sum256(blob); return h[:] }()),
		}
		if s.Delta {
			if !havePrev {
				return nil, fmt.Errorf("%s: delta snapshot with no preceding snapshot", filepath.Base(name))
			}
			if s.Parent != prevHash {
				return nil, fmt.Errorf("%s: delta parent hash does not match previous snapshot", filepath.Base(name))
			}
			if len(prevQ) != s.total() {
				return nil, fmt.Errorf("%s: delta shape does not match previous snapshot", filepath.Base(name))
			}
			q := append([]float64(nil), prevQ...)
			for i, idx := range s.Indices {
				q[idx] = s.Values[i]
			}
			ls.Q = q
		} else {
			ls.Q = s.Q
		}
		prevQ = ls.Q
		prevHash = sha256.Sum256(blob)
		havePrev = true
		out = append(out, ls)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}
