package learn

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// fakePolicy is a PolicySource over a mutable tensor.
type fakePolicy struct {
	cores, states, actions int
	q                      []float64
}

func newFakePolicy(cores, states, actions int) *fakePolicy {
	q := make([]float64, cores*states*actions)
	for i := range q {
		q[i] = float64(i) * 0.5
	}
	return &fakePolicy{cores: cores, states: states, actions: actions, q: q}
}

func (p *fakePolicy) PolicyShape() (int, int, int) { return p.cores, p.states, p.actions }
func (p *fakePolicy) CopyPolicy(dst []float64) error {
	copy(dst, p.q)
	return nil
}

func TestSnapshotEncodeDecodeFull(t *testing.T) {
	s := &Snapshot{Epoch: 42, Cores: 2, States: 3, Actions: 2, Q: []float64{
		0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
	}}
	blob := s.Encode()
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, got)
	}
	if !bytes.Equal(blob, got.Encode()) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestSnapshotEncodeDecodeDelta(t *testing.T) {
	s := &Snapshot{
		Epoch: 7, Cores: 4, States: 8, Actions: 4, Delta: true,
		Indices: []uint32{0, 5, 100},
		Values:  []float64{1.5, -2.25, 0},
	}
	s.Parent[0] = 0xAB
	blob := s.Encode()
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, got)
	}
}

func TestSnapshotDecodeRejects(t *testing.T) {
	good := (&Snapshot{Epoch: 1, Cores: 1, States: 2, Actions: 2, Q: []float64{1, 2, 3, 4}}).Encode()
	cases := []struct {
		name string
		blob []byte
	}{
		{"short", good[:10]},
		{"bad-magic", append([]byte("NOTASNAP"), good[8:]...)},
		{"bad-version", func() []byte { b := append([]byte(nil), good...); b[8] = 99; return b }()},
		{"bad-flags", func() []byte { b := append([]byte(nil), good...); b[10] = 0x80; return b }()},
		{"truncated", good[:len(good)-4]},
		{"trailing", append(append([]byte(nil), good...), 0)},
		{"zero-shape", func() []byte { b := append([]byte(nil), good...); b[20], b[21], b[22], b[23] = 0, 0, 0, 0; return b }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSnapshot(tc.blob); err == nil {
				t.Fatal("corrupted blob accepted")
			}
		})
	}
}

func TestSnapshotterDeltaChain(t *testing.T) {
	dir := t.TempDir()
	l := New(Options{Detector: fastDetector(), SnapshotEvery: 2, ArtifactDir: dir})
	r := l.BeginRun(obs.RunMeta{Controller: "od-rl"}, nil, 0)
	p := newFakePolicy(2, 4, 3)

	for e := 0; e < 6; e++ {
		push(r, []obs.LearnCoreSample{sample(0.01, false), sample(0.01, false)})
		p.q[e] += 1.0 // small drift so deltas stay small
		r.MaybeSnapshot(float64(e), p)
	}
	r.Finish(6.0, p)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}

	runDirs, err := filepath.Glob(filepath.Join(dir, "run-*-od-rl"))
	if err != nil || len(runDirs) != 1 {
		t.Fatalf("run dirs = %v (err %v), want exactly one", runDirs, err)
	}
	snaps, err := LoadSnapshots(runDirs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cadence 2 over 6 epochs → snapshots at 2, 4, 6, plus the final write
	// at Finish (same epoch 6, identical content, distinct only if changed —
	// content addressing dedupes identical blobs into one file).
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots, want >= 3", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !reflect.DeepEqual(last.Q, p.q) {
		t.Fatal("reconstructed final policy differs from source")
	}
	// Sidecars exist for every blob.
	blobs, _ := filepath.Glob(filepath.Join(runDirs[0], "*.qsnap"))
	for _, b := range blobs {
		if _, err := os.Stat(b + ".json"); err != nil {
			t.Fatalf("missing sidecar for %s", filepath.Base(b))
		}
	}
}

func TestLoadSnapshotsBrokenChain(t *testing.T) {
	dir := t.TempDir()
	// A delta snapshot with no preceding full snapshot must be rejected.
	s := &Snapshot{Epoch: 3, Cores: 1, States: 2, Actions: 2, Delta: true,
		Indices: []uint32{1}, Values: []float64{9}}
	s.Parent[5] = 1
	if err := os.WriteFile(filepath.Join(dir, "snap-00000003-abc.qsnap"), s.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshots(dir); err == nil {
		t.Fatal("orphan delta accepted")
	}
}

// FuzzSnapshotRoundTrip: any blob the strict decoder accepts must re-encode
// to the identical bytes and decode again to the identical structure; no
// input may panic or over-allocate.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add((&Snapshot{Epoch: 1, Cores: 1, States: 2, Actions: 2, Q: []float64{1, 2, 3, 4}}).Encode())
	d := &Snapshot{Epoch: 9, Cores: 2, States: 2, Actions: 2, Delta: true,
		Indices: []uint32{0, 7}, Values: []float64{-1, 2.5}}
	d.Parent[0] = 1
	f.Add(d.Encode())
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := DecodeSnapshot(blob)
		if err != nil {
			return
		}
		re := s.Encode()
		if !bytes.Equal(blob, re) {
			t.Fatalf("accepted blob does not round-trip:\n in %x\nout %x", blob, re)
		}
		s2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Compare via canonical bytes, not DeepEqual: NaN payloads survive
		// the bit-level round trip but NaN != NaN under DeepEqual.
		if !bytes.Equal(re, s2.Encode()) {
			t.Fatal("re-decode structure mismatch")
		}
	})
}
