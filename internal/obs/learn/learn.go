// Package learn is the learning-introspection layer on top of package obs:
// streaming per-agent telemetry (TD-error magnitude, exploration rate,
// greedy-policy churn, Q-value spread, visit-count coverage) aggregated per
// island and chip, an online convergence detector emitting `converged`
// trace events, periodic content-addressed policy snapshots, and a
// /debug/learn read surface. It consumes the obs.LearnSink sample stream a
// learning controller exposes through ctrl.LearnStreamer and never
// influences it: decision streams are bit-identical with the layer on or
// off (proven by the golden-table tests in internal/experiments).
package learn

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/monitor"
)

// Detector parameterises the online convergence criterion: an agent is
// declared converged once its greedy policy has not flipped for
// StableEpochs consecutive epochs AND its TD-error magnitude EMA sits at or
// below TDThreshold. Zero fields take defaults.
type Detector struct {
	// StableEpochs is the greedy-stability window K.
	StableEpochs int
	// TDThreshold is the |δ| EMA ceiling.
	TDThreshold float64
	// EMAAlpha smooths the per-agent |δ| EMA the criterion tests.
	EMAAlpha float64
}

// DefaultDetector returns the detector used when fields are zero: the
// stability window covers many global-reallocation periods so budget
// shuffles cannot fake convergence, and the threshold is small against the
// reward scale (normalised throughput ≤ 1).
func DefaultDetector() Detector {
	return Detector{StableEpochs: 200, TDThreshold: 0.02, EMAAlpha: 0.05}
}

func (d Detector) withDefaults() Detector {
	def := DefaultDetector()
	if d.StableEpochs == 0 {
		d.StableEpochs = def.StableEpochs
	}
	if d.TDThreshold == 0 {
		d.TDThreshold = def.TDThreshold
	}
	if d.EMAAlpha == 0 {
		d.EMAAlpha = def.EMAAlpha
	}
	return d
}

// DefaultEmitEvery is the controller-side emit stride: agents track greedy
// flips exactly every step (O(1) incremental cache maintenance), but the
// aggregation — quantile sketch, EMAs, detector bookkeeping — runs once per
// stride, keeping the layer's epoch-loop overhead within the bench-learn
// budget. Convergence epochs are therefore resolved to this granularity.
const DefaultEmitEvery = 16

// Options configures a Layer.
type Options struct {
	// Detector tunes the convergence criterion; zero fields take defaults.
	Detector Detector
	// EmitEvery is the controller emit stride in control epochs (default
	// DefaultEmitEvery). Greedy-flip detection stays per-step exact; only
	// the telemetry aggregation runs on the stride. 1 restores per-epoch
	// emits.
	EmitEvery int
	// SnapshotEvery is the policy-snapshot cadence in learning epochs; with
	// ArtifactDir set, 0 still writes the final snapshot at run end.
	SnapshotEvery int
	// ArtifactDir is the root directory for per-run snapshot artifacts;
	// empty disables snapshots.
	ArtifactDir string
	// SeriesCap bounds the /debug/learn learning-curve series (default
	// monitor.DefaultSeriesCap).
	SeriesCap int
	// Registry, when set, receives obs.learn.* counters.
	Registry *obs.Registry
}

// Layer owns learning introspection across runs; one Layer may watch many
// (possibly concurrent) runs.
type Layer struct {
	opt    Options
	runIDs atomic.Int64

	runCtr  *obs.Counter
	convCtr *obs.Counter

	mu   sync.Mutex
	runs []*Run
}

// New builds a layer.
func New(opt Options) *Layer {
	opt.Detector = opt.Detector.withDefaults()
	if opt.EmitEvery <= 0 {
		opt.EmitEvery = DefaultEmitEvery
	}
	if opt.SeriesCap <= 0 {
		opt.SeriesCap = monitor.DefaultSeriesCap
	}
	l := &Layer{opt: opt}
	if r := opt.Registry; r != nil {
		l.runCtr = r.Counter("obs.learn.runs")
		l.convCtr = r.Counter("obs.learn.converged")
	}
	return l
}

// BeginRun starts introspection for one run. islandOf maps core index to
// voltage-frequency island (may be nil when island structure is unknown)
// and islands is the island count; the returned Run is the obs.LearnSink to
// attach to the controller.
func (l *Layer) BeginRun(meta obs.RunMeta, islandOf []int32, islands int) *Run {
	r := &Run{
		layer:     l,
		id:        l.runIDs.Add(1),
		meta:      meta,
		det:       l.opt.Detector,
		emitEvery: l.opt.EmitEvery,
		islandOf:  islandOf,
		sketch:    monitor.NewSketch(),
		tdSeries:  monitor.NewSeries("learn.td_ema", l.opt.SeriesCap),
		chSeries:  monitor.NewSeries("learn.churn", l.opt.SeriesCap),
		cvSeries:  monitor.NewSeries("learn.converged_frac", l.opt.SeriesCap),
	}
	if islands > 0 && islandOf != nil {
		r.islandEMA = make([]float64, islands)
		r.islandSum = make([]float64, islands)
		r.islandCnt = make([]int, islands)
	}
	if l.opt.ArtifactDir != "" {
		r.snap = newSnapshotter(l.opt.ArtifactDir, l.opt.SnapshotEvery, meta)
	}
	if l.runCtr != nil {
		l.runCtr.Inc()
	}
	l.mu.Lock()
	l.runs = append(l.runs, r)
	l.mu.Unlock()
	return r
}

// Runs returns every run the layer has begun, in order.
func (l *Layer) Runs() []*Run {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Run(nil), l.runs...)
}

// Run accumulates one run's learning telemetry. Writes arrive from the
// simulation loop (one goroutine); reads may come concurrently from HTTP
// handlers, so all state is mutex-guarded.
type Run struct {
	layer     *Layer
	id        int64
	meta      obs.RunMeta
	det       Detector
	emitEvery int

	mu     sync.Mutex
	epochs int // learning epochs observed (controller decisions)
	emits  int // ObserveLearnEpoch calls (== epochs when emitEvery is 1)
	live   int // live agents at the last emit

	// Per-agent detector state, lazily sized from the first sample batch.
	tdEMA       []float64
	stableFor   []int
	convergedAt []int // learning epoch of convergence, -1 while learning
	converged   int

	// Chip-level EMAs (det.EMAAlpha) plus latest instantaneous values.
	chipTD     float64
	churn      float64
	greedyFrac float64
	qSpread    float64
	coverage   float64
	epsilon    float64

	// Streaming |δ| distribution and bounded learning-curve series.
	sketch   *monitor.Sketch
	tdSeries *monitor.Series
	chSeries *monitor.Series
	cvSeries *monitor.Series

	// Per-island |δ| EMA; islandSum/islandCnt are per-epoch scratch.
	islandOf  []int32
	islandEMA []float64
	islandSum []float64
	islandCnt []int

	// Convergence events awaiting harness drain. npending lets the per-epoch
	// drain skip the lock when nothing fired (the overwhelmingly common case).
	npending atomic.Int32
	pending  []obs.ConvergedEvent
	drainBuf []obs.ConvergedEvent

	snap         *snapshotter
	lastSnapshot int // learning epoch of the last periodic snapshot
	done         bool
}

// LearnEmitEvery implements obs.LearnStrider: the controller batches this
// many control epochs per ObserveLearnEpoch call.
func (r *Run) LearnEmitEvery() int { return r.emitEvery }

// ObserveLearnEpoch implements obs.LearnSink.
//
//odrl:hotpath
func (r *Run) ObserveLearnEpoch(samples []obs.LearnCoreSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	if r.tdEMA == nil {
		n := len(samples)
		r.tdEMA = make([]float64, n)
		r.stableFor = make([]int, n)
		r.convergedAt = make([]int, n)
		for i := range r.convergedAt {
			r.convergedAt[i] = -1
		}
	}
	// adv is the emit window in control epochs: per-epoch producers leave
	// Epochs at zero (read as one); strided controllers batch several.
	adv := 1
	for i := range samples {
		if e := samples[i].Epochs; e > adv {
			adv = e
		}
	}
	first := r.epochs == 0
	r.epochs += adv
	r.emits++
	a := r.det.EMAAlpha

	for i := range r.islandSum {
		r.islandSum[i] = 0
		r.islandCnt[i] = 0
	}

	var (
		live                     int
		sumTD, sumEps, sumSpread float64
		sumCover                 float64
		nChurn, nGreedy          int
	)
	for i := range samples {
		s := &samples[i]
		if s.Dead {
			continue
		}
		live++
		absTD := math.Abs(s.TDError)
		sumTD += absTD
		sumEps += s.Epsilon
		sumSpread += s.QSpread
		if s.States > 0 {
			sumCover += float64(s.VisitedStates) / float64(s.States)
		}
		if s.GreedyChanged {
			nChurn++
		}
		if s.ActedGreedy {
			nGreedy++
		}
		r.sketch.Observe(absTD)

		// Per-agent convergence detector. A window with any greedy flip
		// resets the stability clock (flip counts are exact even on a
		// stride); a clean window extends it by the window's epochs.
		if first {
			r.tdEMA[i] = absTD
		} else {
			r.tdEMA[i] = a*absTD + (1-a)*r.tdEMA[i]
		}
		if s.GreedyChanged {
			r.stableFor[i] = 0
		} else {
			r.stableFor[i] += adv
		}
		if r.convergedAt[i] < 0 && r.stableFor[i] >= r.det.StableEpochs && r.tdEMA[i] <= r.det.TDThreshold {
			r.convergedAt[i] = r.epochs
			r.converged++
			if c := r.layer.convCtr; c != nil {
				c.Inc()
			}
			r.pending = append(r.pending, obs.ConvergedEvent{
				Core:             i,
				EpochsToConverge: r.epochs,
				TDErrEMA:         r.tdEMA[i],
				Epsilon:          s.Epsilon,
			})
			r.npending.Store(int32(len(r.pending)))
		}

		if r.islandEMA != nil && i < len(r.islandOf) {
			isl := int(r.islandOf[i])
			if isl >= 0 && isl < len(r.islandSum) {
				r.islandSum[isl] += absTD
				r.islandCnt[isl]++
			}
		}
	}
	r.live = live
	if live == 0 {
		return
	}

	instTD := sumTD / float64(live)
	instChurn := float64(nChurn) / float64(live)
	instGreedy := float64(nGreedy) / float64(live)
	instSpread := sumSpread / float64(live)
	if first {
		r.chipTD, r.churn, r.greedyFrac, r.qSpread = instTD, instChurn, instGreedy, instSpread
	} else {
		r.chipTD = a*instTD + (1-a)*r.chipTD
		r.churn = a*instChurn + (1-a)*r.churn
		r.greedyFrac = a*instGreedy + (1-a)*r.greedyFrac
		r.qSpread = a*instSpread + (1-a)*r.qSpread
	}
	r.coverage = sumCover / float64(live)
	r.epsilon = sumEps / float64(live)

	for i := range r.islandEMA {
		if r.islandCnt[i] == 0 {
			continue
		}
		inst := r.islandSum[i] / float64(r.islandCnt[i])
		if first {
			r.islandEMA[i] = inst
		} else {
			r.islandEMA[i] = a*inst + (1-a)*r.islandEMA[i]
		}
	}

	r.tdSeries.Append(r.chipTD)
	r.chSeries.Append(r.churn)
	r.cvSeries.Append(r.convergedFracLocked())
}

// convergedFracLocked is the converged share of live agents; callers hold mu.
func (r *Run) convergedFracLocked() float64 {
	if r.live == 0 {
		return 0
	}
	return float64(r.converged) / float64(r.live)
}

// FillEvent mirrors the layer's headline metrics into a sampled epoch event
// (the monitor's frame store and alert rules read them from there). A no-op
// before the first learning epoch, keeping the fields at their omitempty
// zeros.
//
//odrl:hotpath
func (r *Run) FillEvent(ev *obs.EpochEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epochs == 0 {
		return
	}
	ev.LearnTDEMA = r.chipTD
	ev.LearnChurn = r.churn
	ev.LearnConvergedFrac = r.convergedFracLocked()
	ev.LearnEpsilon = r.epsilon
}

// FillLearnEvent fills a learn trace event from current state. IslandTDEMA
// is attached only when detail is true (the EpochDetailSampler contract)
// and aliases internal storage: the caller must consume the event before
// the next simulation epoch, which the synchronous observer chain
// guarantees.
//
//odrl:hotpath
func (r *Run) FillLearnEvent(le *obs.LearnEvent, detail bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	le.TDErrEMA = r.chipTD
	le.TDErrP99 = r.sketch.Quantile(0.99)
	le.Epsilon = r.epsilon
	le.Churn = r.churn
	le.GreedyFrac = r.greedyFrac
	le.Coverage = r.coverage
	le.QSpread = r.qSpread
	le.ConvergedFrac = r.convergedFracLocked()
	if detail {
		le.IslandTDEMA = r.islandEMA
	} else {
		le.IslandTDEMA = nil
	}
}

// DrainConverged hands any convergence events fired since the last drain to
// fn, in firing order. The caller stamps Epoch/TimeS before forwarding. The
// no-event fast path is one atomic load.
func (r *Run) DrainConverged(fn func(*obs.ConvergedEvent)) {
	if r.npending.Load() == 0 {
		return
	}
	r.mu.Lock()
	r.drainBuf = append(r.drainBuf[:0], r.pending...)
	r.pending = r.pending[:0]
	r.npending.Store(0)
	r.mu.Unlock()
	for i := range r.drainBuf {
		fn(&r.drainBuf[i])
	}
}

// PolicySource is the dense-policy read contract snapshots draw from;
// ctrl.PolicySnapshotter satisfies it.
type PolicySource interface {
	PolicyShape() (cores, states, actions int)
	CopyPolicy(dst []float64) error
}

// MaybeSnapshot writes a policy snapshot when the run's artifact directory
// is set, the learning-epoch counter has crossed a cadence boundary since
// the last periodic snapshot, and src exports a tabular policy. Crossing
// (rather than exact divisibility) keeps the cadence honest when the
// controller emits epochs in strided batches. Errors are sticky and
// reported by Err.
func (r *Run) MaybeSnapshot(timeS float64, src PolicySource) {
	if r.snap == nil || src == nil {
		return
	}
	r.mu.Lock()
	every, epochs := r.snap.every, r.epochs
	due := every > 0 && epochs > 0 && epochs/every > r.lastSnapshot/every
	if due {
		r.lastSnapshot = epochs
	}
	r.mu.Unlock()
	if !due {
		return
	}
	r.snap.write(r.id, epochs, timeS, src)
}

// Finish marks the run done and, when artifacts are enabled, writes the
// final policy snapshot (even with SnapshotEvery 0: the final policy is the
// one odrl-inspect diffs).
func (r *Run) Finish(timeS float64, src PolicySource) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	epochs := r.epochs
	r.mu.Unlock()
	if r.snap != nil && src != nil && epochs > 0 {
		r.snap.write(r.id, epochs, timeS, src)
		r.snap.close()
	}
}

// Err returns the first artifact-writing error, nil when snapshots are off
// or healthy.
func (r *Run) Err() error {
	if r.snap == nil {
		return nil
	}
	return r.snap.err()
}

// Summary is a point-in-time copy of one run's learning state for the
// /debug/learn surface and end-of-run reports.
type Summary struct {
	Run           int64       `json:"run"`
	Meta          obs.RunMeta `json:"meta"`
	Epochs        int         `json:"epochs"`
	LiveAgents    int         `json:"live_agents"`
	Converged     int         `json:"converged"`
	ConvergedFrac float64     `json:"converged_frac"`
	// EpochsToConvergeP50 is the median epochs-to-convergence over converged
	// agents (0 when none).
	EpochsToConvergeP50 int       `json:"epochs_to_converge_p50"`
	TDErrEMA            float64   `json:"td_ema"`
	TDErrP99            float64   `json:"td_p99"`
	Churn               float64   `json:"churn"`
	GreedyFrac          float64   `json:"greedy_frac"`
	Coverage            float64   `json:"coverage"`
	Epsilon             float64   `json:"epsilon"`
	QSpread             float64   `json:"q_spread"`
	IslandTDEMA         []float64 `json:"island_td_ema,omitempty"`
	Done                bool      `json:"done"`

	// Curves are the bounded learning-curve series (td_ema, churn,
	// converged_frac).
	Curves []monitor.SeriesSnapshot `json:"curves,omitempty"`
}

// Summarize copies the run's current state. withCurves attaches the series
// snapshots (the HTTP surface wants them; table writers don't).
func (r *Run) Summarize(withCurves bool) Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		Run:           r.id,
		Meta:          r.meta,
		Epochs:        r.epochs,
		LiveAgents:    r.live,
		Converged:     r.converged,
		ConvergedFrac: r.convergedFracLocked(),
		TDErrEMA:      r.chipTD,
		TDErrP99:      r.sketch.Quantile(0.99),
		Churn:         r.churn,
		GreedyFrac:    r.greedyFrac,
		Coverage:      r.coverage,
		Epsilon:       r.epsilon,
		QSpread:       r.qSpread,
		Done:          r.done,
	}
	s.EpochsToConvergeP50 = medianConverged(r.convergedAt)
	if r.islandEMA != nil {
		s.IslandTDEMA = append([]float64(nil), r.islandEMA...)
	}
	if withCurves {
		s.Curves = []monitor.SeriesSnapshot{
			r.tdSeries.Snapshot(), r.chSeries.Snapshot(), r.cvSeries.Snapshot(),
		}
	}
	return s
}

// ConvergedEpochs returns each agent's epochs-to-convergence, -1 for agents
// still learning; nil before the first epoch.
func (r *Run) ConvergedEpochs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.convergedAt...)
}

// medianConverged is the median of the non-negative entries (0 when none).
func medianConverged(at []int) int {
	var conv []int
	for _, e := range at {
		if e >= 0 {
			conv = append(conv, e)
		}
	}
	if len(conv) == 0 {
		return 0
	}
	// Insertion sort: convergence sets are small (one entry per core).
	for i := 1; i < len(conv); i++ {
		for j := i; j > 0 && conv[j] < conv[j-1]; j-- {
			conv[j], conv[j-1] = conv[j-1], conv[j]
		}
	}
	return conv[len(conv)/2]
}
