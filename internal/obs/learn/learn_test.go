package learn

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fastDetector converges quickly so tests stay short.
func fastDetector() Detector {
	return Detector{StableEpochs: 3, TDThreshold: 0.1, EMAAlpha: 0.5}
}

// push feeds one synthetic epoch: per-core (tdError, greedyChanged) pairs.
func push(r *Run, cores []obs.LearnCoreSample) {
	r.ObserveLearnEpoch(cores)
}

func sample(td float64, churned bool) obs.LearnCoreSample {
	return obs.LearnCoreSample{
		TDError: td, Epsilon: 0.1, QSpread: 1.0,
		GreedyChanged: churned, ActedGreedy: !churned,
		VisitedStates: 5, States: 10,
	}
}

func TestDetectorConvergence(t *testing.T) {
	l := New(Options{Detector: fastDetector()})
	r := l.BeginRun(obs.RunMeta{Controller: "od-rl"}, nil, 0)

	// Core 0 is quiet from the start; core 1 keeps flipping its greedy
	// action, so only core 0 may converge.
	for e := 0; e < 6; e++ {
		push(r, []obs.LearnCoreSample{sample(0.01, false), sample(0.5, true)})
	}

	var events []obs.ConvergedEvent
	r.DrainConverged(func(ev *obs.ConvergedEvent) { events = append(events, *ev) })
	if len(events) != 1 {
		t.Fatalf("got %d converged events, want 1", len(events))
	}
	if events[0].Core != 0 {
		t.Fatalf("converged core = %d, want 0", events[0].Core)
	}
	// StableEpochs=3: stableFor hits 3 at epoch 3.
	if events[0].EpochsToConverge != 3 {
		t.Fatalf("EpochsToConverge = %d, want 3", events[0].EpochsToConverge)
	}

	s := r.Summarize(false)
	if s.Converged != 1 || s.LiveAgents != 2 {
		t.Fatalf("summary converged/live = %d/%d, want 1/2", s.Converged, s.LiveAgents)
	}
	if s.ConvergedFrac != 0.5 {
		t.Fatalf("ConvergedFrac = %g, want 0.5", s.ConvergedFrac)
	}
	if s.EpochsToConvergeP50 != 3 {
		t.Fatalf("median epochs-to-converge = %d, want 3", s.EpochsToConvergeP50)
	}

	// A second drain must be empty (events fire once).
	r.DrainConverged(func(*obs.ConvergedEvent) { t.Fatal("event drained twice") })

	at := r.ConvergedEpochs()
	if at[0] != 3 || at[1] != -1 {
		t.Fatalf("ConvergedEpochs = %v, want [3 -1]", at)
	}
}

func TestHighTDErrorBlocksConvergence(t *testing.T) {
	l := New(Options{Detector: fastDetector()})
	r := l.BeginRun(obs.RunMeta{}, nil, 0)
	// Greedy-stable but with TD errors far above threshold: never converges.
	for e := 0; e < 20; e++ {
		push(r, []obs.LearnCoreSample{sample(5.0, false)})
	}
	r.DrainConverged(func(*obs.ConvergedEvent) { t.Fatal("converged despite high TD error") })
	if s := r.Summarize(false); s.Converged != 0 {
		t.Fatalf("converged = %d, want 0", s.Converged)
	}
}

func TestDeadCoresExcluded(t *testing.T) {
	l := New(Options{Detector: fastDetector()})
	r := l.BeginRun(obs.RunMeta{}, nil, 0)
	for e := 0; e < 6; e++ {
		push(r, []obs.LearnCoreSample{sample(0.01, false), {Dead: true}})
	}
	s := r.Summarize(false)
	if s.LiveAgents != 1 {
		t.Fatalf("live agents = %d, want 1", s.LiveAgents)
	}
	if s.ConvergedFrac != 1.0 {
		t.Fatalf("ConvergedFrac = %g, want 1 (dead core excluded)", s.ConvergedFrac)
	}
	if s.Epsilon != 0.1 {
		t.Fatalf("epsilon mean = %g polluted by dead core", s.Epsilon)
	}
}

func TestFillEventAndLearnEvent(t *testing.T) {
	l := New(Options{Detector: fastDetector()})
	islandOf := []int32{0, 0, 1, 1}
	r := l.BeginRun(obs.RunMeta{}, islandOf, 2)

	var ev obs.EpochEvent
	r.FillEvent(&ev)
	if ev.LearnTDEMA != 0 || ev.LearnEpsilon != 0 {
		t.Fatal("FillEvent before first epoch must leave omitempty zeros")
	}

	// Island 0 quiet, island 1 noisy.
	push(r, []obs.LearnCoreSample{
		sample(0.1, false), sample(0.1, false),
		sample(0.9, true), sample(0.9, true),
	})

	r.FillEvent(&ev)
	if ev.LearnTDEMA != 0.5 { // mean |δ| of first epoch seeds the EMA
		t.Fatalf("LearnTDEMA = %g, want 0.5", ev.LearnTDEMA)
	}
	if ev.LearnChurn != 0.5 {
		t.Fatalf("LearnChurn = %g, want 0.5", ev.LearnChurn)
	}
	if ev.LearnEpsilon != 0.1 {
		t.Fatalf("LearnEpsilon = %g, want 0.1", ev.LearnEpsilon)
	}

	var le obs.LearnEvent
	r.FillLearnEvent(&le, false)
	if le.IslandTDEMA != nil {
		t.Fatal("IslandTDEMA attached without detail")
	}
	if le.Coverage != 0.5 {
		t.Fatalf("Coverage = %g, want 0.5", le.Coverage)
	}
	if le.GreedyFrac != 0.5 {
		t.Fatalf("GreedyFrac = %g, want 0.5", le.GreedyFrac)
	}
	r.FillLearnEvent(&le, true)
	if len(le.IslandTDEMA) != 2 || le.IslandTDEMA[0] != 0.1 || le.IslandTDEMA[1] != 0.9 {
		t.Fatalf("IslandTDEMA = %v, want [0.1 0.9]", le.IslandTDEMA)
	}
	if le.TDErrP99 <= 0 {
		t.Fatalf("TDErrP99 = %g, want > 0", le.TDErrP99)
	}
}

func TestDebugHandler(t *testing.T) {
	l := New(Options{Detector: fastDetector()})
	r := l.BeginRun(obs.RunMeta{Controller: "od-rl"}, nil, 0)
	for e := 0; e < 4; e++ {
		push(r, []obs.LearnCoreSample{sample(0.05, false)})
	}
	rec := httptest.NewRecorder()
	DebugHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/learn", nil))
	var body struct {
		Runs []Summary `json:"runs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid /debug/learn JSON: %v", err)
	}
	if len(body.Runs) != 1 || body.Runs[0].Epochs != 4 {
		t.Fatalf("unexpected /debug/learn payload: %+v", body)
	}
	if len(body.Runs[0].Curves) != 3 {
		t.Fatalf("got %d curves, want 3", len(body.Runs[0].Curves))
	}
}

// TestLearnStoreRace is the race hammer: concurrent /debug/learn readers
// and Summarize calls while the write path streams epochs. Run under
// -race (the race-learn make target).
func TestLearnStoreRace(t *testing.T) {
	l := New(Options{Detector: fastDetector()})
	r := l.BeginRun(obs.RunMeta{Controller: "od-rl"}, []int32{0, 0, 0, 0}, 1)
	h := DebugHandler(l)

	const epochs = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/learn", nil))
				_ = r.Summarize(true)
				_ = r.ConvergedEpochs()
				var ev obs.EpochEvent
				r.FillEvent(&ev)
			}
		}()
	}

	buf := make([]obs.LearnCoreSample, 4)
	for e := 0; e < epochs; e++ {
		for i := range buf {
			buf[i] = sample(float64(e%7)/10, e%13 == 0)
		}
		r.ObserveLearnEpoch(buf)
		r.DrainConverged(func(*obs.ConvergedEvent) {})
	}
	close(stop)
	wg.Wait()
	if s := r.Summarize(false); s.Epochs != epochs {
		t.Fatalf("epochs = %d, want %d", s.Epochs, epochs)
	}
}

func TestMedianConverged(t *testing.T) {
	if got := medianConverged([]int{-1, -1}); got != 0 {
		t.Fatalf("median of none = %d, want 0", got)
	}
	if got := medianConverged([]int{9, -1, 3, 7}); got != 7 {
		t.Fatalf("median = %d, want 7", got)
	}
}
