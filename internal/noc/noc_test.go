package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, Default()); err == nil {
		t.Fatal("expected error for zero width")
	}
	bad := Default()
	bad.HopLatencyS = -1
	if _, err := New(3, 3, bad); err == nil {
		t.Fatal("expected error for negative hop latency")
	}
}

func TestHopsKnownValues(t *testing.T) {
	m, _ := New(4, 4, Default())
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 3, 3},  // across the top row
		{0, 15, 6}, // corner to corner
		{5, 6, 1},  // adjacent
		{0, 12, 3}, // down the left column
		{12, 3, 6}, // opposite corners
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsPanicsOutOfRange(t *testing.T) {
	m, _ := New(2, 2, Default())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Hops(0, 4)
}

func TestCenter(t *testing.T) {
	m, _ := New(4, 4, Default())
	c := m.Center()
	// Centre of a 4x4 is node (2,2) = 10.
	if c != 10 {
		t.Fatalf("Center = %d, want 10", c)
	}
	// Centre must minimise the maximum hop distance reasonably: its
	// eccentricity should be at most (w+h)/2.
	maxHop := 0
	for i := 0; i < m.Nodes(); i++ {
		if h := m.Hops(i, c); h > maxHop {
			maxHop = h
		}
	}
	if maxHop > 4 {
		t.Fatalf("centre eccentricity = %d, want <= 4", maxHop)
	}
}

func TestGatherCostSingleNode(t *testing.T) {
	m, _ := New(1, 1, Default())
	c := m.GatherCost(0)
	if c.LatencyS != 0 || c.EnergyJ != 0 {
		t.Fatalf("1x1 gather cost = %+v, want zero", c)
	}
}

func TestGatherCostGrowsWithMeshSize(t *testing.T) {
	small, _ := New(4, 4, Default())
	large, _ := New(16, 16, Default())
	cs := small.GatherCost(small.Center())
	cl := large.GatherCost(large.Center())
	if cl.LatencyS <= cs.LatencyS {
		t.Fatalf("larger mesh gather latency %v not above smaller %v", cl.LatencyS, cs.LatencyS)
	}
	if cl.EnergyJ <= cs.EnergyJ {
		t.Fatalf("larger mesh gather energy %v not above smaller %v", cl.EnergyJ, cs.EnergyJ)
	}
	// The ingress-serialisation term makes latency scale at least linearly
	// in node count.
	if cl.LatencyS < float64(large.Nodes()-1)*Default().IngestLatencyS {
		t.Fatal("gather latency misses the serialised ingress term")
	}
}

func TestGatherCostAnalytic2x1(t *testing.T) {
	p := Default()
	m, _ := New(2, 1, p)
	c := m.GatherCost(0)
	wantLat := p.HopLatencyS + p.IngestLatencyS
	wantEn := p.HopEnergyJ
	if math.Abs(c.LatencyS-wantLat) > 1e-18 || math.Abs(c.EnergyJ-wantEn) > 1e-18 {
		t.Fatalf("2x1 gather = %+v, want {%g %g}", c, wantLat, wantEn)
	}
}

func TestScatterEqualsGather(t *testing.T) {
	m, _ := New(5, 3, Default())
	g := m.GatherCost(m.Center())
	s := m.ScatterCost(m.Center())
	if g != s {
		t.Fatalf("scatter %+v != gather %+v", s, g)
	}
}

func TestNeighborExchangeCostConstantLatency(t *testing.T) {
	p := Default()
	small, _ := New(4, 4, p)
	large, _ := New(32, 32, p)
	if small.NeighborExchangeCost().LatencyS != large.NeighborExchangeCost().LatencyS {
		t.Fatal("neighbour-exchange latency must be independent of mesh size")
	}
	// Energy scales with edge count.
	if large.NeighborExchangeCost().EnergyJ <= small.NeighborExchangeCost().EnergyJ {
		t.Fatal("neighbour-exchange energy should grow with mesh size")
	}
}

func TestNeighborExchangeEdgeCount(t *testing.T) {
	p := Default()
	m, _ := New(3, 2, p)
	// Edges: horizontal (3-1)*2=4, vertical (2-1)*3=3, total 7; both
	// directions → 14 message-hops.
	want := 14 * p.HopEnergyJ
	if got := m.NeighborExchangeCost().EnergyJ; math.Abs(got-want) > 1e-18 {
		t.Fatalf("exchange energy = %v, want %v", got, want)
	}
}

// Property: hop distance is a metric (symmetric, zero iff equal, triangle
// inequality) on arbitrary meshes.
func TestQuickHopsMetric(t *testing.T) {
	f := func(wRaw, hRaw, aRaw, bRaw, cRaw uint8) bool {
		w := int(wRaw%8) + 1
		h := int(hRaw%8) + 1
		m, err := New(w, h, Default())
		if err != nil {
			return false
		}
		n := m.Nodes()
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		if m.Hops(a, b) != m.Hops(b, a) {
			return false
		}
		if (m.Hops(a, b) == 0) != (a == b) {
			return false
		}
		return m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the centre's max-hop eccentricity never exceeds a corner's.
func TestQuickCenterBeatsCorner(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		w := int(wRaw%10) + 1
		h := int(hRaw%10) + 1
		m, _ := New(w, h, Default())
		ecc := func(node int) int {
			max := 0
			for i := 0; i < m.Nodes(); i++ {
				if hp := m.Hops(i, node); hp > max {
					max = hp
				}
			}
			return max
		}
		return ecc(m.Center()) <= ecc(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
