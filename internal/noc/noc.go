// Package noc models the 2D-mesh on-chip network as far as power-management
// traffic is concerned: the latency and energy of gathering per-core
// telemetry at a controller node and scattering VF commands back.
//
// The paper's scalability claim (abstract claim C4) is about total
// controller cost at hundreds of cores. A centralized manager pays O(n)
// message costs with O(√n) worst-case hop distance every control epoch on
// top of its compute time; a distributed scheme pays almost nothing at the
// fine grain. This package supplies those communication charges.
package noc

import "fmt"

// Params are the per-message cost constants.
type Params struct {
	// HopLatencyS is the router+link traversal time for one telemetry
	// message over one hop.
	HopLatencyS float64
	// IngestLatencyS is the serialisation time per message at the
	// controller's ingress port; messages from different cores share that
	// port, so gather latency has an n·IngestLatencyS term.
	IngestLatencyS float64
	// HopEnergyJ is the energy of moving one message over one hop.
	HopEnergyJ float64
}

// Default returns constants for a few-GHz mesh router: ~4 ns per hop,
// ~2 ns ingress serialisation, ~50 pJ per message-hop.
func Default() Params {
	return Params{
		HopLatencyS:    4e-9,
		IngestLatencyS: 2e-9,
		HopEnergyJ:     50e-12,
	}
}

// Validate reports the first invalid constant.
func (p Params) Validate() error {
	switch {
	case p.HopLatencyS < 0:
		return fmt.Errorf("noc: HopLatencyS must be non-negative, got %g", p.HopLatencyS)
	case p.IngestLatencyS < 0:
		return fmt.Errorf("noc: IngestLatencyS must be non-negative, got %g", p.IngestLatencyS)
	case p.HopEnergyJ < 0:
		return fmt.Errorf("noc: HopEnergyJ must be non-negative, got %g", p.HopEnergyJ)
	}
	return nil
}

// Mesh is a W×H mesh with XY routing.
type Mesh struct {
	w, h   int
	params Params
}

// New creates a mesh.
func New(w, h int, params Params) (*Mesh, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", w, h)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Mesh{w: w, h: h, params: params}, nil
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.w * m.h }

// Center returns the node index nearest the mesh centre, the natural
// placement for a global power manager.
func (m *Mesh) Center() int {
	return (m.h/2)*m.w + m.w/2
}

// Hops returns the XY-routing hop count between nodes a and b.
func (m *Mesh) Hops(a, b int) int {
	if a < 0 || a >= m.Nodes() || b < 0 || b >= m.Nodes() {
		panic(fmt.Sprintf("noc: node out of range: %d, %d (mesh has %d)", a, b, m.Nodes()))
	}
	ax, ay := a%m.w, a/m.w
	bx, by := b%m.w, b/m.w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Cost is a latency/energy pair for one collective operation.
type Cost struct {
	LatencyS float64
	EnergyJ  float64
}

// GatherCost returns the cost of collecting one telemetry message from every
// node at sink. Latency is the farthest node's flight time plus the
// serialised ingress of all n−1 remote messages (they share the sink's
// port); energy is the sum over all message-hops.
func (m *Mesh) GatherCost(sink int) Cost {
	maxHops := 0
	totalHops := 0
	for node := 0; node < m.Nodes(); node++ {
		h := m.Hops(node, sink)
		totalHops += h
		if h > maxHops {
			maxHops = h
		}
	}
	remote := m.Nodes() - 1
	return Cost{
		LatencyS: float64(maxHops)*m.params.HopLatencyS + float64(remote)*m.params.IngestLatencyS,
		EnergyJ:  float64(totalHops) * m.params.HopEnergyJ,
	}
}

// ScatterCost returns the cost of sending one command from src to every
// node. Egress is serialised at the source, mirroring GatherCost.
func (m *Mesh) ScatterCost(src int) Cost {
	return m.GatherCost(src) // symmetric under this model
}

// NeighborExchangeCost returns the cost of one round of nearest-neighbour
// exchange (each node sends to its ≤4 neighbours), the communication pattern
// of fully distributed control. Latency is one hop plus one ingress;
// energy is one hop per edge per direction.
func (m *Mesh) NeighborExchangeCost() Cost {
	edges := (m.w-1)*m.h + (m.h-1)*m.w
	return Cost{
		LatencyS: m.params.HopLatencyS + m.params.IngestLatencyS,
		EnergyJ:  float64(2*edges) * m.params.HopEnergyJ,
	}
}
