package scenario

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs/monitor"
	"repro/internal/par"
	"repro/internal/sim"
)

// Engine interprets specs into tables through the same execution path the
// canned experiments use. The zero value runs without caching.
type Engine struct {
	// Cache, when set, memoises successful runs under the spec's content
	// hash. Failed runs are never stored (see Run).
	Cache *Cache
}

// RunInfo reports how a spec was satisfied.
type RunInfo struct {
	// Hash is the spec's content address.
	Hash string
	// CacheHit is true when the table came from the cache.
	CacheHit bool
}

// Run validates the spec, consults the cache, and executes on a miss. Only
// successful executions are stored: an error return leaves the cache
// untouched, so a transient failure is retried on the next call instead of
// being replayed for the cache's lifetime.
func (e *Engine) Run(spec Spec) (experiments.Table, RunInfo, error) {
	if err := spec.Validate(); err != nil {
		return experiments.Table{}, RunInfo{}, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return experiments.Table{}, RunInfo{}, err
	}
	info := RunInfo{Hash: hash}
	if e.Cache != nil {
		if tbl, ok := e.Cache.Get(hash); ok {
			info.CacheHit = true
			return tbl, info, nil
		}
	}
	tbl, err := e.execute(spec)
	if err != nil {
		return experiments.Table{}, info, err
	}
	if e.Cache != nil {
		if err := e.Cache.Put(hash, tbl); err != nil {
			return experiments.Table{}, info, fmt.Errorf("scenario: caching result: %w", err)
		}
	}
	return tbl, info, nil
}

// execute dispatches on the run kind.
func (e *Engine) execute(spec Spec) (experiments.Table, error) {
	switch {
	case spec.Experiment != "":
		runner, err := experiments.ByID(spec.Experiment)
		if err != nil {
			return experiments.Table{}, err
		}
		return runner(spec.experimentConfig())
	case spec.Sweep != nil:
		return sweepTable(spec)
	default:
		return comparisonTable(spec)
	}
}

// experimentConfig maps the spec's shared axes onto the experiment Config
// the hand-coded runners take. The mapping is total over the fields
// Validate allows for experiment specs, so a spec replay is byte-identical
// to calling the runner directly with the same Config.
func (s Spec) experimentConfig() experiments.Config {
	cfg := experiments.Config{
		Cores:       s.Cores,
		BudgetW:     s.BudgetW,
		WarmupS:     s.WarmupS,
		MeasureS:    s.MeasureS,
		Controllers: s.Controllers,
		Benchmarks:  s.Benchmarks,
		Quick:       s.Quick,
		Workers:     s.Workers,
		FaultPlan:   s.FaultPlan,
	}
	if len(s.Seeds) == 1 {
		cfg.Seed = s.Seeds[0]
	}
	return cfg
}

// runAxes resolves the spec's comparison axes with defaults filled, and
// applies Quick scaling the same way experiments.Config does.
func (s Spec) runAxes() (seeds []uint64, workloads, controllers []string) {
	seeds = s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{sim.DefaultOptions().Seed}
	}
	workloads = s.Benchmarks
	if len(workloads) == 0 {
		w := s.Workload
		if w == "" {
			w = sim.DefaultOptions().Workload
		}
		workloads = []string{w}
	}
	if s.Quick && len(workloads) > 3 {
		workloads = workloads[:3]
	}
	controllers = s.Controllers
	if len(controllers) == 0 {
		controllers = config.DefaultExperiment().Controllers
	}
	return seeds, workloads, controllers
}

// options assembles the sim options for one run of the spec.
func (s Spec) options(seed uint64, workloadName string) (sim.Options, error) {
	opts := sim.DefaultOptions()
	opts.Workload = workloadName
	opts.Seed = seed
	opts.Workers = s.Workers
	if s.Cores > 0 {
		opts.Cores = s.Cores
	}
	if s.BudgetW > 0 {
		opts.BudgetW = s.BudgetW
	}
	if s.EpochS > 0 {
		opts.EpochS = s.EpochS
	}
	if s.WarmupS > 0 {
		opts.WarmupS = s.WarmupS
	}
	if s.MeasureS > 0 {
		opts.MeasureS = s.MeasureS
	}
	if s.SensorNoise != nil {
		opts.SensorNoise = *s.SensorNoise
	}
	opts.ThermalOff = s.ThermalOff
	opts.FaultPlan = s.FaultPlan
	for _, st := range s.BudgetSchedule {
		opts.BudgetSchedule = append(opts.BudgetSchedule, sim.BudgetStep{AtS: st.AtS, BudgetW: st.BudgetW})
	}
	if s.Platform != "" {
		p, err := config.PlatformPreset(s.Platform)
		if err != nil {
			return sim.Options{}, err
		}
		opts.Platform = &p
	}
	if s.Quick {
		opts.WarmupS = 0.5
		opts.MeasureS = 0.5
		if opts.Cores > 16 {
			opts.Cores = 16
		}
	}
	return opts, nil
}

// monitored reports whether runs carry the run-health monitor: always when
// alert rules are given, and for fault runs so the table can report the
// injected-fault count next to the metrics.
func (s Spec) monitored() bool {
	return len(s.AlertRules) > 0 || (s.FaultPlan != nil && !s.FaultPlan.Zero())
}

// rules returns the alert rules one run evaluates: the spec's own, or —
// for fault runs without explicit rules — the deterministic claim-invariant
// defaults, so the alerts column stays a pure function of the epoch stream.
func (s Spec) rules(budgetW, epochS float64) []monitor.Rule {
	if len(s.AlertRules) > 0 {
		return s.AlertRules
	}
	return monitor.DeterministicDefaultRules(budgetW, epochS)
}

// runOutcome is one finished run of a comparison or sweep table.
type runOutcome struct {
	s      metrics.Summary
	faults int
	alerts int
}

// runOne executes one (options × controller) run, with a per-run monitor
// when the spec asks for one.
func runOne(spec Spec, opts sim.Options, controller string) (runOutcome, error) {
	var mon *monitor.Monitor
	if spec.monitored() {
		mon = monitor.New(monitor.Options{Rules: spec.rules(opts.BudgetW, opts.EpochS)})
		opts.Monitor = mon
	}
	env, err := sim.EnvFor(opts)
	if err != nil {
		return runOutcome{}, err
	}
	c, err := sim.NewController(controller, env)
	if err != nil {
		return runOutcome{}, err
	}
	res, err := sim.Run(opts, c)
	// Engine-built controllers are single-run; release any persistent
	// worker pool before moving on (harmless for poolless ones).
	if cl, ok := c.(io.Closer); ok {
		cl.Close()
	}
	if err != nil {
		return runOutcome{}, fmt.Errorf("scenario: %s on %s: %w", controller, opts.Workload, err)
	}
	out := runOutcome{s: res.Summary}
	if mon != nil {
		h := mon.Runs()[0]
		out.faults, out.alerts = h.Faults, h.AlertCount
	}
	return out, nil
}

// cell formats a float compactly, matching experiments table cells.
func cell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// summaryCells renders the deterministic summary columns every engine table
// shares. Wall-clock metrics (controller compute time) are deliberately
// excluded: engine tables must be byte-stable so cached and fresh runs
// compare equal.
func summaryCells(s metrics.Summary) []string {
	return []string{
		cell(s.BIPS()), cell(s.MeanW), cell(s.PeakW),
		cell(s.OverJ), cell(100 * s.OverTimeFrac()), cell(s.EnergyEff()),
	}
}

var summaryHeader = []string{"BIPS", "mean(W)", "peak(W)", "over(J)", "over-time(%)", "BIPS/W"}

// tableNotes assembles the provenance notes shared by comparison and sweep
// tables: platform, fault plan and monitoring state.
func (s Spec) tableNotes() []string {
	platform := s.Platform
	if platform == "" {
		platform = config.Default().Name
	}
	notes := []string{"platform " + platform}
	if s.FaultPlan != nil && !s.FaultPlan.Zero() {
		notes = append(notes, "deterministic fault plan injected (see internal/fault)")
	}
	if s.monitored() {
		if len(s.AlertRules) > 0 {
			notes = append(notes, fmt.Sprintf("monitored: %d spec alert rules", len(s.AlertRules)))
		} else {
			notes = append(notes, "monitored: deterministic claim-invariant default rules")
		}
	}
	return notes
}

// title falls back to a generated label when the spec has no name.
func (s Spec) title(kind string) string {
	if s.Name != "" {
		return s.Name
	}
	return "declarative " + kind + " run"
}

// comparisonTable runs every (seed × workload × controller) combination and
// emits one row per run. Rows land in index-addressed slots, so the table
// is identical for any worker count.
func comparisonTable(spec Spec) (experiments.Table, error) {
	seeds, workloads, controllers := spec.runAxes()
	type job struct {
		seed       uint64
		workload   string
		controller string
	}
	jobs := make([]job, 0, len(seeds)*len(workloads)*len(controllers))
	for _, seed := range seeds {
		for _, w := range workloads {
			for _, c := range controllers {
				jobs = append(jobs, job{seed, w, c})
			}
		}
	}
	outcomes, err := par.MapErr(spec.Workers, len(jobs), func(i int) (runOutcome, error) {
		j := jobs[i]
		opts, err := spec.options(j.seed, j.workload)
		if err != nil {
			return runOutcome{}, err
		}
		return runOne(spec, opts, j.controller)
	})
	if err != nil {
		return experiments.Table{}, err
	}

	t := experiments.Table{
		ID:     "RUN",
		Title:  spec.title("comparison"),
		Header: append([]string{"seed", "workload", "controller", "cores", "budget(W)"}, summaryHeader...),
		Notes:  spec.tableNotes(),
	}
	if spec.monitored() {
		t.Header = append(t.Header, "faults", "alerts")
	}
	for i, j := range jobs {
		o := outcomes[i]
		row := append([]string{
			strconv.FormatUint(j.seed, 10), j.workload, j.controller,
			strconv.Itoa(o.s.Cores), cell(o.s.BudgetW),
		}, summaryCells(o.s)...)
		if spec.monitored() {
			row = append(row, strconv.Itoa(o.faults), strconv.Itoa(o.alerts))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// formatSweepValue renders a sweep point exactly as given (shortest
// round-trippable form), so sweep rows are stable across encodings.
func formatSweepValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// applySweep overrides one option from the sweep axis.
func applySweep(opts *sim.Options, param string, v float64) {
	switch param {
	case "budget":
		opts.BudgetW = v
	case "cores":
		opts.Cores = int(v)
	case "epoch":
		opts.EpochS = v
	case "seed":
		opts.Seed = uint64(v)
	}
}

// sweepTable runs every (value × controller) pair of the sweep axis.
func sweepTable(spec Spec) (experiments.Table, error) {
	seeds, workloads, controllers := spec.runAxes()
	sw := spec.Sweep
	type job struct {
		value      float64
		controller string
	}
	jobs := make([]job, 0, len(sw.Values)*len(controllers))
	for _, v := range sw.Values {
		for _, c := range controllers {
			jobs = append(jobs, job{v, c})
		}
	}
	outcomes, err := par.MapErr(spec.Workers, len(jobs), func(i int) (runOutcome, error) {
		j := jobs[i]
		opts, err := spec.options(seeds[0], workloads[0])
		if err != nil {
			return runOutcome{}, err
		}
		applySweep(&opts, sw.Param, j.value)
		return runOne(spec, opts, j.controller)
	})
	if err != nil {
		return experiments.Table{}, err
	}

	t := experiments.Table{
		ID:     "SWEEP",
		Title:  spec.title("sweep (" + sw.Param + ")"),
		Header: append([]string{sw.Param, "controller", "cores", "budget(W)"}, summaryHeader...),
		Notes:  append(spec.tableNotes(), "workload "+workloads[0]),
	}
	if spec.monitored() {
		t.Header = append(t.Header, "faults", "alerts")
	}
	for i, j := range jobs {
		o := outcomes[i]
		row := append([]string{
			formatSweepValue(j.value), j.controller,
			strconv.Itoa(o.s.Cores), cell(o.s.BudgetW),
		}, summaryCells(o.s)...)
		if spec.monitored() {
			row = append(row, strconv.Itoa(o.faults), strconv.Itoa(o.alerts))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
