package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// tinySpec is a comparison spec small enough to run many times in tests.
func tinySpec() Spec {
	return Spec{
		Name:        "tiny",
		Workload:    "canneal",
		Controllers: []string{"pid"},
		Cores:       4,
		BudgetW:     8,
		WarmupS:     0.05,
		MeasureS:    0.1,
		Seeds:       []uint64{3},
		Workers:     1,
	}
}

// TestCacheHitByteIdentical is the headline cache property: running the
// identical spec twice hits the cache and yields a byte-identical table.
func TestCacheHitByteIdentical(t *testing.T) {
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Cache: cache}

	t1, info1, err := eng.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if info1.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	t2, info2, err := eng.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !info2.CacheHit {
		t.Fatal("second run missed the cache")
	}
	if info1.Hash != info2.Hash {
		t.Fatalf("hash changed between identical runs: %s vs %s", info1.Hash, info2.Hash)
	}
	var b1, b2 strings.Builder
	if _, err := t1.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("cached table not byte-identical:\n--- fresh\n%s--- cached\n%s", b1.String(), b2.String())
	}

	// A different worker count must share the same entry (workers are not
	// part of the scenario identity).
	s := tinySpec()
	s.Workers = 4
	_, info3, err := eng.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !info3.CacheHit || info3.Hash != info1.Hash {
		t.Errorf("workers=4 run did not share the cache entry: %+v vs hash %s", info3, info1.Hash)
	}
}

// TestCacheDiskPersistence proves entries survive across cache instances
// (the odrl-run re-invocation path) and that corrupt entries read as
// misses, never as bad tables.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Cache: cache}
	tbl, info, err := eng.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.Get(info.Hash)
	if !ok {
		t.Fatal("disk entry missed through a fresh cache instance")
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Errorf("disk round-trip changed the table:\n%+v\nvs\n%+v", got, tbl)
	}

	// Corrupt the entry: it must degrade to a miss.
	path := filepath.Join(dir, info.Hash+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := broken.Get(info.Hash); ok {
		t.Error("corrupt disk entry read as a hit")
	}
}

// TestHashSingleFieldMutations sweeps one mutation per spec field and
// requires every mutant to hash differently from the base: any
// semantically meaningful field change must change the content address.
func TestHashSingleFieldMutations(t *testing.T) {
	base := mustLoad(t, fullSpecJSON)
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Spec){
		"name":        func(s *Spec) { s.Name = "renamed" },
		"platform":    func(s *Spec) { s.Platform = "manycore-4pstate" },
		"workload":    func(s *Spec) { s.Workload = "dedup" },
		"controllers": func(s *Spec) { s.Controllers = []string{"od-rl"} },
		"controller-order": func(s *Spec) {
			s.Controllers = []string{s.Controllers[1], s.Controllers[0]}
		},
		"benchmarks":       func(s *Spec) { s.Benchmarks = []string{"vips"} },
		"cores":            func(s *Spec) { s.Cores++ },
		"budget":           func(s *Spec) { s.BudgetW += 1 },
		"budget-schedule":  func(s *Spec) { s.BudgetSchedule[0].BudgetW += 1 },
		"epoch":            func(s *Spec) { s.EpochS *= 2 },
		"warmup":           func(s *Spec) { s.WarmupS += 0.1 },
		"measure":          func(s *Spec) { s.MeasureS += 0.1 },
		"sensor-noise":     func(s *Spec) { s.SensorNoise = ptr(0.05) },
		"sensor-noise-nil": func(s *Spec) { s.SensorNoise = nil },
		"thermal":          func(s *Spec) { s.ThermalOff = false },
		"seeds":            func(s *Spec) { s.Seeds = []uint64{7} },
		"quick":            func(s *Spec) { s.Quick = true },
		"fault-plan":       func(s *Spec) { s.FaultPlan.MeterBias += 0.01 },
		"fault-plan-nil":   func(s *Spec) { s.FaultPlan = nil },
		"alert-threshold":  func(s *Spec) { s.AlertRules[0].Threshold += 0.1 },
		"alert-rules-nil":  func(s *Spec) { s.AlertRules = nil },
		"sweep":            func(s *Spec) { s.Sweep = &Sweep{Param: "budget", Values: []float64{1, 2}} },
	}
	seen := map[string]string{baseHash: "base"}
	for name, mutate := range mutations {
		s := mustLoad(t, fullSpecJSON) // deep fresh copy via decode
		mutate(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == baseHash {
			t.Errorf("mutation %q did not change the hash", name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutations %q and %q collide", name, prev)
		}
		seen[h] = name
	}
}

// TestFailedRunNeverCached mirrors the PR 2 benchmarkSweep poisoning bug
// as an invariant: a spec that validates but fails at run time leaves the
// cache untouched, so the failure is re-attempted rather than memoised.
func TestFailedRunNeverCached(t *testing.T) {
	// Budget -5 passes spec validation (sweep values are only required to
	// be finite — the axis domain is the runner's concern) and then fails
	// inside sim.Run's option validation.
	failing := Spec{
		Workload:    "canneal",
		Controllers: []string{"pid"},
		Cores:       4,
		WarmupS:     0.05,
		MeasureS:    0.1,
		Workers:     1,
		Sweep:       &Sweep{Param: "budget", Values: []float64{-5}},
	}
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Cache: cache}
	for attempt := 1; attempt <= 2; attempt++ {
		_, info, err := eng.Run(failing)
		if err == nil {
			t.Fatalf("attempt %d: failing spec ran without error", attempt)
		}
		if info.CacheHit {
			t.Fatalf("attempt %d: failure served from cache", attempt)
		}
		if cache.Len() != 0 {
			t.Fatalf("attempt %d: failed run was cached (%d entries)", attempt, cache.Len())
		}
		hash, herr := failing.Hash()
		if herr != nil {
			t.Fatal(herr)
		}
		if _, ok := cache.Get(hash); ok {
			t.Fatalf("attempt %d: failed run retrievable by hash", attempt)
		}
	}
}
