package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/experiments"
)

// Cache is the content-addressed result store: tables keyed by the
// canonical spec hash, held in memory and — when a directory is configured
// — persisted as one JSON file per entry so repeated sweeps are free across
// process invocations.
//
// Invariant (the PR 2 benchmarkSweep lesson, promoted to a contract): only
// successful runs are ever stored. The Engine calls Put strictly after a
// run returns without error, so a cache entry always denotes a table that
// was actually produced, and a failed run is retried on the next call
// instead of poisoning the key forever.
type Cache struct {
	mu  sync.Mutex
	mem map[string][]byte
	dir string
}

// NewCache builds a cache; dir == "" keeps entries in memory only,
// otherwise entries persist under dir as <hash>.json files.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("scenario: creating cache dir: %w", err)
		}
	}
	return &Cache{mem: map[string][]byte{}, dir: dir}, nil
}

// path returns the on-disk location of one entry.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached table for a hash. Each call decodes a fresh Table
// from the stored bytes, so callers can never mutate the cache through a
// returned value. Unreadable or corrupt disk entries read as misses.
func (c *Cache) Get(key string) (experiments.Table, bool) {
	c.mu.Lock()
	b, ok := c.mem[key]
	c.mu.Unlock()
	if !ok && c.dir != "" {
		disk, err := os.ReadFile(c.path(key))
		if err != nil {
			return experiments.Table{}, false
		}
		b, ok = disk, true
		c.mu.Lock()
		c.mem[key] = disk
		c.mu.Unlock()
	}
	if !ok {
		return experiments.Table{}, false
	}
	var t experiments.Table
	if err := json.Unmarshal(b, &t); err != nil {
		return experiments.Table{}, false
	}
	return t, true
}

// Put stores one successful run's table under its spec hash. The disk write
// goes through a temp file + rename so a crashed writer can never leave a
// half-written entry that later reads as a (corrupt) hit.
func (c *Cache) Put(key string, t experiments.Table) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encoding table: %w", err)
	}
	b = append(b, '\n')
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// Len reports the number of in-memory entries (tests and stats).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}
