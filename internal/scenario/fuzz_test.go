package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSpecJSON fuzzes the external-bytes spec decoder: malformed input
// must never panic, and any input Load accepts must canonicalize to a
// fixed point (decode → canonicalize → re-encode → re-decode → same
// bytes) with a stable content hash. This is the round-trip contract the
// cache and the CLIs depend on.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"experiment": "F1"}`))
	f.Add([]byte(`{"sweep": {"param": "budget", "values": [40, 55, 70]}}`))
	f.Add([]byte(fullSpecJSON))
	for _, id := range BuiltinIDs() {
		if b, err := specFS.ReadFile("specs/" + strings.ToLower(id) + ".json"); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"cores": 1e400}`))
	f.Add([]byte(`{"seeds": [18446744073709551615]}`))
	f.Add([]byte(`{"fault_plan": {"seed": 1}, "alert_rules": []}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"name": "\ud800"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadBytes(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		c1, err := s.Canonical()
		if err != nil {
			t.Fatalf("accepted spec failed to canonicalize: %v", err)
		}
		h1, err := s.Hash()
		if err != nil {
			t.Fatalf("accepted spec failed to hash: %v", err)
		}
		s2, err := LoadBytes(c1)
		if err != nil {
			t.Fatalf("canonical form rejected on re-load: %v\n%s", err, c1)
		}
		c2, err := s2.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization not a fixed point:\n--- first\n%s--- second\n%s", c1, c2)
		}
		h2, err := s2.Hash()
		if err != nil {
			t.Fatalf("re-hash: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("hash unstable across canonical round-trip: %s vs %s", h1, h2)
		}
	})
}
