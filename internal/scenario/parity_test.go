package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// goldenSpec loads a builtin spec pinned to the golden axes the
// experiments package snapshots with (Quick fidelity; Workers set per
// call — tables are bit-identical for any worker count).
func goldenSpec(t *testing.T, id string, workers int) Spec {
	t.Helper()
	spec, err := Builtin(id)
	if err != nil {
		t.Fatal(err)
	}
	spec.Quick = true
	spec.Workers = workers
	return spec
}

// maskColumns mirrors the experiments golden harness: wall-clock columns
// (measured decision latency, speedup) cannot be snapshot-tested, so their
// cells are blanked before comparison.
func maskColumns(t experiments.Table, cols ...string) experiments.Table {
	masked := map[int]bool{}
	for i, h := range t.Header {
		for _, c := range cols {
			if h == c {
				masked[i] = true
			}
		}
	}
	rows := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		out := append([]string(nil), row...)
		for i := range out {
			if masked[i] {
				out[i] = "-"
			}
		}
		rows[r] = out
	}
	t.Rows = rows
	return t
}

// TestSpecGoldenParity is the spec-parity harness: for every experiment
// with a golden snapshot, the table produced by the engine from the
// checked-in JSON spec must be byte-identical to the golden file the
// hand-coded runner maintains (regenerate those with
// `go test ./internal/experiments/ -run Golden -update`), at -j1 and -j4.
// It also proves both worker counts share one content hash, so cached
// sweeps are free across -j.
func TestSpecGoldenParity(t *testing.T) {
	cases := []struct {
		id   string
		mask []string // wall-clock columns, as in the experiments harness
	}{
		{"F1", nil},
		{"F2", nil},
		{"F3", nil},
		{"F4", nil},
		{"F5", []string{"od-rl(µs)", "maxbips(µs)", "steepest-drop(µs)", "pid(µs)", "speedup"}},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			goldenPath := filepath.Join("..", "experiments", "testdata", strings.ToLower(tc.id)+".golden")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file %s: %v", goldenPath, err)
			}
			var hashes []string
			for _, workers := range []int{1, 4} {
				spec := goldenSpec(t, tc.id, workers)
				hash, err := spec.Hash()
				if err != nil {
					t.Fatal(err)
				}
				hashes = append(hashes, hash)
				// No cache here: each worker count must genuinely
				// re-derive the table, not replay the previous one.
				tbl, _, err := (&Engine{}).Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				tbl = maskColumns(tbl, tc.mask...)
				var b strings.Builder
				if _, err := tbl.WriteTo(&b); err != nil {
					t.Fatal(err)
				}
				if b.String() != string(want) {
					t.Errorf("spec-driven %s at -j%d drifted from %s.\n--- want\n%s--- got\n%s",
						tc.id, workers, goldenPath, want, b.String())
				}
			}
			if hashes[0] != hashes[1] {
				t.Errorf("content hash differs across worker counts: %v", hashes)
			}
		})
	}
}

// TestBuiltinSpecsCoverRegistry: every registered experiment has a
// loadable checked-in spec bound to its own ID, so the declarative surface
// never lags the registry.
func TestBuiltinSpecsCoverRegistry(t *testing.T) {
	for _, e := range experiments.All() {
		spec, err := Builtin(e.ID)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if spec.Experiment != e.ID {
			t.Errorf("%s: spec names experiment %q", e.ID, spec.Experiment)
		}
		if spec.Name == "" {
			t.Errorf("%s: spec has no name", e.ID)
		}
	}
	if _, err := Builtin("F99"); err == nil {
		t.Error("Builtin accepted an unregistered ID")
	}
}

// TestExperimentConfigDerivation pins the spec→Config mapping the
// experiment run kind relies on: every field Validate admits for
// experiment specs lands in the exact Config slot the hand-coded runners
// read, so byte-parity with the goldens follows from the mapping alone.
func TestExperimentConfigDerivation(t *testing.T) {
	plan := fault.Scaled(0.5)
	spec := Spec{
		Experiment:  "F18",
		Cores:       32,
		BudgetW:     40,
		WarmupS:     1,
		MeasureS:    2,
		Seeds:       []uint64{9},
		Controllers: []string{"od-rl", "pid"},
		Benchmarks:  []string{"canneal"},
		Quick:       true,
		Workers:     4,
		FaultPlan:   &plan,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	want := experiments.Config{
		Cores:       32,
		BudgetW:     40,
		WarmupS:     1,
		MeasureS:    2,
		Seed:        9,
		Controllers: []string{"od-rl", "pid"},
		Benchmarks:  []string{"canneal"},
		Quick:       true,
		Workers:     4,
		FaultPlan:   &plan,
	}
	if got := spec.experimentConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("experimentConfig() = %+v, want %+v", got, want)
	}

	// The minimal spec maps to the zero Config: every axis left to the
	// runner's own normalization, exactly as the CLIs call it.
	minimal := Spec{Experiment: "F1"}
	if got := minimal.experimentConfig(); !reflect.DeepEqual(got, experiments.Config{}) {
		t.Errorf("minimal experimentConfig() = %+v, want zero", got)
	}
}
