// Package scenario is the declarative experiment engine: a typed,
// JSON-loadable Spec describing one scenario (platform preset × workload ×
// fault plan × controller set × sweep axes × alert rules), an Engine that
// interprets specs through the existing sim/experiments execution path into
// the same Table type the canned evaluation emits, and a content-addressed
// result cache keyed by the canonical spec hash so repeated runs are free.
//
// Specs are the contract shared by the CLIs (cmd/odrl-run, cmd/odrl-bench)
// and, later, the fleet service: users submit novel scenarios as files
// without touching the repo, and every checked-in F-series experiment is a
// spec under specs/ whose engine output is byte-identical to the hand-coded
// runner's golden table.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs/monitor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// EngineVersion stamps every canonical-spec hash. Bump it whenever engine
// semantics change in a way that invalidates cached tables (new columns,
// different run assembly, changed defaults): old cache entries then miss
// instead of replaying stale results. The run ledger records it alongside
// each spec hash, so old run records state which engine produced them.
const EngineVersion = "odrl-scenario-v1"

// BudgetStep re-caps the chip mid-run (mirrors sim.BudgetStep).
type BudgetStep struct {
	AtS     float64 `json:"at_s"`
	BudgetW float64 `json:"budget_w"`
}

// Sweep sweeps one scalar run parameter across a list of values; the engine
// runs every (value × controller) pair and emits one row each.
type Sweep struct {
	// Param is one of budget | cores | epoch | seed.
	Param string `json:"param"`
	// Values are the sweep points, in presentation order.
	Values []float64 `json:"values"`
}

// SweepParams lists the valid Sweep.Param values.
func SweepParams() []string { return []string{"budget", "cores", "epoch", "seed"} }

// Spec is one declarative scenario. The zero value of every field means
// "use the engine default", so minimal specs stay minimal and their
// canonical form omits everything unset.
//
// Three run kinds, decided by which fields are set:
//
//   - Experiment != "": replay a registered experiment (T1..F19) with the
//     shared axes (cores, budget, windows, seed, controllers, benchmarks,
//     quick, fault plan) taken from the spec. The table is byte-identical
//     to the hand-coded runner's.
//   - Sweep != nil: sweep one parameter across Values for every controller.
//   - otherwise: a comparison run — every (seed × workload × controller)
//     combination on the spec's platform, one row per run.
type Spec struct {
	// Name is a free-form human label carried into the table title.
	Name string `json:"name,omitempty"`
	// Experiment selects a registered experiment ID (T1, T2, F1..F19).
	Experiment string `json:"experiment,omitempty"`
	// Platform is a config preset name ("" = manycore-22nm).
	Platform string `json:"platform,omitempty"`
	// Workload is a preset name, "mix" or "barrier" ("" = mix).
	Workload string `json:"workload,omitempty"`
	// Benchmarks is the workload axis for experiment and comparison runs;
	// empty takes the run kind's default.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Controllers is the comparison axis; empty takes the default set.
	Controllers []string `json:"controllers,omitempty"`
	// Cores is the platform size (0 = default).
	Cores int `json:"cores,omitempty"`
	// BudgetW is the chip power budget in watts (0 = default).
	BudgetW float64 `json:"budget_w,omitempty"`
	// BudgetSchedule re-caps the chip mid-run; steps strictly increasing.
	BudgetSchedule []BudgetStep `json:"budget_schedule,omitempty"`
	// EpochS is the control epoch length (0 = default).
	EpochS float64 `json:"epoch_s,omitempty"`
	// WarmupS and MeasureS set run windows (0 = default).
	WarmupS  float64 `json:"warmup_s,omitempty"`
	MeasureS float64 `json:"measure_s,omitempty"`
	// SensorNoise overrides the relative telemetry noise; nil keeps the
	// default (a pointer so an explicit 0 survives canonicalization).
	SensorNoise *float64 `json:"sensor_noise,omitempty"`
	// ThermalOff disables the leakage–temperature loop.
	ThermalOff bool `json:"thermal_off,omitempty"`
	// Seeds lists the run seeds; empty means [1]. Comparison runs emit one
	// row group per seed; experiment runs accept at most one.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Workers bounds run fan-out and chip sharding (the -j knob). Results
	// are bit-identical for any value, so Workers is an execution knob,
	// not part of the scenario identity: Canonical() drops it and the
	// content hash ignores it — runs at different -j share cache entries.
	Workers int `json:"workers,omitempty"`
	// Quick shrinks runs for smoke passes (same scaling as experiments).
	Quick bool `json:"quick,omitempty"`
	// FaultPlan injects deterministic faults into every run.
	FaultPlan *fault.Plan `json:"fault_plan,omitempty"`
	// AlertRules attaches the run-health monitor with these rules; rules
	// over wall-clock metrics (decide_p99_ns) make the alert column
	// nondeterministic and therefore unsuitable for cached comparisons.
	AlertRules []monitor.Rule `json:"alert_rules,omitempty"`
	// Sweep selects the sweep run kind.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Load strictly decodes one spec: unknown fields anywhere in the document
// (including nested fault plans and alert rules) are errors, and the spec
// must validate. Trailing garbage after the JSON value is an error too.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// A spec file is exactly one JSON value.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadBytes is Load over a byte slice.
func LoadBytes(b []byte) (Spec, error) { return Load(bytes.NewReader(b)) }

// knownController reports whether the factory can build name.
func knownController(name string) bool {
	return slices.Contains(sim.ControllerNames(), name)
}

// validWorkload accepts a preset name or one of the harness-level
// pseudo-workloads sim.Options understands.
func validWorkload(name string) error {
	if name == "mix" || name == "barrier" {
		return nil
	}
	_, err := workload.Preset(name)
	return err
}

// Validate reports the first invalid field, before any simulation runs.
func (s Spec) Validate() error {
	if s.Platform != "" {
		if _, err := config.PlatformPreset(s.Platform); err != nil {
			return err
		}
	}
	if s.Workload != "" {
		if err := validWorkload(s.Workload); err != nil {
			return err
		}
	}
	for _, b := range s.Benchmarks {
		if err := validWorkload(b); err != nil {
			return err
		}
	}
	for _, c := range s.Controllers {
		if !knownController(c) {
			return fmt.Errorf("scenario: unknown controller %q (have %v)", c, sim.ControllerNames())
		}
	}
	switch {
	case s.Cores < 0:
		return fmt.Errorf("scenario: negative core count %d", s.Cores)
	case s.BudgetW < 0 || math.IsNaN(s.BudgetW) || math.IsInf(s.BudgetW, 0):
		return fmt.Errorf("scenario: invalid budget %g W", s.BudgetW)
	case s.EpochS < 0 || math.IsNaN(s.EpochS) || math.IsInf(s.EpochS, 0):
		return fmt.Errorf("scenario: invalid epoch %g s", s.EpochS)
	case s.WarmupS < 0 || math.IsNaN(s.WarmupS) || math.IsInf(s.WarmupS, 0):
		return fmt.Errorf("scenario: invalid warmup %g s", s.WarmupS)
	case s.MeasureS < 0 || math.IsNaN(s.MeasureS) || math.IsInf(s.MeasureS, 0):
		return fmt.Errorf("scenario: invalid measurement window %g s", s.MeasureS)
	case s.Workers < 0:
		return fmt.Errorf("scenario: negative worker count %d", s.Workers)
	}
	if s.SensorNoise != nil && (*s.SensorNoise < 0 || math.IsNaN(*s.SensorNoise) || math.IsInf(*s.SensorNoise, 0)) {
		return fmt.Errorf("scenario: invalid sensor noise %g", *s.SensorNoise)
	}
	for _, seed := range s.Seeds {
		if seed == 0 {
			return fmt.Errorf("scenario: seed 0 is reserved (it means \"default\" elsewhere); use an explicit non-zero seed")
		}
	}
	prev := -1.0
	for i, st := range s.BudgetSchedule {
		if st.AtS < 0 || st.BudgetW <= 0 || math.IsNaN(st.AtS) || math.IsNaN(st.BudgetW) || st.AtS <= prev {
			return fmt.Errorf("scenario: invalid budget step %d: %+v (steps must be strictly increasing with positive budgets)", i, st)
		}
		prev = st.AtS
	}
	if s.FaultPlan != nil {
		if err := s.FaultPlan.Validate(); err != nil {
			return err
		}
	}
	for i := range s.AlertRules {
		if err := s.AlertRules[i].Validate(); err != nil {
			return fmt.Errorf("scenario: alert rule %d: %w", i, err)
		}
	}
	if s.Sweep != nil {
		if !slices.Contains(SweepParams(), s.Sweep.Param) {
			return fmt.Errorf("scenario: unknown sweep param %q (have %v)", s.Sweep.Param, SweepParams())
		}
		if len(s.Sweep.Values) == 0 {
			return fmt.Errorf("scenario: sweep has no values")
		}
		for i, v := range s.Sweep.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("scenario: sweep value %d is not finite", i)
			}
		}
		if s.Sweep.Param == "seed" && len(s.Seeds) > 0 {
			return fmt.Errorf("scenario: sweep over seed conflicts with an explicit seeds list")
		}
		if len(s.Benchmarks) > 0 {
			return fmt.Errorf("scenario: sweep runs use the single workload field, not benchmarks")
		}
	}
	if s.Experiment != "" {
		if _, err := experiments.ByID(s.Experiment); err != nil {
			return err
		}
		// Experiment runners own every axis the shared Config cannot
		// express; rejecting the combination keeps "this spec reproduces
		// that experiment" honest instead of silently ignoring fields.
		switch {
		case s.Sweep != nil:
			return fmt.Errorf("scenario: experiment %s cannot be combined with a sweep", s.Experiment)
		case s.Workload != "":
			return fmt.Errorf("scenario: experiment %s takes its workload axis from benchmarks, not workload", s.Experiment)
		case len(s.BudgetSchedule) > 0:
			return fmt.Errorf("scenario: experiment %s owns its budget schedule", s.Experiment)
		case s.EpochS != 0:
			return fmt.Errorf("scenario: experiment %s owns its epoch length", s.Experiment)
		case s.SensorNoise != nil:
			return fmt.Errorf("scenario: experiment %s owns its sensor-noise model", s.Experiment)
		case s.ThermalOff:
			return fmt.Errorf("scenario: experiment %s owns its thermal model", s.Experiment)
		case len(s.AlertRules) > 0:
			return fmt.Errorf("scenario: experiment %s owns its monitoring (alert_rules applies to comparison and sweep runs)", s.Experiment)
		case s.Platform != "" && s.Platform != config.Default().Name:
			return fmt.Errorf("scenario: experiment %s runs on the default platform; platform overrides apply to comparison and sweep runs", s.Experiment)
		case len(s.Seeds) > 1:
			return fmt.Errorf("scenario: experiment %s takes a single seed (got %d)", s.Experiment, len(s.Seeds))
		}
	}
	return nil
}

// canonicalized returns the spec with identity-irrelevant state normalised:
// Workers dropped (results are bit-identical for any worker count — the PR 2
// sweep-cache lesson, kept as an invariant), empty slices nilled so `[]` and
// omission read identically, and the default platform name folded to "".
// It is idempotent, which makes Canonical a fixed point.
func (s Spec) canonicalized() Spec {
	s.Workers = 0
	if s.Platform == config.Default().Name {
		s.Platform = ""
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = nil
	}
	if len(s.Controllers) == 0 {
		s.Controllers = nil
	}
	if len(s.Seeds) == 0 {
		s.Seeds = nil
	}
	if len(s.BudgetSchedule) == 0 {
		s.BudgetSchedule = nil
	}
	if len(s.AlertRules) == 0 {
		s.AlertRules = nil
	}
	if s.Sweep != nil && len(s.Sweep.Values) == 0 {
		// Unreachable after Validate; kept so canonicalization never
		// depends on validation having run.
		s.Sweep = &Sweep{Param: s.Sweep.Param}
	}
	return s
}

// Canonical renders the spec's canonical JSON form: normalised fields,
// fixed key order, two-space indent, trailing newline. Decoding the result
// and canonicalizing again reproduces the same bytes (a fixed point), which
// is what makes the content hash well-defined.
func (s Spec) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(s.canonicalized(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(b, '\n'), nil
}

// Hash returns the spec's content address: hex SHA-256 over the engine
// version stamp and the canonical JSON. Two specs hash equal iff the engine
// would produce byte-identical tables for them (Workers excluded; see
// canonicalized). Failed runs are never stored under this key, so a hash
// hit always denotes a previously successful run.
func (s Spec) Hash() (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, EngineVersion)
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}
