package scenario

import (
	"slices"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// TestComparisonTable pins the comparison run kind: one row per
// (seed × workload × controller) in spec order, with the shared summary
// columns and no wall-clock cells.
func TestComparisonTable(t *testing.T) {
	spec := Spec{
		Name:        "grid",
		Benchmarks:  []string{"canneal", "dedup"},
		Controllers: []string{"pid", "greedy"},
		Cores:       4,
		BudgetW:     8,
		WarmupS:     0.05,
		MeasureS:    0.1,
		Seeds:       []uint64{3, 5},
		Workers:     1,
	}
	eng := &Engine{}
	tbl, info, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.CacheHit {
		t.Error("cacheless engine reported a hit")
	}
	if tbl.ID != "RUN" || tbl.Title != "grid" {
		t.Errorf("table identity = %q/%q", tbl.ID, tbl.Title)
	}
	if got, want := len(tbl.Rows), 2*2*2; got != want {
		t.Fatalf("row count = %d, want %d", got, want)
	}
	wantHeader := []string{"seed", "workload", "controller", "cores", "budget(W)",
		"BIPS", "mean(W)", "peak(W)", "over(J)", "over-time(%)", "BIPS/W"}
	if !slices.Equal(tbl.Header, wantHeader) {
		t.Errorf("header = %v, want %v", tbl.Header, wantHeader)
	}
	// Row order: seeds outermost, then workloads, then controllers.
	if tbl.Rows[0][0] != "3" || tbl.Rows[0][1] != "canneal" || tbl.Rows[0][2] != "pid" {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "5" || last[1] != "dedup" || last[2] != "greedy" {
		t.Errorf("last row = %v", last)
	}
	for _, row := range tbl.Rows {
		if row[3] != "4" {
			t.Errorf("cores cell = %q, want 4", row[3])
		}
	}
}

// TestComparisonDeterministicAcrossWorkers re-runs the same spec at -j1
// and -j4 without a cache and requires byte-identical rendered tables.
func TestComparisonDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		spec := tinySpec()
		spec.Benchmarks = []string{"canneal", "dedup"}
		spec.Seeds = []uint64{3, 5}
		spec.Workers = workers
		tbl, _, err := (&Engine{}).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if _, err := tbl.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if seq, par := render(1), render(4); seq != par {
		t.Errorf("comparison table differs across worker counts:\n--- j1\n%s--- j4\n%s", seq, par)
	}
}

// TestSweepTable pins the sweep run kind: values outermost, controllers
// inner, sweep values rendered in shortest round-trippable form.
func TestSweepTable(t *testing.T) {
	spec := Spec{
		Workload:    "canneal",
		Controllers: []string{"pid"},
		Cores:       4,
		WarmupS:     0.05,
		MeasureS:    0.1,
		Workers:     1,
		Sweep:       &Sweep{Param: "budget", Values: []float64{6, 8.5}},
	}
	tbl, _, err := (&Engine{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "SWEEP" {
		t.Errorf("table ID = %q", tbl.ID)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("row count = %d, want 2", len(tbl.Rows))
	}
	if tbl.Header[0] != "budget" {
		t.Errorf("sweep column header = %q", tbl.Header[0])
	}
	if tbl.Rows[0][0] != "6" || tbl.Rows[1][0] != "8.5" {
		t.Errorf("sweep value cells = %q, %q", tbl.Rows[0][0], tbl.Rows[1][0])
	}
	// The swept budget must actually reach the runs.
	if tbl.Rows[0][3] != "6.000" || tbl.Rows[1][3] != "8.500" {
		t.Errorf("budget cells = %q, %q", tbl.Rows[0][3], tbl.Rows[1][3])
	}
	if !slices.Contains(tbl.Notes, "workload canneal") {
		t.Errorf("notes missing workload: %v", tbl.Notes)
	}
}

// TestMonitoredColumns: fault plans and alert rules add the faults/alerts
// columns; plain runs must not carry them.
func TestMonitoredColumns(t *testing.T) {
	spec := tinySpec()
	tbl, _, err := (&Engine{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(tbl.Header, "faults") {
		t.Errorf("unmonitored run has a faults column: %v", tbl.Header)
	}

	spec.FaultPlan = &fault.Plan{DeadCoreFrac: 0.5}
	tbl, _, err = (&Engine{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(tbl.Header, "faults") || !slices.Contains(tbl.Header, "alerts") {
		t.Fatalf("fault run missing faults/alerts columns: %v", tbl.Header)
	}
	// Half the (tiny) chip dies: the injector must report at least one
	// core-death event in the faults column.
	faultsCol := slices.Index(tbl.Header, "faults")
	if tbl.Rows[0][faultsCol] == "0" {
		t.Errorf("dead-core run reported zero faults: %v", tbl.Rows[0])
	}
}

// TestEngineExperimentDispatch: an experiment spec must produce the exact
// table the hand-coded runner produces for the derived config.
func TestEngineExperimentDispatch(t *testing.T) {
	spec := Spec{Experiment: "T1", Quick: true, Workers: 1}
	got, _, err := (&Engine{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.T1Platform(experiments.Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var gb, wb strings.Builder
	if _, err := got.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := want.WriteTo(&wb); err != nil {
		t.Fatal(err)
	}
	if gb.String() != wb.String() {
		t.Errorf("engine T1 differs from direct runner:\n--- engine\n%s--- direct\n%s", gb.String(), wb.String())
	}
}

// TestEngineRejectsInvalidSpec: validation failures surface before any
// simulation work and without touching the cache.
func TestEngineRejectsInvalidSpec(t *testing.T) {
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Cache: cache}
	_, _, err = eng.Run(Spec{Controllers: []string{"clippy"}})
	if err == nil || !strings.Contains(err.Error(), "unknown controller") {
		t.Fatalf("err = %v", err)
	}
	if cache.Len() != 0 {
		t.Errorf("invalid spec left %d cache entries", cache.Len())
	}
}
