package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs/monitor"
)

// fullSpecJSON exercises every Spec field at once; tests that need a
// maximal spec share it.
const fullSpecJSON = `{
  "name": "everything at once",
  "platform": "manycore-ntc",
  "workload": "canneal",
  "controllers": ["od-rl", "pid"],
  "cores": 16,
  "budget_w": 30,
  "budget_schedule": [{"at_s": 0.5, "budget_w": 20}],
  "epoch_s": 0.001,
  "warmup_s": 0.2,
  "measure_s": 0.3,
  "sensor_noise": 0,
  "thermal_off": true,
  "seeds": [7, 9],
  "workers": 3,
  "quick": false,
  "fault_plan": {"sensor_stuck_prob": 0.01, "meter_bias": 0.05},
  "alert_rules": [{"name": "over", "metric": "overshoot_frac_ema", "op": ">", "threshold": 0.1, "for_epochs": 5}]
}`

func mustLoad(t *testing.T, src string) Spec {
	t.Helper()
	s, err := LoadBytes([]byte(src))
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	return s
}

func TestLoadStrictness(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // error substring
	}{
		{"unknown top-level field", `{"experiment": "F1", "bogus": 1}`, "bogus"},
		{"unknown fault-plan field", `{"fault_plan": {"sensor_stuck_prob": 0.1, "bogus": 1}}`, "bogus"},
		{"unknown alert-rule field", `{"alert_rules": [{"name": "x", "metric": "ips", "op": ">", "bogus": 1}]}`, "bogus"},
		{"unknown sweep field", `{"sweep": {"param": "budget", "values": [1], "bogus": 1}}`, "bogus"},
		{"trailing data", `{"experiment": "F1"} {"experiment": "F2"}`, "trailing data"},
		{"malformed json", `{"experiment": `, "decoding spec"},
		{"wrong type", `{"cores": "many"}`, "decoding spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadBytes([]byte(tc.src))
			if err == nil {
				t.Fatalf("LoadBytes accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejections(t *testing.T) {
	noise := -0.1
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown platform", Spec{Platform: "vax"}, "unknown platform"},
		{"unknown workload", Spec{Workload: "doom"}, "unknown"},
		{"unknown benchmark", Spec{Benchmarks: []string{"doom"}}, "unknown"},
		{"unknown controller", Spec{Controllers: []string{"clippy"}}, "unknown controller"},
		{"negative cores", Spec{Cores: -1}, "negative core count"},
		{"negative budget", Spec{BudgetW: -5}, "invalid budget"},
		{"negative epoch", Spec{EpochS: -1}, "invalid epoch"},
		{"negative warmup", Spec{WarmupS: -1}, "invalid warmup"},
		{"negative measure", Spec{MeasureS: -1}, "invalid measurement"},
		{"negative workers", Spec{Workers: -1}, "negative worker count"},
		{"negative noise", Spec{SensorNoise: &noise}, "invalid sensor noise"},
		{"zero seed", Spec{Seeds: []uint64{1, 0}}, "seed 0 is reserved"},
		{"budget schedule not increasing", Spec{BudgetSchedule: []BudgetStep{{AtS: 1, BudgetW: 50}, {AtS: 1, BudgetW: 40}}}, "budget step"},
		{"budget schedule nonpositive", Spec{BudgetSchedule: []BudgetStep{{AtS: 1, BudgetW: 0}}}, "budget step"},
		{"bad fault plan", Spec{FaultPlan: &fault.Plan{SensorStuckProb: 2}}, "fault"},
		{"bad alert rule", Spec{AlertRules: []monitor.Rule{{Name: "x", Metric: "nope", Op: ">"}}}, "alert rule 0"},
		{"bad sweep param", Spec{Sweep: &Sweep{Param: "teapots", Values: []float64{1}}}, "unknown sweep param"},
		{"empty sweep values", Spec{Sweep: &Sweep{Param: "budget"}}, "no values"},
		{"nonfinite sweep value", Spec{Sweep: &Sweep{Param: "budget", Values: []float64{inf()}}}, "not finite"},
		{"sweep seed vs seeds", Spec{Seeds: []uint64{1}, Sweep: &Sweep{Param: "seed", Values: []float64{1}}}, "conflicts"},
		{"sweep vs benchmarks", Spec{Benchmarks: []string{"canneal"}, Sweep: &Sweep{Param: "budget", Values: []float64{1}}}, "not benchmarks"},
		{"unknown experiment", Spec{Experiment: "F99"}, "unknown experiment"},
		{"experiment with sweep", Spec{Experiment: "F1", Sweep: &Sweep{Param: "budget", Values: []float64{1}}}, "cannot be combined"},
		{"experiment with workload", Spec{Experiment: "F1", Workload: "canneal"}, "benchmarks, not workload"},
		{"experiment with schedule", Spec{Experiment: "F1", BudgetSchedule: []BudgetStep{{AtS: 1, BudgetW: 50}}}, "budget schedule"},
		{"experiment with epoch", Spec{Experiment: "F1", EpochS: 1e-3}, "epoch length"},
		{"experiment with noise", Spec{Experiment: "F1", SensorNoise: ptr(0.01)}, "sensor-noise"},
		{"experiment with thermal off", Spec{Experiment: "F1", ThermalOff: true}, "thermal"},
		{"experiment with rules", Spec{Experiment: "F1", AlertRules: []monitor.Rule{{Name: "x", Metric: "ips", Op: ">"}}}, "monitoring"},
		{"experiment with platform", Spec{Experiment: "F1", Platform: "manycore-ntc"}, "default platform"},
		{"experiment with two seeds", Spec{Experiment: "F1", Seeds: []uint64{1, 2}}, "single seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func ptr(v float64) *float64 { return &v }
func inf() float64           { return math.Inf(1) }

func TestValidateAccepts(t *testing.T) {
	for _, src := range []string{
		`{}`,
		`{"experiment": "F1"}`,
		`{"experiment": "F1", "platform": "manycore-22nm"}`,
		`{"sweep": {"param": "budget", "values": [40, 55]}}`,
		fullSpecJSON,
	} {
		if _, err := LoadBytes([]byte(src)); err != nil {
			t.Errorf("LoadBytes(%s): %v", src, err)
		}
	}
}

// TestCanonicalFixedPoint is the canonicalization contract: decode →
// canonicalize → re-encode → re-decode → canonicalize reproduces the same
// bytes, for minimal and maximal specs alike.
func TestCanonicalFixedPoint(t *testing.T) {
	for _, src := range []string{`{}`, `{"experiment": "F18"}`, fullSpecJSON} {
		s := mustLoad(t, src)
		c1, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := LoadBytes(c1)
		if err != nil {
			t.Fatalf("canonical form failed to re-load: %v\n%s", err, c1)
		}
		c2, err := s2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Errorf("canonicalization is not a fixed point:\n--- first\n%s--- second\n%s", c1, c2)
		}
	}
}

// TestCanonicalNormalises pins the identity-irrelevant rewrites: empty
// slices read as omitted, the default platform name folds to "", and the
// worker count is dropped entirely.
func TestCanonicalNormalises(t *testing.T) {
	base := mustLoad(t, `{"experiment": "F1"}`)
	variants := []string{
		`{"experiment": "F1", "controllers": [], "benchmarks": [], "seeds": []}`,
		`{"experiment": "F1", "platform": "manycore-22nm"}`,
		`{"experiment": "F1", "workers": 8}`,
	}
	want, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range variants {
		got, err := mustLoad(t, src).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("canonical(%s) differs from canonical base:\n--- want\n%s--- got\n%s", src, want, got)
		}
	}
}

// TestHashExcludesWorkers proves runs at different -j share one cache
// entry: results are bit-identical for any worker count, so the worker
// count must not be part of the scenario identity.
func TestHashExcludesWorkers(t *testing.T) {
	s := mustLoad(t, fullSpecJSON)
	base, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 4, 64} {
		s.Workers = w
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != base {
			t.Errorf("workers=%d changed the hash: %s != %s", w, h, base)
		}
	}
}
