package scenario

import (
	"embed"
	"fmt"
	"strings"

	"repro/internal/experiments"
)

// specFS holds the checked-in specs: one per registered experiment. These
// are the declarative form of the paper evaluation — the F-series runners
// are thin wrappers over them, and the parity tests prove the engine
// regenerates every golden table byte-identically from these files.
//
//go:embed specs/*.json
var specFS embed.FS

// BuiltinIDs lists the experiment IDs with checked-in specs, in
// presentation order (the experiments.All order).
func BuiltinIDs() []string {
	ids := make([]string, 0, len(experiments.All()))
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// Builtin loads the checked-in spec for one experiment ID (case as in
// experiments.All: T1, T2, F1..F19).
func Builtin(id string) (Spec, error) {
	b, err := specFS.ReadFile("specs/" + strings.ToLower(id) + ".json")
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: no builtin spec for %q (have %v)", id, BuiltinIDs())
	}
	s, err := LoadBytes(b)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: builtin spec %s: %w", id, err)
	}
	if s.Experiment != id {
		return Spec{}, fmt.Errorf("scenario: builtin spec %s names experiment %q", id, s.Experiment)
	}
	return s, nil
}
