package fault

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/manycore"
)

func TestPlanValidate(t *testing.T) {
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan should validate: %v", err)
	}
	if err := Scaled(1).Validate(); err != nil {
		t.Fatalf("canonical plan should validate: %v", err)
	}
	bad := []Plan{
		{SensorStuckProb: -0.1},
		{SensorStuckProb: 1.5},
		{SensorStuckProb: math.NaN()},
		{ActuationDropProb: 2},
		{ActuationClampProb: -1},
		{DeadCoreFrac: 1.01},
		{MeterBias: -1},
		{MeterBias: math.NaN()},
		{MeterDriftPerS: math.NaN()},
		{BlackoutRatePerS: -1},
		{BlackoutRatePerS: 1}, // rate without duration
		{BlackoutDurS: -0.1},
		{BudgetDropRatePerS: -1},
		{BudgetDropRatePerS: 1},                       // rate without frac/duration
		{BudgetDropRatePerS: 1, BudgetDropFrac: 0.5},  // still no duration
		{BudgetDropFrac: 1},
		{BudgetDropFrac: -0.1},
		{BudgetDropDurS: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v): expected validation error", i, p)
		}
	}
}

func TestZero(t *testing.T) {
	if !(Plan{}).Zero() {
		t.Fatal("empty plan should be zero")
	}
	if !Scaled(0).Zero() {
		t.Fatal("Scaled(0) should be zero")
	}
	if Scaled(0.1).Zero() {
		t.Fatal("Scaled(0.1) should not be zero")
	}
	// A plan with only window lengths set injects nothing.
	if !(Plan{BlackoutDurS: 1, BudgetDropDurS: 1, BudgetDropFrac: 0.5}).Zero() {
		t.Fatal("durations without rates should be zero")
	}
}

func TestParseSpec(t *testing.T) {
	if p, err := ParseSpec(""); err != nil || p != nil {
		t.Fatalf("empty spec: got %v, %v", p, err)
	}
	p, err := ParseSpec("0.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := Scaled(0.5); *p != want {
		t.Fatalf("intensity spec: got %+v want %+v", *p, want)
	}
	if _, err := ParseSpec("-1"); err == nil {
		t.Fatal("negative intensity should fail")
	}
	if _, err := ParseSpec("/no/such/plan.json"); err == nil {
		t.Fatal("missing plan file should fail")
	}

	dir := t.TempDir()
	path := dir + "/plan.json"
	var buf bytes.Buffer
	want := Scaled(0.3)
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = ParseSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if *p != want {
		t.Fatalf("file spec: got %+v want %+v", *p, want)
	}
}

func TestLoadRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"no_such_knob": 1}`)); err == nil {
		t.Fatal("unknown field should fail")
	}
	if _, err := Load(strings.NewReader(`{"sensor_stuck_prob": 7}`)); err == nil {
		t.Fatal("invalid plan should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	want := Scaled(0.8)
	want.Seed = 42
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip drifted: got %+v want %+v", got, want)
	}
}

func TestNewInjectorRejectsBadArgs(t *testing.T) {
	if _, err := NewInjector(Plan{SensorStuckProb: 9}, 4, 1, 1); err == nil {
		t.Fatal("invalid plan should fail")
	}
	if _, err := NewInjector(Plan{}, 0, 1, 1); err == nil {
		t.Fatal("zero cores should fail")
	}
	if _, err := NewInjector(Plan{}, 4, 0, 1); err == nil {
		t.Fatal("zero length should fail")
	}
}

// replay drives an injector over a fixed schedule and returns its counts
// plus every event it emitted.
func replay(t *testing.T, plan Plan, cores int, epochs int, epochS float64, seed uint64) (Counts, []Event) {
	t.Helper()
	inj, err := NewInjector(plan, cores, float64(epochs)*epochS, seed)
	if err != nil {
		t.Fatal(err)
	}
	tel := manycore.Telemetry{Cores: make([]manycore.CoreTelemetry, cores)}
	var events []Event
	for e := 0; e < epochs; e++ {
		tStart := float64(e) * epochS
		events = append(events, inj.Tick(tStart, epochS)...)
		for i := range tel.Cores {
			tel.Cores[i] = manycore.CoreTelemetry{
				Level:  1,
				IPS:    1e9 + float64(e*cores+i),
				PowerW: 1 + 0.01*float64(e*cores+i),
				Dead:   inj.Dead(i),
			}
		}
		tel.TimeS = tStart + epochS
		tel.EpochS = epochS
		tel.ChipPowerW = 10 + float64(e)
		inj.FilterTelemetry(&tel)
		for i := 0; i < cores; i++ {
			inj.FilterLevel(i, (e+i)%3, 1)
		}
		inj.FilterBudget(tStart, 50)
	}
	return inj.Counts(), events
}

func TestInjectorDeterministicForSeed(t *testing.T) {
	plan := Scaled(1)
	c1, e1 := replay(t, plan, 16, 400, 1e-3, 7)
	c2, e2 := replay(t, plan, 16, 400, 1e-3, 7)
	if c1 != c2 {
		t.Fatalf("same-seed counts diverged: %+v vs %+v", c1, c2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("same-seed events diverged")
	}
	c3, _ := replay(t, plan, 16, 400, 1e-3, 8)
	if c1 == c3 {
		t.Fatal("different seeds produced identical fault counts")
	}
}

func TestPlanSeedPinsRealisation(t *testing.T) {
	plan := Scaled(1)
	plan.Seed = 99
	c1, _ := replay(t, plan, 16, 400, 1e-3, 1)
	c2, _ := replay(t, plan, 16, 400, 1e-3, 2)
	if c1 != c2 {
		t.Fatalf("pinned plan seed should be run-seed independent: %+v vs %+v", c1, c2)
	}
}

func TestInjectorKillsRequestedFraction(t *testing.T) {
	plan := Plan{DeadCoreFrac: 0.5}
	counts, events := replay(t, plan, 8, 1000, 1e-3, 3)
	if counts.DeadCores != 4 {
		t.Fatalf("expected 4 dead cores, got %d", counts.DeadCores)
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Kind != KindCoreDead {
			t.Fatalf("unexpected event kind %q", ev.Kind)
		}
		if seen[ev.Core] {
			t.Fatalf("core %d died twice", ev.Core)
		}
		seen[ev.Core] = true
		if !math.IsInf(ev.UntilS, 1) {
			t.Fatalf("core death should be permanent, got until=%g", ev.UntilS)
		}
	}
}

func TestFilterLevelDeadCoreHolds(t *testing.T) {
	plan := Plan{DeadCoreFrac: 1}
	inj, err := NewInjector(plan, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Advance past every scheduled failure time.
	for e := 0; e < 1000; e++ {
		inj.Tick(float64(e)*1e-3, 1e-3)
	}
	for i := 0; i < 4; i++ {
		if !inj.Dead(i) {
			t.Fatalf("core %d should be dead", i)
		}
		if got := inj.FilterLevel(i, 3, 1); got != 1 {
			t.Fatalf("dead core %d actuated: got level %d, want 1", i, got)
		}
	}
}

func TestFilterBudgetDuringDrop(t *testing.T) {
	plan := Plan{BudgetDropRatePerS: 1000, BudgetDropFrac: 0.25, BudgetDropDurS: 0.05}
	inj, err := NewInjector(plan, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	var dropped bool
	for e := 0; e < 1000; e++ {
		tStart := float64(e) * 1e-3
		inj.Tick(tStart, 1e-3)
		got := inj.FilterBudget(tStart, 100)
		if got != 100 {
			dropped = true
			if got != 75 {
				t.Fatalf("drop should scale budget to 75 W, got %g", got)
			}
		}
	}
	if !dropped {
		t.Fatal("a 1000/s drop rate never fired in 1 s")
	}
}

func TestFilterTelemetryStaleRepeat(t *testing.T) {
	plan := Plan{SensorStuckProb: 1} // every core stale every epoch
	inj, err := NewInjector(plan, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(e int) manycore.Telemetry {
		tel := manycore.Telemetry{
			Cores:      make([]manycore.CoreTelemetry, 2),
			TimeS:      float64(e+1) * 1e-3,
			EpochS:     1e-3,
			ChipPowerW: 10,
		}
		for i := range tel.Cores {
			tel.Cores[i] = manycore.CoreTelemetry{
				IPS: float64(100*e + i), PowerW: float64(e), Instructions: float64(e),
			}
		}
		return tel
	}
	first := mk(0)
	inj.FilterTelemetry(&first) // no history yet: passes through
	second := mk(1)
	inj.FilterTelemetry(&second)
	for i := range second.Cores {
		if second.Cores[i].IPS != first.Cores[i].IPS {
			t.Fatalf("core %d: stale repeat should hold IPS %g, got %g",
				i, first.Cores[i].IPS, second.Cores[i].IPS)
		}
		if second.Cores[i].Instructions != 1 {
			t.Fatalf("core %d: true instruction count must survive staleness", i)
		}
	}
	if inj.Counts().StaleCoreEpochs != 2 {
		t.Fatalf("expected 2 stale core-epochs, got %d", inj.Counts().StaleCoreEpochs)
	}
}

func TestFilterTelemetryMeterBias(t *testing.T) {
	plan := Plan{MeterBias: 0.1}
	inj, err := NewInjector(plan, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tel := manycore.Telemetry{
		Cores: make([]manycore.CoreTelemetry, 1), TimeS: 1e-3, EpochS: 1e-3, ChipPowerW: 50,
	}
	inj.FilterTelemetry(&tel)
	if math.Abs(tel.ChipPowerW-55) > 1e-9 {
		t.Fatalf("10%% bias on 50 W should read 55 W, got %g", tel.ChipPowerW)
	}
}
