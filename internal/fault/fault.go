// Package fault is the deterministic fault-injection layer: it corrupts
// the telemetry controllers read and the actuation commands they issue,
// kills cores outright, and perturbs the chip power cap — the failure
// modes a real power-management stack must survive (stale sensors, biased
// meters, dead PLLs, firmware cap events), none of which the clean
// Gaussian sensor-noise model covers.
//
// Everything is seed-driven and reproducible: an Injector draws from one
// dedicated RNG stream, separate from the workload and sensor-noise
// streams, and is only ever invoked from the harness's sequential epoch
// loop (the telemetry hook after Chip.Step, the actuation hook inside
// Chip.SetLevel, and the per-epoch Tick). Fault realisations are therefore
// a pure function of (run seed, plan) — independent of the Workers count —
// which preserves the repository's bit-identical determinism contract. A
// nil or zero Plan leaves every byte of the fault-free path untouched.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"repro/internal/manycore"
	"repro/internal/rng"
)

// Plan describes the fault environment of one run. Rates and probabilities
// are expressed per simulated second or per core-epoch, so the same plan
// scales across chip sizes and run lengths. The zero value injects nothing.
type Plan struct {
	// SensorStuckProb is the per-core, per-epoch probability that a core's
	// telemetry freezes this epoch: the controller sees a stale repeat of
	// the last emitted reading (the classic stuck-at sensor fault).
	SensorStuckProb float64 `json:"sensor_stuck_prob,omitempty"`
	// MeterBias is a relative error on the chip-level power meter: the
	// observed chip power is scaled by (1 + MeterBias + MeterDriftPerS·t).
	MeterBias float64 `json:"meter_bias,omitempty"`
	// MeterDriftPerS grows the meter bias linearly with simulated time,
	// modelling uncalibrated drift.
	MeterDriftPerS float64 `json:"meter_drift_per_s,omitempty"`
	// BlackoutRatePerS is the mean rate of telemetry blackout windows
	// (sampled per epoch). During a blackout every core's telemetry and the
	// chip meter repeat their last emitted values.
	BlackoutRatePerS float64 `json:"blackout_rate_per_s,omitempty"`
	// BlackoutDurS is the length of each blackout window.
	BlackoutDurS float64 `json:"blackout_dur_s,omitempty"`
	// ActuationDropProb is the per-core, per-epoch probability that a VF
	// level request is silently ignored (the core keeps its current level).
	ActuationDropProb float64 `json:"actuation_drop_prob,omitempty"`
	// ActuationClampProb is the per-core, per-epoch probability that a VF
	// level request is clamped to at most one step from the current level
	// (a slow or partially failed voltage regulator).
	ActuationClampProb float64 `json:"actuation_clamp_prob,omitempty"`
	// DeadCoreFrac is the fraction of cores that fail permanently during
	// the run: each selected core goes dark at a seed-drawn time, retires
	// nothing afterwards, and its budget share must be reclaimed.
	DeadCoreFrac float64 `json:"dead_core_frac,omitempty"`
	// BudgetDropRatePerS is the mean rate of transient cap drops (sampled
	// per epoch); during a drop the chip budget is scaled by
	// (1 − BudgetDropFrac). These model firmware/datacentre cap events and
	// are real: both the controller and the compliance meter see them.
	BudgetDropRatePerS float64 `json:"budget_drop_rate_per_s,omitempty"`
	// BudgetDropFrac is the relative cap reduction during a drop.
	BudgetDropFrac float64 `json:"budget_drop_frac,omitempty"`
	// BudgetDropDurS is the length of each cap drop.
	BudgetDropDurS float64 `json:"budget_drop_dur_s,omitempty"`
	// Seed, when non-zero, pins the fault stream independently of the run
	// seed, so the same fault realisation can be replayed across runs.
	Seed uint64 `json:"seed,omitempty"`
}

// Validate reports the first invalid field.
func (p Plan) Validate() error {
	checkProb := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("fault: %s must be in [0,1], got %g", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"SensorStuckProb", p.SensorStuckProb},
		{"ActuationDropProb", p.ActuationDropProb},
		{"ActuationClampProb", p.ActuationClampProb},
		{"DeadCoreFrac", p.DeadCoreFrac},
	} {
		if err := checkProb(c.name, c.v); err != nil {
			return err
		}
	}
	switch {
	case math.IsNaN(p.MeterBias) || p.MeterBias <= -1:
		return fmt.Errorf("fault: MeterBias must be > -1, got %g", p.MeterBias)
	case math.IsNaN(p.MeterDriftPerS):
		return fmt.Errorf("fault: MeterDriftPerS is NaN")
	case math.IsNaN(p.BlackoutRatePerS) || p.BlackoutRatePerS < 0:
		return fmt.Errorf("fault: BlackoutRatePerS must be non-negative, got %g", p.BlackoutRatePerS)
	case math.IsNaN(p.BlackoutDurS) || p.BlackoutDurS < 0:
		return fmt.Errorf("fault: BlackoutDurS must be non-negative, got %g", p.BlackoutDurS)
	case p.BlackoutRatePerS > 0 && p.BlackoutDurS == 0:
		return fmt.Errorf("fault: BlackoutRatePerS set with zero BlackoutDurS")
	case math.IsNaN(p.BudgetDropRatePerS) || p.BudgetDropRatePerS < 0:
		return fmt.Errorf("fault: BudgetDropRatePerS must be non-negative, got %g", p.BudgetDropRatePerS)
	case math.IsNaN(p.BudgetDropFrac) || p.BudgetDropFrac < 0 || p.BudgetDropFrac >= 1:
		return fmt.Errorf("fault: BudgetDropFrac must be in [0,1), got %g", p.BudgetDropFrac)
	case math.IsNaN(p.BudgetDropDurS) || p.BudgetDropDurS < 0:
		return fmt.Errorf("fault: BudgetDropDurS must be non-negative, got %g", p.BudgetDropDurS)
	case p.BudgetDropRatePerS > 0 && (p.BudgetDropFrac == 0 || p.BudgetDropDurS == 0):
		return fmt.Errorf("fault: BudgetDropRatePerS set with zero BudgetDropFrac or BudgetDropDurS")
	}
	return nil
}

// Zero reports whether the plan injects nothing: every fault class is
// switched off, so a run with this plan is byte-identical to one with no
// plan at all.
func (p Plan) Zero() bool {
	return p.SensorStuckProb == 0 && p.MeterBias == 0 && p.MeterDriftPerS == 0 &&
		p.BlackoutRatePerS == 0 && p.ActuationDropProb == 0 && p.ActuationClampProb == 0 &&
		p.DeadCoreFrac == 0 && p.BudgetDropRatePerS == 0
}

// Scaled returns the canonical fault plan at the given intensity in [0, 1]:
// every rate and probability scales linearly, window lengths stay fixed.
// Intensity 0 is the fault-free plan; intensity 1 combines ~5% stuck
// sensors, +3% meter bias with drift, ~0.5 blackouts/s of 40 ms, 5%
// dropped and 10% clamped actuations, 6% dead cores and ~0.2 cap drops/s
// of 20% for 100 ms — harsh but survivable, the regime the F18 experiment
// sweeps.
func Scaled(intensity float64) Plan {
	x := intensity
	if x < 0 {
		x = 0
	}
	return Plan{
		SensorStuckProb:    0.05 * x,
		MeterBias:          0.03 * x,
		MeterDriftPerS:     0.005 * x,
		BlackoutRatePerS:   0.5 * x,
		BlackoutDurS:       0.04,
		ActuationDropProb:  0.05 * x,
		ActuationClampProb: 0.10 * x,
		DeadCoreFrac:       0.06 * x,
		BudgetDropRatePerS: 0.2 * x,
		BudgetDropFrac:     0.2,
		BudgetDropDurS:     0.1,
	}
}

// ParseSpec resolves a -fault-plan flag value: empty means no plan, a bare
// number is an intensity for Scaled, anything else is read as a Plan JSON
// file path.
func ParseSpec(spec string) (*Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if x, err := strconv.ParseFloat(spec, 64); err == nil {
		if math.IsNaN(x) || x < 0 {
			return nil, fmt.Errorf("fault: intensity must be non-negative, got %q", spec)
		}
		p := Scaled(x)
		return &p, nil
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("fault: opening plan %q: %w", spec, err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("fault: plan %q: %w", spec, err)
	}
	return &p, nil
}

// Load decodes and validates a Plan from JSON.
func Load(r io.Reader) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Save encodes the plan as indented JSON.
func (p Plan) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// Event kinds reported by Tick for observability.
const (
	KindCoreDead   = "core_dead"
	KindBlackout   = "blackout"
	KindBudgetDrop = "budget_drop"
)

// Event is one discrete injected fault, reported once when it starts.
type Event struct {
	// Kind is one of the Kind* constants.
	Kind string
	// Core is the affected core for KindCoreDead, -1 otherwise.
	Core int
	// UntilS is the simulated time the fault window ends (core deaths are
	// permanent and report +Inf).
	UntilS float64
}

// Counts aggregates how often each fault class fired over a run.
type Counts struct {
	StaleCoreEpochs   int // core-epochs served stale telemetry
	Blackouts         int // blackout windows started
	DroppedActuations int
	ClampedActuations int
	DeadCores         int
	BudgetDrops       int
}

// Injector realises one Plan over one run. It implements the manycore
// telemetry and actuation hooks; the harness additionally calls Tick once
// per epoch (before Chip.Step) and FilterBudget on the scheduled cap.
// All methods must be called from the sequential harness loop — the
// injector is not concurrency-safe, by design: keeping every draw on the
// sequential path is what makes fault realisations Workers-independent.
type Injector struct {
	plan  Plan
	r     *rng.RNG
	cores int

	// last holds the previously emitted telemetry for stale repeats.
	last     []manycore.CoreTelemetry
	lastChip float64
	haveLast bool

	dead     []bool
	deadAtS  []float64 // per-core failure time, +Inf = never fails
	deadLeft int

	blackoutUntilS float64
	budgetUntilS   float64

	counts Counts
}

// faultSeedTag decorrelates the fault stream from the workload/sensor
// streams, which are seeded from the raw run seed.
const faultSeedTag = 0x6fa17b0c0de5eed

// NewInjector builds the injector for a run of the given core count and
// total simulated length. runSeed seeds the fault stream unless the plan
// pins its own seed.
func NewInjector(plan Plan, cores int, totalS float64, runSeed uint64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("fault: invalid core count %d", cores)
	}
	if totalS <= 0 {
		return nil, fmt.Errorf("fault: non-positive run length %g", totalS)
	}
	seed := plan.Seed
	if seed == 0 {
		seed = runSeed ^ faultSeedTag
	}
	inj := &Injector{
		plan:    plan,
		r:       rng.New(seed),
		cores:   cores,
		last:    make([]manycore.CoreTelemetry, cores),
		dead:    make([]bool, cores),
		deadAtS: make([]float64, cores),
		blackoutUntilS: math.Inf(-1),
		budgetUntilS:   math.Inf(-1),
	}
	for i := range inj.deadAtS {
		inj.deadAtS[i] = math.Inf(1)
	}
	// Pre-draw the structural failures: which cores die, and when. Times
	// are spread over the middle 80% of the run so deaths land inside the
	// window controllers are actually evaluated on.
	if k := int(plan.DeadCoreFrac*float64(cores) + 0.5); k > 0 {
		victims := inj.r.Perm(cores)[:k]
		sort.Ints(victims) // draw times in core order, not permutation order
		for _, c := range victims {
			inj.deadAtS[c] = totalS * (0.1 + 0.8*inj.r.Float64())
		}
		inj.deadLeft = k
	}
	return inj, nil
}

// Counts returns the per-class fault totals so far.
func (inj *Injector) Counts() Counts { return inj.counts }

// Dead reports whether core i has failed.
func (inj *Injector) Dead(i int) bool { return inj.dead[i] }

// Tick advances the injector to the epoch [tStart, tStart+epochS): it
// samples new blackout and budget-drop windows and returns the fault
// events starting this epoch, including cores whose scheduled failure time
// has arrived (the caller must power those cores off via Chip.FailCore).
func (inj *Injector) Tick(tStart, epochS float64) []Event {
	var events []Event
	if inj.deadLeft > 0 {
		for i := range inj.deadAtS {
			if !inj.dead[i] && inj.deadAtS[i] <= tStart {
				inj.dead[i] = true
				inj.deadLeft--
				inj.counts.DeadCores++
				events = append(events, Event{Kind: KindCoreDead, Core: i, UntilS: math.Inf(1)})
			}
		}
	}
	if p := inj.plan.BlackoutRatePerS; p > 0 && tStart >= inj.blackoutUntilS {
		if inj.r.Float64() < p*epochS {
			inj.blackoutUntilS = tStart + inj.plan.BlackoutDurS
			inj.counts.Blackouts++
			events = append(events, Event{Kind: KindBlackout, Core: -1, UntilS: inj.blackoutUntilS})
		}
	}
	if p := inj.plan.BudgetDropRatePerS; p > 0 && tStart >= inj.budgetUntilS {
		if inj.r.Float64() < p*epochS {
			inj.budgetUntilS = tStart + inj.plan.BudgetDropDurS
			inj.counts.BudgetDrops++
			events = append(events, Event{Kind: KindBudgetDrop, Core: -1, UntilS: inj.budgetUntilS})
		}
	}
	return events
}

// FilterBudget returns the cap in force at time t given the scheduled cap:
// scaled down during an active budget-drop transient. Cap transients are
// real events, so the harness applies the filtered value to both the
// controller and the compliance meter.
func (inj *Injector) FilterBudget(t, budgetW float64) float64 {
	if t < inj.budgetUntilS {
		return budgetW * (1 - inj.plan.BudgetDropFrac)
	}
	return budgetW
}

// FilterTelemetry implements manycore.TelemetryFilter: it rewrites the
// observed fields of the epoch telemetry (per-core readings and the chip
// meter) in place. True quantities (TruePowerW, Instructions) are
// preserved — faults corrupt what controllers see, never the physics the
// harness meters.
func (inj *Injector) FilterTelemetry(tel *manycore.Telemetry) {
	epochStart := tel.TimeS - tel.EpochS
	inBlackout := epochStart < inj.blackoutUntilS
	for i := range tel.Cores {
		ct := &tel.Cores[i]
		if ct.Dead {
			// A dead core's zeros are the honest reading; nothing to fault.
			continue
		}
		stale := inBlackout
		if !stale && inj.plan.SensorStuckProb > 0 {
			stale = inj.r.Float64() < inj.plan.SensorStuckProb
		}
		if stale && inj.haveLast {
			instr, changed := ct.Instructions, ct.PhaseChanged
			*ct = inj.last[i]
			ct.Instructions = instr
			ct.PhaseChanged = changed
			inj.counts.StaleCoreEpochs++
		}
	}
	if inBlackout && inj.haveLast {
		tel.ChipPowerW = inj.lastChip
	} else if inj.plan.MeterBias != 0 || inj.plan.MeterDriftPerS != 0 {
		tel.ChipPowerW *= 1 + inj.plan.MeterBias + inj.plan.MeterDriftPerS*tel.TimeS
		if tel.ChipPowerW < 0 {
			tel.ChipPowerW = 0
		}
	}
	for i := range tel.Cores {
		inj.last[i] = tel.Cores[i]
	}
	inj.lastChip = tel.ChipPowerW
	inj.haveLast = true
}

// FilterLevel implements manycore.ActuationFilter: a requested VF level
// may be silently dropped (core keeps its current level) or clamped to one
// step from the current level. Returned levels are always within one of
// the two in-range inputs, so the result needs no further clamping.
func (inj *Injector) FilterLevel(core, requested, current int) int {
	if inj.dead[core] {
		return current
	}
	if p := inj.plan.ActuationDropProb; p > 0 && inj.r.Float64() < p {
		inj.counts.DroppedActuations++
		return current
	}
	if p := inj.plan.ActuationClampProb; p > 0 && requested != current && inj.r.Float64() < p {
		inj.counts.ClampedActuations++
		if requested > current {
			return current + 1
		}
		return current - 1
	}
	return requested
}
