package fault

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPlanJSON: the plan decoder must never panic, must never accept an
// invalid plan, and anything it accepts must survive a Save/Load round
// trip unchanged.
func FuzzPlanJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := Scaled(1).Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"sensor_stuck_prob": 0.5, "seed": 7}`)
	f.Add(`{"meter_bias": -2}`)
	f.Add(`{"blackout_rate_per_s": 1}`)
	f.Add(`{"sensor_stuck_prob": "NaN"}`)
	f.Add(`not json`)

	f.Fuzz(func(t *testing.T, data string) {
		p, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Load accepted an invalid plan %+v: %v", p, verr)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("Save failed on accepted plan: %v", err)
		}
		q, err := Load(&buf)
		if err != nil {
			t.Fatalf("round trip rejected Save output: %v", err)
		}
		if p != q {
			t.Fatalf("round trip drifted: %+v vs %+v", p, q)
		}
	})
}
