package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean([]float64{7}); got != 7 {
		t.Fatalf("Mean = %v, want 7", got)
	}
}

func TestMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(nil)
}

func TestStdDev(t *testing.T) {
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("single-sample StdDev = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
}

func TestGeoMeanPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0, 2})
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{9}, 50); got != 9 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestPercentilePanicsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("single-sample CI must be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

// Property: mean lies within [min, max] and geomean ≤ mean (AM–GM).
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // positive
		}
		m := Mean(xs)
		min, max := MinMax(xs)
		if m < min-1e-9 || m > max+1e-9 {
			return false
		}
		return GeoMean(xs) <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
