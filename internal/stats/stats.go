// Package stats provides the small set of summary statistics the benchmark
// harness reports: means, deviations, percentiles, geometric means and
// normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it panics on an empty slice because a
// mean of nothing in a results table is always a harness bug.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); zero for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean; all inputs must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeoMean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean requires positive values, got %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean; zero for fewer than two samples.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the smallest and largest values.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
