package config

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultPlatformValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPresetsValid(t *testing.T) {
	names := PlatformNames()
	if len(names) < 3 {
		t.Fatalf("only %d platform presets", len(names))
	}
	for _, name := range names {
		p, err := PlatformPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("preset %q has Name %q", name, p.Name)
		}
		tbl, err := p.VFTable()
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Levels() != p.VFLevels {
			t.Fatalf("preset %q table has %d levels, want %d", name, tbl.Levels(), p.VFLevels)
		}
	}
}

func TestPlatformPresetUnknown(t *testing.T) {
	if _, err := PlatformPreset("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPlatformValidateBad(t *testing.T) {
	mutations := []func(*Platform){
		func(p *Platform) { p.Name = "" },
		func(p *Platform) { p.VFLevels = 1 },
		func(p *Platform) { p.FMinGHz = 0 },
		func(p *Platform) { p.FMaxGHz = p.FMinGHz },
		func(p *Platform) { p.FMaxGHz = 500 }, // unachievable under tech
		func(p *Platform) { p.TransitionPenaltyS = -1 },
		func(p *Platform) { p.Power.CeffF = 0 },
		func(p *Platform) { p.Thermal.NodeCapJPerK = 0 },
		func(p *Platform) { p.NoC.HopEnergyJ = -1 },
	}
	for i, m := range mutations {
		p := Default()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestDefaultExperimentValid(t *testing.T) {
	if err := DefaultExperiment().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentValidateBad(t *testing.T) {
	mutations := []func(*Experiment){
		func(e *Experiment) { e.Cores = 0 },
		func(e *Experiment) { e.Workload = "" },
		func(e *Experiment) { e.BudgetW = 0 },
		func(e *Experiment) { e.EpochS = 0 },
		func(e *Experiment) { e.WarmupS = -1 },
		func(e *Experiment) { e.MeasureS = 0 },
		func(e *Experiment) { e.SensorNoise = -1 },
		func(e *Experiment) { e.Controllers = nil },
		func(e *Experiment) { e.Platform.Name = "" },
		func(e *Experiment) { e.BudgetSchedule = []BudgetStep{{AtS: -1, BudgetW: 10}} },
		func(e *Experiment) {
			e.BudgetSchedule = []BudgetStep{{AtS: 2, BudgetW: 10}, {AtS: 1, BudgetW: 10}}
		},
	}
	for i, m := range mutations {
		e := DefaultExperiment()
		m(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestExperimentJSONRoundTrip(t *testing.T) {
	e := DefaultExperiment()
	e.BudgetSchedule = []BudgetStep{{AtS: 1.5, BudgetW: 40}}
	e.Cores = 16
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cores != 16 || back.BudgetW != e.BudgetW || len(back.BudgetSchedule) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Platform.Name != e.Platform.Name || back.Platform.VFLevels != e.Platform.VFLevels {
		t.Fatal("round trip lost platform")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Load(strings.NewReader("{}")); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPlatformNamesSorted(t *testing.T) {
	names := PlatformNames()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
