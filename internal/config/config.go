// Package config defines the typed, JSON-serialisable description of a
// platform (device-level constants) and an experiment (a scenario run on a
// platform), plus the named platform presets the evaluation uses. It lets
// whole experiments be stored, diffed and replayed as files.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/vf"
)

// Platform bundles the device-level constants of one chip family. The
// runtime core count lives in Experiment, not here: the same device
// constants serve 16 through 1024 cores.
type Platform struct {
	Name     string  `json:"name"`
	VFLevels int     `json:"vf_levels"`
	FMinGHz  float64 `json:"f_min_ghz"`
	FMaxGHz  float64 `json:"f_max_ghz"`
	// Tech holds the alpha-power-law constants mapping frequency to the
	// minimum sustaining voltage.
	Tech vf.TechParams `json:"tech"`
	// Power, Thermal and NoC are the substrate constants.
	Power   power.Params   `json:"power"`
	Thermal thermal.Params `json:"thermal"`
	NoC     noc.Params     `json:"noc"`
	// TransitionPenaltyS is the DVFS actuation stall.
	TransitionPenaltyS float64 `json:"transition_penalty_s"`
}

// Default returns the 22 nm-class device used throughout the evaluation.
func Default() Platform {
	return Platform{
		Name:               "manycore-22nm",
		VFLevels:           8,
		FMinGHz:            1.0,
		FMaxGHz:            3.6,
		Tech:               vf.DefaultTech(),
		Power:              power.Default(),
		Thermal:            thermal.Default(),
		NoC:                noc.Default(),
		TransitionPenaltyS: 10e-6,
	}
}

// Validate reports the first invalid field.
func (p Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("config: platform has empty name")
	}
	if p.VFLevels < 2 {
		return fmt.Errorf("config: platform needs >= 2 VF levels, got %d", p.VFLevels)
	}
	if p.FMinGHz <= 0 || p.FMaxGHz <= p.FMinGHz {
		return fmt.Errorf("config: invalid frequency range [%g, %g] GHz", p.FMinGHz, p.FMaxGHz)
	}
	if p.TransitionPenaltyS < 0 {
		return fmt.Errorf("config: negative transition penalty %g", p.TransitionPenaltyS)
	}
	if err := p.Power.Validate(); err != nil {
		return err
	}
	if err := p.Thermal.Validate(); err != nil {
		return err
	}
	if err := p.NoC.Validate(); err != nil {
		return err
	}
	// The VF table must be constructible.
	if _, err := p.VFTable(); err != nil {
		return err
	}
	return nil
}

// VFTable builds the platform's operating-point table.
func (p Platform) VFTable() (*vf.Table, error) {
	return vf.Generate(p.FMinGHz*1e9, p.FMaxGHz*1e9, p.VFLevels, p.Tech)
}

// platformPresets registers named device variants: the default 22 nm part,
// a near-threshold wide-range variant and a coarse 4-level commercial-style
// P-state part.
var platformPresets = map[string]func() Platform{
	"manycore-22nm": Default,
	"manycore-ntc": func() Platform {
		p := Default()
		p.Name = "manycore-ntc"
		p.FMinGHz = 0.4
		p.FMaxGHz = 3.2
		p.VFLevels = 12
		return p
	},
	"manycore-4pstate": func() Platform {
		p := Default()
		p.Name = "manycore-4pstate"
		p.VFLevels = 4
		return p
	},
}

// PlatformNames lists the registered presets in sorted order.
func PlatformNames() []string {
	names := make([]string, 0, len(platformPresets))
	for n := range platformPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PlatformPreset returns a named device preset.
func PlatformPreset(name string) (Platform, error) {
	f, ok := platformPresets[name]
	if !ok {
		return Platform{}, fmt.Errorf("config: unknown platform %q (have %v)", name, PlatformNames())
	}
	return f(), nil
}

// BudgetStep re-caps the chip mid-run.
type BudgetStep struct {
	AtS     float64 `json:"at_s"`
	BudgetW float64 `json:"budget_w"`
}

// Experiment is one complete, replayable scenario.
type Experiment struct {
	Platform Platform `json:"platform"`
	Cores    int      `json:"cores"`
	// Workload is a preset name or "mix".
	Workload       string       `json:"workload"`
	BudgetW        float64      `json:"budget_w"`
	BudgetSchedule []BudgetStep `json:"budget_schedule,omitempty"`
	EpochS         float64      `json:"epoch_s"`
	WarmupS        float64      `json:"warmup_s"`
	MeasureS       float64      `json:"measure_s"`
	Seed           uint64       `json:"seed"`
	SensorNoise    float64      `json:"sensor_noise"`
	ThermalOff     bool         `json:"thermal_off,omitempty"`
	Controllers    []string     `json:"controllers"`
}

// DefaultExperiment returns the standard 64-core comparison scenario.
func DefaultExperiment() Experiment {
	return Experiment{
		Platform:    Default(),
		Cores:       64,
		Workload:    "mix",
		BudgetW:     55,
		EpochS:      1e-3,
		WarmupS:     2,
		MeasureS:    4,
		Seed:        1,
		SensorNoise: 0.02,
		Controllers: []string{"od-rl", "maxbips", "steepest-drop", "pid", "greedy", "static"},
	}
}

// Validate reports the first invalid field.
func (e Experiment) Validate() error {
	if err := e.Platform.Validate(); err != nil {
		return err
	}
	switch {
	case e.Cores <= 0:
		return fmt.Errorf("config: invalid core count %d", e.Cores)
	case e.Workload == "":
		return fmt.Errorf("config: empty workload")
	case e.BudgetW <= 0:
		return fmt.Errorf("config: invalid budget %g", e.BudgetW)
	case e.EpochS <= 0:
		return fmt.Errorf("config: invalid epoch %g", e.EpochS)
	case e.WarmupS < 0:
		return fmt.Errorf("config: negative warmup %g", e.WarmupS)
	case e.MeasureS <= 0:
		return fmt.Errorf("config: invalid measurement window %g", e.MeasureS)
	case e.SensorNoise < 0:
		return fmt.Errorf("config: negative sensor noise %g", e.SensorNoise)
	case len(e.Controllers) == 0:
		return fmt.Errorf("config: no controllers")
	}
	prev := -1.0
	for i, s := range e.BudgetSchedule {
		if s.AtS < 0 || s.BudgetW <= 0 || s.AtS <= prev {
			return fmt.Errorf("config: invalid budget step %d: %+v", i, s)
		}
		prev = s.AtS
	}
	return nil
}

// Save serialises the experiment as indented JSON.
func (e Experiment) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Load deserialises and validates an experiment.
func Load(r io.Reader) (Experiment, error) {
	var e Experiment
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return Experiment{}, fmt.Errorf("config: decoding experiment: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Experiment{}, err
	}
	return e, nil
}
