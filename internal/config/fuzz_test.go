package config

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad: the experiment decoder must never panic and must never accept a
// configuration its own validator rejects.
func FuzzLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := DefaultExperiment().Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(valid.String()[:valid.Len()/3])
	f.Add(`{"cores": -1}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)

	f.Fuzz(func(t *testing.T, data string) {
		exp, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := exp.Validate(); verr != nil {
			t.Fatalf("Load accepted an invalid experiment: %v", verr)
		}
	})
}
