// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator so that every experiment is exactly
// reproducible from a single seed.
//
// The generator is xoshiro256**, seeded through SplitMix64. It is not
// cryptographically secure; it is chosen for speed, statistical quality and
// the ability to derive independent child streams (Split) for per-core and
// per-workload randomness without cross-coupling.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the given state and returns the next SplitMix64 output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via SplitMix64, as recommended by
// the xoshiro authors to avoid correlated low-entropy states.
func New(seed uint64) *RNG {
	r := &RNG{}
	state := seed
	r.s0 = splitMix64(&state)
	r.s1 = splitMix64(&state)
	r.s2 = splitMix64(&state)
	r.s3 = splitMix64(&state)
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's state, and the parent is advanced so
// successive Splits yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise Choice panics.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: non-positive weight sum")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
