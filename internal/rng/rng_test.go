package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("successive splits produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChoiceDistribution(t *testing.T) {
	r := New(19)
	weights := []float64{1, 2, 3, 4}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	for i, w := range weights {
		expected := w / 10 * n
		if math.Abs(float64(counts[i])-expected) > expected*0.1 {
			t.Fatalf("Choice bucket %d: got %d, want ~%v", i, counts[i], expected)
		}
	}
}

func TestChoicePanicsOnBadWeights(t *testing.T) {
	cases := [][]float64{
		{},
		{0, 0},
		{-1, 2},
		{math.NaN()},
	}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%v) did not panic", w)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

// Property: Intn(n) always lands in [0, n) for arbitrary positive n and seeds.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed → same stream, for arbitrary seeds.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
