// Package ctrl defines the control-plane contract shared by the OD-RL
// controller (package core) and all baseline power managers (package
// baselines), plus the telemetry-based power/performance predictor the
// prediction-based baselines rely on.
//
// A Controller sees exactly what the hardware exposes — the previous
// epoch's telemetry and the chip power budget — and emits a VF level per
// core. Controllers also declare their NoC traffic pattern so experiments
// can charge communication costs (claim C4 in DESIGN.md).
package ctrl

import (
	"fmt"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/vf"
)

// Controller is one power-management policy.
type Controller interface {
	// Name identifies the controller in tables and traces.
	Name() string
	// Decide consumes the last epoch's telemetry and the chip budget in
	// watts, and writes the next VF level for every core into out
	// (len(out) == len(tel.Cores)). Implementations must not retain tel.
	Decide(tel *manycore.Telemetry, budgetW float64, out []int)
	// CommPerEpoch returns the controller's average per-control-epoch NoC
	// communication cost on the given mesh (telemetry gather, command
	// scatter, or neighbour exchange, amortised over its cadence).
	CommPerEpoch(m *noc.Mesh) noc.Cost
}

// PhaseProfiler is optionally implemented by controllers that time their
// decision phases (see obs.PhaseLocal et al.). The harness resets the
// profile at the warmup/measurement boundary so phase totals split the
// same window CtrlTimeS covers, and copies the totals into the run
// summary's phase-time fields.
type PhaseProfiler interface {
	// PhaseTimes returns the accumulated per-phase wall-clock profile.
	PhaseTimes() []obs.PhaseTime
	// ResetPhaseTimes zeroes the profile.
	ResetPhaseTimes()
}

// SpanStreamer is optionally implemented by controllers that can stream
// their phase spans (start + duration) to an obs.SpanSink as they happen,
// on top of the aggregate totals PhaseProfiler reports. The harness
// attaches the run-health monitor's timeline here and detaches it (nil)
// when the run ends; implementations must treat a nil sink as "off".
type SpanStreamer interface {
	// SetSpanSink installs (or, with nil, removes) the span sink.
	SetSpanSink(s obs.SpanSink)
}

// LearnStreamer is optionally implemented by learning controllers that can
// stream per-agent learning samples (TD error, exploration rate, policy
// churn — see obs.LearnCoreSample) to an obs.LearnSink after each decision.
// The harness attaches the learning-introspection layer here and detaches
// it (nil) when the run ends; implementations must treat a nil sink as
// "off" and must keep decisions bit-identical either way.
type LearnStreamer interface {
	// SetLearnSink installs (or, with nil, removes) the learn sink.
	SetLearnSink(s obs.LearnSink)
}

// PolicySnapshotter is optionally implemented by controllers whose policy
// is an exportable dense table, enabling the content-addressed policy
// snapshots the learning-introspection layer writes. CopyPolicy must be a
// pure read: cores·states·actions float64 values in core-major order.
type PolicySnapshotter interface {
	// PolicyShape returns the policy tensor's dimensions.
	PolicyShape() (cores, states, actions int)
	// CopyPolicy copies the policy into dst, which must hold exactly
	// cores·states·actions values.
	CopyPolicy(dst []float64) error
}

// Predictor turns one core's observed telemetry into power and performance
// estimates at other VF levels, exactly the model a MaxBIPS-class manager
// builds from performance counters. Its error on abrupt phase changes —
// the telemetry describes the previous phase, not the next — is the
// fundamental source of budget overshoot for prediction-based control.
type Predictor struct {
	VF    *vf.Table
	Power power.Params
}

// NewPredictor builds a predictor; both fields are required.
func NewPredictor(table *vf.Table, p power.Params) (Predictor, error) {
	if table == nil {
		return Predictor{}, fmt.Errorf("ctrl: nil VF table")
	}
	if err := p.Validate(); err != nil {
		return Predictor{}, err
	}
	return Predictor{VF: table, Power: p}, nil
}

// PowerAt estimates the core's power if moved to the given level, holding
// its current phase. The observed power is split into a model-computed
// leakage part and a residual dynamic part; dynamic scales with V²f,
// leakage with the leakage model at the new voltage.
func (p Predictor) PowerAt(ct manycore.CoreTelemetry, level int) float64 {
	cur := p.VF.Point(ct.Level)
	next := p.VF.Point(level)
	tempK := ct.TempK
	if !(tempK > 0) { // negated comparison also catches NaN sensor readings
		tempK = 300
	}
	leakCur := p.Power.LeakageW(cur.VoltageV, tempK)
	dyn := ct.PowerW - leakCur
	if !(dyn > 0) {
		dyn = 0
	}
	scale := (next.VoltageV * next.VoltageV * next.FreqHz) /
		(cur.VoltageV * cur.VoltageV * cur.FreqHz)
	return dyn*scale + p.Power.LeakageW(next.VoltageV, tempK)
}

// IPSAt estimates the core's instruction throughput at the given level,
// holding its current phase, using the observed memory-boundedness as an
// Amdahl-style correction: the memory-stall fraction of time does not
// shrink when the clock speeds up.
func (p Predictor) IPSAt(ct manycore.CoreTelemetry, level int) float64 {
	cur := p.VF.Point(ct.Level)
	next := p.VF.Point(level)
	mb := ct.MemBoundedness
	if !(mb > 0) { // negated comparison also catches NaN sensor readings
		mb = 0
	} else if mb > 1 {
		mb = 1
	}
	ips := ct.IPS
	if !(ips >= 0) {
		ips = 0
	}
	// Time per instruction splits into a core part (scales 1/f) and a
	// memory part (constant): t(f') = t(f)·((1−mb)·f/f' + mb).
	denom := (1-mb)*cur.FreqHz/next.FreqHz + mb
	if denom <= 0 {
		return 0
	}
	return ips / denom
}

// MinChipPowerW returns a model-based lower bound for chip power with every
// core at the bottom level and idle activity, used by controllers to detect
// infeasible budgets.
func (p Predictor) MinChipPowerW(cores int, tempK float64) float64 {
	op := p.VF.Min()
	perCore := p.Power.CoreW(op.VoltageV, op.FreqHz, 0.05, tempK)
	return p.Power.UncoreW + float64(cores)*perCore
}
