// Contract tests: every registered controller must satisfy the Controller
// interface's behavioural contract, not just its type signature. The suite
// runs from an external test package so it can build controllers through
// the sim factory without an import cycle.
package ctrl_test

import (
	"math"
	"testing"

	"repro/internal/ctrl"
	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/obs"
	learn "repro/internal/obs/learn"
	"repro/internal/sim"
	"repro/internal/vf"
)

const contractCores = 16

func newEnv() sim.Env {
	return sim.DefaultEnv(contractCores)
}

func build(t *testing.T, name string) ctrl.Controller {
	t.Helper()
	c, err := sim.NewController(name, newEnv())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// synthTelemetry builds a deterministic, plausible telemetry frame for the
// given epoch: per-core IPS/power varying smoothly, with the previous
// decisions fed back as the current levels.
func synthTelemetry(epoch int, levels []int, table *vf.Table) manycore.Telemetry {
	n := len(levels)
	tel := manycore.Telemetry{
		Cores:  make([]manycore.CoreTelemetry, n),
		TimeS:  float64(epoch+1) * 1e-3,
		EpochS: 1e-3,
	}
	for i := range tel.Cores {
		op := table.Point(levels[i])
		phase := float64((epoch*7+i*13)%100) / 100
		tel.Cores[i] = manycore.CoreTelemetry{
			Level:          levels[i],
			IPS:            op.FreqHz * (0.4 + 0.8*phase),
			PowerW:         0.3 + 2.5*phase*float64(levels[i]+1)/float64(table.Levels()),
			MemBoundedness: phase * 0.9,
			TempK:          320 + 30*phase,
			Instructions:   op.FreqHz * 1e-3,
		}
		tel.ChipPowerW += tel.Cores[i].PowerW
	}
	tel.TruePowerW = tel.ChipPowerW
	return tel
}

// drive runs the controller over a synthetic closed loop and calls check
// after every decision.
func drive(t *testing.T, c ctrl.Controller, epochs int, budgetAt func(epoch int) float64,
	mutate func(epoch int, tel *manycore.Telemetry), check func(epoch int, out []int)) {
	t.Helper()
	table := vf.Default()
	levels := make([]int, contractCores)
	out := make([]int, contractCores)
	for e := 0; e < epochs; e++ {
		tel := synthTelemetry(e, levels, table)
		if mutate != nil {
			mutate(e, &tel)
		}
		c.Decide(&tel, budgetAt(e), out)
		check(e, out)
		copy(levels, out)
		for i, l := range levels {
			if l < 0 {
				levels[i] = 0
			} else if l >= table.Levels() {
				levels[i] = table.Levels() - 1
			}
		}
	}
}

func requireInRange(t *testing.T, name string, epoch int, out []int) {
	t.Helper()
	top := vf.Default().Levels()
	for i, l := range out {
		if l < 0 || l >= top {
			t.Fatalf("%s: epoch %d core %d: level %d out of [0,%d)", name, epoch, i, l, top)
		}
	}
}

// TestContractLevelsInRange: every decision must be a valid VF level under
// ordinary closed-loop operation.
func TestContractLevelsInRange(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			c := build(t, name)
			drive(t, c, 60, func(int) float64 { return 40 }, nil,
				func(e int, out []int) { requireInRange(t, name, e, out) })
		})
	}
}

// TestContractZeroTelemetry: an all-zero frame (boot, total blackout, every
// core dead) must produce in-range levels, not a panic or NaN cascade.
func TestContractZeroTelemetry(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			c := build(t, name)
			zero := func(_ int, tel *manycore.Telemetry) {
				for i := range tel.Cores {
					tel.Cores[i] = manycore.CoreTelemetry{Dead: i%2 == 0}
				}
				tel.ChipPowerW = 0
				tel.TruePowerW = 0
			}
			drive(t, c, 30, func(int) float64 { return 40 }, zero,
				func(e int, out []int) { requireInRange(t, name, e, out) })
		})
	}
}

// TestContractNaNTelemetry: corrupted sensor values (NaN/Inf) must never
// crash a controller or escape as out-of-range levels.
func TestContractNaNTelemetry(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			c := build(t, name)
			poison := func(e int, tel *manycore.Telemetry) {
				for i := range tel.Cores {
					switch (e + i) % 4 {
					case 0:
						tel.Cores[i].PowerW = math.NaN()
					case 1:
						tel.Cores[i].IPS = math.NaN()
						tel.Cores[i].MemBoundedness = math.NaN()
					case 2:
						tel.Cores[i].TempK = math.NaN()
					case 3:
						tel.Cores[i].PowerW = math.Inf(1)
					}
				}
				if e%3 == 0 {
					tel.ChipPowerW = math.NaN()
				}
			}
			drive(t, c, 40, func(int) float64 { return 40 }, poison,
				func(e int, out []int) { requireInRange(t, name, e, out) })
		})
	}
}

// TestContractZeroBudget: a zero (or absurdly low) budget is hostile but
// must degrade to in-range decisions.
func TestContractZeroBudget(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			c := build(t, name)
			drive(t, c, 30, func(int) float64 { return 0 }, nil,
				func(e int, out []int) { requireInRange(t, name, e, out) })
		})
	}
}

// TestContractBudgetStep: a mid-run cap change (the F1 scenario) must not
// derail any controller.
func TestContractBudgetStep(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			c := build(t, name)
			budget := func(e int) float64 {
				if e >= 30 {
					return 15
				}
				return 45
			}
			drive(t, c, 60, budget, nil,
				func(e int, out []int) { requireInRange(t, name, e, out) })
		})
	}
}

// TestContractSeedDeterminism: two identically configured controllers fed
// the identical telemetry stream must make identical decisions — the
// factory must not introduce hidden global state or time dependence.
func TestContractSeedDeterminism(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			a, b := build(t, name), build(t, name)
			table := vf.Default()
			levels := make([]int, contractCores)
			outA := make([]int, contractCores)
			outB := make([]int, contractCores)
			for e := 0; e < 60; e++ {
				telA := synthTelemetry(e, levels, table)
				telB := synthTelemetry(e, levels, table)
				a.Decide(&telA, 40, outA)
				b.Decide(&telB, 40, outB)
				for i := range outA {
					if outA[i] != outB[i] {
						t.Fatalf("epoch %d core %d: decisions diverged (%d vs %d)",
							e, i, outA[i], outB[i])
					}
				}
				copy(levels, outA)
			}
		})
	}
}

// TestContractCommCost: the declared NoC cost must be finite and
// non-negative on a real mesh.
func TestContractCommCost(t *testing.T) {
	mesh, err := noc.New(4, 4, noc.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sim.ControllerNames() {
		t.Run(name, func(t *testing.T) {
			c := build(t, name)
			cost := c.CommPerEpoch(mesh)
			for _, v := range []float64{cost.LatencyS, cost.EnergyJ} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("%s: bad comm cost %+v", name, cost)
				}
			}
		})
	}
}

// greedyRecorder counts, per core, how often the agent's latest action was
// the greedy one. It implements obs.LearnSink without obs.LearnStrider, so
// the controller emits every epoch and ActedGreedy is per-epoch exact.
type greedyRecorder struct {
	greedy []int
	total  []int
}

func (g *greedyRecorder) ObserveLearnEpoch(samples []obs.LearnCoreSample) {
	for i, s := range samples {
		if s.Dead {
			continue
		}
		g.total[i]++
		if s.ActedGreedy {
			g.greedy[i]++
		}
	}
}

// stationaryTelemetry rewrites the synthetic frame so each core's
// IPS/power depend only on its chosen level (phase fixed per core, not
// epoch-cycling): a stationary environment tabular Q-learning can actually
// converge in, unlike the default frame whose drifting phase keeps greedy
// actions churning forever.
func stationaryTelemetry(_ int, tel *manycore.Telemetry) {
	table := vf.Default()
	tel.ChipPowerW = 0
	for i := range tel.Cores {
		op := table.Point(tel.Cores[i].Level)
		phase := float64((i*13)%100) / 100
		tel.Cores[i].IPS = op.FreqHz * (0.4 + 0.8*phase)
		tel.Cores[i].PowerW = 0.3 + 2.5*phase*float64(tel.Cores[i].Level+1)/float64(table.Levels())
		tel.Cores[i].MemBoundedness = phase * 0.9
		tel.ChipPowerW += tel.Cores[i].PowerW
	}
	tel.TruePowerW = tel.ChipPowerW
}

// TestContractConvergedActGreedily: once the online detector declares an
// agent converged (greedy policy stable, TD-error EMA below threshold), that
// agent must keep acting greedily — apart from the residual ε-greedy
// exploration floor. The detector here disables the TD criterion (threshold
// far above the ≤1 reward scale) so the test exercises greedy stability
// alone and stays robust to workload synthesis details.
func TestContractConvergedActGreedily(t *testing.T) {
	c := build(t, "od-rl")
	ls, ok := c.(ctrl.LearnStreamer)
	if !ok {
		t.Fatal("od-rl does not implement ctrl.LearnStreamer")
	}
	lay := learn.New(learn.Options{
		Detector:  learn.Detector{StableEpochs: 100, TDThreshold: 100},
		EmitEvery: 1,
	})
	run := lay.BeginRun(obs.RunMeta{Controller: c.Name(), Cores: contractCores}, nil, 0)
	ls.SetLearnSink(run)
	drive(t, c, 6000, func(int) float64 { return 40 }, stationaryTelemetry,
		func(e int, out []int) { requireInRange(t, "od-rl", e, out) })
	converged := map[int]bool{}
	run.DrainConverged(func(cv *obs.ConvergedEvent) { converged[cv.Core] = true })
	if len(converged) == 0 {
		t.Fatal("no agent converged in 6000 epochs under a stability-only detector")
	}
	rec := &greedyRecorder{
		greedy: make([]int, contractCores),
		total:  make([]int, contractCores),
	}
	ls.SetLearnSink(rec)
	drive(t, c, 500, func(int) float64 { return 40 }, stationaryTelemetry,
		func(e int, out []int) { requireInRange(t, "od-rl", e, out) })
	ls.SetLearnSink(nil)
	var greedy, total int
	for core := range converged {
		greedy += rec.greedy[core]
		total += rec.total[core]
	}
	if total == 0 {
		t.Fatal("converged cores recorded no samples")
	}
	if frac := float64(greedy) / float64(total); frac < 0.9 {
		t.Fatalf("converged agents acted greedily only %.1f%% of post-convergence epochs (%d cores, want ≥90%%)",
			frac*100, len(converged))
	}
}

// TestContractNamesRegistered: every factory name builds a controller whose
// Name round-trips, so traces and tables can be joined on it.
func TestContractNamesRegistered(t *testing.T) {
	for _, name := range sim.ControllerNames() {
		c := build(t, name)
		if c.Name() != name {
			t.Errorf("factory name %q builds controller named %q", name, c.Name())
		}
	}
}
