package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Label: "power", X: []float64{0, 1, 2, 3}, Y: []float64{10, 20, 30, 40}}
	if err := Render(&buf, "trace", 40, 10, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace", "power", "*", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels + legend
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "t", 40, 10); err == nil {
		t.Fatal("expected error for no series")
	}
	bad := Series{Label: "b", X: []float64{1, 2}, Y: []float64{1}}
	if err := Render(&buf, "t", 40, 10, bad); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	empty := Series{Label: "e"}
	if err := Render(&buf, "t", 40, 10, empty); err == nil {
		t.Fatal("expected error for empty series")
	}
}

func TestRenderMonotonePlacement(t *testing.T) {
	// A rising line's marker in the last column must sit above (smaller
	// row index than) the first column's.
	var buf bytes.Buffer
	s := Series{Label: "up", X: []float64{0, 1}, Y: []float64{0, 100}}
	if err := Render(&buf, "", 20, 8, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	firstRow, lastRow := -1, -1
	for r, line := range lines {
		idx := strings.IndexRune(line, '*')
		if idx < 0 {
			continue
		}
		// Plot area starts after "LABEL |".
		col := idx - strings.IndexRune(line, '|') - 1
		if col <= 1 && firstRow == -1 {
			firstRow = r
		}
		if col >= 18 {
			lastRow = r
		}
	}
	if firstRow == -1 || lastRow == -1 {
		t.Fatalf("markers not found:\n%s", buf.String())
	}
	if lastRow >= firstRow {
		t.Fatalf("rising series rendered non-rising (rows %d -> %d)", firstRow, lastRow)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	var buf bytes.Buffer
	a := Series{Label: "a", X: []float64{0, 1}, Y: []float64{1, 1}}
	b := Series{Label: "b", X: []float64{0, 1}, Y: []float64{2, 2}}
	if err := Render(&buf, "", 20, 6, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	// Constant series must not divide by zero.
	var buf bytes.Buffer
	s := Series{Label: "flat", X: []float64{5, 5, 5}, Y: []float64{7, 7, 7}}
	if err := Render(&buf, "", 20, 5, s); err != nil {
		t.Fatal(err)
	}
}

func TestHLine(t *testing.T) {
	h := HLine("budget", 0, 10, 55)
	if len(h.X) != 2 || h.Y[0] != 55 || h.Y[1] != 55 || h.X[1] != 10 {
		t.Fatalf("HLine = %+v", h)
	}
}
