// Package plot renders time series as ASCII charts for terminal-first
// workflows: power traces against budgets, learning curves, sweeps. It has
// no styling dependencies and writes plain text suitable for logs and
// EXPERIMENTS records.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled line of (x, y) points. X must be non-decreasing
// for the rendering to be meaningful, but this is not enforced.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// markers distinguish overlapping series in drawing order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series onto a width×height character canvas with a
// y-axis scale, an x-range footer and a legend. Width and height are the
// plot area dimensions (excluding axes); minimums are enforced.
func Render(w io.Writer, title string, width, height int, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values",
				s.Label, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Label)
		}
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// A little vertical headroom keeps extremes off the frame.
	pad := (yMax - yMin) * 0.05
	yMin -= pad
	yMax += pad

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			col := int(float64(width-1) * (s.X[i] - xMin) / (xMax - xMin))
			row := height - 1 - int(float64(height-1)*(s.Y[i]-yMin)/(yMax-yMin))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, rowRunes := range grid {
		// Y label on the top, middle and bottom rows.
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4g", yMax)
		case height / 2:
			label = fmt.Sprintf("%8.4g", (yMax+yMin)/2)
		case height - 1:
			label = fmt.Sprintf("%8.4g", yMin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(rowRunes))
	}
	fmt.Fprintf(&b, "%9s+%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%9s%-*.4g%*.4g\n", "", width/2, xMin, width-width/2, xMax)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	fmt.Fprintf(&b, "%9s%s\n", "", strings.Join(legend, "   "))
	_, err := io.WriteString(w, b.String())
	return err
}

// HLine builds a two-point horizontal series at level y spanning [x0, x1],
// e.g. a budget line across a power trace.
func HLine(label string, x0, x1, y float64) Series {
	return Series{Label: label, X: []float64{x0, x1}, Y: []float64{y, y}}
}
