package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs/monitor"
	"repro/internal/sim"
)

// renderTable renders a figure to the exact bytes the CLIs print.
func renderTable(t *testing.T, tbl Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTablesByteIdenticalWithMonitoring is the figure-level read-only gate:
// F1 and F18 must render byte-identical tables with the run-health monitor
// off and on (as a CLI would attach it, via sim.DefaultMonitor), sequential
// and parallel.
func TestTablesByteIdenticalWithMonitoring(t *testing.T) {
	if sim.DefaultMonitor != nil {
		t.Fatal("test requires a clean sim.DefaultMonitor")
	}
	cases := []struct {
		id  string
		run Runner
	}{
		{"F1", F1PowerTrace},
		{"F18", F18FaultIntensity},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				cfg := Config{Quick: true, Workers: workers}
				resetSweepCache()
				sim.DefaultMonitor = nil
				off, err := tc.run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				resetSweepCache()
				mon := monitor.New(monitor.Options{})
				sim.DefaultMonitor = mon
				on, err := tc.run(cfg)
				sim.DefaultMonitor = nil
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(off, on) {
					t.Fatalf("%s diverges with monitoring on at workers=%d", tc.id, workers)
				}
				if !bytes.Equal(renderTable(t, off), renderTable(t, on)) {
					t.Fatalf("%s rendered bytes diverge with monitoring on at workers=%d", tc.id, workers)
				}
			}
		})
	}
}

// TestBenchMonitorReport smoke-checks the overhead report: it must measure
// both legs of every case and produce valid JSON. It runs a cheap spec (2
// reps, short legs) so the check stays fast under the race detector; the
// <3% assertion and the full 15-rep protocol live in the bench-monitor make
// target, not here — wall-clock thresholds are too flaky for CI unit tests.
func TestBenchMonitorReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	rep, err := benchMonitor(2, []benchMonitorSpec{
		{"epoch-loop-greedy-64c", "greedy", 2},
		{"epoch-loop-odrl-64c", "od-rl", 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("got %d cases", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if c.OffS <= 0 || c.OnS <= 0 || c.Epochs <= 0 {
			t.Fatalf("unmeasured case %+v", c)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("overhead_frac")) {
		t.Fatalf("report JSON missing fields:\n%s", buf.String())
	}
}
