package experiments

import "repro/internal/obs"

// HostInfo is the shared host stamp every BENCH_*.json emitter embeds; it
// is the obs.Host type under its historical name, so report JSON is
// unchanged and the ledger's run records carry the identical stamp (one
// helper, no per-CLI copies).
type HostInfo = obs.Host

func hostInfo() HostInfo { return obs.HostInfo() }
