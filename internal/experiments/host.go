package experiments

import "runtime"

// HostInfo stamps the machine a benchmark report was produced on. Every
// BENCH_*.json emitter embeds it, so a checked-in report is never read
// without the context that bounds it: wall-clock numbers are only
// comparable across reports sharing the same stamp.
type HostInfo struct {
	// HostCPUs is runtime.NumCPU(); parallel speedup is bounded by it.
	HostCPUs   int `json:"host_cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion, OS and Arch identify the toolchain and platform the
	// timings were taken under.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Note is a human-readable caveat about this host, e.g. that a
	// single-CPU machine caps every parallel speedup at ~1x.
	Note string `json:"note,omitempty"`
}

func hostInfo() HostInfo {
	h := HostInfo{
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if h.HostCPUs == 1 {
		h.Note = "single-CPU host: parallel speedups are ~1x by construction; overhead medians remain valid (paired off/on reps, CPU-time ratios)"
	}
	return h
}
