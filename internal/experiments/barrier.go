package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/manycore"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/vf"
	"repro/internal/workload"
)

// F14Barrier is an extension experiment: a bulk-synchronous (barrier)
// application whose lanes progress by *retired instructions*, with ±20%
// per-lane imbalance. Raw BIPS is a misleading metric here — waiting lanes
// spin — so the table reports true application progress: supersteps per
// second. Slow lanes gate the barrier, which is precisely the structure
// the OD-RL budget-reallocation layer exploits: budget moved to laggards
// buys whole-app progress that equal shares cannot.
func F14Barrier(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "od-rl-norealloc", "od-rl-ema", "pid", "greedy", "static"}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
	}

	t := Table{
		ID:     "F14",
		Title:  fmt.Sprintf("barrier-synchronised application at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"controller", "supersteps/s", "mean(W)", "over(J)", "steps/J"},
		Notes: []string{
			"lanes progress by retired instructions; ±20% lane imbalance; slow lanes gate the barrier",
			"supersteps/s is true application progress (BIPS counts barrier spinning)",
			"negative result: the 10ms reallocation cadence lags the ~25ms work/wait oscillation, so",
			"od-rl-norealloc outpaces od-rl here — reallocation helps persistent imbalance (F9), not oscillating",
			"fix: od-rl-ema reallocates against EMA-smoothed power (α=0.05) and recovers most of the gap",
		},
	}

	w, h, err := sim.GridFor(cfg.Cores)
	if err != nil {
		return Table{}, err
	}
	warmupEpochs := int(cfg.WarmupS / 1e-3)
	measureEpochs := int(cfg.MeasureS / 1e-3)

	for _, name := range names {
		base := rng.New(cfg.Seed)
		work := workload.Phase{
			Class: workload.Compute, BaseCPI: 0.85, MPKI: 2.0,
			MemLatencyNs: 75, Activity: 0.9,
		}
		app, err := workload.NewBarrierApp(cfg.Cores, work, 30e6, 0.2, base.Split())
		if err != nil {
			return Table{}, err
		}
		sources := make([]workload.Source, cfg.Cores)
		for i := range sources {
			sources[i] = app.Lane(i)
		}
		mcCfg := manycore.Config{
			Width: w, Height: h,
			VF:                 vf.Default(),
			Power:              power.Default(),
			Thermal:            thermal.Default(),
			ThermalEnabled:     true,
			SensorNoise:        0.02,
			TransitionPenaltyS: 10e-6,
		}
		chip, err := manycore.New(mcCfg, sources, base.Split())
		if err != nil {
			return Table{}, err
		}
		var c ctrl.Controller
		if name == "od-rl-ema" {
			// The churn fix motivated by this experiment: reallocate
			// against EMA-smoothed power rather than the last sample.
			ccfg := core.DefaultConfig()
			ccfg.Seed = cfg.Seed
			ccfg.ReallocEMA = 0.05
			c, err = core.New(cfg.Cores, vf.Default(), power.Default(), ccfg)
			if err != nil {
				return Table{}, err
			}
		} else {
			env := sim.DefaultEnv(cfg.Cores)
			env.Seed = cfg.Seed
			c, err = sim.NewController(name, env)
			if err != nil {
				return Table{}, err
			}
		}

		out := make([]int, cfg.Cores)
		var energy, overJ float64
		stepsStart := 0
		for e := 0; e < warmupEpochs+measureEpochs; e++ {
			if e == warmupEpochs {
				stepsStart = app.Supersteps()
			}
			tel := chip.Step(1e-3)
			c.Decide(&tel, cfg.BudgetW, out)
			for i, l := range out {
				chip.SetLevel(i, l)
			}
			if e >= warmupEpochs {
				energy += tel.TruePowerW * 1e-3
				if tel.TruePowerW > cfg.BudgetW {
					overJ += (tel.TruePowerW - cfg.BudgetW) * 1e-3
				}
			}
		}
		steps := float64(app.Supersteps() - stepsStart)
		rate := steps / cfg.MeasureS
		perJ := 0.0
		if energy > 0 {
			perJ = steps / energy
		}
		t.Rows = append(t.Rows, []string{
			name, cell(rate), cell(energy / cfg.MeasureS), cell(overJ), cell(perJ),
		})
	}
	return t, nil
}
