// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md — the paper body is not
// available, so experiment IDs are ours and each maps to an abstract claim
// or standard supporting material).
//
// Each experiment is a function returning a Table; cmd/odrl-bench renders
// them for humans and bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Config scopes an experiment run.
type Config struct {
	// Cores is the default platform size.
	Cores int
	// BudgetW is the default chip budget.
	BudgetW float64
	// WarmupS and MeasureS set run windows.
	WarmupS  float64
	MeasureS float64
	// Seed drives all randomness.
	Seed uint64
	// Controllers and Benchmarks select the comparison axes; empty slices
	// take the defaults.
	Controllers []string
	Benchmarks  []string
	// Quick shrinks run lengths for use inside unit tests and smoke runs;
	// numbers remain directionally meaningful but noisier.
	Quick bool
	// Workers bounds the goroutines used to fan independent runs out
	// concurrently (benchmark × controller sweeps, budget points, core
	// counts, seeds) and to shard large chips' per-core loops: 0 uses one
	// worker per CPU, 1 forces fully sequential execution. Every table is
	// bit-identical for any worker count — runs derive their randomness
	// from (Seed, run identity), never from scheduling order.
	Workers int
	// FaultPlan, when non-nil and non-zero, injects deterministic faults
	// into every run (see package fault). F18 sweeps its own plans and
	// ignores this field.
	FaultPlan *fault.Plan
}

// Default returns the evaluation configuration used in EXPERIMENTS.md.
func Default() Config {
	return Config{
		Cores:    64,
		BudgetW:  55,
		WarmupS:  4,
		MeasureS: 6,
		Seed:     1,
		Controllers: []string{
			"od-rl", "maxbips", "steepest-drop", "pid", "greedy", "static",
		},
		Benchmarks: []string{
			"blackscholes", "bodytrack", "canneal", "dedup", "ferret",
			"fluidanimate", "streamcluster", "swaptions", "vips", "x264",
		},
	}
}

// normalized applies Quick scaling and fills empty axes.
func (c Config) normalized() Config {
	d := Default()
	if c.Cores == 0 {
		c.Cores = d.Cores
	}
	if c.BudgetW == 0 {
		c.BudgetW = d.BudgetW
	}
	if c.WarmupS == 0 {
		c.WarmupS = d.WarmupS
	}
	if c.MeasureS == 0 {
		c.MeasureS = d.MeasureS
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.Controllers) == 0 {
		c.Controllers = d.Controllers
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = d.Benchmarks
	}
	if c.Quick {
		c.WarmupS = 0.5
		c.MeasureS = 0.5
		if c.Cores > 16 {
			c.Cores = 16
		}
		if len(c.Benchmarks) > 3 {
			c.Benchmarks = c.Benchmarks[:3]
		}
	}
	return c
}

// runOpts returns the harness options every experiment run starts from:
// the shared axes (platform size, budget, windows, seed, workers) filled
// from the experiment config. Individual experiments override fields from
// there.
func (c Config) runOpts() sim.Options {
	opts := sim.DefaultOptions()
	opts.Cores = c.Cores
	opts.BudgetW = c.BudgetW
	opts.WarmupS = c.WarmupS
	opts.MeasureS = c.MeasureS
	opts.Seed = c.Seed
	opts.Workers = c.Workers
	opts.FaultPlan = c.FaultPlan
	return opts
}

// env returns the controller environment matching runOpts for the given
// core count.
func (c Config) env(cores int) sim.Env {
	env := sim.DefaultEnv(cores)
	env.Seed = c.Seed
	env.Workers = c.Workers
	return env
}

// Table is one rendered experiment result. The JSON form is a stable
// contract: the scenario result cache (internal/scenario) persists tables
// as content-addressed JSON files, so renaming these keys invalidates
// every on-disk cache (bump the scenario engine version when doing so).
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// WriteTo renders the table as aligned text.
func (t Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	rows := append([][]string{t.Header}, t.Rows...)
	widths := make([]int, len(t.Header))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV renders the table as CSV (header row then data rows); notes are
// emitted as trailing comment lines.
func (t Table) WriteCSV(w io.Writer) error {
	writeRow := func(row []string) error {
		for i, cell := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Cell formats a float compactly for table cells.
func cell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Registry maps experiment IDs to their runners, in presentation order.
type Runner func(Config) (Table, error)

// All returns the experiment registry in presentation order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"T1", T1Platform},
		{"T2", T2Workloads},
		{"F1", F1PowerTrace},
		{"F2", F2Overshoot},
		{"F3", F3ThroughputPerOverEnergy},
		{"F4", F4EnergyEfficiency},
		{"F5", F5ControllerScaling},
		{"F6", F6Convergence},
		{"F7", F7BudgetSweep},
		{"F8", F8CoreScaling},
		{"F9", F9Ablation},
		{"F10", F10Thermal},
		{"F11", F11Variation},
		{"F12", F12WarmStart},
		{"F13", F13Islands},
		{"F14", F14Barrier},
		{"F15", F15Seeds},
		{"F16", F16Server},
		{"F17", F17Hetero},
		{"F18", F18FaultIntensity},
		{"F19", F19LearningDynamics},
	}
}

// ByID returns the runner for one experiment ID.
func ByID(id string) (Runner, error) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
