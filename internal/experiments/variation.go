package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/variation"
)

// F11Variation is an extension experiment beyond the paper's evaluation:
// controller robustness to manufacturing process variation. The die's
// leakage varies ±30% core-to-core (spatially correlated); controllers are
// NOT told — exactly the situation on real silicon. A model-based manager
// (MaxBIPS) predicts per-core power from nominal constants, so on a leaky
// die it systematically under-predicts and overshoots; OD-RL's per-core
// agents learn their own silicon and never had a model to invalidate.
func F11Variation(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "maxbips", "steepest-drop", "greedy"}
	if cfg.Quick {
		names = []string{"od-rl", "maxbips"}
	}
	sigmas := []float64{0, 0.3, 0.6}
	if cfg.Quick {
		sigmas = []float64{0, 0.6}
	}

	t := Table{
		ID:     "F11",
		Title:  fmt.Sprintf("process-variation robustness at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"leak-sigma"},
		Notes: []string{
			"controllers receive no variation information; telemetry is their only window",
			"telemetry-anchored predictors partly self-correct (observed power already embeds the die's leakage);",
			"the residual misattribution still raises steepest-drop's overshoot with sigma, while od-rl stays at zero",
		},
	}
	for _, n := range names {
		t.Header = append(t.Header, n+" over(J)", n+" BIPS/W")
	}

	for _, sigma := range sigmas {
		row := []string{cell(sigma)}
		for _, name := range names {
			opts := sim.DefaultOptions()
			opts.Cores = cfg.Cores
			opts.BudgetW = cfg.BudgetW
			opts.WarmupS = cfg.WarmupS
			opts.MeasureS = cfg.MeasureS
			opts.Seed = cfg.Seed
			if sigma > 0 {
				vp := variation.Default()
				vp.LeakSigma = sigma
				vp.Seed = cfg.Seed
				opts.Variation = &vp
			}
			env, err := sim.EnvFor(opts)
			if err != nil {
				return Table{}, err
			}
			c, err := sim.NewController(name, env)
			if err != nil {
				return Table{}, err
			}
			res, err := sim.Run(opts, c)
			if err != nil {
				return Table{}, err
			}
			row = append(row, cell(res.Summary.OverJ), cell(res.Summary.EnergyEff()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
