package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"repro/internal/obs/flight"
	"repro/internal/sim"
)

// BenchFlightCase is one timed recorder-off-vs-on comparison over an
// identical simulation (same seed, controller and epoch count; the flight
// recorder is read-only toward the run, so the delta is pure recording
// overhead).
type BenchFlightCase struct {
	// Name identifies the workload being timed.
	Name string `json:"name"`
	// Epochs is the total epoch count each leg executes.
	Epochs int `json:"epochs"`
	// OffS and OnS are the best (minimum) wall-clock seconds per leg without
	// and with the always-on flight recorder (epoch ring, decide sketch,
	// span timeline armed).
	OffS float64 `json:"off_s"`
	OnS  float64 `json:"on_s"`
	// OverheadFrac is the median per-rep on/off ratio minus one — each rep
	// times an adjacent off/on pair so host drift cancels, and the ratio is
	// taken over process CPU time where the platform measures it (Linux),
	// wall clock otherwise. The recorder's budget is <3%, the same ceiling
	// the monitor holds, because "always-on" is only defensible at a cost
	// nobody can measure in their results.
	OverheadFrac float64 `json:"overhead_frac"`
}

// BenchFlightReport is the machine-readable output of
// `odrl-bench -bench-flight` (written as BENCH_flight.json): the cost of
// leaving the flight recorder armed on every run on this host.
type BenchFlightReport struct {
	HostInfo
	Cases []BenchFlightCase `json:"cases"`
}

// benchFlightCase times one options set with the recorder off and on.
func benchFlightCase(name, controller string, opts sim.Options, reps int) (BenchFlightCase, error) {
	// Only sim.Run sits inside the timed region; environment, controller
	// and recorder construction all happen (and allocate) outside it.
	run := func(rec *flight.Recorder) (wallS, cpuS float64, err error) {
		o := opts
		if rec != nil {
			o.Observer = rec.Wrap(nil)
			o.SpanSink = rec.Timeline()
		}
		env, err := sim.EnvFor(o)
		if err != nil {
			return 0, 0, err
		}
		c, err := sim.NewController(controller, env)
		if err != nil {
			return 0, 0, err
		}
		runtime.GC()
		return timeRunBoth(func() error {
			_, err := sim.Run(o, c)
			return err
		})
	}
	// Warm once so first-use allocation and page faults don't bias the
	// off leg.
	if _, _, err := run(nil); err != nil {
		return BenchFlightCase{}, err
	}
	// Same pairing discipline as the monitor bench: adjacent off/on reps so
	// slow host drift hits both legs alike, median ratio so the odd
	// preempted rep is discarded instead of averaged in.
	offS, onS := math.Inf(1), math.Inf(1)
	ratios := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		off, offCPU, err := run(nil)
		if err != nil {
			return BenchFlightCase{}, err
		}
		offS = math.Min(offS, off)
		on, onCPU, err := run(flight.New(flight.Options{}))
		if err != nil {
			return BenchFlightCase{}, err
		}
		onS = math.Min(onS, on)
		switch {
		case offCPU > 0 && onCPU > 0:
			ratios = append(ratios, onCPU/offCPU)
		case off > 0:
			ratios = append(ratios, on/off)
		}
	}
	warmup, measure := opts.Epochs()
	c := BenchFlightCase{Name: name, Epochs: warmup + measure, OffS: offS, OnS: onS}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		c.OverheadFrac = ratios[len(ratios)/2] - 1
	}
	return c, nil
}

// benchFlightSpec names one timed case: a controller and how many simulated
// seconds its measured leg runs.
type benchFlightSpec struct {
	name, controller string
	measureS         float64
}

// BenchFlight measures the flight recorder's epoch-loop overhead: the same
// runs with the recorder off and armed, across a cheap controller (where
// per-epoch harness overhead dominates, the worst case for the recorder)
// and the full OD-RL controller.
func BenchFlight() (BenchFlightReport, error) {
	// Same sizing rationale as BenchMonitor: each timed leg must be a large
	// fraction of a wall-clock second or a 3% delta drowns in scheduler
	// noise, and greedy's nearly-free Decide makes the recorder's per-epoch
	// ring store the largest relative slice it will ever be.
	return benchFlight(15, []benchFlightSpec{
		{"epoch-loop-greedy-64c", "greedy", 40},
		{"epoch-loop-odrl-64c", "od-rl", 25},
	})
}

// benchFlight runs the given cases with the given rep count; the smoke test
// passes a cheap spec so the schema check stays fast under the race
// detector, while the CLI gate keeps the full protocol.
func benchFlight(reps int, specs []benchFlightSpec) (BenchFlightReport, error) {
	rep := BenchFlightReport{HostInfo: hostInfo()}
	base := sim.DefaultOptions()
	base.Workers = 1
	base.WarmupS = 0.5

	for _, tc := range specs {
		opts := base
		opts.MeasureS = tc.measureS
		c, err := benchFlightCase(tc.name, tc.controller, opts, reps)
		if err != nil {
			return rep, fmt.Errorf("bench-flight %s: %w", tc.name, err)
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r BenchFlightReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
