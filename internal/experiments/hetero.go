package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// F17Hetero is an extension experiment: a heterogeneous (big.LITTLE) chip
// under a power cap. Half the cores are wide/power-hungry, half are
// efficient; controllers are not told which is which. A uniform capper
// (PID, static) must pick one level for very different silicon; per-core
// policies can run the little cores fast (cheap) and modulate the big
// ones — this is the thread-mapping-free slice of the Procrustes-style
// heterogeneous power-allocation problem.
func F17Hetero(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "maxbips", "steepest-drop", "pid", "greedy", "static"}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
	}

	t := Table{
		ID:     "F17",
		Title:  fmt.Sprintf("heterogeneous big.LITTLE chip at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"controller", "BIPS", "mean(W)", "over(J)", "BIPS/W", "big-lvl", "little-lvl"},
		Notes: []string{
			"half big cores (1.4x IPC, 1.7x Ceff), half little (0.7x IPC, 0.45x Ceff); types hidden",
			"big-lvl / little-lvl: mean final VF level per core class",
		},
	}

	for _, name := range names {
		opts := sim.DefaultOptions()
		opts.Cores = cfg.Cores
		opts.BudgetW = cfg.BudgetW
		opts.WarmupS = cfg.WarmupS
		opts.MeasureS = cfg.MeasureS
		opts.Seed = cfg.Seed
		opts.BigLittle = true
		env, err := sim.EnvFor(opts)
		if err != nil {
			return Table{}, err
		}
		c, err := sim.NewController(name, env)
		if err != nil {
			return Table{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return Table{}, err
		}

		// Final-level means per class: big cores are the left half of
		// each grid row (mirroring the assignment in sim.NewChip).
		w, _, err := sim.GridFor(cfg.Cores)
		if err != nil {
			return Table{}, err
		}
		var bigSum, littleSum float64
		var bigN, littleN int
		for i, l := range res.FinalLevels {
			if i%w < w/2 {
				bigSum += float64(l)
				bigN++
			} else {
				littleSum += float64(l)
				littleN++
			}
		}
		s := res.Summary
		t.Rows = append(t.Rows, []string{
			name, cell(s.BIPS()), cell(s.MeanW), cell(s.OverJ), cell(s.EnergyEff()),
			cell(bigSum / float64(bigN)), cell(littleSum / float64(littleN)),
		})
	}
	return t, nil
}
