package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/stats"
)

// F15Seeds is an extension experiment: statistical robustness. Every other
// table reports a single seeded realisation (exactly reproducible); this
// one re-runs the headline comparison over several independent seeds —
// fresh workload realisations, sensor noise and exploration streams — and
// reports mean ± 95% confidence interval, demonstrating the orderings are
// not artifacts of one lucky seed.
func F15Seeds(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	nSeeds := 5
	names := []string{"od-rl", "maxbips", "pid"}
	if cfg.Quick {
		nSeeds = 2
		names = []string{"od-rl", "pid"}
	}

	t := Table{
		ID:     "F15",
		Title:  fmt.Sprintf("seed robustness over %d seeds at %.0f W (extension)", nSeeds, cfg.BudgetW),
		Header: []string{"controller", "BIPS", "±95%", "over(J)", "±95%", "BIPS/W", "±95%"},
		Notes: []string{
			"each seed is an independent workload/noise/exploration realisation",
			"orderings must hold beyond the CI overlap for the reproduction to be robust",
		},
	}

	// Every (controller, seed) pair is an independent realisation; fan the
	// full grid out across cfg.Workers and reduce per controller afterwards
	// in seed order, so the CI arithmetic sees the same float sequence for
	// any worker count.
	summaries, err := par.MapErr(cfg.Workers, len(names)*nSeeds, func(i int) (metrics.Summary, error) {
		name, s := names[i/nSeeds], i%nSeeds
		opts := cfg.runOpts()
		opts.Seed = cfg.Seed + uint64(s)*1000
		env, err := sim.EnvFor(opts)
		if err != nil {
			return metrics.Summary{}, err
		}
		env.Seed = opts.Seed
		env.Workers = cfg.Workers
		c, err := sim.NewController(name, env)
		if err != nil {
			return metrics.Summary{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return metrics.Summary{}, err
		}
		return res.Summary, nil
	})
	if err != nil {
		return Table{}, err
	}
	for ni, name := range names {
		var bips, over, eff []float64
		for s := 0; s < nSeeds; s++ {
			sum := summaries[ni*nSeeds+s]
			bips = append(bips, sum.BIPS())
			over = append(over, sum.OverJ)
			eff = append(eff, sum.EnergyEff())
		}
		t.Rows = append(t.Rows, []string{
			name,
			cell(stats.Mean(bips)), cell(stats.CI95(bips)),
			cell(stats.Mean(over)), cell(stats.CI95(over)),
			cell(stats.Mean(eff)), cell(stats.CI95(eff)),
		})
	}
	return t, nil
}
