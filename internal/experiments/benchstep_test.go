package experiments

import (
	"bytes"
	"testing"

	"repro/internal/manycore"
)

// TestBenchStepCaseMeasures runs one tiny paired measurement and checks
// both kernels were timed and the ratio computed. The epoch count is far
// too small for the numbers to mean anything — this pins the harness, not
// the throughput (the gate lives in `make bench-step`).
func TestBenchStepCaseMeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	c, err := benchStepCase("raw-steady-16", 16, true, false, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.EpochsPerSec <= 0 || c.ReferenceEpochsPerSec <= 0 || c.Speedup <= 0 {
		t.Fatalf("unmeasured case %+v", c)
	}
	if c.Cores != 16 || !c.Raw || c.Churn {
		t.Fatalf("case shape lost: %+v", c)
	}
}

// TestBenchStepChurnPaired drives both kernels through the identical
// churn schedule on identically-built chips and requires bit-identical
// telemetry at the end — the paired-work property the throughput
// comparison depends on.
func TestBenchStepChurnPaired(t *testing.T) {
	run := func(reference bool) manycore.Telemetry {
		chip, err := benchStepChip(16, true)
		if err != nil {
			t.Fatal(err)
		}
		defer chip.Close()
		levels := chip.Config().VF.Levels()
		var tel manycore.Telemetry
		for epoch := 0; epoch < 64; epoch++ {
			if reference {
				chip.ReferenceStepInto(1e-3, &tel)
			} else {
				chip.StepInto(1e-3, &tel)
			}
			for c := epoch % 8; c < 16; c += 8 {
				chip.SetLevel(c, (chip.Level(c)+1)%levels)
			}
		}
		return tel
	}
	soa, ref := run(false), run(true)
	if soa.TruePowerW != ref.TruePowerW || soa.ChipPowerW != ref.ChipPowerW {
		t.Fatalf("kernels diverged under churn: soa %+v vs ref %+v",
			soa.TruePowerW, ref.TruePowerW)
	}
	for i := range soa.Cores {
		if soa.Cores[i] != ref.Cores[i] {
			t.Fatalf("core %d telemetry diverged:\nsoa %+v\nref %+v",
				i, soa.Cores[i], ref.Cores[i])
		}
	}
}

// TestBenchStepReportJSON checks the report serialises with the gate
// verdict the Makefile's awk pass greps for.
func TestBenchStepReportJSON(t *testing.T) {
	rep := BenchStepReport{
		HostInfo: hostInfo(),
		Cases: []BenchStepCase{{
			Name: "raw-steady-256", Cores: 256, Raw: true,
			EpochsPerSec: 10, ReferenceEpochsPerSec: 2, Speedup: 5,
		}},
		Gate: BenchStepGate{
			Case: "raw-steady-256", MinSpeedup: BenchStepMinSpeedup,
			Speedup: 5, Pass: true,
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"epochs_per_sec"`, `"min_speedup"`, `"pass": true`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("report JSON missing %s:\n%s", want, buf.String())
		}
	}
}
