package experiments

import (
	"fmt"

	"repro/internal/ctrl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/sim"
)

// windowRow is one learning-window measurement of a windowed run.
type windowRow struct {
	fromS, toS float64
	meanW      float64
	overJ      float64
	overTimeS  float64
	bips       float64
	// convFrac is the share of live agents converged by the window's end
	// (meaningful only when a learn.Run was attached).
	convFrac float64
}

// windowedRun drives one controller from simulated time zero and reports
// per-window metrics — the learning-curve harness shared by F6 and F12.
// When lr is non-nil the controller must already stream into it (via
// ctrl.LearnStreamer); each window then also records the cumulative
// converged-agent fraction at its close.
func windowedRun(cfg Config, c ctrl.Controller, lr *learn.Run, totalS, windowS float64) ([]windowRow, error) {
	opts := sim.DefaultOptions()
	opts.Cores = cfg.Cores
	opts.BudgetW = cfg.BudgetW
	opts.Seed = cfg.Seed
	opts.Workers = cfg.Workers
	chip, _, err := sim.NewChip(opts)
	if err != nil {
		return nil, err
	}

	out := make([]int, cfg.Cores)
	epochs := int(totalS / opts.EpochS)
	windowEpochs := int(windowS / opts.EpochS)
	var rows []windowRow
	var winEnergy, winOverJ, winOverT float64
	winInstr := chip.Instructions()
	for e := 0; e < epochs; e++ {
		tel := chip.Step(opts.EpochS)
		c.Decide(&tel, cfg.BudgetW, out)
		for i, l := range out {
			chip.SetLevel(i, l)
		}
		winEnergy += tel.TruePowerW * opts.EpochS
		if tel.TruePowerW > cfg.BudgetW {
			winOverJ += (tel.TruePowerW - cfg.BudgetW) * opts.EpochS
			winOverT += opts.EpochS
		}
		if (e+1)%windowEpochs == 0 {
			row := windowRow{
				fromS:     float64(e+1-windowEpochs) * opts.EpochS,
				toS:       float64(e+1) * opts.EpochS,
				meanW:     winEnergy / windowS,
				overJ:     winOverJ,
				overTimeS: winOverT,
				bips:      (chip.Instructions() - winInstr) / windowS / 1e9,
			}
			if lr != nil {
				row.convFrac = lr.Summarize(false).ConvergedFrac
			}
			rows = append(rows, row)
			winEnergy, winOverJ, winOverT = 0, 0, 0
			winInstr = chip.Instructions()
		}
	}
	return rows, nil
}

// F6Convergence reproduces the RL learning-curve figure: windowed overshoot,
// mean power and throughput of OD-RL from a cold start. Overshoot should
// decay toward zero as exploration anneals while throughput holds.
func F6Convergence(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	totalS := 10.0
	windowS := 1.0
	if cfg.Quick {
		totalS, windowS = 2.0, 0.25
	}
	env := sim.DefaultEnv(cfg.Cores)
	env.Seed = cfg.Seed
	c, err := sim.NewController("od-rl", env)
	if err != nil {
		return Table{}, err
	}
	// Attach learning introspection so each window also reports how much of
	// the policy has converged — the "why" behind the decaying overshoot.
	lrn := learn.New(learn.Options{})
	var lr *learn.Run
	if ls, ok := c.(ctrl.LearnStreamer); ok {
		lr = lrn.BeginRun(obs.RunMeta{Controller: "od-rl", Cores: cfg.Cores, BudgetW: cfg.BudgetW, Seed: cfg.Seed}, nil, 0)
		ls.SetLearnSink(lr)
		defer ls.SetLearnSink(nil)
	}
	rows, err := windowedRun(cfg, c, lr, totalS, windowS)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:     "F6",
		Title:  fmt.Sprintf("OD-RL convergence from cold start at %.0f W", cfg.BudgetW),
		Header: []string{"window(s)", "mean(W)", "over(J)", "over-time(%)", "BIPS", "conv(%)"},
		Notes:  []string{"one row per learning window; exploration anneals over the run"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f-%.2f", r.fromS, r.toS),
			cell(r.meanW), cell(r.overJ), cell(100 * r.overTimeS / windowS), cell(r.bips),
			cell(100 * r.convFrac),
		})
	}
	if lr != nil {
		if s := lr.Summarize(false); s.Converged > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"conv(%%) = agents greedy-stable with settled TD error; %d/%d converged, median %d epochs",
				s.Converged, s.LiveAgents, s.EpochsToConvergeP50))
		}
	}
	return t, nil
}

// F7BudgetSweep reproduces the budget-sensitivity figure: throughput and
// overshoot across cap levels from heavily constrained to unconstrained.
// Gaps between controllers are largest at tight caps and vanish as the cap
// approaches the chip's unconstrained draw.
func F7BudgetSweep(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	budgets := []float64{35, 45, 55, 70, 85, 100, 120}
	if cfg.Quick {
		budgets = []float64{45, 85}
	}
	names := []string{"od-rl", "maxbips", "pid", "greedy"}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
	}

	t := Table{
		ID:     "F7",
		Title:  "budget sensitivity (mix workload)",
		Header: []string{"budget(W)"},
	}
	for _, n := range names {
		t.Header = append(t.Header, n+" BIPS", n+" over(J)")
	}

	// The (budget × controller) grid is a set of independent runs; fan it
	// out across cfg.Workers and assemble rows from index-addressed slots.
	nn := len(names)
	summaries, err := par.MapErr(cfg.Workers, len(budgets)*nn, func(i int) (metrics.Summary, error) {
		b, name := budgets[i/nn], names[i%nn]
		opts := cfg.runOpts()
		opts.BudgetW = b
		c, err := sim.NewController(name, cfg.env(cfg.Cores))
		if err != nil {
			return metrics.Summary{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return metrics.Summary{}, err
		}
		return res.Summary, nil
	})
	if err != nil {
		return Table{}, err
	}
	for bi, b := range budgets {
		row := []string{cell(b)}
		for ni := range names {
			s := summaries[bi*nn+ni]
			row = append(row, cell(s.BIPS()), cell(s.OverJ))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// F8CoreScaling reproduces the system-scalability figure: throughput as the
// chip grows under a fixed per-core budget. The MaxBIPS knapsack is omitted
// above 256 cores — its decision latency there is the point of F5, not F8.
func F8CoreScaling(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	coreCounts := []int{16, 64, 144, 256}
	if cfg.Quick {
		coreCounts = []int{16, 36}
	}
	names := []string{"od-rl", "steepest-drop", "pid", "greedy"}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
	}
	const perCoreW = 0.9

	t := Table{
		ID:     "F8",
		Title:  fmt.Sprintf("throughput scaling at %.1f W per core", perCoreW),
		Header: []string{"cores", "budget(W)"},
	}
	for _, n := range names {
		t.Header = append(t.Header, n+" BIPS", n+" BIPS/core")
	}

	// Fan the (core count × controller) grid out across cfg.Workers; each
	// run also shards its own per-core loops once the chip is large enough.
	nn := len(names)
	summaries, err := par.MapErr(cfg.Workers, len(coreCounts)*nn, func(i int) (metrics.Summary, error) {
		n, name := coreCounts[i/nn], names[i%nn]
		opts := cfg.runOpts()
		opts.Cores = n
		opts.BudgetW = perCoreW*float64(n) + power.Default().UncoreW
		c, err := sim.NewController(name, cfg.env(n))
		if err != nil {
			return metrics.Summary{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return metrics.Summary{}, err
		}
		return res.Summary, nil
	})
	if err != nil {
		return Table{}, err
	}
	for ci, n := range coreCounts {
		budget := perCoreW*float64(n) + power.Default().UncoreW
		row := []string{fmt.Sprintf("%d", n), cell(budget)}
		for ni := range names {
			s := summaries[ci*nn+ni]
			row = append(row, cell(s.BIPS()), cell(s.BIPS()/float64(n)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
