package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/vf"
)

// F9Ablation exercises the design choices DESIGN.md calls out: the global
// reallocation layer (on/off) and the overshoot penalty λ. Reallocation
// should buy throughput on imbalanced (mix) workloads; λ trades throughput
// against compliance.
func F9Ablation(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	t := Table{
		ID:     "F9",
		Title:  fmt.Sprintf("OD-RL ablations at %.0f W (mix workload)", cfg.BudgetW),
		Header: []string{"variant", "BIPS", "mean(W)", "over(J)", "over-time(%)", "BIPS/W"},
	}

	run := func(label string, build func() (ctrl.Controller, error)) error {
		c, err := build()
		if err != nil {
			return err
		}
		opts := sim.DefaultOptions()
		opts.Cores = cfg.Cores
		opts.BudgetW = cfg.BudgetW
		opts.WarmupS = cfg.WarmupS
		opts.MeasureS = cfg.MeasureS
		opts.Seed = cfg.Seed
		res, err := sim.Run(opts, c)
		if err != nil {
			return err
		}
		s := res.Summary
		t.Rows = append(t.Rows, []string{
			label, cell(s.BIPS()), cell(s.MeanW), cell(s.OverJ),
			cell(100 * s.OverTimeFrac()), cell(s.EnergyEff()),
		})
		return nil
	}

	// Baseline and no-reallocation variants via the factory.
	for _, name := range []string{"od-rl", "od-rl-norealloc"} {
		name := name
		if err := run(name, func() (ctrl.Controller, error) {
			env := sim.DefaultEnv(cfg.Cores)
			env.Seed = cfg.Seed
			return sim.NewController(name, env)
		}); err != nil {
			return Table{}, err
		}
	}

	// λ sweep, including λ=0 (no overshoot penalty at all).
	lambdas := []float64{0.5, 1, 2, 8}
	if cfg.Quick {
		lambdas = []float64{0.5}
	}
	for _, lambda := range lambdas {
		lambda := lambda
		if err := run(fmt.Sprintf("od-rl λ=%g", lambda), func() (ctrl.Controller, error) {
			c := core.DefaultConfig()
			c.Lambda = lambda
			c.Seed = cfg.Seed
			return core.New(cfg.Cores, vf.Default(), sim.DefaultEnv(cfg.Cores).Power, c)
		}); err != nil {
			return Table{}, err
		}
	}

	// SARSA variant: on-policy learning of the same controller.
	if err := run("od-rl sarsa", func() (ctrl.Controller, error) {
		c := core.DefaultConfig()
		c.Algorithm = rl.SARSA
		c.Seed = cfg.Seed
		return core.New(cfg.Cores, vf.Default(), sim.DefaultEnv(cfg.Cores).Power, c)
	}); err != nil {
		return Table{}, err
	}

	// EMA-smoothed reallocation (the F14-motivated fix).
	if err := run("od-rl ema-realloc", func() (ctrl.Controller, error) {
		c := core.DefaultConfig()
		c.ReallocEMA = 0.05
		c.Seed = cfg.Seed
		return core.New(cfg.Cores, vf.Default(), sim.DefaultEnv(cfg.Cores).Power, c)
	}); err != nil {
		return Table{}, err
	}

	// Tile-coded linear function approximation instead of tables.
	if err := run("od-rl tile-coding", func() (ctrl.Controller, error) {
		c := core.DefaultConfig()
		c.FunctionApprox = true
		c.TraceLambda = 0.7
		c.Seed = cfg.Seed
		return core.New(cfg.Cores, vf.Default(), sim.DefaultEnv(cfg.Cores).Power, c)
	}); err != nil {
		return Table{}, err
	}

	t.Notes = append(t.Notes,
		"norealloc freezes equal per-core budgets; realloc should win BIPS on imbalanced mixes",
		"λ raises compliance at the cost of throughput",
	)
	return t, nil
}
