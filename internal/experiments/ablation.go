package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/par"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/vf"
)

// F9Ablation exercises the design choices DESIGN.md calls out: the global
// reallocation layer (on/off) and the overshoot penalty λ. Reallocation
// should buy throughput on imbalanced (mix) workloads; λ trades throughput
// against compliance.
func F9Ablation(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	t := Table{
		ID:     "F9",
		Title:  fmt.Sprintf("OD-RL ablations at %.0f W (mix workload)", cfg.BudgetW),
		Header: []string{"variant", "BIPS", "mean(W)", "over(J)", "over-time(%)", "BIPS/W"},
	}

	// odrlVariant builds an OD-RL controller from a tweaked core config.
	odrlVariant := func(tweak func(*core.Config)) func() (ctrl.Controller, error) {
		return func() (ctrl.Controller, error) {
			c := core.DefaultConfig()
			c.Seed = cfg.Seed
			c.Workers = cfg.Workers
			tweak(&c)
			return core.New(cfg.Cores, vf.Default(), sim.DefaultEnv(cfg.Cores).Power, c)
		}
	}

	// Collect every variant into an ordered list first, then fan the
	// independent runs out across cfg.Workers; rows are appended in variant
	// order from index-addressed results, so the table is identical for any
	// worker count.
	type variant struct {
		label string
		build func() (ctrl.Controller, error)
	}
	var variants []variant

	// Baseline and no-reallocation variants via the factory.
	for _, name := range []string{"od-rl", "od-rl-norealloc"} {
		name := name
		variants = append(variants, variant{name, func() (ctrl.Controller, error) {
			return sim.NewController(name, cfg.env(cfg.Cores))
		}})
	}

	// λ sweep, including λ=0 (no overshoot penalty at all).
	lambdas := []float64{0.5, 1, 2, 8}
	if cfg.Quick {
		lambdas = []float64{0.5}
	}
	for _, lambda := range lambdas {
		lambda := lambda
		variants = append(variants, variant{
			fmt.Sprintf("od-rl λ=%g", lambda),
			odrlVariant(func(c *core.Config) { c.Lambda = lambda }),
		})
	}

	// SARSA variant: on-policy learning of the same controller.
	variants = append(variants, variant{
		"od-rl sarsa",
		odrlVariant(func(c *core.Config) { c.Algorithm = rl.SARSA }),
	})

	// EMA-smoothed reallocation (the F14-motivated fix).
	variants = append(variants, variant{
		"od-rl ema-realloc",
		odrlVariant(func(c *core.Config) { c.ReallocEMA = 0.05 }),
	})

	// Tile-coded linear function approximation instead of tables.
	variants = append(variants, variant{
		"od-rl tile-coding",
		odrlVariant(func(c *core.Config) {
			c.FunctionApprox = true
			c.TraceLambda = 0.7
		}),
	})

	rows, err := par.MapErr(cfg.Workers, len(variants), func(i int) ([]string, error) {
		v := variants[i]
		c, err := v.build()
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(cfg.runOpts(), c)
		if err != nil {
			return nil, err
		}
		s := res.Summary
		return []string{
			v.label, cell(s.BIPS()), cell(s.MeanW), cell(s.OverJ),
			cell(100 * s.OverTimeFrac()), cell(s.EnergyEff()),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows

	t.Notes = append(t.Notes,
		"norealloc freezes equal per-core budgets; realloc should win BIPS on imbalanced mixes",
		"λ raises compliance at the cost of throughput",
	)
	return t, nil
}
