package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the golden files from the current code instead of
// comparing against them: `go test ./internal/experiments/ -run Golden -update`.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenConfig pins every axis that feeds the snapshot: Quick fidelity,
// sequential workers (results are bit-identical for any worker count, so
// this is belt-and-braces, not a requirement).
func goldenConfig() Config {
	return Config{Quick: true, Workers: 1}
}

// maskColumns replaces every cell of the named columns with "-". Wall-clock
// columns (decision latency, speedup) are real measurements and cannot be
// golden-tested; the table's structure and its deterministic columns can.
func maskColumns(t Table, cols ...string) Table {
	masked := map[int]bool{}
	for i, h := range t.Header {
		for _, c := range cols {
			if h == c {
				masked[i] = true
			}
		}
	}
	rows := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		out := append([]string(nil), row...)
		for i := range out {
			if masked[i] {
				out[i] = "-"
			}
		}
		rows[r] = out
	}
	t.Rows = rows
	return t
}

// checkGolden renders the table and compares it byte-for-byte against
// testdata/<name>.golden, rewriting the file under -update.
func checkGolden(t *testing.T, name string, tbl Table) {
	t.Helper()
	var b strings.Builder
	if _, err := tbl.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden snapshot.\n--- want\n%s--- got\n%s\nIf the change is intentional, regenerate with -update.",
			path, want, got)
	}
}

// TestGoldenF1 pins the cap-event table: any refactor that shifts the
// reproduced numbers (workload realisation, stepping order, controller
// decisions) trips this before it can silently land.
func TestGoldenF1(t *testing.T) {
	tbl, err := F1PowerTrace(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "f1", tbl)
}

// TestGoldenSweep pins the F2–F4 family, which all reduce the same
// benchmark × controller sweep.
func TestGoldenSweep(t *testing.T) {
	resetSweepCache()
	for _, tc := range []struct {
		name string
		run  Runner
	}{
		{"f2", F2Overshoot},
		{"f3", F3ThroughputPerOverEnergy},
		{"f4", F4EnergyEfficiency},
	} {
		tbl, err := tc.run(goldenConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.name, tbl)
	}
}

// TestGoldenF5 pins F5's structure and modelled columns. The measured
// latency and speedup columns are wall-clock and are masked out; the NoC
// gather latency is modelled and must stay exact.
func TestGoldenF5(t *testing.T) {
	tbl, err := F5ControllerScaling(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl = maskColumns(tbl,
		"od-rl(µs)", "maxbips(µs)", "steepest-drop(µs)", "pid(µs)", "speedup")
	checkGolden(t, "f5", tbl)
}
