package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteMarkdown renders a table as GitHub-flavoured markdown.
func (t Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ReportOptions scope a full report run.
type ReportOptions struct {
	Config Config
	// IDs selects which experiments to include; empty means all.
	IDs []string
	// SkipVerify omits the claim-verification section.
	SkipVerify bool
	// Elapsed, when non-nil, is called with each experiment's runtime
	// (used for progress output by the CLI).
	Elapsed func(id string, d time.Duration)
}

// WriteReport runs the selected experiments and emits a complete markdown
// report: claim verdicts first, then every table. This is the one-command
// path from a clean checkout to a reviewable reproduction record.
func WriteReport(w io.Writer, opts ReportOptions) error {
	cfg := opts.Config.normalized()

	fmt.Fprintf(w, "# OD-RL reproduction report\n\n")
	fmt.Fprintf(w, "Configuration: %d cores, %.0f W budget, seed %d", cfg.Cores, cfg.BudgetW, cfg.Seed)
	if cfg.Quick {
		fmt.Fprintf(w, " (quick mode)")
	}
	fmt.Fprintf(w, ".\n\n")

	if !opts.SkipVerify {
		fmt.Fprintf(w, "## Claim verification\n\n")
		results, err := VerifyClaims(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "| claim | paper | measured | verdict |")
		fmt.Fprintln(w, "| --- | --- | --- | --- |")
		for _, r := range results {
			verdict := "PASS"
			if !r.Pass {
				verdict = "**FAIL**"
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s |\n", r.ID, r.Claim, r.Measured, verdict)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "## Experiments\n\n")
	want := opts.IDs
	for _, e := range All() {
		if len(want) > 0 {
			found := false
			for _, id := range want {
				if id == e.ID {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		start := time.Now() //odrl:allow wallclock progress reporting only; simulated results never read it
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if opts.Elapsed != nil {
			opts.Elapsed(e.ID, time.Since(start)) //odrl:allow wallclock progress reporting only; simulated results never read it
		}
		if err := tbl.WriteMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}
