package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func quickCfg() Config {
	c := Default()
	c.Quick = true
	return c
}

func mustRun(t *testing.T, id string) Table {
	t.Helper()
	run, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tbl.ID != id {
		t.Fatalf("table reports ID %q, want %q", tbl.ID, id)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("%s row %d has %d cells for %d columns", id, i, len(row), len(tbl.Header))
		}
	}
	return tbl
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			t.Fatal("registry entry incomplete")
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		ids[e.ID] = true
	}
	want := []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10"}
	for _, id := range want {
		if !ids[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

func TestTableWriteTo(t *testing.T) {
	tbl := Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"X", "demo", "a", "22", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestT1Platform(t *testing.T) {
	tbl := mustRun(t, "T1")
	joined := ""
	for _, r := range tbl.Rows {
		joined += strings.Join(r, " ") + "\n"
	}
	for _, want := range []string{"cores", "VF levels", "GHz", "uncore"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("T1 missing %q:\n%s", want, joined)
		}
	}
}

func TestT2Workloads(t *testing.T) {
	tbl := mustRun(t, "T2")
	if len(tbl.Rows) != 10 {
		t.Fatalf("T2 has %d rows, want 10 benchmarks", len(tbl.Rows))
	}
	// canneal must be more memory-bound than swaptions.
	var canneal, swaptions float64
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("bad mem-bound cell %q", r[3])
		}
		switch r[0] {
		case "canneal":
			canneal = v
		case "swaptions":
			swaptions = v
		}
	}
	if canneal <= swaptions {
		t.Fatalf("canneal (%v) should be more memory-bound than swaptions (%v)", canneal, swaptions)
	}
}

func TestF1PowerTrace(t *testing.T) {
	cfg := quickCfg()
	cfg.Controllers = []string{"pid", "static"}
	tbl, err := F1PowerTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("F1 has %d rows", len(tbl.Rows))
	}
}

func TestF2F3F4ShareSweep(t *testing.T) {
	cfg := quickCfg()
	cfg.Controllers = []string{"od-rl", "pid"}
	f2, err := F2Overshoot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := F3ThroughputPerOverEnergy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := F4EnergyEfficiency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	benches := len(cfg.normalized().Benchmarks)
	if len(f2.Rows) != benches+1 { // per-benchmark rows + TOTAL
		t.Fatalf("F2 rows = %d, want %d", len(f2.Rows), benches+1)
	}
	if f2.Rows[len(f2.Rows)-1][0] != "TOTAL" {
		t.Fatal("F2 missing TOTAL row")
	}
	if len(f3.Rows) != benches {
		t.Fatalf("F3 rows = %d, want %d", len(f3.Rows), benches)
	}
	if len(f4.Rows) != benches+1 { // per-benchmark rows + GEOMEAN
		t.Fatalf("F4 rows = %d, want %d", len(f4.Rows), benches+1)
	}
	if f4.Rows[len(f4.Rows)-1][0] != "GEOMEAN" {
		t.Fatal("F4 missing GEOMEAN row")
	}
}

func TestF5ControllerScaling(t *testing.T) {
	cfg := quickCfg()
	tbl, err := F5ControllerScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F5 has %d rows, want 2", len(tbl.Rows))
	}
	// od-rl column (index 2) must report positive latency.
	v, err := strconv.ParseFloat(tbl.Rows[0][2], 64)
	if err != nil || v <= 0 {
		t.Fatalf("bad od-rl latency cell %q", tbl.Rows[0][2])
	}
}

func TestF6Convergence(t *testing.T) {
	tbl := mustRun(t, "F6")
	if len(tbl.Rows) < 4 {
		t.Fatalf("F6 has %d windows", len(tbl.Rows))
	}
}

func TestF7BudgetSweep(t *testing.T) {
	tbl := mustRun(t, "F7")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F7 has %d rows", len(tbl.Rows))
	}
	// Throughput must rise with budget for od-rl (column 1).
	lo, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	hi, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if hi <= lo {
		t.Fatalf("od-rl BIPS did not grow with budget: %v -> %v", lo, hi)
	}
}

func TestF8CoreScaling(t *testing.T) {
	tbl := mustRun(t, "F8")
	// Total throughput must grow with core count for od-rl (column 2).
	lo, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	hi, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
	if hi <= lo {
		t.Fatalf("od-rl BIPS did not grow with cores: %v -> %v", lo, hi)
	}
}

func TestF9Ablation(t *testing.T) {
	tbl := mustRun(t, "F9")
	labels := map[string]bool{}
	for _, r := range tbl.Rows {
		labels[r[0]] = true
	}
	for _, want := range []string{"od-rl", "od-rl-norealloc", "od-rl sarsa"} {
		if !labels[want] {
			t.Fatalf("F9 missing variant %q", want)
		}
	}
}

func TestF10Thermal(t *testing.T) {
	tbl := mustRun(t, "F10")
	// Static column temperature (column 3) must not decrease with budget.
	lo, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	hi, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][3], 64)
	if hi < lo {
		t.Fatalf("static peak temperature fell with a larger budget: %v -> %v", lo, hi)
	}
}

func TestF11Variation(t *testing.T) {
	tbl := mustRun(t, "F11")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F11 has %d rows, want 2", len(tbl.Rows))
	}
	// First column is sigma; rows must cover 0 and a positive sigma.
	if tbl.Rows[0][0] != "0" {
		t.Fatalf("first sigma = %q, want 0", tbl.Rows[0][0])
	}
}

func TestF12WarmStart(t *testing.T) {
	tbl := mustRun(t, "F12")
	if len(tbl.Rows) < 2 {
		t.Fatalf("F12 has %d windows", len(tbl.Rows))
	}
	// Warm BIPS in the first window should be at least cold BIPS (the
	// warm policy starts converged; cold starts exploring).
	cold, err1 := strconv.ParseFloat(tbl.Rows[0][1], 64)
	warm, err2 := strconv.ParseFloat(tbl.Rows[0][4], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad cells %q %q", tbl.Rows[0][1], tbl.Rows[0][4])
	}
	if warm < cold*0.95 {
		t.Fatalf("warm first-window BIPS %v well below cold %v", warm, cold)
	}
	// The convergence columns must parse as valid percentages.
	for _, col := range []int{3, 6} {
		for _, r := range tbl.Rows {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil || v < 0 || v > 100 {
				t.Fatalf("bad conv(%%) cell %q", r[col])
			}
		}
	}
}

func TestF13Islands(t *testing.T) {
	tbl := mustRun(t, "F13")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F13 has %d rows, want 2", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "per-core" || tbl.Rows[1][0] != "chip-wide" {
		t.Fatalf("granularity labels wrong: %v", tbl.Rows)
	}
}

func TestF14Barrier(t *testing.T) {
	tbl := mustRun(t, "F14")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F14 has %d rows, want 2", len(tbl.Rows))
	}
	// Supersteps must actually happen for every controller.
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil || v <= 0 {
			t.Fatalf("controller %s made no progress: %q", r[0], r[1])
		}
	}
}

func TestVerifyClaims(t *testing.T) {
	results, err := VerifyClaims(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d claims, want 4", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || r.Claim == "" || r.Measured == "" {
			t.Fatalf("incomplete claim result %+v", r)
		}
		seen[r.ID] = true
	}
	for _, id := range []string{"C1", "C2", "C3", "C4"} {
		if !seen[id] {
			t.Fatalf("missing claim %s", id)
		}
	}
}

func TestF15Seeds(t *testing.T) {
	tbl := mustRun(t, "F15")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F15 has %d rows, want 2", len(tbl.Rows))
	}
	// CI cells must parse as non-negative numbers.
	for _, r := range tbl.Rows {
		for _, col := range []int{2, 4, 6} {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil || v < 0 {
				t.Fatalf("bad CI cell %q", r[col])
			}
		}
	}
}

func TestF16Server(t *testing.T) {
	tbl := mustRun(t, "F16")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F16 has %d rows, want 2", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		jobs, err := strconv.ParseFloat(r[1], 64)
		if err != nil || jobs <= 0 {
			t.Fatalf("controller %s completed no jobs: %q", r[0], r[1])
		}
	}
}

func TestF17Hetero(t *testing.T) {
	tbl := mustRun(t, "F17")
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick F17 has %d rows, want 2", len(tbl.Rows))
	}
	// PID must command identical mean levels for both classes (uniform),
	// within rounding.
	for _, r := range tbl.Rows {
		if r[0] == "pid" && r[5] != r[6] {
			t.Fatalf("pid levels differ across classes: %q vs %q", r[5], r[6])
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	tbl := Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### X — demo", "| a | b |", "| 1 | 2 |", "> n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	var ran []string
	err := WriteReport(&buf, ReportOptions{
		Config:     quickCfg(),
		IDs:        []string{"T1", "T2"},
		SkipVerify: true,
		Elapsed:    func(id string, _ time.Duration) { ran = append(ran, id) },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# OD-RL reproduction report", "### T1", "### T2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Claim verification") {
		t.Fatal("verification section present despite SkipVerify")
	}
	if len(ran) != 2 {
		t.Fatalf("Elapsed called %d times, want 2", len(ran))
	}
}

func TestWriteReportWithVerification(t *testing.T) {
	var buf bytes.Buffer
	err := WriteReport(&buf, ReportOptions{Config: quickCfg(), IDs: []string{"T1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Claim verification") {
		t.Fatal("verification section missing")
	}
}

func TestBenchmarkSweepErrorNotCached(t *testing.T) {
	resetSweepCache()
	cfg := quickCfg()
	cfg.Controllers = []string{"no-such-controller"}
	if _, err := benchmarkSweep(cfg); err == nil {
		t.Fatal("expected error for unknown controller")
	}
	// The failed entry must be evicted — sweepKey does not include the
	// controller list, so a cached failure would otherwise poison this
	// valid call sharing the same key.
	cfg.Controllers = []string{"static"}
	if _, err := benchmarkSweep(cfg); err != nil {
		t.Fatalf("sweep after failed sweep with same key: %v", err)
	}
}

func TestBenchmarkSweepMemoised(t *testing.T) {
	cfg := quickCfg()
	cfg.Controllers = []string{"static"}
	a, err := benchmarkSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	b, err := benchmarkSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("second sweep was not served from the cache")
	}
	for bench := range a {
		if a[bench]["static"] != b[bench]["static"] {
			t.Fatal("cache returned different summaries")
		}
	}
}
