package experiments

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/vf"
	"repro/internal/workload"
)

// T1Platform renders the system configuration table: core grid, VF levels,
// power and thermal constants — the fixed context of every experiment.
func T1Platform(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	w, h, err := sim.GridFor(cfg.Cores)
	if err != nil {
		return Table{}, err
	}
	tbl := vf.Default()
	pp := power.Default()
	tp := thermal.Default()

	t := Table{
		ID:     "T1",
		Title:  "platform configuration",
		Header: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("cores", fmt.Sprintf("%d (%dx%d mesh)", cfg.Cores, w, h))
	add("VF levels", fmt.Sprintf("%d", tbl.Levels()))
	for _, p := range tbl.Points() {
		add(fmt.Sprintf("  L%d", p.Level), fmt.Sprintf("%.2f GHz @ %.3f V", p.FreqHz/1e9, p.VoltageV))
	}
	add("Ceff per core", fmt.Sprintf("%.2g F", pp.CeffF))
	add("leakage @ (Vref,Tref)", fmt.Sprintf("%.2f A @ (%.2f V, %.0f K)", pp.LeakI0A, pp.VrefV, pp.TrefK))
	add("uncore power", fmt.Sprintf("%.1f W", pp.UncoreW))
	add("thermal ambient", fmt.Sprintf("%.0f K", tp.AmbientK))
	add("vertical/lateral G", fmt.Sprintf("%.2f / %.2f W/K", tp.VerticalGWPerK, tp.LateralGWPerK))
	add("control epoch", "1 ms")
	add("chip budget", fmt.Sprintf("%.0f W", cfg.BudgetW))
	add("centralized cadence", "10 epochs (10 ms)")
	return t, nil
}

// T2Workloads characterises every benchmark preset at the mid VF level:
// CPI, MPKI, memory-boundedness, activity and phase volatility.
func T2Workloads(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	mid := vf.Default().Point(vf.Default().Levels() / 2)
	t := Table{
		ID:    "T2",
		Title: fmt.Sprintf("workload characterisation at %.2f GHz", mid.FreqHz/1e9),
		Header: []string{
			"benchmark", "CPI", "MPKI", "mem-bound", "activity", "phase-changes/s",
		},
	}
	dur := 5.0
	if cfg.Quick {
		dur = 1.0
	}
	for _, name := range workload.PresetNames() {
		c, err := workload.Characterize(workload.MustPreset(name), cfg.Seed, dur, mid.FreqHz)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			name, cell(c.MeanCPI), cell(c.MeanMPKI), cell(c.MemBoundedness),
			cell(c.MeanActivity), cell(c.PhaseRatePerS),
		})
	}
	return t, nil
}
