package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/thermal"
)

// F10Thermal validates the TDP context: peak core temperature under power
// capping across budget levels, with the leakage–temperature loop closed.
// Capping the chip's power must cap its temperature; the static design
// point gives the conservative reference.
func F10Thermal(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	budgets := []float64{40, 55, 70, 90, 120}
	if cfg.Quick {
		budgets = []float64{40, 90}
	}
	names := []string{"od-rl", "pid", "static"}
	if cfg.Quick {
		names = []string{"od-rl", "static"}
	}

	t := Table{
		ID:     "F10",
		Title:  "peak temperature under capping (thermal loop closed)",
		Header: []string{"budget(W)"},
		Notes: []string{
			fmt.Sprintf("ambient %.0f K; temperatures in kelvin", thermal.Default().AmbientK),
			"peak temperature must rise monotonically with the cap for budget-tracking controllers",
		},
	}
	for _, n := range names {
		t.Header = append(t.Header, n+" Tmax(K)", n+" mean(W)")
	}

	for _, b := range budgets {
		row := []string{cell(b)}
		for _, name := range names {
			opts := sim.DefaultOptions()
			opts.Cores = cfg.Cores
			opts.BudgetW = b
			opts.WarmupS = cfg.WarmupS
			opts.MeasureS = cfg.MeasureS
			opts.Seed = cfg.Seed
			env := sim.DefaultEnv(cfg.Cores)
			env.Seed = cfg.Seed
			c, err := sim.NewController(name, env)
			if err != nil {
				return Table{}, err
			}
			res, err := sim.Run(opts, c)
			if err != nil {
				return Table{}, err
			}
			row = append(row, cell(res.Summary.MaxTempK), cell(res.Summary.MeanW))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
