package experiments

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/stats"
)

// F1PowerTrace reproduces the power-trace figure: the chip running under a
// 90 W cap that drops to 60 W mid-run (a datacentre cap event). The table
// reports, per controller, the behaviour around the step: peak power after
// the drop, time to settle back under the cap, and the overshoot integral.
// Controller runs are independent and fan out across cfg.Workers.
func F1PowerTrace(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	dropAt := cfg.WarmupS + cfg.MeasureS/3

	t := Table{
		ID:    "F1",
		Title: "power trace around a 90→60 W cap event",
		Header: []string{
			"controller", "mean(W)pre", "peak(W)post", "settle(ms)", "over(J)", "over-time(%)",
		},
		Notes: []string{
			fmt.Sprintf("cap drops at t=%.1fs; settle = first sustained return under cap", dropAt),
		},
	}

	rows, err := par.MapErr(cfg.Workers, len(cfg.Controllers), func(ci int) ([]string, error) {
		name := cfg.Controllers[ci]
		opts := cfg.runOpts()
		opts.BudgetW = 90
		opts.BudgetSchedule = []sim.BudgetStep{{AtS: dropAt, BudgetW: 60}}
		opts.TracePoints = 2000
		c, err := sim.NewController(name, cfg.env(cfg.Cores))
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return nil, err
		}

		var meanPre, peakPost, settleS float64
		nPre := 0
		settled := false
		for _, p := range res.Trace {
			if p.TimeS < dropAt {
				meanPre += p.PowerW
				nPre++
				continue
			}
			if p.PowerW > peakPost {
				peakPost = p.PowerW
			}
			if !settled && p.PowerW <= p.BudgetW {
				settleS = p.TimeS - dropAt
				settled = true
			}
		}
		if nPre > 0 {
			meanPre /= float64(nPre)
		}
		if !settled {
			settleS = -1 // never settled within the window
		}
		return []string{
			name, cell(meanPre), cell(peakPost), cell(settleS * 1e3),
			cell(res.Summary.OverJ), cell(100 * res.Summary.OverTimeFrac()),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// sweepKey identifies one benchmark sweep for the cross-experiment cache:
// F2, F3 and F4 all consume the same per-benchmark runs. Workers is
// deliberately not part of the key — results are bit-identical for any
// worker count, so callers at different -j share one sweep.
type sweepKey struct {
	cores    int
	budgetW  float64
	seed     uint64
	quick    bool
	measureS float64
	// plan is the dereferenced fault plan (zero value when none): faulted
	// and clean sweeps must never share an entry.
	plan fault.Plan
}

// sweepEntry is one memoised sweep. The per-entry Once guarantees exactly
// one goroutine computes the sweep while concurrent F2–F4 callers with the
// same key block and then share the result, instead of duplicating the
// runs or racing on the cache map.
type sweepEntry struct {
	once sync.Once
	val  map[string]map[string]metrics.Summary
	err  error
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[sweepKey]*sweepEntry{}
)

// resetSweepCache drops all memoised sweeps; determinism tests use it to
// force recomputation under different worker counts.
func resetSweepCache() {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	sweepCache = map[sweepKey]*sweepEntry{}
}

// benchmarkSweep runs every controller on every benchmark and returns
// summaries[benchmark][controller], memoised so F2–F4 share one sweep.
// Only successful sweeps stay cached: a failed entry is evicted so a later
// call can retry after a transient error, rather than replaying the cached
// failure for the process lifetime.
func benchmarkSweep(cfg Config) (map[string]map[string]metrics.Summary, error) {
	key := sweepKey{cores: cfg.Cores, budgetW: cfg.BudgetW, seed: cfg.Seed, quick: cfg.Quick, measureS: cfg.MeasureS}
	if cfg.FaultPlan != nil {
		key.plan = *cfg.FaultPlan
	}
	sweepMu.Lock()
	e := sweepCache[key]
	if e == nil {
		e = &sweepEntry{}
		sweepCache[key] = e
	}
	sweepMu.Unlock()
	e.once.Do(func() { e.val, e.err = runBenchmarkSweep(cfg) })
	if e.err != nil {
		sweepMu.Lock()
		if sweepCache[key] == e {
			delete(sweepCache, key)
		}
		sweepMu.Unlock()
	}
	return e.val, e.err
}

// runBenchmarkSweep fans the (benchmark × controller) grid out across
// cfg.Workers goroutines. Each run derives its state purely from
// (cfg.Seed, benchmark, controller), and results land in index-addressed
// slots, so the assembled table is identical for any worker count.
func runBenchmarkSweep(cfg Config) (map[string]map[string]metrics.Summary, error) {
	type job struct{ bench, name string }
	jobs := make([]job, 0, len(cfg.Benchmarks)*len(cfg.Controllers))
	for _, bench := range cfg.Benchmarks {
		for _, name := range cfg.Controllers {
			jobs = append(jobs, job{bench, name})
		}
	}

	summaries, err := par.MapErr(cfg.Workers, len(jobs), func(i int) (metrics.Summary, error) {
		j := jobs[i]
		opts := cfg.runOpts()
		opts.Workload = j.bench
		c, err := sim.NewController(j.name, cfg.env(cfg.Cores))
		if err != nil {
			return metrics.Summary{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return metrics.Summary{}, fmt.Errorf("experiments: %s on %s: %w", j.name, j.bench, err)
		}
		return res.Summary, nil
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]map[string]metrics.Summary, len(cfg.Benchmarks))
	for i, j := range jobs {
		m := out[j.bench]
		if m == nil {
			m = make(map[string]metrics.Summary, len(cfg.Controllers))
			out[j.bench] = m
		}
		m[j.name] = summaries[i]
	}
	return out, nil
}

// F2Overshoot reproduces claim C1: the budget-overshoot integral per
// benchmark and controller, plus OD-RL's reduction versus the worst
// prediction-based baseline.
func F2Overshoot(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	sweep, err := benchmarkSweep(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "F2",
		Title:  fmt.Sprintf("budget overshoot integral (J) at %.0f W", cfg.BudgetW),
		Header: append([]string{"benchmark"}, append(append([]string{}, cfg.Controllers...), "od-rl reduction")...),
		Notes: []string{
			"reduction = 1 − over(od-rl)/over(worst baseline); paper claims up to 98%",
		},
	}
	for _, bench := range cfg.Benchmarks {
		row := []string{bench}
		worst := 0.0
		for _, name := range cfg.Controllers {
			s := sweep[bench][name]
			row = append(row, cell(s.OverJ))
			if name != "od-rl" && s.OverJ > worst {
				worst = s.OverJ
			}
		}
		reduction := 0.0
		if worst > 0 {
			reduction = 1 - sweep[bench]["od-rl"].OverJ/worst
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*reduction))
		t.Rows = append(t.Rows, row)
	}

	// Aggregate row: total overshoot energy across the suite.
	totalRow := []string{"TOTAL"}
	worstTotal, odrlTotal := 0.0, 0.0
	for _, name := range cfg.Controllers {
		sum := 0.0
		for _, bench := range cfg.Benchmarks {
			sum += sweep[bench][name].OverJ
		}
		totalRow = append(totalRow, cell(sum))
		if name == "od-rl" {
			odrlTotal = sum
		} else if sum > worstTotal {
			worstTotal = sum
		}
	}
	reduction := 0.0
	if worstTotal > 0 {
		reduction = 1 - odrlTotal/worstTotal
	}
	totalRow = append(totalRow, fmt.Sprintf("%.1f%%", 100*reduction))
	t.Rows = append(t.Rows, totalRow)
	return t, nil
}

// F3ThroughputPerOverEnergy reproduces claim C2: BIPS per joule of
// over-the-budget energy, floored at 1 mJ (one epoch at 1 W), plus OD-RL's
// best ratio over the best baseline.
func F3ThroughputPerOverEnergy(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	sweep, err := benchmarkSweep(cfg)
	if err != nil {
		return Table{}, err
	}
	const floorJ = 1e-3
	t := Table{
		ID:     "F3",
		Title:  fmt.Sprintf("throughput per over-budget energy (BIPS/J-over) at %.0f W", cfg.BudgetW),
		Header: append([]string{"benchmark"}, append(append([]string{}, cfg.Controllers...), "vs steepest", "vs pid")...),
		Notes: []string{
			"overshoot energy floored at 1 mJ; paper claims up to 44.3x vs state-of-the-art",
			"ratio columns compare od-rl against the overshooting SOTA baselines; see EXPERIMENTS.md on maxbips",
		},
	}
	ratioAgainst := func(bench, baseline string) string {
		base := sweep[bench][baseline].ThroughputPerOverJ(floorJ)
		if base <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", sweep[bench]["od-rl"].ThroughputPerOverJ(floorJ)/base)
	}
	for _, bench := range cfg.Benchmarks {
		row := []string{bench}
		for _, name := range cfg.Controllers {
			row = append(row, cell(sweep[bench][name].ThroughputPerOverJ(floorJ)))
		}
		ratios := []string{"-", "-"}
		if _, ok := sweep[bench]["steepest-drop"]; ok {
			ratios[0] = ratioAgainst(bench, "steepest-drop")
		}
		if _, ok := sweep[bench]["pid"]; ok {
			ratios[1] = ratioAgainst(bench, "pid")
		}
		row = append(row, ratios[0], ratios[1])
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// F4EnergyEfficiency reproduces claim C3: BIPS/W per benchmark and
// controller, plus OD-RL's gain over the best prediction-based baseline.
func F4EnergyEfficiency(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	sweep, err := benchmarkSweep(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "F4",
		Title:  fmt.Sprintf("energy efficiency (BIPS/W) at %.0f W", cfg.BudgetW),
		Header: append([]string{"benchmark"}, append(append([]string{}, cfg.Controllers...), "od-rl gain")...),
		Notes: []string{
			"gain vs best of {maxbips, steepest-drop, pid}; paper claims up to 23% higher",
		},
	}
	for _, bench := range cfg.Benchmarks {
		row := []string{bench}
		bestSOTA := 0.0
		for _, name := range cfg.Controllers {
			v := sweep[bench][name].EnergyEff()
			row = append(row, cell(v))
			if (name == "maxbips" || name == "steepest-drop" || name == "pid") && v > bestSOTA {
				bestSOTA = v
			}
		}
		gain := 0.0
		if bestSOTA > 0 {
			gain = sweep[bench]["od-rl"].EnergyEff()/bestSOTA - 1
		}
		row = append(row, fmt.Sprintf("%+.1f%%", 100*gain))
		t.Rows = append(t.Rows, row)
	}

	// Aggregate row: geometric-mean efficiency per controller, and the
	// geomean of the per-benchmark gain factors.
	geoRow := []string{"GEOMEAN"}
	var gainFactors []float64
	for _, bench := range cfg.Benchmarks {
		bestSOTA := 0.0
		for _, name := range []string{"maxbips", "steepest-drop", "pid"} {
			if s, ok := sweep[bench][name]; ok && s.EnergyEff() > bestSOTA {
				bestSOTA = s.EnergyEff()
			}
		}
		if bestSOTA > 0 {
			gainFactors = append(gainFactors, sweep[bench]["od-rl"].EnergyEff()/bestSOTA)
		}
	}
	for _, name := range cfg.Controllers {
		var effs []float64
		for _, bench := range cfg.Benchmarks {
			if e := sweep[bench][name].EnergyEff(); e > 0 {
				effs = append(effs, e)
			}
		}
		if len(effs) > 0 {
			geoRow = append(geoRow, cell(stats.GeoMean(effs)))
		} else {
			geoRow = append(geoRow, "-")
		}
	}
	if len(gainFactors) > 0 {
		geoRow = append(geoRow, fmt.Sprintf("%+.1f%%", 100*(stats.GeoMean(gainFactors)-1)))
	} else {
		geoRow = append(geoRow, "-")
	}
	t.Rows = append(t.Rows, geoRow)
	return t, nil
}
