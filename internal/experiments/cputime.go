package experiments

import "repro/internal/obs"

// cpuSeconds delegates to the shared obs helper so bench gates and ledger
// run records measure CPU time identically (see obs.CPUSeconds for why
// CPU-time ratios beat wall-clock for overhead medians).
func cpuSeconds() float64 { return obs.CPUSeconds() }
