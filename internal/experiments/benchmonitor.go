package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"repro/internal/obs/monitor"
	"repro/internal/sim"
)

// BenchMonitorCase is one timed monitoring-off-vs-on comparison over an
// identical simulation (same seed, controller and epoch count; results are
// bit-identical by the monitor's read-only contract, so the delta is pure
// monitoring overhead).
type BenchMonitorCase struct {
	// Name identifies the workload being timed.
	Name string `json:"name"`
	// Epochs is the total epoch count each leg executes.
	Epochs int `json:"epochs"`
	// OffS and OnS are the best (minimum) wall-clock seconds per leg without
	// and with the run-health monitor (default rules, series, sketches, live
	// hub idle).
	OffS float64 `json:"off_s"`
	OnS  float64 `json:"on_s"`
	// OverheadFrac is the median per-rep on/off ratio minus one — each rep
	// times an adjacent off/on pair so host drift cancels, and the ratio is
	// taken over process CPU time where the platform measures it (Linux),
	// wall clock otherwise. The monitor's budget is <3%.
	OverheadFrac float64 `json:"overhead_frac"`
}

// BenchMonitorReport is the machine-readable output of
// `odrl-bench -bench-monitor` (written as BENCH_monitor.json): the
// wall-clock cost of the run-health monitoring layer on this host.
type BenchMonitorReport struct {
	HostInfo
	Cases []BenchMonitorCase `json:"cases"`
}

// benchMonitorCase times one options set with monitoring off and on.
func benchMonitorCase(name, controller string, opts sim.Options, reps int) (BenchMonitorCase, error) {
	// Only sim.Run — the epoch loop the <3% claim is about — sits inside
	// the timed region; environment, controller and monitor construction
	// all happen (and allocate) outside it.
	run := func(mon *monitor.Monitor) (wallS, cpuS float64, err error) {
		o := opts
		o.Monitor = mon
		env, err := sim.EnvFor(o)
		if err != nil {
			return 0, 0, err
		}
		c, err := sim.NewController(controller, env)
		if err != nil {
			return 0, 0, err
		}
		// Collect before the timed region so GC debt from construction (or
		// from the previous leg) is never swept inside it.
		runtime.GC()
		return timeRunBoth(func() error {
			_, err := sim.Run(o, c)
			return err
		})
	}
	// Warm once so first-use allocation and page faults don't bias the
	// off leg.
	if _, _, err := run(nil); err != nil {
		return BenchMonitorCase{}, err
	}
	// A single comparison is noisy on a shared host: scheduler preemption
	// and frequency drift move wall clock by more than the 3% budget being
	// measured. Each rep times an adjacent off/on pair (so slow drift hits
	// both legs alike) and the reported overhead is the median per-pair
	// ratio, which discards the odd preempted rep entirely.
	// 15 paired reps put the median's standard error near 0.5% on a host
	// with ±1.5% per-pair jitter — tight enough to hold a 3% ceiling
	// against a ~2% true cost without flaking.
	offS, onS := math.Inf(1), math.Inf(1)
	ratios := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		off, offCPU, err := run(nil)
		if err != nil {
			return BenchMonitorCase{}, err
		}
		offS = math.Min(offS, off)
		on, onCPU, err := run(monitor.New(monitor.Options{}))
		if err != nil {
			return BenchMonitorCase{}, err
		}
		onS = math.Min(onS, on)
		// Ratio CPU time when the platform measures it — wall clock on a
		// shared 1-CPU host swings by more than the 3% budget under test.
		switch {
		case offCPU > 0 && onCPU > 0:
			ratios = append(ratios, onCPU/offCPU)
		case off > 0:
			ratios = append(ratios, on/off)
		}
	}
	warmup, measure := opts.Epochs()
	c := BenchMonitorCase{Name: name, Epochs: warmup + measure, OffS: offS, OnS: onS}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		c.OverheadFrac = ratios[len(ratios)/2] - 1
	}
	return c, nil
}

// benchMonitorSpec names one timed case: a controller and how many
// simulated seconds its measured leg runs.
type benchMonitorSpec struct {
	name, controller string
	measureS         float64
}

// BenchMonitor measures the run-health monitor's epoch-loop overhead: the
// same runs with monitoring off and on, across a cheap controller (where
// per-epoch harness overhead dominates, the worst case for the monitor)
// and the full OD-RL controller.
func BenchMonitor() (BenchMonitorReport, error) {
	// Simulated seconds are chosen so each timed leg is a large fraction of
	// a wall-clock second on a fast host — a 3% delta is invisible under
	// scheduler noise on legs much shorter than that. greedy steps epochs
	// faster than od-rl, so it gets more of them; greedy's Decide is nearly
	// free, so the monitor's per-epoch work is the largest relative slice it
	// will ever be.
	return benchMonitor(15, []benchMonitorSpec{
		{"epoch-loop-greedy-64c", "greedy", 40},
		{"epoch-loop-odrl-64c", "od-rl", 25},
	})
}

// benchMonitor runs the given cases with the given rep count; the smoke
// test passes a cheap spec so the schema check stays fast under the race
// detector, while the CLI gate keeps the full protocol.
func benchMonitor(reps int, specs []benchMonitorSpec) (BenchMonitorReport, error) {
	rep := BenchMonitorReport{HostInfo: hostInfo()}
	base := sim.DefaultOptions()
	base.Workers = 1
	base.WarmupS = 0.5

	for _, tc := range specs {
		opts := base
		opts.MeasureS = tc.measureS
		c, err := benchMonitorCase(tc.name, tc.controller, opts, reps)
		if err != nil {
			return rep, fmt.Errorf("bench-monitor %s: %w", tc.name, err)
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r BenchMonitorReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
