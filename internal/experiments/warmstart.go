package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/power"
	"repro/internal/vf"
)

// F12WarmStart is an extension experiment: policy persistence. An OD-RL
// controller is trained once, its per-core Q-tables are saved, and a fresh
// controller warm-started from that policy is compared window-by-window
// against a cold start. Warm starting should eliminate the early-window
// overshoot and throughput ramp — the deployment story for "on-line" RL
// control surviving reboots.
func F12WarmStart(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	trainS := 8.0
	totalS := 3.0
	windowS := 0.5
	if cfg.Quick {
		trainS, totalS, windowS = 1.5, 1.0, 0.25
	}

	newODRL := func() (*core.Controller, error) {
		c := core.DefaultConfig()
		c.Seed = cfg.Seed
		return core.New(cfg.Cores, vf.Default(), power.Default(), c)
	}

	// Train and save.
	trained, err := newODRL()
	if err != nil {
		return Table{}, err
	}
	if _, err := windowedRun(cfg, trained, nil, trainS, trainS); err != nil {
		return Table{}, err
	}
	var policy bytes.Buffer
	if err := trained.SavePolicy(&policy); err != nil {
		return Table{}, err
	}

	// Both measured legs stream learning telemetry so the table shows not
	// just that warm starting helps but why: the restored policy begins
	// (nearly) converged while the cold one is still exploring.
	lrn := learn.New(learn.Options{})
	meta := obs.RunMeta{Controller: "od-rl", Cores: cfg.Cores, BudgetW: cfg.BudgetW, Seed: cfg.Seed}

	// Cold start.
	cold, err := newODRL()
	if err != nil {
		return Table{}, err
	}
	coldLR := lrn.BeginRun(meta, nil, 0)
	cold.SetLearnSink(coldLR)
	coldRows, err := windowedRun(cfg, cold, coldLR, totalS, windowS)
	cold.SetLearnSink(nil)
	if err != nil {
		return Table{}, err
	}

	// Warm start: same fresh controller shape, restored tables.
	warm, err := newODRL()
	if err != nil {
		return Table{}, err
	}
	if err := warm.LoadPolicy(&policy); err != nil {
		return Table{}, err
	}
	warmLR := lrn.BeginRun(meta, nil, 0)
	warm.SetLearnSink(warmLR)
	warmRows, err := windowedRun(cfg, warm, warmLR, totalS, windowS)
	warm.SetLearnSink(nil)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:    "F12",
		Title: fmt.Sprintf("warm start from a saved policy at %.0f W (extension)", cfg.BudgetW),
		Header: []string{
			"window(s)", "cold BIPS", "cold over(J)", "cold conv(%)",
			"warm BIPS", "warm over(J)", "warm conv(%)",
		},
		Notes: []string{
			fmt.Sprintf("policy trained for %.1fs, saved, restored into a fresh controller", trainS),
			"warm start should match the trained steady state from the first window",
			"conv(%) = agents greedy-stable with settled TD error by the window's end",
		},
	}
	for i := range coldRows {
		cr := coldRows[i]
		wr := warmRows[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f-%.2f", cr.fromS, cr.toS),
			cell(cr.bips), cell(cr.overJ), cell(100 * cr.convFrac),
			cell(wr.bips), cell(wr.overJ), cell(100 * wr.convFrac),
		})
	}
	return t, nil
}
