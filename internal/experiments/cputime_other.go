//go:build !linux

package experiments

// cpuSeconds is unavailable off Linux; callers fall back to wall-clock
// ratios.
func cpuSeconds() float64 { return 0 }
