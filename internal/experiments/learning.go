package experiments

import (
	"fmt"

	"repro/internal/obs/learn"
	"repro/internal/sim"
)

// F19LearningDynamics is an introspection experiment: per-controller
// learning dynamics from a cold start. For every learning controller it
// reports when (and whether) the per-core agents converge — greedy action
// stable and TD-error EMA settled — alongside the throughput and overshoot
// the same run delivers, tying policy stability to control quality.
func F19LearningDynamics(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "od-rl-norealloc"}
	det := learn.DefaultDetector()

	t := Table{
		ID:    "F19",
		Title: fmt.Sprintf("learning dynamics from cold start at %.0f W", cfg.BudgetW),
		Header: []string{
			"controller", "epochs", "conv(%)", "conv-epochs(p50)",
			"td-ema", "churn", "coverage", "epsilon", "BIPS", "over(J)",
		},
		Notes: []string{
			fmt.Sprintf("converged = greedy action stable %d epochs and TD-error EMA <= %g",
				det.StableEpochs, det.TDThreshold),
			"warmup is folded into the measured window so the table covers the whole learning transient",
		},
	}
	for _, name := range names {
		opts := cfg.runOpts()
		// Learning dynamics want the whole run, so start cold and measure
		// from epoch zero.
		opts.MeasureS = opts.WarmupS + opts.MeasureS
		opts.WarmupS = 0
		lrn := learn.New(learn.Options{Detector: det})
		opts.Learn = lrn
		c, err := sim.NewController(name, cfg.env(cfg.Cores))
		if err != nil {
			return Table{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return Table{}, err
		}
		runs := lrn.Runs()
		if len(runs) != 1 {
			return Table{}, fmt.Errorf("experiments: F19 controller %s streamed %d learn runs, want 1", name, len(runs))
		}
		s := runs[0].Summarize(false)
		convP50 := "-"
		if s.Converged > 0 {
			convP50 = fmt.Sprintf("%d", s.EpochsToConvergeP50)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", s.Epochs),
			cell(100 * s.ConvergedFrac),
			convP50,
			cell(s.TDErrEMA), cell(s.Churn), cell(s.Coverage), cell(s.Epsilon),
			cell(res.Summary.BIPS()), cell(res.Summary.OverJ),
		})
	}
	return t, nil
}
