package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"repro/internal/obs/learn"
	"repro/internal/sim"
)

// BenchLearnCase is one timed introspection-off-vs-on comparison over an
// identical simulation (same seed, controller and epoch count; results are
// bit-identical by the learn layer's read-only contract, so the delta is
// pure telemetry overhead: per-agent probes in the Q update, the per-epoch
// collector pass, and the convergence detector).
type BenchLearnCase struct {
	// Name identifies the workload being timed.
	Name string `json:"name"`
	// Epochs is the total epoch count each leg executes.
	Epochs int `json:"epochs"`
	// OffS and OnS are the best (minimum) wall-clock seconds per leg
	// without and with learning introspection attached (no tracer, no
	// artifact directory — the epoch-loop cost alone).
	OffS float64 `json:"off_s"`
	OnS  float64 `json:"on_s"`
	// OverheadFrac is the median per-rep on/off ratio minus one — each rep
	// times an adjacent off/on pair so host drift cancels, and the ratio is
	// taken over process CPU time where the platform measures it (Linux),
	// wall clock otherwise. The learn layer's budget is <3%.
	OverheadFrac float64 `json:"overhead_frac"`
}

// BenchLearnReport is the machine-readable output of
// `odrl-bench -bench-learn` (written as BENCH_learn.json): the wall-clock
// cost of the learning-introspection layer on this host.
type BenchLearnReport struct {
	HostInfo
	Cases []BenchLearnCase `json:"cases"`
}

// benchLearnCase times one options set with learning introspection off
// and on, using the same paired-rep median protocol as benchMonitorCase.
func benchLearnCase(name, controller string, opts sim.Options, reps int) (BenchLearnCase, error) {
	run := func(l *learn.Layer) (wallS, cpuS float64, err error) {
		o := opts
		o.Learn = l
		env, err := sim.EnvFor(o)
		if err != nil {
			return 0, 0, err
		}
		c, err := sim.NewController(controller, env)
		if err != nil {
			return 0, 0, err
		}
		runtime.GC()
		return timeRunBoth(func() error {
			_, err := sim.Run(o, c)
			return err
		})
	}
	if _, _, err := run(nil); err != nil {
		return BenchLearnCase{}, err
	}
	offS, onS := math.Inf(1), math.Inf(1)
	ratios := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		off, offCPU, err := run(nil)
		if err != nil {
			return BenchLearnCase{}, err
		}
		offS = math.Min(offS, off)
		on, onCPU, err := run(learn.New(learn.Options{}))
		if err != nil {
			return BenchLearnCase{}, err
		}
		onS = math.Min(onS, on)
		// Ratio CPU time when the platform measures it — wall clock on a
		// shared 1-CPU host swings by more than the 3% budget under test.
		switch {
		case offCPU > 0 && onCPU > 0:
			ratios = append(ratios, onCPU/offCPU)
		case off > 0:
			ratios = append(ratios, on/off)
		}
	}
	warmup, measure := opts.Epochs()
	c := BenchLearnCase{Name: name, Epochs: warmup + measure, OffS: offS, OnS: onS}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		c.OverheadFrac = ratios[len(ratios)/2] - 1
	}
	return c, nil
}

// benchLearnSpec names one timed case: an OD-RL run at the given core
// count and simulated measurement length.
type benchLearnSpec struct {
	name     string
	cores    int
	measureS float64
}

// BenchLearn measures the learning-introspection layer's epoch-loop
// overhead. Only OD-RL streams learning telemetry, so both cases run it:
// the default 64-core chip and a small 16-core one, where the layer's
// fixed per-epoch work is the largest relative slice it will ever be.
func BenchLearn() (BenchLearnReport, error) {
	// Simulated seconds are chosen so each timed leg is a large fraction
	// of a wall-clock second — a 3% delta is invisible under scheduler
	// noise on legs much shorter than that.
	return benchLearn(15, []benchLearnSpec{
		{"epoch-loop-odrl-64c", 64, 25},
		{"epoch-loop-odrl-16c", 16, 60},
	})
}

// benchLearn runs the given cases with the given rep count; the smoke test
// passes a cheap spec so the schema check stays fast under the race
// detector, while the CLI gate keeps the full protocol.
func benchLearn(reps int, specs []benchLearnSpec) (BenchLearnReport, error) {
	rep := BenchLearnReport{HostInfo: hostInfo()}
	base := sim.DefaultOptions()
	base.Workers = 1
	base.WarmupS = 0.5

	for _, tc := range specs {
		opts := base
		opts.Cores = tc.cores
		opts.MeasureS = tc.measureS
		c, err := benchLearnCase(tc.name, "od-rl", opts, reps)
		if err != nil {
			return rep, fmt.Errorf("bench-learn %s: %w", tc.name, err)
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r BenchLearnReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
