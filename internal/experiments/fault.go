package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs/monitor"
	"repro/internal/par"
	"repro/internal/sim"
)

// F18FaultIntensity is an extension experiment: graceful degradation under
// injected faults. The canonical fault plan (fault.Scaled) is swept from
// intensity 0 (clean) to 1 (stuck sensors, biased meter, telemetry
// blackouts, flaky actuation, dead cores and cap transients all at once)
// and each controller is scored on how much throughput and budget
// compliance survives. The retention column is each run's BIPS relative to
// the same controller's fault-free run; the paper's robustness claim is
// that the distributed learner degrades smoothly while prediction-based
// centralised control decays faster on corrupted inputs.
//
// Note on numbering: ISSUE.md proposed this figure as F16, but that slot
// was already taken by the server-consolidation extension, so it lands as
// F18.
func F18FaultIntensity(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "maxbips", "pid", "greedy"}
	intensities := []float64{0, 0.25, 0.5, 1.0}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
		intensities = []float64{0, 1.0}
	}
	nn := len(names)

	// Each run carries its own run-health monitor so the figure reports the
	// injected-fault and fired-alert counts next to the throughput columns.
	// Monitoring is read-only, so the metric columns are unchanged by it,
	// and both counts are deterministic: the fault stream is seeded, and
	// the deterministic rule subset (no wall-clock decide-latency rules) is
	// a pure function of the epoch stream.
	type faultRun struct {
		s      metrics.Summary
		faults int
		alerts int
	}
	runs, err := par.MapErr(cfg.Workers, len(intensities)*nn, func(i int) (faultRun, error) {
		x, name := intensities[i/nn], names[i%nn]
		opts := cfg.runOpts()
		opts.FaultPlan = nil // this figure owns the plan axis
		if x > 0 {
			p := fault.Scaled(x)
			opts.FaultPlan = &p
		}
		mon := monitor.New(monitor.Options{
			Rules: monitor.DeterministicDefaultRules(opts.BudgetW, opts.EpochS),
		})
		opts.Monitor = mon
		env, err := sim.EnvFor(opts)
		if err != nil {
			return faultRun{}, err
		}
		c, err := sim.NewController(name, env)
		if err != nil {
			return faultRun{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return faultRun{}, err
		}
		h := mon.Runs()[0]
		return faultRun{s: res.Summary, faults: h.Faults, alerts: h.AlertCount}, nil
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:     "F18",
		Title:  fmt.Sprintf("graceful degradation under fault injection at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"intensity", "controller", "BIPS", "retention", "mean(W)", "over(J)", "over-time(s)", "faults", "alerts"},
		Notes: []string{
			"canonical plan fault.Scaled(x): stuck sensors, meter bias+drift, blackouts, dropped/clamped actuation, dead cores, cap transients",
			"retention: BIPS relative to the same controller's fault-free run",
			"faults/alerts: injected fault events and run-health alerts fired by the default claim-invariant rules (obs/monitor)",
		},
	}
	for xi, x := range intensities {
		for ni := range names {
			r := runs[xi*nn+ni]
			s := r.s
			base := runs[ni].s // intensity 0 row for this controller
			retention := 0.0
			if base.BIPS() > 0 {
				retention = s.BIPS() / base.BIPS()
			}
			t.Rows = append(t.Rows, []string{
				cell(x), s.Controller, cell(s.BIPS()), cell(retention),
				cell(s.MeanW), cell(s.OverJ), cell(s.OverTimeS),
				fmt.Sprintf("%d", r.faults), fmt.Sprintf("%d", r.alerts),
			})
		}
	}
	return t, nil
}
