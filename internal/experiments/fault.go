package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// F18FaultIntensity is an extension experiment: graceful degradation under
// injected faults. The canonical fault plan (fault.Scaled) is swept from
// intensity 0 (clean) to 1 (stuck sensors, biased meter, telemetry
// blackouts, flaky actuation, dead cores and cap transients all at once)
// and each controller is scored on how much throughput and budget
// compliance survives. The retention column is each run's BIPS relative to
// the same controller's fault-free run; the paper's robustness claim is
// that the distributed learner degrades smoothly while prediction-based
// centralised control decays faster on corrupted inputs.
//
// Note on numbering: ISSUE.md proposed this figure as F16, but that slot
// was already taken by the server-consolidation extension, so it lands as
// F18.
func F18FaultIntensity(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "maxbips", "pid", "greedy"}
	intensities := []float64{0, 0.25, 0.5, 1.0}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
		intensities = []float64{0, 1.0}
	}
	nn := len(names)

	summaries, err := par.MapErr(cfg.Workers, len(intensities)*nn, func(i int) (metrics.Summary, error) {
		x, name := intensities[i/nn], names[i%nn]
		opts := cfg.runOpts()
		opts.FaultPlan = nil // this figure owns the plan axis
		if x > 0 {
			p := fault.Scaled(x)
			opts.FaultPlan = &p
		}
		env, err := sim.EnvFor(opts)
		if err != nil {
			return metrics.Summary{}, err
		}
		c, err := sim.NewController(name, env)
		if err != nil {
			return metrics.Summary{}, err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return metrics.Summary{}, err
		}
		return res.Summary, nil
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:     "F18",
		Title:  fmt.Sprintf("graceful degradation under fault injection at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"intensity", "controller", "BIPS", "retention", "mean(W)", "over(J)", "over-time(s)"},
		Notes: []string{
			"canonical plan fault.Scaled(x): stuck sensors, meter bias+drift, blackouts, dropped/clamped actuation, dead cores, cap transients",
			"retention: BIPS relative to the same controller's fault-free run",
		},
	}
	for xi, x := range intensities {
		for ni := range names {
			s := summaries[xi*nn+ni]
			base := summaries[ni] // intensity 0 row for this controller
			retention := 0.0
			if base.BIPS() > 0 {
				retention = s.BIPS() / base.BIPS()
			}
			t.Rows = append(t.Rows, []string{
				cell(x), s.Controller, cell(s.BIPS()), cell(retention),
				cell(s.MeanW), cell(s.OverJ), cell(s.OverTimeS),
			})
		}
	}
	return t, nil
}
