package experiments

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/par"
	"repro/internal/sim"
)

// BenchParCase is one timed sequential-vs-parallel comparison.
type BenchParCase struct {
	// Name identifies the workload being timed.
	Name string `json:"name"`
	// Workers is the parallel worker count the case ran with.
	Workers int `json:"workers"`
	// SequentialS and ParallelS are wall-clock seconds at Workers=1 and at
	// Workers (above), for identical work producing identical results.
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	// Speedup is SequentialS / ParallelS.
	Speedup float64 `json:"speedup"`
}

// BenchParReport is the machine-readable output of `odrl-bench -bench-par`
// (written as BENCH_par.json): wall-clock speedups of the parallel
// execution layer on this host. Results are bit-identical across worker
// counts, so the comparison is pure scheduling overhead vs parallelism.
type BenchParReport struct {
	HostInfo
	Workers int            `json:"workers"`
	Cases   []BenchParCase `json:"cases"`
}

// timeRun reports the wall-clock seconds of one invocation of fn.
func timeRun(fn func() error) (float64, error) {
	start := time.Now() //odrl:allow wallclock bench harness measures host wall-clock by design
	err := fn()
	return time.Since(start).Seconds(), err //odrl:allow wallclock bench harness measures host wall-clock by design
}

// timeRunBoth reports wall-clock and process-CPU seconds of one invocation
// of fn; cpuS is zero when the platform cannot measure CPU time. The
// overhead gates ratio CPU time where available because it is immune to the
// scheduler noise that dominates wall clock on shared hosts.
func timeRunBoth(fn func() error) (wallS, cpuS float64, err error) {
	c0 := cpuSeconds()
	start := time.Now() //odrl:allow wallclock bench harness measures host wall-clock by design
	err = fn()
	wallS = time.Since(start).Seconds() //odrl:allow wallclock bench harness measures host wall-clock by design
	if c1 := cpuSeconds(); c1 > c0 {
		cpuS = c1 - c0
	}
	return wallS, cpuS, err
}

// benchParCase times fn at Workers=1 and at the requested worker count.
func benchParCase(name string, workers int, fn func(workers int) error) (BenchParCase, error) {
	// Warm once so first-use allocation and page faults don't bias the
	// sequential leg.
	if err := fn(1); err != nil {
		return BenchParCase{}, err
	}
	seqS, err := timeRun(func() error { return fn(1) })
	if err != nil {
		return BenchParCase{}, err
	}
	parS, err := timeRun(func() error { return fn(workers) })
	if err != nil {
		return BenchParCase{}, err
	}
	c := BenchParCase{Name: name, Workers: workers, SequentialS: seqS, ParallelS: parS}
	if parS > 0 {
		c.Speedup = seqS / parS
	}
	return c, nil
}

// BenchPar measures the parallel execution layer end to end: experiment
// fan-out (outer loop) and large-chip step sharding (inner loop), each at
// Workers=1 vs the requested worker count (0 = one per CPU).
func BenchPar(workers int) (BenchParReport, error) {
	workers = par.Workers(workers, 1<<30)
	rep := BenchParReport{
		HostInfo: hostInfo(),
		Workers:  workers,
	}

	// Outer loop: the F2 benchmark×controller sweep, cache reset between
	// timings so both legs do the full set of runs.
	c, err := benchParCase("experiment-fanout-f2-quick", workers, func(w int) error {
		resetSweepCache()
		_, err := F2Overshoot(Config{Quick: true, Workers: w})
		return err
	})
	if err != nil {
		return rep, err
	}
	rep.Cases = append(rep.Cases, c)

	// Outer loop at a second grain: the F7 budget sweep (independent full
	// runs, no memoisation involved).
	c, err = benchParCase("experiment-fanout-f7-quick", workers, func(w int) error {
		_, err := F7BudgetSweep(Config{Quick: true, Workers: w})
		return err
	})
	if err != nil {
		return rep, err
	}
	rep.Cases = append(rep.Cases, c)

	// Inner loop: stepping a 256-core chip (past the sharding threshold)
	// with no controller in the loop, isolating Chip.Step scaling.
	c, err = benchParCase("chip-step-256", workers, func(w int) error {
		opts := sim.DefaultOptions()
		opts.Cores = 256
		opts.Workers = w
		chip, _, err := sim.NewChip(opts)
		if err != nil {
			return err
		}
		for e := 0; e < 2000; e++ {
			chip.Step(opts.EpochS)
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	rep.Cases = append(rep.Cases, c)
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r BenchParReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
