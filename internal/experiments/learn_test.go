package experiments

import (
	"bytes"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/obs/learn"
	"repro/internal/sim"
)

// TestTablesByteIdenticalWithLearn is the figure-level read-only gate for
// learning introspection: F1 and F18 must render byte-identical tables with
// the learn layer off and on (as a CLI would attach it, via
// sim.DefaultLearn), sequential and parallel.
func TestTablesByteIdenticalWithLearn(t *testing.T) {
	if sim.DefaultLearn != nil {
		t.Fatal("test requires a clean sim.DefaultLearn")
	}
	cases := []struct {
		id  string
		run Runner
	}{
		{"F1", F1PowerTrace},
		{"F18", F18FaultIntensity},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				cfg := Config{Quick: true, Workers: workers}
				resetSweepCache()
				sim.DefaultLearn = nil
				off, err := tc.run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				resetSweepCache()
				sim.DefaultLearn = learn.New(learn.Options{})
				on, err := tc.run(cfg)
				sim.DefaultLearn = nil
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(off, on) {
					t.Fatalf("%s diverges with learning introspection on at workers=%d", tc.id, workers)
				}
				if !bytes.Equal(renderTable(t, off), renderTable(t, on)) {
					t.Fatalf("%s rendered bytes diverge with learning introspection on at workers=%d", tc.id, workers)
				}
			}
		})
	}
}

func TestF19LearningDynamics(t *testing.T) {
	tbl := mustRun(t, "F19")
	if len(tbl.Rows) != 2 {
		t.Fatalf("F19 has %d rows, want 2 learning controllers", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		// Every learning controller must report a live epoch count and a
		// parsable converged share.
		epochs, err := strconv.Atoi(r[1])
		if err != nil || epochs <= 0 {
			t.Fatalf("%s: bad epochs cell %q", r[0], r[1])
		}
		conv, err := strconv.ParseFloat(r[2], 64)
		if err != nil || conv < 0 || conv > 100 {
			t.Fatalf("%s: bad conv(%%) cell %q", r[0], r[2])
		}
		// conv-epochs(p50) is "-" when nothing converged, else a positive int.
		if r[3] != "-" {
			p50, err := strconv.Atoi(r[3])
			if err != nil || p50 <= 0 {
				t.Fatalf("%s: bad conv-epochs cell %q", r[0], r[3])
			}
		}
	}
}

// TestBenchLearnReport smoke-checks the overhead report: it must measure
// both legs of every case and produce valid JSON. It runs a cheap spec (2
// reps, short legs) so the check stays fast under the race detector; the
// <3% assertion and the full 15-rep protocol live in the bench-learn make
// target, not here — wall-clock thresholds are too flaky for CI unit tests.
func TestBenchLearnReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	rep, err := benchLearn(2, []benchLearnSpec{
		{"epoch-loop-odrl-64c", 64, 1},
		{"epoch-loop-odrl-16c", 16, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("got %d cases", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if c.OffS <= 0 || c.OnS <= 0 || c.Epochs <= 0 {
			t.Fatalf("unmeasured case %+v", c)
		}
	}
	if rep.GoVersion == "" || rep.HostCPUs <= 0 {
		t.Fatalf("missing host stamp: %+v", rep.HostInfo)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("overhead_frac")) ||
		!bytes.Contains(buf.Bytes(), []byte("go_version")) {
		t.Fatalf("report JSON missing fields:\n%s", buf.String())
	}
}
