package experiments

import (
	"reflect"
	"testing"
)

// runTable renders one experiment with the given worker count, resetting
// the sweep cache first so memoised results from a previous worker count
// cannot mask a divergence.
func runTable(t *testing.T, run Runner, workers int) Table {
	t.Helper()
	resetSweepCache()
	tbl, err := run(Config{Quick: true, Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return tbl
}

// TestParallelDeterminism is the regression gate for the parallel execution
// layer: every fanned-out experiment must produce byte-identical tables at
// Workers=1 (fully sequential) and Workers=8.
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		id  string
		run Runner
	}{
		{"F2", F2Overshoot},
		{"F7", F7BudgetSweep},
		{"F9", F9Ablation},
		{"F15", F15Seeds},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			seq := runTable(t, tc.run, 1)
			par := runTable(t, tc.run, 8)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s diverges between Workers=1 and Workers=8:\nseq: %+v\npar: %+v",
					tc.id, seq, par)
			}
		})
	}
}

// TestSweepCacheSharedAcrossWorkers checks the memoisation contract: F2 and
// F3 with the same axes share one sweep, and concurrent callers racing on a
// cold cache still each get the full table.
func TestSweepCacheSharedAcrossWorkers(t *testing.T) {
	resetSweepCache()
	cfg := Config{Quick: true, Workers: 2}

	type result struct {
		tbl Table
		err error
	}
	const callers = 4
	results := make([]result, callers)
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			tbl, err := F2Overshoot(cfg)
			results[i] = result{tbl, err}
			done <- i
		}()
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if !reflect.DeepEqual(r.tbl, results[0].tbl) {
			t.Fatalf("caller %d saw a different table", i)
		}
	}

	sweepMu.Lock()
	entries := len(sweepCache)
	sweepMu.Unlock()
	if entries != 1 {
		t.Fatalf("sweep cache holds %d entries after identical concurrent calls, want 1", entries)
	}
}
