package experiments

import (
	"bytes"
	"testing"
)

// TestBenchFlightReport smoke-checks the flight-recorder overhead report:
// both legs of every case measured, valid JSON out. It runs a cheap spec (2
// reps, short legs) so the check stays fast under the race detector; the
// <3% assertion and the full 15-rep protocol live in the bench-flight make
// target, not here — wall-clock thresholds are too flaky for CI unit tests.
func TestBenchFlightReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	rep, err := benchFlight(2, []benchFlightSpec{
		{"epoch-loop-greedy-64c", "greedy", 2},
		{"epoch-loop-odrl-64c", "od-rl", 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("got %d cases", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if c.OffS <= 0 || c.OnS <= 0 || c.Epochs <= 0 {
			t.Fatalf("unmeasured case %+v", c)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("overhead_frac")) {
		t.Fatalf("report JSON missing fields:\n%s", buf.String())
	}
}
