package experiments

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ClaimResult is the verdict on one of the abstract's quantitative claims.
type ClaimResult struct {
	ID       string // C1..C4
	Claim    string // the paper's wording
	Measured string // what this run produced
	Pass     bool
}

// VerifyClaims re-measures the four headline claims and returns a verdict
// for each. "Pass" means the *shape* holds (who wins, by roughly what
// factor), per the reproduction contract in DESIGN.md — not that absolute
// numbers match a testbed we do not have.
func VerifyClaims(cfg Config) ([]ClaimResult, error) {
	cfg = cfg.normalized()
	sweep, err := benchmarkSweep(cfg)
	if err != nil {
		return nil, err
	}

	var out []ClaimResult

	// C1: up to 98% less budget overshoot than state-of-the-art.
	odrlOver, worstOver := 0.0, 0.0
	for _, bench := range cfg.Benchmarks {
		odrlOver += sweep[bench]["od-rl"].OverJ
	}
	// Worst baseline = the SOTA controller with the largest suite total.
	for _, name := range []string{"maxbips", "steepest-drop", "pid"} {
		sum := 0.0
		for _, bench := range cfg.Benchmarks {
			if s, ok := sweep[bench][name]; ok {
				sum += s.OverJ
			}
		}
		if sum > worstOver {
			worstOver = sum
		}
	}
	reduction := 0.0
	if worstOver > 0 {
		reduction = 1 - odrlOver/worstOver
	}
	out = append(out, ClaimResult{
		ID:    "C1",
		Claim: "up to 98% less budget overshoot",
		Measured: fmt.Sprintf("suite overshoot %.3f J (od-rl) vs %.3f J (worst SOTA): %.1f%% reduction",
			odrlOver, worstOver, 100*reduction),
		Pass: worstOver == 0 && odrlOver == 0 || reduction >= 0.90,
	})

	// C2: up to 44.3x better throughput per over-the-budget energy.
	const floorJ = 1e-3
	bestRatio := 0.0
	for _, bench := range cfg.Benchmarks {
		for _, name := range []string{"steepest-drop", "pid"} {
			if s, ok := sweep[bench][name]; ok {
				base := s.ThroughputPerOverJ(floorJ)
				if base > 0 {
					if r := sweep[bench]["od-rl"].ThroughputPerOverJ(floorJ) / base; r > bestRatio {
						bestRatio = r
					}
				}
			}
		}
	}
	out = append(out, ClaimResult{
		ID:       "C2",
		Claim:    "up to 44.3x better throughput per over-budget energy",
		Measured: fmt.Sprintf("best ratio vs overshooting SOTA: %.1fx", bestRatio),
		Pass:     bestRatio >= 10,
	})

	// C3: up to 23% higher energy efficiency.
	var gains []float64
	maxGain := 0.0
	for _, bench := range cfg.Benchmarks {
		bestSOTA := 0.0
		for _, name := range []string{"maxbips", "steepest-drop", "pid"} {
			if s, ok := sweep[bench][name]; ok && s.EnergyEff() > bestSOTA {
				bestSOTA = s.EnergyEff()
			}
		}
		if bestSOTA > 0 {
			g := sweep[bench]["od-rl"].EnergyEff()/bestSOTA - 1
			gains = append(gains, 1+g)
			if g > maxGain {
				maxGain = g
			}
		}
	}
	geo := 0.0
	if len(gains) > 0 {
		geo = stats.GeoMean(gains) - 1
	}
	out = append(out, ClaimResult{
		ID:       "C3",
		Claim:    "up to 23% higher energy efficiency",
		Measured: fmt.Sprintf("max gain %+.1f%%, geomean %+.1f%% vs best SOTA", 100*maxGain, 100*geo),
		Pass:     maxGain >= 0.15 && geo > 0,
	})

	// C4: two orders of magnitude controller speedup for hundreds of cores.
	scaleCores := 256
	if cfg.Quick {
		scaleCores = 64
	}
	tel := syntheticTelemetry(scaleCores, cfg.Seed)
	budget := 1.4*float64(scaleCores) + power.Default().UncoreW
	env := sim.DefaultEnv(scaleCores)
	env.Seed = cfg.Seed
	odrl, err := sim.NewController("od-rl", env)
	if err != nil {
		return nil, err
	}
	maxbips, err := sim.NewController("maxbips", env)
	if err != nil {
		return nil, err
	}
	odrlLat := timeDecide(odrl, tel, budget)
	maxbipsLat := timeDecide(maxbips, tel, budget)
	speedup := float64(maxbipsLat) / float64(odrlLat)
	threshold := 50.0 // within striking distance of 100x at 256 cores
	if cfg.Quick {
		threshold = 5 // 64 cores in quick mode
	}
	out = append(out, ClaimResult{
		ID:    "C4",
		Claim: "two orders of magnitude controller speedup at hundreds of cores",
		Measured: fmt.Sprintf("at %d cores: od-rl %.1fµs vs maxbips %.1fµs per decision (%.0fx)",
			scaleCores, float64(odrlLat)/1e3, float64(maxbipsLat)/1e3, speedup),
		Pass: speedup >= threshold,
	})

	return out, nil
}
