package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vf"
)

// F13Islands is an extension experiment: DVFS granularity. The same
// controllers run on the same chip with per-core DVFS, 2×2-core and
// 4×4-core voltage-frequency islands, and a single chip-wide domain.
// Islands actuate at the max level requested by their member cores, so
// coarser domains waste power on cores that did not need the speed —
// throughput-per-watt should degrade monotonically with island size,
// quantifying what per-core control (the paper's setting) is worth.
func F13Islands(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	type gran struct {
		label  string
		iw, ih int
	}
	grans := []gran{
		{"per-core", 1, 1},
		{"2x2", 2, 2},
		{"4x4", 4, 4},
	}
	// A chip-wide island needs the actual grid dims.
	gw, gh, err := sim.GridFor(cfg.Cores)
	if err != nil {
		return Table{}, err
	}
	grans = append(grans, gran{"chip-wide", gw, gh})
	if cfg.Quick {
		grans = []gran{{"per-core", 1, 1}, {"chip-wide", gw, gh}}
	}
	names := []string{"od-rl", "od-rl-island", "greedy"}

	t := Table{
		ID:     "F13",
		Title:  fmt.Sprintf("DVFS granularity: VFI size at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"island"},
		Notes: []string{
			"islands run at the max level requested by their cores",
			"coarser islands waste budget on cores that did not need the speed",
			"per-core od-rl agents pin a wide island high through uncoordinated exploration;",
			"od-rl-island (one agent per island) restores coordinated control at the hardware granularity",
		},
	}
	for _, n := range names {
		t.Header = append(t.Header, n+" BIPS", n+" BIPS/W", n+" over(J)")
	}

	for _, g := range grans {
		if gw%g.iw != 0 || gh%g.ih != 0 {
			continue // this granularity does not tile the chosen grid
		}
		row := []string{g.label}
		for _, name := range names {
			opts := sim.DefaultOptions()
			opts.Cores = cfg.Cores
			opts.BudgetW = cfg.BudgetW
			opts.WarmupS = cfg.WarmupS
			opts.MeasureS = cfg.MeasureS
			opts.Seed = cfg.Seed
			opts.IslandW, opts.IslandH = g.iw, g.ih
			var c ctrl.Controller
			if name == "od-rl-island" {
				ccfg := core.DefaultConfig()
				ccfg.Seed = cfg.Seed
				ic, err := core.NewIslands(gw, gh, g.iw, g.ih, vf.Default(), power.Default(), ccfg)
				if err != nil {
					return Table{}, err
				}
				c = ic
			} else {
				env, err := sim.EnvFor(opts)
				if err != nil {
					return Table{}, err
				}
				c, err = sim.NewController(name, env)
				if err != nil {
					return Table{}, err
				}
			}
			res, err := sim.Run(opts, c)
			if err != nil {
				return Table{}, err
			}
			row = append(row, cell(res.Summary.BIPS()), cell(res.Summary.EnergyEff()), cell(res.Summary.OverJ))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
