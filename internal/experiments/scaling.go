package experiments

import (
	"fmt"
	"time"

	"repro/internal/ctrl"
	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/vf"
)

// syntheticTelemetry fabricates one plausible telemetry frame for n cores:
// levels spread over the table, mixed memory-boundedness, powers from the
// model. It feeds controller micro-benchmarks without simulator overhead.
func syntheticTelemetry(n int, seed uint64) *manycore.Telemetry {
	table := vf.Default()
	pp := power.Default()
	r := rng.New(seed)
	tel := &manycore.Telemetry{EpochS: 1e-3, Cores: make([]manycore.CoreTelemetry, n)}
	total := pp.UncoreW
	for i := range tel.Cores {
		lvl := r.Intn(table.Levels())
		op := table.Point(lvl)
		mb := r.Float64()
		act := 0.3 + 0.6*r.Float64()
		pw := pp.CoreW(op.VoltageV, op.FreqHz, act, 330)
		tel.Cores[i] = manycore.CoreTelemetry{
			Level: lvl, FreqHz: op.FreqHz, VoltageV: op.VoltageV,
			IPS: op.FreqHz / (0.8 + 2*mb), PowerW: pw,
			MemBoundedness: mb, TempK: 330,
		}
		total += pw
	}
	tel.TruePowerW = total
	tel.ChipPowerW = total
	return tel
}

// timeDecide measures the mean wall-clock latency of one Decide invocation.
func timeDecide(c ctrl.Controller, tel *manycore.Telemetry, budgetW float64) time.Duration {
	n := len(tel.Cores)
	out := make([]int, n)
	// Warm the controller (allocations, table setup).
	c.Decide(tel, budgetW, out)
	c.Decide(tel, budgetW, out)
	const maxWall = 500 * time.Millisecond
	iters := 0
	start := time.Now()                               //odrl:allow wallclock decide-latency benchmark measures host wall-clock by design
	for time.Since(start) < maxWall && iters < 2000 { //odrl:allow wallclock decide-latency benchmark measures host wall-clock by design
		c.Decide(tel, budgetW, out)
		iters++
	}
	return time.Since(start) / time.Duration(iters) //odrl:allow wallclock decide-latency benchmark measures host wall-clock by design
}

// F5ControllerScaling reproduces claim C4: per-decision controller latency
// versus core count, with the modelled NoC telemetry-collection latency
// alongside. OD-RL's fine layer is O(n) table lookups; the MaxBIPS knapsack
// grows superlinearly because its power-discretisation grid widens with the
// chip budget.
//
// F5 deliberately ignores cfg.Workers and runs fully sequentially: it
// measures per-Decide wall-clock latency, and concurrent runs sharing the
// host's cores would contend for CPU and corrupt the very timings the table
// reports. Controllers are also built with Workers=1 so the measured OD-RL
// latency reflects the single-threaded decision path the paper's claim is
// about, not the host's parallelism.
func F5ControllerScaling(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	coreCounts := []int{16, 64, 256, 1024}
	if cfg.Quick {
		coreCounts = []int{16, 64}
	}
	names := []string{"od-rl", "maxbips", "steepest-drop", "pid"}

	t := Table{
		ID:     "F5",
		Title:  "controller decision latency vs core count",
		Header: []string{"cores", "budget(W)"},
		Notes: []string{
			"decision latency in µs per Decide invocation (synthetic telemetry)",
			"noc-gather = modelled telemetry collection latency for centralized control",
			"speedup = maxbips / od-rl decision latency; paper claims two orders of magnitude for hundreds of cores",
		},
	}
	for _, n := range names {
		t.Header = append(t.Header, n+"(µs)")
	}
	t.Header = append(t.Header, "noc-gather(µs)", "speedup")

	for _, n := range coreCounts {
		budget := 1.4*float64(n) + power.Default().UncoreW
		tel := syntheticTelemetry(n, cfg.Seed)
		row := []string{fmt.Sprintf("%d", n), cell(budget)}
		var odrlUS, maxbipsUS float64
		for _, name := range names {
			env := sim.DefaultEnv(n)
			env.Seed = cfg.Seed
			env.Workers = 1
			c, err := sim.NewController(name, env)
			if err != nil {
				return Table{}, err
			}
			us := float64(timeDecide(c, tel, budget)) / 1e3
			row = append(row, cell(us))
			switch name {
			case "od-rl":
				odrlUS = us
			case "maxbips":
				maxbipsUS = us
			}
		}
		w, h, err := sim.GridFor(n)
		if err != nil {
			return Table{}, err
		}
		mesh, err := noc.New(w, h, noc.Default())
		if err != nil {
			return Table{}, err
		}
		gatherUS := mesh.GatherCost(mesh.Center()).LatencyS * 1e6
		speedup := 0.0
		if odrlUS > 0 {
			speedup = maxbipsUS / odrlUS
		}
		row = append(row, cell(gatherUS), fmt.Sprintf("%.0fx", speedup))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
