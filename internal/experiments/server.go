package experiments

import (
	"fmt"

	"repro/internal/manycore"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/vf"
	"repro/internal/workload"
)

// F16Server is an extension experiment: power-capped server consolidation.
// Jobs arrive in a shared queue (Poisson) and complete by retired
// instructions; idle cores clock-gate. Under a tight cap the controller's
// job is to spend the budget where it shortens the queue. The table
// reports job throughput, mean job latency and queue depth per controller
// — the metrics a datacentre operator actually caps against.
func F16Server(cfg Config) (Table, error) {
	cfg = cfg.normalized()
	names := []string{"od-rl", "maxbips", "pid", "greedy", "static"}
	if cfg.Quick {
		names = []string{"od-rl", "pid"}
	}

	t := Table{
		ID:     "F16",
		Title:  fmt.Sprintf("power-capped server (shared job queue) at %.0f W (extension)", cfg.BudgetW),
		Header: []string{"controller", "jobs/s", "mean-latency(ms)", "max-queue", "mean(W)", "over(J)"},
		Notes: []string{
			"Poisson arrivals into one shared queue; jobs complete by retired instructions",
			"offered load sized so a throttled chip queues visibly; idle cores clock-gate",
		},
	}

	w, h, err := sim.GridFor(cfg.Cores)
	if err != nil {
		return Table{}, err
	}
	warmupEpochs := int(cfg.WarmupS / 1e-3)
	measureEpochs := int(cfg.MeasureS / 1e-3)

	// Offered load: ~60% of the chip's top-speed service capacity, so a
	// tight cap pushes the system into visible queueing.
	work := workload.Phase{
		Class: workload.Compute, BaseCPI: 1.0, MPKI: 3.0,
		MemLatencyNs: 80, Activity: 0.85,
	}
	const meanJobInstr = 25e6
	topIPS := work.IPSAt(vf.Default().Max().FreqHz)
	arrivalRate := 0.6 * float64(cfg.Cores) * topIPS / meanJobInstr

	for _, name := range names {
		base := rng.New(cfg.Seed)
		sys, err := workload.NewJobSystem(cfg.Cores, work, arrivalRate, meanJobInstr, base.Split())
		if err != nil {
			return Table{}, err
		}
		sources := make([]workload.Source, cfg.Cores)
		for i := range sources {
			sources[i] = sys.Lane(i)
		}
		mcCfg := manycore.Config{
			Width: w, Height: h,
			VF:                 vf.Default(),
			Power:              power.Default(),
			Thermal:            thermal.Default(),
			ThermalEnabled:     true,
			SensorNoise:        0.02,
			TransitionPenaltyS: 10e-6,
		}
		chip, err := manycore.New(mcCfg, sources, base.Split())
		if err != nil {
			return Table{}, err
		}
		env := sim.DefaultEnv(cfg.Cores)
		env.Seed = cfg.Seed
		c, err := sim.NewController(name, env)
		if err != nil {
			return Table{}, err
		}

		out := make([]int, cfg.Cores)
		var energy, overJ float64
		for e := 0; e < warmupEpochs+measureEpochs; e++ {
			if e == warmupEpochs {
				sys.ResetStats()
			}
			tel := chip.Step(1e-3)
			c.Decide(&tel, cfg.BudgetW, out)
			for i, l := range out {
				chip.SetLevel(i, l)
			}
			if e >= warmupEpochs {
				energy += tel.TruePowerW * 1e-3
				if tel.TruePowerW > cfg.BudgetW {
					overJ += (tel.TruePowerW - cfg.BudgetW) * 1e-3
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			name,
			cell(float64(sys.Completed()) / cfg.MeasureS),
			cell(sys.MeanLatencyS() * 1e3),
			fmt.Sprintf("%d", sys.MaxQueued()),
			cell(energy / cfg.MeasureS),
			cell(overJ),
		})
	}
	return t, nil
}
