package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/manycore"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchStepCase is one epoch-kernel throughput measurement: the same
// epoch sequence executed by the struct-of-arrays kernel and by the
// retained pre-optimization reference kernel, on identically-built chips.
type BenchStepCase struct {
	// Name identifies the case; Cores the chip size.
	Name  string `json:"name"`
	Cores int    `json:"cores"`
	// Raw strips sensor noise and the thermal loop, isolating the kernel
	// from the irreducible per-core RNG draws and the Euler integrator.
	// Churn retargets one core in eight per epoch the way an exploring
	// controller would; the steady variant holds levels fixed.
	Raw   bool `json:"raw"`
	Churn bool `json:"churn"`
	// Epochs is the timed epoch count per rep (best of 3 reps is kept).
	Epochs int `json:"epochs"`
	// EpochsPerSec is the struct-of-arrays kernel's throughput;
	// ReferenceEpochsPerSec is the pre-optimization kernel's on the same
	// host in the same process. Speedup is their ratio.
	EpochsPerSec          float64 `json:"epochs_per_sec"`
	ReferenceEpochsPerSec float64 `json:"reference_epochs_per_sec"`
	Speedup               float64 `json:"speedup"`
}

// BenchStepGate is the acceptance threshold the report carries with it:
// the named case's measured speedup against the floor it must clear.
type BenchStepGate struct {
	Case       string  `json:"case"`
	MinSpeedup float64 `json:"min_speedup"`
	Speedup    float64 `json:"speedup"`
	Pass       bool    `json:"pass"`
}

// BenchStepReport is the machine-readable output of
// `odrl-bench -bench-step` (written as BENCH_step.json): single-thread
// epoch-kernel throughput, struct-of-arrays vs the reference kernel. The
// two kernels are bit-identical in output (see internal/manycore's oracle
// tests), so every ratio here is pure implementation speed.
type BenchStepReport struct {
	HostInfo
	Cases []BenchStepCase `json:"cases"`
	Gate  BenchStepGate   `json:"gate"`
}

// benchStepChip builds the chip shape the throughput cases measure: a
// preset-mix workload (one preset per core, round-robin), sequential
// stepping, full physics unless raw. Mirrors the BenchmarkStepKernel*
// harness in bench_test.go.
func benchStepChip(cores int, raw bool) (*manycore.Chip, error) {
	w, h, err := sim.GridFor(cores)
	if err != nil {
		return nil, err
	}
	cfg := manycore.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Workers = 1
	if raw {
		cfg.SensorNoise = 0
		cfg.ThermalEnabled = false
	}
	sources := make([]workload.Source, cores)
	base := rng.New(3)
	names := workload.PresetNames()
	for i := range sources {
		p, err := workload.NewProcess(workload.MustPreset(names[i%len(names)]), base.Split())
		if err != nil {
			return nil, err
		}
		sources[i] = p
	}
	return manycore.New(cfg, sources, rng.New(4))
}

// benchStepKernelRate times one kernel over warmup + reps×epochs and
// returns the best rep's epochs/sec. Both kernels run the identical epoch
// and churn sequence (churn is a function of the global epoch index), so
// the comparison is paired work. The best-of-reps minimum wall time is
// kept because scheduler preemption only ever adds time.
func benchStepKernelRate(cores int, raw, churn, reference bool, epochs, reps int) (float64, error) {
	chip, err := benchStepChip(cores, raw)
	if err != nil {
		return 0, err
	}
	defer chip.Close()
	levels := chip.Config().VF.Levels()
	var tel manycore.Telemetry
	epoch := 0
	runEpochs := func(n int) float64 {
		start := time.Now() //odrl:allow wallclock throughput benchmark measures host wall-clock by design
		for i := 0; i < n; i++ {
			if reference {
				chip.ReferenceStepInto(1e-3, &tel)
			} else {
				chip.StepInto(1e-3, &tel)
			}
			if churn {
				for c := epoch % 8; c < cores; c += 8 {
					chip.SetLevel(c, (chip.Level(c)+1)%levels)
				}
			}
			epoch++
		}
		return time.Since(start).Seconds() //odrl:allow wallclock throughput benchmark measures host wall-clock by design
	}
	runEpochs(epochs / 4) // warm caches, memos and the allocator
	best := runEpochs(epochs)
	for r := 1; r < reps; r++ {
		if s := runEpochs(epochs); s < best {
			best = s
		}
	}
	if best <= 0 {
		return 0, fmt.Errorf("benchstep: non-positive wall time for %d epochs", epochs)
	}
	return float64(epochs) / best, nil
}

// benchStepCase measures one case with both kernels.
func benchStepCase(name string, cores int, raw, churn bool, epochs, reps int) (BenchStepCase, error) {
	soa, err := benchStepKernelRate(cores, raw, churn, false, epochs, reps)
	if err != nil {
		return BenchStepCase{}, err
	}
	ref, err := benchStepKernelRate(cores, raw, churn, true, epochs, reps)
	if err != nil {
		return BenchStepCase{}, err
	}
	c := BenchStepCase{
		Name: name, Cores: cores, Raw: raw, Churn: churn, Epochs: epochs,
		EpochsPerSec: soa, ReferenceEpochsPerSec: ref,
	}
	if ref > 0 {
		c.Speedup = soa / ref
	}
	return c, nil
}

// BenchStepMinSpeedup is the throughput gate: the struct-of-arrays kernel
// must step a 256-core chip at least this many times faster than the
// reference kernel in the raw steady case (levels fixed, phases evolving,
// noise and thermal off — the kernel itself, nothing else).
const BenchStepMinSpeedup = 5.0

// BenchStep measures single-thread epoch-kernel throughput at 64, 256 and
// 1024 cores with full physics and controller-like level churn, plus the
// raw 256-core cases (steady and churn) that isolate the kernel. Quick
// mode shrinks epoch counts for CI smoke; the gate is only meaningful at
// full fidelity.
func BenchStep(cfg Config) (BenchStepReport, error) {
	rep := BenchStepReport{HostInfo: hostInfo()}
	reps := 3
	scale := 1
	if cfg.Quick {
		reps, scale = 1, 8
	}
	type spec struct {
		name       string
		cores      int
		raw, churn bool
		epochs     int
	}
	specs := []spec{
		{"default-churn-64", 64, false, true, 8000 / scale},
		{"default-churn-256", 256, false, true, 2000 / scale},
		{"default-churn-1024", 1024, false, true, 600 / scale},
		{"raw-churn-256", 256, true, true, 4000 / scale},
		{"raw-steady-256", 256, true, false, 4000 / scale},
	}
	for _, s := range specs {
		c, err := benchStepCase(s.name, s.cores, s.raw, s.churn, s.epochs, reps)
		if err != nil {
			return rep, err
		}
		rep.Cases = append(rep.Cases, c)
	}
	gate := rep.Cases[len(rep.Cases)-1] // raw-steady-256
	rep.Gate = BenchStepGate{
		Case:       gate.Name,
		MinSpeedup: BenchStepMinSpeedup,
		Speedup:    gate.Speedup,
		Pass:       gate.Speedup >= BenchStepMinSpeedup,
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r BenchStepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
