package vf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTableShape(t *testing.T) {
	tbl := Default()
	if tbl.Levels() != 8 {
		t.Fatalf("default table has %d levels, want 8", tbl.Levels())
	}
	if got := tbl.Min().FreqHz; math.Abs(got-1.0e9) > 1 {
		t.Fatalf("min freq = %g, want 1 GHz", got)
	}
	if got := tbl.Max().FreqHz; math.Abs(got-3.6e9) > 1 {
		t.Fatalf("max freq = %g, want 3.6 GHz", got)
	}
}

func TestTableMonotone(t *testing.T) {
	tbl := Default()
	pts := tbl.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].FreqHz <= pts[i-1].FreqHz {
			t.Fatalf("frequency not increasing at level %d", i)
		}
		if pts[i].VoltageV <= pts[i-1].VoltageV {
			t.Fatalf("voltage not increasing at level %d", i)
		}
		if pts[i].Level != i {
			t.Fatalf("level %d mislabeled as %d", i, pts[i].Level)
		}
	}
}

func TestAlphaPowerConsistency(t *testing.T) {
	tech := DefaultTech()
	tbl := Default()
	for _, p := range tbl.Points() {
		f := tech.FreqAt(p.VoltageV)
		if math.Abs(f-p.FreqHz)/p.FreqHz > 1e-6 {
			t.Fatalf("level %d: FreqAt(V)=%g but table says %g", p.Level, f, p.FreqHz)
		}
	}
}

func TestVoltageForInvertsFreqAt(t *testing.T) {
	tech := DefaultTech()
	for _, f := range []float64{0.5e9, 1e9, 2e9, 3e9, 3.6e9} {
		v, err := tech.VoltageFor(f, 1.4)
		if err != nil {
			t.Fatalf("VoltageFor(%g): %v", f, err)
		}
		back := tech.FreqAt(v)
		if math.Abs(back-f)/f > 1e-6 {
			t.Fatalf("roundtrip %g Hz -> %g V -> %g Hz", f, v, back)
		}
	}
}

func TestVoltageForUnachievable(t *testing.T) {
	tech := DefaultTech()
	if _, err := tech.VoltageFor(100e9, 1.4); err == nil {
		t.Fatal("expected error for unachievable frequency")
	}
	if _, err := tech.VoltageFor(-1, 1.4); err == nil {
		t.Fatal("expected error for negative frequency")
	}
}

func TestFreqAtBelowThreshold(t *testing.T) {
	tech := DefaultTech()
	if f := tech.FreqAt(tech.VthV); f != 0 {
		t.Fatalf("FreqAt(Vth) = %g, want 0", f)
	}
	if f := tech.FreqAt(0.1); f != 0 {
		t.Fatalf("FreqAt(0.1) = %g, want 0", f)
	}
}

func TestNewTableValidation(t *testing.T) {
	cases := []struct {
		name   string
		points []OperatingPoint
	}{
		{"empty", nil},
		{"zero freq", []OperatingPoint{{FreqHz: 0, VoltageV: 1}}},
		{"zero voltage", []OperatingPoint{{FreqHz: 1e9, VoltageV: 0}}},
		{"duplicate freq", []OperatingPoint{{FreqHz: 1e9, VoltageV: 0.8}, {FreqHz: 1e9, VoltageV: 0.9}}},
		{"voltage not increasing", []OperatingPoint{{FreqHz: 1e9, VoltageV: 0.9}, {FreqHz: 2e9, VoltageV: 0.8}}},
	}
	for _, c := range cases {
		if _, err := NewTable(c.points); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewTableSortsPoints(t *testing.T) {
	tbl, err := NewTable([]OperatingPoint{
		{FreqHz: 2e9, VoltageV: 0.9},
		{FreqHz: 1e9, VoltageV: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Point(0).FreqHz != 1e9 || tbl.Point(1).FreqHz != 2e9 {
		t.Fatal("points not sorted by frequency")
	}
}

func TestClamp(t *testing.T) {
	tbl := Default()
	if tbl.Clamp(-5) != 0 {
		t.Fatal("Clamp(-5) != 0")
	}
	if tbl.Clamp(100) != tbl.Levels()-1 {
		t.Fatal("Clamp(100) != top level")
	}
	if tbl.Clamp(3) != 3 {
		t.Fatal("Clamp(3) != 3")
	}
}

func TestPointPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Point(-1) did not panic")
		}
	}()
	Default().Point(-1)
}

func TestLevelForFreq(t *testing.T) {
	tbl := Default()
	if l := tbl.LevelForFreq(0); l != 0 {
		t.Fatalf("LevelForFreq(0) = %d, want 0", l)
	}
	if l := tbl.LevelForFreq(100e9); l != tbl.Levels()-1 {
		t.Fatalf("LevelForFreq(huge) = %d, want top", l)
	}
	// Exactly the frequency of level 4 should return level 4.
	f := tbl.Point(4).FreqHz
	if l := tbl.LevelForFreq(f); l != 4 {
		t.Fatalf("LevelForFreq(level-4 freq) = %d, want 4", l)
	}
	// Slightly above level 4 should return level 5.
	if l := tbl.LevelForFreq(f + 1); l != 5 {
		t.Fatalf("LevelForFreq(level-4 freq + 1) = %d, want 5", l)
	}
}

func TestGenerateErrors(t *testing.T) {
	tech := DefaultTech()
	if _, err := Generate(1e9, 2e9, 1, tech); err == nil {
		t.Fatal("expected error for 1 level")
	}
	if _, err := Generate(2e9, 1e9, 4, tech); err == nil {
		t.Fatal("expected error for inverted range")
	}
	if _, err := Generate(1e9, 500e9, 4, tech); err == nil {
		t.Fatal("expected error for unachievable max frequency")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if Default().String() == "" {
		t.Fatal("String() is empty")
	}
}

// Property: FreqAt is monotone non-decreasing in voltage above threshold.
func TestQuickFreqAtMonotone(t *testing.T) {
	tech := DefaultTech()
	f := func(a, b float64) bool {
		va := 0.3 + math.Mod(math.Abs(a), 1.1)
		vb := 0.3 + math.Mod(math.Abs(b), 1.1)
		if va > vb {
			va, vb = vb, va
		}
		return tech.FreqAt(va) <= tech.FreqAt(vb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: generated tables are always valid (monotone V and f) for
// arbitrary level counts and ranges within the achievable envelope.
func TestQuickGenerateValid(t *testing.T) {
	tech := DefaultTech()
	f := func(nRaw uint8, loRaw, hiRaw uint16) bool {
		n := int(nRaw%14) + 2
		lo := 0.5e9 + float64(loRaw%2000)*1e6
		hi := lo + 0.5e9 + float64(hiRaw%2000)*1e6
		if hi > 3.8e9 {
			hi = 3.8e9
		}
		if hi <= lo {
			return true
		}
		tbl, err := Generate(lo, hi, n, tech)
		if err != nil {
			return false
		}
		pts := tbl.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].FreqHz <= pts[i-1].FreqHz || pts[i].VoltageV <= pts[i-1].VoltageV {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
