// Package vf models discrete voltage/frequency (VF) operating points for
// per-core DVFS, the actuation knob every controller in this repository
// manipulates.
//
// Voltages are derived from frequencies via the alpha-power law
//
//	f = K * (Vdd - Vth)^alpha / Vdd
//
// which captures the super-linear voltage cost of high frequency that makes
// DVFS worthwhile in the first place: dynamic power scales as V²f, so the
// top levels are disproportionately expensive per unit of speed.
package vf

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// OperatingPoint is one discrete VF level.
type OperatingPoint struct {
	Level    int     // index into the table, 0 = slowest
	FreqHz   float64 // clock frequency in Hz
	VoltageV float64 // supply voltage in volts
}

// Table is an ordered list of operating points, slowest first.
type Table struct {
	points []OperatingPoint
	// Flat per-level slabs mirroring points, built once at construction.
	// Hot loops index these instead of calling Point per core per epoch:
	// a level lookup becomes one bounds-checked float64 load with no
	// struct copy.
	freqsHz   []float64
	voltagesV []float64
}

// TechParams are the alpha-power-law constants used to derive voltage from
// frequency. The defaults approximate a 22 nm-class planar technology.
type TechParams struct {
	VthV  float64 // threshold voltage (V)
	Alpha float64 // velocity-saturation exponent, ~1.3 for short channel
	// KHz is the proportionality constant in f = KHz*(V-Vth)^alpha/V,
	// with f in Hz and V in volts.
	KHz float64
}

// DefaultTech returns alpha-power-law constants calibrated so that 1.15 V
// yields roughly 3.6 GHz, a plausible 22 nm-class fast corner.
func DefaultTech() TechParams {
	return TechParams{VthV: 0.30, Alpha: 1.3, KHz: 5.2e9}
}

// FreqAt returns the frequency achievable at voltage v under p.
func (p TechParams) FreqAt(v float64) float64 {
	if v <= p.VthV {
		return 0
	}
	return p.KHz * math.Pow(v-p.VthV, p.Alpha) / v
}

// VoltageFor returns the minimum voltage sustaining frequency f under p,
// found by bisection on the monotone FreqAt. It returns an error if f is
// not achievable below vMax.
func (p TechParams) VoltageFor(f, vMax float64) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("vf: non-positive frequency %g", f)
	}
	if p.FreqAt(vMax) < f {
		return 0, fmt.Errorf("vf: frequency %g Hz unachievable below %g V", f, vMax)
	}
	lo, hi := p.VthV, vMax
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.FreqAt(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// NewTable builds a validated table from explicit points. Points must be
// strictly increasing in both frequency and voltage; levels are renumbered
// 0..n-1 in frequency order.
func NewTable(points []OperatingPoint) (*Table, error) {
	if len(points) == 0 {
		return nil, errors.New("vf: empty table")
	}
	ps := make([]OperatingPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].FreqHz < ps[j].FreqHz })
	for i := range ps {
		if ps[i].FreqHz <= 0 || ps[i].VoltageV <= 0 {
			return nil, fmt.Errorf("vf: non-positive point %+v", ps[i])
		}
		if i > 0 {
			if ps[i].FreqHz == ps[i-1].FreqHz {
				return nil, fmt.Errorf("vf: duplicate frequency %g Hz", ps[i].FreqHz)
			}
			if ps[i].VoltageV <= ps[i-1].VoltageV {
				return nil, fmt.Errorf("vf: voltage not increasing with frequency at %g Hz", ps[i].FreqHz)
			}
		}
		ps[i].Level = i
	}
	t := &Table{
		points:    ps,
		freqsHz:   make([]float64, len(ps)),
		voltagesV: make([]float64, len(ps)),
	}
	for i, p := range ps {
		t.freqsHz[i] = p.FreqHz
		t.voltagesV[i] = p.VoltageV
	}
	return t, nil
}

// Generate builds an n-level table spanning [fMin, fMax] Hz with voltages
// from the alpha-power law. Levels are spaced uniformly in frequency, which
// matches commercial P-state tables closely enough for control studies.
func Generate(fMin, fMax float64, n int, tech TechParams) (*Table, error) {
	if n < 2 {
		return nil, errors.New("vf: need at least 2 levels")
	}
	if fMin <= 0 || fMax <= fMin {
		return nil, fmt.Errorf("vf: invalid frequency range [%g, %g]", fMin, fMax)
	}
	points := make([]OperatingPoint, n)
	for i := 0; i < n; i++ {
		f := fMin + (fMax-fMin)*float64(i)/float64(n-1)
		v, err := tech.VoltageFor(f, 1.4)
		if err != nil {
			return nil, err
		}
		points[i] = OperatingPoint{Level: i, FreqHz: f, VoltageV: v}
	}
	return NewTable(points)
}

// Default returns the 8-level table used by the default platform:
// 1.0–3.6 GHz under DefaultTech.
func Default() *Table {
	t, err := Generate(1.0e9, 3.6e9, 8, DefaultTech())
	if err != nil {
		panic("vf: default table generation failed: " + err.Error())
	}
	return t
}

// Levels returns the number of operating points.
func (t *Table) Levels() int { return len(t.points) }

// Point returns the operating point at the given level. It panics on an
// out-of-range level: controllers must emit valid levels, and a silent clamp
// would hide controller bugs.
func (t *Table) Point(level int) OperatingPoint {
	if level < 0 || level >= len(t.points) {
		panic(fmt.Sprintf("vf: level %d out of range [0,%d)", level, len(t.points)))
	}
	return t.points[level]
}

// Min and Max return the slowest and fastest operating points.
func (t *Table) Min() OperatingPoint { return t.points[0] }
func (t *Table) Max() OperatingPoint { return t.points[len(t.points)-1] }

// Clamp returns level forced into the valid range.
func (t *Table) Clamp(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(t.points) {
		return len(t.points) - 1
	}
	return level
}

// LevelForFreq returns the lowest level whose frequency is >= f, or the top
// level if f exceeds the table's maximum.
func (t *Table) LevelForFreq(f float64) int {
	for _, p := range t.points {
		if p.FreqHz >= f {
			return p.Level
		}
	}
	return len(t.points) - 1
}

// FreqsHz returns the per-level frequency slab, slowest first. The slice
// is owned by the table and must be treated as read-only; it exists so
// epoch kernels can turn a level into a frequency with one indexed load.
// Values are the exact FreqHz fields Point would return.
func (t *Table) FreqsHz() []float64 { return t.freqsHz }

// VoltagesV returns the per-level voltage slab, slowest first. Same
// ownership and exactness contract as FreqsHz.
func (t *Table) VoltagesV() []float64 { return t.voltagesV }

// Points returns a copy of all operating points, slowest first.
func (t *Table) Points() []OperatingPoint {
	out := make([]OperatingPoint, len(t.points))
	copy(out, t.points)
	return out
}

// String renders the table for configuration dumps.
func (t *Table) String() string {
	s := ""
	for i, p := range t.points {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("L%d %.2fGHz@%.3fV", p.Level, p.FreqHz/1e9, p.VoltageV)
	}
	return s
}
