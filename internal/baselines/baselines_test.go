package baselines

import (
	"math"
	"testing"

	"repro/internal/ctrl"
	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/vf"
)

func predictor(t *testing.T) ctrl.Predictor {
	t.Helper()
	p, err := ctrl.NewPredictor(vf.Default(), power.Default())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tel builds a telemetry frame; mbs/pws/ipss are per-core or broadcast from
// a single value.
func tel(cores, level int, pw, ips, mb float64) *manycore.Telemetry {
	tbl := vf.Default()
	op := tbl.Point(level)
	out := &manycore.Telemetry{EpochS: 1e-3, Cores: make([]manycore.CoreTelemetry, cores)}
	total := power.Default().UncoreW
	for i := range out.Cores {
		out.Cores[i] = manycore.CoreTelemetry{
			Level: level, FreqHz: op.FreqHz, VoltageV: op.VoltageV,
			IPS: ips, PowerW: pw, MemBoundedness: mb, TempK: 330,
		}
		total += pw
	}
	out.ChipPowerW = total
	out.TruePowerW = total
	return out
}

func mesh(t *testing.T) *noc.Mesh {
	t.Helper()
	m, err := noc.New(4, 4, noc.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ---------- MaxBIPS ----------

func TestMaxBIPSValidation(t *testing.T) {
	p := predictor(t)
	if _, err := NewMaxBIPS(p, 0, 0.1); err == nil {
		t.Fatal("expected error for zero cadence")
	}
	if _, err := NewMaxBIPS(p, 1, 0); err == nil {
		t.Fatal("expected error for zero resolution")
	}
}

func TestMaxBIPSRespectsBudgetUnderOwnPredictions(t *testing.T) {
	p := predictor(t)
	m, err := NewMaxBIPS(p, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	frame := tel(16, 3, 1.2, 2e9, 0.3)
	out := make([]int, 16)
	for _, budget := range []float64{20, 40, 60, 100} {
		m.Decide(frame, budget, out)
		predicted := p.Power.UncoreW
		for i, l := range out {
			predicted += p.PowerAt(frame.Cores[i], l)
		}
		if predicted > budget+1e-9 {
			t.Fatalf("budget %v: predicted power %v exceeds it", budget, predicted)
		}
	}
}

func TestMaxBIPSMatchesBruteForceOnSmallInstance(t *testing.T) {
	p := predictor(t)
	m, err := NewMaxBIPS(p, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Three cores with different mem-boundedness.
	frame := tel(3, 3, 1.2, 2e9, 0)
	frame.Cores[1].MemBoundedness = 0.5
	frame.Cores[2].MemBoundedness = 0.9
	const budget = 12.0
	out := make([]int, 3)
	m.Decide(frame, budget, out)

	gotBIPS := 0.0
	for i, l := range out {
		gotBIPS += p.IPSAt(frame.Cores[i], l)
	}

	// Brute force over all level assignments with the same conservative
	// power quantisation the DP uses.
	L := p.VF.Levels()
	cost := func(i, l int) float64 {
		return math.Ceil(p.PowerAt(frame.Cores[i], l)/0.01) * 0.01
	}
	best := -1.0
	for a := 0; a < L; a++ {
		for b := 0; b < L; b++ {
			for c := 0; c < L; c++ {
				pw := p.Power.UncoreW + cost(0, a) + cost(1, b) + cost(2, c)
				if pw > budget {
					continue
				}
				v := p.IPSAt(frame.Cores[0], a) + p.IPSAt(frame.Cores[1], b) + p.IPSAt(frame.Cores[2], c)
				if v > best {
					best = v
				}
			}
		}
	}
	if best < 0 {
		t.Fatal("brute force found no feasible assignment; test misconfigured")
	}
	if math.Abs(gotBIPS-best)/best > 1e-9 {
		t.Fatalf("DP throughput %v, brute-force optimum %v", gotBIPS, best)
	}
}

func TestMaxBIPSInfeasibleBudget(t *testing.T) {
	p := predictor(t)
	m, _ := NewMaxBIPS(p, 1, 0.05)
	frame := tel(16, 3, 1.2, 2e9, 0.3)
	out := make([]int, 16)
	m.Decide(frame, 1.0, out) // below the uncore floor
	for i, l := range out {
		if l != 0 {
			t.Fatalf("core %d at level %d under infeasible budget, want 0", i, l)
		}
	}
}

func TestMaxBIPSCadenceHoldsDecision(t *testing.T) {
	p := predictor(t)
	m, _ := NewMaxBIPS(p, 5, 0.05)
	frameA := tel(8, 3, 1.2, 2e9, 0.3)
	out := make([]int, 8)
	m.Decide(frameA, 60, out)
	first := append([]int(nil), out...)

	// Radically different telemetry mid-cadence must be ignored.
	frameB := tel(8, 3, 3.0, 1e9, 0.9)
	for e := 1; e < 5; e++ {
		m.Decide(frameB, 60, out)
		for i := range out {
			if out[i] != first[i] {
				t.Fatalf("epoch %d: decision changed mid-cadence", e)
			}
		}
	}
	// Epoch 5 recomputes.
	m.Decide(frameB, 20, out)
	same := true
	for i := range out {
		if out[i] != first[i] {
			same = false
		}
	}
	if same {
		t.Fatal("decision did not update at the cadence boundary")
	}
}

func TestMaxBIPSPrefersComputeBoundCores(t *testing.T) {
	p := predictor(t)
	m, _ := NewMaxBIPS(p, 1, 0.02)
	frame := tel(2, 3, 1.5, 2e9, 0)
	frame.Cores[1].MemBoundedness = 0.95
	out := make([]int, 2)
	// Budget allows roughly one fast and one slow core.
	m.Decide(frame, 9, out)
	if out[0] <= out[1] {
		t.Fatalf("compute-bound core at level %d, memory-bound at %d; want compute higher", out[0], out[1])
	}
}

// ---------- SteepestDrop ----------

func TestSteepestDropValidation(t *testing.T) {
	if _, err := NewSteepestDrop(predictor(t), 0); err == nil {
		t.Fatal("expected error for zero cadence")
	}
}

func TestSteepestDropRespectsBudgetWhenFeasible(t *testing.T) {
	p := predictor(t)
	s, err := NewSteepestDrop(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := tel(16, 3, 1.2, 2e9, 0.3)
	out := make([]int, 16)
	for _, budget := range []float64{25, 40, 60, 120} {
		s.Decide(frame, budget, out)
		predicted := p.Power.UncoreW
		for i, l := range out {
			predicted += p.PowerAt(frame.Cores[i], l)
		}
		floor := p.Power.UncoreW
		for i := range out {
			floor += p.PowerAt(frame.Cores[i], 0)
		}
		if floor <= budget && predicted > budget+1e-9 {
			t.Fatalf("budget %v: predicted %v exceeds it (floor %v)", budget, predicted, floor)
		}
	}
}

func TestSteepestDropUnlimitedBudgetAllTop(t *testing.T) {
	p := predictor(t)
	s, _ := NewSteepestDrop(p, 1)
	frame := tel(8, 3, 1.2, 2e9, 0.3)
	out := make([]int, 8)
	s.Decide(frame, 1e6, out)
	top := p.VF.Levels() - 1
	for i, l := range out {
		if l != top {
			t.Fatalf("core %d at %d under unlimited budget, want top %d", i, l, top)
		}
	}
}

func TestSteepestDropDemotesMemoryBoundFirst(t *testing.T) {
	p := predictor(t)
	s, _ := NewSteepestDrop(p, 1)
	frame := tel(2, 3, 1.5, 2e9, 0)
	frame.Cores[1].MemBoundedness = 0.95
	out := make([]int, 2)
	s.Decide(frame, 9, out)
	if out[0] <= out[1] {
		t.Fatalf("memory-bound core should be demoted first: got levels %v", out)
	}
}

// ---------- PID ----------

func TestPIDValidation(t *testing.T) {
	if _, err := NewPID(nil, 1, 1, 0); err == nil {
		t.Fatal("expected error for nil table")
	}
	if _, err := NewPID(vf.Default(), -1, 0, 0); err == nil {
		t.Fatal("expected error for negative gain")
	}
}

func TestPIDUniformOutput(t *testing.T) {
	p := DefaultPID(vf.Default())
	out := make([]int, 8)
	p.Decide(tel(8, 3, 2, 2e9, 0.3), 40, out)
	for i := 1; i < len(out); i++ {
		if out[i] != out[0] {
			t.Fatal("PID must command one uniform level")
		}
	}
}

func TestPIDDirection(t *testing.T) {
	p := DefaultPID(vf.Default())
	out := make([]int, 4)
	over := tel(4, 3, 10, 2e9, 0.3) // way over any small budget
	var seq []int
	for e := 0; e < 10; e++ {
		p.Decide(over, 20, out)
		seq = append(seq, out[0])
	}
	if seq[len(seq)-1] >= seq[0] {
		t.Fatalf("PID did not throttle under sustained overshoot: %v", seq)
	}

	p2 := DefaultPID(vf.Default())
	under := tel(4, 1, 0.2, 1e9, 0.3) // far under budget
	seq = nil
	for e := 0; e < 10; e++ {
		p2.Decide(under, 100, out)
		seq = append(seq, out[0])
	}
	if seq[len(seq)-1] <= seq[0] {
		t.Fatalf("PID did not raise levels under sustained headroom: %v", seq)
	}
}

func TestPIDClampsToLevelRange(t *testing.T) {
	p := DefaultPID(vf.Default())
	out := make([]int, 2)
	for e := 0; e < 100; e++ {
		p.Decide(tel(2, 0, 50, 1e9, 0.3), 5, out) // hopeless overshoot forever
		if out[0] < 0 || out[0] >= vf.Default().Levels() {
			t.Fatalf("PID emitted out-of-range level %d", out[0])
		}
	}
	if out[0] != 0 {
		t.Fatal("sustained overshoot should pin PID to the bottom level")
	}
}

// ---------- Static ----------

func TestStaticValidation(t *testing.T) {
	if _, err := NewStatic(nil, power.Default(), 360); err == nil {
		t.Fatal("expected error for nil table")
	}
	if _, err := NewStatic(vf.Default(), power.Default(), 0); err == nil {
		t.Fatal("expected error for zero hot temperature")
	}
}

func TestStaticWorstCaseFitsBudget(t *testing.T) {
	pp := power.Default()
	s, err := NewStatic(vf.Default(), pp, 360)
	if err != nil {
		t.Fatal(err)
	}
	frame := tel(16, 0, 0.5, 1e9, 0.2)
	out := make([]int, 16)
	s.Decide(frame, 40, out)
	lvl := out[0]
	op := vf.Default().Point(lvl)
	worst := pp.UncoreW + 16*pp.CoreW(op.VoltageV, op.FreqHz, 1.0, 360)
	if worst > 40 {
		t.Fatalf("static level %d has worst-case power %v > budget 40", lvl, worst)
	}
	// And the next level up must not fit (maximality), unless at top.
	if lvl < vf.Default().Levels()-1 {
		opUp := vf.Default().Point(lvl + 1)
		worstUp := pp.UncoreW + 16*pp.CoreW(opUp.VoltageV, opUp.FreqHz, 1.0, 360)
		if worstUp <= 40 {
			t.Fatalf("static level %d is not maximal", lvl)
		}
	}
}

func TestStaticRecomputesOnCapChange(t *testing.T) {
	s, _ := NewStatic(vf.Default(), power.Default(), 360)
	frame := tel(16, 0, 0.5, 1e9, 0.2)
	out := make([]int, 16)
	s.Decide(frame, 150, out)
	high := out[0]
	s.Decide(frame, 30, out)
	low := out[0]
	if low >= high {
		t.Fatalf("cap drop 150→30 W did not lower the design point (%d → %d)", high, low)
	}
}

// ---------- Greedy ----------

func TestGreedyValidation(t *testing.T) {
	if _, err := NewGreedy(nil, power.Default()); err == nil {
		t.Fatal("expected error for nil table")
	}
}

func TestGreedyStepsTowardShare(t *testing.T) {
	g, err := NewGreedy(vf.Default(), power.Default())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 2)
	// Share = (20.5-4)/2 W each ≈ 8.2 W.
	frame := tel(2, 4, 1.0, 2e9, 0.1)
	frame.Cores[0].PowerW = 12.0 // over share → down
	frame.Cores[1].PowerW = 1.0  // far under, compute-bound → up
	g.Decide(frame, 20.5, out)
	if out[0] != 3 {
		t.Fatalf("over-share core level = %d, want 3", out[0])
	}
	if out[1] != 5 {
		t.Fatalf("under-share core level = %d, want 5", out[1])
	}
}

func TestGreedyHoldsMemoryBound(t *testing.T) {
	g, _ := NewGreedy(vf.Default(), power.Default())
	out := make([]int, 1)
	frame := tel(1, 4, 0.5, 1e9, 0.9) // under share but memory-bound
	g.Decide(frame, 30, out)
	if out[0] != 4 {
		t.Fatalf("memory-bound core moved to %d, want hold at 4", out[0])
	}
}

func TestGreedyInfeasibleBudget(t *testing.T) {
	g, _ := NewGreedy(vf.Default(), power.Default())
	out := make([]int, 4)
	g.Decide(tel(4, 4, 1, 1e9, 0.1), 2, out) // below uncore
	for _, l := range out {
		if l != 0 {
			t.Fatal("infeasible budget must pin to bottom")
		}
	}
}

// ---------- Interface conformance and comm costs ----------

func TestAllImplementController(t *testing.T) {
	p := predictor(t)
	mb, _ := NewMaxBIPS(p, 10, 0.1)
	sd, _ := NewSteepestDrop(p, 10)
	st, _ := NewStatic(vf.Default(), power.Default(), 360)
	gr, _ := NewGreedy(vf.Default(), power.Default())
	controllers := []ctrl.Controller{mb, sd, DefaultPID(vf.Default()), st, gr}
	names := map[string]bool{}
	m := mesh(t)
	for _, c := range controllers {
		if c.Name() == "" {
			t.Fatal("empty controller name")
		}
		if names[c.Name()] {
			t.Fatalf("duplicate controller name %q", c.Name())
		}
		names[c.Name()] = true
		cost := c.CommPerEpoch(m)
		if cost.LatencyS < 0 || cost.EnergyJ < 0 {
			t.Fatalf("%s: negative comm cost", c.Name())
		}
	}
}

func TestCentralizedCommExceedsStatic(t *testing.T) {
	p := predictor(t)
	m := mesh(t)
	mbips, _ := NewMaxBIPS(p, 1, 0.1)
	st, _ := NewStatic(vf.Default(), power.Default(), 360)
	if mbips.CommPerEpoch(m).EnergyJ <= st.CommPerEpoch(m).EnergyJ {
		t.Fatal("per-epoch centralized traffic must exceed static's zero")
	}
}
