package baselines

import (
	"fmt"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/vf"
)

// Greedy is a reactive distributed heuristic: each core compares its own
// power against an equal share of the budget every epoch and steps one VF
// level toward its share — down when over, up when comfortably under and
// the workload looks frequency-responsive. It is as cheap and local as the
// OD-RL fine layer but has no learning and no budget reallocation, making
// it the natural "distributed but dumb" comparison point.
type Greedy struct {
	table *vf.Table
	pwr   power.Params
	// upHeadroom is how far below its share a core must be to promote.
	upHeadroom float64
	// memCutoff blocks promotion of heavily memory-bound cores.
	memCutoff float64
}

// NewGreedy builds the heuristic.
func NewGreedy(table *vf.Table, pwr power.Params) (*Greedy, error) {
	if table == nil {
		return nil, fmt.Errorf("baselines: nil VF table")
	}
	if err := pwr.Validate(); err != nil {
		return nil, err
	}
	return &Greedy{table: table, pwr: pwr, upHeadroom: 0.2, memCutoff: 0.6}, nil
}

// Name implements ctrl.Controller.
func (g *Greedy) Name() string { return "greedy" }

// Decide implements ctrl.Controller.
func (g *Greedy) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	n := len(tel.Cores)
	share := (budgetW - g.pwr.UncoreW) / float64(n)
	if share <= 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	for i := 0; i < n; i++ {
		ct := &tel.Cores[i]
		switch {
		case ct.PowerW > share:
			out[i] = g.table.Clamp(ct.Level - 1)
		case ct.PowerW < (1-g.upHeadroom)*share && ct.MemBoundedness < g.memCutoff:
			out[i] = g.table.Clamp(ct.Level + 1)
		default:
			out[i] = ct.Level
		}
	}
}

// CommPerEpoch implements ctrl.Controller: decisions are local; the only
// traffic is the broadcast of the budget share on cap changes, negligible
// in steady state. We charge one neighbour exchange to model the power
// sensor fabric.
func (g *Greedy) CommPerEpoch(mesh *noc.Mesh) noc.Cost {
	return mesh.NeighborExchangeCost()
}
