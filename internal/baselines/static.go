package baselines

import (
	"fmt"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/vf"
)

// Static pins every core to the highest uniform VF level whose *worst-case*
// chip power (all cores fully active at the hot-corner temperature) fits
// the budget — the classical TDP design point. It never overshoots under
// the model, and it never exploits a single watt of dynamic slack.
type Static struct {
	table *vf.Table
	pwr   power.Params
	// hotK is the temperature assumed for worst-case leakage.
	hotK float64

	level      int
	haveBudget bool
	lastBudget float64
}

// NewStatic builds the controller; hotK is the worst-case junction
// temperature used for leakage sizing (e.g. 360 K).
func NewStatic(table *vf.Table, pwr power.Params, hotK float64) (*Static, error) {
	if table == nil {
		return nil, fmt.Errorf("baselines: nil VF table")
	}
	if err := pwr.Validate(); err != nil {
		return nil, err
	}
	if hotK <= 0 {
		return nil, fmt.Errorf("baselines: hot temperature must be positive, got %g", hotK)
	}
	return &Static{table: table, pwr: pwr, hotK: hotK}, nil
}

// Name implements ctrl.Controller.
func (s *Static) Name() string { return "static" }

// levelFor computes the design point for a core count and budget.
func (s *Static) levelFor(cores int, budgetW float64) int {
	best := 0
	for l := 0; l < s.table.Levels(); l++ {
		op := s.table.Point(l)
		worst := s.pwr.UncoreW + float64(cores)*s.pwr.CoreW(op.VoltageV, op.FreqHz, 1.0, s.hotK)
		if worst <= budgetW {
			best = l
		}
	}
	return best
}

// Decide implements ctrl.Controller.
func (s *Static) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	if !s.haveBudget || budgetW != s.lastBudget {
		s.level = s.levelFor(len(tel.Cores), budgetW)
		s.lastBudget = budgetW
		s.haveBudget = true
	}
	for i := range out {
		out[i] = s.level
	}
}

// CommPerEpoch implements ctrl.Controller: the design point is set once at
// boot (and on cap changes), so steady-state traffic is zero.
func (s *Static) CommPerEpoch(*noc.Mesh) noc.Cost { return noc.Cost{} }
