// Package baselines implements the state-of-the-art power managers the
// paper compares OD-RL against: a MaxBIPS-class global optimiser, a
// steepest-drop greedy heuristic, a chip-level PID power capper (RAPL
// style), a static worst-case design point, and a simple reactive
// headroom heuristic.
//
// The prediction-based controllers (MaxBIPS, SteepestDrop) are faithful to
// their published formulations: they build per-core power/performance
// estimates from the last epoch's telemetry and solve a budget-constrained
// assignment. Their weakness is structural, not an implementation
// handicap — the telemetry describes the phase that just ended, so abrupt
// phase changes invalidate the predictions and the chip overshoots until
// the next decision, which at realistic decision costs arrives only every
// K epochs.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/ctrl"
	"repro/internal/manycore"
	"repro/internal/noc"
)

// MaxBIPS maximises predicted aggregate instruction throughput subject to
// the chip power budget by solving a multiple-choice knapsack over
// (core, VF level) pairs with dynamic programming over discretised power.
// This reproduces the global optimisation style of Isci et al. (MICRO'06).
type MaxBIPS struct {
	pred ctrl.Predictor
	// CadenceEpochs is how many control epochs one decision is held for;
	// it models the decision latency of centralised optimisation.
	cadence int
	// resW is the DP power resolution in watts. Costs are rounded up, so
	// the solution never exceeds the budget under its own predictions.
	resW float64

	epoch int
	last  []int

	// scratch reused across decisions
	dp     []float64
	choice []int16
}

// NewMaxBIPS builds the controller. cadence must be >= 1; resW > 0.
func NewMaxBIPS(pred ctrl.Predictor, cadence int, resW float64) (*MaxBIPS, error) {
	if cadence < 1 {
		return nil, fmt.Errorf("baselines: cadence must be >= 1, got %d", cadence)
	}
	if resW <= 0 {
		return nil, fmt.Errorf("baselines: resolution must be positive, got %g", resW)
	}
	return &MaxBIPS{pred: pred, cadence: cadence, resW: resW}, nil
}

// Name implements ctrl.Controller.
func (m *MaxBIPS) Name() string { return "maxbips" }

// Decide implements ctrl.Controller.
func (m *MaxBIPS) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	defer func() { m.epoch++ }()
	if m.last != nil && m.epoch%m.cadence != 0 {
		copy(out, m.last)
		return
	}
	m.solve(tel, budgetW, out)
	if m.last == nil {
		m.last = make([]int, len(out))
	}
	copy(m.last, out)
}

// solve runs the knapsack DP and writes the optimal assignment into out.
func (m *MaxBIPS) solve(tel *manycore.Telemetry, budgetW float64, out []int) {
	n := len(tel.Cores)
	levels := m.pred.VF.Levels()
	coreBudget := budgetW - m.pred.Power.UncoreW
	if coreBudget <= 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	buckets := int(coreBudget / m.resW)

	// Per-(core, level) predicted cost in buckets and value in IPS.
	costs := make([]int, n*levels)
	values := make([]float64, n*levels)
	for i := 0; i < n; i++ {
		for l := 0; l < levels; l++ {
			p := m.pred.PowerAt(tel.Cores[i], l)
			cost := int(math.Ceil(p / m.resW))
			if cost < 0 || math.IsNaN(p) {
				// int(Ceil(NaN)) is implementation-defined and a negative
				// cost would index dp out of range; corrupted predictions
				// degrade to "free", never to a crash.
				cost = 0
			}
			costs[i*levels+l] = cost
			v := m.pred.IPSAt(tel.Cores[i], l)
			if math.IsNaN(v) {
				v = 0
			}
			values[i*levels+l] = v
		}
	}

	const neg = math.MaxFloat64
	if len(m.dp) < 2*(buckets+1) {
		m.dp = make([]float64, 2*(buckets+1))
	}
	if len(m.choice) < n*(buckets+1) {
		m.choice = make([]int16, n*(buckets+1))
	}
	cur := m.dp[:buckets+1]
	next := m.dp[buckets+1 : 2*(buckets+1)]
	for b := range cur {
		cur[b] = -neg
	}
	cur[0] = 0

	feasible := true
	for i := 0; i < n && feasible; i++ {
		rowChoice := m.choice[i*(buckets+1) : (i+1)*(buckets+1)]
		for b := range next {
			next[b] = -neg
			rowChoice[b] = -1
		}
		any := false
		for b := 0; b <= buckets; b++ {
			if cur[b] == -neg {
				continue
			}
			for l := 0; l < levels; l++ {
				nb := b + costs[i*levels+l]
				if nb > buckets {
					continue
				}
				if v := cur[b] + values[i*levels+l]; v > next[nb] {
					next[nb] = v
					rowChoice[nb] = int16(l)
					any = true
				}
			}
		}
		if !any {
			feasible = false
		}
		cur, next = next, cur
	}

	if !feasible {
		// Even all-minimum exceeds the budget: the best a VF controller
		// can do is pin everything to the bottom level.
		for i := range out {
			out[i] = 0
		}
		return
	}

	// Best final bucket, then backtrack the choices.
	bestB, bestV := -1, -neg
	for b := 0; b <= buckets; b++ {
		if cur[b] > bestV {
			bestB, bestV = b, cur[b]
		}
	}
	b := bestB
	for i := n - 1; i >= 0; i-- {
		l := int(m.choice[i*(buckets+1)+b])
		out[i] = l
		b -= costs[i*m.pred.VF.Levels()+l]
	}
}

// CommPerEpoch implements ctrl.Controller: a full telemetry gather and
// command scatter per decision, amortised over the cadence.
func (m *MaxBIPS) CommPerEpoch(mesh *noc.Mesh) noc.Cost {
	g := mesh.GatherCost(mesh.Center())
	s := mesh.ScatterCost(mesh.Center())
	k := float64(m.cadence)
	return noc.Cost{LatencyS: (g.LatencyS + s.LatencyS) / k, EnergyJ: (g.EnergyJ + s.EnergyJ) / k}
}
