package baselines

import (
	"fmt"
	"math"

	"repro/internal/manycore"
	"repro/internal/noc"
	"repro/internal/vf"
)

// PID is a chip-level proportional–integral–derivative power capper in the
// style of commercial RAPL-like firmware loops: it observes total chip
// power every epoch and drives a single uniform VF level for all cores.
// It is cheap and reacts quickly, but cannot exploit per-core workload
// differences — memory-bound cores waste budget that compute-bound cores
// could convert into throughput.
type PID struct {
	table      *vf.Table
	kp, ki, kd float64

	u        float64 // continuous control variable in level units
	prevErr  float64
	prevErr2 float64
	started  bool
}

// NewPID builds the capper with the given gains (in VF-level units per
// relative power error).
func NewPID(table *vf.Table, kp, ki, kd float64) (*PID, error) {
	if table == nil {
		return nil, fmt.Errorf("baselines: nil VF table")
	}
	if kp < 0 || ki < 0 || kd < 0 {
		return nil, fmt.Errorf("baselines: PID gains must be non-negative (%g, %g, %g)", kp, ki, kd)
	}
	return &PID{table: table, kp: kp, ki: ki, kd: kd}, nil
}

// DefaultPID returns gains tuned for 1 ms epochs on the default platform.
// The plant gain is roughly 2.5 W of chip power per level step per core
// budget share, so integral gains well below 1 keep the loop from limit
// cycling across the whole level range.
func DefaultPID(table *vf.Table) *PID {
	p, err := NewPID(table, 0.5, 0.15, 0.1)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements ctrl.Controller.
func (p *PID) Name() string { return "pid" }

// Decide implements ctrl.Controller.
func (p *PID) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	err := 0.0
	if budgetW > 0 {
		err = (budgetW - tel.ChipPowerW) / budgetW
	}
	if math.IsNaN(err) {
		// A corrupted meter reading carries no information; a NaN error
		// would otherwise poison the integral state permanently.
		err = 0
	}
	// Clamp the relative error so a transient power spike cannot slam the
	// loop across the whole level range in one epoch.
	if err > 1 {
		err = 1
	} else if err < -1 {
		err = -1
	}
	if !p.started {
		p.prevErr = err
		p.prevErr2 = err
		p.u = float64(p.table.Levels()-1) / 2
		p.started = true
	}
	// Velocity-form PID: Δu = kp·Δe + ki·e + kd·(e − 2e₁ + e₂); the
	// integral state lives in u itself, and clamping u below provides
	// anti-windup.
	span := float64(p.table.Levels() - 1)
	p.u += p.kp*(err-p.prevErr) + p.ki*err + p.kd*(err-2*p.prevErr+p.prevErr2)
	p.prevErr2 = p.prevErr
	p.prevErr = err
	if p.u < 0 {
		p.u = 0
	} else if p.u > span {
		p.u = span
	}
	level := p.table.Clamp(int(math.Round(p.u)))
	for i := range out {
		out[i] = level
	}
}

// CommPerEpoch implements ctrl.Controller: one aggregated package power
// sensor reading plus a broadcast of the uniform level, every epoch. The
// sensor is a single message from the package power meter (modelled as one
// gather of a single node's worth of traffic) and the broadcast is a full
// scatter.
func (p *PID) CommPerEpoch(mesh *noc.Mesh) noc.Cost {
	s := mesh.ScatterCost(mesh.Center())
	return noc.Cost{LatencyS: s.LatencyS, EnergyJ: s.EnergyJ}
}
