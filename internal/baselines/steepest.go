package baselines

import (
	"container/heap"
	"fmt"

	"repro/internal/ctrl"
	"repro/internal/manycore"
	"repro/internal/noc"
)

// SteepestDrop starts every core at the top VF level and repeatedly applies
// the single-step demotion that sheds the most predicted power per unit of
// predicted throughput lost, until the chip fits the budget. This is the
// greedy global heuristic of the steepest-drop family (Winter et al.),
// O((n·L) log n) per decision.
type SteepestDrop struct {
	pred    ctrl.Predictor
	cadence int

	epoch int
	last  []int
}

// NewSteepestDrop builds the controller.
func NewSteepestDrop(pred ctrl.Predictor, cadence int) (*SteepestDrop, error) {
	if cadence < 1 {
		return nil, fmt.Errorf("baselines: cadence must be >= 1, got %d", cadence)
	}
	return &SteepestDrop{pred: pred, cadence: cadence}, nil
}

// Name implements ctrl.Controller.
func (s *SteepestDrop) Name() string { return "steepest-drop" }

// demotion is a heap entry: demoting core from its current level saves
// dPower watts and loses dIPS; priority is power saved per throughput lost.
type demotion struct {
	core     int
	fromLvl  int
	dPowerW  float64
	dIPS     float64
	priority float64
}

type demotionHeap []demotion

func (h demotionHeap) Len() int            { return len(h) }
func (h demotionHeap) Less(i, j int) bool  { return h[i].priority > h[j].priority }
func (h demotionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *demotionHeap) Push(x interface{}) { *h = append(*h, x.(demotion)) }
func (h *demotionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Decide implements ctrl.Controller.
func (s *SteepestDrop) Decide(tel *manycore.Telemetry, budgetW float64, out []int) {
	defer func() { s.epoch++ }()
	if s.last != nil && s.epoch%s.cadence != 0 {
		copy(out, s.last)
		return
	}
	s.solve(tel, budgetW, out)
	if s.last == nil {
		s.last = make([]int, len(out))
	}
	copy(s.last, out)
}

func (s *SteepestDrop) solve(tel *manycore.Telemetry, budgetW float64, out []int) {
	n := len(tel.Cores)
	top := s.pred.VF.Levels() - 1

	// Start everything at the top and total up predicted power.
	power := make([]float64, n)
	total := s.pred.Power.UncoreW
	for i := 0; i < n; i++ {
		out[i] = top
		power[i] = s.pred.PowerAt(tel.Cores[i], top)
		total += power[i]
	}

	mk := func(i int) (demotion, bool) {
		lvl := out[i]
		if lvl == 0 {
			return demotion{}, false
		}
		pLow := s.pred.PowerAt(tel.Cores[i], lvl-1)
		dP := power[i] - pLow
		dI := s.pred.IPSAt(tel.Cores[i], lvl) - s.pred.IPSAt(tel.Cores[i], lvl-1)
		prio := dP * 1e12 // losing no throughput: infinitely good
		if dI > 0 {
			prio = dP / dI
		}
		return demotion{core: i, fromLvl: lvl, dPowerW: dP, dIPS: dI, priority: prio}, true
	}

	h := make(demotionHeap, 0, n)
	for i := 0; i < n; i++ {
		if d, ok := mk(i); ok {
			h = append(h, d)
		}
	}
	heap.Init(&h)

	for total > budgetW && h.Len() > 0 {
		d := heap.Pop(&h).(demotion)
		if out[d.core] != d.fromLvl {
			continue // stale entry
		}
		out[d.core] = d.fromLvl - 1
		power[d.core] -= d.dPowerW
		total -= d.dPowerW
		if nd, ok := mk(d.core); ok {
			heap.Push(&h, nd)
		}
	}
}

// CommPerEpoch implements ctrl.Controller: gather + scatter per decision,
// amortised over the cadence.
func (s *SteepestDrop) CommPerEpoch(mesh *noc.Mesh) noc.Cost {
	g := mesh.GatherCost(mesh.Center())
	sc := mesh.ScatterCost(mesh.Center())
	k := float64(s.cadence)
	return noc.Cost{LatencyS: (g.LatencyS + sc.LatencyS) / k, EnergyJ: (g.EnergyJ + sc.EnergyJ) / k}
}
