package analysis

import (
	"go/token"
	"strings"
)

// Allow is one parsed //odrl:allow suppression comment.
type Allow struct {
	// Analyzer is the analyzer whose findings the comment suppresses.
	Analyzer string `json:"analyzer"`
	// Reason is the mandatory free-form justification.
	Reason string         `json:"reason"`
	Pos    token.Position `json:"-"`

	File string `json:"file"`
	Line int    `json:"line"`
}

const allowMarker = "//odrl:allow"

// ParseAllow parses one source comment as a suppression directive. It
// returns ok=false when the comment is not an //odrl:allow directive at
// all. A directive with a missing analyzer name or reason parses with the
// corresponding field empty — the caller turns that into a diagnostic
// rather than silently honouring a bare suppression.
//
// The comment text is external-ish input (free-form source comments), so
// the parser must be total: any byte sequence returns cleanly.
func ParseAllow(text string) (a Allow, ok bool) {
	// Only line comments can carry directives; /* */ blocks are prose.
	if !strings.HasPrefix(text, "//") {
		return Allow{}, false
	}
	rest, found := strings.CutPrefix(text, allowMarker)
	if !found {
		return Allow{}, false
	}
	// "//odrl:allowance" etc. is prose, not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Allow{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Allow{}, true // bare: no analyzer, no reason
	}
	a.Analyzer = fields[0]
	a.Reason = strings.Join(fields[1:], " ")
	return a, true
}

// collectAllows scans a package's comments for suppression directives.
// Malformed directives — missing reason, or naming no known analyzer —
// come back as diagnostics from the pseudo-analyzer "allow": a suppression
// nobody can audit is itself a lint violation.
func collectAllows(pkg *Package, known map[string]bool) ([]Allow, []Diagnostic) {
	var allows []Allow
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case a.Analyzer == "":
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "bare //odrl:allow: name the analyzer and give a reason (//odrl:allow <analyzer> <reason>)",
					})
				case !known[a.Analyzer]:
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "//odrl:allow names unknown analyzer " + a.Analyzer,
					})
				case a.Reason == "":
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "//odrl:allow " + a.Analyzer + " without a reason: the reason is mandatory so suppressions stay auditable",
					})
				default:
					a.Pos = pos
					a.File, a.Line = pos.Filename, pos.Line
					allows = append(allows, a)
				}
			}
		}
	}
	return allows, diags
}

// filterSuppressed drops diagnostics covered by a well-formed suppression:
// an //odrl:allow naming the diagnostic's analyzer on the same line (a
// trailing comment) or on the line directly above (a comment-above form).
func filterSuppressed(diags []Diagnostic, allows []Allow) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool, 2*len(allows))
	for _, a := range allows {
		covered[key{a.Pos.Filename, a.Pos.Line, a.Analyzer}] = true
		covered[key{a.Pos.Filename, a.Pos.Line + 1, a.Analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
