// Package fixture exercises the hotpathalloc analyzer: allocating
// constructs inside //odrl:hotpath functions, and the exemptions
// (lazy-init guards, self-append, panic arguments, unannotated functions).
package fixture

import "fmt"

type T struct {
	buf     []int
	m       map[string]int
	scratch []byte
}

func sink(v any) {}

func (t *T) cold() {}

//odrl:hotpath
func (t *T) hot(n int) {
	f := func() int { return n } // want "closure literal"
	_ = f
	go t.cold()         // want "go statement"
	s := make([]int, n) // want "make in"
	_ = s
	t.buf = append(t.buf, n) // ok: self-append over a retained buffer
	lit := []int{1, 2}       // want "slice literal"
	lit = append(t.buf, n)   // want "append to a non-reused slice"
	_ = lit
	_ = map[string]int{"a": 1} // want "map literal"
	p := &T{}                  // want "pointer-to-composite literal"
	_ = p
	fmt.Println(n) // want "fmt.Println"
	sink(n)        // want "boxes the value"
	sink(&n)       // ok: pointers fit the interface word
}

//odrl:hotpath
func (t *T) lazy(n int) {
	if t.m == nil {
		t.m = make(map[string]int) // ok: one-time lazy init
	}
	if cap(t.scratch) < n {
		t.scratch = make([]byte, n) // ok: capacity-guarded growth
	}
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // ok: panic path is cold
	}
}

// notAnnotated allocates freely: no marker, no diagnostics.
func notAnnotated() func() int {
	return func() int { return 1 }
}
