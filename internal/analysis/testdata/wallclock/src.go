// Package fixture exercises the wallclock analyzer and the //odrl:allow
// suppression machinery (trailing, line-above, bare, unknown-analyzer and
// reasonless forms). Malformed-suppression diagnostics from the "allow"
// pseudo-analyzer are asserted by sentinel substring in the test, not by
// want comments, because they anchor to the directive comment itself.
package fixture

import "time"

func bad() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

// simulated clocks are fine: only Now/Since are ambient.
func ok(d time.Duration) time.Duration {
	return d * 2
}

func suppressedTrailing() time.Time {
	return time.Now() //odrl:allow wallclock fixture probe; suppressed by trailing comment
}

func suppressedAbove() time.Time {
	//odrl:allow wallclock fixture probe; suppressed by the line above
	return time.Now()
}

func bareSuppression() time.Time {
	//odrl:allow
	return time.Now() // want "wall-clock read time.Now"
}

func missingReason() time.Time {
	//odrl:allow wallclock
	return time.Now() // want "wall-clock read time.Now"
}

func unknownAnalyzer() time.Time {
	//odrl:allow nosuchanalyzer reason text
	return time.Now() // want "wall-clock read time.Now"
}
