// Package fixture exercises the detrange analyzer. Loaded by the tests
// under an impersonated deterministic-path import path; want comments mark
// the diagnostics the analyzer must produce on that line.
package fixture

import (
	"maps"
	"slices"
	"sort"
)

type counts map[string]int

func mapRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m iterates in nondeterministic order"
		total += v
	}
	return total
}

func namedMapRange(m counts) int {
	total := 0
	for _, v := range m { // want "range over map m"
		total += v
	}
	return total
}

// collectThenSort is the blessed idiom: the body only appends, the next
// statement sorts the collected slice. Must stay silent.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSlicesSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// collectNoSort appends but never sorts: order still leaks.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys wraps maps.Keys in slices.Sorted: deterministic by
// construction, stays silent.
func sortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

func bareKeys(m map[string]int) {
	for k := range maps.Keys(m) { // want "maps.Keys without an immediate sort"
		_ = k
	}
}

// sliceRange is not a map: silent.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
