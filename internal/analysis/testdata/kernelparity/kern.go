// Package fixture is a miniature two-kernel package for the kernelparity
// analyzer tests: Fast and Ref play StepInto/ReferenceStepInto, LUT plays
// power.LUT. Expected diagnostics are asserted programmatically (the
// analyzer is driven with a test-local config, not the repo contract).
package fixture

type LUT struct{}

func (LUT) Shared() int   { return 1 }
func (LUT) FastOnly() int { return 2 }

type Chip struct {
	both     int
	fastOnly int
	audited  int
	refOnly  int
	lut      LUT
}

func (c *Chip) Fast() int {
	return c.both + c.fastOnly + c.helper() + c.lut.Shared() + c.lut.FastOnly()
}

func (c *Chip) helper() int { return c.audited }

func (c *Chip) Ref() int {
	return c.both + c.refOnly + c.lut.Shared()
}
