// Package fixture exercises the rngdiscipline analyzer.
package fixture

import (
	"math/rand" // want "import of math/rand on the deterministic path"
)

type holder struct {
	gen *rand.Rand // want "struct field stores a math/rand generator"
}

type cleanHolder struct {
	seed uint64
	name string
}

func draw() int {
	return rand.Int() // want "math/rand draw math/rand.Int"
}

func fresh(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "rand.New outside internal/rng" "math/rand draw math/rand.NewSource"
}

func clean(h cleanHolder) uint64 {
	return h.seed * 6364136223846793005
}
