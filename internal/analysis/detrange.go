package analysis

import (
	"go/ast"
	"go/types"
)

// DetRange flags map iteration in deterministic-path packages: Go
// randomises map range order per run, so any map-ordered loop that touches
// output (tables, traces, RNG draws, budget passes) breaks the
// byte-identical golden guarantee in a way no fixed-seed test can pin down.
//
// The one blessed idiom is collect-then-sort: a range whose body only
// appends the key/value to a slice, immediately followed by a sort of that
// slice, is order-insensitive and stays silent. Likewise maps.Keys fed
// directly to slices.Sorted. Anything else needs a sorted key slice or an
// //odrl:allow detrange <reason> with a real order-insensitivity argument.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc: "forbid map-ordered iteration on the deterministic path " +
		"(range over map, or maps.Keys not immediately sorted); map order " +
		"leaks into golden tables and RNG streams",
	Run: runDetRange,
}

func runDetRange(pass *Pass) error {
	if !OnDeterministicPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// First pass: positions of maps.Keys calls already wrapped in
		// slices.Sorted(...) — those are deterministic by construction.
		sortedKeys := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass, call.Fun, "slices", "Sorted") {
				return true
			}
			for _, arg := range call.Args {
				if inner, ok := arg.(*ast.CallExpr); ok && isPkgFunc(pass, inner.Fun, "maps", "Keys") {
					sortedKeys[inner] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkBlockRanges(pass, n.List)
			case *ast.CaseClause:
				checkBlockRanges(pass, n.Body)
			case *ast.CommClause:
				checkBlockRanges(pass, n.Body)
			case *ast.CallExpr:
				if isPkgFunc(pass, n.Fun, "maps", "Keys") && !sortedKeys[n] {
					pass.Reportf(n.Pos(), "maps.Keys without an immediate sort yields nondeterministic order on the deterministic path; wrap in slices.Sorted or sort the result")
				}
			}
			return true
		})
	}
	return nil
}

// checkBlockRanges flags map ranges in a statement list, with access to the
// following sibling statement so the collect-then-sort idiom can be
// recognised.
func checkBlockRanges(pass *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		var next ast.Stmt
		if i+1 < len(stmts) {
			next = stmts[i+1]
		}
		if isCollectThenSort(pass, rng, next) {
			continue
		}
		pass.Reportf(rng.Pos(), "range over map %s iterates in nondeterministic order on the deterministic path; collect keys into a slice and sort, or justify with //odrl:allow detrange <reason>", types.ExprString(rng.X))
	}
}

// isCollectThenSort reports whether the range body only appends to slices
// and the next statement sorts one of them — the blessed sorted-keys idiom
// (see workload.PresetNames).
func isCollectThenSort(pass *Pass, rng *ast.RangeStmt, next ast.Stmt) bool {
	if next == nil || len(rng.Body.List) == 0 {
		return false
	}
	appended := map[string]bool{}
	for _, s := range rng.Body.List {
		assign, ok := s.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") {
			return false
		}
		appended[types.ExprString(assign.Lhs[0])] = true
	}
	expr, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || !isSortCall(pass, call.Fun) {
		return false
	}
	for _, arg := range call.Args {
		if appended[types.ExprString(arg)] {
			return true
		}
	}
	return false
}

// isSortCall matches sort.* and slices.Sort* functions.
func isSortCall(pass *Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg := pkgNameOf(pass, sel.X)
	switch pkg {
	case "sort":
		return true
	case "slices":
		name := sel.Sel.Name
		return name == "Sort" || name == "SortFunc" || name == "SortStableFunc"
	}
	return false
}

// isPkgFunc reports whether fun is a selector <pkg>.<name> resolving to the
// named standard-library package.
func isPkgFunc(pass *Pass, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return pkgNameOf(pass, sel.X) == pkgPath
}

// pkgNameOf returns the import path of the package an identifier resolves
// to, or "" when the expression is not a package qualifier.
func pkgNameOf(pass *Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}
