package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc turns the repo's 0-allocs/epoch regression test into a
// localized compile-time diagnostic: functions annotated //odrl:hotpath
// (the epoch kernel, the OD-RL decide path, the per-epoch monitor/learn
// observers) may not contain constructs that allocate — or that the
// compiler may be forced to heap-allocate — on the steady path:
//
//   - closure literals and go statements
//   - make/new and map/slice composite literals, &T{...} pointer literals
//   - append, except the capacity-reusing self-append x = append(x, ...)
//   - fmt.* calls (their variadic any arguments box every operand)
//   - arguments passed to interface-typed parameters whose static type is
//     not pointer-shaped (boxing copies the value to the heap)
//
// Two structural exemptions keep the signal clean. Lazy-initialisation
// blocks — the then-branch of an if whose condition tests == nil or
// compares cap()/len() — run once per object, never on the steady epoch
// path. And arguments to panic(...) are a cold path by definition (the
// run is already dead), so fmt.Sprintf inside a panic stays silent.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocating constructs (closures, make, non-reused append, " +
		"map/slice/pointer literals, fmt calls, interface boxing) in " +
		"//odrl:hotpath functions; the 0-allocs/epoch gate, localized",
	Run: runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !HotpathAnnotated(fd) {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	exempt := map[ast.Node]bool{}   // subtree roots to skip entirely
	okAppend := map[ast.Node]bool{} // append calls in the self-append form
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isLazyInitGuard(pass, n.Cond) {
				exempt[n.Body] = true
			}
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "panic") {
				for _, arg := range n.Args {
					exempt[arg] = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") &&
					len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(n.Lhs[0]) {
					okAppend[call] = true
				}
			}
		}
		return true
	})

	name := fd.Name.Name
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || exempt[n] {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in //odrl:hotpath %s allocates per construction; hoist it out of the hot path and thread state through fields", name)
			return // the body is a different function's hot path
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in //odrl:hotpath %s spawns a goroutine per call; use a persistent worker pool", name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "pointer-to-composite literal in //odrl:hotpath %s heap-allocates; reuse a scratch object", name)
					return
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal in //odrl:hotpath %s allocates; hoist to a reused field", name)
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal in //odrl:hotpath %s allocates its backing array; reuse a scratch slice", name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, n, name, okAppend)
		}
		for _, c := range childNodes(n) {
			walk(c)
		}
	}
	walk(fd.Body)
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr, name string, okAppend map[ast.Node]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := pass.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in //odrl:hotpath %s allocates; move it to construction or a lazy-init guard (if x == nil / cap check)", id.Name, name)
			case "append":
				if !okAppend[call] {
					pass.Reportf(call.Pos(), "append to a non-reused slice in //odrl:hotpath %s may grow per call; only the self-append form x = append(x, ...) over a retained buffer is allocation-stable", name)
				}
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && pkgNameOf(pass, sel.X) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in //odrl:hotpath %s boxes every operand into its variadic any parameter; format off the hot path", sel.Sel.Name, name)
		return
	}
	// Interface boxing: a non-pointer-shaped value passed to an
	// interface-typed parameter is copied to the heap.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions handled by composite/pointer rules
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis != token.NoPos {
				continue // forwarding an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "passing non-pointer %s to interface parameter in //odrl:hotpath %s boxes the value onto the heap; pass a pointer or restructure the call", at, name)
	}
}

// isPointerShaped reports whether values of t fit in an interface data word
// without a heap copy.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isLazyInitGuard matches conditions that gate one-time initialisation:
// any == nil test, or a comparison involving cap()/len().
func isLazyInitGuard(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.EQL:
			if isNilIdent(be.X) || isNilIdent(be.Y) {
				found = true
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range [...]ast.Expr{be.X, be.Y} {
				if call, ok := side.(*ast.CallExpr); ok &&
					(isBuiltin(pass, call.Fun, "cap") || isBuiltin(pass, call.Fun, "len")) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isNilIdent(x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	return ok && id.Name == "nil"
}

// childNodes returns a node's direct children, for the skip-aware walk.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
