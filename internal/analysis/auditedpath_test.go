package analysis

import "testing"

// TestOnWallClockAuditedPath pins the audited set: the deterministic path
// plus the run-ledger and flight-recorder packages, and nothing else.
func TestOnWallClockAuditedPath(t *testing.T) {
	cases := []struct {
		path    string
		audited bool
	}{
		{"repro/internal/sim", true},          // deterministic path
		{"repro/internal/obs/ledger", true},   // telemetry, annotation-audited
		{"repro/internal/obs/flight", true},   // telemetry, annotation-audited
		{"repro/internal/obs", false},         // tracer glue reads the clock freely
		{"repro/internal/obs/monitor", false}, // span probes are obs-side
		{"repro/internal/plot", false},
		{"repro/cmd/odrl-obs", false},
	}
	for _, tc := range cases {
		if got := OnWallClockAuditedPath(tc.path); got != tc.audited {
			t.Errorf("OnWallClockAuditedPath(%q) = %v, want %v", tc.path, got, tc.audited)
		}
	}
	if OnDeterministicPath("repro/internal/obs/ledger") {
		t.Error("obs/ledger must stay OFF the deterministic path: its timestamps are telemetry, and the other determinism analyzers do not apply")
	}
	if OnDeterministicPath("repro/internal/obs/flight") {
		t.Error("obs/flight must stay OFF the deterministic path")
	}
}

// TestWallClockAuditsLedgerPackage loads the wallclock fixture under the
// ledger's import path: unannotated clock reads there must be flagged just
// like on the deterministic path.
func TestWallClockAuditsLedgerPackage(t *testing.T) {
	res := vetFixture(t, "testdata/wallclock", "repro/internal/obs/ledger", []*Analyzer{WallClock})
	checkWants(t, "testdata/wallclock/src.go", res)
}
