package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Fixture tests drive each analyzer over a testdata package loaded under an
// impersonated import path (LoadFixture), in the style of
// x/tools/go/analysis/analysistest: `// want "regex"` comments in the
// fixture mark the diagnostics that must appear on that line, and the
// harness fails on both missing and unexpected findings. Diagnostics from
// the "allow" pseudo-analyzer anchor to directive comments, so they are
// asserted by substring instead.

var (
	loaderOnce sync.Once
	loaderInst *Loader
)

// testLoader returns the shared fixture loader. Sharing amortises the
// stdlib type-check across fixtures; tests must not run in parallel.
func testLoader() *Loader {
	loaderOnce.Do(func() { loaderInst = NewLoader("../..") })
	return loaderInst
}

func vetFixture(t *testing.T, dir, asPath string, analyzers []*Analyzer) Result {
	t.Helper()
	pkg, err := testLoader().LoadFixture(dir, asPath)
	if err != nil {
		t.Fatalf("LoadFixture(%s): %v", dir, err)
	}
	res, err := Vet([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	return res
}

var wantRe = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

// wantsOf parses the `// want "re" ["re" ...]` expectations per line.
func wantsOf(t *testing.T, file string) map[int][]*regexp.Regexp {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int][]*regexp.Regexp{}
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range regexp.MustCompile(`"([^"]*)"`).FindAllStringSubmatch(m[1], -1) {
			re, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", file, i+1, q[1], err)
			}
			wants[i+1] = append(wants[i+1], re)
		}
	}
	return wants
}

// checkWants matches the non-"allow" diagnostics in file against its want
// comments, one to one per line.
func checkWants(t *testing.T, file string, res Result) {
	t.Helper()
	abs, err := filepath.Abs(file)
	if err != nil {
		t.Fatal(err)
	}
	wants := wantsOf(t, file)
	byLine := map[int][]Diagnostic{}
	for _, d := range res.Diagnostics {
		dabs, err := filepath.Abs(d.File)
		if err != nil {
			t.Fatal(err)
		}
		if d.Analyzer == "allow" || dabs != abs {
			continue
		}
		byLine[d.Line] = append(byLine[d.Line], d)
	}
	for line, res := range wants {
		got := byLine[line]
		if len(got) != len(res) {
			t.Errorf("%s:%d: want %d diagnostic(s), got %d: %v", file, line, len(res), len(got), got)
			continue
		}
		for _, re := range res {
			matched := false
			for _, d := range got {
				if re.MatchString(d.Message) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matches %q; got %v", file, line, re, got)
			}
		}
	}
	for line, got := range byLine {
		if _, expected := wants[line]; !expected {
			t.Errorf("%s:%d: unexpected diagnostic(s): %v", file, line, got)
		}
	}
}

func TestDetRangeFixture(t *testing.T) {
	res := vetFixture(t, "testdata/detrange", "repro/internal/core/fixture", []*Analyzer{DetRange})
	checkWants(t, "testdata/detrange/src.go", res)
}

// TestDetRangeOffPath loads the identical fixture under a non-deterministic
// import path: the analyzer must stay silent everywhere else in the tree.
func TestDetRangeOffPath(t *testing.T) {
	res := vetFixture(t, "testdata/detrange", "repro/internal/obs/fixture", []*Analyzer{DetRange})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("off-path package produced diagnostics: %v", res.Diagnostics)
	}
}

func TestRNGDisciplineFixture(t *testing.T) {
	res := vetFixture(t, "testdata/rngdiscipline", "repro/internal/fault/fixture", []*Analyzer{RNGDiscipline})
	checkWants(t, "testdata/rngdiscipline/src.go", res)
}

func TestRNGDisciplineOffPath(t *testing.T) {
	res := vetFixture(t, "testdata/rngdiscipline", "repro/internal/obs/fixture", []*Analyzer{RNGDiscipline})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("off-path package produced diagnostics: %v", res.Diagnostics)
	}
}

func TestWallClockFixture(t *testing.T) {
	res := vetFixture(t, "testdata/wallclock", "repro/internal/sim/fixture", []*Analyzer{WallClock})
	checkWants(t, "testdata/wallclock/src.go", res)

	var allowDiags []string
	for _, d := range res.Diagnostics {
		if d.Analyzer == "allow" {
			allowDiags = append(allowDiags, d.Message)
		}
	}
	if len(allowDiags) != 3 {
		t.Fatalf("want 3 malformed-suppression diagnostics, got %d: %v", len(allowDiags), allowDiags)
	}
	for _, frag := range []string{"bare //odrl:allow", "without a reason", "unknown analyzer nosuchanalyzer"} {
		found := false
		for _, msg := range allowDiags {
			if strings.Contains(msg, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no allow diagnostic contains %q: %v", frag, allowDiags)
		}
	}

	if len(res.Allows) != 2 {
		t.Fatalf("want 2 well-formed suppressions in the audit ledger, got %d: %v", len(res.Allows), res.Allows)
	}
	for _, a := range res.Allows {
		if a.Analyzer != "wallclock" || a.Reason == "" {
			t.Errorf("malformed ledger entry: %+v", a)
		}
	}
}

func TestHotpathAllocFixture(t *testing.T) {
	res := vetFixture(t, "testdata/hotpathalloc", "repro/internal/core/fixture", []*Analyzer{HotpathAlloc})
	checkWants(t, "testdata/hotpathalloc/src.go", res)
}

func fixtureKernelConfig(t *testing.T) KernelParityConfig {
	t.Helper()
	data, err := os.ReadFile("testdata/kernelparity/kern.go")
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return KernelParityConfig{
		PkgPath:        "repro/fixture/kernels",
		ReceiverType:   "Chip",
		FastRoots:      []string{"Chip.Fast"},
		RefRoots:       []string{"Chip.Ref"},
		WatchedPkgPath: "repro/fixture/kernels",
		WatchedType:    "LUT",
		FastOnly:       map[string]bool{"audited": true},
		RefOnly:        map[string]bool{},
		RefFile:        "kern.go",
		RefSHA256:      hex.EncodeToString(sum[:]),
	}
}

func TestKernelParityFixture(t *testing.T) {
	cfg := fixtureKernelConfig(t)
	res := vetFixture(t, "testdata/kernelparity", cfg.PkgPath, []*Analyzer{NewKernelParity(cfg)})

	// fastOnly and LUT.FastOnly are read by Fast alone; refOnly by Ref
	// alone; audited is baselined; both/lut/LUT.Shared are shared.
	wantFrags := []string{
		"Chip field fastOnly is read by StepInto (fast kernel)",
		"LUT member FastOnly is read by StepInto (fast kernel)",
		"Chip field refOnly is read by ReferenceStepInto (reference kernel)",
	}
	if len(res.Diagnostics) != len(wantFrags) {
		t.Fatalf("want %d diagnostics, got %d: %v", len(wantFrags), len(res.Diagnostics), res.Diagnostics)
	}
	for _, frag := range wantFrags {
		found := false
		for _, d := range res.Diagnostics {
			if strings.Contains(d.Message, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q; got %v", frag, res.Diagnostics)
		}
	}
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "audited") || strings.Contains(d.Message, "field both") {
			t.Errorf("baselined or shared member flagged: %v", d)
		}
	}
}

func TestKernelParityHashPin(t *testing.T) {
	cfg := fixtureKernelConfig(t)
	cfg.RefSHA256 = strings.Repeat("0", 64)
	res := vetFixture(t, "testdata/kernelparity", cfg.PkgPath, []*Analyzer{NewKernelParity(cfg)})
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "kern.go has been edited") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale pinned hash not reported: %v", res.Diagnostics)
	}
}

func TestKernelParityMissingRefFile(t *testing.T) {
	cfg := fixtureKernelConfig(t)
	cfg.RefFile = "gone.go"
	res := vetFixture(t, "testdata/kernelparity", cfg.PkgPath, []*Analyzer{NewKernelParity(cfg)})
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "gone.go is missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing reference file not reported: %v", res.Diagnostics)
	}
}

// TestRepoClean runs the full suite over the real module: the tree must
// stay lint-clean, and the repo kernel-parity baseline must stay exact
// (no stale entries hiding future drift is checked by TestBaselineExact).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check")
	}
	pkgs, err := testLoader().Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Vet(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unsuppressed: %s", d)
	}
	if len(res.Allows) == 0 {
		t.Error("expected a non-empty suppression ledger (telemetry wallclock probes)")
	}
	for _, a := range res.Allows {
		if a.Reason == "" {
			t.Errorf("ledger entry without reason: %+v", a)
		}
	}
}

// TestBaselineExact re-runs kernelparity with an empty baseline and checks
// the one-sided set equals the audited FastOnly/RefOnly lists exactly —
// a stale baseline entry would silently stop guarding that member.
func TestBaselineExact(t *testing.T) {
	if testing.Short() {
		t.Skip("full-package type-check")
	}
	cfg := repoKernelParity
	cfg.FastOnly = map[string]bool{}
	cfg.RefOnly = map[string]bool{}
	pkgs, err := testLoader().Load("./internal/manycore")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Vet(pkgs, []*Analyzer{NewKernelParity(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	oneSided := map[string]bool{}
	memberRe := regexp.MustCompile(`Chip field (\S+) is|LUT member (\S+) is`)
	for _, d := range res.Diagnostics {
		m := memberRe.FindStringSubmatch(d.Message)
		if m == nil {
			t.Fatalf("unrecognised kernelparity diagnostic: %s", d)
		}
		if m[1] != "" {
			oneSided[m[1]] = true
		} else {
			oneSided["lut:"+m[2]] = true
		}
	}
	audited := map[string]bool{}
	for k := range repoKernelParity.FastOnly {
		audited[k] = true
	}
	for k := range repoKernelParity.RefOnly {
		audited[k] = true
	}
	for k := range audited {
		if !oneSided[k] {
			t.Errorf("baseline entry %q is stale: no longer one-sided", k)
		}
	}
	for k := range oneSided {
		if !audited[k] {
			t.Errorf("one-sided member %q missing from the audited baseline", k)
		}
	}
}
