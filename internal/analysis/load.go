package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked target package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages from source. It shells out to
// `go list -json -deps` for build metadata (file sets per build
// constraints, import graphs) and type-checks everything — including
// standard-library dependencies — from source, because the offline
// container has no export data and no golang.org/x/tools. The whole module
// plus its stdlib closure checks in a few seconds, which is fine for a lint
// gate.
//
// Every package is type-checked exactly once, through Import, so each
// import path has a single *types.Package identity no matter whether it is
// reached as a target or as a dependency. Expression type information for
// target packages accumulates in one shared types.Info (the maps are keyed
// by AST node, so sharing is collision-free).
type Loader struct {
	// Dir roots `go list` invocations (the module directory).
	Dir string

	fset    *token.FileSet
	meta    map[string]*listPkg
	pkgs    map[string]*types.Package
	files   map[string][]*ast.File
	loading map[string]bool
	sizes   types.Sizes
	info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
	Match      []string
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		meta:    map[string]*listPkg{},
		pkgs:    map[string]*types.Package{},
		files:   map[string][]*ast.File{},
		loading: map[string]bool{},
		sizes:   types.SizesFor("gc", runtime.GOARCH),
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
}

// goList runs `go list -e -json -deps` on the patterns, merges the results
// into the metadata cache, and returns this invocation's entries — Load
// must derive its target set from the current call, not from metadata
// accumulated by earlier calls on a shared loader.
func (l *Loader) goList(patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	// CGO off so packages like net resolve to their pure-Go file sets,
	// which type-check from source without a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(out)
	var listed []*listPkg
	var decErr error
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err != io.EOF {
				decErr = err
			}
			break
		}
		cp := p
		listed = append(listed, &cp)
		if prev, ok := l.meta[p.ImportPath]; !ok || prev.DepOnly && !p.DepOnly {
			l.meta[p.ImportPath] = &cp
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, decErr
}

// isTarget reports whether a listed package is one the caller asked to
// analyze (in-module, not a pure dependency).
func (m *listPkg) isTarget() bool {
	return !m.DepOnly && !m.Standard
}

// Import implements types.Importer by type-checking the named package (and
// its dependencies) from source, with caching. Target packages are parsed
// with comments and recorded with full type information; dependencies are
// checked lean.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	m, ok := l.meta[path]
	if !ok {
		// GOROOT-vendored dependencies (golang.org/x/... inside the
		// standard library) are listed under a vendor/ prefix but imported
		// without it.
		m, ok = l.meta["vendor/"+path]
	}
	if !ok {
		// Lazily resolved import (fixture loads reach here); fetch its
		// metadata closure on demand.
		if _, err := l.goList(path); err != nil {
			return nil, err
		}
		if m, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("package %s not found by go list", path)
		}
	}
	if m.Error != nil {
		return nil, fmt.Errorf("package %s: %s", path, m.Error.Err)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	mode := parser.Mode(0)
	var info *types.Info
	if m.isTarget() {
		mode = parser.ParseComments
		info = l.info
	}
	files, err := l.parse(m, mode)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{
		Importer:    l,
		Sizes:       l.sizes,
		FakeImportC: true,
	}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	if m.isTarget() {
		l.files[path] = files
	}
	return pkg, nil
}

// parse reads a package's compilation units. mode is OR'd into the parser
// flags (targets carry parser.ParseComments; dependencies skip comments).
func (l *Loader) parse(m *listPkg, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, mode|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load resolves the patterns to target packages and type-checks each with
// full syntax (comments included) and expression type information.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, m := range listed {
		if m.isTarget() {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	pkgs := make([]*Package, 0, len(targets))
	for _, m := range targets {
		if m.Error != nil {
			return nil, fmt.Errorf("package %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := l.Import(m.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path:  m.ImportPath,
			Fset:  l.fset,
			Files: l.files[m.ImportPath],
			Types: pkg,
			Info:  l.info,
		})
	}
	return pkgs, nil
}

// LoadFixture type-checks the .go files in dir as a package with the given
// import path — the analyzer-test seam. The assumed path is what
// deterministic-path gating keys on, so fixtures can impersonate
// repro/internal packages while living under testdata (which go list
// ignores). Imports resolve through the loader, so fixtures may import the
// standard library and real repro/internal packages.
func (l *Loader) LoadFixture(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	cfg := types.Config{
		Importer:    l,
		Sizes:       l.sizes,
		FakeImportC: true,
	}
	pkg, err := cfg.Check(asPath, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", asPath, err)
	}
	return &Package{Path: asPath, Fset: l.fset, Files: files, Types: pkg, Info: l.info}, nil
}
