package analysis

import "sort"

// All returns the repo's analyzer suite in its canonical order. Order is
// presentation-only: diagnostics are position-sorted before reporting, so
// adding an analyzer never reshuffles existing output.
func All() []*Analyzer {
	return []*Analyzer{
		DetRange,
		RNGDiscipline,
		WallClock,
		HotpathAlloc,
		KernelParity,
	}
}

// ByName resolves a comma-separated selection against All, preserving the
// canonical order. Unknown names are returned so callers can fail fast
// (odrl-vet exits 2 on them).
func ByName(names []string) (selected []*Analyzer, unknown []string) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, a := range All() {
		if want[a.Name] {
			selected = append(selected, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		unknown = append(unknown, n)
	}
	sort.Strings(unknown)
	return selected, unknown
}
