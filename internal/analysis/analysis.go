// Package analysis implements odrl-vet, the repo's custom static-analysis
// suite: invariant checkers that make the reproducibility guarantees this
// repository trades on — bit-identical tables at any worker count,
// seed-determined fault runs, a zero-alloc epoch loop, a verbatim reference
// kernel — machine-checked properties of the source tree instead of
// runtime-test tribal knowledge.
//
// The analyzers are built directly on the standard library (go/parser,
// go/types, driven by `go list -json -deps`) because the container builds
// offline and golang.org/x/tools cannot be added to the module. The
// Analyzer/Pass shape deliberately mirrors x/tools/go/analysis so the suite
// can be ported to a multichecker (and run via `go vet -vettool`) if the
// dependency ever becomes available; the analyzers, not the driver, are the
// point.
//
// Findings are suppressed per call site with
//
//	//odrl:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare suppression is itself a diagnostic, and `odrl-vet
// -allows` lists every suppression with its reason so stale ones stay
// auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. The shape mirrors
// x/tools/go/analysis.Analyzer minus the dependency machinery this driver
// does not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //odrl:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement shown by `odrl-vet -h`.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test compilation units, parsed with
	// comments.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its expression types.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String formats the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// deterministicPathPkgs are the packages whose outputs feed the
// byte-identical golden tables and seed-reproducible runs. Map iteration
// order, ambient RNG and wall-clock reads inside them leak nondeterminism
// straight into recorded results.
var deterministicPathPkgs = map[string]bool{
	"manycore":    true,
	"core":        true,
	"ctrl":        true,
	"baselines":   true,
	"rl":          true,
	"sim":         true,
	"fault":       true,
	"experiments": true,
	"scenario":    true,
	"workload":    true,
	"power":       true,
	"vf":          true,
	"thermal":     true,
	"noc":         true,
	"variation":   true,
}

// OnDeterministicPath reports whether the import path belongs to the
// deterministic simulation/control path (repro/internal/<pkg> or a
// sub-package of one).
func OnDeterministicPath(pkgPath string) bool {
	rest, ok := strings.CutPrefix(pkgPath, "repro/internal/")
	if !ok {
		return false
	}
	root, _, _ := strings.Cut(rest, "/")
	return deterministicPathPkgs[root]
}

// wallClockAuditedPkgs extends the wall-clock audit beyond the
// deterministic path: these packages legitimately read the host clock
// (ledger run stamps, flight-recorder bundles) but every such read must
// still carry an //odrl:allow wallclock <reason> annotation so the full
// list stays auditable via `odrl-vet -allows`. They are NOT on the
// deterministic path — their timestamps are telemetry about the host,
// never inputs to simulation.
var wallClockAuditedPkgs = map[string]bool{
	"repro/internal/obs/ledger": true,
	"repro/internal/obs/flight": true,
}

// OnWallClockAuditedPath reports whether the wallclock analyzer audits the
// package: the deterministic path (where wall-clock reads are a
// determinism hazard) plus the run-ledger and flight-recorder packages
// (where they are telemetry that must be annotated, not banned).
func OnWallClockAuditedPath(pkgPath string) bool {
	return OnDeterministicPath(pkgPath) || wallClockAuditedPkgs[pkgPath]
}

// hotpathMarker annotates a function whose steady-state body must not
// allocate; see the hotpathalloc analyzer.
const hotpathMarker = "//odrl:hotpath"

// HotpathAnnotated reports whether the function declaration carries an
// //odrl:hotpath marker line in its doc comment.
func HotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// run applies the analyzers to one loaded package, returning raw (not yet
// suppression-filtered) diagnostics.
func run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// Result is the outcome of vetting a package set.
type Result struct {
	// Diagnostics are the unsuppressed findings, ordered by position.
	Diagnostics []Diagnostic
	// Allows are all suppression comments encountered, ordered by position,
	// for the -allows audit listing.
	Allows []Allow
}

// Vet runs the analyzers over the loaded packages and applies //odrl:allow
// suppression. Malformed suppressions (missing reason, unknown analyzer)
// surface as diagnostics from the pseudo-analyzer "allow".
func Vet(pkgs []*Package, analyzers []*Analyzer) (Result, error) {
	// A suppression is "known" if it names any registered analyzer, not
	// just the ones running: `odrl-vet -analyzers detrange` must not flag
	// every wallclock suppression in the tree as naming an unknown
	// analyzer.
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var res Result
	for _, pkg := range pkgs {
		diags, err := run(pkg, analyzers)
		if err != nil {
			return Result{}, err
		}
		allows, allowDiags := collectAllows(pkg, known)
		res.Allows = append(res.Allows, allows...)
		res.Diagnostics = append(res.Diagnostics, filterSuppressed(diags, allows)...)
		res.Diagnostics = append(res.Diagnostics, allowDiags...)
	}
	sortDiagnostics(res.Diagnostics)
	sort.Slice(res.Allows, func(i, j int) bool { return posLess(res.Allows[i].Pos, res.Allows[j].Pos) })
	for i := range res.Diagnostics {
		d := &res.Diagnostics[i]
		d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
	}
	return res, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if !samePos(ds[i].Pos, ds[j].Pos) {
			return posLess(ds[i].Pos, ds[j].Pos)
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func samePos(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}
