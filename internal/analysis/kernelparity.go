package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// KernelParityConfig parameterises the kernel-parity analyzer so its tests
// can point it at fixture packages; the package-level KernelParity instance
// carries the real repo contract.
type KernelParityConfig struct {
	// PkgPath is the only package the analyzer inspects.
	PkgPath string
	// ReceiverType is the chip state struct whose fields both kernels read.
	ReceiverType string
	// FastRoots and RefRoots are the kernel entry points (method keys in
	// "Type.Method" form; plain functions are just "Name"). Every function
	// reachable from a root inside the package belongs to that kernel.
	FastRoots, RefRoots []string
	// WatchedPkgPath/WatchedType name an auxiliary lookup-table type whose
	// member usage must also stay paired (power.LUT in the repo).
	WatchedPkgPath, WatchedType string
	// FastOnly and RefOnly are the audited baseline divergences: members
	// (struct fields, or WatchedType members prefixed "lut:") that exactly
	// one kernel is allowed to read. Everything else read by one kernel but
	// not the other is a diagnostic.
	FastOnly, RefOnly map[string]bool
	// RefFile (base name) is retained verbatim by contract; RefSHA256 is
	// the pinned hash of its contents.
	RefFile, RefSHA256 string
}

// repoKernelParity is the real contract: the struct-of-arrays kernel
// (Chip.StepInto) and the retained pre-optimization kernel
// (Chip.ReferenceStepInto) must stay semantically paired, because the
// oracle test TestReferenceKernelBitEqual is only meaningful while both
// kernels consume the same chip state.
var repoKernelParity = KernelParityConfig{
	PkgPath:        "repro/internal/manycore",
	ReceiverType:   "Chip",
	FastRoots:      []string{"Chip.StepInto"},
	RefRoots:       []string{"Chip.ReferenceStepInto"},
	WatchedPkgPath: "repro/internal/power",
	WatchedType:    "LUT",
	// The fast kernel's private machinery: precomputed LUT slabs, the phase
	// memo, persistent shard workers. Each entry is a pure-optimization
	// cache over state the reference kernel reads through its original
	// interface (cfg.VF.Point, cfg.Power.LeakageW, cfg.Variation,
	// cfg.CoreTypes), so no semantic state hides here; the oracle test pins
	// the equivalence bit for bit.
	FastOnly: map[string]bool{
		"nLevels":        true, // LUT slab geometry (mirrors cfg.VF.Levels)
		"freqsHz":        true, // aliases cfg.VF's frequency slab
		"voltsV":         true, // aliases cfg.VF's voltage slab
		"lut":            true, // power.LUT: bit-equal LeakageW replay
		"fixedLeak":      true, // per-level leakage at pinned ambient temp
		"freqMultC":      true, // folded cfg.Variation.FreqMult
		"dynMultC":       true, // folded variation × core-type CeffMult
		"leakMultC":      true, // folded variation × core-type LeakMult
		"ipcMult":        true, // folded core-type IPCMult
		"hetero":         true, // gates the IPCMult division
		"uniform":        true, // all-multipliers-1.0 fast path
		"workSrcs":       true, // cached WorkSource assertions
		"procSrcs":       true, // cached *workload.Process assertions
		"phaseVer":       true, // phase-memo version counters
		"memoVer":        true,
		"memoIPS":        true,
		"memoDyn":        true,
		"memoMemB":       true,
		"phCache":        true,
		"phVer":          true,
		"pool":           true, // persistent shard workers
		"stepFn":         true,
		"stepDt":         true,
		"stepTel":        true,
		"lut:LeakageWAt": true, // documented bit-equal to Params.LeakageW
	},
	RefOnly:   map[string]bool{},
	RefFile:   "reference.go",
	RefSHA256: referenceGoSHA256,
}

// referenceGoSHA256 pins internal/manycore/reference.go verbatim. The file
// is the throughput baseline and the bit-identity oracle for the SoA
// kernel; editing it silently would let both gates drift. A legitimate
// change (there should essentially never be one) must update this constant
// in the same commit and re-justify TestReferenceKernelBitEqual.
const referenceGoSHA256 = "afda4b1b90d5505cb601fa9e1a4c3a945d8f12b49f81efb29fa49451207bd7cf"

// KernelParity is the repo-contract instance of the kernel-parity
// analyzer.
var KernelParity = NewKernelParity(repoKernelParity)

// NewKernelParity builds a kernel-parity analyzer for the given contract.
func NewKernelParity(cfg KernelParityConfig) *Analyzer {
	return &Analyzer{
		Name: "kernelparity",
		Doc: "keep the SoA and reference step kernels semantically paired: " +
			"chip state read by one kernel but not the other (outside the " +
			"audited baseline) is flagged, and reference.go is pinned " +
			"verbatim by hash — it is the oracle the bit-identity tests " +
			"compare against",
		Run: func(pass *Pass) error { return runKernelParity(pass, cfg) },
	}
}

func runKernelParity(pass *Pass, cfg KernelParityConfig) error {
	if pass.Pkg.Path() != cfg.PkgPath {
		return nil
	}
	checkRefFileHash(pass, cfg)

	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if key := declKey(pass, fd); key != "" {
					decls[key] = fd
				}
			}
		}
	}
	fastUse := kernelUses(pass, cfg, decls, cfg.FastRoots)
	refUse := kernelUses(pass, cfg, decls, cfg.RefRoots)

	reportOneSided(pass, cfg, fastUse, refUse, cfg.FastOnly, "StepInto (fast kernel)", "ReferenceStepInto")
	reportOneSided(pass, cfg, refUse, fastUse, cfg.RefOnly, "ReferenceStepInto (reference kernel)", "StepInto")
	return nil
}

func reportOneSided(pass *Pass, cfg KernelParityConfig, have, other map[string]ast.Node, baseline map[string]bool, kernel, otherKernel string) {
	names := make([]string, 0, len(have))
	for name := range have {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, both := other[name]; both || baseline[name] {
			continue
		}
		what := fmt.Sprintf("%s field %s", cfg.ReceiverType, name)
		if m, ok := strings.CutPrefix(name, "lut:"); ok {
			what = fmt.Sprintf("%s.%s member %s", filepath.Base(cfg.WatchedPkgPath), cfg.WatchedType, m)
		}
		pass.Reportf(have[name].Pos(),
			"%s is read by %s but not by %s: the kernels must stay semantically paired or the bit-identity oracle test proves nothing — consume it in both kernels, or audit it into the kernelparity baseline with a rationale",
			what, kernel, otherKernel)
	}
}

// checkRefFileHash verifies the retained reference kernel file is
// byte-identical to the pinned hash.
func checkRefFileHash(pass *Pass, cfg KernelParityConfig) {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if filepath.Base(name) != cfg.RefFile {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			pass.Reportf(f.Pos(), "cannot hash %s: %v", cfg.RefFile, err)
			return
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != cfg.RefSHA256 {
			pass.Reportf(f.Pos(),
				"%s has been edited (sha256 %s, pinned %s): the file is retained verbatim by contract — it is the oracle TestReferenceKernelBitEqual compares the SoA kernel against and the baseline the BENCH_step throughput gate measures; revert, or (exceptionally) update the pinned hash in internal/analysis/kernelparity.go in the same commit with the oracle-test rationale re-justified",
				cfg.RefFile, got[:12], cfg.RefSHA256[:12])
		}
		return
	}
	pass.Reportf(pass.Files[0].Pos(), "%s is missing from %s: the retained reference kernel must not be deleted — it is the bit-identity oracle and throughput baseline", cfg.RefFile, cfg.PkgPath)
}

// declKey names a function declaration: "Type.Method" or "Func".
func declKey(pass *Pass, fd *ast.FuncDecl) string {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcKey(obj)
}

func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// kernelUses walks the call graph from the roots (within the package) and
// collects every ReceiverType field and WatchedType member the kernel
// reads, mapped to a representative use site.
func kernelUses(pass *Pass, cfg KernelParityConfig, decls map[string]*ast.FuncDecl, roots []string) map[string]ast.Node {
	uses := map[string]ast.Node{}
	seen := map[string]bool{}
	var visit func(key string)
	visit = func(key string) {
		if seen[key] {
			return
		}
		seen[key] = true
		fd, ok := decls[key]
		if !ok || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				selInfo, ok := pass.Info.Selections[n]
				if !ok {
					return true
				}
				recv := namedOf(selInfo.Recv())
				if recv == nil {
					return true
				}
				if recv.Obj().Name() == cfg.ReceiverType && recv.Obj().Pkg() == pass.Pkg && selInfo.Kind() == types.FieldVal {
					if _, dup := uses[n.Sel.Name]; !dup {
						uses[n.Sel.Name] = n
					}
				}
				if recv.Obj().Name() == cfg.WatchedType && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == cfg.WatchedPkgPath {
					key := "lut:" + n.Sel.Name
					if _, dup := uses[key]; !dup {
						uses[key] = n
					}
				}
			case *ast.Ident:
				// Intra-package calls (methods and plain functions) extend
				// the kernel's reach.
				if fn, ok := pass.Info.Uses[n].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					visit(funcKey(fn))
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}
	return uses
}

// namedOf unwraps pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
