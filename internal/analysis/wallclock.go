package analysis

import (
	"go/ast"
)

// WallClock flags time.Now and time.Since in deterministic-path packages.
// Simulated time is the only clock the kernel and controllers may read:
// wall-clock reads there are a determinism hazard (results vary with host
// load) and a benchmark-honesty hazard (timing the wrong window moves
// recorded numbers). The legitimate exceptions — phase-span telemetry
// probes, report wall-clock columns, bench harness timing — are annotated
// at the call site with //odrl:allow wallclock <reason>, which keeps the
// full list auditable via `odrl-vet -allows`.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since in deterministic-path packages; " +
		"simulated time is the only clock the kernel may read, telemetry " +
		"probes must carry //odrl:allow wallclock",
	Run: runWallClock,
}

func runWallClock(pass *Pass) error {
	if !OnWallClockAuditedPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [...]string{"Now", "Since"} {
				if isPkgFunc(pass, call.Fun, "time", name) {
					pass.Reportf(call.Pos(), "wall-clock read time.%s on the deterministic path; use simulated time, or annotate a telemetry probe with //odrl:allow wallclock <reason>", name)
				}
			}
			return true
		})
	}
	return nil
}
