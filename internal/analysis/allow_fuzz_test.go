package analysis

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzAllowComment hammers the suppression-directive parser: comment text
// is arbitrary source input, so ParseAllow must be total (no panics) and
// its structural invariants must hold for every byte sequence.
func FuzzAllowComment(f *testing.F) {
	f.Add("//odrl:allow wallclock phase-span telemetry probe")
	f.Add("//odrl:allow detrange")
	f.Add("//odrl:allow")
	f.Add("//odrl:allowance is prose")
	f.Add("//odrl:allow\twallclock\ttabbed reason")
	f.Add("// odrl:allow wallclock spaced marker is prose")
	f.Add("/*odrl:allow wallclock block comments are prose*/")
	f.Add("//odrl:allow  rngdiscipline   double  spaces ")
	f.Add("")
	f.Add("//")
	f.Add("//odrl:allow \x00\xff binary reason")

	f.Fuzz(func(t *testing.T, text string) {
		a, ok := ParseAllow(text)
		if !ok {
			if a != (Allow{}) {
				t.Fatalf("not-a-directive returned non-zero Allow: %+v", a)
			}
			return
		}
		// ok=true iff the text is exactly the marker followed by nothing or
		// a space/tab separator.
		rest, found := strings.CutPrefix(text, allowMarker)
		if !found {
			t.Fatalf("ok=true without marker prefix: %q", text)
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			t.Fatalf("ok=true with prose continuation: %q", text)
		}
		// A reason never appears without an analyzer name.
		if a.Analyzer == "" && a.Reason != "" {
			t.Fatalf("reason %q without analyzer from %q", a.Reason, text)
		}
		// The analyzer name is a single whitespace-free field.
		if strings.IndexFunc(a.Analyzer, unicode.IsSpace) >= 0 {
			t.Fatalf("analyzer %q contains whitespace (from %q)", a.Analyzer, text)
		}
		// The reason round-trips through Fields: normalised single spaces.
		if a.Reason != strings.Join(strings.Fields(a.Reason), " ") {
			t.Fatalf("reason %q not whitespace-normalised (from %q)", a.Reason, text)
		}
	})
}
