package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// RNGDiscipline enforces the single-seed reproducibility contract on the
// deterministic path: all randomness flows from injected repro/internal/rng
// streams (split per consumer via RNG.Split or par.SplitRNGs), never from
// math/rand. The ambient math/rand generators are process-global and
// goroutine-interleaved, so one stray draw forks every fault realisation
// and RL trajectory from its seed; storing a *math/rand.Rand in a struct
// field smuggles the same hazard in by reference.
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc: "forbid math/rand on the deterministic path: no imports, no " +
		"top-level draws, no rand.New, no *rand.Rand struct fields; all " +
		"randomness comes from injected repro/internal/rng streams",
	Run: runRNGDiscipline,
}

// mathRandPaths are the forbidden generator packages.
var mathRandPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runRNGDiscipline(pass *Pass) error {
	if !OnDeterministicPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !mathRandPaths[path] {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %s on the deterministic path; draw from an injected repro/internal/rng stream (rng.New(seed).Split / par.SplitRNGs) instead", path)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if pkg := pkgNameOf(pass, sel.X); mathRandPaths[pkg] {
					if sel.Sel.Name == "New" {
						pass.Reportf(n.Pos(), "rand.New outside internal/rng: even a locally-seeded math/rand generator bypasses the split-stream discipline; thread a repro/internal/rng stream instead")
					} else {
						pass.Reportf(n.Pos(), "math/rand draw %s.%s uses process-global, nondeterministically shared state; draw from an injected repro/internal/rng stream", pkg, sel.Sel.Name)
					}
				}
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, field := range n.Fields.List {
					if t := pass.Info.TypeOf(field.Type); t != nil && referencesMathRand(t) {
						pass.Reportf(field.Pos(), "struct field stores a math/rand generator; RNG-bearing fields must hold repro/internal/rng streams threaded from the run seed (rng.Split / par.SplitRNGs)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// referencesMathRand reports whether a type is (or dereferences/contains as
// an element to) a math/rand type.
func referencesMathRand(t types.Type) bool {
	for range 10 { // bounded unwrap of pointers/slices/arrays
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			return obj.Pkg() != nil && mathRandPaths[obj.Pkg().Path()]
		default:
			return false
		}
	}
	return false
}
