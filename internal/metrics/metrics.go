// Package metrics defines the evaluation quantities the paper reports:
// budget-overshoot integral, throughput, throughput per over-the-budget
// energy (abstract claim C2), and energy efficiency (claim C3).
package metrics

import (
	"fmt"
	"math"
)

// Summary aggregates one measured run of one controller on one workload.
type Summary struct {
	Controller string
	Workload   string
	Cores      int
	BudgetW    float64
	DurS       float64
	// Instr is total instructions retired during the measurement window.
	Instr float64
	// EnergyJ is total chip energy over the window.
	EnergyJ float64
	// OverJ is the overshoot integral: energy accumulated above the budget.
	OverJ float64
	// OverTimeS is time spent above the budget.
	OverTimeS float64
	PeakW     float64
	MeanW     float64
	// MaxTempK is the hottest observed core temperature.
	MaxTempK float64
	// CtrlTimeS is wall-clock time the controller spent deciding.
	CtrlTimeS float64
	// CtrlLocalTimeS and CtrlGlobalTimeS split CtrlTimeS for controllers
	// that profile their phases (ctrl.PhaseProfiler): time in per-core
	// (distributed) learning updates vs. the global budget-reallocation
	// pass, over the same measurement window. Both are zero for
	// controllers without phase probes; their sum may fall short of
	// CtrlTimeS by the controller's untimed bookkeeping overhead.
	CtrlLocalTimeS  float64
	CtrlGlobalTimeS float64
	// CommEnergyJ and CommLatencyS are modelled NoC control-traffic costs
	// over the window.
	CommEnergyJ  float64
	CommLatencyS float64
}

// Validate reports the first inconsistent field.
func (s Summary) Validate() error {
	switch {
	case s.DurS <= 0:
		return fmt.Errorf("metrics: non-positive duration %g", s.DurS)
	case s.Instr < 0:
		return fmt.Errorf("metrics: negative instruction count %g", s.Instr)
	case s.EnergyJ < 0:
		return fmt.Errorf("metrics: negative energy %g", s.EnergyJ)
	case s.OverJ < 0:
		return fmt.Errorf("metrics: negative overshoot %g", s.OverJ)
	case s.OverJ > s.EnergyJ+1e-9:
		return fmt.Errorf("metrics: overshoot %g exceeds energy %g", s.OverJ, s.EnergyJ)
	case s.OverTimeS > s.DurS+1e-9:
		return fmt.Errorf("metrics: over-budget time %g exceeds duration %g", s.OverTimeS, s.DurS)
	case s.CtrlLocalTimeS < 0 || s.CtrlGlobalTimeS < 0:
		return fmt.Errorf("metrics: negative controller phase time (%g, %g)", s.CtrlLocalTimeS, s.CtrlGlobalTimeS)
	}
	return nil
}

// BIPS returns billions of instructions per second over the window.
func (s Summary) BIPS() float64 { return s.Instr / s.DurS / 1e9 }

// OvershootNorm returns the overshoot integral normalised by the total
// budgeted energy (budget × duration): a dimensionless severity in [0, ∞).
func (s Summary) OvershootNorm() float64 {
	if s.BudgetW <= 0 || s.DurS <= 0 {
		return 0
	}
	return s.OverJ / (s.BudgetW * s.DurS)
}

// OverTimeFrac returns the fraction of time spent above the budget.
func (s Summary) OverTimeFrac() float64 {
	if s.DurS <= 0 {
		return 0
	}
	return s.OverTimeS / s.DurS
}

// ThroughputPerOverJ is the paper's claim-C2 metric: throughput earned per
// joule spent above the budget. A controller with negligible overshoot
// scores arbitrarily well, so the overshoot energy is floored at floorJ
// (pass the measurement resolution, e.g. one epoch at one watt) to keep the
// metric finite and comparable.
func (s Summary) ThroughputPerOverJ(floorJ float64) float64 {
	over := s.OverJ
	if over < floorJ {
		over = floorJ
	}
	if over <= 0 {
		return math.Inf(1)
	}
	return s.BIPS() / over
}

// EnergyEff is claim-C3's metric: BIPS per watt (equivalently, billions of
// instructions per joule).
func (s Summary) EnergyEff() float64 {
	if s.EnergyJ <= 0 {
		return 0
	}
	return s.Instr / 1e9 / s.EnergyJ
}
