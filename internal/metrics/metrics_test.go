package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() Summary {
	return Summary{
		Controller: "od-rl",
		Workload:   "canneal",
		Cores:      64,
		BudgetW:    90,
		DurS:       10,
		Instr:      500e9,
		EnergyJ:    800,
		OverJ:      4,
		OverTimeS:  0.5,
		PeakW:      95,
		MeanW:      80,
	}
}

func TestValidateGood(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBad(t *testing.T) {
	mutations := []func(*Summary){
		func(s *Summary) { s.DurS = 0 },
		func(s *Summary) { s.Instr = -1 },
		func(s *Summary) { s.EnergyJ = -1 },
		func(s *Summary) { s.OverJ = -1 },
		func(s *Summary) { s.OverJ = s.EnergyJ + 1 },
		func(s *Summary) { s.OverTimeS = s.DurS + 1 },
	}
	for i, m := range mutations {
		s := sample()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestBIPS(t *testing.T) {
	s := sample()
	if got := s.BIPS(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("BIPS = %v, want 50", got)
	}
}

func TestOvershootNorm(t *testing.T) {
	s := sample()
	want := 4.0 / (90 * 10)
	if got := s.OvershootNorm(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("OvershootNorm = %v, want %v", got, want)
	}
	s.BudgetW = 0
	if got := s.OvershootNorm(); got != 0 {
		t.Fatalf("zero budget should give 0, got %v", got)
	}
}

func TestOverTimeFrac(t *testing.T) {
	s := sample()
	if got := s.OverTimeFrac(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("OverTimeFrac = %v, want 0.05", got)
	}
}

func TestThroughputPerOverJ(t *testing.T) {
	s := sample()
	if got := s.ThroughputPerOverJ(0.001); math.Abs(got-50.0/4.0) > 1e-9 {
		t.Fatalf("ThroughputPerOverJ = %v, want 12.5", got)
	}
	// Floor applies when overshoot is tiny.
	s.OverJ = 1e-9
	if got := s.ThroughputPerOverJ(0.1); math.Abs(got-50.0/0.1) > 1e-6 {
		t.Fatalf("floored metric = %v, want 500", got)
	}
	// Degenerate zero floor and zero overshoot → +Inf rather than NaN.
	s.OverJ = 0
	if got := s.ThroughputPerOverJ(0); !math.IsInf(got, 1) {
		t.Fatalf("zero/zero case = %v, want +Inf", got)
	}
}

func TestEnergyEff(t *testing.T) {
	s := sample()
	want := 500.0 / 800.0
	if got := s.EnergyEff(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EnergyEff = %v, want %v", got, want)
	}
	s.EnergyJ = 0
	if got := s.EnergyEff(); got != 0 {
		t.Fatalf("zero energy should give 0, got %v", got)
	}
}

// Property: for valid summaries, the metric identities hold:
// EnergyEff·MeanW ≈ BIPS when MeanW = EnergyJ/DurS.
func TestQuickMetricIdentity(t *testing.T) {
	f := func(instrRaw, energyRaw uint16, durRaw uint8) bool {
		s := Summary{
			DurS:    float64(durRaw%50) + 1,
			Instr:   float64(instrRaw) * 1e8,
			EnergyJ: float64(energyRaw)/10 + 0.1,
		}
		s.MeanW = s.EnergyJ / s.DurS
		lhs := s.EnergyEff() * s.MeanW
		rhs := s.BIPS()
		return math.Abs(lhs-rhs) <= 1e-9*math.Max(1, math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
