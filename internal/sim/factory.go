package sim

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/power"
	"repro/internal/vf"
)

// Env couples a controller to the platform it will manage.
type Env struct {
	Cores int
	VF    *vf.Table
	Power power.Params
	// CadenceEpochs is the decision cadence of the centralised baselines
	// and the OD-RL reallocation layer.
	CadenceEpochs int
	Seed          uint64
	// Lambda overrides the OD-RL overshoot penalty when non-zero.
	Lambda float64
	// Workers bounds the goroutines sharding the OD-RL fine-grain phase:
	// 0 uses one worker per CPU, 1 forces sequential updates. Decisions
	// are bit-identical for any worker count.
	Workers int
	// WatchdogEpochs arms the OD-RL stale-telemetry watchdog (see
	// core.Config.WatchdogEpochs); 0 leaves it off. EnvFor sets it
	// automatically when the run carries a fault plan.
	WatchdogEpochs int
}

// DefaultEnv returns the default platform environment for a core count.
func DefaultEnv(cores int) Env {
	return Env{
		Cores:         cores,
		VF:            vf.Default(),
		Power:         power.Default(),
		CadenceEpochs: 10,
		Seed:          1,
	}
}

// ControllerNames lists every controller the factory can build, in the
// order evaluation tables present them.
func ControllerNames() []string {
	return []string{"od-rl", "od-rl-norealloc", "maxbips", "steepest-drop", "pid", "greedy", "static"}
}

// NewController builds a controller by name.
func NewController(name string, env Env) (ctrl.Controller, error) {
	if env.Cores <= 0 {
		return nil, fmt.Errorf("sim: invalid core count %d", env.Cores)
	}
	if env.VF == nil {
		return nil, fmt.Errorf("sim: nil VF table")
	}
	if env.CadenceEpochs < 1 {
		return nil, fmt.Errorf("sim: invalid cadence %d", env.CadenceEpochs)
	}
	switch name {
	case "od-rl", "od-rl-norealloc":
		cfg := core.DefaultConfig()
		cfg.Seed = env.Seed
		cfg.FineEpochsPerRealloc = env.CadenceEpochs
		cfg.DisableRealloc = name == "od-rl-norealloc"
		cfg.Workers = env.Workers
		cfg.WatchdogEpochs = env.WatchdogEpochs
		if env.Lambda != 0 {
			cfg.Lambda = env.Lambda
		}
		return core.New(env.Cores, env.VF, env.Power, cfg)
	case "maxbips":
		pred, err := ctrl.NewPredictor(env.VF, env.Power)
		if err != nil {
			return nil, err
		}
		return baselines.NewMaxBIPS(pred, env.CadenceEpochs, 0.05)
	case "steepest-drop":
		pred, err := ctrl.NewPredictor(env.VF, env.Power)
		if err != nil {
			return nil, err
		}
		return baselines.NewSteepestDrop(pred, env.CadenceEpochs)
	case "pid":
		return baselines.DefaultPID(env.VF), nil
	case "static":
		return baselines.NewStatic(env.VF, env.Power, 360)
	case "greedy":
		return baselines.NewGreedy(env.VF, env.Power)
	default:
		return nil, fmt.Errorf("sim: unknown controller %q (have %v)", name, ControllerNames())
	}
}
