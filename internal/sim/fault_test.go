package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
)

// faultOpts returns short options with the canonical fault plan armed.
func faultOpts(intensity float64) Options {
	o := shortOpts()
	o.TracePoints = 0
	if intensity > 0 {
		p := fault.Scaled(intensity)
		o.FaultPlan = &p
	}
	return o
}

// runFingerprint runs one controller and reduces the result to its
// deterministic fields (wall-clock metrics excluded).
func runFingerprint(t *testing.T, opts Options, name string) (Result, []float64) {
	t.Helper()
	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(name, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	return res, []float64{s.Instr, s.EnergyJ, s.OverJ, s.OverTimeS, s.PeakW, s.MeanW, s.MaxTempK}
}

// TestZeroPlanByteIdentical is the acceptance criterion for the fault
// layer's disabled path: a nil plan and an all-zero plan must both produce
// exactly the results of the pre-fault-layer code path.
func TestZeroPlanByteIdentical(t *testing.T) {
	for _, name := range []string{"od-rl", "pid"} {
		base := faultOpts(0)
		_, clean := runFingerprint(t, base, name)

		zeroed := base
		zeroed.FaultPlan = &fault.Plan{}
		_, zero := runFingerprint(t, zeroed, name)

		if !reflect.DeepEqual(clean, zero) {
			t.Fatalf("%s: zero plan changed the run: %v vs %v", name, clean, zero)
		}
	}
}

// TestFaultRunWorkersIndependent pins the determinism contract under
// faults: the fault realisation and the full result must be identical for
// any -j, because every injector draw happens on the sequential epoch loop.
func TestFaultRunWorkersIndependent(t *testing.T) {
	for _, name := range []string{"od-rl", "maxbips"} {
		seq := faultOpts(1)
		seq.Workers = 1
		_, a := runFingerprint(t, seq, name)

		par := faultOpts(1)
		par.Workers = 4
		_, b := runFingerprint(t, par, name)

		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: fault run diverged across worker counts: %v vs %v", name, a, b)
		}
	}
}

// TestFaultRunReproducible: same options, same realisation.
func TestFaultRunReproducible(t *testing.T) {
	opts := faultOpts(1)
	_, a := runFingerprint(t, opts, "od-rl")
	_, b := runFingerprint(t, opts, "od-rl")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed fault runs diverged: %v vs %v", a, b)
	}
}

// TestFaultPlanChangesRun: an armed plan must actually perturb the run.
func TestFaultPlanChangesRun(t *testing.T) {
	_, clean := runFingerprint(t, faultOpts(0), "od-rl")
	_, faulted := runFingerprint(t, faultOpts(1), "od-rl")
	if reflect.DeepEqual(clean, faulted) {
		t.Fatal("canonical plan at intensity 1 left the run untouched")
	}
}

// TestFaultRunStaysSane: under the harshest canonical plan every controller
// must still produce a valid, finite summary — graceful degradation, not
// NaN propagation or a panic.
func TestFaultRunStaysSane(t *testing.T) {
	for _, name := range ControllerNames() {
		opts := faultOpts(1)
		res, fp := runFingerprint(t, opts, name)
		for i, v := range fp {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite summary field %d: %v", name, i, fp)
			}
		}
		if res.Summary.Instr <= 0 {
			t.Fatalf("%s: no instructions retired under faults", name)
		}
	}
}

// TestDeadCoresFreezeAtBottom: cores killed by the plan must end pinned
// dark; the chip reports them dead and holds level 0.
func TestDeadCoresFreezeAtBottom(t *testing.T) {
	opts := shortOpts()
	opts.TracePoints = 0
	opts.MeasureS = 0.4
	p := fault.Plan{DeadCoreFrac: 0.25}
	opts.FaultPlan = &p

	chipCheck, _, err := NewChip(opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = chipCheck // NewChip must accept the plan without side effects

	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	// 25% of 16 cores die; the run must still finish with work done.
	if res.Summary.Instr <= 0 {
		t.Fatal("no instructions retired with dead cores")
	}
	dead := 0
	for _, l := range res.FinalLevels {
		if l == 0 {
			dead++
		}
	}
	if dead < 4 {
		t.Fatalf("expected at least the 4 dead cores at level 0, got %d", dead)
	}
}

// TestEnvForArmsWatchdog: a fault plan must switch the OD-RL stale-telemetry
// watchdog on, and its absence must leave it off.
func TestEnvForArmsWatchdog(t *testing.T) {
	clean, err := EnvFor(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if clean.WatchdogEpochs != 0 {
		t.Fatalf("fault-free env armed the watchdog: %d", clean.WatchdogEpochs)
	}
	faulted, err := EnvFor(faultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.WatchdogEpochs <= 0 {
		t.Fatal("faulted env left the watchdog off")
	}
}

// TestOptionsValidateFaultPlan: an invalid plan must be rejected at the
// options layer, before any run starts.
func TestOptionsValidateFaultPlan(t *testing.T) {
	o := shortOpts()
	o.FaultPlan = &fault.Plan{SensorStuckProb: 2}
	if err := o.Validate(); err == nil {
		t.Fatal("invalid fault plan passed Options.Validate")
	}
}
