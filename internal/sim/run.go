package sim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/ctrl"
	"repro/internal/fault"
	"repro/internal/manycore"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/variation"
	"repro/internal/workload"
)

// TracePoint is one decimated sample of the measured power trace.
type TracePoint struct {
	TimeS    float64
	PowerW   float64
	BudgetW  float64
	MaxTempK float64
}

// Result is one finished run.
type Result struct {
	Summary metrics.Summary
	// Trace is the decimated power trace (empty unless TracePoints > 0).
	Trace []TracePoint
	// FinalLevels is the VF assignment at the end of the run.
	FinalLevels []int
}

// buildSources constructs per-core workload sources per the options.
func buildSources(opts Options, r *rng.RNG) ([]workload.Source, error) {
	if opts.Workload == "barrier" {
		// A bulk-synchronous app across all cores: compute-heavy work
		// phases, ~20% lane imbalance, a superstep quota of roughly 8 ms
		// of work at the top operating point.
		work := workload.Phase{
			Class: workload.Compute, BaseCPI: 0.85, MPKI: 2.0,
			MemLatencyNs: 75, Activity: 0.9,
		}
		app, err := workload.NewBarrierApp(opts.Cores, work, 30e6, 0.2, r.Split())
		if err != nil {
			return nil, err
		}
		sources := make([]workload.Source, opts.Cores)
		for i := range sources {
			sources[i] = app.Lane(i)
		}
		return sources, nil
	}
	if tr := opts.WorkloadTrace; tr != nil {
		total := tr.TotalDurS()
		sources := make([]workload.Source, opts.Cores)
		for i := range sources {
			rep, err := workload.NewReplayer(*tr)
			if err != nil {
				return nil, err
			}
			// Stagger starting positions so cores are decorrelated while
			// replaying the identical realisation.
			rep.Advance(total * float64(i) / float64(opts.Cores))
			sources[i] = rep
		}
		return sources, nil
	}
	var specs []workload.Spec
	if opts.Workload == "mix" {
		for _, name := range workload.PresetNames() {
			specs = append(specs, workload.MustPreset(name))
		}
	} else {
		s, err := workload.Preset(opts.Workload)
		if err != nil {
			return nil, err
		}
		specs = []workload.Spec{s}
	}
	sources := make([]workload.Source, opts.Cores)
	for i := range sources {
		scale := 1.0
		if j := opts.WorkloadScaleJitter; j > 0 {
			scale = 1 + j*(2*r.Float64()-1)
		}
		p, err := workload.NewScaledProcess(specs[i%len(specs)], r.Split(), scale)
		if err != nil {
			return nil, err
		}
		sources[i] = p
	}
	return sources, nil
}

// NewChip assembles the chip and mesh an options set describes, without
// running anything. Experiments that need custom epoch loops (convergence
// tracking, interactive drivers) build on this.
func NewChip(opts Options) (*manycore.Chip, *noc.Mesh, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	w, h, err := GridFor(opts.Cores)
	if err != nil {
		return nil, nil, err
	}
	plat := config.Default()
	if opts.Platform != nil {
		plat = *opts.Platform
	}
	table, err := plat.VFTable()
	if err != nil {
		return nil, nil, err
	}
	base := rng.New(opts.Seed)
	sources, err := buildSources(opts, base.Split())
	if err != nil {
		return nil, nil, err
	}
	cfg := manycore.Config{
		Width:              w,
		Height:             h,
		VF:                 table,
		Power:              plat.Power,
		Thermal:            plat.Thermal,
		ThermalEnabled:     !opts.ThermalOff,
		SensorNoise:        opts.SensorNoise,
		TransitionPenaltyS: plat.TransitionPenaltyS,
		InitialLevel:       0,
		IslandW:            opts.IslandW,
		IslandH:            opts.IslandH,
		Workers:            opts.Workers,
	}
	if opts.Variation != nil {
		vmap, err := variation.Generate(w, h, *opts.Variation)
		if err != nil {
			return nil, nil, err
		}
		cfg.Variation = vmap
	}
	if opts.BigLittle {
		cfg.CoreTypes = manycore.BigLittleTypes()
		cfg.TypeOf = make([]int, w*h)
		for i := range cfg.TypeOf {
			if i%w >= w/2 {
				cfg.TypeOf[i] = 1 // little cores on the right half
			}
		}
	}
	chip, err := manycore.New(cfg, sources, base.Split())
	if err != nil {
		return nil, nil, err
	}
	mesh, err := noc.New(w, h, plat.NoC)
	if err != nil {
		return nil, nil, err
	}
	return chip, mesh, nil
}

// Run executes one simulation with the given controller and returns its
// measured summary. The controller is driven every epoch over warmup and
// measurement; metrics cover the measurement window only.
func Run(opts Options, c ctrl.Controller) (Result, error) {
	if c == nil {
		return Result{}, fmt.Errorf("sim: nil controller")
	}
	chip, mesh, err := NewChip(opts)
	if err != nil {
		return Result{}, err
	}
	// The chip owns persistent shard workers that park between epochs;
	// release them with the run. The controller is caller-owned (it may be
	// inspected or reused after the run), so its pool is the caller's to
	// close — RunAll closes the controllers it builds itself.
	defer chip.Close()
	cfg := chip.Config()

	warmupEpochs, measureEpochs := opts.Epochs()
	totalEpochs := warmupEpochs + measureEpochs

	// The injector's hooks and per-epoch draws all run on this sequential
	// loop, so the fault realisation is independent of opts.Workers.
	var inj *fault.Injector
	if p := opts.FaultPlan; p != nil && !p.Zero() {
		inj, err = fault.NewInjector(*p, opts.Cores, float64(totalEpochs)*opts.EpochS, opts.Seed)
		if err != nil {
			return Result{}, err
		}
		chip.SetTelemetryFilter(inj)
		chip.SetActuationFilter(inj)
	}

	traceEvery := 0
	if opts.TracePoints > 0 {
		// Ceiling division: a floor stride records up to nearly twice the
		// requested point count when TracePoints does not divide
		// measureEpochs; rounding the stride up keeps len(trace) within
		// the request.
		traceEvery = (measureEpochs + opts.TracePoints - 1) / opts.TracePoints
		if traceEvery < 1 {
			traceEvery = 1
		}
	}

	observer := opts.Observer
	if observer == nil {
		observer = DefaultObserver
	}
	mon := opts.Monitor
	if mon == nil {
		mon = DefaultMonitor
	}
	extraSink := opts.SpanSink
	if extraSink == nil {
		extraSink = DefaultSpanSink
	}
	var spanSink obs.SpanSink
	if mon != nil {
		// The monitor wraps the chain so it sees every epoch while a
		// chained tracer keeps its own stride; it also collects the
		// controller's phase spans for the Perfetto timeline.
		observer = mon.Wrap(observer)
		spanSink = mon.Timeline()
	}
	// An extra sink (the flight recorder's post-mortem ring) tees with the
	// monitor's timeline: one controller sink slot, both consumers.
	spanSink = obs.TeeSpans(spanSink, extraSink)
	if spanSink != nil {
		if ss, ok := c.(ctrl.SpanStreamer); ok {
			ss.SetSpanSink(spanSink)
			defer ss.SetSpanSink(nil)
		}
	}
	meta := obs.RunMeta{
		Controller: c.Name(),
		Workload:   opts.Workload,
		Cores:      opts.Cores,
		BudgetW:    opts.BudgetW,
		EpochS:     opts.EpochS,
		Seed:       opts.Seed,
	}
	var (
		runObs  obs.RunObserver
		scratch *eventScratch
	)
	if observer != nil {
		runObs = observer.BeginRun(meta)
		defer runObs.End()
		scratch = newEventScratch(cfg)
	}
	var faultObs obs.FaultObserver
	if fo, ok := runObs.(obs.FaultObserver); ok && inj != nil {
		faultObs = fo
	}
	detailSampler, _ := runObs.(obs.EpochDetailSampler)

	// Learning introspection: attach the layer's sink to controllers that
	// stream learning samples. Everything here is read-only over the
	// decision stream (the byte-identical golden tests pin that), so runs
	// are unchanged with the layer on or off.
	lrn := opts.Learn
	if lrn == nil {
		lrn = DefaultLearn
	}
	var (
		runLearn  *learn.Run
		learnObs  obs.LearnObserver
		policySrc ctrl.PolicySnapshotter
	)
	if lrn != nil {
		if ls, ok := c.(ctrl.LearnStreamer); ok {
			lscratch := scratch
			if lscratch == nil {
				lscratch = newEventScratch(cfg)
			}
			runLearn = lrn.BeginRun(meta, lscratch.islandOf, len(lscratch.islands))
			ls.SetLearnSink(runLearn)
			defer ls.SetLearnSink(nil)
			policySrc, _ = c.(ctrl.PolicySnapshotter)
			learnObs, _ = runObs.(obs.LearnObserver)
		}
	}

	var (
		meter      power.Meter
		instrStart float64
		maxTempK   = cfg.Thermal.AmbientK
		ctrlTime   time.Duration
		trace      []TracePoint
	)
	out := make([]int, opts.Cores)
	// One telemetry buffer for the whole run: StepInto rewrites every slot
	// each epoch and nothing downstream retains tel.Cores past the epoch
	// (observers and controllers copy what they keep), so the per-epoch
	// slice allocation — the dominant GC load of a run — disappears.
	var tel manycore.Telemetry
	// Per-epoch observer events and the convergence-drain callback are
	// hoisted out of the loop for the same reason: their addresses escape
	// into interface calls, so loop-local declarations would heap-allocate
	// every epoch. Observers copy what they keep, so reuse is safe; the
	// callback reads its epoch context through drainEpoch/drainTimeS.
	var (
		epochEv    obs.EpochEvent
		learnEv    obs.LearnEvent
		drainEpoch int
		drainTimeS float64
	)
	drainFn := func(cv *obs.ConvergedEvent) {
		cv.Epoch = drainEpoch
		cv.TimeS = drainTimeS
		if learnObs != nil {
			learnObs.ObserveConverged(cv)
		}
	}

	for e := 0; e < totalEpochs; e++ {
		if e == warmupEpochs {
			instrStart = chip.Instructions()
			// Re-zero phase probes so their totals split CtrlTimeS over
			// the same measurement window.
			if pp, ok := c.(ctrl.PhaseProfiler); ok {
				pp.ResetPhaseTimes()
			}
		}
		tStart := chip.TimeS()
		budget := opts.budgetAt(tStart)
		if inj != nil {
			for _, fe := range inj.Tick(tStart, opts.EpochS) {
				if fe.Kind == fault.KindCoreDead {
					chip.FailCore(fe.Core)
				}
				if faultObs != nil {
					ev := obs.FaultEvent{
						Epoch: e - warmupEpochs,
						TimeS: tStart,
						Kind:  fe.Kind,
						Core:  fe.Core,
					}
					if !math.IsInf(fe.UntilS, 1) {
						ev.UntilS = fe.UntilS
					}
					faultObs.ObserveFault(&ev)
				}
			}
			// Cap transients are real: controller and compliance meter both
			// see the reduced budget.
			budget = inj.FilterBudget(tStart, budget)
		}
		chip.StepInto(opts.EpochS, &tel)

		measuring := e >= warmupEpochs
		if measuring {
			meter.Add(tel.TruePowerW, budget, opts.EpochS)
			if t := chip.MaxTempK(); t > maxTempK {
				maxTempK = t
			}
			if traceEvery > 0 && (e-warmupEpochs)%traceEvery == 0 {
				trace = append(trace, TracePoint{
					TimeS:    tel.TimeS,
					PowerW:   tel.TruePowerW,
					BudgetW:  budget,
					MaxTempK: chip.MaxTempK(),
				})
			}
		}

		start := time.Now() //odrl:allow wallclock decide-latency telemetry; recorded beside results, never feeds them
		c.Decide(&tel, budget, out)
		var decide time.Duration
		if measuring {
			decide = time.Since(start) //odrl:allow wallclock decide-latency telemetry; recorded beside results, never feeds them
			ctrlTime += decide
		}
		if runLearn != nil {
			// Convergence events are rare and delivered unconditionally,
			// like faults; the drain itself must run every epoch so pending
			// events never pile up when no trace is attached.
			drainEpoch, drainTimeS = e-warmupEpochs, tel.TimeS
			runLearn.DrainConverged(drainFn)
			runLearn.MaybeSnapshot(tel.TimeS, policySrc)
		}
		if runObs != nil && measuring {
			me := e - warmupEpochs
			if runObs.ShouldSample(me) {
				epochEv = obs.EpochEvent{
					Epoch:    me,
					TimeS:    tel.TimeS,
					PowerW:   tel.TruePowerW,
					BudgetW:  budget,
					MaxTempK: chip.MaxTempK(),
					DecideNs: int64(decide),
				}
				if tel.TruePowerW > budget {
					epochEv.OvershootW = tel.TruePowerW - budget
				}
				detail := detailSampler == nil || detailSampler.WantsEpochDetail(me)
				if detail {
					scratch.fill(&epochEv, &tel)
				} else {
					scratch.fillLight(&epochEv, &tel)
				}
				if runLearn != nil {
					runLearn.FillEvent(&epochEv)
				}
				runObs.ObserveEpoch(&epochEv)
				if runLearn != nil && learnObs != nil {
					learnEv = obs.LearnEvent{Epoch: me, TimeS: tel.TimeS}
					runLearn.FillLearnEvent(&learnEv, detail)
					learnObs.ObserveLearn(&learnEv)
				}
			}
		}
		for i, l := range out {
			chip.SetLevel(i, l)
		}
	}

	if runLearn != nil {
		// Detach before Finish so the controller flushes any partial emit
		// window (strided sinks); the deferred detach is then a no-op. The
		// flush can fire last-window convergence events, so drain once more.
		if ls, ok := c.(ctrl.LearnStreamer); ok {
			ls.SetLearnSink(nil)
		}
		drainEpoch, drainTimeS = totalEpochs-warmupEpochs-1, chip.TimeS()
		runLearn.DrainConverged(drainFn)
		runLearn.Finish(chip.TimeS(), policySrc)
	}

	var localS, globalS float64
	if pp, ok := c.(ctrl.PhaseProfiler); ok {
		for _, pt := range pp.PhaseTimes() {
			switch pt.Name {
			case obs.PhaseLocal:
				localS = pt.Total.Seconds()
			case obs.PhaseGlobal:
				globalS = pt.Total.Seconds()
			}
		}
	}

	comm := c.CommPerEpoch(mesh)
	summary := metrics.Summary{
		Controller:      c.Name(),
		Workload:        opts.Workload,
		Cores:           opts.Cores,
		BudgetW:         opts.BudgetW,
		DurS:            meter.TimeS(),
		Instr:           chip.Instructions() - instrStart,
		EnergyJ:         meter.EnergyJ(),
		OverJ:           meter.OverBudgetJ(),
		OverTimeS:       meter.OverBudgetTimeS(),
		PeakW:           meter.PeakW(),
		MeanW:           meter.MeanW(),
		MaxTempK:        maxTempK,
		CtrlTimeS:       ctrlTime.Seconds(),
		CtrlLocalTimeS:  localS,
		CtrlGlobalTimeS: globalS,
		CommEnergyJ:     comm.EnergyJ * float64(measureEpochs),
		CommLatencyS:    comm.LatencyS * float64(measureEpochs),
	}
	if err := summary.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: inconsistent summary: %w", err)
	}
	levels := make([]int, opts.Cores)
	for i := range levels {
		levels[i] = chip.Level(i)
	}
	return Result{Summary: summary, Trace: trace, FinalLevels: levels}, nil
}

// EnvFor builds the controller environment matching an options set: the
// same VF table and power constants the simulated chip will use, with the
// centralised decision cadence pinned to ~10 ms of simulated time.
func EnvFor(opts Options) (Env, error) {
	env := DefaultEnv(opts.Cores)
	env.Seed = opts.Seed
	env.Workers = opts.Workers
	if opts.FaultPlan != nil && !opts.FaultPlan.Zero() {
		// Faulted runs arm the stale-telemetry watchdog: 25 epochs (25 ms
		// at the default cadence) of exactly repeated readings before a
		// core falls back to its lowest-power level. Fault-free runs leave
		// it off so their decision stream stays byte-identical.
		env.WatchdogEpochs = 25
	}
	if opts.EpochS > 0 {
		cadence := int(10e-3/opts.EpochS + 0.5)
		if cadence < 1 {
			cadence = 1
		}
		env.CadenceEpochs = cadence
	}
	if opts.Platform != nil {
		table, err := opts.Platform.VFTable()
		if err != nil {
			return Env{}, err
		}
		env.VF = table
		env.Power = opts.Platform.Power
	}
	return env, nil
}

// RunAll runs the same options against a list of controller names built
// from EnvFor, returning results in the given order.
func RunAll(opts Options, names []string) ([]Result, error) {
	results := make([]Result, 0, len(names))
	for _, name := range names {
		env, err := EnvFor(opts)
		if err != nil {
			return nil, err
		}
		c, err := NewController(name, env)
		if err != nil {
			return nil, err
		}
		res, err := Run(opts, c)
		// Controllers built here are single-run; release any persistent
		// worker pool before moving on (harmless for poolless ones).
		if cl, ok := c.(io.Closer); ok {
			cl.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("sim: running %s: %w", name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RunExperiment executes a config.Experiment: one run per controller on the
// experiment's platform and scenario.
func RunExperiment(exp config.Experiment) ([]Result, error) {
	if err := exp.Validate(); err != nil {
		return nil, err
	}
	opts := DefaultOptions()
	opts.Cores = exp.Cores
	opts.Workload = exp.Workload
	opts.BudgetW = exp.BudgetW
	opts.EpochS = exp.EpochS
	opts.WarmupS = exp.WarmupS
	opts.MeasureS = exp.MeasureS
	opts.Seed = exp.Seed
	opts.SensorNoise = exp.SensorNoise
	opts.ThermalOff = exp.ThermalOff
	plat := exp.Platform
	opts.Platform = &plat
	for _, s := range exp.BudgetSchedule {
		opts.BudgetSchedule = append(opts.BudgetSchedule, BudgetStep{AtS: s.AtS, BudgetW: s.BudgetW})
	}
	return RunAll(opts, exp.Controllers)
}

// SortByName orders results alphabetically by controller, for stable table
// output when callers assemble results from concurrent runs.
func SortByName(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		return rs[i].Summary.Controller < rs[j].Summary.Controller
	})
}
