package sim

import (
	"runtime"
	"testing"

	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
)

// mallocsDuring returns the number of heap allocations performed while f
// runs. A GC beforehand settles any pending finalizer work so stale
// garbage from earlier tests cannot bleed into the count.
func mallocsDuring(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// allocRun executes one sequential od-rl run with monitoring and learning
// introspection attached — the full observability stack a production run
// carries — and returns how many heap allocations it made.
func allocRun(t *testing.T, measureS float64) uint64 {
	t.Helper()
	opts := DefaultOptions()
	opts.Cores = 16
	opts.Workers = 1
	opts.WarmupS = 0.05
	opts.MeasureS = measureS
	opts.TracePoints = 0
	opts.Monitor = monitor.New(monitor.Options{})
	opts.Learn = learn.New(learn.Options{})

	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	n := mallocsDuring(func() {
		_, runErr = Run(opts, c)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return n
}

// TestRunSteadyStateZeroAlloc is the allocation-regression gate for the
// epoch loop: two runs that differ only in length are measured, so all
// setup cost (chip construction, LUTs, observer registration, result
// buffers) cancels in the difference and the quotient is the steady-state
// per-epoch allocation rate. The epoch kernel, the decide/learn path, and
// the monitor + learn observers together must allocate nothing per epoch;
// the threshold of 0.05 allocs/epoch leaves room only for amortized slice
// growth inside the observers' time-series stores.
//
// testing.AllocsPerRun is deliberately not used: it averages whole
// invocations of Run, so chip construction would swamp the per-epoch
// signal it is supposed to detect. Differencing two run lengths is the
// same measurement with the setup term subtracted out.
func TestRunSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("allocation measurement needs the long run")
	}

	const shortS, longS = 0.2, 1.2
	opts := DefaultOptions()
	opts.EpochS = 1e-3 // pin the epoch length the arithmetic below assumes
	extraEpochs := int((longS - shortS) / opts.EpochS)

	// Warm once so lazily-initialised package state (controller registry,
	// observer metadata) is counted by neither measured run.
	allocRun(t, shortS)

	short := allocRun(t, shortS)
	long := allocRun(t, longS)

	var perEpoch float64
	if long > short {
		perEpoch = float64(long-short) / float64(extraEpochs)
	}
	t.Logf("allocs: short=%d long=%d over %d extra epochs => %.4f allocs/epoch",
		short, long, extraEpochs, perEpoch)
	if perEpoch > 0.05 {
		t.Fatalf("steady-state epoch loop allocates %.4f allocs/epoch (short=%d long=%d); want ~0",
			perEpoch, short, long)
	}
}
