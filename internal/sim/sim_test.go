package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/variation"
	"repro/internal/workload"
)

// shortOpts returns options small enough for unit tests.
func shortOpts() Options {
	o := DefaultOptions()
	o.Cores = 16
	o.WarmupS = 0.05
	o.MeasureS = 0.2
	o.TracePoints = 20
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Options){
		func(o *Options) { o.Cores = 0 },
		func(o *Options) { o.BudgetW = 0 },
		func(o *Options) { o.EpochS = 0 },
		func(o *Options) { o.WarmupS = -1 },
		func(o *Options) { o.MeasureS = 0 },
		func(o *Options) { o.SensorNoise = -0.1 },
		func(o *Options) { o.WorkloadScaleJitter = 1.0 },
		func(o *Options) { o.TracePoints = -1 },
		func(o *Options) { o.Workload = "unknown-bench" },
		func(o *Options) { o.BudgetSchedule = []BudgetStep{{AtS: -1, BudgetW: 50}} },
		func(o *Options) { o.BudgetSchedule = []BudgetStep{{AtS: 1, BudgetW: 0}} },
		func(o *Options) {
			o.BudgetSchedule = []BudgetStep{{AtS: 2, BudgetW: 50}, {AtS: 1, BudgetW: 40}}
		},
	}
	for i, m := range mutations {
		o := DefaultOptions()
		m(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestBudgetAt(t *testing.T) {
	o := DefaultOptions()
	o.BudgetW = 90
	o.BudgetSchedule = []BudgetStep{{AtS: 1, BudgetW: 60}, {AtS: 2, BudgetW: 80}}
	cases := []struct{ t, want float64 }{
		{0, 90}, {0.99, 90}, {1.0, 60}, {1.5, 60}, {2.0, 80}, {10, 80},
	}
	for _, c := range cases {
		if got := o.budgetAt(c.t); got != c.want {
			t.Errorf("budgetAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {64, 8, 8}, {256, 16, 16},
		{12, 4, 3}, {7, 7, 1}, {100, 10, 10}, {1024, 32, 32},
	}
	for _, c := range cases {
		w, h, err := GridFor(c.n)
		if err != nil {
			t.Fatalf("GridFor(%d): %v", c.n, err)
		}
		if w*h != c.n {
			t.Fatalf("GridFor(%d) = %dx%d", c.n, w, h)
		}
		if w != c.w || h != c.h {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
	if _, _, err := GridFor(0); err == nil {
		t.Fatal("expected error for zero cores")
	}
}

func TestFactoryBuildsAllControllers(t *testing.T) {
	for _, name := range ControllerNames() {
		c, err := NewController(name, DefaultEnv(16))
		if err != nil {
			t.Fatalf("NewController(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("controller %q reports name %q", name, c.Name())
		}
	}
	if _, err := NewController("bogus", DefaultEnv(16)); err == nil {
		t.Fatal("expected error for unknown controller")
	}
	if _, err := NewController("pid", Env{}); err == nil {
		t.Fatal("expected error for empty env")
	}
}

func TestRunProducesConsistentSummary(t *testing.T) {
	opts := shortOpts()
	c, err := NewController("pid", DefaultEnv(opts.Cores))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.DurS-opts.MeasureS) > opts.EpochS {
		t.Fatalf("measured %v s, want ~%v", s.DurS, opts.MeasureS)
	}
	if s.Instr <= 0 {
		t.Fatal("no instructions retired")
	}
	if s.MeanW <= 0 || s.PeakW < s.MeanW {
		t.Fatalf("power stats inconsistent: mean %v peak %v", s.MeanW, s.PeakW)
	}
	if s.Controller != "pid" {
		t.Fatalf("controller label %q", s.Controller)
	}
	if len(res.FinalLevels) != opts.Cores {
		t.Fatalf("final levels has %d entries", len(res.FinalLevels))
	}
}

func TestRunDeterministic(t *testing.T) {
	opts := shortOpts()
	run := func() float64 {
		c, err := NewController("od-rl", DefaultEnv(opts.Cores))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(opts, c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Instr
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	optsA := shortOpts()
	optsB := shortOpts()
	optsB.Seed = 999
	cA, _ := NewController("pid", DefaultEnv(optsA.Cores))
	cB, _ := NewController("pid", DefaultEnv(optsB.Cores))
	ra, err := Run(optsA, cA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(optsB, cB)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Summary.Instr == rb.Summary.Instr {
		t.Fatal("different seeds produced identical instruction counts")
	}
}

func TestRunTraceDecimation(t *testing.T) {
	opts := shortOpts()
	opts.TracePoints = 10
	c, _ := NewController("static", DefaultEnv(opts.Cores))
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 10 || len(res.Trace) > 25 {
		t.Fatalf("trace has %d points, want ~10-20", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].TimeS <= res.Trace[i-1].TimeS {
			t.Fatal("trace times not increasing")
		}
	}
}

func TestRunBudgetScheduleApplied(t *testing.T) {
	opts := shortOpts()
	opts.WarmupS = 0
	opts.MeasureS = 0.2
	opts.BudgetW = 90
	opts.BudgetSchedule = []BudgetStep{{AtS: 0.1, BudgetW: 40}}
	opts.TracePoints = 40
	c, _ := NewController("static", DefaultEnv(opts.Cores))
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	sawHigh, sawLow := false, false
	for _, p := range res.Trace {
		if p.BudgetW == 90 {
			sawHigh = true
		}
		if p.BudgetW == 40 {
			sawLow = true
		}
	}
	if !sawHigh || !sawLow {
		t.Fatalf("budget schedule not reflected in trace (high=%v low=%v)", sawHigh, sawLow)
	}
}

func TestRunRejectsNilController(t *testing.T) {
	if _, err := Run(shortOpts(), nil); err == nil {
		t.Fatal("expected error for nil controller")
	}
}

func TestRunAllAndTables(t *testing.T) {
	opts := shortOpts()
	opts.MeasureS = 0.1
	results, err := RunAll(opts, []string{"pid", "static"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}

	var tbl bytes.Buffer
	if err := WriteSummaryTable(&tbl, results); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"controller", "pid", "static", "BIPS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary table missing %q:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}

	var tr bytes.Buffer
	if err := WriteTrace(&tr, "pid", results[0].Trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "pid") {
		t.Fatal("trace CSV missing label")
	}
}

func TestRelativeTo(t *testing.T) {
	opts := shortOpts()
	opts.MeasureS = 0.1
	results, err := RunAll(opts, []string{"pid", "static"})
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := RelativeTo(results, "static", metrics.Summary.BIPS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratios["static"]-1) > 1e-12 {
		t.Fatalf("self-ratio = %v, want 1", ratios["static"])
	}
	if _, ok := ratios["pid"]; !ok {
		t.Fatal("missing pid ratio")
	}
	if _, err := RelativeTo(results, "nope", metrics.Summary.BIPS); err == nil {
		t.Fatal("expected error for unknown reference")
	}
}

func TestSortByName(t *testing.T) {
	rs := []Result{}
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		r := Result{}
		r.Summary.Controller = n
		rs = append(rs, r)
	}
	SortByName(rs)
	if rs[0].Summary.Controller != "alpha" || rs[2].Summary.Controller != "zeta" {
		t.Fatal("not sorted")
	}
}

func TestRunWithWorkloadTrace(t *testing.T) {
	tr, err := workload.Record(workload.MustPreset("bodytrack"), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := shortOpts()
	opts.Cores = 4
	opts.WorkloadTrace = &tr
	c, err := NewController("pid", DefaultEnv(opts.Cores))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Instr <= 0 {
		t.Fatal("trace-driven run retired nothing")
	}
	// The same trace must reproduce identical results run-to-run.
	c2, _ := NewController("pid", DefaultEnv(opts.Cores))
	res2, err := Run(opts, c2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Instr != res2.Summary.Instr {
		t.Fatal("trace-driven runs diverged")
	}
	// An invalid trace must be rejected.
	opts.WorkloadTrace = &workload.Trace{}
	if _, err := Run(opts, c); err == nil {
		t.Fatal("expected validation error for empty trace")
	}
}

func TestRunExperiment(t *testing.T) {
	exp := config.DefaultExperiment()
	exp.Cores = 9
	exp.WarmupS = 0.02
	exp.MeasureS = 0.05
	exp.Controllers = []string{"pid", "static"}
	exp.BudgetSchedule = []config.BudgetStep{{AtS: 0.03, BudgetW: 20}}
	results, err := RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, name := range exp.Controllers {
		if results[i].Summary.Controller != name {
			t.Fatalf("result %d labelled %q", i, results[i].Summary.Controller)
		}
	}
	bad := exp
	bad.Cores = 0
	if _, err := RunExperiment(bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunWithCustomPlatform(t *testing.T) {
	plat, err := config.PlatformPreset("manycore-4pstate")
	if err != nil {
		t.Fatal(err)
	}
	opts := shortOpts()
	opts.Cores = 4
	opts.Platform = &plat
	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	if env.VF.Levels() != 4 {
		t.Fatalf("env table has %d levels, want 4", env.VF.Levels())
	}
	c, err := NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.FinalLevels {
		if l < 0 || l >= 4 {
			t.Fatalf("level %d outside the 4-P-state table", l)
		}
	}
}

func TestBuildSourcesErrorPaths(t *testing.T) {
	// Variation with invalid params must be rejected by Validate.
	opts := shortOpts()
	opts.Variation = &variation.Params{LeakSigma: -1}
	if err := opts.Validate(); err == nil {
		t.Fatal("expected validation error for bad variation")
	}
	// Island dims that do not tile the grid surface as a chip error.
	opts = shortOpts()
	opts.Cores = 16
	opts.IslandW, opts.IslandH = 3, 3
	if _, _, err := NewChip(opts); err == nil {
		t.Fatal("expected error for non-tiling islands")
	}
}

func TestNewChipBigLittle(t *testing.T) {
	opts := shortOpts()
	opts.Cores = 16
	opts.BigLittle = true
	chip, _, err := NewChip(opts)
	if err != nil {
		t.Fatal(err)
	}
	if chip.NumCores() != 16 {
		t.Fatal("wrong core count")
	}
	// With identical compute work the left (big) half must outpace the
	// right (little) half — drive all cores at one level for one epoch.
	tel := chip.Step(1e-3)
	left, right := 0.0, 0.0
	for i, ct := range tel.Cores {
		if i%4 < 2 {
			left += ct.PowerW
		} else {
			right += ct.PowerW
		}
	}
	if left <= right {
		t.Fatalf("big half power %v not above little half %v", left, right)
	}
}

func TestEnvForBadPlatform(t *testing.T) {
	opts := shortOpts()
	plat := config.Default()
	plat.FMaxGHz = 900 // unachievable under the tech params
	opts.Platform = &plat
	if _, err := EnvFor(opts); err == nil {
		t.Fatal("expected error for unachievable VF range")
	}
}

func TestRunAllUnknownController(t *testing.T) {
	if _, err := RunAll(shortOpts(), []string{"nope"}); err == nil {
		t.Fatal("expected error for unknown controller")
	}
}

func TestFactoryLambdaOverride(t *testing.T) {
	env := DefaultEnv(4)
	env.Lambda = 9
	c, err := NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "od-rl" {
		t.Fatal("wrong controller")
	}
	env.VF = nil
	if _, err := NewController("od-rl", env); err == nil {
		t.Fatal("expected error for nil table")
	}
	env = DefaultEnv(4)
	env.CadenceEpochs = 0
	if _, err := NewController("maxbips", env); err == nil {
		t.Fatal("expected error for zero cadence")
	}
}
