package sim

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
)

// TestLearnDoesNotChangeResults is the read-only contract for the learning
// introspection layer: the same run with it off, on, and on with monitor +
// tracer chained must produce deep-equal simulated results at any worker
// count.
func TestLearnDoesNotChangeResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := monitorTestOpts()
		opts.Workers = workers
		base := stripWallClock(runWith(t, opts, "od-rl"))

		opts.Learn = learn.New(learn.Options{})
		introspected := stripWallClock(runWith(t, opts, "od-rl"))
		if !reflect.DeepEqual(base, introspected) {
			t.Fatalf("workers=%d: learning introspection changed the result", workers)
		}

		var buf bytes.Buffer
		tracer := obs.NewTracer(obs.NewWriterSink(&buf), obs.TracerOptions{Every: 8})
		opts.Learn = learn.New(learn.Options{})
		opts.Monitor = monitor.New(monitor.Options{})
		opts.Observer = tracer
		chained := stripWallClock(runWith(t, opts, "od-rl"))
		if !reflect.DeepEqual(base, chained) {
			t.Fatalf("workers=%d: learn+monitor+tracer chain changed the result", workers)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := obs.ReadRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		learnRecs := 0
		epochRecs := 0
		for _, r := range recs {
			switch r.Type {
			case "learn":
				learnRecs++
				if r.Learn.TDErrEMA <= 0 || r.Learn.Epsilon <= 0 {
					t.Fatalf("degenerate learn record: %+v", r.Learn)
				}
			case "epoch":
				epochRecs++
			}
		}
		if learnRecs == 0 {
			t.Fatalf("workers=%d: no learn records in chained trace", workers)
		}
		if learnRecs != epochRecs {
			t.Fatalf("workers=%d: %d learn records vs %d epoch records (should ride the same stride)",
				workers, learnRecs, epochRecs)
		}
	}
}

// TestLearnObservesRun checks the layer fills from a real run: every
// control epoch (warmup included) observed, convergence detector state
// sane, and epoch events carrying learn metrics.
func TestLearnObservesRun(t *testing.T) {
	opts := monitorTestOpts()
	lrn := learn.New(learn.Options{})
	opts.Learn = lrn
	runWith(t, opts, "od-rl")

	runs := lrn.Runs()
	if len(runs) != 1 {
		t.Fatalf("learn layer saw %d runs, want 1", len(runs))
	}
	warm, measure := opts.Epochs()
	s := runs[0].Summarize(false)
	if s.Epochs != warm+measure {
		t.Fatalf("learn epochs = %d, want %d (controller decisions incl. warmup)", s.Epochs, warm+measure)
	}
	if !s.Done {
		t.Fatal("run not marked done")
	}
	if s.LiveAgents != opts.Cores {
		t.Fatalf("live agents = %d, want %d", s.LiveAgents, opts.Cores)
	}
	if s.TDErrEMA <= 0 || s.Coverage <= 0 || s.Epsilon <= 0 {
		t.Fatalf("degenerate learning summary: %+v", s)
	}
	if s.Coverage > 1 {
		t.Fatalf("coverage %g > 1", s.Coverage)
	}
	if len(runs[0].ConvergedEpochs()) != opts.Cores {
		t.Fatal("detector state not per-core sized")
	}
}

// TestLearnIgnoresNonLearningControllers: a controller without
// ctrl.LearnStreamer must not register a run.
func TestLearnIgnoresNonLearningControllers(t *testing.T) {
	opts := monitorTestOpts()
	opts.MeasureS = 0.1
	lrn := learn.New(learn.Options{})
	opts.Learn = lrn
	runWith(t, opts, "pid")
	if n := len(lrn.Runs()); n != 0 {
		t.Fatalf("learn layer registered %d runs for a non-learning controller", n)
	}
}

// TestLearnSnapshotArtifacts runs with an artifact directory and verifies
// the content-addressed snapshot chain reconstructs, including the final
// policy write at run end.
func TestLearnSnapshotArtifacts(t *testing.T) {
	dir := t.TempDir()
	opts := monitorTestOpts()
	opts.MeasureS = 0.3
	opts.Learn = learn.New(learn.Options{SnapshotEvery: 100, ArtifactDir: dir})
	runWith(t, opts, "od-rl")

	if err := opts.Learn.Runs()[0].Err(); err != nil {
		t.Fatal(err)
	}
	runDirs, err := filepath.Glob(filepath.Join(dir, "run-*"))
	if err != nil || len(runDirs) != 1 {
		t.Fatalf("run dirs = %v (err %v)", runDirs, err)
	}
	snaps, err := learn.LoadSnapshots(runDirs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want >= 2 (periodic + final)", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Cores != opts.Cores || last.States <= 0 || last.Actions <= 0 {
		t.Fatalf("snapshot shape %dx%dx%d", last.Cores, last.States, last.Actions)
	}
	if len(last.Q) != last.Cores*last.States*last.Actions {
		t.Fatal("reconstructed tensor size mismatch")
	}
	warm, measure := opts.Epochs()
	if int(last.Epoch) != warm+measure {
		t.Fatalf("final snapshot at epoch %d, want %d", last.Epoch, warm+measure)
	}
}

// TestDefaultLearnFallback mirrors the DefaultObserver contract.
func TestDefaultLearnFallback(t *testing.T) {
	lrn := learn.New(learn.Options{})
	DefaultLearn = lrn
	defer func() { DefaultLearn = nil }()
	opts := monitorTestOpts()
	opts.MeasureS = 0.1
	runWith(t, opts, "od-rl")
	if runs := lrn.Runs(); len(runs) != 1 || runs[0].Summarize(false).Epochs == 0 {
		t.Fatalf("DefaultLearn saw %d runs", len(lrn.Runs()))
	}
}
