// Package sim is the experiment harness: it assembles a chip, workloads and
// a controller, runs warmup and measurement windows, and reduces the run to
// the metrics the paper's tables and figures report.
package sim

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
	"repro/internal/variation"
	"repro/internal/workload"
)

// BudgetStep changes the chip power budget at a point in simulated time,
// modelling datacentre-level cap events.
type BudgetStep struct {
	AtS     float64
	BudgetW float64
}

// Options configures one run.
type Options struct {
	// Cores is the total core count; the grid is chosen as close to square
	// as the count allows.
	Cores int
	// Workload is a preset name from package workload, or "mix" to spread
	// all presets round-robin across cores.
	Workload string
	// BudgetW is the chip power budget (TDP) in watts.
	BudgetW float64
	// BudgetSchedule optionally re-caps the chip mid-run; steps must be
	// sorted by AtS.
	BudgetSchedule []BudgetStep
	// EpochS is the control epoch length.
	EpochS float64
	// WarmupS runs before measurement starts (RL agents keep learning
	// throughout; metrics cover only the measurement window).
	WarmupS float64
	// MeasureS is the measurement window length.
	MeasureS float64
	// Seed drives workload realisation and sensor noise.
	Seed uint64
	// SensorNoise is the relative telemetry noise (see manycore.Config).
	SensorNoise float64
	// ThermalOff disables the leakage–temperature loop.
	ThermalOff bool
	// TracePoints, when positive, records a decimated power trace of about
	// that many points over the measurement window.
	TracePoints int
	// WorkloadScaleJitter spreads per-core workload heaviness by ±fraction.
	WorkloadScaleJitter float64
	// Platform overrides the device-level constants (VF table, power,
	// thermal, NoC, transition penalty); nil uses config.Default.
	Platform *config.Platform
	// Variation optionally applies process variation to the die; nil runs
	// a nominal chip.
	Variation *variation.Params
	// IslandW and IslandH group cores into voltage-frequency islands
	// sharing one operating point (0 = per-core DVFS). Must tile the core
	// grid.
	IslandW, IslandH int
	// WorkloadTrace, when set, replays this recorded trace on every core
	// instead of live Markov processes; cores start at staggered offsets
	// so they are decorrelated. Overrides Workload.
	WorkloadTrace *workload.Trace
	// BigLittle builds a heterogeneous chip: the left half of the grid
	// uses big (wide, power-hungry) cores and the right half little
	// (efficient) ones. Controllers are not told which is which.
	BigLittle bool
	// Observer, when set, receives structured epoch events for the
	// measurement window (see package obs). Nil (the default) costs one
	// branch per epoch. Falls back to DefaultObserver when nil.
	Observer obs.Observer
	// Monitor, when set, wraps the run's observer chain with the
	// run-health layer (time series, quantile sketches, alert rules, live
	// HTTP views; see package obs/monitor) and streams controller phase
	// spans into its timeline. Monitoring is strictly read-only:
	// simulation results are bit-identical with it on or off. Falls back
	// to DefaultMonitor when nil.
	Monitor *monitor.Monitor
	// Learn, when set, attaches the learning-introspection layer (see
	// package obs/learn) to controllers that stream learning samples
	// (ctrl.LearnStreamer): per-agent TD-error/churn/coverage telemetry,
	// online convergence detection and optional policy snapshots. Strictly
	// read-only — results are bit-identical with it on or off. Falls back
	// to DefaultLearn when nil; controllers without learning stream nothing.
	Learn *learn.Layer
	// SpanSink, when set, additionally receives the controller's phase
	// spans (teed with the monitor's timeline when both are present) —
	// the flight recorder's post-mortem ring attaches here. Falls back to
	// DefaultSpanSink when nil.
	SpanSink obs.SpanSink
	// Workers bounds the goroutines sharding the per-core simulation and
	// control loops (the `-j` knob): 0 uses one worker per CPU, 1 forces
	// fully sequential execution. Results are bit-identical for any
	// worker count; see internal/par for the determinism contract.
	Workers int
	// FaultPlan, when non-nil and non-zero, injects deterministic
	// telemetry/actuation/structural faults into the run (see package
	// fault). The fault stream is seeded from (Seed, FaultPlan.Seed) and
	// drawn only on the sequential epoch loop, so fault realisations are
	// identical for any Workers count. Nil — or a plan whose Zero() is
	// true — leaves the run byte-identical to the fault-free path.
	FaultPlan *fault.Plan
}

// DefaultOptions returns the default 64-core platform run: 90 W budget,
// 1 ms epochs, 2 s warmup, 8 s measurement.
func DefaultOptions() Options {
	return Options{
		Cores:               64,
		Workload:            "mix",
		BudgetW:             90,
		EpochS:              1e-3,
		WarmupS:             2,
		MeasureS:            8,
		Seed:                1,
		SensorNoise:         0.02,
		WorkloadScaleJitter: 0.1,
	}
}

// Validate reports the first invalid option.
func (o Options) Validate() error {
	switch {
	case o.Cores <= 0:
		return fmt.Errorf("sim: invalid core count %d", o.Cores)
	case o.BudgetW <= 0:
		return fmt.Errorf("sim: invalid budget %g W", o.BudgetW)
	case o.EpochS <= 0:
		return fmt.Errorf("sim: invalid epoch %g s", o.EpochS)
	case o.WarmupS < 0:
		return fmt.Errorf("sim: negative warmup %g s", o.WarmupS)
	case o.MeasureS <= 0:
		return fmt.Errorf("sim: invalid measurement window %g s", o.MeasureS)
	case o.SensorNoise < 0:
		return fmt.Errorf("sim: negative sensor noise %g", o.SensorNoise)
	case o.WorkloadScaleJitter < 0 || o.WorkloadScaleJitter >= 1:
		return fmt.Errorf("sim: workload jitter %g out of [0,1)", o.WorkloadScaleJitter)
	case o.TracePoints < 0:
		return fmt.Errorf("sim: negative trace points %d", o.TracePoints)
	case o.Workers < 0:
		return fmt.Errorf("sim: negative worker count %d", o.Workers)
	}
	if o.WorkloadTrace != nil {
		if err := o.WorkloadTrace.Validate(); err != nil {
			return err
		}
	} else if o.Workload != "mix" && o.Workload != "barrier" {
		if _, err := workload.Preset(o.Workload); err != nil {
			return err
		}
	}
	if o.Platform != nil {
		if err := o.Platform.Validate(); err != nil {
			return err
		}
	}
	if o.Variation != nil {
		if err := o.Variation.Validate(); err != nil {
			return err
		}
	}
	if o.FaultPlan != nil {
		if err := o.FaultPlan.Validate(); err != nil {
			return err
		}
	}
	prev := math.Inf(-1)
	for i, s := range o.BudgetSchedule {
		if s.AtS < 0 || s.BudgetW <= 0 {
			return fmt.Errorf("sim: invalid budget step %d: %+v", i, s)
		}
		if s.AtS <= prev {
			return fmt.Errorf("sim: budget schedule not strictly increasing at step %d", i)
		}
		prev = s.AtS
	}
	return nil
}

// Epochs returns the warmup and measurement epoch counts Run will use, so
// callers logging run configuration agree with the harness's rounding.
func (o Options) Epochs() (warmup, measure int) {
	return int(o.WarmupS/o.EpochS + 0.5), int(o.MeasureS/o.EpochS + 0.5)
}

// budgetAt resolves the budget in force at simulated time t.
func (o Options) budgetAt(t float64) float64 {
	b := o.BudgetW
	for _, s := range o.BudgetSchedule {
		if t >= s.AtS {
			b = s.BudgetW
		} else {
			break
		}
	}
	return b
}

// GridFor factors a core count into the most square W×H grid. It returns an
// error only for non-positive counts; primes degrade to 1×n.
func GridFor(cores int) (w, h int, err error) {
	if cores <= 0 {
		return 0, 0, fmt.Errorf("sim: invalid core count %d", cores)
	}
	h = int(math.Sqrt(float64(cores)))
	for h > 1 && cores%h != 0 {
		h--
	}
	return cores / h, h, nil
}
