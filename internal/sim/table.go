package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// epsilonOverJ is the floor used when reporting throughput per
// over-the-budget joule: one epoch at one watt of overshoot, the smallest
// overshoot the harness can resolve.
const epsilonOverJ = 1e-3

// WriteSummaryTable renders results as an aligned text table with the
// metrics the paper's evaluation reports.
func WriteSummaryTable(w io.Writer, results []Result) error {
	header := []string{
		"controller", "workload", "cores", "budget(W)",
		"BIPS", "mean(W)", "peak(W)",
		"over(J)", "over-time(%)", "BIPS/overJ", "BIPS/W", "ctrl(ms)",
	}
	rows := [][]string{header}
	for _, r := range results {
		s := r.Summary
		rows = append(rows, []string{
			s.Controller,
			s.Workload,
			fmt.Sprintf("%d", s.Cores),
			fmt.Sprintf("%.1f", s.BudgetW),
			fmt.Sprintf("%.2f", s.BIPS()),
			fmt.Sprintf("%.1f", s.MeanW),
			fmt.Sprintf("%.1f", s.PeakW),
			fmt.Sprintf("%.3f", s.OverJ),
			fmt.Sprintf("%.2f", 100*s.OverTimeFrac()),
			fmt.Sprintf("%.2f", s.ThroughputPerOverJ(epsilonOverJ)),
			fmt.Sprintf("%.3f", s.EnergyEff()),
			fmt.Sprintf("%.3f", s.CtrlTimeS*1e3),
		})
	}
	return writeAligned(w, rows)
}

// WriteCSV renders results as CSV with one row per result.
func WriteCSV(w io.Writer, results []Result) error {
	if _, err := fmt.Fprintln(w,
		"controller,workload,cores,budget_w,bips,mean_w,peak_w,over_j,over_time_frac,bips_per_over_j,bips_per_w,ctrl_s,comm_j,max_temp_k"); err != nil {
		return err
	}
	for _, r := range results {
		s := r.Summary
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			s.Controller, s.Workload, s.Cores, s.BudgetW,
			s.BIPS(), s.MeanW, s.PeakW, s.OverJ, s.OverTimeFrac(),
			s.ThroughputPerOverJ(epsilonOverJ), s.EnergyEff(),
			s.CtrlTimeS, s.CommEnergyJ, s.MaxTempK); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace renders a power trace as CSV.
func WriteTrace(w io.Writer, label string, trace []TracePoint) error {
	if _, err := fmt.Fprintln(w, "controller,time_s,power_w,budget_w,max_temp_k"); err != nil {
		return err
	}
	for _, p := range trace {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.3f,%.1f,%.2f\n",
			label, p.TimeS, p.PowerW, p.BudgetW, p.MaxTempK); err != nil {
			return err
		}
	}
	return nil
}

// WritePhaseTable renders the controller-phase breakdown (claim C4's
// inspectable form): how each profiled controller's decision time splits
// between local per-core learning and the global reallocation pass.
// Results without phase data are skipped; with none at all it writes
// nothing.
func WritePhaseTable(w io.Writer, results []Result) error {
	header := []string{
		"controller", "ctrl(ms)", "local(ms)", "global(ms)", "other(ms)", "local(%)", "global(%)",
	}
	rows := [][]string{header}
	for _, r := range results {
		s := r.Summary
		if s.CtrlLocalTimeS == 0 && s.CtrlGlobalTimeS == 0 {
			continue
		}
		other := s.CtrlTimeS - s.CtrlLocalTimeS - s.CtrlGlobalTimeS
		if other < 0 {
			other = 0
		}
		pct := func(v float64) string {
			if s.CtrlTimeS <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*v/s.CtrlTimeS)
		}
		rows = append(rows, []string{
			s.Controller,
			fmt.Sprintf("%.3f", s.CtrlTimeS*1e3),
			fmt.Sprintf("%.3f", s.CtrlLocalTimeS*1e3),
			fmt.Sprintf("%.3f", s.CtrlGlobalTimeS*1e3),
			fmt.Sprintf("%.3f", other*1e3),
			pct(s.CtrlLocalTimeS),
			pct(s.CtrlGlobalTimeS),
		})
	}
	if len(rows) == 1 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "\ncontroller decision-time phase breakdown:"); err != nil {
		return err
	}
	return writeAligned(w, rows)
}

// writeAligned pads each column to its widest cell.
func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RelativeTo returns ratio rows comparing every result's metric against the
// named reference controller, used for "X× better than" style reporting.
func RelativeTo(results []Result, reference string, metric func(metrics.Summary) float64) (map[string]float64, error) {
	var ref *Result
	for i := range results {
		if results[i].Summary.Controller == reference {
			ref = &results[i]
			break
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("sim: reference controller %q not in results", reference)
	}
	refV := metric(ref.Summary)
	out := make(map[string]float64, len(results))
	for _, r := range results {
		if refV == 0 {
			out[r.Summary.Controller] = 0
			continue
		}
		out[r.Summary.Controller] = metric(r.Summary) / refV
	}
	return out, nil
}
