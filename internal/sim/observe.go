package sim

import (
	"repro/internal/manycore"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
)

// DefaultObserver, when non-nil, observes every run whose Options.Observer
// is nil. It exists so CLIs can watch runs that deeper layers (package
// experiments) assemble internally without threading an observer through
// every experiment signature. Set it once at process startup; changing it
// while simulations run is racy.
var DefaultObserver obs.Observer

// DefaultMonitor, when non-nil, monitors every run whose Options.Monitor
// is nil — the run-health counterpart of DefaultObserver, and wired the
// same way: set once at process startup by CLIs.
var DefaultMonitor *monitor.Monitor

// DefaultLearn, when non-nil, attaches learning introspection to every run
// whose Options.Learn is nil — wired the same way as DefaultObserver: set
// once at process startup by CLIs.
var DefaultLearn *learn.Layer

// DefaultSpanSink, when non-nil, additionally receives controller phase
// spans from every run whose Options.SpanSink is nil — teed with the
// monitor's timeline, so the flight recorder's post-mortem bundles carry
// the same spans the live Perfetto export shows. Set once at process
// startup by CLIs, like DefaultObserver.
var DefaultSpanSink obs.SpanSink

// eventScratch holds the reusable per-sample aggregation buffers for one
// run's epoch events, so sampling allocates nothing after the first epoch.
type eventScratch struct {
	islands []float64
	hist    []int
	// islandOf maps core index to island index, computed once so the
	// per-epoch fill is a table lookup instead of four integer divisions
	// per core (fill runs every sampled epoch, and a monitor samples all
	// of them).
	islandOf []int32
}

// newEventScratch sizes buffers from the chip configuration. With per-core
// DVFS (island size 0) the whole chip aggregates into one island entry.
func newEventScratch(cfg manycore.Config) *eventScratch {
	s := &eventScratch{}
	nIslands := 1
	cores := cfg.Width * cfg.Height
	s.islandOf = make([]int32, cores)
	if cfg.IslandW > 0 && cfg.IslandH > 0 {
		islandsPerRow := cfg.Width / cfg.IslandW
		nIslands = islandsPerRow * (cfg.Height / cfg.IslandH)
		for i := 0; i < cores; i++ {
			x, y := i%cfg.Width, i/cfg.Width
			s.islandOf[i] = int32((y/cfg.IslandH)*islandsPerRow + x/cfg.IslandW)
		}
	}
	s.islands = make([]float64, nIslands)
	s.hist = make([]int, cfg.VF.Levels())
	return s
}

// fill populates the event's island-power and VF-level histogram from this
// epoch's telemetry, reusing the scratch buffers (the observer contract
// forbids retaining them).
//
//odrl:hotpath
func (s *eventScratch) fill(ev *obs.EpochEvent, tel *manycore.Telemetry) {
	for i := range s.islands {
		s.islands[i] = 0
	}
	for i := range s.hist {
		s.hist[i] = 0
	}
	ips := 0.0
	for i := range tel.Cores {
		ct := &tel.Cores[i]
		if ct.Level >= 0 && ct.Level < len(s.hist) {
			s.hist[ct.Level]++
		}
		s.islands[s.islandOf[i]] += ct.PowerW
		ips += ct.IPS
	}
	ev.IslandPowerW = s.islands
	ev.LevelHist = s.hist
	ev.IPS = ips
}

// fillLight populates only the scalar aggregate (chip IPS), for sampled
// epochs whose observer declined detail via obs.EpochDetailSampler — the
// run-health monitor's every-epoch path.
//
//odrl:hotpath
func (s *eventScratch) fillLight(ev *obs.EpochEvent, tel *manycore.Telemetry) {
	ips := 0.0
	for i := range tel.Cores {
		ips += tel.Cores[i].IPS
	}
	ev.IPS = ips
}
