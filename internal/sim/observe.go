package sim

import (
	"repro/internal/manycore"
	"repro/internal/obs"
)

// DefaultObserver, when non-nil, observes every run whose Options.Observer
// is nil. It exists so CLIs can watch runs that deeper layers (package
// experiments) assemble internally without threading an observer through
// every experiment signature. Set it once at process startup; changing it
// while simulations run is racy.
var DefaultObserver obs.Observer

// eventScratch holds the reusable per-sample aggregation buffers for one
// run's epoch events, so sampling allocates nothing after the first epoch.
type eventScratch struct {
	islands       []float64
	hist          []int
	gridW         int
	islandW       int
	islandH       int
	islandsPerRow int
}

// newEventScratch sizes buffers from the chip configuration. With per-core
// DVFS (island size 0) the whole chip aggregates into one island entry.
func newEventScratch(cfg manycore.Config) *eventScratch {
	s := &eventScratch{gridW: cfg.Width}
	nIslands := 1
	if cfg.IslandW > 0 && cfg.IslandH > 0 {
		s.islandW, s.islandH = cfg.IslandW, cfg.IslandH
		s.islandsPerRow = cfg.Width / cfg.IslandW
		nIslands = s.islandsPerRow * (cfg.Height / cfg.IslandH)
	}
	s.islands = make([]float64, nIslands)
	s.hist = make([]int, cfg.VF.Levels())
	return s
}

// fill populates the event's island-power and VF-level histogram from this
// epoch's telemetry, reusing the scratch buffers (the observer contract
// forbids retaining them).
func (s *eventScratch) fill(ev *obs.EpochEvent, tel *manycore.Telemetry) {
	for i := range s.islands {
		s.islands[i] = 0
	}
	for i := range s.hist {
		s.hist[i] = 0
	}
	for i := range tel.Cores {
		ct := &tel.Cores[i]
		if ct.Level >= 0 && ct.Level < len(s.hist) {
			s.hist[ct.Level]++
		}
		isl := 0
		if s.islandW > 0 {
			x, y := i%s.gridW, i/s.gridW
			isl = (y/s.islandH)*s.islandsPerRow + x/s.islandW
		}
		s.islands[isl] += ct.PowerW
	}
	ev.IslandPowerW = s.islands
	ev.LevelHist = s.hist
}
