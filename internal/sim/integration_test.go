package sim

import (
	"testing"

	"repro/internal/variation"
)

// Integration tests: the paper's headline orderings must emerge from the
// assembled system at moderate scale. These runs take a few seconds each;
// `go test -short` skips them.

func integrationOpts() Options {
	o := DefaultOptions()
	o.Cores = 36
	o.BudgetW = 32
	o.WarmupS = 2
	o.MeasureS = 2
	return o
}

func TestHeadlineOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := integrationOpts()
	results, err := RunAll(opts, []string{"od-rl", "maxbips", "steepest-drop", "pid"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Summary.Controller] = r
	}
	odrl := byName["od-rl"].Summary
	maxbips := byName["maxbips"].Summary
	steepest := byName["steepest-drop"].Summary
	pid := byName["pid"].Summary

	// C1: OD-RL's overshoot is far below the overshooting baselines.
	if odrl.OverJ >= steepest.OverJ {
		t.Errorf("od-rl overshoot %v not below steepest-drop %v", odrl.OverJ, steepest.OverJ)
	}
	if odrl.OverJ >= pid.OverJ/10 {
		t.Errorf("od-rl overshoot %v not an order below pid %v", odrl.OverJ, pid.OverJ)
	}

	// C3: OD-RL is the most energy-efficient of the four.
	for _, s := range []struct {
		name string
		eff  float64
	}{
		{"maxbips", maxbips.EnergyEff()},
		{"steepest-drop", steepest.EnergyEff()},
		{"pid", pid.EnergyEff()},
	} {
		if odrl.EnergyEff() <= s.eff {
			t.Errorf("od-rl efficiency %v not above %s %v", odrl.EnergyEff(), s.name, s.eff)
		}
	}

	// The global optimiser buys its budget-filling throughput lead — if it
	// did not, our baseline would be suspiciously weak.
	if maxbips.BIPS() <= odrl.BIPS() {
		t.Errorf("maxbips BIPS %v should exceed od-rl %v", maxbips.BIPS(), odrl.BIPS())
	}

	// C4 (cost side): the optimiser's decide time dwarfs OD-RL's.
	if maxbips.CtrlTimeS <= odrl.CtrlTimeS {
		t.Errorf("maxbips controller time %v not above od-rl %v (cadence-adjusted cost)",
			maxbips.CtrlTimeS, odrl.CtrlTimeS)
	}
}

func TestODRLComplianceUnderVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := integrationOpts()
	vp := variation.Default()
	vp.LeakSigma = 0.6
	opts.Variation = &vp
	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	// Even on a heavily varied die the learner keeps overshoot negligible:
	// under 0.5% of the budgeted energy.
	if norm := res.Summary.OvershootNorm(); norm > 0.005 {
		t.Fatalf("od-rl overshoot fraction %v on a varied die", norm)
	}
}

func TestIslandGranularityCostsEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	run := func(iw, ih int) float64 {
		opts := integrationOpts()
		opts.IslandW, opts.IslandH = iw, ih
		env, err := EnvFor(opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewController("od-rl", env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(opts, c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.EnergyEff()
	}
	perCore := run(1, 1)
	chipWide := run(6, 6) // 36 cores → 6x6 grid
	if perCore <= chipWide {
		t.Fatalf("per-core efficiency %v not above chip-wide %v", perCore, chipWide)
	}
}

func TestCapEventRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := integrationOpts()
	opts.BudgetW = 45
	opts.BudgetSchedule = []BudgetStep{{AtS: 3, BudgetW: 25}}
	opts.TracePoints = 200
	for _, name := range []string{"od-rl", "pid"} {
		env, err := EnvFor(opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewController(name, env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(opts, c)
		if err != nil {
			t.Fatal(err)
		}
		// Mean power over the final 0.5 s must sit at or under the new cap
		// (small tolerance for the capper's limit cycling).
		var sum float64
		var n int
		for _, p := range res.Trace {
			if p.TimeS >= 3.5 {
				sum += p.PowerW
				n++
			}
		}
		if n == 0 {
			t.Fatalf("%s: no trace points after the cap event", name)
		}
		if mean := sum / float64(n); mean > 25*1.05 {
			t.Errorf("%s: mean power %v W after the cap event, cap is 25 W", name, mean)
		}
	}
}
