package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
)

// monitorTestOpts is a short but non-trivial run: long enough for the
// monitor's EWMA and sustained-violation windows to engage.
func monitorTestOpts() Options {
	opts := DefaultOptions()
	opts.Cores = 16
	opts.WarmupS = 0.2
	opts.MeasureS = 0.8
	return opts
}

func runWith(t *testing.T, opts Options, controller string) Result {
	t.Helper()
	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(controller, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// stripWallClock zeroes the wall-clock profiling fields, which vary run to
// run regardless of monitoring; everything else in a Result is a pure
// function of the options.
func stripWallClock(r Result) Result {
	r.Summary.CtrlTimeS = 0
	r.Summary.CtrlLocalTimeS = 0
	r.Summary.CtrlGlobalTimeS = 0
	return r
}

// TestMonitorDoesNotChangeResults is the read-only contract: the same run
// with monitoring off, monitoring on, and monitoring on with a chained
// tracer must produce deep-equal simulated results at any worker count.
func TestMonitorDoesNotChangeResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := monitorTestOpts()
		opts.Workers = workers
		base := stripWallClock(runWith(t, opts, "od-rl"))

		opts.Monitor = monitor.New(monitor.Options{})
		mon := stripWallClock(runWith(t, opts, "od-rl"))
		if !reflect.DeepEqual(base, mon) {
			t.Fatalf("workers=%d: monitoring changed the result", workers)
		}

		var buf bytes.Buffer
		tracer := obs.NewTracer(obs.NewWriterSink(&buf), obs.TracerOptions{Every: 8})
		opts.Monitor = monitor.New(monitor.Options{})
		opts.Observer = tracer
		chained := stripWallClock(runWith(t, opts, "od-rl"))
		if !reflect.DeepEqual(base, chained) {
			t.Fatalf("workers=%d: monitor+tracer chain changed the result", workers)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatalf("workers=%d: chained tracer received nothing", workers)
		}
	}
}

// TestMonitorObservesRun checks the monitor fills its health record from a
// real run: every measurement epoch observed, sketches populated, spans
// collected from the OD-RL controller's phase streamer.
func TestMonitorObservesRun(t *testing.T) {
	opts := monitorTestOpts()
	mon := monitor.New(monitor.Options{})
	opts.Monitor = mon
	runWith(t, opts, "od-rl")

	runs := mon.Runs()
	if len(runs) != 1 {
		t.Fatalf("monitor saw %d runs, want 1", len(runs))
	}
	h := runs[0]
	_, measure := opts.Epochs()
	if h.Epochs != measure || !h.Done {
		t.Fatalf("run health = %d epochs done=%v, want %d done", h.Epochs, h.Done, measure)
	}
	if h.Meta.Controller != "od-rl" || h.Meta.BudgetW != opts.BudgetW {
		t.Fatalf("meta = %+v", h.Meta)
	}
	if h.Decide.Count() != int64(measure) || h.Decide.Quantile(0.99) <= 0 {
		t.Fatalf("decide sketch: count %d p99 %g", h.Decide.Count(), h.Decide.Quantile(0.99))
	}
	if got, err := h.Store.Get("power_w"); err != nil || got.Epochs != measure {
		t.Fatalf("power series: %v / %+v", err, got)
	}
	if mon.Timeline().Total() == 0 {
		t.Fatal("no phase spans streamed from the od-rl controller")
	}
	// Span streaming must detach at run end: stepping another run without
	// the monitor must not grow this monitor's timeline.
	before := mon.Timeline().Total()
	plain := monitorTestOpts()
	runWith(t, plain, "od-rl")
	if after := mon.Timeline().Total(); after != before {
		t.Fatalf("timeline grew %d→%d after an unmonitored run: sink not detached", before, after)
	}
}

// TestFaultedRunFiresAlerts is the acceptance check for the default
// claim-invariant rules: a full-intensity canonical fault plan must trip at
// least one of them, the alert must appear in the chained JSONL trace, and
// the end-of-run summary must show it.
func TestFaultedRunFiresAlerts(t *testing.T) {
	opts := monitorTestOpts()
	opts.MeasureS = 2.0
	// A budget that actually binds a 16-core chip: with the canonical
	// plan's meter bias and cap transients, PID control sustains >2%
	// overshoot, which is exactly what the sustained-overshoot invariant
	// exists to catch.
	opts.BudgetW = 20
	p := fault.Scaled(1)
	opts.FaultPlan = &p
	mon := monitor.New(monitor.Options{})
	opts.Monitor = mon
	var trace bytes.Buffer
	tracer := obs.NewTracer(obs.NewWriterSink(&trace), obs.TracerOptions{Every: 1})
	opts.Observer = tracer
	runWith(t, opts, "pid")
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	if mon.AlertsFired() == 0 {
		t.Fatal("full-intensity fault run fired no alerts via the default rules")
	}
	h := mon.Runs()[0]
	if h.Faults == 0 {
		t.Fatal("monitor saw no fault events")
	}

	recs, err := obs.ReadRecords(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	alerts := 0
	for _, r := range recs {
		if r.Type == "alert" {
			alerts++
			if r.Alert.Rule == "" || r.Alert.Metric == "" {
				t.Fatalf("alert record missing fields: %+v", r.Alert)
			}
		}
	}
	if alerts != mon.AlertsFired() {
		t.Fatalf("JSONL trace has %d alert records, monitor fired %d", alerts, mon.AlertsFired())
	}

	var sum bytes.Buffer
	if err := mon.WriteAlertSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), h.Alerts[0].Rule) {
		t.Fatalf("summary missing fired rule %q:\n%s", h.Alerts[0].Rule, sum.String())
	}
}

// TestDefaultMonitorFallback mirrors the DefaultObserver contract: runs
// with a nil Options.Monitor attach to DefaultMonitor.
func TestDefaultMonitorFallback(t *testing.T) {
	mon := monitor.New(monitor.Options{})
	DefaultMonitor = mon
	defer func() { DefaultMonitor = nil }()
	opts := monitorTestOpts()
	opts.MeasureS = 0.1
	runWith(t, opts, "pid")
	if runs := mon.Runs(); len(runs) != 1 || runs[0].Meta.Controller != "pid" {
		t.Fatalf("DefaultMonitor saw %+v", mon.Runs())
	}
}
